// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver computes a structured result from the
// simulation database and offers a Render method that prints the same
// rows/series the paper reports, so `cmd/figures` can regenerate the
// whole evaluation.
//
// Index (see DESIGN.md for the full mapping):
//
//	Table I  — baseline configuration
//	Table II — application categories
//	Fig. 1   — trade-off matrix and mix probabilities
//	Fig. 2   — two-core scenario study with perfect models
//	Fig. 4   — ATD leading-miss extension worked example
//	Fig. 5   — co-simulator event mechanics
//	Fig. 6   — energy savings on 4- and 8-core workloads (RM1/RM2/RM3)
//	Fig. 7   — QoS violation probability / expected value / deviation
//	Fig. 8   — violation magnitude distribution
//	Fig. 9   — energy savings under Model1/2/3 vs a perfect model
package experiments

import (
	"runtime"
	"sync"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/sim"
	"qosrm/internal/workload"
)

// Context carries the shared inputs of all experiment drivers.
type Context struct {
	DB *db.DB
	// Scale divides application instruction counts in co-simulations
	// (default 2048; 1 is paper scale).
	Scale int64
	// Seed drives workload generation.
	Seed int64
	// PerScenario is the number of workloads per scenario and core count
	// (paper: six).
	PerScenario int
	// Workers bounds concurrent co-simulations (default GOMAXPROCS).
	Workers int
}

// NewContext returns a Context with the paper's defaults.
func NewContext(d *db.DB) *Context {
	return &Context{DB: d, Scale: 2048, Seed: 20, PerScenario: 6, Workers: runtime.GOMAXPROCS(0)}
}

func (c *Context) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// savings returns the fractional energy saving of cfg versus the idle
// (baseline-keeping) manager on the same workload.
func (c *Context) savings(apps []*bench.Benchmark, cfg sim.Config) (float64, *sim.Result, error) {
	idleCfg := cfg
	idleCfg.RM = rm.Idle
	idle, err := sim.Run(c.DB, apps, idleCfg)
	if err != nil {
		return 0, nil, err
	}
	r, err := sim.Run(c.DB, apps, cfg)
	if err != nil {
		return 0, nil, err
	}
	return 1 - r.EnergyJ/idle.EnergyJ, r, nil
}

// runJob is one co-simulation of a workload under a manager/model.
type runJob struct {
	apps []*bench.Benchmark
	cfg  sim.Config
	out  *runOut
}

type runOut struct {
	Saving    float64
	Violation float64
	Err       error
}

// runAll executes jobs concurrently under the context's worker budget.
func (c *Context) runAll(jobs []runJob) error {
	var wg sync.WaitGroup
	ch := make(chan runJob)
	for i := 0; i < c.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				save, r, err := c.savings(j.apps, j.cfg)
				if err != nil {
					j.out.Err = err
					continue
				}
				j.out.Saving = save
				j.out.Violation = r.ViolationRate()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	for _, j := range jobs {
		if j.out.Err != nil {
			return j.out.Err
		}
	}
	return nil
}

// appNames formats a workload's application list.
func appNames(apps []*bench.Benchmark) string {
	s := ""
	for i, a := range apps {
		if i > 0 {
			s += ","
		}
		s += a.Name
	}
	return s
}

// scenarioWeights returns the Figure 1 probability weights of the four
// scenarios, normalised to sum to one.
func scenarioWeights() map[workload.Scenario]float64 {
	total := 0.0
	for _, s := range workload.Scenarios {
		total += s.Weight()
	}
	out := make(map[workload.Scenario]float64, len(workload.Scenarios))
	for _, s := range workload.Scenarios {
		out[s] = s.Weight() / total
	}
	return out
}

// simConfig builds the standard co-simulation configuration.
func (c *Context) simConfig(kind rm.Kind, model perfmodel.Kind, perfect, overheadFree bool) sim.Config {
	return sim.Config{
		RM:               kind,
		Model:            model,
		Perfect:          perfect,
		Scale:            c.Scale,
		DisableOverheads: overheadFree,
	}
}
