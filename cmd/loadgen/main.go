// Command loadgen drives open-loop load against a running qosrmd node
// and reports what its admission control did with it: achieved
// throughput, p50/p90/p99 submit latency, reject rate, and — against a
// cluster node — how many submits a peer absorbed. Arrivals follow a
// fixed schedule (the vegeta model): the generator never slows down
// because the server queues, which is exactly the load shape that makes
// queue-full shedding and peer forwarding observable.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8423 -rps 400 -duration 5s
//	loadgen -url http://a:8423 -rps 800 -duration 10s -apps mcf,povray -o load.json
//
// The JSON result matches the entries perfbench embeds in the committed
// BENCH_<n>.json reports, so ad-hoc runs are comparable to the tracked
// trajectory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qosrm/internal/client"
	"qosrm/internal/loadgen"
	"qosrm/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	url := flag.String("url", "http://127.0.0.1:8423", "qosrmd base URL to attack")
	rps := flag.Float64("rps", 100, "target arrival rate (requests/second)")
	duration := flag.Duration("duration", 5*time.Second, "attack duration")
	inflight := flag.Int("inflight", 64, "max concurrent requests")
	apps := flag.String("apps", "mcf,povray", "comma-separated applications, one core each, in every submitted scenario")
	work := flag.Float64("work", 3*100_000_000*2048, "instructions per job in every submitted scenario")
	name := flag.String("name", "loadgen", "label for the result")
	out := flag.String("o", "", "write the JSON result here (default stdout)")
	flag.Parse()

	var cores []scenario.CoreSpec
	for _, app := range strings.Split(*apps, ",") {
		if app = strings.TrimSpace(app); app != "" {
			cores = append(cores, scenario.CoreSpec{Jobs: []scenario.JobSpec{{App: app, Work: *work}}})
		}
	}
	if len(cores) == 0 {
		log.Fatal("no applications given")
	}

	c, err := client.Dial(*url)
	if err != nil {
		log.Fatal(err)
	}
	// Rejections are the measurement: the client must surface them, not
	// retry them away.
	c.MaxRetries = -1

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("attacking %s at %g req/s for %s", *url, *rps, *duration)
	res := loadgen.Run(ctx, loadgen.Config{
		Name:        *name,
		RPS:         *rps,
		Duration:    *duration,
		MaxInflight: *inflight,
		Attack: loadgen.SubmitAttack(c, func(name string) scenario.Spec {
			return scenario.Spec{Name: name, RM: "RM3", Cores: cores}
		}),
	})

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: sent %d: %d ok (%d forwarded), %d rejected (%.1f%%), %d errors, %d dropped; p50 %.1fms p90 %.1fms p99 %.1fms, %.0f admitted/s\n",
		res.Sent, res.OK, res.Forwarded, res.Rejected, 100*res.RejectRate, res.Errors, res.Dropped,
		res.P50Ms, res.P90Ms, res.P99Ms, res.AchievedRPS)
}
