package cache

// Copy-on-write LRU tag store.
//
// The database sweep replays many slightly different LLC delivery
// sequences on top of one warm tag state. Cloning the whole LRUStack per
// replay copies every set even though a replay touches only the sets its
// events map to — and replays forked from a shared prefix re-copy state
// they have in common. COWStack makes both cheap: tag and validity state
// live in flat structure-of-arrays rows shared between a frozen parent
// and all of its descendants, and a fork materialises (copies) a set's
// row only on the first access that touches it. Untouched sets are read
// through the ancestor chain for free.
//
// The access algorithm over a materialised row is exactly
// LRUStack.Access, so a fork fed the same stream as a cloned stack
// reports identical recency positions (asserted by
// TestCOWMatchesLRUStack).

// COWStack is a copy-on-write view of LRU tag state. It is created by
// LRUStack.ForkCOW (over a frozen full stack) or COWStack.Fork (over a
// frozen ancestor fork) and behaves like an independent LRUStack that
// shares all untouched sets with its ancestors.
type COWStack struct {
	setShift  uint
	setMask   uint64
	ways      int
	blockMask uint64

	base   *LRUStack // ultimate ancestor; read-only once forked from
	parent *COWStack // frozen ancestor fork; nil when forked from base

	// own[set] is the row index of this fork's private copy of the set
	// (into tags/valid, ways entries per row), or -1 while the set is
	// still inherited from the ancestor chain.
	own   []int32
	tags  []uint64
	valid []bool

	// frozen marks a fork that has children; its state is immutable and
	// Access panics. Forks are frozen by Fork, never unfrozen.
	frozen bool
}

// ForkCOW returns a copy-on-write fork of the stack. The stack becomes
// the fork's shared base and must not be mutated afterwards; the fork
// (and any forks derived from it) never mutates it.
func (s *LRUStack) ForkCOW() *COWStack {
	sets := s.sets()
	c := &COWStack{
		setShift:  s.setShift,
		setMask:   s.setMask,
		ways:      s.ways,
		blockMask: s.blockMask,
		base:      s,
		own:       make([]int32, sets),
		// Full-capacity arenas: materialisation never reallocates, and
		// rows keep stable offsets for descendants reading through the
		// chain.
		tags:  make([]uint64, 0, sets*s.ways),
		valid: make([]bool, 0, sets*s.ways),
	}
	for i := range c.own {
		c.own[i] = -1
	}
	return c
}

// sets returns the number of sets the stack tracks.
func (s *LRUStack) sets() int { return int(s.setMask) + 1 }

// Fork freezes s and returns a child fork: the child shares every set
// with s (and s's ancestors) until it touches it. Freezing is what makes
// prefix-sharing replays safe — a snapshot with descendants can never
// drift under them.
func (s *COWStack) Fork() *COWStack {
	s.frozen = true
	c := &COWStack{
		setShift:  s.setShift,
		setMask:   s.setMask,
		ways:      s.ways,
		blockMask: s.blockMask,
		base:      s.base,
		parent:    s,
		own:       make([]int32, len(s.own)),
		tags:      make([]uint64, 0, len(s.own)*s.ways),
		valid:     make([]bool, 0, len(s.own)*s.ways),
	}
	for i := range c.own {
		c.own[i] = -1
	}
	return c
}

// Clone returns an unfrozen deep copy of the fork's private state; the
// shared ancestor chain is reused as is (it is immutable).
func (s *COWStack) Clone() *COWStack {
	c := *s
	c.frozen = false
	c.own = append([]int32(nil), s.own...)
	c.tags = append([]uint64(nil), s.tags...)
	c.valid = append([]bool(nil), s.valid...)
	return &c
}

// MaterializedSets returns how many sets this fork has privately copied
// — the COW store's work measure (a full clone would be Sets()).
func (s *COWStack) MaterializedSets() int { return len(s.tags) / s.ways }

// Sets returns the number of sets the stack tracks.
func (s *COWStack) Sets() int { return len(s.own) }

// Ways returns the deepest recency position tracked.
func (s *COWStack) Ways() int { return s.ways }

// materialize copies the set's row from the nearest ancestor that holds
// it into this fork's private arrays and returns the new row index.
func (s *COWStack) materialize(set int) int32 {
	var srcT []uint64
	var srcV []bool
	found := false
	for p := s.parent; p != nil; p = p.parent {
		if ri := p.own[set]; ri >= 0 {
			b := int(ri) * p.ways
			srcT, srcV = p.tags[b:b+p.ways], p.valid[b:b+p.ways]
			found = true
			break
		}
	}
	if !found {
		b := set * s.base.ways
		srcT, srcV = s.base.tags[b:b+s.base.ways], s.base.valid[b:b+s.base.ways]
	}
	ri := int32(len(s.tags) / s.ways)
	s.tags = append(s.tags, srcT...)
	s.valid = append(s.valid, srcV...)
	s.own[set] = ri
	return ri
}

// Access touches addr and returns its 1-based recency position before
// the access, or 0 if the tag was not resident in any tracked position —
// the same contract, and bit-identical behaviour, as LRUStack.Access.
func (s *COWStack) Access(addr uint64) int {
	if s.frozen {
		panic("cache: Access on a frozen COW fork (it has descendants)")
	}
	tag := addr & s.blockMask
	set := int((addr >> s.setShift) & s.setMask)
	ri := s.own[set]
	if ri < 0 {
		ri = s.materialize(set)
	}
	b := int(ri) * s.ways
	row := s.tags[b : b+s.ways]
	val := s.valid[b : b+s.ways]
	pos := 0
	for i := 0; i < s.ways; i++ {
		// Tag first: it almost always differs, sparing the validity load.
		if row[i] == tag && val[i] {
			pos = i + 1
			copy(row[1:], row[:i])
			copy(val[1:], val[:i])
			row[0], val[0] = tag, true
			return pos
		}
	}
	copy(row[1:], row[:s.ways-1])
	copy(val[1:], val[:s.ways-1])
	row[0], val[0] = tag, true
	return 0
}
