package energymodel

import (
	"math"
	"sync"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/power"
)

var (
	once   sync.Once
	shared *db.DB
	dbErr  error
)

func stats(t *testing.T, set config.Setting) perfmodel.IntervalStats {
	t.Helper()
	once.Do(func() {
		b, err := bench.ByName("mcf")
		if err != nil {
			dbErr = err
			return
		}
		shared, dbErr = db.Build([]*bench.Benchmark{b}, db.Options{TraceLen: 16384, Warmup: 4096})
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	s, err := shared.Stats("mcf", 0, set)
	if err != nil {
		t.Fatal(err)
	}
	return perfmodel.FromDB(s, set)
}

func TestEnergyComposition(t *testing.T) {
	st := stats(t, config.Baseline())
	set := config.Baseline()
	got := EnergyPI(&st, perfmodel.Model3, set)
	v := config.Voltage(set.FGHz())
	dyn := power.EPIDynJ(set.Core, v)
	static := power.StaticPowerW(set.Core, set.FGHz()) * st.TimePI(perfmodel.Model3, set) * 1e-9
	mem := MemEnergyPI(&st, set.Ways)
	want := dyn + static + mem
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("EnergyPI = %g, want %g", got, want)
	}
	if got <= 0 {
		t.Fatal("energy must be positive")
	}
}

func TestMemEnergyDifferenceTerm(t *testing.T) {
	// Eq. 5: more ways → fewer misses → less memory energy; the DM term
	// is negative for a larger target allocation.
	st := stats(t, config.Baseline())
	eSmall := MemEnergyPI(&st, config.MinWays)
	eBase := MemEnergyPI(&st, config.BaseWays)
	eBig := MemEnergyPI(&st, config.MaxWays)
	if !(eSmall > eBase && eBase > eBig) {
		t.Fatalf("memory energy not monotone: %g %g %g", eSmall, eBase, eBig)
	}
	// At the current allocation DM = 0, so the term equals MA × e_mem.
	if math.Abs(eBase-st.MemAccPI*power.EMemAccessJ) > 1e-18 {
		t.Fatal("DM must vanish at the current allocation")
	}
}

func TestMemEnergyNeverNegative(t *testing.T) {
	st := stats(t, config.Setting{Core: config.SizeM, Freq: config.BaseFreqIdx, Ways: config.MinWays})
	for w := config.MinWays; w <= config.MaxWays; w++ {
		if MemEnergyPI(&st, w) < 0 {
			t.Fatalf("negative memory energy at w=%d", w)
		}
	}
}

func TestEnergyGrowsWithVoltage(t *testing.T) {
	// At a fixed core size and allocation, pushing frequency up past the
	// baseline must increase predicted energy (quadratic dynamic cost
	// dominating the shrinking static×time term).
	st := stats(t, config.Baseline())
	base := EnergyPI(&st, perfmodel.Model3, config.Baseline())
	hi := EnergyPI(&st, perfmodel.Model3,
		config.Setting{Core: config.SizeM, Freq: config.NumFreqs - 1, Ways: config.BaseWays})
	if hi <= base {
		t.Fatalf("max-VF energy %g not above baseline %g", hi, base)
	}
}

func TestEnergyDependsOnModelThroughTime(t *testing.T) {
	// Model1 predicts more time than Model3, so the static term makes
	// its energy estimate at the same setting at least as large.
	st := stats(t, config.Baseline())
	set := config.Setting{Core: config.SizeL, Freq: 2, Ways: config.BaseWays}
	e1 := EnergyPI(&st, perfmodel.Model1, set)
	e3 := EnergyPI(&st, perfmodel.Model3, set)
	if e1 < e3 {
		t.Fatalf("Model1 energy %g below Model3 %g", e1, e3)
	}
}
