// Package cluster is the gossip membership and failure-detection layer
// of a qosrmd cluster: each node keeps a local view of every other node
// — address, stable node ID, incarnation, liveness state — and views
// converge by periodic anti-entropy exchange (push-pull of the full
// member list over GET/POST /v1/cluster, which internal/server mounts).
//
// The failure detector is SWIM-lite. Every probe interval a node
// exchanges member lists with each address it knows (small clusters, so
// probing everyone beats probing a random member — convergence in one
// round instead of O(log n)); a member whose exchange fails goes alive →
// suspect, and a further failed probe after SuspectTimeout confirms
// suspect → dead. Dead members leave the forwarding rotation but stay
// probed until DeadTTL prunes them — that re-probe is what heals a
// partition (a "dead" node that answers again is directly observed
// alive) and what delivers the death rumor to a node that never died, so
// it can refute it.
//
// Refutation is incarnation-based, exactly SWIM's: only a node itself
// increments its own incarnation. When a node learns — from any exchange
// — that someone claims it suspect or dead at an incarnation at least
// its own, it bumps its incarnation past the claim and re-asserts
// itself; higher incarnations win every merge, so the re-assertion
// overrides the stale rumor everywhere it spread. A node that crashes
// and reboots (same ID, incarnation reset) refutes its own tombstone the
// same way on first contact, which is why rejoining needs no restart of
// anything else.
//
// The package is a pure state machine — no I/O, no goroutines, no HTTP;
// internal/server owns the loop, the endpoints and the transport. That
// keeps membership property-testable: the convergence test drives N
// in-process instances through random kills, rejoins and partitions on a
// fake clock and asserts every live view converges.
package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"
)

// State is a member's liveness as one node sees it, ordered by badness:
// a merge at equal incarnation keeps the worse state, so a death rumor
// can only be overridden by the subject's own higher incarnation.
type State int

const (
	// Alive: the most recent probe (or fresher gossip) succeeded.
	Alive State = iota
	// Suspect: a probe missed; the member stays in the forwarding
	// rotation, ranked last, until a confirmation round settles it.
	Suspect
	// Dead: a further probe failed after SuspectTimeout. Dead members
	// leave the rotation but are still probed until DeadTTL prunes
	// them, so a healed partition or a rejoin is noticed.
	Dead
)

// Wire spellings of State.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

func (s State) String() string {
	switch s {
	case Alive:
		return StateAlive
	case Suspect:
		return StateSuspect
	default:
		return StateDead
	}
}

// parseState maps a wire state; anything unrecognised is treated as
// suspect — an unknown claim must not revive a member (alive) nor
// tombstone it (dead) on its own.
func parseState(s string) State {
	switch s {
	case StateAlive:
		return Alive
	case StateDead:
		return Dead
	default:
		return Suspect
	}
}

// Member is the gossiped record of one node.
type Member struct {
	// ID is the node's stable identity (qosrmd -node-id, random per
	// boot when unset). The trail-based forwarding loop protection and
	// the membership map key by it.
	ID string `json:"id"`
	// Addr is the base URL peers reach the node at ("" while unknown —
	// a node that does not advertise can probe and forward, but never
	// enters anyone else's rotation).
	Addr string `json:"addr,omitempty"`
	// Incarnation is the node's self-asserted liveness epoch. Only the
	// node itself increments it (to refute suspicion); higher
	// incarnations win every merge unconditionally.
	Incarnation uint64 `json:"incarnation"`
	// State is the sender's view: "alive", "suspect" or "dead".
	State string `json:"state"`
	// ParamsHash fingerprints the database build the node serves
	// (dbstore.ParamsHash, hex). Nodes with different hashes never
	// admit each other into a rotation — version-skew safety.
	ParamsHash string `json:"params_hash,omitempty"`
}

// Exchange is the anti-entropy body of GET/POST /v1/cluster: the
// sender's self entry plus its full member view. POST merges both ways
// (the receiver merges the request, the sender merges the response);
// GET is the pull-only half for nodes that cannot advertise.
type Exchange struct {
	From    Member   `json:"from"`
	Members []Member `json:"members,omitempty"`
}

// Config parameterises a Membership.
type Config struct {
	// ID is this node's stable identity; NewID() supplies a random one.
	ID string
	// Addr is the advertised base URL ("" = do not introduce self).
	Addr string
	// ParamsHash is this node's database fingerprint (hex).
	ParamsHash string
	// Seeds are addresses probed while no member covers them — the
	// -join/-peers bootstrap list.
	Seeds []string
	// SuspectTimeout is the confirmation window: a suspect member whose
	// next failed probe comes at least this long after the suspicion
	// goes dead. Default 3 s.
	SuspectTimeout time.Duration
	// DeadTTL is how long a dead member stays tracked (and probed for
	// rejoin) before it is pruned. Default 40× SuspectTimeout.
	DeadTTL time.Duration
	// Clock overrides the time source (tests); nil means time.Now.
	Clock func() time.Time
}

// NewID draws a random 48-bit node identity.
func NewID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal platform breakage;
		// a fixed ID degrades loop protection, not correctness.
		return "node-0"
	}
	return hex.EncodeToString(b[:])
}

// memberState is the tracked view of one remote node.
type memberState struct {
	id        string
	addr      string
	inc       uint64
	hash      string
	state     State
	suspectAt time.Time // when the current suspicion started
	deadAt    time.Time // when the member was confirmed dead
	lastAck   time.Time // last successful direct exchange
}

func (m *memberState) wire() Member {
	return Member{ID: m.id, Addr: m.addr, Incarnation: m.inc, State: m.state.String(), ParamsHash: m.hash}
}

// Membership is one node's view of the cluster. All methods are safe
// for concurrent use.
type Membership struct {
	cfg Config

	mu      sync.Mutex
	inc     uint64
	members map[string]*memberState // by ID; never contains self
	// selfAddrs are seed addresses that turned out to be this node
	// itself (symmetric seed lists) — skipped forever.
	selfAddrs map[string]bool
}

// New builds a membership view. The node starts at incarnation 1
// knowing only its seeds.
func New(cfg Config) *Membership {
	if cfg.ID == "" {
		cfg.ID = NewID()
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 3 * time.Second
	}
	if cfg.DeadTTL <= 0 {
		cfg.DeadTTL = 40 * cfg.SuspectTimeout
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	seeds := make([]string, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		if s = strings.TrimRight(strings.TrimSpace(s), "/"); s != "" && s != cfg.Addr {
			seeds = append(seeds, s)
		}
	}
	cfg.Seeds = seeds
	return &Membership{
		cfg:       cfg,
		inc:       1,
		members:   make(map[string]*memberState),
		selfAddrs: make(map[string]bool),
	}
}

// ID returns this node's identity.
func (m *Membership) ID() string { return m.cfg.ID }

// Incarnation returns this node's current self-asserted incarnation.
func (m *Membership) Incarnation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inc
}

// Self returns this node's own gossip entry.
func (m *Membership) Self() Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.self()
}

func (m *Membership) self() Member {
	return Member{ID: m.cfg.ID, Addr: m.cfg.Addr, Incarnation: m.inc, State: StateAlive, ParamsHash: m.cfg.ParamsHash}
}

// Snapshot renders the full view for an exchange: self first (when
// advertised), then every tracked member, sorted by ID — the format is
// canonical so tests can compare views directly.
func (m *Membership) Snapshot() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members)+1)
	if m.cfg.Addr != "" {
		out = append(out, m.self())
	}
	ids := make([]string, 0, len(m.members))
	for id := range m.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, m.members[id].wire())
	}
	return out
}

// Merge applies a remote view and reports whether it forced a
// self-refutation (someone claimed this node suspect or dead, and the
// node bumped its incarnation past the claim).
func (m *Membership) Merge(list []Member) (refuted bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Clock()
	for i := range list {
		if m.mergeEntry(&list[i], now) {
			refuted = true
		}
	}
	return refuted
}

// mergeEntry folds one remote record in. Merge order: a higher
// incarnation wins unconditionally; at equal incarnation the worse
// state wins (dead > suspect > alive), so a rumor is only ever
// overridden by the subject's own re-assertion.
func (m *Membership) mergeEntry(e *Member, now time.Time) (refuted bool) {
	if e.ID == "" {
		return false
	}
	if e.ID == m.cfg.ID {
		// Claims about this node itself: refute suspicion by bumping
		// past it — only the node owns its incarnation.
		st := parseState(e.State)
		switch {
		case st != Alive && e.Incarnation >= m.inc:
			m.inc = e.Incarnation + 1
			return true
		case st == Alive && e.Incarnation > m.inc:
			// A stale ghost of a previous boot asserted higher: adopt,
			// so this process's claims are at least as fresh.
			m.inc = e.Incarnation
		}
		return false
	}
	if e.ParamsHash != "" && m.cfg.ParamsHash != "" && e.ParamsHash != m.cfg.ParamsHash {
		// Version skew: a node serving a different database build never
		// enters this view (and so never the forwarding rotation).
		return false
	}
	st := parseState(e.State)
	me, ok := m.members[e.ID]
	if !ok {
		if e.Addr == "" && st == Dead {
			// An unreachable tombstone carries no information worth
			// tracking (nothing to probe, nothing to rotate to).
			return false
		}
		me = &memberState{id: e.ID, addr: e.Addr, inc: e.Incarnation, hash: e.ParamsHash, state: st}
		switch st {
		case Suspect:
			me.suspectAt = now
		case Dead:
			me.deadAt = now
		}
		m.members[e.ID] = me
		return false
	}
	switch {
	case e.Incarnation > me.inc:
		me.inc = e.Incarnation
		m.setState(me, st, now)
	case e.Incarnation == me.inc && st > me.state:
		// Anti-flap: a rumor about a member this node heard from
		// directly within the confirmation window is ignored — the
		// local detector is fresher than the gossip path, and the
		// rumor's holder will deliver it to the subject itself (dead
		// members keep being probed), triggering the real refutation.
		if now.Sub(me.lastAck) < m.cfg.SuspectTimeout {
			break
		}
		m.setState(me, st, now)
	}
	if me.addr == "" && e.Addr != "" {
		me.addr = e.Addr
	}
	if me.hash == "" && e.ParamsHash != "" {
		me.hash = e.ParamsHash
	}
	return false
}

// setState moves a member to st, stamping the transition times the
// failure detector and the pruner key off.
func (m *Membership) setState(me *memberState, st State, now time.Time) {
	if me.state == st {
		return
	}
	me.state = st
	switch st {
	case Suspect:
		me.suspectAt = now
	case Dead:
		me.deadAt = now
	}
}

// Ack records a successful direct exchange with addr: the responder
// (ex.From) is observed alive — direct evidence, overriding any rumor
// at any incarnation — and its view is merged. A different member still
// claiming the same address is a ghost of a previous boot and is
// tombstoned, since one address serves one node.
func (m *Membership) Ack(addr string, ex *Exchange) (refuted bool) {
	addr = strings.TrimRight(addr, "/")
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Clock()
	for i := range ex.Members {
		if m.mergeEntry(&ex.Members[i], now) {
			refuted = true
		}
	}
	from := ex.From
	if from.ID == m.cfg.ID {
		// The probed address answered as this node itself: a seed list
		// naming our own URL. Never probe it again.
		m.selfAddrs[addr] = true
		return refuted
	}
	if from.ID == "" {
		return refuted
	}
	if from.ParamsHash != "" && m.cfg.ParamsHash != "" && from.ParamsHash != m.cfg.ParamsHash {
		return refuted
	}
	me, ok := m.members[from.ID]
	if !ok {
		me = &memberState{id: from.ID}
		m.members[from.ID] = me
	}
	me.addr = addr
	if from.Addr != "" {
		me.addr = strings.TrimRight(from.Addr, "/")
	}
	if from.Incarnation > me.inc {
		me.inc = from.Incarnation
	}
	if from.ParamsHash != "" {
		me.hash = from.ParamsHash
	}
	me.state = Alive
	me.suspectAt = time.Time{}
	me.lastAck = now
	// One address serves one node: a different member still claiming
	// this address is a ghost of a previous boot. (Address-less members
	// — nodes that do not advertise — are exempt; they share "".)
	if me.addr != "" {
		for _, other := range m.members {
			if other.id != me.id && other.addr == me.addr && other.state != Dead {
				m.setState(other, Dead, now)
			}
		}
	}
	return refuted
}

// Resolve records a node identity learned out of band (the forwarder's
// /healthz poll carries the node ID): a seed address becomes a real
// member before any gossip round completes, so trail-based loop
// protection applies from the very first forward.
func (m *Membership) Resolve(addr, id string) {
	addr = strings.TrimRight(addr, "/")
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == "" {
		return
	}
	if id == m.cfg.ID {
		m.selfAddrs[addr] = true
		return
	}
	if me, ok := m.members[id]; ok {
		if me.addr == "" {
			me.addr = addr
		}
		return
	}
	m.members[id] = &memberState{id: id, addr: addr, state: Alive, lastAck: m.cfg.Clock()}
}

// Fail records a failed probe of addr: alive goes suspect, and a
// suspect whose suspicion is at least SuspectTimeout old is confirmed
// dead. Unresolved seeds have no member to transition — they just stay
// seeds, probed again next round.
func (m *Membership) Fail(addr string) {
	addr = strings.TrimRight(addr, "/")
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Clock()
	for _, me := range m.members {
		if me.addr != addr {
			continue
		}
		switch me.state {
		case Alive:
			m.setState(me, Suspect, now)
		case Suspect:
			if now.Sub(me.suspectAt) >= m.cfg.SuspectTimeout {
				m.setState(me, Dead, now)
			}
		}
	}
}

// ProbeTargets returns the addresses to exchange with this round: every
// tracked member with a known address — dead ones included, which is
// how rejoins and healed partitions are noticed and how death rumors
// reach their subject for refutation — plus any seed no member covers.
// Dead members past DeadTTL are pruned here.
func (m *Membership) ProbeTargets() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Clock()
	covered := map[string]bool{}
	var out []string
	for id, me := range m.members {
		if me.state == Dead && now.Sub(me.deadAt) > m.cfg.DeadTTL {
			delete(m.members, id)
			continue
		}
		if me.addr == "" || covered[me.addr] {
			continue
		}
		covered[me.addr] = true
		out = append(out, me.addr)
	}
	for _, s := range m.cfg.Seeds {
		if !covered[s] && !m.selfAddrs[s] {
			covered[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Rotation returns the forwardable peers: non-dead members with a known
// address (alive before suspect is the caller's ranking concern — the
// State field travels along), plus unresolved seeds as address-only
// placeholder members whose identity the forwarder's health poll
// resolves before the first forward.
func (m *Membership) Rotation() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	covered := map[string]bool{}
	var out []Member
	for _, me := range m.members {
		if me.state == Dead || me.addr == "" {
			continue
		}
		covered[me.addr] = true
		out = append(out, me.wire())
	}
	for _, s := range m.cfg.Seeds {
		if !covered[s] && !m.selfAddrs[s] {
			out = append(out, Member{Addr: s, State: StateAlive})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Addr < out[b].Addr })
	return out
}

// Counts reports how many tracked members are in each state.
func (m *Membership) Counts() (alive, suspect, dead int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, me := range m.members {
		switch me.state {
		case Alive:
			alive++
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	return alive, suspect, dead
}

// Live returns the IDs this node considers alive, itself included —
// the set the convergence tests compare across nodes.
func (m *Membership) Live() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []string{m.cfg.ID}
	for id, me := range m.members {
		if me.state == Alive {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
