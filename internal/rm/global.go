package rm

import (
	"fmt"
	"math"

	"qosrm/internal/config"
	"qosrm/internal/perfmodel"
)

// aggregate is a reduced energy curve over a group of cores: energy as a
// function of the total ways granted to the group, plus the split table
// needed to backtrack the optimum.
type aggregate struct {
	lo, hi int // group covers cores lo..hi-1
	minW   int // smallest representable total allocation
	energy []float64
	// split[i] is, for total allocation minW+i, the number of ways given
	// to the left child group (meaningful only for inner nodes).
	split []int
	left  *aggregate
	right *aggregate
	// leafCurve is set on leaves.
	leafCurve *Curve
}

// GlobalOptimize reduces the per-core energy curves pairwise until a
// single curve remains (Figure 3), then backtracks the way split that
// minimises Σ E_j(w_j) subject to Σ w_j = totalWays and
// MinWays ≤ w_j ≤ MaxWays.
//
// It returns the chosen setting per core (Pick entries of each curve at
// the granted allocation). The boolean is false when no feasible
// distribution exists, which cannot happen while the baseline setting
// itself is feasible for every core.
//
// The reduction is the paper's polynomial-complexity scheme: combining
// two curves of length L costs O(L²) and the recursion performs n-1
// combines for n cores.
func GlobalOptimize(curves []*Curve, totalWays int) ([]config.Setting, bool) {
	n := len(curves)
	if n == 0 {
		return nil, false
	}
	if totalWays < n*config.MinWays || totalWays > n*config.MaxWays {
		panic(fmt.Sprintf("rm: %d ways cannot be split across %d cores", totalWays, n))
	}
	root := reduce(curves, 0, n)
	idx := totalWays - root.minW
	if idx < 0 || idx >= len(root.energy) || math.IsInf(root.energy[idx], 1) {
		return nil, false
	}
	out := make([]config.Setting, n)
	assign(root, totalWays, curves, out)
	return out, true
}

// reduce builds the reduction tree over curves[lo:hi].
func reduce(curves []*Curve, lo, hi int) *aggregate {
	if hi-lo == 1 {
		a := &aggregate{
			lo: lo, hi: hi,
			minW:      config.MinWays,
			energy:    make([]float64, perfmodel.NumWays),
			leafCurve: curves[lo],
		}
		copy(a.energy, curves[lo].Energy[:])
		return a
	}
	mid := (lo + hi) / 2
	l := reduce(curves, lo, mid)
	r := reduce(curves, mid, hi)
	return combine(l, r)
}

// combine merges two group curves: E(W) = min over wl+wr=W of
// El(wl)+Er(wr).
func combine(l, r *aggregate) *aggregate {
	a := &aggregate{
		lo: l.lo, hi: r.hi,
		minW:   l.minW + r.minW,
		left:   l,
		right:  r,
		energy: make([]float64, len(l.energy)+len(r.energy)-1),
		split:  make([]int, len(l.energy)+len(r.energy)-1),
	}
	for i := range a.energy {
		a.energy[i] = math.Inf(1)
		a.split[i] = -1
	}
	for li, le := range l.energy {
		if math.IsInf(le, 1) {
			continue
		}
		for ri, re := range r.energy {
			if math.IsInf(re, 1) {
				continue
			}
			i := li + ri
			if e := le + re; e < a.energy[i] {
				a.energy[i] = e
				a.split[i] = l.minW + li
			}
		}
	}
	return a
}

// assign walks the reduction tree distributing the granted total.
func assign(a *aggregate, total int, curves []*Curve, out []config.Setting) {
	if a.leafCurve != nil {
		out[a.lo] = a.leafCurve.Pick[total-config.MinWays]
		return
	}
	leftW := a.split[total-a.minW]
	if leftW < 0 {
		panic("rm: backtracking through infeasible aggregate")
	}
	assign(a.left, leftW, curves, out)
	assign(a.right, total-leftW, curves, out)
}
