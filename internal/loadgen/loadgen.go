// Package loadgen is an open-loop load generator for qosrmd: requests
// are launched on a fixed arrival schedule (a target rate), not after
// the previous response — the vegeta model. Open-loop load is what
// admission control actually faces in production: clients do not slow
// down because the server queues, so a saturated node must shed, and
// the generator measures exactly how much it sheds (reject rate), how
// fast it answers what it admits (p50/p90/p99), and how much load a
// cluster
// peer absorbed (forwarded count).
//
// Latency percentiles come from an obs.Histogram with the same log2
// bucket layout the server's /metrics histograms use, so client-side
// and server-side distributions compare bucket for bucket.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qosrm/internal/client"
	"qosrm/internal/obs"
	"qosrm/internal/scenario"
)

// Outcome classifies one attacked request.
type Outcome struct {
	// Rejected means admission was refused (queue full, rate limited,
	// draining) — the request worked, the server said no.
	Rejected bool
	// Error means the exchange itself failed (transport error,
	// unexpected status), distinct from an honest rejection.
	Error bool
	// Forwarded means a cluster peer admitted the request on the
	// target's behalf (the job handle carries an Origin).
	Forwarded bool
}

// Config parameterises one attack run.
type Config struct {
	// Name labels the run in the result (e.g. "single-node").
	Name string
	// RPS is the target arrival rate; one request is launched every
	// 1/RPS regardless of how previous requests are faring.
	RPS float64
	// Duration bounds the arrival schedule; in-flight requests are
	// drained (and measured) past it.
	Duration time.Duration
	// MaxInflight caps concurrent requests (default 64). An arrival
	// finding the cap exhausted is dropped and counted — the generator
	// itself never becomes the queue it is trying to measure.
	MaxInflight int
	// Attack issues one request and classifies it.
	Attack func(ctx context.Context) Outcome
}

// Result is one attack run's measurement, serialised into the
// repository's BENCH_<n>.json trajectory.
type Result struct {
	Name        string  `json:"name"`
	TargetRPS   float64 `json:"target_rps"`
	DurationSec float64 `json:"duration_sec"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Rejected    int     `json:"rejected"`
	Forwarded   int     `json:"forwarded"`
	Errors      int     `json:"errors"`
	Dropped     int     `json:"dropped"`
	// AchievedRPS is admitted requests per second of attack time — the
	// throughput the node (or cluster) actually absorbed.
	AchievedRPS float64 `json:"achieved_rps"`
	// RejectRate is Rejected/Sent.
	RejectRate float64 `json:"reject_rate"`
	// Latency quantiles of every completed exchange (rejections
	// included — admission latency is latency), estimated from the
	// log2-bucket histogram at bucket resolution.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// Run executes one open-loop attack and reports the measurement.
func Run(ctx context.Context, cfg Config) *Result {
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 64
	}
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}

	var (
		mu   sync.Mutex
		hist obs.Histogram
		res  = Result{Name: cfg.Name, TargetRPS: cfg.RPS}
		wg   sync.WaitGroup
		sem  = make(chan struct{}, maxInflight)
	)
	record := func(out Outcome, lat time.Duration) {
		hist.Observe(lat)
		mu.Lock()
		defer mu.Unlock()
		switch {
		case out.Error:
			res.Errors++
		case out.Rejected:
			res.Rejected++
		default:
			res.OK++
			if out.Forwarded {
				res.Forwarded++
			}
		}
	}

	start := time.Now()
	total := int(cfg.RPS*cfg.Duration.Seconds() + 0.5)
attack:
	for i := 0; i < total; i++ {
		// Arrival i is due at start + i*interval regardless of how
		// earlier requests are faring. Sleeping until the due time
		// (rather than ranging over a ticker, which coalesces missed
		// ticks) means a scheduling hiccup is repaid with a catch-up
		// burst instead of silently lowering the offered rate — the
		// generator delivers the target RPS it claims to.
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			select {
			case <-ctx.Done():
				break attack
			case <-time.After(d):
			}
		} else if ctx.Err() != nil {
			break attack
		}
		res.Sent++
		select {
		case sem <- struct{}{}:
		default:
			// The open loop must not close itself: an arrival that
			// cannot launch is shed here, visibly, instead of
			// queueing inside the generator.
			res.Dropped++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			out := cfg.Attack(ctx)
			record(out, time.Since(t0))
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.DurationSec = elapsed.Seconds()
	if res.Sent > 0 {
		res.RejectRate = float64(res.Rejected) / float64(res.Sent)
	}
	if elapsed > 0 {
		res.AchievedRPS = float64(res.OK) / elapsed.Seconds()
	}
	res.P50Ms = float64(hist.Quantile(0.50)) / float64(time.Millisecond)
	res.P90Ms = float64(hist.Quantile(0.90)) / float64(time.Millisecond)
	res.P99Ms = float64(hist.Quantile(0.99)) / float64(time.Millisecond)
	return &res
}

// SubmitAttack returns an Attack that submits one-scenario sweep jobs
// to a qosrmd node through c, each under a fresh idempotency key and a
// unique scenario name. A 429/503 counts as rejected, any other failure
// as an error, and an admission whose job handle names a peer (a
// cluster forward) as forwarded. The client must not retry internally
// (set MaxRetries < 0): the generator wants to observe every rejection,
// not have the client absorb them.
func SubmitAttack(c *client.Client, spec func(name string) scenario.Spec) func(ctx context.Context) Outcome {
	var seq atomic.Int64
	return func(ctx context.Context) Outcome {
		sp := spec(fmt.Sprintf("load-%d", seq.Add(1)))
		st, err := c.SubmitSweepKey(ctx, []scenario.Spec{sp}, client.NewIdempotencyKey())
		if err != nil {
			var se *client.ServiceError
			if errors.As(err, &se) && (se.StatusCode == 429 || se.StatusCode == 503) {
				return Outcome{Rejected: true}
			}
			return Outcome{Error: true}
		}
		return Outcome{Forwarded: st.Origin != ""}
	}
}
