// Dynamic co-simulation: the multiprogrammed-churn extension of the
// static engine in sim.go. Where Run pins one application per core for
// the whole simulation, RunDynamic drives per-core application queues —
// jobs arrive, execute a bounded amount of work, finish or depart early,
// and the next queued job takes over the core — with per-application QoS
// relaxation and mid-run QoS-target step changes. Everything inside an
// interval (energy accounting, QoS bookkeeping, RM invocation, overhead
// charging) is shared with the static engine through the core methods,
// and a static one-job-per-core queue reproduces Run bit for bit
// (asserted by TestDynamicMatchesStaticRun).
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/power"
	"qosrm/internal/rm"
)

// Job is one queued application of a dynamic run.
type Job struct {
	// App is the application to execute; it must be present in the
	// database the run reads from.
	App *bench.Benchmark
	// Alpha is the per-application QoS relaxation. Zero inherits the
	// core's base relaxation (Config.Alpha, or the latest QoS step's
	// value); an explicit value applies to this job only.
	Alpha float64
	// ArrivalNs is the earliest time the job may start. A job also waits
	// for its predecessors in the queue to finish or depart.
	ArrivalNs float64
	// Work is the instruction count to execute, at paper scale (the
	// engine divides by Config.Scale). Zero means the static engine's
	// default target, the suite's longest application.
	Work float64
	// DepartNs forces the job off the core at this time even if its work
	// is unfinished (a user abandoning a request, a migration, a kill).
	// Zero means the job runs to completion.
	DepartNs float64
}

// Queue is one core's job queue, executed in order.
type Queue struct {
	Jobs []Job
}

// QoSStep is one mid-run change of a core's QoS relaxation: at AtNs the
// targeted core's alpha becomes Alpha, taking effect at its subsequent
// RM invocations.
type QoSStep struct {
	AtNs  float64
	Core  int // target core; -1 applies to every core
	Alpha float64
}

// Dynamic is the workload description of one dynamic run: a queue per
// core plus an optional QoS step schedule.
type Dynamic struct {
	Queues []Queue
	Steps  []QoSStep
}

// Validate reports the first problem with the description against the
// database the run would read from.
func (dyn *Dynamic) Validate(d *db.DB) error {
	if len(dyn.Queues) == 0 {
		return fmt.Errorf("sim: dynamic run needs at least one core")
	}
	jobs := 0
	for ci, q := range dyn.Queues {
		for ji, j := range q.Jobs {
			if j.App == nil {
				return fmt.Errorf("sim: core %d job %d has no application", ci, ji)
			}
			if d.NumPhases(j.App.Name) == 0 {
				return fmt.Errorf("sim: database has no data for %q (core %d job %d)", j.App.Name, ci, ji)
			}
			if j.Alpha < 0 || j.ArrivalNs < 0 || j.Work < 0 || j.DepartNs < 0 {
				return fmt.Errorf("sim: core %d job %d has a negative parameter", ci, ji)
			}
			jobs++
		}
	}
	if jobs == 0 {
		return fmt.Errorf("sim: dynamic run has no jobs")
	}
	for i, s := range dyn.Steps {
		if s.Alpha <= 0 {
			return fmt.Errorf("sim: QoS step %d alpha %.3f not positive", i, s.Alpha)
		}
		if s.Core < -1 || s.Core >= len(dyn.Queues) {
			return fmt.Errorf("sim: QoS step %d targets core %d of %d", i, s.Core, len(dyn.Queues))
		}
		if s.AtNs < 0 {
			return fmt.Errorf("sim: QoS step %d at negative time", i)
		}
	}
	return nil
}

// JobResult is the outcome of one queued job.
type JobResult struct {
	Core int
	Slot int // index within the core's queue
	AppResult
	// StartNs is when the job began executing (≥ its arrival time).
	StartNs float64
	// Alpha is the QoS relaxation in effect when the job ended.
	Alpha float64
	// Departed marks jobs forced off the core before completing their
	// work; FinishNs is then the departure time.
	Departed bool
}

// DynamicResult is the outcome of one dynamic co-simulation.
type DynamicResult struct {
	// Jobs holds one result per executed job, in completion order.
	Jobs     []JobResult
	UncoreJ  float64
	TimeNs   float64
	EnergyJ  float64 // total: Σ jobs + uncore
	RMCalled int64
}

// ViolationRate returns the fraction of intervals that violated QoS
// (measured against the strict baseline), across all jobs.
func (r *DynamicResult) ViolationRate() float64 {
	var v, n int64
	for _, j := range r.Jobs {
		v += j.Violations
		n += j.Intervals
	}
	if n == 0 {
		return 0
	}
	return float64(v) / float64(n)
}

// BudgetViolationRate returns the fraction of intervals that exceeded
// their job's α-relaxed target — the per-app QoS contract a
// heterogeneous-alpha scenario actually promises.
func (r *DynamicResult) BudgetViolationRate() float64 {
	var v, n int64
	for _, j := range r.Jobs {
		v += j.BudgetViolations
		n += j.Intervals
	}
	if n == 0 {
		return 0
	}
	return float64(v) / float64(n)
}

// dynCore is the dynamic engine's per-core state: the shared interval
// machinery plus the queue position and a memoized self-pinned curve.
type dynCore struct {
	core
	jobs    []Job
	next    int // index of the next job to start
	slot    int // index of the running job; -1 while idle
	startNs float64
	depart  float64 // running job's departure time (0 = none)
	// baseAlpha is the relaxation jobs without an explicit Alpha inherit:
	// Config.Alpha until a QoS step overwrites it. explicitAlpha marks a
	// running job that carries its own Alpha, which QoS steps respect.
	baseAlpha     float64
	explicitAlpha bool

	// pinnedCv caches pinnedCurve(setting) for the core's current
	// setting; idle cores and cores whose running job has not produced
	// statistics yet enter the global optimisation pinned there.
	pinnedCv *rm.Curve
	pinnedAt config.Setting
}

// pinnedSelf returns the curve that represents this core as immovable at
// its current setting.
func (c *dynCore) pinnedSelf() *rm.Curve {
	if c.pinnedCv == nil || c.pinnedAt != c.setting {
		c.pinnedCv = pinnedCurve(c.setting)
		c.pinnedAt = c.setting
	}
	return c.pinnedCv
}

// active reports whether a job is currently executing on the core.
func (c *dynCore) active() bool { return c.slot >= 0 }

// event kinds of the dynamic engine's main loop. Simultaneous events
// resolve by scan order: QoS steps apply before anything else at the
// same instant, then cores in index order; within one core a departure
// fires only when strictly earlier than the core's interval or target
// boundary, so an exact tie lets the job complete its work first.
const (
	evNone = iota
	evStep
	evDepart
	evBoundary
	evArrive
)

// RunWorkspace is the reusable working set of dynamic co-simulations:
// the per-core state, the sorted step schedule, the global reduction's
// buffers and the Localize memoization, all retained across runs so a
// scenario sweep executes each spec (and its idle twin) without
// rebuilding them. The curve cache is scoped to one (database, manager,
// model, oracle) combination and resets itself when a run arrives with
// a different one; everything else is config-independent. The zero
// value is ready. Not safe for concurrent use — use one workspace per
// sweep worker.
type RunWorkspace struct {
	steps []QoSStep
	cores []dynCore
	ptrs  []*dynCore
	st    runState

	// Scope of the memoized curves in st.cache.
	db      *db.DB
	rm      rm.Kind
	model   perfmodel.Kind
	perfect bool
	scoped  bool
}

// scope prepares the workspace's run state for a run against (d, cfg):
// buffers are resized for n cores and the curve cache is dropped unless
// the run reads the same database with the same manager, model and
// oracle mode that filled it (alpha is part of every cache key, so it
// needs no scoping). Idle-manager runs never invoke the RM, so they
// neither read nor re-scope the cache — a spec's idle twin leaves the
// managed configuration's memo intact.
func (w *RunWorkspace) scope(d *db.DB, cfg *Config, n int) *runState {
	if cfg.RM != rm.Idle &&
		(!w.scoped || w.db != d || w.rm != cfg.RM || w.model != cfg.Model || w.perfect != cfg.Perfect) {
		w.st.cache.Reset()
		w.db, w.rm, w.model, w.perfect = d, cfg.RM, cfg.Model, cfg.Perfect
		w.scoped = true
	}
	if cap(w.st.curves) < n {
		w.st.curves = make([]*rm.Curve, n)
		w.st.settings = make([]config.Setting, n)
	}
	w.st.curves = w.st.curves[:n]
	w.st.settings = w.st.settings[:n]
	w.st.pinnedBase = pinnedBaseline()
	return &w.st
}

// RunDynamic co-simulates a dynamic workload under cfg, reading all
// per-interval behaviour from d. Cores with no running job idle at their
// last setting — their LLC ways stay physically allocated and are pinned
// in the global optimisation, and they draw no core energy (uncore power
// is charged for the whole chip as usual). An arriving job inherits the
// core's current setting until its first interval completes and the RM
// reallocates; a finishing or departing job triggers an immediate global
// re-optimisation when its core's queue continues.
func RunDynamic(d *db.DB, dyn Dynamic, cfg Config) (*DynamicResult, error) {
	return RunDynamicWS(d, dyn, cfg, nil)
}

// RunDynamicWS is RunDynamic reusing a workspace across calls; ws may
// be nil for a one-shot run. Results are identical to RunDynamic's —
// the workspace only recycles buffers and memoized curves whose keys
// pin all of their inputs.
func RunDynamicWS(d *db.DB, dyn Dynamic, cfg Config, ws *RunWorkspace) (*DynamicResult, error) {
	return RunDynamicCtx(nil, d, dyn, cfg, ws)
}

// RunDynamicCtx is RunDynamicWS honouring ctx: the event loop polls for
// cancellation between events, so a server can abandon an in-flight
// co-simulation as soon as its client disconnects or the service shuts
// down. A nil ctx disables the checks. A cancelled run returns ctx's
// error and no result; cancellation never changes the result of a run
// that completes.
func RunDynamicCtx(ctx context.Context, d *db.DB, dyn Dynamic, cfg Config, ws *RunWorkspace) (*DynamicResult, error) {
	cfg.fill()
	if err := dyn.Validate(d); err != nil {
		return nil, err
	}
	n := len(dyn.Queues)
	interval := float64(cfg.Interval)
	if ws == nil {
		ws = &RunWorkspace{}
	}

	// Steps apply in time order; sort a reused copy so specs may list
	// them in any order (ties keep spec order).
	steps := append(ws.steps[:0], dyn.Steps...)
	ws.steps = steps
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].AtNs < steps[j].AtNs })

	if cap(ws.cores) < n {
		ws.cores = make([]dynCore, n)
		ws.ptrs = make([]*dynCore, n)
	}
	ws.cores = ws.cores[:n]
	cores := ws.ptrs[:n]
	for i, q := range dyn.Queues {
		c := &ws.cores[i]
		// Reset per-run state; the pinned-curve memo survives across
		// runs (a pinned curve depends only on its setting).
		*c = dynCore{jobs: q.Jobs, slot: -1, baseAlpha: cfg.Alpha,
			pinnedCv: c.pinnedCv, pinnedAt: c.pinnedAt}
		c.setting = config.Baseline()
		c.alpha = cfg.Alpha
		cores[i] = c
	}

	totalWays := config.TotalWays(n)
	res := &DynamicResult{}
	st := ws.scope(d, &cfg, n)
	now := 0.0
	stepIdx := 0

	for {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		// Once every queue is drained, remaining QoS steps have nothing
		// left to retarget: end the run instead of letting no-op step
		// events stretch the wall clock (and with it the uncore energy).
		busy := false
		for _, c := range cores {
			if c.active() || c.next < len(c.jobs) {
				busy = true
				break
			}
		}
		if !busy {
			break
		}

		// Next event: the earliest QoS step, departure, interval/target
		// boundary or arrival across the system. Candidates are scanned
		// in a fixed order with strict comparisons, so simultaneous
		// events resolve deterministically: the earlier-scanned
		// candidate wins a tie — the step schedule first, then cores in
		// index order (within one core, a departure preempts the core's
		// own boundary only when strictly earlier).
		kind := evNone
		best := -1
		bestT := math.Inf(1)
		if stepIdx < len(steps) {
			kind, bestT = evStep, steps[stepIdx].AtNs
		}
		for i, c := range cores {
			if !c.active() {
				if c.next < len(c.jobs) {
					t := c.jobs[c.next].ArrivalNs
					if t < now {
						t = now // overdue arrivals start immediately
					}
					if t < bestT {
						kind, best, bestT = evArrive, i, t
					}
				}
				continue
			}
			remInterval := interval - c.intervalDone
			remTarget := c.target - c.executed
			rem := remInterval
			if remTarget < rem {
				rem = remTarget
			}
			t := now + c.stallNs + rem*c.stats.TPI()
			if c.depart > 0 && c.depart < t {
				if c.depart < bestT {
					kind, best, bestT = evDepart, i, c.depart
				}
				continue
			}
			if t < bestT {
				kind, best, bestT = evBoundary, i, t
			}
		}
		if kind == evNone {
			break // nothing left but exhausted step/queue state
		}
		if bestT < now {
			bestT = now
		}

		// Advance every running core to bestT, charging energy.
		dt := bestT - now
		for _, c := range cores {
			if !c.active() {
				continue
			}
			d := dt
			if c.stallNs > 0 {
				// Overhead time passes without retiring instructions.
				s := c.stallNs
				if s > d {
					s = d
				}
				c.stallNs -= s
				d -= s
			}
			c.advance(d / c.stats.TPI())
		}
		now = bestT

		switch kind {
		case evStep:
			s := steps[stepIdx]
			stepIdx++
			// A step retargets the core's base relaxation and the running
			// job, unless that job carries its own explicit per-app
			// relaxation — an explicit alpha is a per-job contract.
			for i, c := range cores {
				if s.Core == -1 || s.Core == i {
					c.baseAlpha = s.Alpha
					if !c.explicitAlpha {
						c.alpha = s.Alpha
					}
				}
			}

		case evArrive:
			if err := cores[best].startNext(d, &cfg, now, interval); err != nil {
				return nil, err
			}

		case evDepart:
			if err := transition(d, &cfg, cores, best, totalWays, st, res, now, interval, true); err != nil {
				return nil, err
			}

		case evBoundary:
			c := cores[best]
			if c.executed >= c.target-1e-6 {
				if err := transition(d, &cfg, cores, best, totalWays, st, res, now, interval, false); err != nil {
					return nil, err
				}
				continue
			}
			// Interval boundary (Figure 5): record QoS, roll the phase,
			// and invoke the RM — exactly the static engine's path.
			if cfg.Trace != nil {
				alloc := make([]int, n)
				for i, o := range cores {
					alloc[i] = o.setting.Ways
				}
				cfg.Trace(Event{
					TimeNs:      now,
					Core:        best,
					Bench:       c.app.Name,
					Interval:    c.intervalIdx,
					Phase:       c.phase,
					Setting:     c.setting,
					Allocations: alloc,
				})
			}
			if err := c.finishInterval(d, cfg, now); err != nil {
				return nil, err
			}
			if cfg.RM != rm.Idle {
				res.RMCalled++
				if err := invokeRMDynamic(d, &cfg, cores, best, totalWays, st, true); err != nil {
					return nil, err
				}
			}
			if err := c.startInterval(d, now); err != nil {
				return nil, err
			}
		}
	}

	res.TimeNs = now
	res.UncoreJ = power.UncorePowerW(n) * now * 1e-9
	res.EnergyJ = res.UncoreJ
	// Jobs are recorded in completion order; total in (core, slot) order
	// so the summation sequence — and with it the floating-point result —
	// matches the static engine's per-core accumulation exactly.
	for i := 0; i < n; i++ {
		for j := range res.Jobs {
			if res.Jobs[j].Core == i {
				res.EnergyJ += res.Jobs[j].EnergyJ
			}
		}
	}
	return res, nil
}

// transition ends core inv's running job (departed tells why), triggers
// the churn re-optimisation when the queue continues, and starts the
// next job if it has already arrived.
func transition(d *db.DB, cfg *Config, cores []*dynCore, inv, totalWays int, st *runState, res *DynamicResult, now, interval float64, departed bool) error {
	c := cores[inv]
	c.res.FinishNs = now
	res.Jobs = append(res.Jobs, JobResult{
		Core:      inv,
		Slot:      c.slot,
		AppResult: c.res,
		StartNs:   c.startNs,
		Alpha:     c.alpha,
		Departed:  departed,
	})
	c.slot = -1
	c.app = nil
	c.stats = nil
	c.depart = 0
	c.explicitAlpha = false
	c.hasCurve = false
	c.curve = nil
	if c.next >= len(c.jobs) {
		// Queue drained: the core idles forever at its final setting,
		// its ways pinned — the static engine's finished-core behaviour.
		return nil
	}

	// The next job starts now if it has arrived; otherwise the core
	// idles until the arrival event fires.
	if c.jobs[c.next].ArrivalNs <= now {
		if err := c.startNext(d, cfg, now, interval); err != nil {
			return err
		}
	}

	// Churn re-optimisation (the "RM re-optimises when an application
	// finishes or departs" rule): the transitioning core enters pinned
	// at its current setting — the incoming application has produced no
	// statistics and the partition is physical — and every other core's
	// latest curve is re-reduced so the rest of the system can shift its
	// allocations in response to the churn.
	if cfg.RM != rm.Idle {
		res.RMCalled++
		if err := invokeRMDynamic(d, cfg, cores, inv, totalWays, st, false); err != nil {
			return err
		}
	}
	return nil
}

// startNext begins the core's next queued job at the core's current
// setting. A job whose departure time already passed departs again
// immediately (as a zero-work departure event) on the next loop turn.
func (c *dynCore) startNext(d *db.DB, cfg *Config, now, interval float64) error {
	j := c.jobs[c.next]
	c.slot = c.next
	c.next++
	c.startNs = now
	c.app = j.App
	c.alpha = c.baseAlpha
	c.explicitAlpha = j.Alpha > 0
	if c.explicitAlpha {
		c.alpha = j.Alpha
	}
	work := j.Work
	if work <= 0 {
		work = float64(config.LongestAppInstrPaper)
	}
	c.target = work / float64(cfg.Scale)
	c.executed = 0
	c.runExec = 0
	c.runLen = float64(j.App.TotalInstr) / float64(cfg.Scale)
	if c.runLen < interval {
		c.runLen = interval // an application runs at least one interval
	}
	c.intervalIdx = 0
	c.phase = j.App.PhaseAt(0)
	c.depart = j.DepartNs
	c.res = AppResult{Bench: j.App.Name}
	c.fin = false
	c.hasCurve = false
	c.curve = nil
	if err := c.startInterval(d, now); err != nil {
		return err
	}
	return nil
}

// invokeRMDynamic is the dynamic engine's manager invocation. With
// refresh set (the interval-boundary path) the invoking core rebuilds
// its curve from the interval that just completed; churn boundaries pass
// refresh=false and the transitioning core enters pinned instead, since
// its incoming application has not produced statistics yet. Idle cores
// are always pinned at their current setting, so their physically held
// ways are never redistributed.
func invokeRMDynamic(d *db.DB, cfg *Config, cores []*dynCore, inv, totalWays int, st *runState, refresh bool) error {
	c := cores[inv]
	if refresh {
		c.refreshCurve(d, cfg, st)
	}

	curves := st.curves
	for i, o := range cores {
		if o.active() && o.hasCurve {
			curves[i] = o.curve
		} else {
			curves[i] = o.pinnedSelf()
		}
	}
	var settings []config.Setting
	var ok bool
	if cfg.GreedyGlobal {
		settings, ok = rm.GreedyGlobalOptimize(curves, totalWays)
	} else {
		settings = st.settings
		ok = st.ws.Optimize(curves, totalWays, settings)
	}
	if !ok {
		return nil
	}

	// Apply, charging transition overheads. Idle cores only track their
	// (pinned, hence unchanged) way allocation.
	for i, o := range cores {
		if !o.active() {
			o.setting.Ways = settings[i].Ways
			continue
		}
		if err := o.applySetting(d, cfg, settings[i]); err != nil {
			return err
		}
	}

	// RM execution overhead runs on the invoking core when it is busy;
	// a churn invocation on an emptied core has no application to bill.
	if c.active() {
		c.chargeRMOverhead(cfg, len(cores))
	}
	return nil
}
