package workload

import (
	"math"
	"reflect"
	"testing"
)

func TestGenerateChurnOptsDefaultMatchesGenerateChurn(t *testing.T) {
	// The zero options must reproduce the original schedule exactly —
	// same rng consumption, same entries — so every existing caller and
	// committed scenario file is untouched by the arrival-process
	// extension.
	for seed := int64(0); seed < 5; seed++ {
		want, err := GenerateChurn(Scenario1, 4, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GenerateChurnOpts(Scenario1, 4, 3, seed, ChurnOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: options default drifted from GenerateChurn", seed)
		}
	}
}

func TestArrivalProcessesDeterministicPerSeed(t *testing.T) {
	for _, proc := range []ArrivalProcess{ArrivalStaggered, ArrivalPoisson, ArrivalDiurnal} {
		a, err := GenerateChurnOpts(Scenario2, 4, 4, 11, ChurnOptions{Process: proc})
		if err != nil {
			t.Fatalf("%v: %v", proc, err)
		}
		b, err := GenerateChurnOpts(Scenario2, 4, 4, 11, ChurnOptions{Process: proc})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: same seed produced different schedules", proc)
		}
		c, err := GenerateChurnOpts(Scenario2, 4, 4, 12, ChurnOptions{Process: proc})
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%v: different seeds produced identical schedules", proc)
		}
	}
}

func TestArrivalsSortedPerQueue(t *testing.T) {
	for _, proc := range []ArrivalProcess{ArrivalPoisson, ArrivalDiurnal} {
		churn, err := GenerateChurnOpts(Scenario1, 6, 5, 3, ChurnOptions{Process: proc})
		if err != nil {
			t.Fatal(err)
		}
		for c, q := range churn {
			prev := -1.0
			for _, e := range q {
				if e.ArrivalFrac < prev {
					t.Fatalf("%v: core %d queue not in arrival order", proc, c)
				}
				prev = e.ArrivalFrac
				if e.ArrivalFrac < 0 || math.IsNaN(e.ArrivalFrac) {
					t.Fatalf("%v: bad arrival %v", proc, e.ArrivalFrac)
				}
			}
		}
	}
}

func TestPoissonInterArrivalMean(t *testing.T) {
	// With rate r, inter-arrival times are Exp(1/r): across a deep
	// schedule the mean spacing must land near 1/r.
	const depth = 400
	const rate = 8.0
	churn, err := GenerateChurnOpts(Scenario1, 2, depth, 17, ChurnOptions{Process: ArrivalPoisson, Rate: rate})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for _, q := range churn {
		prev := 0.0
		for _, e := range q {
			sum += e.ArrivalFrac - prev
			prev = e.ArrivalFrac
			n++
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/rate) > 0.25/rate {
		t.Fatalf("mean inter-arrival %.4f, want ≈ %.4f", mean, 1/rate)
	}
}

func TestDiurnalConcentratesMidHorizon(t *testing.T) {
	// Intensity 1 − 0.8·cos(2πt) peaks at t = 0.5: the middle half of
	// the horizon must receive clearly more than half the arrivals
	// (its analytic mass is ½ + 0.8/π ≈ 0.755).
	const depth = 300
	churn, err := GenerateChurnOpts(Scenario1, 2, depth, 29, ChurnOptions{Process: ArrivalDiurnal})
	if err != nil {
		t.Fatal(err)
	}
	mid, total := 0, 0
	for _, q := range churn {
		for _, e := range q {
			total++
			if e.ArrivalFrac >= 0.25 && e.ArrivalFrac < 0.75 {
				mid++
			}
			if e.ArrivalFrac < 0 || e.ArrivalFrac > 1 {
				t.Fatalf("diurnal arrival %v outside the horizon", e.ArrivalFrac)
			}
		}
	}
	frac := float64(mid) / float64(total)
	if frac < 0.65 {
		t.Fatalf("middle-half arrival share %.3f, want > 0.65 (diurnal peak missing)", frac)
	}
}

func TestParseArrivalProcess(t *testing.T) {
	for name, want := range map[string]ArrivalProcess{
		"": ArrivalStaggered, "staggered": ArrivalStaggered,
		"poisson": ArrivalPoisson, "diurnal": ArrivalDiurnal,
	} {
		got, err := ParseArrivalProcess(name)
		if err != nil || got != want {
			t.Errorf("ParseArrivalProcess(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseArrivalProcess("bursty"); err == nil {
		t.Error("unknown process accepted")
	}
	if _, err := GenerateChurnOpts(Scenario1, 2, 2, 1, ChurnOptions{Rate: math.NaN()}); err == nil {
		t.Error("NaN rate accepted")
	}
}
