// Package config defines the baseline system configuration of the paper
// (Table I): the three adaptive core sizes, the per-core DVFS grid, the
// cache hierarchy geometry, the DRAM model parameters, and the resource
// manager overhead constants from Section III-E.
//
// Everything downstream (the timing model, the power model, the resource
// managers and the co-simulator) reads its hardware parameters from this
// package so that a single experiment-wide configuration exists.
package config

import "fmt"

// CoreSize identifies one of the three adaptive core configurations.
// The paper's core can be resized at run time between a Small, Medium and
// Large configuration with a balanced pipeline (Section I, Table I).
type CoreSize int

// The three core sizes of Table I. Medium is the baseline.
const (
	SizeS CoreSize = iota // 2-issue, ROB 64, RS 16, LSQ 10
	SizeM                 // 4-issue, ROB 128, RS 64, LSQ 32 (baseline)
	SizeL                 // 8-issue, ROB 256, RS 128, LSQ 64
)

// NumSizes is the number of adaptive core configurations.
const NumSizes = 3

// Sizes lists all core sizes in ascending order.
var Sizes = [NumSizes]CoreSize{SizeS, SizeM, SizeL}

// String returns the single-letter name used throughout the paper.
func (c CoreSize) String() string {
	switch c {
	case SizeS:
		return "S"
	case SizeM:
		return "M"
	case SizeL:
		return "L"
	}
	return fmt.Sprintf("CoreSize(%d)", int(c))
}

// Valid reports whether c is one of the three defined sizes.
func (c CoreSize) Valid() bool { return c >= SizeS && c <= SizeL }

// CoreParams holds the micro-architectural parameters of one core size
// (Table I, "Core" block).
type CoreParams struct {
	Size       CoreSize
	IssueWidth int // dispatch/issue width D(c)
	ROB        int // reorder buffer entries
	RS         int // reservation stations
	LSQ        int // load/store queue entries
}

// coreTable is Table I verbatim.
var coreTable = [NumSizes]CoreParams{
	SizeS: {Size: SizeS, IssueWidth: 2, ROB: 64, RS: 16, LSQ: 10},
	SizeM: {Size: SizeM, IssueWidth: 4, ROB: 128, RS: 64, LSQ: 32},
	SizeL: {Size: SizeL, IssueWidth: 8, ROB: 256, RS: 128, LSQ: 64},
}

// Core returns the micro-architectural parameters for size c.
func Core(c CoreSize) CoreParams { return coreTable[c] }

// MaxROB is the largest reorder buffer across core sizes; the ATD
// instruction-index window is sized as 4 × MaxROB (Section III-C).
const MaxROB = 256

// IndexWindow is the fixed instruction window over which ATD instruction
// indices wrap. The paper pessimistically uses four times the maximum ROB
// size, requiring 10 index bits.
const IndexWindow = 4 * MaxROB

// DVFS grid (Table I): per-core frequency 1.0–3.25 GHz, voltage
// 0.8–1.25 V, baseline 2 GHz / 1 V.
const (
	FMinGHz     = 1.0
	FMaxGHz     = 3.25
	FStepGHz    = 0.25
	FBaseGHz    = 2.0
	VMin        = 0.8
	VMax        = 1.25
	VBase       = 1.0
	NumFreqs    = 10 // (3.25-1.0)/0.25 + 1
	BaseFreqIdx = 4  // index of 2.0 GHz in the grid
)

// FreqGHz returns the i-th frequency of the DVFS grid in GHz.
func FreqGHz(i int) float64 { return FMinGHz + float64(i)*FStepGHz }

// FreqIndex returns the grid index of frequency f (GHz), or -1 if f is
// not on the grid (within 1e-9 tolerance).
func FreqIndex(f float64) int {
	for i := 0; i < NumFreqs; i++ {
		d := f - FreqGHz(i)
		if d < 1e-9 && d > -1e-9 {
			return i
		}
	}
	return -1
}

// Voltage returns the supply voltage (V) required to run at frequency f
// (GHz). The mapping is linear across the Table I range: 1.0 GHz → 0.8 V,
// 2.0 GHz → 1.0 V, 3.25 GHz → 1.25 V.
func Voltage(fGHz float64) float64 {
	return VMin + (fGHz-FMinGHz)*(VMax-VMin)/(FMaxGHz-FMinGHz)
}

// Cache hierarchy (Table I, "Cache" block). All caches use 64 B blocks
// and LRU replacement.
//
// Representative-region scaling: the paper simulates 100 M-instruction
// SimPoint windows, long enough to exercise multi-megabyte footprints.
// This reproduction uses much shorter synthetic windows, so the whole
// memory system is shrunk by MemScale: every cache keeps its
// associativity — the dimension the resource managers actually control —
// while its set count, and every application footprint, shrink together.
// Way-allocation behaviour (miss-vs-ways curves, partitioning trade-offs)
// is preserved exactly; only absolute capacities change. The Rep*
// constants record the Table I values the scaled geometry represents.
const (
	BlockBytes = 64

	// MemScale is the represented-to-simulated capacity ratio. 256×
	// keeps working sets small enough that a 32–64 K-instruction
	// representative window revisits them several times, the way a 100 M
	// SPEC window revisits a multi-megabyte working set.
	MemScale = 256

	RepL1Bytes        = 32 << 10  // Table I: 32 KB L1-I / L1-D
	RepL2Bytes        = 256 << 10 // Table I: 256 KB private L2
	RepL3BytesPerCore = 2 << 20   // Table I: 2 MB shared L3 per core

	L1Bytes = 1 << 10 // scaled L1-D (associativity preserved)
	L1Ways  = 4
	L2Bytes = 2 << 10 // scaled private L2
	L2Ways  = 8

	// The shared L3 provides 8 ways per core; a single core may be
	// allocated between 2 and 16 ways (represented: 256 KB – 4 MB).
	L3BytesPerCore = RepL3BytesPerCore / MemScale
	L3WaysPerCore  = 8
	MinWays        = 2
	MaxWays        = 16
	BaseWays       = 8

	// Access latencies in core cycles at any frequency (on-chip SRAM
	// latencies scale with the clock).
	L1LatencyCycles = 3
	L2LatencyCycles = 12
	L3LatencyCycles = 30

	// Branch misprediction pipeline refill penalty in cycles
	// (Pentium M-class front end).
	BranchPenaltyCycles = 15
)

// DRAM model (Table I): 100 ns base latency, contention queue model,
// 5 GB/s of bandwidth per core.
const (
	DRAMLatencyNs    = 100.0
	DRAMBWBytesPerNs = 5.0 // 5 GB/s = 5 bytes/ns per core
)

// DRAMServiceNs is the minimum spacing between consecutive DRAM line
// transfers for one core under the per-core bandwidth limit.
const DRAMServiceNs = BlockBytes / DRAMBWBytesPerNs // 12.8 ns

// ModelMemLatencyNs is the L_mem constant the online performance models
// multiply leading-miss counts by (Eq. 2): the DRAM latency plus the LLC
// lookup that precedes it at the baseline clock. Queueing delay is not
// modelled — that residual is part of the model error the paper studies.
const ModelMemLatencyNs = DRAMLatencyNs + L3LatencyCycles/FBaseGHz

// Resource manager constants (Sections III-E and IV).
const (
	// IntervalInstructions is the RM invocation granularity: the RM runs
	// on a core every time that core retires this many instructions.
	IntervalInstructions = 100_000_000

	// DVFSSwitchTimeNs and DVFSSwitchEnergyJ are the cost of one
	// voltage/frequency transition (Samsung Exynos 4210 numbers [17]).
	DVFSSwitchTimeNs     = 15_000.0          // 15 µs
	DVFSSwitchEnergyJ    = 3e-6              // 3 µJ
	ResizeDrainFactor    = 1.0               // pipeline drain ≈ ROB/IPC cycles
	QoSAlpha             = 1.0               // QoS relaxation parameter α (fixed to 1)
	LongestAppInstrPaper = 4_146_000_000_000 // 4146 B instructions (Sec. IV-D)
)

// RMInstructionOverhead returns the measured instruction count of one RM
// invocation for a system with n cores (Section III-E: 51K, 73K and 100K
// for 2, 4 and 8 cores). Other core counts interpolate linearly.
func RMInstructionOverhead(n int) int {
	switch {
	case n <= 2:
		return 51_000
	case n == 4:
		return 73_000
	case n >= 8:
		return 100_000
	case n < 4: // n == 3
		return 62_000
	default: // 5..7
		return 73_000 + (n-4)*(100_000-73_000)/4
	}
}

// PrevRMInstructionOverhead is the corresponding overhead of the prior-art
// RM [8] (18K, 40K, 67K), used when simulating RM1/RM2.
func PrevRMInstructionOverhead(n int) int {
	switch {
	case n <= 2:
		return 18_000
	case n == 4:
		return 40_000
	case n >= 8:
		return 67_000
	case n < 4:
		return 29_000
	default:
		return 40_000 + (n-4)*(67_000-40_000)/4
	}
}

// Setting is one point of the per-core configuration space the RM
// searches: a core size, a DVFS grid index and an LLC way allocation.
type Setting struct {
	Core CoreSize
	Freq int // index into the DVFS grid; FreqGHz(Freq) gives GHz
	Ways int // LLC ways allocated to this core, MinWays..MaxWays
}

// Baseline is the fixed reference setting of Section II: a mid-range core
// (M), the base 2 GHz VF point, and an even LLC distribution (8 ways).
func Baseline() Setting {
	return Setting{Core: SizeM, Freq: BaseFreqIdx, Ways: BaseWays}
}

// Valid reports whether s lies inside the Table I configuration space.
func (s Setting) Valid() bool {
	return s.Core.Valid() && s.Freq >= 0 && s.Freq < NumFreqs &&
		s.Ways >= MinWays && s.Ways <= MaxWays
}

// FGHz is a convenience accessor for the setting's frequency in GHz.
func (s Setting) FGHz() float64 { return FreqGHz(s.Freq) }

// String formats the setting the way the paper's figures label them,
// e.g. "M/2.00GHz/8w".
func (s Setting) String() string {
	return fmt.Sprintf("%s/%.2fGHz/%dw", s.Core, s.FGHz(), s.Ways)
}

// TotalWays returns the associativity A of the shared LLC for an n-core
// system (8 ways per core, Table I); the global optimisation distributes
// exactly A ways.
func TotalWays(n int) int { return L3WaysPerCore * n }

// System describes one simulated multicore: the number of cores and the
// interval length used by the RM. Zero values are replaced by defaults.
type System struct {
	Cores    int
	Interval int64 // instructions per RM interval
}

// DefaultSystem returns an n-core system with the paper's interval.
func DefaultSystem(n int) System {
	return System{Cores: n, Interval: IntervalInstructions}
}

// Validate checks the system description.
func (s System) Validate() error {
	if s.Cores < 1 {
		return fmt.Errorf("config: system needs at least one core, got %d", s.Cores)
	}
	if s.Interval <= 0 {
		return fmt.Errorf("config: interval must be positive, got %d", s.Interval)
	}
	return nil
}
