package cpu

// The lane-parallel sweep kernel: one walk of an annotated stream
// advancing all fifteen way allocations at once.
//
// A single timing walk is latency-bound on its serial
// dispatch→ready→completion float chain, so independent chains advanced
// in lockstep hide nearly all of that latency. This file restructures
// the walk as a batched kernel over structure-of-arrays per-lane state:
// every quantity that varies by lane — time cursors, retirement
// frontiers, DRAM queue and MLP-window state, per-stall-class
// accumulators — is a laneRow (a flat [15]float64), and each
// instruction runs one straight-line loop over the lanes of the
// specialisation that matches its kind. Completion times are written
// into the ring rows in place (each lane reads its slot before
// overwriting it, like the reference's scalar ring), so no per-lane
// state is copied between instructions.
//
// Two structural savings come from the annotation being
// setting-independent:
//
//   - Dynamic lane grouping: an access at recency position pos splits
//     the lanes into a miss prefix (fewer than pos ways) and a hit
//     suffix, and that is the only way two lanes can ever diverge. The
//     walk therefore partitions lanes into groups of indistinguishable
//     allocations, starting from one all-lane group and splitting a
//     group — duplicating its state column — only at the instant an
//     access boundary falls inside its interval. Every instruction
//     advances one representative chain per group; compute-bound
//     phases walk one or two chains instead of fifteen.
//
//   - Shared events: all runs of one stream observe the same LLC event
//     set in program order (LLCEvents); only the delivery order varies
//     with the setting. The walk records one issue-time row per event
//     (a single laneRow store) and the delivery order of lane l is
//     recovered afterwards as a stable argsort of column l — a compact
//     (time, ordinal) key sort that moves 16-byte pairs instead of
//     32-byte events, skipped entirely for lanes whose issue columns
//     match their neighbour's.

import (
	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// numWays is the number of tracked way allocations (MinWays..MaxWays).
const numWays = config.MaxWays - config.MinWays + 1

// laneRow is one structure-of-arrays slot of the sweep walk: a value
// per lane.
type laneRow = [numWays]float64

// zeroRow stands in for absent dispatch constraints (its values never
// change), letting the lane kernels avoid per-lane presence branches.
var zeroRow laneRow

// LLCEvents returns the stream's LLC accesses in program order with
// their instruction indices and load/store kinds. The event set is
// fixed by the annotation — every timing run of this stream observes
// exactly these events, only their delivery order varies with the
// setting — so one shared list serves all runs; a run's delivery order
// is the permutation RunWays returns. IssueNs is zero in the shared
// list. Computed once, safe for concurrent use; callers must not
// mutate the result.
func (a *Annotated) LLCEvents() []LLCEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.llcEvents == nil {
		evs := make([]LLCEvent, 0, a.L2Misses)
		for i := range a.Insts {
			if a.Level[i] == 3 {
				evs = append(evs, LLCEvent{
					InstIdx: int64(i),
					Addr:    a.Insts[i].Addr,
					IsLoad:  a.Insts[i].Kind == trace.KindLoad,
				})
			}
		}
		a.llcEvents = evs
	}
	return a.llcEvents
}

// permKey is one sort key of the delivery-order argsort: an issue time
// and the event's program-order ordinal.
type permKey struct {
	t float64
	e int32
}

// SweepScratch is reusable working memory for RunWays: the issue-time
// matrix, the per-lane delivery permutations and the argsort buffers.
// One scratch serves any number of sequential RunWays calls; the
// permutations each call returns alias the scratch and are valid until
// the next call.
type SweepScratch struct {
	issue  []laneRow // one row per LLC event: per-group issue times
	flat   []int32   // backing store for the returned permutations
	perms  [numWays][]int32
	wperms [numWays][]int32 // per way lane, mapped from group perms
	keys   []permKey
	buf    []permKey
	rings  []laneRow // zeroed backing store for the walk's ring buffers
}

// ringRows returns a zeroed slice of n ring rows, reusing the scratch
// backing store across calls.
func (s *SweepScratch) ringRows(n int) []laneRow {
	if cap(s.rings) < n {
		s.rings = make([]laneRow, n)
		return s.rings[:n]
	}
	r := s.rings[:n]
	for i := range r {
		r[i] = laneRow{}
	}
	return r
}

// issueRows returns the issue matrix with one row per event.
func (s *SweepScratch) issueRows(nEv int) []laneRow {
	if cap(s.issue) < nEv {
		s.issue = make([]laneRow, nEv)
	}
	return s.issue[:nEv]
}

// sortLanes converts the filled issue matrix into per-lane delivery
// permutations: perms[l] lists event ordinals in the stable order of
// lane l's issue times — exactly the order Run's ATD feed delivers.
// Only the first walked lanes are sorted; the identical tail group and
// any lane whose issue column matches its neighbour's share one
// permutation slice (callers detect sharing by pointer equality and
// skip duplicate replays without comparing contents).
func (s *SweepScratch) sortLanes(issue []laneRow, walked int) [][]int32 {
	nEv := len(issue)
	if cap(s.flat) < walked*nEv {
		s.flat = make([]int32, walked*nEv)
	}
	if cap(s.keys) < nEv {
		s.keys = make([]permKey, nEv)
	}
	keys := s.keys[:nEv]
	for l := 0; l < walked; l++ {
		if l > 0 && laneColsEqual(issue, l) {
			s.perms[l] = s.perms[l-1]
			continue
		}
		if l == 0 {
			for e := range issue {
				keys[e] = permKey{issue[e][0], int32(e)}
			}
		} else {
			// Seed from the previous lane's delivery order: adjacent
			// lanes deliver nearly alike, so the keys arrive almost
			// sorted and the merge loop collapses to a pass or two. The
			// comparator is the total order (time, ordinal), whose
			// unique result is the same permutation whatever the seed.
			prev := s.perms[l-1]
			for r := range prev {
				e := prev[r]
				keys[r] = permKey{issue[e][l], e}
			}
		}
		sortKeysStable(keys, &s.buf)
		p := s.flat[l*nEv : l*nEv+nEv : l*nEv+nEv]
		for e := range keys {
			p[e] = keys[e].e
		}
		s.perms[l] = p
	}
	for l := walked; l < numWays; l++ {
		s.perms[l] = s.perms[walked-1]
	}
	return s.perms[:]
}

// laneColsEqual reports whether lane l's issue column equals lane l-1's.
func laneColsEqual(issue []laneRow, l int) bool {
	for e := range issue {
		if issue[e][l] != issue[e][l-1] {
			return false
		}
	}
	return true
}

// sortKeysStable sorts keys in the (time, ordinal) total order using
// the natural-runs merge of sortEventsStableBuf. Ordinals make keys
// unique, so the result equals a stable sort by time over program
// order — the reference feed's delivery contract — while the input may
// arrive in any seed order (sortLanes seeds from the previous lane's
// permutation, leaving only a handful of runs to merge).
func sortKeysStable(k []permKey, bufp *[]permKey) {
	const minRun = 32
	n := len(k)
	if n < 2 {
		return
	}
	type run struct{ lo, hi int }
	var runsA, runsB []run
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && !keyLess(k[hi], k[hi-1]) {
			hi++
		}
		if hi-lo < minRun {
			hi = lo + minRun
			if hi > n {
				hi = n
			}
			insertionSortKeys(k[lo:hi])
		}
		runsA = append(runsA, run{lo, hi})
		lo = hi
	}
	if len(runsA) == 1 {
		return
	}
	if cap(*bufp) < n {
		*bufp = make([]permKey, n)
	}
	src, dst := k, (*bufp)[:n]
	runs := runsA
	for len(runs) > 1 {
		merged := runsB[:0]
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				r := runs[i]
				copy(dst[r.lo:r.hi], src[r.lo:r.hi])
				merged = append(merged, r)
				break
			}
			l, r := runs[i], runs[i+1]
			mergeKeys(dst[l.lo:r.hi], src[l.lo:l.hi], src[l.hi:r.hi])
			merged = append(merged, run{l.lo, r.hi})
		}
		runsB = runs
		runs = merged
		src, dst = dst, src
	}
	if &src[0] != &k[0] {
		copy(k, src)
	}
}

func insertionSortKeys(k []permKey) {
	for i := 1; i < len(k); i++ {
		for j := i; j > 0 && keyLess(k[j], k[j-1]); j-- {
			k[j], k[j-1] = k[j-1], k[j]
		}
	}
}

// keyLess is the (time, ordinal) total order. Ordinals are unique, so
// the sorted sequence is unique — equal-time events land in program
// order regardless of input order, which is exactly the stable-by-time
// contract of the reference feed.
func keyLess(a, b permKey) bool {
	return a.t < b.t || (a.t == b.t && a.e < b.e)
}

// mergeKeys merges two sorted runs into out, taking from the left run
// on ties to preserve stability.
func mergeKeys(out, l, r []permKey) {
	i, j := 0, 0
	for x := range out {
		switch {
		case i < len(l) && (j >= len(r) || !keyLess(r[j], l[i])):
			out[x] = l[i]
			i++
		default:
			out[x] = r[j]
			j++
		}
	}
}

// Kernel classes of the sweep walk, precomputed per instruction by
// sweepMeta. The class folds every setting-independent decode decision
// — kind, hit level, producer presence — into one byte, so the walk's
// per-instruction dispatch is a single jump instead of a chain of
// data-dependent branches.
const (
	clsBase          = iota // no producers, no memory slot (ALU/Mul/predicted branch)
	clsBaseMem              // no producers, memory slot (L1 load, non-LLC store)
	clsBaseDep1             // one producer, no memory slot
	clsBaseDep              // two producers, no memory slot
	clsBaseDep1Mem          // one producer, memory slot
	clsBaseDepMem           // two producers, memory slot
	clsL2Load               // L2-hit load: cache-class stall
	clsLLCLoad              // reaches the LLC: miss/hit group split
	clsStoreLLC             // store reaching the LLC, no producers
	clsStoreLLCDep          // store reaching the LLC, producers
	clsBranchMiss           // mispredicted branch, no producers
	clsBranchMissDep        // mispredicted branch, producers
)

// sweepMeta returns the per-instruction kernel class and execution
// latency in cycles — both setting-independent — computed once per
// stream and shared by every walk.
func (a *Annotated) sweepMeta() ([]uint8, []uint8) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.classes == nil {
		cls := make([]uint8, len(a.Insts))
		lat := make([]uint8, len(a.Insts))
		for i, in := range a.Insts {
			hasDep := in.Dep1 > 0 || in.Dep2 > 0
			// Two-producer kernels pay a wider readiness reduction, so
			// instructions with a single producer get their own class.
			clsDep, clsDepMem := uint8(clsBaseDep), uint8(clsBaseDepMem)
			if in.Dep2 == 0 {
				clsDep, clsDepMem = clsBaseDep1, clsBaseDep1Mem
			}
			c, lc := uint8(clsBase), uint8(1)
			switch in.Kind {
			case trace.KindMul:
				lc = trace.MulLatencyCycles
				if hasDep {
					c = clsDep
				}
			case trace.KindBranch:
				switch {
				case in.Mispredict && hasDep:
					c = clsBranchMissDep
				case in.Mispredict:
					c = clsBranchMiss
				case hasDep:
					c = clsDep
				}
			case trace.KindStore:
				switch {
				case a.Level[i] == 3 && hasDep:
					c = clsStoreLLCDep
				case a.Level[i] == 3:
					c = clsStoreLLC
				case hasDep:
					c = clsDepMem
				default:
					c = clsBaseMem
				}
			case trace.KindLoad:
				switch a.Level[i] {
				case 1:
					lc = config.L1LatencyCycles
					c = clsBaseMem
					if hasDep {
						c = clsDepMem
					}
				case 2:
					lc = config.L2LatencyCycles
					c = clsL2Load
				default:
					c = clsLLCLoad
				}
			default: // ALU
				if hasDep {
					c = clsDep
				}
			}
			cls[i] = c
			lat[i] = lc
		}
		a.classes, a.latCyc = cls, lat
	}
	return a.classes, a.latCyc
}

// sweepState is the per-group structure-of-arrays state of one walk:
// time cursors, the MLP window, outstanding-miss (DRAM queue) state,
// the CPI-stack accumulators and the group partition itself.
type sweepState struct {
	dispatch      laneRow
	frontEndReady laneRow
	frontier      laneRow
	lastDRAMStart laneRow
	lastMissEnd   laneRow
	baseNs        laneRow
	branchNs      laneRow
	cacheNs       laneRow
	memNs         laneRow
	leading       [numWays]int64

	// Group g covers way lanes [lo[g], up[g]); groups are stored in
	// creation order and splits only refine the partition.
	lo, up [numWays]int
	nG     int
}

// split duplicates group g's state column into a new group covering
// [posB, up[g]) — the instant an access's miss/hit boundary first falls
// inside g's interval, its halves become distinguishable and each
// continues as an independent chain with bit-identical history.
func (st *sweepState) split(g, posB, ev int, done, start, memRing, issue []laneRow) {
	n := st.nG
	for r := range done {
		done[r][n] = done[r][g]
	}
	for r := range start {
		start[r][n] = start[r][g]
	}
	for r := range memRing {
		memRing[r][n] = memRing[r][g]
	}
	st.dispatch[n] = st.dispatch[g]
	st.frontEndReady[n] = st.frontEndReady[g]
	st.frontier[n] = st.frontier[g]
	st.lastDRAMStart[n] = st.lastDRAMStart[g]
	st.lastMissEnd[n] = st.lastMissEnd[g]
	st.baseNs[n] = st.baseNs[g]
	st.branchNs[n] = st.branchNs[g]
	st.cacheNs[n] = st.cacheNs[g]
	st.memNs[n] = st.memNs[g]
	st.leading[n] = st.leading[g]
	for e := 0; e < ev; e++ {
		issue[e][n] = issue[e][g]
	}
	st.lo[n], st.up[n] = posB, st.up[g]
	st.up[g] = posB
	st.nG = n + 1
}

// depRowOf resolves one producer distance to its completion-time ring
// row, or the zero row when the producer is absent, beyond the reorder
// window, or before the stream start — the reference's validity rule.
func depRowOf(done []laneRow, ringMask, ri, robSize, i int, dep int32) *laneRow {
	if d := int(dep); d > 0 && d <= robSize && d <= i {
		j := ri - d
		if j < 0 {
			j += robSize
		}
		return &done[j&ringMask]
	}
	return &zeroRow
}

// RunWays executes the annotated stream at one (core size, frequency)
// point for every way allocation MinWays..MaxWays in a single batched
// walk, returning the per-allocation results indexed by w-MinWays. When
// scratch is non-nil (and the stream has LLC traffic) it also returns
// each lane's delivery permutation over the shared LLCEvents list —
// replaying LLCEvents in that order into a warm ATD clone (or fork)
// reproduces Run's ATD state exactly. The permutations alias scratch
// and are valid until its next use; lanes with identical delivery
// orders share one slice.
//
// Lanes are walked as dynamically refined groups: the walk starts with
// one group spanning every allocation (all lanes are indistinguishable
// until an LLC access tells them apart) and splits a group only when an
// access's miss/hit boundary falls strictly inside its way interval,
// duplicating the group's state column at that instant. A group's
// representative performs exactly the float operations each of its
// member lanes would, so results remain bit-identical to fifteen
// separate Run calls (enforced by TestRunWaysMatchesReference) while
// the average instruction advances far fewer than fifteen chains.
func RunWays(a *Annotated, core config.CoreSize, freqGHz float64, scratch *SweepScratch) ([]Result, [][]int32) {
	cp := config.Core(core)
	perCycle := 1.0 / freqGHz // ns per cycle

	n := len(a.Insts)
	results := make([]Result, numWays)
	for l := range results {
		results[l].Instructions = int64(n)
	}
	classes, latCyc := a.sweepMeta()

	// Ring buffers over the reorder window, padded to powers of two so
	// the masked indexing below stays in bounds without checks. Only
	// slots < robSize (resp. < LSQ) are ever touched, so the semantics
	// match the reference's exactly-sized rings. Each ring slot is a
	// laneRow indexed by group; a group reads its slot entry before
	// overwriting it within one instruction, exactly as the reference's
	// scalar ring does.
	robSize := cp.ROB
	ringLen := 1
	for ringLen < robSize {
		ringLen <<= 1
	}
	ringMask := ringLen - 1
	lsq := cp.LSQ
	memLen := 1
	for memLen < lsq {
		memLen <<= 1
	}
	memMask := memLen - 1
	var done, start, memRing []laneRow
	if scratch != nil {
		rows := scratch.ringRows(2*ringLen + memLen)
		done, start, memRing = rows[:ringLen:ringLen], rows[ringLen:2*ringLen:2*ringLen], rows[2*ringLen:]
	} else {
		done = make([]laneRow, ringLen)
		start = make([]laneRow, ringLen)
		memRing = make([]laneRow, memLen)
	}
	mi := 0 // memCount % LSQ, maintained by wraparound

	var st sweepState
	st.nG = 1
	st.up[0] = numWays
	// Aliases keep the kernels free of st. noise; laneRow pointers
	// auto-indirect on indexing.
	dispatch := &st.dispatch
	frontEndReady := &st.frontEndReady
	frontier := &st.frontier
	lastDRAMStart := &st.lastDRAMStart
	lastMissEnd := &st.lastMissEnd
	baseNs := &st.baseNs
	branchNs := &st.branchNs
	cacheNs := &st.cacheNs
	memNs := &st.memNs
	leading := &st.leading

	dispatchStep := perCycle / float64(cp.IssueWidth)
	l3Ns := config.L3LatencyCycles * perCycle
	penNs := config.BranchPenaltyCycles * perCycle

	feed := scratch != nil && a.L2Misses > 0
	var issue []laneRow
	if feed {
		issue = scratch.issueRows(int(a.L2Misses))
	}
	ev := 0

	rs := cp.RS
	hasRS := rs < robSize
	ri := 0 // i % robSize, maintained by wraparound

	for i := 0; i < n; i++ {
		// --- Shared per-instruction state: ring rows and the
		// reservation-station constraint (everything else is resolved
		// inside the class kernels that need it) ---
		row := &done[ri&ringMask]
		srow := &start[ri&ringMask]
		rsRow := &zeroRow
		if hasRS && i >= rs {
			j := ri - rs
			if j < 0 {
				j += robSize
			}
			rsRow = &start[j&ringMask]
		}
		nG := st.nG

		switch classes[i] {
		case clsBase:
			lat := float64(latCyc[i]) * perCycle
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				dispatch[l] = d
				ready := d + perCycle
				srow[l] = ready
				fin := ready + lat
				row[l] = fin
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}

		case clsBaseDep1:
			lat := float64(latCyc[i]) * perCycle
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, a.Insts[i].Dep1)
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				dispatch[l] = d
				ready := max(d+perCycle, dep1Row[l])
				srow[l] = ready
				fin := ready + lat
				row[l] = fin
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}

		case clsBaseDep:
			lat := float64(latCyc[i]) * perCycle
			in := &a.Insts[i]
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
			dep2Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				dispatch[l] = d
				ready := max(d+perCycle, dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + lat
				row[l] = fin
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}

		case clsBaseMem:
			lat := float64(latCyc[i]) * perCycle
			memRow := &memRing[mi&memMask]
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				memV := memRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				if memV > d {
					d = memV
				}
				dispatch[l] = d
				ready := d + perCycle
				srow[l] = ready
				fin := ready + lat
				row[l] = fin
				memRow[l] = fin
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe && memV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsBaseDep1Mem:
			lat := float64(latCyc[i]) * perCycle
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, a.Insts[i].Dep1)
			memRow := &memRing[mi&memMask]
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				memV := memRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				if memV > d {
					d = memV
				}
				dispatch[l] = d
				ready := max(d+perCycle, dep1Row[l])
				srow[l] = ready
				fin := ready + lat
				row[l] = fin
				memRow[l] = fin
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe && memV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsBaseDepMem:
			lat := float64(latCyc[i]) * perCycle
			in := &a.Insts[i]
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
			dep2Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			memRow := &memRing[mi&memMask]
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				memV := memRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				if memV > d {
					d = memV
				}
				dispatch[l] = d
				ready := max(d+perCycle, dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + lat
				row[l] = fin
				memRow[l] = fin
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe && memV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsL2Load:
			// L2-hit load: fixed latency, every stall is cache-class
			// (it wins over branch attribution).
			lat := float64(latCyc[i]) * perCycle
			in := &a.Insts[i]
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
			dep2Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			memRow := &memRing[mi&memMask]
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				d := d1
				if v := frontEndReady[l]; v > d {
					d = v
				}
				if v := rsRow[l]; v > d {
					d = v
				}
				if v := memRow[l]; v > d {
					d = v
				}
				dispatch[l] = d
				ready := max(d+perCycle, dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + lat
				row[l] = fin
				memRow[l] = fin
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if fin > fr {
					frontier[l] = fin
					cacheNs[l] += fin - fr
				} else {
					frontier[l] = fr
				}
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsLLCLoad:
			// LLC load: miss groups stall on memory (DRAM queue + MLP
			// window), hit groups on the LLC. The boundary split keeps
			// every group uniformly one or the other.
			posB := llcBoundary(int(a.LLCPos[i]))
			if posB > 0 && posB < numWays {
				for g := 0; g < nG; g++ {
					if st.lo[g] < posB && posB < st.up[g] {
						st.split(g, posB, ev, done, start, memRing, issue)
						nG = st.nG
						break
					}
				}
			}
			in := &a.Insts[i]
			dep1Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
			dep2Row := depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			memRow := &memRing[mi&memMask]
			lo := &st.lo
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				d := d1
				if v := frontEndReady[l]; v > d {
					d = v
				}
				if v := rsRow[l]; v > d {
					d = v
				}
				if v := memRow[l]; v > d {
					d = v
				}
				dispatch[l] = d
				ready := max(d+perCycle, dep1Row[l], dep2Row[l])
				srow[l] = ready
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if lo[l] < posB {
					reqNs := ready + l3Ns
					sStart := reqNs
					if v := lastDRAMStart[l] + config.DRAMServiceNs; v > sStart {
						sStart = v
					}
					lastDRAMStart[l] = sStart
					fin := sStart + config.DRAMLatencyNs
					// Leading-loads ground truth: a miss is leading when
					// it is not issued within the DRAM latency window of
					// a previous miss; queueing delay lengthens
					// completion but not the overlap window.
					if reqNs >= lastMissEnd[l] {
						leading[l]++
					}
					if end := reqNs + config.DRAMLatencyNs; end > lastMissEnd[l] {
						lastMissEnd[l] = end
					}
					row[l] = fin
					memRow[l] = fin
					if fin > fr {
						frontier[l] = fin
						memNs[l] += fin - fr
					} else {
						frontier[l] = fr
					}
				} else {
					fin := ready + l3Ns
					row[l] = fin
					memRow[l] = fin
					if fin > fr {
						frontier[l] = fin
						cacheNs[l] += fin - fr
					} else {
						frontier[l] = fr
					}
				}
			}
			if feed {
				issue[ev] = *srow
				ev++
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		case clsStoreLLC, clsStoreLLCDep:
			// Store reaching the LLC: retires into the write buffer
			// after one cycle; a miss additionally consumes DRAM
			// bandwidth without stalling the pipeline.
			posB := llcBoundary(int(a.LLCPos[i]))
			if posB > 0 && posB < numWays {
				for g := 0; g < nG; g++ {
					if st.lo[g] < posB && posB < st.up[g] {
						st.split(g, posB, ev, done, start, memRing, issue)
						nG = st.nG
						break
					}
				}
			}
			dep1Row, dep2Row := &zeroRow, &zeroRow
			if classes[i] == clsStoreLLCDep {
				in := &a.Insts[i]
				dep1Row = depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
				dep2Row = depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			}
			memRow := &memRing[mi&memMask]
			lo := &st.lo
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				memV := memRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				if memV > d {
					d = memV
				}
				dispatch[l] = d
				ready := max(d+perCycle, dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + perCycle
				row[l] = fin
				memRow[l] = fin
				if lo[l] < posB {
					reqNs := ready + l3Ns
					sStart := reqNs
					if v := lastDRAMStart[l] + config.DRAMServiceNs; v > sStart {
						sStart = v
					}
					lastDRAMStart[l] = sStart
				}
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe && memV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
			}
			if feed {
				issue[ev] = *srow
				ev++
			}
			mi++
			if mi == lsq {
				mi = 0
			}

		default: // clsBranchMiss, clsBranchMissDep
			// Mispredicted branch: the base kernel plus the front-end
			// refill that gates later dispatch.
			dep1Row, dep2Row := &zeroRow, &zeroRow
			if classes[i] == clsBranchMissDep {
				in := &a.Insts[i]
				dep1Row = depRowOf(done, ringMask, ri, robSize, i, in.Dep1)
				dep2Row = depRowOf(done, ringMask, ri, robSize, i, in.Dep2)
			}
			for l := 0; l < nG; l++ {
				d1 := dispatch[l] + dispatchStep
				if v := row[l]; v > d1 {
					d1 = v
				}
				fe := frontEndReady[l]
				rsV := rsRow[l]
				d := d1
				if fe > d {
					d = fe
				}
				if rsV > d {
					d = rsV
				}
				dispatch[l] = d
				ready := max(d+perCycle, dep1Row[l], dep2Row[l])
				srow[l] = ready
				fin := ready + perCycle
				row[l] = fin
				fr := frontier[l] + dispatchStep
				baseNs[l] += dispatchStep
				if fin > fr {
					frontier[l] = fin
					if fe > d1 && rsV <= fe {
						branchNs[l] += fin - fr
					} else {
						baseNs[l] += fin - fr
					}
				} else {
					frontier[l] = fr
				}
				if r := fin + penNs; r > frontEndReady[l] {
					frontEndReady[l] = r
				}
			}
		}

		ri++
		if ri == robSize {
			ri = 0
		}
	}

	// Expand the group representatives to their member lanes: timing and
	// leading-miss state are group values, the cache counters come from
	// the shared per-allocation profile and are exact per lane.
	var groupOf [numWays]int
	for g := 0; g < st.nG; g++ {
		for l := st.lo[g]; l < st.up[g]; l++ {
			groupOf[l] = g
		}
	}
	for l := range results {
		res := &results[l]
		g := groupOf[l]
		res.TimeNs = frontier[g]
		res.BaseNs = baseNs[g]
		res.BranchNs = branchNs[g]
		res.CacheNs = cacheNs[g]
		res.MemNs = memNs[g]
		res.L1Misses = a.L1Misses
		res.LeadingMisses = leading[g]
		pr := a.waysProfile(config.MinWays + l)
		res.LLCAccesses = pr.llcAccesses
		res.LLCHits = pr.llcHits
		res.LLCMisses = pr.llcMisses
		res.DRAMLoads = pr.dramLoads
		res.Writebacks = pr.writebacks
		res.Mispredicts = pr.mispredicts
		if res.LeadingMisses > 0 {
			res.MLP = float64(res.DRAMLoads) / float64(res.LeadingMisses)
		} else {
			res.MLP = 1
		}
	}

	var perms [][]int32
	if feed {
		gperms := scratch.sortLanes(issue, st.nG)
		for l := range scratch.wperms {
			scratch.wperms[l] = gperms[groupOf[l]]
		}
		perms = scratch.wperms[:]
	}
	return results, perms
}

// llcBoundary converts an LLC recency position into the way-lane miss
// boundary: lanes below it (fewer than pos ways) miss. Position 0 means
// the line was absent from every tracked way, so every lane misses.
func llcBoundary(pos int) int {
	if pos == 0 {
		return numWays
	}
	b := pos - config.MinWays // pos ≤ MaxWays keeps this ≤ numWays-1
	if b < 0 {
		b = 0
	}
	return b
}
