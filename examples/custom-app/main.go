// Custom application: author a new synthetic benchmark from scratch —
// a pointer-chasing, cache-sensitive database-like workload — classify
// it with the paper's CS/CI × PS/PI rules, and run it under RM3 next to
// a suite application.
//
// This demonstrates the knobs the synthetic trace generator exposes:
// instruction mix, dependence structure, burst shape (MLP) and the
// working-set window (cache sensitivity).
package main

import (
	"fmt"
	"log"

	"qosrm"
)

func main() {
	log.SetFlags(0)

	const scale = 256 // config.MemScale: region sizes are given at Table I scale

	app := &qosrm.Benchmark{
		Name:     "kvstore",
		Category: qosrm.CSPI, // what we expect the classifier to say
		Phases: []qosrm.Phase{
			{
				Weight: 1,
				Params: qosrm.TraceParams{
					Seed:           12345,
					LoadFrac:       0.24,
					StoreFrac:      0.10,
					BranchFrac:     0.14,
					MulFrac:        0.1,
					BranchMissRate: 0.05,
					DepProb:        0.6,
					DepMean:        3,
					BurstProb:      0.12, // index lookups into the table
					BurstLen:       1,
					BurstSpread:    1,
					ChaseFrac:      0.7, // hash-chain traversal serialises misses
					Regions: []qosrm.Region{
						// Hot metadata: private-cache resident.
						{Bytes: 64 << 10 / scale, Weight: 1, Sequential: true},
						// 6 MB (represented) table with a 2.2 MB hot window:
						// sensitive around the 2 MB baseline allocation.
						{Bytes: 6 << 20 / scale, Weight: 0,
							WindowBytes: 2_200_000 / scale, DriftEvery: 16},
					},
				},
			},
		},
		Sequence:   []int{0},
		TotalInstr: 1_500_000_000_000,
	}

	partner := qosrm.MustBenchmark("povray")
	sys, err := qosrm.Open(qosrm.Options{
		Benchmarks: []*qosrm.Benchmark{app, partner},
	})
	if err != nil {
		log.Fatal(err)
	}

	cat, err := sys.Classify(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kvstore classified as %s (expected %s)\n", cat, app.Category)

	saving, res, err := sys.Savings(
		[]*qosrm.Benchmark{partner, app},
		qosrm.SimConfig{RM: qosrm.RM3, Model: qosrm.Model3},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("povray + kvstore under RM3: %.2f%% energy saved, violation rate %.3f\n",
		saving*100, res.ViolationRate())
}
