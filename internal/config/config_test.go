package config

import (
	"testing"
	"testing/quick"
)

func TestCoreTable(t *testing.T) {
	// Table I verbatim.
	cases := []struct {
		size                CoreSize
		issue, rob, rs, lsq int
	}{
		{SizeS, 2, 64, 16, 10},
		{SizeM, 4, 128, 64, 32},
		{SizeL, 8, 256, 128, 64},
	}
	for _, c := range cases {
		p := Core(c.size)
		if p.Size != c.size || p.IssueWidth != c.issue || p.ROB != c.rob || p.RS != c.rs || p.LSQ != c.lsq {
			t.Errorf("Core(%s) = %+v, want issue=%d rob=%d rs=%d lsq=%d",
				c.size, p, c.issue, c.rob, c.rs, c.lsq)
		}
	}
}

func TestCoreSizeString(t *testing.T) {
	if SizeS.String() != "S" || SizeM.String() != "M" || SizeL.String() != "L" {
		t.Errorf("unexpected core size names: %s %s %s", SizeS, SizeM, SizeL)
	}
	if got := CoreSize(9).String(); got != "CoreSize(9)" {
		t.Errorf("out-of-range CoreSize string = %q", got)
	}
}

func TestCoreSizeValid(t *testing.T) {
	for _, c := range Sizes {
		if !c.Valid() {
			t.Errorf("%s should be valid", c)
		}
	}
	if CoreSize(-1).Valid() || CoreSize(3).Valid() {
		t.Error("out-of-range sizes must be invalid")
	}
}

func TestMaxROBMatchesTable(t *testing.T) {
	if Core(SizeL).ROB != MaxROB {
		t.Errorf("MaxROB %d != L-core ROB %d", MaxROB, Core(SizeL).ROB)
	}
	if IndexWindow != 4*MaxROB {
		t.Errorf("index window %d, want 4×ROB = %d", IndexWindow, 4*MaxROB)
	}
}

func TestFreqGrid(t *testing.T) {
	if FreqGHz(0) != FMinGHz {
		t.Errorf("first grid frequency %.2f, want %.2f", FreqGHz(0), FMinGHz)
	}
	if FreqGHz(NumFreqs-1) != FMaxGHz {
		t.Errorf("last grid frequency %.2f, want %.2f", FreqGHz(NumFreqs-1), FMaxGHz)
	}
	if FreqGHz(BaseFreqIdx) != FBaseGHz {
		t.Errorf("baseline grid frequency %.2f, want %.2f", FreqGHz(BaseFreqIdx), FBaseGHz)
	}
}

func TestFreqIndexRoundTrip(t *testing.T) {
	for i := 0; i < NumFreqs; i++ {
		if got := FreqIndex(FreqGHz(i)); got != i {
			t.Errorf("FreqIndex(FreqGHz(%d)) = %d", i, got)
		}
	}
	if FreqIndex(1.37) != -1 {
		t.Error("off-grid frequency should return -1")
	}
}

func TestVoltageEndpoints(t *testing.T) {
	cases := []struct{ f, v float64 }{
		{FMinGHz, VMin},
		{FBaseGHz, VBase},
		{FMaxGHz, VMax},
	}
	for _, c := range cases {
		if got := Voltage(c.f); !close(got, c.v) {
			t.Errorf("Voltage(%.2f) = %.4f, want %.4f", c.f, got, c.v)
		}
	}
}

func TestVoltageMonotonic(t *testing.T) {
	prev := Voltage(FreqGHz(0))
	for i := 1; i < NumFreqs; i++ {
		v := Voltage(FreqGHz(i))
		if v <= prev {
			t.Fatalf("voltage not monotonic at grid index %d: %.3f <= %.3f", i, v, prev)
		}
		prev = v
	}
}

func TestBaselineSetting(t *testing.T) {
	b := Baseline()
	if b.Core != SizeM || b.Freq != BaseFreqIdx || b.Ways != BaseWays {
		t.Errorf("baseline = %v, want M/2GHz/8w", b)
	}
	if !b.Valid() {
		t.Error("baseline must be valid")
	}
	if got := b.String(); got != "M/2.00GHz/8w" {
		t.Errorf("baseline string = %q", got)
	}
}

func TestSettingValid(t *testing.T) {
	bad := []Setting{
		{Core: CoreSize(5), Freq: 0, Ways: 8},
		{Core: SizeM, Freq: -1, Ways: 8},
		{Core: SizeM, Freq: NumFreqs, Ways: 8},
		{Core: SizeM, Freq: 0, Ways: MinWays - 1},
		{Core: SizeM, Freq: 0, Ways: MaxWays + 1},
	}
	for _, s := range bad {
		if s.Valid() {
			t.Errorf("setting %+v should be invalid", s)
		}
	}
}

func TestSettingValidQuick(t *testing.T) {
	// Property: Valid accepts exactly the Table I box.
	f := func(core, freq, ways int8) bool {
		s := Setting{Core: CoreSize(core % 5), Freq: int(freq % 12), Ways: int(ways % 20)}
		want := s.Core >= SizeS && s.Core <= SizeL &&
			s.Freq >= 0 && s.Freq < NumFreqs &&
			s.Ways >= MinWays && s.Ways <= MaxWays
		return s.Valid() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalWays(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		if got := TotalWays(n); got != 8*n {
			t.Errorf("TotalWays(%d) = %d, want %d", n, got, 8*n)
		}
	}
}

func TestRMInstructionOverhead(t *testing.T) {
	// Section III-E measured values.
	cases := []struct{ cores, want int }{{2, 51_000}, {4, 73_000}, {8, 100_000}}
	for _, c := range cases {
		if got := RMInstructionOverhead(c.cores); got != c.want {
			t.Errorf("RMInstructionOverhead(%d) = %d, want %d", c.cores, got, c.want)
		}
	}
	// Interpolated values stay within the measured envelope.
	for n := 2; n <= 8; n++ {
		got := RMInstructionOverhead(n)
		if got < 51_000 || got > 100_000 {
			t.Errorf("RMInstructionOverhead(%d) = %d outside [51K,100K]", n, got)
		}
	}
}

func TestPrevRMInstructionOverhead(t *testing.T) {
	cases := []struct{ cores, want int }{{2, 18_000}, {4, 40_000}, {8, 67_000}}
	for _, c := range cases {
		if got := PrevRMInstructionOverhead(c.cores); got != c.want {
			t.Errorf("PrevRMInstructionOverhead(%d) = %d, want %d", c.cores, got, c.want)
		}
	}
	// The proposed RM always costs more than the prior art's.
	for n := 2; n <= 8; n++ {
		if PrevRMInstructionOverhead(n) >= RMInstructionOverhead(n) {
			t.Errorf("prior-art overhead should be below the proposed RM's at %d cores", n)
		}
	}
}

func TestSystemValidate(t *testing.T) {
	if err := DefaultSystem(4).Validate(); err != nil {
		t.Errorf("default system invalid: %v", err)
	}
	if err := (System{Cores: 0, Interval: 1}).Validate(); err == nil {
		t.Error("zero cores should fail validation")
	}
	if err := (System{Cores: 1, Interval: 0}).Validate(); err == nil {
		t.Error("zero interval should fail validation")
	}
}

func TestCacheGeometryScaling(t *testing.T) {
	// The scaled hierarchy must preserve Table I associativities and the
	// represented sizes must divide exactly by MemScale.
	if RepL3BytesPerCore/MemScale != L3BytesPerCore {
		t.Error("L3 scaling inconsistent")
	}
	if L3BytesPerCore%(L3WaysPerCore*BlockBytes) != 0 {
		t.Error("scaled L3 slice not divisible into ways")
	}
	// Per-way capacity must represent 256 KB (Table I allowed range).
	perWayRep := RepL3BytesPerCore / L3WaysPerCore
	if perWayRep != 256<<10 {
		t.Errorf("represented per-way capacity %d, want 256 KB", perWayRep)
	}
}

func TestModelMemLatency(t *testing.T) {
	if ModelMemLatencyNs <= DRAMLatencyNs {
		t.Error("model memory latency must include the LLC lookup")
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
