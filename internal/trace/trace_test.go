package trace

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"qosrm/internal/config"
)

// validParams is a small well-formed parameter set for tests.
func validParams(seed int64) Params {
	return Params{
		Seed:           seed,
		LoadFrac:       0.25,
		StoreFrac:      0.08,
		BranchFrac:     0.12,
		MulFrac:        0.2,
		BranchMissRate: 0.05,
		DepProb:        0.5,
		DepMean:        4,
		BurstProb:      0.1,
		BurstLen:       6,
		BurstSpread:    8,
		ChaseFrac:      0.3,
		Regions: []Region{
			{Bytes: 4 << 10, Weight: 1, Sequential: true},
			{Bytes: 64 << 10, Weight: 0},
		},
	}
}

func TestValidateAcceptsValid(t *testing.T) {
	if err := validParams(1).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*Params)
	}{
		{"negative load frac", func(p *Params) { p.LoadFrac = -0.1 }},
		{"mix sums to one", func(p *Params) { p.LoadFrac, p.StoreFrac, p.BranchFrac = 0.5, 0.3, 0.3 }},
		{"branch miss rate", func(p *Params) { p.BranchMissRate = 1.5 }},
		{"dep prob", func(p *Params) { p.DepProb = -0.2 }},
		{"chase frac", func(p *Params) { p.ChaseFrac = 2 }},
		{"burst prob", func(p *Params) { p.BurstProb = -1 }},
		{"no regions", func(p *Params) { p.Regions = nil }},
		{"tiny region", func(p *Params) { p.Regions[0].Bytes = 1 }},
		{"negative weight", func(p *Params) { p.Regions[0].Weight = -1 }},
		{"zero weights", func(p *Params) { p.Regions[0].Weight = 0; p.Regions[1].Weight = 0 }},
		{"window too large", func(p *Params) { p.Regions[1].WindowBytes = p.Regions[1].Bytes * 2 }},
		{"negative drift", func(p *Params) { p.Regions[1].DriftEvery = -3 }},
	}
	for _, m := range mutate {
		p := validParams(1)
		m.f(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(validParams(42), 5000)
	b := Generate(validParams(42), 5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must produce identical streams")
	}
	c := Generate(validParams(43), 5000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should produce different streams")
	}
}

func TestGeneratorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGenerator must panic on invalid params")
		}
	}()
	p := validParams(1)
	p.Regions = nil
	NewGenerator(p)
}

func TestInstructionMix(t *testing.T) {
	p := validParams(7)
	// Bursts with spread > 1 dilute the load fraction by design (one
	// load per BurstSpread instructions while a burst drains); disable
	// them to test the plain mixture.
	p.BurstProb = 0
	const n = 200_000
	insts := Generate(p, n)
	counts := map[Kind]int{}
	for _, in := range insts {
		counts[in.Kind]++
	}
	loadFrac := float64(counts[KindLoad]) / n
	if math.Abs(loadFrac-p.LoadFrac) > 0.05 {
		t.Errorf("load fraction %.3f, want ≈ %.3f", loadFrac, p.LoadFrac)
	}
	// Store/branch fractions are relative to the non-load remainder.
	storeFrac := float64(counts[KindStore]) / n
	if math.Abs(storeFrac-p.StoreFrac) > 0.03 {
		t.Errorf("store fraction %.3f, want ≈ %.3f", storeFrac, p.StoreFrac)
	}
	branchFrac := float64(counts[KindBranch]) / n
	if math.Abs(branchFrac-p.BranchFrac) > 0.03 {
		t.Errorf("branch fraction %.3f, want ≈ %.3f", branchFrac, p.BranchFrac)
	}
	if counts[KindMul] == 0 || counts[KindALU] == 0 {
		t.Error("expected both ALU and MUL instructions")
	}
}

func TestBranchMissRate(t *testing.T) {
	p := validParams(11)
	p.BranchMissRate = 0.25
	insts := Generate(p, 200_000)
	branches, missed := 0, 0
	for _, in := range insts {
		if in.Kind == KindBranch {
			branches++
			if in.Mispredict {
				missed++
			}
		}
	}
	got := float64(missed) / float64(branches)
	if math.Abs(got-0.25) > 0.03 {
		t.Errorf("mispredict rate %.3f, want ≈ 0.25", got)
	}
	for _, in := range insts {
		if in.Kind != KindBranch && in.Mispredict {
			t.Fatal("only branches may carry the mispredict flag")
		}
	}
}

func TestDependenceBounds(t *testing.T) {
	insts := Generate(validParams(3), 50_000)
	for i, in := range insts {
		if in.Dep1 < 0 || in.Dep2 < 0 {
			t.Fatalf("negative dependence at %d", i)
		}
		if int(in.Dep1) > i || int(in.Dep2) > i {
			t.Fatalf("dependence before stream start at %d: %d/%d", i, in.Dep1, in.Dep2)
		}
	}
}

func TestDependenceBoundsQuick(t *testing.T) {
	// Property: for any seed, dependences never point before the stream.
	f := func(seed int64) bool {
		insts := Generate(validParams(seed), 2000)
		for i, in := range insts {
			if int(in.Dep1) > i || int(in.Dep2) > i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	p := validParams(5)
	g := NewGenerator(p)
	// Region byte ranges must be disjoint: collect addresses and check
	// each falls in exactly one region span.
	spans := make([][2]uint64, len(p.Regions))
	var next uint64
	for i, r := range p.Regions {
		blocks := (r.Bytes + config.BlockBytes - 1) / config.BlockBytes
		spans[i] = [2]uint64{next, next + blocks*config.BlockBytes}
		next += (blocks + 1) * config.BlockBytes
	}
	for i := 0; i < 50_000; i++ {
		in := g.Next()
		if in.Kind != KindLoad && in.Kind != KindStore {
			continue
		}
		hits := 0
		for _, s := range spans {
			if in.Addr >= s[0] && in.Addr < s[1] {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("address %#x falls in %d regions", in.Addr, hits)
		}
	}
}

func TestMainRegionTrafficOnlyViaBursts(t *testing.T) {
	// With the hot region carrying all mixture weight, main-region loads
	// exist iff bursts are enabled.
	p := validParams(9)
	p.BurstProb = 0
	mainBase := mainRegionBase(p)
	for _, in := range Generate(p, 100_000) {
		if (in.Kind == KindLoad || in.Kind == KindStore) && in.Addr >= mainBase {
			t.Fatalf("main-region access %#x with BurstProb=0", in.Addr)
		}
	}
	p.BurstProb = 0.2
	found := false
	for _, in := range Generate(p, 100_000) {
		if in.Kind == KindLoad && in.Addr >= mainBase {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("expected main-region loads with BurstProb>0")
	}
}

// mainRegionBase computes the main region's base address the same way
// the generator lays regions out.
func mainRegionBase(p Params) uint64 {
	blocks := (p.Regions[0].Bytes + config.BlockBytes - 1) / config.BlockBytes
	return (blocks + 1) * config.BlockBytes
}

func TestChaseDependences(t *testing.T) {
	p := validParams(13)
	p.ChaseFrac = 1 // every main load depends on the previous one
	p.BurstProb = 0.3
	insts := Generate(p, 100_000)
	mainBase := mainRegionBase(p)
	last := -1
	for i, in := range insts {
		if in.Kind != KindLoad || in.Addr < mainBase {
			continue
		}
		if last >= 0 {
			if int(in.Dep1) != i-last {
				t.Fatalf("chased load %d: Dep1=%d, want %d", i, in.Dep1, i-last)
			}
		}
		last = i
	}
}

func TestSequentialRegionCursor(t *testing.T) {
	p := Params{
		Seed:     1,
		LoadFrac: 1.0 - 1e-9, // effectively every instruction loads
		Regions:  []Region{{Bytes: 8 * config.BlockBytes, Weight: 1, Sequential: true}},
	}
	// LoadFrac must stay < 1 for validation; use 0.999.
	p.LoadFrac = 0.999
	g := NewGenerator(p)
	var prev uint64
	seen := 0
	for seen < 20 {
		in := g.Next()
		if in.Kind != KindLoad {
			continue
		}
		if seen > 0 {
			want := (prev + config.BlockBytes) % (8 * config.BlockBytes)
			if in.Addr != want {
				t.Fatalf("sequential cursor jumped: %#x after %#x", in.Addr, prev)
			}
		}
		prev = in.Addr
		seen++
	}
}

func TestWorkingWindowConfinesAccesses(t *testing.T) {
	// With a static window, all accesses stay within WindowBytes of the
	// region base.
	p := Params{
		Seed:      2,
		LoadFrac:  0.5,
		BurstProb: 1,
		BurstLen:  1, BurstSpread: 1,
		Regions: []Region{
			{Bytes: config.BlockBytes, Weight: 1, Sequential: true},
			{Bytes: 1 << 20, Weight: 0, WindowBytes: 4 << 10, DriftEvery: 0},
		},
	}
	mainBase := mainRegionBase(p)
	for _, in := range Generate(p, 50_000) {
		if in.Kind == KindLoad && in.Addr >= mainBase {
			if in.Addr >= mainBase+4<<10 {
				t.Fatalf("access %#x outside static window", in.Addr)
			}
		}
	}
}

func TestWorkingWindowDrift(t *testing.T) {
	p := Params{
		Seed:      2,
		LoadFrac:  0.5,
		BurstProb: 1,
		BurstLen:  1, BurstSpread: 1,
		Regions: []Region{
			{Bytes: config.BlockBytes, Weight: 1, Sequential: true},
			{Bytes: 1 << 20, Weight: 0, WindowBytes: 4 << 10, DriftEvery: 4},
		},
	}
	mainBase := mainRegionBase(p)
	var maxAddr uint64
	for _, in := range Generate(p, 200_000) {
		if in.Kind == KindLoad && in.Addr >= mainBase && in.Addr > maxAddr {
			maxAddr = in.Addr
		}
	}
	if maxAddr < mainBase+8<<10 {
		t.Fatalf("window did not drift: max address %#x", maxAddr)
	}
}

func TestBurstShape(t *testing.T) {
	// With spread 1 and burst length B, main-region loads come in runs
	// of exactly B consecutive instructions.
	p := Params{
		Seed:      4,
		LoadFrac:  0.05,
		BurstProb: 1,
		BurstLen:  5, BurstSpread: 1,
		Regions: []Region{
			{Bytes: config.BlockBytes, Weight: 1, Sequential: true},
			{Bytes: 1 << 20, Weight: 0},
		},
	}
	mainBase := mainRegionBase(p)
	insts := Generate(p, 100_000)
	run := 0
	runs := map[int]int{}
	for _, in := range insts {
		if in.Kind == KindLoad && in.Addr >= mainBase {
			run++
		} else if run > 0 {
			runs[run]++
			run = 0
		}
	}
	if len(runs) == 0 {
		t.Fatal("no bursts observed")
	}
	for length, count := range runs {
		if length != 5 {
			// Back-to-back bursts can concatenate; allow multiples of 5.
			if length%5 != 0 {
				t.Errorf("burst run of length %d (×%d), want multiples of 5", length, count)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindALU: "alu", KindMul: "mul", KindLoad: "load",
		KindStore: "store", KindBranch: "branch",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestGeneratorParamsAccessor(t *testing.T) {
	p := validParams(21)
	g := NewGenerator(p)
	if !reflect.DeepEqual(g.Params(), p) {
		t.Error("Params accessor must return the construction parameters")
	}
}

func TestStreamIsStationary(t *testing.T) {
	// The load fraction of the second half matches the first half —
	// guards against state leaks that change the mix over time.
	insts := Generate(validParams(17), 200_000)
	frac := func(s []Inst) float64 {
		n := 0
		for _, in := range s {
			if in.Kind == KindLoad {
				n++
			}
		}
		return float64(n) / float64(len(s))
	}
	a, b := frac(insts[:100_000]), frac(insts[100_000:])
	if math.Abs(a-b) > 0.02 {
		t.Errorf("load fraction drifts: %.3f vs %.3f", a, b)
	}
}

func TestGenerateMatchesGenerator(t *testing.T) {
	p := validParams(23)
	g := NewGenerator(p)
	batch := Generate(p, 1000)
	for i := 0; i < 1000; i++ {
		if got := g.Next(); got != batch[i] {
			t.Fatalf("Generate diverges from Generator at %d", i)
		}
	}
}

func TestAddressAlignment(t *testing.T) {
	// All addresses are block-aligned (the hierarchy works in blocks).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := validParams(rng.Int63())
		for _, in := range Generate(p, 2000) {
			if in.Kind == KindLoad || in.Kind == KindStore {
				if in.Addr%config.BlockBytes != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStoreMainFracRoutesStores(t *testing.T) {
	p := validParams(31)
	p.StoreMainFrac = 1
	mainBase := mainRegionBase(p)
	sawMainStore := false
	for _, in := range Generate(p, 100_000) {
		if in.Kind == KindStore && in.Addr >= mainBase {
			sawMainStore = true
			break
		}
	}
	if !sawMainStore {
		t.Fatal("StoreMainFrac=1 must route stores to the main region")
	}

	p.StoreMainFrac = 0
	for _, in := range Generate(p, 100_000) {
		if in.Kind == KindStore && in.Addr >= mainBase {
			t.Fatal("StoreMainFrac=0 must keep stores out of the main region")
		}
	}
}

func TestStoreMainFracValidation(t *testing.T) {
	p := validParams(32)
	p.StoreMainFrac = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range StoreMainFrac must be rejected")
	}
}
