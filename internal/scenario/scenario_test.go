package scenario

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/rm"
	"qosrm/internal/sim"
	"qosrm/internal/workload"
)

var (
	once   sync.Once
	shared *db.DB
	dbErr  error
)

func sharedDB(t *testing.T) *db.DB {
	t.Helper()
	once.Do(func() {
		var benches []*bench.Benchmark
		for _, n := range []string{"mcf", "povray", "bwaves", "xalancbmk"} {
			b, err := bench.ByName(n)
			if err != nil {
				dbErr = err
				return
			}
			benches = append(benches, b)
		}
		shared, dbErr = db.Build(benches, db.Options{TraceLen: 16384, Warmup: 4096})
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return shared
}

// testSpec is a small two-core churn scenario over the shared database.
func testSpec(name string) Spec {
	const fiveIntervals = 5 * 100_000_000 * 2048
	core1 := 1
	return Spec{
		Name: name,
		RM:   "RM3",
		Cores: []CoreSpec{
			{Jobs: []JobSpec{
				{App: "mcf", Work: fiveIntervals, DepartNs: 2.5e8},
				{App: "povray", Work: fiveIntervals, Alpha: 1.2},
			}},
			{Jobs: []JobSpec{
				{App: "bwaves", Work: fiveIntervals},
				{App: "xalancbmk", Work: fiveIntervals, ArrivalNs: 5e8},
			}},
		},
		Steps: []StepSpec{{AtNs: 3e8, Core: &core1, Alpha: 1.1}},
	}
}

func TestLoadSingleAndArray(t *testing.T) {
	single := `{
		"name": "one",
		"rm": "RM2",
		"cores": [{"jobs": [{"app": "mcf", "alpha": 1.1}]}],
		"qos_steps": [{"at_ns": 1e9, "alpha": 1.2}]
	}`
	specs, err := Load(strings.NewReader(single))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "one" || specs[0].RM != "RM2" {
		t.Fatalf("bad single parse: %+v", specs)
	}
	if specs[0].Steps[0].Core != nil {
		t.Error("omitted step core must mean every core")
	}
	if err := specs[0].Validate(); err != nil {
		t.Fatal(err)
	}

	array := `[
		{"name": "a", "cores": [{"jobs": [{"app": "mcf"}]}]},
		{"name": "b", "cores": [{"jobs": [{"app": "povray", "arrival_ns": 5}]}]}
	]`
	specs, err = Load(strings.NewReader(array))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].Cores[0].Jobs[0].ArrivalNs != 5 {
		t.Fatalf("bad array parse: %+v", specs)
	}

	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := Load(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON must fail")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Spec{
		{Name: "no-cores"},
		{Name: "no-jobs", Cores: []CoreSpec{{}}},
		{Name: "unknown-app", Cores: []CoreSpec{{Jobs: []JobSpec{{App: "nginx"}}}}},
		{Name: "bad-rm", RM: "RM9", Cores: []CoreSpec{{Jobs: []JobSpec{{App: "mcf"}}}}},
		{Name: "bad-model", Model: "Model7", Cores: []CoreSpec{{Jobs: []JobSpec{{App: "mcf"}}}}},
		{Name: "neg-arrival", Cores: []CoreSpec{{Jobs: []JobSpec{{App: "mcf", ArrivalNs: -1}}}}},
		{Name: "bad-step", Cores: []CoreSpec{{Jobs: []JobSpec{{App: "mcf"}}}},
			Steps: []StepSpec{{AtNs: 1, Alpha: -2}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: want validation error", s.Name)
		}
	}
	good := testSpec("ok")
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestCompileMapsFields(t *testing.T) {
	s := testSpec("compile")
	dyn, cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RM != rm.RM3 {
		t.Errorf("RM %v", cfg.RM)
	}
	if len(dyn.Queues) != 2 || len(dyn.Queues[0].Jobs) != 2 {
		t.Fatalf("bad queues: %+v", dyn.Queues)
	}
	if dyn.Queues[0].Jobs[0].App.Name != "mcf" || dyn.Queues[0].Jobs[0].DepartNs != 2.5e8 {
		t.Errorf("job 0 mismapped: %+v", dyn.Queues[0].Jobs[0])
	}
	if len(dyn.Steps) != 1 || dyn.Steps[0].Core != 1 || dyn.Steps[0].Alpha != 1.1 {
		t.Errorf("step mismapped: %+v", dyn.Steps)
	}
}

func TestBenchmarksUnion(t *testing.T) {
	specs := []Spec{testSpec("a"), testSpec("b")}
	specs[1].Cores[0].Jobs[0].App = "povray" // duplicate across specs
	names := []string{}
	for _, b := range Benchmarks(specs) {
		names = append(names, b.Name)
	}
	want := []string{"mcf", "povray", "bwaves", "xalancbmk"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("union %v, want %v", names, want)
	}
}

func TestRunProducesReport(t *testing.T) {
	d := sharedDB(t)
	s := testSpec("run")
	r, err := Run(d, &s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "run" || r.RM != "RM3" {
		t.Errorf("report header wrong: %+v", r)
	}
	if len(r.Jobs) != 4 {
		t.Fatalf("%d job results, want 4", len(r.Jobs))
	}
	if r.EnergyJ <= 0 || r.IdleEnergyJ <= 0 || r.TimeNs <= 0 {
		t.Error("non-positive energies or time")
	}
	if math.Abs(r.Saving-(1-r.EnergyJ/r.IdleEnergyJ)) > 1e-12 {
		t.Error("saving not derived from the energy pair")
	}
	if r.RMCalled == 0 {
		t.Error("manager never invoked")
	}
	// The departing job must be flagged.
	departed := 0
	for _, j := range r.Jobs {
		if j.Departed {
			departed++
		}
	}
	if departed != 1 {
		t.Errorf("%d departed jobs, want 1", departed)
	}
}

func TestSweepMatchesSequentialRuns(t *testing.T) {
	d := sharedDB(t)
	specs := []Spec{testSpec("s1"), testSpec("s2"), testSpec("s3")}
	specs[1].RM = "RM2"
	specs[2].Perfect = true

	parallel, err := Sweep(d, specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		seq, err := Run(d, &specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parallel[i], seq) {
			t.Errorf("spec %d: parallel report differs from sequential", i)
		}
	}
}

func TestSweepCollectsErrors(t *testing.T) {
	d := sharedDB(t)
	specs := []Spec{testSpec("good"), testSpec("bad")}
	// omnetpp is a valid suite application absent from the shared test
	// database, so validation passes and the run itself fails.
	specs[1].Cores[0].Jobs[0].App = "omnetpp"
	reports, err := Sweep(d, specs, 2)
	if err == nil {
		t.Fatal("want a joined error")
	}
	if reports[0] == nil || reports[1] != nil {
		t.Error("good scenario must still report; bad must not")
	}
}

func TestFromChurn(t *testing.T) {
	churn, err := workload.GenerateChurn(workload.Scenario1, 4, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := FromChurn("c", churn, 2e9)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Cores) != 4 {
		t.Fatalf("%d cores", len(s.Cores))
	}
	for _, c := range s.Cores {
		if len(c.Jobs) != 3 {
			t.Fatalf("%d jobs per core, want 3", len(c.Jobs))
		}
		prev := -1.0
		for _, j := range c.Jobs {
			if j.ArrivalNs < prev {
				t.Error("queue not in arrival order")
			}
			prev = j.ArrivalNs
			if j.ArrivalNs > 2e9 {
				t.Errorf("arrival %v beyond the horizon", j.ArrivalNs)
			}
			if j.Work <= 0 {
				t.Error("non-positive work")
			}
			if j.Alpha == 1.0 {
				t.Error("strict alpha must stay implicit (0)")
			}
		}
	}
	// A generated schedule must compile to a valid dynamic description.
	if _, _, err := s.Compile(); err != nil {
		t.Fatal(err)
	}
}

// TestSpecJSONRoundTrip pins the on-disk format: a compiled spec
// marshals and re-parses to the same value.
func TestSpecJSONRoundTrip(t *testing.T) {
	s := testSpec("rt")
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back[0], s) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", back[0], s)
	}
}

// TestStaticSpecMatchesSimRun closes the loop at the package level: a
// static single-job-per-core spec run through the scenario engine is
// bit-identical to plain sim.Run on the same workload.
func TestStaticSpecMatchesSimRun(t *testing.T) {
	d := sharedDB(t)
	s := Spec{
		Name: "static",
		RM:   "RM3",
		Cores: []CoreSpec{
			{Jobs: []JobSpec{{App: "mcf"}}},
			{Jobs: []JobSpec{{App: "povray"}}},
		},
	}
	r, err := Run(d, &s)
	if err != nil {
		t.Fatal(err)
	}
	mcf, _ := bench.ByName("mcf")
	povray, _ := bench.ByName("povray")
	want, err := sim.Run(d, []*bench.Benchmark{mcf, povray}, sim.Config{RM: rm.RM3})
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyJ != want.EnergyJ || r.TimeNs != want.TimeNs || r.RMCalled != want.RMCalled {
		t.Errorf("scenario run differs from sim.Run: %v/%v, %v/%v, %d/%d",
			r.EnergyJ, want.EnergyJ, r.TimeNs, want.TimeNs, r.RMCalled, want.RMCalled)
	}
	for _, j := range r.Jobs {
		if !reflect.DeepEqual(j.AppResult, want.Apps[j.Core]) {
			t.Errorf("core %d job result differs from app result", j.Core)
		}
	}
}
