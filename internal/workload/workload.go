// Package workload generates the evaluation workloads of Section IV-C:
// mixes of benchmark applications drawn from the four taxonomy categories
// according to the four scenarios identified in the Figure 1 trade-off
// analysis.
//
// For an n-core workload the first half of the cores draws applications
// from the scenario's App1 category set and the second half from its App2
// set. Selection is seeded-random (the paper uses Python's
// random.choice) with a round-robin bias that guarantees every
// application of a pool appears at least once across a workload set, as
// the paper's generation loop does.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qosrm/internal/bench"
)

// Scenario is one of the four workload scenarios of Section II
// (the bounded rectangles of Figure 1).
type Scenario int

// The four scenarios. In Scenario1 the proposed RM3 beats prior art; in
// Scenario2 both are comparable; in Scenario3 only RM3 is effective; in
// Scenario4 neither saves energy.
const (
	Scenario1 Scenario = 1 + iota
	Scenario2
	Scenario3
	Scenario4
)

// Scenarios lists all scenarios in order.
var Scenarios = [4]Scenario{Scenario1, Scenario2, Scenario3, Scenario4}

// String returns "S1".."S4".
func (s Scenario) String() string { return fmt.Sprintf("S%d", int(s)) }

// Cell is one (App1 category, App2 category) mix of Figure 1.
type Cell struct{ App1, App2 bench.Category }

// Cells returns the Figure 1 cells belonging to the scenario:
//
//	S1: App2 ∈ CS-PS with any App1, plus (CI-PS, CS-PI);
//	S2: App2 = CS-PI with App1 ∈ {CS-PI, CI-PI};
//	S3: App2 = CI-PS with App1 ∈ {CI-PS, CI-PI};
//	S4: CI-PI with CI-PI.
//
// Together the cells tile the 10 distinct unordered mixes, and their
// probability masses reproduce the paper's 47 / 22.1 / 22.1 / 8.8%
// scenario weights.
func (s Scenario) Cells() []Cell {
	switch s {
	case Scenario1:
		return []Cell{
			{bench.CSPS, bench.CSPS},
			{bench.CSPI, bench.CSPS},
			{bench.CIPS, bench.CSPS},
			{bench.CIPI, bench.CSPS},
			{bench.CIPS, bench.CSPI},
		}
	case Scenario2:
		return []Cell{
			{bench.CSPI, bench.CSPI},
			{bench.CIPI, bench.CSPI},
		}
	case Scenario3:
		return []Cell{
			{bench.CIPS, bench.CIPS},
			{bench.CIPI, bench.CIPS},
		}
	case Scenario4:
		return []Cell{{bench.CIPI, bench.CIPI}}
	default:
		panic(fmt.Sprintf("workload: unknown scenario %d", int(s)))
	}
}

// categoryCount returns the number of suite applications per category.
func categoryCount() map[bench.Category]int {
	m := make(map[bench.Category]int, bench.NumCategories)
	for _, b := range bench.Suite() {
		m[b.Category]++
	}
	return m
}

// MixProbability returns the probability that a random two-application
// mix falls in the (unordered) cell {a, b}: n_a·n_b/27² doubled for
// distinct categories, as in Figure 1.
func MixProbability(a, b bench.Category) float64 {
	counts := categoryCount()
	total := 0
	for _, n := range counts {
		total += n
	}
	p := float64(counts[a]) * float64(counts[b]) / float64(total*total)
	if a != b {
		p *= 2
	}
	return p
}

// Weight returns the scenario's probability mass — the sum of its cells'
// mix probabilities (paper: 47%, 22.1%, 22.1%, 8.8%).
func (s Scenario) Weight() float64 {
	w := 0.0
	for _, c := range s.Cells() {
		w += MixProbability(c.App1, c.App2)
	}
	return w
}

// Workload is one generated application mix.
type Workload struct {
	Name     string
	Scenario Scenario
	Apps     []*bench.Benchmark
}

// pool is a seeded round-robin sampler over one category's applications:
// it shuffles once, then deals applications in order, reshuffling after
// each full pass, so coverage is guaranteed as soon as a pool has dealt
// len(pool) applications.
type pool struct {
	apps []*bench.Benchmark
	rng  *rand.Rand
	next int
}

func newPool(cat bench.Category, rng *rand.Rand) *pool {
	byCat := bench.ByCategory()
	apps := make([]*bench.Benchmark, len(byCat[cat]))
	copy(apps, byCat[cat])
	p := &pool{apps: apps, rng: rng}
	p.shuffle()
	return p
}

func (p *pool) shuffle() {
	p.rng.Shuffle(len(p.apps), func(i, j int) { p.apps[i], p.apps[j] = p.apps[j], p.apps[i] })
	p.next = 0
}

func (p *pool) pick() *bench.Benchmark {
	if p.next >= len(p.apps) {
		p.shuffle()
	}
	b := p.apps[p.next]
	p.next++
	return b
}

// Generate produces count n-core workloads for the scenario,
// deterministically from seed. Each workload chooses one of the
// scenario's cells (cycling through them) and fills the first half of
// the cores from the App1 pool and the second half from the App2 pool.
func Generate(s Scenario, cores, count int, seed int64) ([]Workload, error) {
	if cores < 2 || cores%2 != 0 {
		return nil, fmt.Errorf("workload: core count %d must be even and ≥ 2", cores)
	}
	if count < 1 {
		return nil, fmt.Errorf("workload: count %d must be positive", count)
	}
	rng := rand.New(rand.NewSource(seed ^ int64(s)<<32 ^ int64(cores)))
	pools := make(map[bench.Category]*pool, bench.NumCategories)
	for _, cat := range bench.Categories {
		pools[cat] = newPool(cat, rng)
	}
	cells := s.Cells()
	out := make([]Workload, 0, count)
	for i := 0; i < count; i++ {
		cell := cells[i%len(cells)]
		w := Workload{
			Name:     fmt.Sprintf("%dCore-%s-W%d", cores, s, i+1),
			Scenario: s,
			Apps:     make([]*bench.Benchmark, cores),
		}
		for j := 0; j < cores/2; j++ {
			w.Apps[j] = pools[cell.App1].pick()
		}
		for j := cores / 2; j < cores; j++ {
			w.Apps[j] = pools[cell.App2].pick()
		}
		out = append(out, w)
	}
	return out, nil
}

// ChurnEntry is one queued application of a generated churn schedule.
// The fractions are dimensionless so callers can scale a schedule to any
// simulation horizon and instruction budget (internal/scenario does).
type ChurnEntry struct {
	App *bench.Benchmark
	// Alpha is the per-application QoS relaxation drawn for the entry.
	Alpha float64
	// ArrivalFrac positions the entry's arrival on the schedule horizon:
	// the entry arrives after ArrivalFrac of the nominal timeline.
	ArrivalFrac float64
	// WorkFrac is the entry's instruction budget as a fraction of the
	// full application target.
	WorkFrac float64
}

// churnAlphas is the per-application QoS relaxation pool churn schedules
// draw from: most jobs keep the paper's strict target, some tolerate a
// little slack, a few a lot.
var churnAlphas = [4]float64{1.0, 1.0, 1.1, 1.25}

// ArrivalProcess selects how a generated churn schedule positions its
// arrivals on the horizon.
type ArrivalProcess int

const (
	// ArrivalStaggered is the wave schedule: wave k of every queue
	// arrives around k/depth of the horizon with jitter — the original
	// GenerateChurn behaviour.
	ArrivalStaggered ArrivalProcess = iota
	// ArrivalPoisson draws memoryless per-core arrivals at a constant
	// rate: exponential inter-arrival times accumulated per queue, the
	// classic open-system trace shape.
	ArrivalPoisson
	// ArrivalDiurnal draws arrivals from a non-homogeneous process whose
	// intensity peaks mid-horizon (1 − 0.8·cos 2πt), the day/night load
	// curve of a user-facing service.
	ArrivalDiurnal
)

// String returns the process's flag spelling.
func (p ArrivalProcess) String() string {
	switch p {
	case ArrivalStaggered:
		return "staggered"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalDiurnal:
		return "diurnal"
	}
	return fmt.Sprintf("ArrivalProcess(%d)", int(p))
}

// ParseArrivalProcess resolves a process name (empty defaults to
// staggered).
func ParseArrivalProcess(s string) (ArrivalProcess, error) {
	switch s {
	case "", "staggered":
		return ArrivalStaggered, nil
	case "poisson":
		return ArrivalPoisson, nil
	case "diurnal":
		return ArrivalDiurnal, nil
	}
	return 0, fmt.Errorf("workload: unknown arrival process %q (want staggered, poisson or diurnal)", s)
}

// ChurnOptions tunes GenerateChurnOpts beyond the defaults.
type ChurnOptions struct {
	// Process selects the arrival process (default staggered).
	Process ArrivalProcess
	// Rate is the expected number of arrivals per core over the horizon
	// for the Poisson and diurnal processes; 0 defaults to depth, so the
	// generated load matches the staggered schedule's density. Ignored
	// by the staggered process.
	Rate float64
}

// GenerateChurn produces an n-core multiprogrammed churn schedule for
// the scenario, deterministically from seed: depth waves of
// applications, each wave drawn from one of the scenario's Figure 1
// cells exactly as Generate draws its static mixes (first half of the
// cores from the App1 pool, second half from the App2 pool), with
// staggered arrivals, bounded per-job work and per-application QoS
// relaxations. The result is one queue per core, wave k of every queue
// arriving around k/depth of the horizon.
func GenerateChurn(s Scenario, cores, depth int, seed int64) ([][]ChurnEntry, error) {
	return GenerateChurnOpts(s, cores, depth, seed, ChurnOptions{})
}

// GenerateChurnOpts is GenerateChurn with a selectable arrival process,
// so policy sweeps can run over trace-like load instead of only the
// staggered wave schedule. Every (seed, options) pair is deterministic;
// the zero options reproduce GenerateChurn exactly. Poisson and diurnal
// arrivals are sorted per queue (the order the engine consumes); an
// arrival fraction may exceed 1 — the tail of an open arrival stream
// past the nominal horizon.
func GenerateChurnOpts(s Scenario, cores, depth int, seed int64, opt ChurnOptions) ([][]ChurnEntry, error) {
	if cores < 2 || cores%2 != 0 {
		return nil, fmt.Errorf("workload: core count %d must be even and ≥ 2", cores)
	}
	if depth < 1 {
		return nil, fmt.Errorf("workload: queue depth %d must be positive", depth)
	}
	if opt.Rate < 0 || math.IsNaN(opt.Rate) || math.IsInf(opt.Rate, 0) {
		return nil, fmt.Errorf("workload: arrival rate %v must be a non-negative finite value", opt.Rate)
	}
	rate := opt.Rate
	if rate == 0 {
		rate = float64(depth)
	}
	rng := rand.New(rand.NewSource(seed ^ int64(s)<<32 ^ int64(cores) ^ int64(depth)<<16))
	pools := make(map[bench.Category]*pool, bench.NumCategories)
	for _, cat := range bench.Categories {
		pools[cat] = newPool(cat, rng)
	}
	cells := s.Cells()
	out := make([][]ChurnEntry, cores)
	poissonAcc := make([]float64, cores)
	for k := 0; k < depth; k++ {
		cell := cells[k%len(cells)]
		for c := 0; c < cores; c++ {
			p := pools[cell.App1]
			if c >= cores/2 {
				p = pools[cell.App2]
			}
			e := ChurnEntry{
				App:      p.pick(),
				Alpha:    churnAlphas[rng.Intn(len(churnAlphas))],
				WorkFrac: 0.2 + 0.3*rng.Float64(),
			}
			switch opt.Process {
			case ArrivalStaggered:
				if k > 0 {
					// Later waves arrive staggered with jitter; the first
					// wave starts the run.
					e.ArrivalFrac = (float64(k) + 0.5*rng.Float64()) / float64(depth)
				}
			case ArrivalPoisson:
				poissonAcc[c] += rng.ExpFloat64() / rate
				e.ArrivalFrac = poissonAcc[c]
			case ArrivalDiurnal:
				e.ArrivalFrac = diurnalArrival(rng.Float64())
			default:
				return nil, fmt.Errorf("workload: unknown arrival process %d", int(opt.Process))
			}
			out[c] = append(out[c], e)
		}
	}
	if opt.Process == ArrivalDiurnal {
		// Independent draws are unordered; queues are consumed in
		// arrival order.
		for c := range out {
			sort.SliceStable(out[c], func(i, j int) bool {
				return out[c][i].ArrivalFrac < out[c][j].ArrivalFrac
			})
		}
	}
	return out, nil
}

// diurnalAmplitude shapes the diurnal intensity 1 − a·cos(2πt): load
// bottoms out at 1−a of the mean at the horizon edges and peaks at 1+a
// mid-horizon.
const diurnalAmplitude = 0.8

// diurnalArrival inverts the diurnal CDF F(t) = t − a·sin(2πt)/2π by
// bisection: u uniform in [0,1) maps to an arrival fraction whose
// density follows the day curve. F is strictly increasing for a < 1, so
// the inversion is well-defined; 52 halvings reach float64 resolution.
func diurnalArrival(u float64) float64 {
	cdf := func(t float64) float64 {
		return t - diurnalAmplitude*math.Sin(2*math.Pi*t)/(2*math.Pi)
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 52; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TwoCoreExamples returns one representative two-core mix per scenario,
// mirroring the Figure 2 study.
func TwoCoreExamples() []Workload {
	pick := func(name string) *bench.Benchmark {
		b, err := bench.ByName(name)
		if err != nil {
			panic(err)
		}
		return b
	}
	return []Workload{
		// S1: a CI-PS donor paired with a CS-PS recipient — the mix where
		// core adaptation buys the most beyond prior art.
		{Name: "2Core-S1", Scenario: Scenario1, Apps: []*bench.Benchmark{pick("libquantum"), pick("omnetpp")}},
		// S2: a compute-bound donor with a CS-PI recipient.
		{Name: "2Core-S2", Scenario: Scenario2, Apps: []*bench.Benchmark{pick("dealII"), pick("xalancbmk")}},
		// S3: two CI-PS streamers — only core adaptation helps.
		{Name: "2Core-S3", Scenario: Scenario3, Apps: []*bench.Benchmark{pick("bwaves"), pick("leslie3d")}},
		// S4: two compute-bound applications.
		{Name: "2Core-S4", Scenario: Scenario4, Apps: []*bench.Benchmark{pick("povray"), pick("sjeng")}},
	}
}
