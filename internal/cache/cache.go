// Package cache implements the memory hierarchy of Table I: private
// set-associative L1 and L2 caches, a shared way-partitioned last-level
// cache, and an LRU stack simulator used for single-pass miss-curve
// profiling (the mechanism the ATD builds on).
//
// All caches use 64-byte blocks and LRU replacement, as in the paper.
package cache

import (
	"fmt"
	"math/bits"

	"qosrm/internal/config"
)

// Cache is a single-owner set-associative cache with LRU replacement.
type Cache struct {
	setShift  uint
	setMask   uint64
	ways      int
	tags      []uint64 // sets × ways, MRU order within a set
	valid     []bool
	accesses  int64
	misses    int64
	blockMask uint64
}

// New returns a cache of the given total size and associativity with
// 64-byte blocks. Size must be a power-of-two multiple of ways×64.
func New(sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: size %d / ways %d must be positive", sizeBytes, ways)
	}
	blocks := sizeBytes / config.BlockBytes
	if blocks%ways != 0 {
		return nil, fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, ways)
	}
	sets := blocks / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return &Cache{
		setShift:  uint(bits.TrailingZeros(uint(config.BlockBytes))),
		setMask:   uint64(sets - 1),
		ways:      ways,
		tags:      make([]uint64, sets*ways),
		valid:     make([]bool, sets*ways),
		blockMask: ^uint64(config.BlockBytes - 1),
	}, nil
}

// MustNew is New for statically known-good geometry; it panics on error.
func MustNew(sizeBytes, ways int) *Cache {
	c, err := New(sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// set returns the set index of addr.
func (c *Cache) set(addr uint64) int {
	return int((addr >> c.setShift) & c.setMask)
}

// Access looks up addr, updates LRU state and fill-on-miss, and reports
// whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	tag := addr & c.blockMask
	base := c.set(addr) * c.ways
	row := c.tags[base : base+c.ways]
	val := c.valid[base : base+c.ways]
	for i := 0; i < c.ways; i++ {
		if val[i] && row[i] == tag {
			// Hit: move to MRU position.
			copy(row[1:], row[:i])
			copy(val[1:], val[:i])
			row[0], val[0] = tag, true
			return true
		}
	}
	c.misses++
	// Miss: evict the LRU way and fill at MRU.
	copy(row[1:], row[:c.ways-1])
	copy(val[1:], val[:c.ways-1])
	row[0], val[0] = tag, true
	return false
}

// Accesses returns the number of lookups performed.
func (c *Cache) Accesses() int64 { return c.accesses }

// Misses returns the number of lookups that missed.
func (c *Cache) Misses() int64 { return c.misses }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.accesses, c.misses = 0, 0
}

// MissRate returns misses/accesses, or zero before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}
