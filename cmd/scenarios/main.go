// Command scenarios runs declarative dynamic scenarios — per-core
// application queues with arrivals and departures, per-app QoS
// relaxations and mid-run QoS steps — against the simulation database,
// sweeping a whole scenario file in parallel. It can also emit scenario
// files from the Section IV-C churn generator so the four Figure 1
// scenario categories translate directly into multiprogrammed churn.
//
// Usage:
//
//	scenarios -f churn.json                     # run every spec in the file
//	scenarios -f churn.json -workers 4 -o out.json
//	scenarios -emit churn.json -scenario S1 -cores 4 -depth 3 -count 2
//
// The database is built over exactly the applications the specs
// schedule (and cached at -db), so small scenario files run in seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"qosrm/internal/db"
	"qosrm/internal/scenario"
	"qosrm/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenarios: ")
	file := flag.String("f", "", "scenario file to run (one spec object or an array)")
	dbPath := flag.String("db", "", "database cache path (built if missing; empty disables caching)")
	traceLen := flag.Int("tracelen", 16384, "instructions measured per phase of the database build")
	warmup := flag.Int("warmup", 4096, "cache warm-up prefix of the database build")
	workers := flag.Int("workers", 0, "parallel scenario runs (0 = one per scenario)")
	out := flag.String("o", "", "write the reports as JSON to this path")

	emit := flag.String("emit", "", "emit a generated churn scenario file here instead of running")
	scen := flag.String("scenario", "S1", "churn generation: scenario category S1..S4")
	cores := flag.Int("cores", 4, "churn generation: core count (even)")
	depth := flag.Int("depth", 3, "churn generation: queued applications per core")
	count := flag.Int("count", 2, "churn generation: scenarios to emit")
	seed := flag.Int64("seed", 20, "churn generation: seed")
	horizon := flag.Float64("horizon", 2e9, "churn generation: arrival horizon in ns")
	flag.Parse()

	switch {
	case *emit != "":
		if err := emitChurn(*emit, *scen, *cores, *depth, *count, *seed, *horizon); err != nil {
			log.Fatal(err)
		}
	case *file != "":
		if err := run(*file, *dbPath, *traceLen, *warmup, *workers, *out); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// emitChurn writes count generated churn scenarios as one JSON array.
func emitChurn(path, scen string, cores, depth, count int, seed int64, horizon float64) error {
	var s workload.Scenario
	switch scen {
	case "S1":
		s = workload.Scenario1
	case "S2":
		s = workload.Scenario2
	case "S3":
		s = workload.Scenario3
	case "S4":
		s = workload.Scenario4
	default:
		return fmt.Errorf("unknown scenario category %q (want S1..S4)", scen)
	}
	specs := make([]scenario.Spec, count)
	for i := range specs {
		churn, err := workload.GenerateChurn(s, cores, depth, seed+int64(i))
		if err != nil {
			return err
		}
		specs[i] = scenario.FromChurn(fmt.Sprintf("%dCore-%s-churn%d", cores, s, i+1), churn, horizon)
	}
	data, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d scenarios to %s\n", count, path)
	return nil
}

// run sweeps every spec of a scenario file over one shared database.
func run(file, dbPath string, traceLen, warmup, workers int, out string) error {
	specs, err := scenario.LoadFile(file)
	if err != nil {
		return err
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return err
		}
	}

	benches := scenario.Benchmarks(specs)
	start := time.Now()
	d, err := db.LoadOrBuild(dbPath, benches, db.Options{TraceLen: traceLen, Warmup: warmup})
	if err != nil {
		return err
	}
	fmt.Printf("database over %d applications ready in %v\n", len(benches), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	reports, err := scenario.Sweep(d, specs, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%d scenarios swept in %v\n\n", len(specs), time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-24s %-5s %9s %9s %9s %6s %6s %s\n",
		"scenario", "rm", "saving", "viol", "budget", "jobs", "rm#", "time")
	for _, r := range reports {
		fmt.Printf("%-24s %-5s %8.2f%% %8.3f%% %8.3f%% %6d %6d %.3gs\n",
			r.Name, r.RM, r.Saving*100, r.ViolationRate*100, r.BudgetViolationRate*100,
			len(r.Jobs), r.RMCalled, r.TimeNs*1e-9)
	}

	if out != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nreports written to %s\n", out)
	}
	return nil
}
