package perfbench

import (
	"strings"
	"testing"
)

func report(entries map[string]float64) *Report {
	r := &Report{}
	for name, ns := range entries {
		r.Results = append(r.Results, Result{Name: name, NsPerOp: ns})
	}
	return r
}

func TestGatePassesWithinLimit(t *testing.T) {
	base := report(map[string]float64{"A": 100, "B": 200})
	fresh := report(map[string]float64{"A": 120, "B": 190})
	if err := Gate(fresh, base, []string{"A", "B"}, 0.25); err != nil {
		t.Fatalf("within-limit gate failed: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := report(map[string]float64{"A": 100})
	fresh := report(map[string]float64{"A": 130})
	err := Gate(fresh, base, []string{"A"}, 0.25)
	if err == nil {
		t.Fatal("30% regression passed a 25% gate")
	}
	if !strings.Contains(err.Error(), "A:") {
		t.Fatalf("error does not name the regressed benchmark: %v", err)
	}
}

func TestGateFailsOnMissingEntries(t *testing.T) {
	base := report(map[string]float64{"A": 100})
	fresh := report(map[string]float64{})
	if err := Gate(fresh, base, []string{"A"}, 0.25); err == nil {
		t.Fatal("missing fresh entry passed the gate")
	}
	if err := Gate(base, fresh, []string{"A"}, 0.25); err == nil {
		t.Fatal("missing baseline entry passed the gate")
	}
}

func TestGateWatchesCommittedBaseline(t *testing.T) {
	// The repository baseline must contain every watched benchmark,
	// otherwise the CI gate would fail on bookkeeping rather than on
	// performance.
	base, err := LoadReport("../../BENCH_4.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range GateBenchmarks {
		if base.find(name) == nil {
			t.Errorf("baseline BENCH_4.json is missing gate benchmark %q", name)
		}
	}
}

func TestBestOfTakesMinimumPerBenchmark(t *testing.T) {
	a := report(map[string]float64{"A": 100, "B": 300})
	b := report(map[string]float64{"A": 150, "B": 200})
	best := BestOf(a, b)
	if got := best.find("A").NsPerOp; got != 100 {
		t.Fatalf("A: got %.0f, want 100", got)
	}
	if got := best.find("B").NsPerOp; got != 200 {
		t.Fatalf("B: got %.0f, want 200", got)
	}
	// Inputs untouched.
	if a.find("B").NsPerOp != 300 {
		t.Fatal("BestOf mutated its input")
	}
}

func TestGateNamesDropsModeDependentEntries(t *testing.T) {
	full := &Report{Short: false}
	short := &Report{Short: true}
	if got := GateNames(short, full); len(got) >= len(GateBenchmarks) {
		t.Fatalf("mode-mismatched reports must not gate mode-dependent entries, got %v", got)
	}
	if got := GateNames(full, full); len(got) != len(GateBenchmarks) {
		t.Fatalf("matching modes must gate all benchmarks, got %v", got)
	}
}
