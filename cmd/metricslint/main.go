// Command metricslint validates a Prometheus text-exposition scrape on
// stdin against the rules obs.LintExposition enforces (valid names, no
// duplicate series, TYPE lines for every family, counters ending in
// _total, well-formed cumulative histograms). It exits non-zero and
// prints each violation when the scrape is dirty — CI pipes the
// daemon's live /metrics through it:
//
//	curl -s http://127.0.0.1:8423/metrics | go run ./cmd/metricslint
package main

import (
	"fmt"
	"os"

	"qosrm/internal/obs"
)

func main() {
	errs := obs.LintExposition(os.Stdin)
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Println("metricslint: ok")
}
