package rm

import (
	"testing"

	"qosrm/internal/config"
)

// flatPredictor is a trivial allocation-free predictor: every setting
// is feasible and equally good, which exercises the full search space.
type flatPredictor struct{}

func (flatPredictor) TimePI(config.Setting) float64   { return 1 }
func (flatPredictor) EnergyPI(config.Setting) float64 { return 1 }

// TestLocalizeAllocationFree pins the per-interval hot path's budget:
// the local optimisation must not allocate (its search-space tables are
// package-level), for any manager kind.
func TestLocalizeAllocationFree(t *testing.T) {
	for _, kind := range []Kind{Idle, RM1, RM2, RM3} {
		n := testing.AllocsPerRun(100, func() { Localize(flatPredictor{}, kind, Options{}) })
		if n > 0 {
			t.Errorf("%v: Localize allocates %.0f times per call, want 0", kind, n)
		}
	}
}
