package cpu

import (
	"testing"

	"qosrm/internal/atd"
	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// TestRunMatchesReference is the optimized walk's correctness contract:
// for every (core size, frequency corner, ways) point, Run must produce
// results — timing decomposition, counters, leading misses — and ATD
// observations bit-identical to the seed implementation RunReference.
func TestRunMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		insts := trace.Generate(testParams(seed), 6144)
		ann := Annotate(insts)
		tail := ann.Tail(2048)
		warm := atd.MustNew(0)
		ann.WarmATD(warm, 2048)

		for _, c := range config.Sizes {
			for _, fi := range []int{0, config.BaseFreqIdx, config.NumFreqs - 1} {
				for w := config.MinWays; w <= config.MaxWays; w += 7 {
					rc := RunConfig{Core: c, Ways: w, FreqGHz: config.FreqGHz(fi)}

					rcRef := rc
					aRef := warm.Clone()
					rcRef.ATD = aRef
					ref := RunReference(tail, rcRef)

					rcOpt := rc
					aOpt := warm.Clone()
					rcOpt.ATD = aOpt
					opt := Run(tail, rcOpt)

					if opt != ref {
						t.Fatalf("seed %d c=%v f=%d w=%d: Run=%+v\nRunReference=%+v", seed, c, fi, w, opt, ref)
					}
					if aOpt.MissCurve() != aRef.MissCurve() {
						t.Fatalf("seed %d c=%v f=%d w=%d: ATD miss curves diverge", seed, c, fi, w)
					}
					if aOpt.LMMatrix() != aRef.LMMatrix() {
						t.Fatalf("seed %d c=%v f=%d w=%d: ATD LM matrices diverge", seed, c, fi, w)
					}
				}
			}
		}
	}
}

// TestRunCornersMatchesReference checks the sweep walk: one
// corner-batched RunCorners pass must equal forty-five RunReference
// runs — results and ATD observations — bit for bit, at every core
// size.
func TestRunCornersMatchesReference(t *testing.T) {
	insts := trace.Generate(testParams(5), 6144)
	ann := Annotate(insts)
	tail := ann.Tail(2048)
	warm := atd.MustNew(0)
	ann.WarmATD(warm, 2048)

	corners := []int{0, config.BaseFreqIdx, config.NumFreqs - 1}
	var freqs [NumCorners]float64
	for k, fi := range corners {
		freqs[k] = config.FreqGHz(fi)
	}
	stream := tail.LLCEvents()
	scratch := &SweepScratch{} // reused across sizes, as in production
	for _, c := range config.Sizes {
		sweep, perms := RunCorners(tail, c, freqs, scratch)
		for k, fi := range corners {
			f := freqs[k]
			for l := range sweep[k] {
				w := config.MinWays + l
				aRef := warm.Clone()
				ref := RunReference(tail, RunConfig{Core: c, Ways: w, FreqGHz: f, ATD: aRef})
				if sweep[k][l] != ref {
					t.Fatalf("c=%v f=%d w=%d: RunCorners=%+v\nRunReference=%+v", c, fi, w, sweep[k][l], ref)
				}
				// Replaying the shared event list in the returned
				// delivery order must reproduce the ATD observations of
				// the reference's internal feed — through a clone and
				// through a COW fork alike.
				aSweep := warm.Clone()
				aFork := warm.Fork()
				for _, r := range perms[k][l] {
					e := stream[r]
					aSweep.Access(e.Addr, e.InstIdx, e.IsLoad)
					aFork.Access(e.Addr, e.InstIdx, e.IsLoad)
				}
				if aSweep.MissCurve() != aRef.MissCurve() || aSweep.LMMatrix() != aRef.LMMatrix() {
					t.Fatalf("c=%v f=%d w=%d: ATD observations diverge", c, fi, w)
				}
				if aFork.MissCurve() != aRef.MissCurve() || aFork.LMMatrix() != aRef.LMMatrix() {
					t.Fatalf("c=%v f=%d w=%d: forked ATD observations diverge", c, fi, w)
				}
			}
		}
	}
}

// TestCloneIndependence checks that a cloned warm ATD diverges from its
// source only through its own accesses.
func TestCloneIndependence(t *testing.T) {
	insts := trace.Generate(testParams(3), 4096)
	ann := Annotate(insts)
	warm := atd.MustNew(0)
	ann.WarmATD(warm, 4096)

	base := warm.MissCurve()
	c := warm.Clone()
	// Drive the clone; the source must not move.
	for i := 0; i < 512; i++ {
		c.Access(uint64(i)*64*257, int64(i), true)
	}
	if warm.MissCurve() != base {
		t.Fatal("source ATD mutated by clone accesses")
	}
	if c.MissCurve() == base {
		t.Fatal("clone did not observe its own accesses")
	}
}

func BenchmarkRunReference(b *testing.B) {
	insts := trace.Generate(testParams(1), 16384)
	ann := Annotate(insts)
	rc := RunConfig{Core: config.SizeM, Ways: config.BaseWays, FreqGHz: config.FBaseGHz}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunReference(ann, rc)
	}
}
