// Dynamic churn: a 4-core multiprogrammed scenario beyond the paper's
// static mixes. Applications arrive and depart on per-core queues — a
// memory-bound app departs early and a compute-bound one takes over, a
// second streamer arrives mid-run — with heterogeneous per-app QoS
// relaxations and a mid-run QoS-target step, all declared as a scenario
// spec. The same spec is swept under every manager to show how much of
// the coordinated RM3 advantage survives churn.
package main

import (
	"fmt"
	"log"

	"qosrm"
)

func main() {
	log.SetFlags(0)

	// Five intervals of work per job (at the default Scale of 2048).
	const work = 5 * 100_000_000 * 2048

	spec := qosrm.ScenarioSpec{
		Name: "4core-churn",
		Cores: []qosrm.ScenarioCore{
			// Core 0: mcf departs a quarter-second in; povray (already
			// queued) takes over with a 30% relaxed QoS target.
			{Jobs: []qosrm.ScenarioJob{
				{App: "mcf", Work: work, DepartNs: 2.5e8},
				{App: "povray", Work: work, Alpha: 1.3},
			}},
			// Core 1: two streamers back to back; the second arrives
			// after a fixed delay and may leave the core idle briefly.
			{Jobs: []qosrm.ScenarioJob{
				{App: "bwaves", Work: work},
				{App: "libquantum", Work: work, ArrivalNs: 6e8},
			}},
			// Cores 2 and 3: long-running apps with their own contracts.
			{Jobs: []qosrm.ScenarioJob{{App: "xalancbmk", Work: 2 * work, Alpha: 1.05}}},
			{Jobs: []qosrm.ScenarioJob{{App: "omnetpp", Work: 2 * work}}},
		},
		// Mid-run the operator relaxes every remaining target by 15%.
		Steps: []qosrm.ScenarioStep{{AtNs: 4e8, Alpha: 1.15}},
	}

	// Build the database over exactly the applications the spec uses.
	sys, err := qosrm.Open(qosrm.Options{
		TraceLen:   16384,
		Warmup:     4096,
		Benchmarks: spec.Benchmarks(),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== 4-core churn scenario under each manager ==")
	specs := []qosrm.ScenarioSpec{spec, spec, spec}
	specs[0].RM, specs[1].RM, specs[2].RM = "RM1", "RM2", "RM3"
	reports, err := sys.SweepScenarios(specs, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("%-4s saving %6.2f%%  baseline-violations %6.2f%%  budget-violations %6.2f%%  (%d RM calls)\n",
			r.RM, r.Saving*100, r.ViolationRate*100, r.BudgetViolationRate*100, r.RMCalled)
	}

	fmt.Println()
	fmt.Println("== RM3 per-job outcomes ==")
	r := reports[2]
	fmt.Printf("%-12s %-5s %-6s %9s %9s %9s %7s\n",
		"app", "core", "alpha", "start(s)", "end(s)", "energy(J)", "left")
	for _, j := range r.Jobs {
		left := "done"
		if j.Departed {
			left = "departed"
		}
		fmt.Printf("%-12s %-5d %-6.2f %9.3f %9.3f %9.4f %7s\n",
			j.Bench, j.Core, j.Alpha, j.StartNs*1e-9, j.FinishNs*1e-9, j.EnergyJ, left)
	}
}
