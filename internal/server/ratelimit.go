package server

import (
	"math"
	"sync"
	"time"
)

// maxClients bounds the limiter's bucket map; when a new client would
// exceed it, fully-refilled (i.e. idle) buckets are pruned first — they
// are indistinguishable from fresh ones, so dropping them changes no
// admission decision. When even pruning frees nothing (maxClients
// clients all mid-refill), the stalest bucket is evicted so the map
// never grows past the cap.
const maxClients = 4096

// rateLimiter is a per-client token bucket: each client refills at
// rate tokens/second up to burst, and one request costs one token.
// Clients are keyed by the caller (the server uses the remote host).
type rateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter; rate must be positive. burst <= 0
// defaults to ceil(rate) (one second of traffic), never below 1.
func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	b := float64(burst)
	if b <= 0 {
		b = math.Ceil(rate)
	}
	if b < 1 {
		b = 1
	}
	return &rateLimiter{rate: rate, burst: b, now: now, buckets: make(map[string]*bucket)}
}

// allow spends one token of the client's bucket, reporting whether one
// was available.
func (l *rateLimiter) allow(client string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= maxClients {
			l.prune(now)
			// Every bucket may still be mid-refill (maxClients busy
			// clients); the cap is a hard bound, not advisory, so make
			// room by evicting the stalest bucket — the client least
			// likely to return, and the one whose forgotten state is
			// closest to a fresh bucket anyway.
			for len(l.buckets) >= maxClients {
				l.evictStalest()
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// retryAfter is the delay advertised to a limited client: the time one
// token takes to refill, rounded up to whole seconds (the Retry-After
// header's granularity), at least 1.
func (l *rateLimiter) retryAfter() time.Duration {
	secs := math.Ceil(1 / l.rate)
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// prune drops buckets that have refilled completely; must be called
// with the mutex held.
func (l *rateLimiter) prune(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// evictStalest drops the bucket with the oldest last-seen time; must be
// called with the mutex held and a non-empty map.
func (l *rateLimiter) evictStalest() {
	var stalest string
	var oldest time.Time
	first := true
	for k, b := range l.buckets {
		if first || b.last.Before(oldest) {
			stalest, oldest, first = k, b.last, false
		}
	}
	delete(l.buckets, stalest)
}
