// Package db builds and serves the simulation database of the paper's
// methodology (Section IV-A): for every benchmark phase, detailed
// micro-architecture simulations are performed "over all possible core
// configurations, VF settings, and LLC allocations" and their results are
// collected for the interval-driven RM co-simulator to replay.
//
// The detailed simulations come from internal/cpu (the Sniper stand-in).
// Each phase is simulated at every core size and way allocation and at
// three frequency corners; other frequencies are served by interpolating
// core cycles (frequency-invariant to first order) and memory-stall time
// (smooth in frequency via DRAM queueing) between corners, which mirrors
// the frequency structure of the paper's own performance model (Eq. 1).
//
// Each run also records what the core's ATD — warmed alongside the main
// hierarchy and observing the run's LLC access stream in issue order —
// would have reported: the miss-vs-ways curve and the proposed
// leading-miss estimate matrix. The resource managers consume exactly
// those observations, never ground truth.
package db

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"qosrm/internal/atd"
	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/cpu"
	"qosrm/internal/power"
	"qosrm/internal/trace"
)

// NumWays is the number of tracked way allocations (2..16).
const NumWays = config.MaxWays - config.MinWays + 1

// fCorners are the DVFS grid indices simulated in detail.
var fCorners = [3]int{0, config.BaseFreqIdx, config.NumFreqs - 1}

// Stats is the database record of one (phase, core, frequency, ways)
// point: ground-truth timing/energy inputs plus the ATD observations an
// RM running at this setting would see. Counter fields are float64 so
// frequency interpolation can blend corners.
type Stats struct {
	Instructions float64
	TimeNs       float64
	BaseNs       float64 // T0: dispatch + dependence time
	BranchNs     float64 // branch refill stalls
	CacheNs      float64 // exposed private-miss/LLC-hit stalls
	MemNs        float64 // exposed DRAM stalls (T_mem ground truth)

	L1Misses      float64
	LLCAccesses   float64
	LLCHits       float64
	LLCMisses     float64 // memory accesses MA of Eq. 5
	DRAMLoads     float64
	Writebacks    float64 // dirty LLC lines written back to DRAM
	LeadingMisses float64 // ground truth
	Mispredicts   float64
	MLP           float64

	// ATDMissCurve[w-MinWays] is the ATD miss estimate for allocation w.
	ATDMissCurve [NumWays]float64
	// ATDLM[c][w-MinWays] is the proposed extension's leading-miss
	// estimate for core size c at allocation w.
	ATDLM [config.NumSizes][NumWays]float64
}

// TPI returns the ground-truth time per instruction in nanoseconds.
func (s *Stats) TPI() float64 { return s.TimeNs / s.Instructions }

// CoreNs returns the frequency-scalable part of the execution time.
func (s *Stats) CoreNs() float64 { return s.BaseNs + s.BranchNs + s.CacheNs }

// ActualEnergyJ returns the ground-truth core+DRAM energy of executing
// n instructions of this phase at setting set (uncore energy is charged
// separately by the co-simulator, per Section IV-D1).
func (s *Stats) ActualEnergyJ(set config.Setting, n float64) float64 {
	scale := n / s.Instructions
	t := s.TimeNs * scale
	core := power.CoreEnergyJ(set.Core, set.Freq, int64(n+0.5), t)
	mem := power.MemEnergyJ(int64((s.LLCMisses+s.Writebacks)*scale + 0.5))
	return core + mem
}

// phaseData holds the simulated corners of one phase.
type phaseData struct {
	// Runs[c][k][w-MinWays] with k indexing fCorners.
	Runs [config.NumSizes][3][NumWays]Stats

	// dense is the lazily materialised full-grid record cache: one Stats
	// per (core, frequency, ways) setting, corner records copied and
	// off-corner records interpolated once, so the co-simulator's
	// per-interval lookups return a shared pointer instead of allocating
	// and re-interpolating on every call. Guarded by denseOnce; read-only
	// after materialisation. Unexported, so Save/Load never see it.
	denseOnce sync.Once
	dense     []Stats
}

// DB is the simulation database for a set of benchmarks.
type DB struct {
	TraceLen int
	Warmup   int
	// Phases maps benchmark name to its per-phase data.
	Phases map[string][]*phaseData
}

// Options configures database construction.
type Options struct {
	TraceLen int // instructions measured per phase (default 65536)
	Warmup   int // cache warm-up prefix (default 16384)
	// Workers bounds build parallelism. When unset (or negative) it
	// defaults to runtime.GOMAXPROCS(0); work is sharded at
	// (phase, core size, frequency corner) granularity, so even a
	// single-benchmark build can use every core.
	Workers int
}

func (o *Options) fill() {
	if o.TraceLen <= 0 {
		o.TraceLen = 65536
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	} else if o.Warmup == 0 {
		o.Warmup = 16384
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// WithDefaults returns a copy of o with unset fields resolved — the
// parameters a Build call with o would actually use. Callers comparing
// a request against an existing database (snapshot staleness checks)
// need the resolved values.
func (o Options) WithDefaults() Options {
	o.fill()
	return o
}

// phasePrep is the setting-independent part of one phase's sweep: the
// generated trace, its annotated hierarchy behaviour, one ATD warmed
// over the warmup prefix, and the phase's shared LLC event list. It is
// computed once per phase (lazily, by whichever worker gets there
// first) and shared by all of the phase's sweep shards.
type phasePrep struct {
	once sync.Once
	err  error
	tail *cpu.Annotated
	warm *atd.ATD

	// events is the phase's LLC access set in program order. Every run
	// of the phase observes exactly these events — only the delivery
	// order varies with the setting — so one shared list serves all
	// replays and a run is fully described by its delivery permutation.
	// Read-only after prepare; feeds index it without touching the
	// replay-tree lock below.
	events []cpu.LLCEvent

	// The padding keeps the replay-tree lock — bouncing between workers
	// of the same phase — off the cache lines of the read-only fields
	// above, which every shard reads on each event feed.
	_ [64]byte

	// tree is the prefix-sharing replay trie over delivery permutations
	// (see replayNode); mu guards its shape (edges, children). ATD
	// feeds happen outside the lock: a freshly inserted node is
	// published pending and its creator materialises the state while
	// other workers navigate, insert siblings, or block on exactly the
	// nodes they need.
	mu   sync.Mutex
	tree replayNode
}

// replayNode is one node of a phase's replay tree: a radix-trie node
// over delivery sequences. state is the ATD after observing the node's
// path from the warm root; edge holds the event ordinals replayed
// between the parent's snapshot and this one. Interior snapshots are
// frozen (they have COW descendants); leaf states are what the sweep
// records read. Where the seed's dedup could only reuse a replay whose
// entire sequence matched, the tree forks a copy-on-write snapshot at
// the divergence point, so runs sharing a prefix replay only their
// divergent suffixes.
//
// Nodes are inserted pending — shape under pp.mu, state computed by
// the inserting worker after unlocking — so the multi-millisecond ATD
// feeds never serialise the tree. ready is closed once state is
// published; it is nil only on the root, whose state is the warm ATD.
// A worker that needs a pending node's state blocks on ready; waits
// only ever target ancestors of the waiter's own insertion point, so
// they cannot cycle.
type replayNode struct {
	edge     []int32
	state    *atd.ATD
	children []*replayNode
	ready    chan struct{}
}

func (pp *phasePrep) prepare(p trace.Params, opts Options) error {
	pp.once.Do(func() {
		if err := p.Validate(); err != nil {
			pp.err = err
			return
		}
		insts := trace.Generate(p, opts.Warmup+opts.TraceLen)
		full := cpu.Annotate(insts)
		pp.tail = full.Tail(opts.Warmup)
		pp.warm = atd.MustNew(0)
		full.WarmATD(pp.warm, opts.Warmup)
		pp.events = pp.tail.LLCEvents()
		pp.tree.state = pp.warm
	})
	return pp.err
}

// replay returns an ATD that has observed the phase's LLC events in the
// delivery order perm (event ordinals into pp.events) on top of the
// warm tag state. The replay tree shares work across runs: an exact
// duplicate returns the existing instance, and a run whose sequence
// shares a prefix with earlier runs forks a COW snapshot at the
// divergence point and replays only its suffix. All returned ATDs are
// read-only for every holder.
//
// The tree lock covers only trie navigation and node insertion; the
// ATD feeds themselves — the multi-millisecond part — run after the
// unlock, against pending nodes other workers can block on. Before
// this, the lock was held across every feed and the "parallel" build
// serialised on it whenever two workers shared a phase.
func (pp *phasePrep) replay(perm []int32) *atd.ATD {
	if len(perm) == 0 {
		// No LLC traffic: every run observes exactly the warm state.
		return pp.warm
	}
	pp.mu.Lock()
	cur := &pp.tree
	i := 0
	for {
		var next *replayNode
		for _, ch := range cur.children {
			if ch.edge[0] == perm[i] {
				next = ch
				break
			}
		}
		if next == nil {
			// No shared prefix beyond cur: insert a pending leaf and
			// replay the suffix outside the lock.
			leaf := &replayNode{
				edge:  append([]int32(nil), perm[i:]...),
				ready: make(chan struct{}),
			}
			cur.children = append(cur.children, leaf)
			suffix := leaf.edge
			pp.mu.Unlock()
			return pp.materialize(leaf, cur, suffix)
		}
		e := next.edge
		j := 1
		m := len(e)
		if rem := len(perm) - i; rem < m {
			m = rem
		}
		for j < m && e[j] == perm[i+j] {
			j++
		}
		if j == len(e) {
			cur = next
			i += j
			if i == len(perm) {
				// Exact duplicate of an earlier replay; it may still be
				// materialising under its inserting worker.
				pp.mu.Unlock()
				if cur.ready != nil {
					<-cur.ready
				}
				return cur.state
			}
			continue
		}
		// Diverged inside the edge: split it at j. The intermediate
		// snapshot forks the parent's state and replays the shared
		// prefix; the existing child keeps its state under a shortened
		// edge, and the new run forks the intermediate snapshot.
		//
		// The parent pointer and suffix are captured before unlocking:
		// a later split by another worker may shorten mid.edge and
		// re-parent mid, but the captured pair always reproduces the
		// path mid was created for. (Edge contents are immutable —
		// splits only re-slice — so captured headers stay valid.)
		mid := &replayNode{edge: e[:j:j], ready: make(chan struct{})}
		next.edge = e[j:]
		mid.children = append(mid.children, next)
		for ci, ch := range cur.children {
			if ch == next {
				cur.children[ci] = mid
				break
			}
		}
		midSuffix := mid.edge
		if i+j == len(perm) {
			// Unreachable while all sequences have equal length (no
			// sequence is a strict prefix of another), but keep the
			// trie correct if that ever changes.
			pp.mu.Unlock()
			return pp.materialize(mid, cur, midSuffix)
		}
		leaf := &replayNode{
			edge:  append([]int32(nil), perm[i+j:]...),
			ready: make(chan struct{}),
		}
		mid.children = append(mid.children, leaf)
		leafSuffix := leaf.edge
		pp.mu.Unlock()
		pp.materialize(mid, cur, midSuffix)
		return pp.materialize(leaf, mid, leafSuffix)
	}
}

// materialize computes a pending node's state outside the tree lock:
// wait for the parent's state (parents are always ancestors of the
// caller's insertion point, so waits cannot cycle), fork it, feed the
// suffix captured at insertion, and publish. Returns the state.
func (pp *phasePrep) materialize(node, parent *replayNode, suffix []int32) *atd.ATD {
	if parent.ready != nil {
		<-parent.ready
	}
	st := pp.feed(parent.state.Fork(), suffix)
	node.state = st
	close(node.ready)
	return st
}

// feed replays the given event ordinals into a and returns it.
func (pp *phasePrep) feed(a *atd.ATD, seq []int32) *atd.ATD {
	for _, r := range seq {
		e := pp.events[r]
		a.Access(e.Addr, e.InstIdx, e.IsLoad)
	}
	return a
}

// Build runs the detailed simulations for every phase of every benchmark
// in benches, in parallel across (phase, core size) shards. Worker
// failures are all collected and returned joined; the database is not
// usable on error.
//
// The sweep shares everything that is setting-independent: the trace is
// generated and annotated once per phase; all forty-five (frequency
// corner, way allocation) lanes of one core size are walked by a single
// corner-batched cpu.RunCorners pass that advances only as many chains
// as the lanes are distinguishable into; and ATD observations come from
// a per-phase replay tree over the ATD — warmed once, since warmup does
// not depend on the setting — whose copy-on-write snapshots let runs
// sharing a delivery-sequence prefix replay only their divergent
// suffixes. The result is bit-identical to the reference sweep
// (BuildReference), which re-derives all of this for each of the ~135
// runs of a phase.
func Build(benches []*bench.Benchmark, opts Options) (*DB, error) {
	return build(context.Background(), benches, opts, false, nil)
}

// Workspace retains the per-worker sweep scratches of a database build
// across Build calls, in the mould of rm.Workspace and sim.RunWorkspace:
// the scratch matrices (issue times, permutations, rings, sort keys) are
// by far the largest allocations of a build and depend only on the trace
// length, so a caller rebuilding databases of the same shape — the
// perfbench suite, a parameter sweep — reuses them instead of re-growing
// them from nil every time. The zero value is ready. A Workspace is not
// safe for concurrent use: one Build at a time (the build itself still
// runs parallel workers; each worker gets its own retained scratch).
type Workspace struct {
	scratches []*cpu.SweepScratch
}

// Build is db.Build reusing ws's sweep scratches. Results are
// bit-identical to db.Build's.
func (ws *Workspace) Build(benches []*bench.Benchmark, opts Options) (*DB, error) {
	return build(context.Background(), benches, opts, false, ws)
}

// scratch returns the retained scratch of worker w, growing the pool on
// first use of a wider worker count.
func (ws *Workspace) scratch(w int) *cpu.SweepScratch {
	for len(ws.scratches) <= w {
		ws.scratches = append(ws.scratches, &cpu.SweepScratch{})
	}
	return ws.scratches[w]
}

// BuildContext is Build honouring ctx: workers check for cancellation
// before starting each (phase, core size, corner) shard, so a cancelled
// build abandons its remaining work promptly (in-flight shards finish;
// a shard is a few milliseconds of simulation). A cancelled build
// returns ctx's error and no database.
func BuildContext(ctx context.Context, benches []*bench.Benchmark, opts Options) (*DB, error) {
	return build(ctx, benches, opts, false, nil)
}

// BuildReference is the seed implementation of Build, retained as the
// equivalence baseline for tests and for the perfbench suite. It
// re-creates and re-warms the ATD for every run and walks each (core
// size, frequency, ways) point separately via cpu.RunReference.
func BuildReference(benches []*bench.Benchmark, opts Options) (*DB, error) {
	return build(context.Background(), benches, opts, true, nil)
}

func build(ctx context.Context, benches []*bench.Benchmark, opts Options, reference bool, ws *Workspace) (*DB, error) {
	opts.fill()
	d := &DB{
		TraceLen: opts.TraceLen,
		Warmup:   opts.Warmup,
		Phases:   make(map[string][]*phaseData, len(benches)),
	}
	type job struct {
		b     *bench.Benchmark
		phase int
		prep  *phasePrep
		pd    *phaseData
		ci    int // core-size shard; -1 = whole phase (reference mode)
	}
	var perPhase [][]job
	for _, b := range benches {
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("db: %w", err)
		}
		d.Phases[b.Name] = make([]*phaseData, len(b.Phases))
		for p := range b.Phases {
			if reference {
				perPhase = append(perPhase, []job{{b: b, phase: p, ci: -1}})
				continue
			}
			prep := &phasePrep{}
			pd := &phaseData{}
			d.Phases[b.Name][p] = pd
			// Largest core first: its reorder window makes it the
			// slowest walk, so it must not be the straggler a worker
			// picks up last when the queue is nearly drained.
			var shard []job
			for ci := config.NumSizes - 1; ci >= 0; ci-- {
				shard = append(shard, job{b: b, phase: p, prep: prep, pd: pd, ci: ci})
			}
			perPhase = append(perPhase, shard)
		}
	}
	// Round-robin the phases' shards so concurrent workers land on
	// DIFFERENT phases: adjacent same-phase jobs would contend on the
	// phase's lazy preparation and serialize on its replay-tree lock,
	// flattening multi-core scaling.
	var jobs []job
	for i := 0; ; i++ {
		added := false
		for _, shard := range perPhase {
			if i < len(shard) {
				jobs = append(jobs, shard[i])
				added = true
			}
		}
		if !added {
			break
		}
	}

	type phaseRef struct {
		name  string
		phase int
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
		// errSeen deduplicates failures per phase: a shared prepare()
		// failure would otherwise be reported once per sweep shard.
		errSeen = make(map[phaseRef]bool)
	)
	// The buffered channel lets submission complete without serialising
	// on slow workers.
	ch := make(chan job, len(jobs))
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		scratch := &cpu.SweepScratch{}
		if ws != nil {
			scratch = ws.scratch(w)
		}
		go func() {
			defer wg.Done()
			for j := range ch {
				if ctx.Err() != nil {
					continue // cancelled: drain the queue without simulating
				}
				var err error
				if j.ci < 0 {
					var pd *phaseData
					pd, err = buildPhaseReference(j.b.Phases[j.phase].Params, opts)
					if err == nil {
						mu.Lock()
						d.Phases[j.b.Name][j.phase] = pd
						mu.Unlock()
					}
				} else {
					err = buildShard(j.b.Phases[j.phase].Params, opts, j.prep, j.pd, j.ci, scratch)
				}
				if err != nil {
					mu.Lock()
					if ref := (phaseRef{j.b.Name, j.phase}); !errSeen[ref] {
						errSeen[ref] = true
						errs = append(errs, fmt.Errorf("db: %s phase %d: %w", j.b.Name, j.phase, err))
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// A cancelled build must not look partially usable either, and
		// skipped shards are not per-phase failures worth enumerating.
		return nil, fmt.Errorf("db: build cancelled: %w", err)
	}
	if len(errs) > 0 {
		// A failed build must not look partially usable: every worker
		// error is reported, and the phase map is dropped with the error.
		return nil, errors.Join(errs...)
	}
	return d, nil
}

// buildShard simulates one core size of a phase — all three frequency
// corners at all fifteen way allocations — in a single corner-batched
// sweep walk over the shared phase preparation.
func buildShard(p trace.Params, opts Options, prep *phasePrep, pd *phaseData, ci int, scratch *cpu.SweepScratch) error {
	if err := prep.prepare(p, opts); err != nil {
		return err
	}
	if prep.tail.L2Misses == 0 {
		// No measured access ever reaches the LLC, so the timing walk
		// cannot depend on the way allocation and the ATD observes
		// nothing beyond its warm state: one run per corner serves all
		// fifteen allocations verbatim.
		for k, fi := range fCorners {
			r := cpu.Run(prep.tail, cpu.RunConfig{
				Core:    config.Sizes[ci],
				Ways:    config.MinWays,
				FreqGHz: config.FreqGHz(fi),
			})
			for wi := 0; wi < NumWays; wi++ {
				fillStats(&pd.Runs[ci][k][wi], &r, prep.warm)
			}
		}
		return nil
	}
	var freqs [cpu.NumCorners]float64
	for k, fi := range fCorners {
		freqs[k] = config.FreqGHz(fi)
	}
	results, perms := cpu.RunCorners(prep.tail, config.Sizes[ci], freqs, scratch)
	var prevPerm []int32
	var prevATD *atd.ATD
	for k := range results {
		for wi := range results[k] {
			p := perms[k][wi]
			// Lanes with identical delivery orders share one
			// permutation slice (RunCorners's contract); reuse the
			// replay without touching the tree.
			a := prevATD
			if prevATD == nil || &p[0] != &prevPerm[0] {
				a = prep.replay(p)
				prevPerm, prevATD = p, a
			}
			fillStats(&pd.Runs[ci][k][wi], &results[k][wi], a)
		}
	}
	return nil
}

// buildPhaseReference simulates one phase over the full configuration
// space exactly as the seed did: fresh ATD and warmup replay per run,
// one timing walk per grid point.
func buildPhaseReference(p trace.Params, opts Options) (*phaseData, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	insts := trace.Generate(p, opts.Warmup+opts.TraceLen)
	full := cpu.Annotate(insts)
	tail := full.Tail(opts.Warmup)

	pd := &phaseData{}
	for ci, c := range config.Sizes {
		for k, fi := range fCorners {
			for wi := 0; wi < NumWays; wi++ {
				w := config.MinWays + wi
				a := atd.MustNew(0)
				full.WarmATDReference(a, opts.Warmup)
				r := cpu.RunReference(tail, cpu.RunConfig{
					Core:    c,
					Ways:    w,
					FreqGHz: config.FreqGHz(fi),
					ATD:     a,
				})
				fillStats(&pd.Runs[ci][k][wi], &r, a)
			}
		}
	}
	return pd, nil
}

// fillStats converts one timing-run result and its ATD observations into
// a database record.
func fillStats(st *Stats, r *cpu.Result, a *atd.ATD) {
	*st = Stats{
		Instructions:  float64(r.Instructions),
		TimeNs:        r.TimeNs,
		BaseNs:        r.BaseNs,
		BranchNs:      r.BranchNs,
		CacheNs:       r.CacheNs,
		MemNs:         r.MemNs,
		L1Misses:      float64(r.L1Misses),
		LLCAccesses:   float64(r.LLCAccesses),
		LLCHits:       float64(r.LLCHits),
		LLCMisses:     float64(r.LLCMisses),
		DRAMLoads:     float64(r.DRAMLoads),
		Writebacks:    float64(r.Writebacks),
		LeadingMisses: float64(r.LeadingMisses),
		Mispredicts:   float64(r.Mispredicts),
		MLP:           r.MLP,
	}
	for wj := 0; wj < NumWays; wj++ {
		st.ATDMissCurve[wj] = float64(a.Misses(config.MinWays + wj))
		for cj := range config.Sizes {
			st.ATDLM[cj][wj] = float64(a.LeadingMisses(config.Sizes[cj], config.MinWays+wj))
		}
	}
}

// Stats returns the (interpolated) record for a benchmark phase at an
// arbitrary grid setting. It returns an error for unknown benchmarks,
// phase indices or off-grid settings.
//
// The returned record points into the phase's dense grid cache — every
// grid setting's record is materialised once (corner records copied,
// off-corner records interpolated) on the phase's first lookup, and
// subsequent calls are an index into that cache with no allocation or
// re-interpolation. Callers must treat the record as read-only; the
// values are bit-identical to StatsReference's freshly computed ones.
func (d *DB) Stats(benchName string, phase int, set config.Setting) (*Stats, error) {
	pd, err := d.phase(benchName, phase, set)
	if err != nil {
		return nil, err
	}
	pd.denseOnce.Do(pd.materialize)
	idx := (int(set.Core)*config.NumFreqs+set.Freq)*NumWays + set.Ways - config.MinWays
	return &pd.dense[idx], nil
}

// StatsReference is the seed implementation of Stats, retained as the
// equivalence baseline for tests and benchmarks: it recomputes the
// record on every call and returns a private copy.
func (d *DB) StatsReference(benchName string, phase int, set config.Setting) (*Stats, error) {
	pd, err := d.phase(benchName, phase, set)
	if err != nil {
		return nil, err
	}
	return pd.lookup(set.Core, set.Freq, set.Ways-config.MinWays), nil
}

// phase validates a lookup and resolves its phase data.
func (d *DB) phase(benchName string, phase int, set config.Setting) (*phaseData, error) {
	if !set.Valid() {
		return nil, fmt.Errorf("db: invalid setting %v", set)
	}
	phases, ok := d.Phases[benchName]
	if !ok {
		return nil, fmt.Errorf("db: unknown benchmark %q", benchName)
	}
	if phase < 0 || phase >= len(phases) {
		return nil, fmt.Errorf("db: %s has no phase %d", benchName, phase)
	}
	pd := phases[phase]
	if pd == nil {
		return nil, fmt.Errorf("db: %s phase %d not built", benchName, phase)
	}
	return pd, nil
}

// materialize fills the dense grid from the simulated corners.
func (pd *phaseData) materialize() {
	g := make([]Stats, config.NumSizes*config.NumFreqs*NumWays)
	i := 0
	for ci := 0; ci < config.NumSizes; ci++ {
		for fi := 0; fi < config.NumFreqs; fi++ {
			for wi := 0; wi < NumWays; wi++ {
				g[i] = *pd.lookup(config.CoreSize(ci), fi, wi)
				i++
			}
		}
	}
	pd.dense = g
}

// lookup computes the record at one grid point the seed way: an exact
// corner is copied, anything else interpolated between its two
// surrounding corners.
func (pd *phaseData) lookup(core config.CoreSize, freq, wi int) *Stats {
	row := &pd.Runs[core]

	// Exact corner?
	for k, fi := range fCorners {
		if fi == freq {
			s := row[k][wi]
			return &s
		}
	}
	// Interpolate between the two surrounding corners.
	lo, hi := 0, 1
	if freq > fCorners[1] {
		lo, hi = 1, 2
	}
	fl, fh := config.FreqGHz(fCorners[lo]), config.FreqGHz(fCorners[hi])
	f := config.FreqGHz(freq)
	t := (f - fl) / (fh - fl)
	return interpolate(&row[lo][wi], &row[hi][wi], fl, fh, f, t)
}

// interpolate blends two frequency corners: cycle-domain linear for the
// frequency-scalable components, time-domain linear for memory stall,
// linear for counters.
func interpolate(a, b *Stats, fa, fb, f, t float64) *Stats {
	lerp := func(x, y float64) float64 { return x + (y-x)*t }
	cyc := func(xa, xb float64) float64 {
		// Convert corner times to cycles, blend, convert back.
		return lerp(xa*fa, xb*fb) / f
	}
	out := &Stats{
		Instructions:  a.Instructions,
		BaseNs:        cyc(a.BaseNs, b.BaseNs),
		BranchNs:      cyc(a.BranchNs, b.BranchNs),
		CacheNs:       cyc(a.CacheNs, b.CacheNs),
		MemNs:         lerp(a.MemNs, b.MemNs),
		L1Misses:      lerp(a.L1Misses, b.L1Misses),
		LLCAccesses:   lerp(a.LLCAccesses, b.LLCAccesses),
		LLCHits:       lerp(a.LLCHits, b.LLCHits),
		LLCMisses:     lerp(a.LLCMisses, b.LLCMisses),
		DRAMLoads:     lerp(a.DRAMLoads, b.DRAMLoads),
		Writebacks:    lerp(a.Writebacks, b.Writebacks),
		LeadingMisses: lerp(a.LeadingMisses, b.LeadingMisses),
		Mispredicts:   lerp(a.Mispredicts, b.Mispredicts),
	}
	out.TimeNs = out.BaseNs + out.BranchNs + out.CacheNs + out.MemNs
	if out.LeadingMisses > 0 {
		out.MLP = out.DRAMLoads / out.LeadingMisses
		if out.MLP < 1 {
			out.MLP = 1
		}
	} else {
		out.MLP = 1
	}
	for w := range out.ATDMissCurve {
		out.ATDMissCurve[w] = lerp(a.ATDMissCurve[w], b.ATDMissCurve[w])
		for c := range out.ATDLM {
			out.ATDLM[c][w] = lerp(a.ATDLM[c][w], b.ATDLM[c][w])
		}
	}
	return out
}

// Benchmarks returns the names present in the database.
func (d *DB) Benchmarks() []string {
	out := make([]string, 0, len(d.Phases))
	for name := range d.Phases {
		out = append(out, name)
	}
	return out
}

// NumPhases returns the phase count of a benchmark (0 if unknown).
func (d *DB) NumPhases(benchName string) int { return len(d.Phases[benchName]) }
