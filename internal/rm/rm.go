// Package rm implements the paper's resource managers: the local
// optimisation that turns one core's interval statistics into an energy
// curve E*(w) with per-allocation core size c*(w) and frequency f*(w)
// choices, and the global optimisation that recursively reduces the
// per-core curves into the energy-optimal LLC way distribution
// (Section III-A/III-B, Figure 3).
//
// Three manager kinds reproduce the paper's comparison:
//
//   - RM1 partitions the LLC only (core size and VF stay at baseline);
//   - RM2 coordinates per-core DVFS with partitioning (prior art [8]);
//   - RM3 — the proposal — additionally adapts the core size.
package rm

import (
	"fmt"
	"math"

	"qosrm/internal/config"
	"qosrm/internal/energymodel"
	"qosrm/internal/perfmodel"
)

// Kind identifies a resource manager variant.
type Kind int

// The managers compared throughout the evaluation. Idle keeps the
// baseline setting and is the energy-savings reference (Section IV-D1).
const (
	Idle Kind = iota
	RM1
	RM2
	RM3
)

// Kinds lists the active managers in paper order.
var Kinds = []Kind{RM1, RM2, RM3}

// String returns the paper's name for the manager.
func (k Kind) String() string {
	switch k {
	case Idle:
		return "Idle"
	case RM1:
		return "RM1"
	case RM2:
		return "RM2"
	case RM3:
		return "RM3"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Predictor estimates next-interval time and energy per instruction for
// candidate settings. The model-driven implementation wraps
// perfmodel/energymodel; a perfect-oracle implementation (used for the
// "perfect model" bars of Figures 2 and 9) reads the database directly.
type Predictor interface {
	// TimePI returns predicted ns per instruction at target.
	TimePI(target config.Setting) float64
	// EnergyPI returns predicted joules per instruction at target.
	EnergyPI(target config.Setting) float64
}

// ModelPredictor predicts with the online models of the paper.
type ModelPredictor struct {
	Stats perfmodel.IntervalStats
	Model perfmodel.Kind
}

// TimePI implements Predictor via Eq. 1.
func (m *ModelPredictor) TimePI(target config.Setting) float64 {
	return m.Stats.TimePI(m.Model, target)
}

// EnergyPI implements Predictor via Eq. 4–5.
func (m *ModelPredictor) EnergyPI(target config.Setting) float64 {
	return energymodel.EnergyPI(&m.Stats, m.Model, target)
}

// Curve is one core's local-optimisation result: for every way
// allocation w, the minimum predicted energy per instruction that still
// satisfies QoS, and the (core size, frequency) pair achieving it.
// Infeasible allocations carry +Inf energy.
type Curve struct {
	// Energy[w-MinWays] is E*(w) in joules per instruction.
	Energy [perfmodel.NumWays]float64
	// Pick[w-MinWays] is the chosen setting at allocation w; its Ways
	// field equals w for valid entries.
	Pick [perfmodel.NumWays]config.Setting
}

// Feasible reports whether any allocation satisfies QoS.
func (c *Curve) Feasible() bool {
	for _, e := range c.Energy {
		if !math.IsInf(e, 1) {
			return true
		}
	}
	return false
}

// Options tunes the local optimisation.
type Options struct {
	// Alpha is the QoS relaxation parameter of Eq. 3 (paper: 1.0).
	Alpha float64
}

func (o Options) alpha() float64 {
	if o.Alpha <= 0 {
		return config.QoSAlpha
	}
	return o.Alpha
}

// Localize runs the local optimisation for one core: it scans the
// setting space permitted by kind and returns the energy curve, the
// f*(w) and c*(w) choices folded into Curve.Pick.
//
// The QoS reference is the predicted time at the baseline setting,
// evaluated with the same predictor (Eq. 3); using the same model for
// both sides is what lets consistent model bias cancel.
func Localize(p Predictor, kind Kind, opts Options) Curve {
	base := config.Baseline()
	budget := p.TimePI(base) * opts.alpha()

	var cv Curve
	for i := range cv.Energy {
		cv.Energy[i] = math.Inf(1)
	}

	cores, freqs := searchSpace(kind)
	for wi := 0; wi < perfmodel.NumWays; wi++ {
		w := config.MinWays + wi
		for _, c := range cores {
			for _, f := range freqs {
				s := config.Setting{Core: c, Freq: f, Ways: w}
				if p.TimePI(s) > budget {
					continue
				}
				if e := p.EnergyPI(s); e < cv.Energy[wi] {
					cv.Energy[wi] = e
					cv.Pick[wi] = s
				}
				// Frequencies are scanned in ascending order; for a
				// fixed (c, w) the first QoS-feasible frequency is the
				// minimum one, f*(w). Higher frequencies cost strictly
				// more energy under the V²f model, so stop here.
				break
			}
		}
	}
	return cv
}

// Shared search-space tables: Localize runs at every interval boundary
// of every co-simulated core, so its per-call slices are hoisted here
// once. All slices are read-only.
var (
	allFreqs = func() []int {
		f := make([]int, config.NumFreqs)
		for i := range f {
			f[i] = i
		}
		return f
	}()
	baseFreqOnly = []int{config.BaseFreqIdx}
	baseCoreOnly = []config.CoreSize{config.SizeM}
	allCores     = []config.CoreSize{config.SizeS, config.SizeM, config.SizeL}
)

// searchSpace returns the core sizes and frequency indices a manager
// kind may choose from. Frequencies are ascending so the first feasible
// one is f*. The returned slices are shared and must not be mutated.
func searchSpace(kind Kind) ([]config.CoreSize, []int) {
	switch kind {
	case Idle:
		return baseCoreOnly, baseFreqOnly
	case RM1:
		// LLC partitioning only: baseline core and VF.
		return baseCoreOnly, baseFreqOnly
	case RM2:
		// Partitioning + per-core DVFS (prior art).
		return baseCoreOnly, allFreqs
	case RM3:
		// Partitioning + DVFS + core adaptation (proposed).
		return allCores, allFreqs
	default:
		panic(fmt.Sprintf("rm: unknown kind %d", int(kind)))
	}
}
