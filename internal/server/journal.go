package server

import (
	"errors"
	"sort"
	"strconv"

	"qosrm/internal/jobstore"
	"qosrm/internal/obs"
)

// replayJournal rebuilds the job table from a journal's event stream
// and returns the scenarios that were acknowledged but never finished,
// in deterministic (job, index) order, for re-enqueueing. Called from
// New before the worker pool starts, so it touches server state without
// locking.
//
// Replay semantics:
//
//   - submit: registers the job (specs, idempotency key) exactly as the
//     original POST did; duplicate submit records (possible after an
//     interrupted compaction) are ignored.
//   - start: informational only — a started-but-unfinished scenario is
//     indistinguishable from a queued one after a crash and re-runs.
//     The engine is deterministic, so the re-run reproduces the report
//     the lost run would have produced.
//   - finish: fills the scenario's report or error; the job serves it
//     without recomputing. Fully-finished jobs get finishedAt stamped
//     at boot, restarting their TTL (the journal does not record wall
//     clocks, and serving a report too long beats dropping it too
//     early).
//   - expire: drops the job and its key, mirroring the TTL GC.
func (s *Server) replayJournal(events []jobstore.Event) []workItem {
	boot := s.now()
	for _, ev := range events {
		s.metrics.journalReplays.Add(1)
		switch ev.Type {
		case jobstore.EventSubmit:
			if _, dup := s.jobs[ev.Job]; dup || ev.Job == "" {
				continue
			}
			// The journal records no wall clocks: the replayed job's
			// timeline restarts at boot.
			j := s.newJob(ev.Job, ev.Key, ev.Specs, boot)
			s.jobs[j.id] = j
			if j.key != "" {
				s.keys[j.key] = j.id
			}
			// jobSeq resumes past every replayed id so new jobs never
			// collide with journaled ones.
			if n, ok := jobNum(j.id); ok && n > s.jobSeq {
				s.jobSeq = n
			}
		case jobstore.EventFinish:
			j := s.jobs[ev.Job]
			if j == nil || ev.Index < 0 || ev.Index >= len(j.specs) {
				continue
			}
			if j.reports[ev.Index] != nil || j.errs[ev.Index] != nil {
				continue
			}
			j.reports[ev.Index] = ev.Report
			switch {
			case ev.Error != "":
				j.errs[ev.Index] = errors.New(ev.Error)
			case ev.Report == nil:
				j.errs[ev.Index] = errors.New("journal: finish event without report")
			}
			j.done++
			if j.done == len(j.specs) {
				j.finishedAt = boot
				// A replayed-finished job streams its terminal frame
				// immediately; the per-interval events are gone with the
				// process that produced them.
				term := obs.Terminal{Kind: obs.TerminalDone}
				if msg := joinErrs(j.errs); msg != "" {
					term = obs.Terminal{Kind: obs.TerminalFailed, Err: msg}
				}
				j.events.Close(term)
			}
		case jobstore.EventExpire:
			if j := s.jobs[ev.Job]; j != nil {
				delete(s.jobs, ev.Job)
				if j.key != "" {
					delete(s.keys, j.key)
				}
			}
		}
	}

	var pending []workItem
	for _, j := range s.jobs {
		for i := range j.specs {
			if j.reports[i] == nil && j.errs[i] == nil {
				pending = append(pending, workItem{j: j, idx: i})
			}
		}
	}
	sort.Slice(pending, func(a, b int) bool {
		na, _ := jobNum(pending[a].j.id)
		nb, _ := jobNum(pending[b].j.id)
		if na != nb {
			return na < nb
		}
		return pending[a].idx < pending[b].idx
	})
	return pending
}

// jobNum extracts the sequence number of a "j<n>" job id.
func jobNum(id string) (int64, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
