package experiments

import (
	"fmt"
	"io"

	"qosrm/internal/atd"
	"qosrm/internal/config"
)

// Fig4Access is one ATD observation of the worked example.
type Fig4Access struct {
	Load    string
	Index   int64
	Arrival int // order of arrival at the ATD
}

// Fig4Result reproduces the Figure 4 example: four loads, all predicted
// to miss, arriving at the ATD in issue order, and the resulting
// leading-miss counts per core size.
type Fig4Result struct {
	Accesses []Fig4Access
	// LM[c] is the leading-miss count of the core-size-c counter bank.
	LM [config.NumSizes]int64
}

// Fig4 feeds the paper's example access stream into a fresh ATD. The
// four loads carry instruction indices 5, 20, 33 and 90; LD3 (index 33)
// bypasses the chain-dependent LD2 (index 20), so they arrive out of
// order. The S-core counter (ROB 64) must see three leading misses
// (LD2's out-of-order arrival reveals its dependence, and LD4 falls
// outside the window); the M-core counter (ROB 128) must see two (LD4
// overlaps within the larger window).
func Fig4() Fig4Result {
	a := atd.MustNew(0)
	// Distinct cold addresses in different blocks: every access misses
	// at every allocation.
	accesses := []Fig4Access{
		{Load: "LD1", Index: 5, Arrival: 1},
		{Load: "LD3", Index: 33, Arrival: 2},
		{Load: "LD2", Index: 20, Arrival: 3},
		{Load: "LD4", Index: 90, Arrival: 4},
	}
	for i, acc := range accesses {
		a.Access(uint64(i)*config.BlockBytes*1024, acc.Index, true)
	}
	var res Fig4Result
	res.Accesses = accesses
	for ci, cs := range config.Sizes {
		res.LM[ci] = a.LeadingMisses(cs, config.BaseWays)
	}
	return res
}

// RenderFig4 prints the example in the layout of the paper's figure.
func RenderFig4(w io.Writer, r Fig4Result) {
	fmt.Fprintln(w, "FIGURE 4: ATD leading-miss extension worked example")
	fmt.Fprintln(w, "Arrival order at ATD (instruction index):")
	for _, a := range r.Accesses {
		fmt.Fprintf(w, "  %d: %s (inst %d)\n", a.Arrival, a.Load, a.Index)
	}
	for ci, cs := range config.Sizes {
		fmt.Fprintf(w, "Core %s (ROB %3d): leading misses = %d\n",
			cs, config.Core(cs).ROB, r.LM[ci])
	}
	fmt.Fprintln(w, "Paper expectation: S→3 (LD2 detected as dependent, LD4 outside window),")
	fmt.Fprintln(w, "                   M→2 (LD4 overlaps within the 128-entry window).")
}
