// Command figures regenerates every table and figure of the paper's
// evaluation from the simulation database.
//
// Usage:
//
//	figures -exp all                       # everything
//	figures -exp table1,table2,fig1        # a subset
//	figures -exp fig6 -scale 4096 -per 3   # faster main evaluation
//	figures -exp all -json report.json     # machine-readable results
//
// Experiments: table1, table2, fig1, fig2, fig4, fig5, fig6, fig7,
// fig8, fig9, ablation (design-choice sensitivity studies), validate
// (partition-isolation check of the replay methodology).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	expList := flag.String("exp", "all", "comma-separated experiments or 'all'")
	jsonPath := flag.String("json", "", "also write a machine-readable report of all experiments to this path")
	dbPath := flag.String("db", "qosrm-db.gz", "database cache path (built if missing)")
	traceLen := flag.Int("tracelen", 65536, "instructions measured per phase")
	scale := flag.Int64("scale", 2048, "co-simulation instruction-count divisor")
	per := flag.Int("per", 6, "workloads per scenario and core count")
	seed := flag.Int64("seed", 20, "workload generation seed")
	flag.Parse()

	d, err := db.LoadOrBuild(*dbPath, bench.Suite(), db.Options{TraceLen: *traceLen})
	if err != nil {
		log.Fatal(err)
	}
	ctx := experiments.NewContext(d)
	ctx.Scale = *scale
	ctx.PerScenario = *per
	ctx.Seed = *seed

	all := []string{"table1", "table2", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablation", "validate"}
	var wanted []string
	if *expList == "all" {
		wanted = all
	} else {
		for _, e := range strings.Split(*expList, ",") {
			wanted = append(wanted, strings.TrimSpace(strings.ToLower(e)))
		}
	}

	// fig7 and fig8 share one sweep; compute lazily once.
	var f7 *experiments.Fig7Result
	getF7 := func() *experiments.Fig7Result {
		if f7 == nil {
			var err error
			f7, err = ctx.Fig7()
			if err != nil {
				log.Fatal(err)
			}
		}
		return f7
	}

	for _, e := range wanted {
		start := time.Now()
		switch e {
		case "table1":
			experiments.RenderTableI(os.Stdout)
		case "table2":
			rows, err := ctx.TableII()
			if err != nil {
				log.Fatal(err)
			}
			experiments.RenderTableII(os.Stdout, rows)
		case "fig1":
			experiments.RenderFig1(os.Stdout, ctx.Fig1())
		case "fig2":
			rows, err := ctx.Fig2()
			if err != nil {
				log.Fatal(err)
			}
			experiments.RenderFig2(os.Stdout, rows)
		case "fig4":
			experiments.RenderFig4(os.Stdout, experiments.Fig4())
		case "fig5":
			r, err := ctx.Fig5(16)
			if err != nil {
				log.Fatal(err)
			}
			experiments.RenderFig5(os.Stdout, r)
		case "fig6":
			r, err := ctx.Fig6()
			if err != nil {
				log.Fatal(err)
			}
			experiments.RenderFig6(os.Stdout, r)
		case "fig7":
			experiments.RenderFig7(os.Stdout, getF7())
		case "fig8":
			experiments.RenderFig8(os.Stdout, getF7())
		case "fig9":
			r, err := ctx.Fig9()
			if err != nil {
				log.Fatal(err)
			}
			experiments.RenderFig9(os.Stdout, r)
		case "ablation":
			bits, err := ctx.AblationIndexBits(nil)
			if err != nil {
				log.Fatal(err)
			}
			sampling, err := ctx.AblationSampling(nil)
			if err != nil {
				log.Fatal(err)
			}
			alphas, err := ctx.AblationAlpha(nil)
			if err != nil {
				log.Fatal(err)
			}
			intervals, err := ctx.AblationInterval(nil)
			if err != nil {
				log.Fatal(err)
			}
			experiments.RenderAblation(os.Stdout, bits, sampling, alphas, intervals)
			gopt, err := ctx.AblationGlobalOpt()
			if err != nil {
				log.Fatal(err)
			}
			experiments.RenderGlobalOptAblation(os.Stdout, gopt)
		case "validate":
			rows, err := ctx.ValidateReplay("mcf", "xalancbmk", 20000)
			if err != nil {
				log.Fatal(err)
			}
			experiments.RenderValidate(os.Stdout, rows)
		default:
			log.Fatalf("unknown experiment %q (want one of %s)", e, strings.Join(all, ", "))
		}
		fmt.Printf("[%s done in %v]\n\n", e, time.Since(start).Round(time.Millisecond))
	}

	if *jsonPath != "" {
		start := time.Now()
		report, err := ctx.FullReport()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[report written to %s in %v]\n", *jsonPath, time.Since(start).Round(time.Millisecond))
	}
}
