// Package jobstore is the durable job journal behind the qosrmd
// serving layer: an append-only, CRC-framed event log that survives a
// SIGKILL (or any crash) at an arbitrary byte boundary and replays
// cleanly on the next boot, so an accepted sweep job is never lost and
// a finished report never has to be recomputed.
//
// The file reuses the dbstore envelope idiom — a fixed magic/version
// header, a checksum on every byte that matters, and atomic
// rename-into-place for whole-file rewrites:
//
//	header (16 bytes)
//	  magic    [8]byte  "QOSRMJNL"
//	  version  uint32   format version (Version)
//	  reserved uint32   zero
//	records, back to back
//	  length   uint32   payload bytes (bounded by maxRecord)
//	  checksum uint64   CRC-64/ECMA of the payload
//	  payload  []byte   one JSON-encoded Event
//
// Appends are a single buffered write followed by an fsync, so a
// record either lands completely or is a torn tail. Open scans the
// file record by record and stops at the first frame that is short,
// over-long or fails its checksum: everything before it replays,
// everything from it on is truncated away (a torn final record is the
// signature of a crash mid-append, whose submitter never got an
// acknowledgement — dropping it is correct, not lossy). Corruption in
// the header, by contrast, is an error: the header is written once and
// synced before any record, so a bad header means the file is not a
// journal at all.
//
// Compact rewrites the journal to just the live events (dead records
// accumulate as finished jobs expire) via the same write-temp, fsync,
// rename dance dbstore.Save uses, so a crash mid-compaction leaves the
// previous journal intact.
//
// The faultinject hooks "jobstore.append" and "jobstore.compact" let
// the chaos tests tear writes and fail rotations on demand; an append
// that fails part-way truncates back to the last durable record before
// returning, so a later append can never bury a torn frame mid-file.
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"qosrm/internal/dbstore"
	"qosrm/internal/faultinject"
	"qosrm/internal/scenario"
)

// Version is the journal format version; bump on any change to the
// header, the frame layout or the Event schema.
const Version = 1

// magic identifies a qosrm job journal.
var magic = [8]byte{'Q', 'O', 'S', 'R', 'M', 'J', 'N', 'L'}

const (
	headerSize = 16
	frameSize  = 12 // length uint32 + checksum uint64

	// maxRecord bounds one record's payload; a frame claiming more is
	// corruption, not a big record.
	maxRecord = 1 << 28
)

// ErrVersion is wrapped by Open failures caused by a format version
// mismatch.
var ErrVersion = errors.New("jobstore: journal format version mismatch")

// Event types, in job lifecycle order.
const (
	// EventSubmit records an accepted job: its id, idempotency key and
	// the full spec batch. Journaled before the submission is
	// acknowledged, so an acked job is always recoverable.
	EventSubmit = "submit"
	// EventStart records a worker picking one scenario up. Purely
	// observational: a started-but-unfinished scenario replays as
	// pending, exactly like a never-started one.
	EventStart = "start"
	// EventFinish records one scenario's outcome — the report (or
	// error) a restarted server serves without recomputing.
	EventFinish = "finish"
	// EventExpire records a finished job aged out by the server's TTL
	// GC; replay drops the job. Compaction erases both.
	EventExpire = "expire"
)

// Event is one journal record. Exactly one of the type-specific field
// groups is populated, keyed by Type.
type Event struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// Key is the submit's idempotency key (EventSubmit, optional).
	Key string `json:"key,omitempty"`
	// Specs is the submitted batch (EventSubmit).
	Specs []scenario.Spec `json:"specs,omitempty"`
	// Index is the scenario within the job (EventStart/EventFinish).
	Index int `json:"index,omitempty"`
	// Report is the scenario's outcome (EventFinish, nil on failure).
	Report *scenario.Report `json:"report,omitempty"`
	// Error is the scenario's failure (EventFinish, empty on success).
	Error string `json:"error,omitempty"`
}

// LoadInfo reports what Open recovered.
type LoadInfo struct {
	// Events are the replayable records, in append order.
	Events []Event
	// TruncatedBytes is the size of the torn or corrupt tail Open cut
	// off (0 for a clean journal).
	TruncatedBytes int64
}

// Journal is an open job journal. All methods are safe for concurrent
// use; appends are serialised and individually fsynced.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	off     int64 // end of the last durable record
	records int   // records on disk (replayed + appended)
	broken  error // latched unrecoverable write failure
}

// Open opens (or creates) the journal at path and replays its records.
// A torn or corrupt tail is truncated away and reported in LoadInfo;
// a corrupt header or unreadable file is an error.
func Open(path string) (*Journal, *LoadInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobstore: open: %w", err)
	}
	j := &Journal{path: path, f: f}
	info, err := j.load()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, info, nil
}

// load validates the header (writing one into an empty file), replays
// the records and truncates any torn tail.
func (j *Journal) load() (*LoadInfo, error) {
	st, err := j.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	if st.Size() == 0 {
		var hdr [headerSize]byte
		copy(hdr[0:8], magic[:])
		binary.LittleEndian.PutUint32(hdr[8:12], Version)
		if _, err := j.f.Write(hdr[:]); err != nil {
			return nil, fmt.Errorf("jobstore: write header: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return nil, fmt.Errorf("jobstore: sync header: %w", err)
		}
		j.off = headerSize
		return &LoadInfo{}, nil
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(j.f, hdr[:]); err != nil {
		return nil, fmt.Errorf("jobstore: %s: header: %w", j.path, err)
	}
	if [8]byte(hdr[0:8]) != magic {
		return nil, fmt.Errorf("jobstore: %s is not a qosrm job journal (bad magic)", j.path)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("%w: file v%d, binary v%d", ErrVersion, v, Version)
	}

	info := &LoadInfo{}
	data, err := io.ReadAll(j.f)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %s: %w", j.path, err)
	}
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameSize {
			break // torn frame header
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n <= 0 || n > maxRecord || len(rest) < frameSize+n {
			break // corrupt length or torn payload
		}
		payload := rest[frameSize : frameSize+n]
		if dbstore.Checksum(payload) != binary.LittleEndian.Uint64(rest[4:12]) {
			break // corrupt payload
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			break // framed but undecodable: treat as corruption
		}
		info.Events = append(info.Events, ev)
		off += frameSize + n
		j.records++
	}
	j.off = headerSize + int64(off)
	info.TruncatedBytes = st.Size() - j.off
	if info.TruncatedBytes > 0 {
		// Cut the torn tail so future appends continue from the last
		// durable record instead of burying garbage mid-file.
		if err := j.f.Truncate(j.off); err != nil {
			return nil, fmt.Errorf("jobstore: %s: truncate torn tail: %w", j.path, err)
		}
	}
	if _, err := j.f.Seek(j.off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("jobstore: %s: %w", j.path, err)
	}
	return info, nil
}

// Append journals one event durably: the record is framed, written and
// fsynced before Append returns. A failed or torn write is rolled back
// by truncating to the previous record boundary; if even the rollback
// fails the journal latches broken and every later Append errors.
func (j *Journal) Append(ev Event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("jobstore: append: %w", err)
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("jobstore: append: record of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, frameSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[4:12], dbstore.Checksum(payload))
	copy(frame[frameSize:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return j.broken
	}
	if err := faultinject.Eval("jobstore.append"); err != nil {
		// Emulate the torn write a crash mid-append leaves behind, then
		// recover exactly as a real partial write would.
		j.f.Write(frame[:len(frame)/2])
		return j.rollback(err)
	}
	if _, err := j.f.Write(frame); err != nil {
		return j.rollback(err)
	}
	if err := j.f.Sync(); err != nil {
		return j.rollback(err)
	}
	j.off += int64(len(frame))
	j.records++
	return nil
}

// rollback restores the on-disk journal to the last durable record
// after a failed append; it must be called with the mutex held.
func (j *Journal) rollback(cause error) error {
	if err := j.f.Truncate(j.off); err != nil {
		j.broken = fmt.Errorf("jobstore: journal unusable after failed rollback: %v (append failed: %w)", err, cause)
		return j.broken
	}
	if _, err := j.f.Seek(j.off, io.SeekStart); err != nil {
		j.broken = fmt.Errorf("jobstore: journal unusable after failed rollback: %v (append failed: %w)", err, cause)
		return j.broken
	}
	return fmt.Errorf("jobstore: append: %w", cause)
}

// Compact atomically rewrites the journal to exactly events (the
// caller's live set), dropping every dead record. The previous journal
// stays intact until the replacement is durably in place.
func (j *Journal) Compact(events []Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return j.broken
	}
	if err := faultinject.Eval("jobstore.compact"); err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	err := dbstore.AtomicWrite(j.path, func(f *os.File) error {
		var hdr [headerSize]byte
		copy(hdr[0:8], magic[:])
		binary.LittleEndian.PutUint32(hdr[8:12], Version)
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		for i := range events {
			payload, err := json.Marshal(&events[i])
			if err != nil {
				return err
			}
			var frame [frameSize]byte
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint64(frame[4:12], dbstore.Checksum(payload))
			if _, err := f.Write(frame[:]); err != nil {
				return err
			}
			if _, err := f.Write(payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	// The rename replaced the inode under the old handle: reopen at the
	// new file's end so appends continue into the compacted journal.
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		j.broken = fmt.Errorf("jobstore: reopen after compact: %w", err)
		return j.broken
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		j.broken = fmt.Errorf("jobstore: reopen after compact: %w", err)
		return j.broken
	}
	j.f.Close()
	j.f, j.off, j.records = f, off, len(events)
	return nil
}

// Records reports how many durable records the journal holds.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Size reports the journal's durable size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.off
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken == nil {
		j.broken = errors.New("jobstore: journal closed")
	}
	return j.f.Close()
}
