package cpu

import (
	"testing"

	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// wbParams is a store-heavy stream with main-region writes.
func wbParams(seed int64) trace.Params {
	p := testParams(seed)
	p.StoreFrac = 0.15
	p.StoreMainFrac = 0.5
	return p
}

func TestWritebacksRequireStores(t *testing.T) {
	clean := testParams(30)
	clean.StoreFrac = 0
	a := Annotate(trace.Generate(clean, 30_000))
	r := Run(a, baseRC())
	if r.Writebacks != 0 {
		t.Fatalf("store-free stream produced %d writebacks", r.Writebacks)
	}

	dirty := wbParams(30)
	b := Annotate(trace.Generate(dirty, 30_000))
	rb := Run(b, baseRC())
	if rb.Writebacks == 0 {
		t.Fatal("main-region stores must produce writebacks")
	}
}

func TestWritebacksWeaklyDecreaseWithWays(t *testing.T) {
	a := Annotate(trace.Generate(wbParams(31), 40_000))
	prev := int64(1 << 62)
	for w := config.MinWays; w <= config.MaxWays; w++ {
		rc := baseRC()
		rc.Ways = w
		r := Run(a, rc)
		if r.Writebacks > prev {
			t.Fatalf("writebacks grew with more ways at w=%d: %d > %d", w, r.Writebacks, prev)
		}
		prev = r.Writebacks
	}
}

func TestWritebacksIndependentOfCoreAndFrequency(t *testing.T) {
	// Writebacks are a cache property: identical across core sizes and
	// clocks for the same stream and allocation.
	a := Annotate(trace.Generate(wbParams(32), 30_000))
	ref := Run(a, baseRC()).Writebacks
	for _, c := range config.Sizes {
		for _, fi := range []int{0, config.NumFreqs - 1} {
			rc := RunConfig{Core: c, Ways: config.BaseWays, FreqGHz: config.FreqGHz(fi)}
			if got := Run(a, rc).Writebacks; got != ref {
				t.Fatalf("writebacks vary with (%s, f=%d): %d vs %d", c, fi, got, ref)
			}
		}
	}
}

func TestWritebacksBoundedByStoreMisses(t *testing.T) {
	// Every writeback needs a dirtying store that reached the LLC; the
	// count of writebacks at any allocation cannot exceed the number of
	// LLC store accesses (each store dirties at most one line at a time).
	p := wbParams(33)
	insts := trace.Generate(p, 30_000)
	a := Annotate(insts)
	llcStores := 0
	for i, in := range insts {
		if in.Kind == trace.KindStore && a.Level[i] == 3 {
			llcStores++
		}
	}
	r := Run(a, baseRC())
	if r.Writebacks > int64(llcStores) {
		t.Fatalf("%d writebacks exceed %d LLC stores", r.Writebacks, llcStores)
	}
}
