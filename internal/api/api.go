// Package api holds the wire types of the qosrmd HTTP/JSON API: request
// and response bodies, job and health states, header names and the
// machine-readable rejection reasons. It is the shared leaf both sides
// of the protocol import — internal/server implements it, the retrying
// client (internal/client) speaks it, and a qosrmd node forwarding jobs
// to a cluster peer is simultaneously both — so neither side needs to
// depend on the other's implementation.
package api

import (
	"context"
	"time"

	"qosrm/internal/scenario"
	"qosrm/internal/sim"
)

// Header names of the protocol's out-of-band fields.
const (
	// IdempotencyKeyHeader makes POST /v1/jobs safe to retry: a key the
	// server has already seen returns the existing job instead of
	// queuing a duplicate. A node forwarding a job to a peer propagates
	// the caller's key verbatim, so the dedupe contract holds across the
	// cluster.
	IdempotencyKeyHeader = "Idempotency-Key"
	// IdempotencyReplayedHeader is set to "true" on a submit response
	// that was served from an existing job instead of a new admission.
	IdempotencyReplayedHeader = "Idempotency-Replayed"
	// ForwardTrailHeader carries the node IDs a forwarded submit has
	// already visited, comma-separated, oldest first. A node forwards
	// only while the trail is shorter than its hop budget, and never to
	// a node already on the trail — so multi-hop forwarding terminates
	// in any topology without revisiting a node, and a fully saturated
	// cluster degrades to an honest 503 instead of bouncing the job
	// between nodes forever.
	ForwardTrailHeader = "X-Qosrm-Forward-Trail"
	// RequestIDHeader ties one request's hops together: the ingress node
	// generates an ID when the caller didn't send one, every response
	// (success or error) echoes it, forwarded submits carry it verbatim
	// to the peer, and each node's access log records it — so one
	// grep over the cluster's logs reconstructs a forwarded request's
	// whole path.
	RequestIDHeader = "X-Qosrm-Request-Id"
)

// requestIDKey is the context key RequestID/WithRequestID share.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID, which the
// client injects into outgoing requests (that is how a forwarding node
// propagates the ingress ID to its peer).
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the request ID from ctx ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// SavingsRequest is the body of POST /v1/savings: an application mix
// (one name per core) plus the manager configuration to evaluate it
// under. The manager/model names and defaults match the scenario spec's
// ("RM3"/"Model3" when empty).
type SavingsRequest struct {
	Apps  []string `json:"apps"`
	RM    string   `json:"rm,omitempty"`
	Model string   `json:"model,omitempty"`
	// Policy selects the allocation policy per request: "model3"
	// (default), "greedy" or "brute".
	Policy           string  `json:"policy,omitempty"`
	Perfect          bool    `json:"perfect,omitempty"`
	Alpha            float64 `json:"alpha,omitempty"`
	Scale            int64   `json:"scale,omitempty"`
	Interval         int64   `json:"interval,omitempty"`
	DisableOverheads bool    `json:"disable_overheads,omitempty"`
}

// SavingsResponse is the outcome of one savings evaluation: the
// fractional energy saving of the managed run over the idle
// (baseline-keeping) manager on the same workload, plus the managed
// run's headline numbers and per-application results.
type SavingsResponse struct {
	// Policy is the allocation policy the managed run decided with.
	Policy        string          `json:"policy"`
	Saving        float64         `json:"saving"`
	EnergyJ       float64         `json:"energy_j"`
	IdleEnergyJ   float64         `json:"idle_energy_j"`
	TimeNs        float64         `json:"time_ns"`
	RMCalled      int64           `json:"rm_called"`
	ViolationRate float64         `json:"violation_rate"`
	Apps          []sim.AppResult `json:"apps"`
}

// JobRequest is the body of POST /v1/jobs: a batch of scenario specs to
// sweep asynchronously over the server's worker pool.
type JobRequest struct {
	Specs []scenario.Spec `json:"specs"`
}

// Job states, in lifecycle order.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the response of POST /v1/jobs and GET /v1/jobs/{id}.
// Reports is populated once the job is done, in spec order, with null
// entries for specs that failed (their errors are joined in Error).
type JobStatus struct {
	ID string `json:"id"`
	// Key echoes the Idempotency-Key the job was submitted under, if
	// any: a client retrying a submit can confirm it was deduplicated.
	Key   string `json:"key,omitempty"`
	State string `json:"state"`
	Total int    `json:"total"`
	Done  int    `json:"done"`
	// Origin is the base URL of the cluster peer that admitted the job
	// when the submit was forwarded there ("" when this node admitted
	// it). The job lives on the origin node: poll GET /v1/jobs/{id}
	// there — its journal owns the job's crash-safety story.
	Origin  string             `json:"origin,omitempty"`
	Reports []*scenario.Report `json:"reports,omitempty"`
	Error   string             `json:"error,omitempty"`
	// The job's lifecycle timeline. SubmittedAt is when this node
	// admitted the job, StartedAt when a worker first picked it up, and
	// FinishedAt when the last scenario completed — queue wait is
	// StartedAt−SubmittedAt, execution is FinishedAt−StartedAt. Zero
	// fields are omitted (e.g. StartedAt while the job is still queued).
	SubmittedAt time.Time `json:"submitted_at,omitzero"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// JobEvent is one frame of GET /v1/jobs/{id}/events — the NDJSON/SSE
// stream of a running job's interval-boundary trace. Frames come in two
// types: "interval" carries one sim.Event (flattened, plus which spec
// of the batch emitted it), and a final "done"/"failed"/"expired" frame
// terminates the stream. Seq is the event's position in the job's event
// sequence; Dropped is the cumulative number of events this subscriber
// lost to ring-buffer overwrites (a slow consumer sees it grow — the
// engine never waits for readers).
type JobEvent struct {
	Type string `json:"type"`
	// Interval-frame fields.
	Seq         uint64  `json:"seq,omitempty"`
	Dropped     uint64  `json:"dropped,omitempty"`
	Spec        int     `json:"spec,omitempty"`
	Name        string  `json:"name,omitempty"`
	TimeNs      float64 `json:"time_ns,omitempty"`
	Core        int     `json:"core,omitempty"`
	Bench       string  `json:"bench,omitempty"`
	Interval    int64   `json:"interval,omitempty"`
	Phase       int     `json:"phase,omitempty"`
	Freq        int     `json:"freq,omitempty"`
	Ways        int     `json:"ways,omitempty"`
	Allocations []int   `json:"allocations,omitempty"`
	// Error carries the job's error text on a "failed" terminal frame.
	Error string `json:"error,omitempty"`
}

// JobEvent frame types. The terminal kinds mirror the job's final
// states, plus "expired" for a stream outliving the job's TTL.
const (
	JobEventInterval = "interval"
	JobEventDone     = JobDone
	JobEventFailed   = JobFailed
	JobEventExpired  = "expired"
)

// Health is the response of GET /healthz. Status is "ok" in steady
// state and "degraded" when the scenario queue is near capacity — a
// load balancer can shift traffic away before submissions start
// bouncing with 503s, and cluster peers rank each other by the
// Queued/QueueDepth fields when picking a forwarding target.
type Health struct {
	Status        string  `json:"status"`
	Benchmarks    int     `json:"benchmarks"`
	Phases        int     `json:"phases"`
	TraceLen      int     `json:"trace_len"`
	Workers       int     `json:"workers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Queued and QueueDepth expose the scenario queue's occupancy, the
	// quantity the degraded threshold is computed from.
	Queued     int `json:"queued"`
	QueueDepth int `json:"queue_depth"`
	// Journal reports whether job state is journaled to disk (i.e. jobs
	// survive a crash or restart of this server).
	Journal bool `json:"journal"`
	// Node is the serving node's stable cluster identity. Peers use it
	// to resolve an address to a node ID before the first gossip round
	// completes, which is what makes trail-based forwarding loop-safe
	// from the very first forward.
	Node string `json:"node,omitempty"`
	// ParamsHash fingerprints the database build this node serves
	// (dbstore.ParamsHash, hex). Nodes with different hashes refuse
	// each other's joins and never share a forwarding rotation.
	ParamsHash string `json:"params_hash,omitempty"`
	// Peers is the number of cluster nodes currently in this node's
	// forwarding rotation — live and suspect members plus not-yet-
	// resolved seeds (0 when it runs standalone). Dynamic: dead peers
	// leave the count within the suspect timeout and rejoining ones
	// re-enter it.
	Peers int `json:"peers,omitempty"`
}

// Health states.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

// Machine-readable rejection reasons, carried in the error envelope's
// "reason" field so clients can route on them — retry the transient
// ones, surface the permanent ones — without matching message strings.
const (
	// ReasonBatchTooLarge (400): the batch exceeds the queue's total
	// capacity and can never be admitted. Permanent: split the sweep.
	ReasonBatchTooLarge = "batch_too_large"
	// ReasonQueueFull (503): the queue is occupied right now — and, in
	// a cluster, no live peer could take the overflow either.
	// Transient: retry with backoff.
	ReasonQueueFull = "queue_full"
	// ReasonShuttingDown (503): this instance is draining. Transient
	// against a deployment (another instance or the restarted daemon
	// will accept the retry).
	ReasonShuttingDown = "shutting_down"
	// ReasonRateLimited (429): the per-client token bucket is empty.
	// Transient: retry after the advertised delay.
	ReasonRateLimited = "rate_limited"
	// ReasonJournal (500): the job journal rejected the write, so the
	// submission could not be made durable and was not admitted.
	ReasonJournal = "journal_error"
	// ReasonClusterMismatch (409): the other node serves a different
	// database build (params hash) than this one, so admitting it to
	// the cluster would hand jobs to a node that computes different
	// answers. Permanent: redeploy with matching snapshots.
	ReasonClusterMismatch = "cluster_mismatch"
)

// ErrorResponse is the JSON envelope of every non-2xx response. Reason
// is present on rejections with a machine-readable classification (see
// the Reason* constants); Error is always human-readable.
type ErrorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}
