package server

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"qosrm/internal/faultinject"
	"qosrm/internal/scenario"
)

// chaosSpec is a deliberately light scenario so the chaos loop's many
// cycles stay fast under -race.
func chaosSpec(name string, seed int) scenario.Spec {
	const work = 100_000_000 * 2048
	return scenario.Spec{
		Name: name,
		RM:   "RM3",
		Cores: []scenario.CoreSpec{
			{Jobs: []scenario.JobSpec{{App: "mcf", Work: work, Alpha: 1 + 0.05*float64(seed%4)}}},
			{Jobs: []scenario.JobSpec{{App: "povray", Work: work}}},
		},
	}
}

// TestChaosKillRestartCycles is the crash-safety acceptance test: one
// journal lives through many abrupt server deaths (Close cancels
// in-flight work mid-scenario — the in-process equivalent of SIGKILL
// for journal state, since unfinished scenarios get no finish event)
// while concurrent submitters re-submit a fixed pool of idempotency
// keys and random failpoints inject stalls, scenario errors and journal
// write failures. Invariants checked across every cycle:
//
//   - zero lost: every job whose submit was acknowledged exists after
//     every subsequent restart;
//   - zero duplicated: an idempotency key maps to exactly one job id,
//     forever, and the final job count equals the key count;
//   - bit-identical: every report equals the uninterrupted in-process
//     sweep of the same specs.
func TestChaosKillRestartCycles(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	d := sharedDB(t)
	path := filepath.Join(t.TempDir(), "chaos.jnl")

	// The job pool and its uninterrupted reference reports.
	const numJobs = 8
	type refJob struct {
		key   string
		specs []scenario.Spec
		want  []*scenario.Report
	}
	refs := make([]refJob, numJobs)
	for i := range refs {
		specs := []scenario.Spec{chaosSpec(fmt.Sprintf("chaos-%d-a", i), i)}
		if i%2 == 0 {
			specs = append(specs, chaosSpec(fmt.Sprintf("chaos-%d-b", i), i+1))
		}
		want, err := scenario.Sweep(d, specs, 2)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = refJob{key: fmt.Sprintf("chaos-key-%d", i), specs: specs, want: want}
	}

	// Seeded: the cycle schedule is reproducible, the interleaving inside
	// each cycle is not — the invariants hold under any interleaving.
	rng := rand.New(rand.NewSource(42))
	var mu sync.Mutex
	keyToID := make(map[string]string)

	const cycles = 24
	for cycle := 0; cycle < cycles; cycle++ {
		srv, err := New(d, Options{Workers: 2, JournalPath: path, QueueDepth: 64})
		if err != nil {
			t.Fatalf("cycle %d: boot: %v", cycle, err)
		}
		// Zero lost: every previously acknowledged job survived the kill.
		for key, id := range keyToID {
			if srv.jobByID(id) == nil {
				t.Fatalf("cycle %d: job %s (key %s) lost across restart", cycle, id, key)
			}
		}

		// Random fault of the cycle (counted, so it always disarms).
		switch rng.Intn(4) {
		case 0:
			faultinject.Enable("server.worker", fmt.Sprintf("stall:%dms*%d", 5+rng.Intn(20), 1+rng.Intn(3)))
		case 1:
			faultinject.Enable("server.worker", fmt.Sprintf("error*%d", 1+rng.Intn(2)))
		case 2:
			faultinject.Enable("jobstore.append", "error*1")
		}

		// Concurrent submitters hammering overlapping keys.
		var wg sync.WaitGroup
		for s := 2 + rng.Intn(3); s > 0; s-- {
			picks := make([]int, 1+rng.Intn(3))
			for c := range picks {
				picks[c] = rng.Intn(numJobs)
			}
			wg.Add(1)
			go func(picks []int) {
				defer wg.Done()
				for _, i := range picks {
					j, _, err := srv.submit(refs[i].specs, refs[i].key)
					if err != nil {
						continue // not acknowledged: free to retry next cycle
					}
					mu.Lock()
					if prev, ok := keyToID[refs[i].key]; ok && prev != j.id {
						t.Errorf("cycle %d: key %s duplicated: job %s and %s", cycle, refs[i].key, prev, j.id)
					} else {
						keyToID[refs[i].key] = j.id
					}
					mu.Unlock()
				}
			}(picks)
		}
		wg.Wait()

		// Let workers make partial progress, then kill mid-flight.
		time.Sleep(time.Duration(rng.Intn(25)) * time.Millisecond)
		faultinject.Reset()
		srv.Close()
	}

	// Final boot: drain everything and audit.
	srv, err := New(d, Options{Workers: 4, JournalPath: path, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := range refs {
		if _, ok := keyToID[refs[i].key]; ok {
			continue
		}
		j, _, err := srv.submit(refs[i].specs, refs[i].key)
		if err != nil {
			t.Fatal(err)
		}
		keyToID[refs[i].key] = j.id
	}
	for i := range refs {
		id := keyToID[refs[i].key]
		st := waitJobDone(t, srv, id)
		if st.State != JobDone || st.Error != "" {
			t.Fatalf("key %s (job %s) did not complete cleanly: %+v", refs[i].key, id, st)
		}
		for k := range refs[i].want {
			if !reflect.DeepEqual(st.Reports[k], refs[i].want[k]) {
				t.Fatalf("key %s report %d differs from the uninterrupted run", refs[i].key, k)
			}
		}
	}
	// Zero duplicated, globally: exactly one job per key, nothing else.
	srv.mu.Lock()
	total := len(srv.jobs)
	srv.mu.Unlock()
	if total != numJobs {
		t.Fatalf("%d jobs tracked after %d cycles, want %d (lost or duplicated work)", total, cycles, numJobs)
	}
}
