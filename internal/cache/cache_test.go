package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qosrm/internal/config"
)

func TestNewGeometryErrors(t *testing.T) {
	cases := []struct{ size, ways int }{
		{0, 4},       // zero size
		{-64, 4},     // negative size
		{1024, 0},    // zero ways
		{1024, 3},    // blocks not divisible by ways
		{64 * 12, 4}, // sets not a power of two
	}
	for _, c := range cases {
		if _, err := New(c.size, c.ways); err == nil {
			t.Errorf("New(%d,%d): expected error", c.size, c.ways)
		}
	}
	if _, err := New(1024, 4); err != nil {
		t.Errorf("New(1024,4) failed: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on bad geometry")
		}
	}()
	MustNew(100, 3)
}

func TestCacheHitMiss(t *testing.T) {
	c := MustNew(1024, 4) // 4 sets × 4 ways
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) {
		t.Fatal("second access must hit")
	}
	if !c.Access(63) {
		t.Fatal("same block must hit")
	}
	if c.Access(64) {
		t.Fatal("next block must miss")
	}
	if c.Accesses() != 4 || c.Misses() != 2 {
		t.Fatalf("stats = %d/%d, want 4 accesses, 2 misses", c.Accesses(), c.Misses())
	}
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %.2f, want 0.5", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := MustNew(4*config.BlockBytes, 4) // 1 set × 4 ways
	// Fill the set with blocks 0..3, then touch 0 to make 1 the LRU.
	for b := uint64(0); b < 4; b++ {
		c.Access(b * config.BlockBytes)
	}
	c.Access(0)
	c.Access(4 * config.BlockBytes) // evicts block 1
	if !c.Access(0) {
		t.Error("block 0 must survive (recently used)")
	}
	if c.Access(1 * config.BlockBytes) {
		t.Error("block 1 must have been evicted as LRU")
	}
}

func TestCacheReset(t *testing.T) {
	c := MustNew(1024, 4)
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("reset must clear statistics")
	}
	if c.Access(0) {
		t.Fatal("reset must clear contents")
	}
}

func TestMissRateEmptyCache(t *testing.T) {
	c := MustNew(1024, 4)
	if c.MissRate() != 0 {
		t.Fatal("empty cache must report zero miss rate")
	}
}

// TestLRUStackInclusion is the core correctness property behind the ATD:
// an access at recency position p hits in a w-way LRU cache iff p ≤ w.
func TestLRUStackInclusion(t *testing.T) {
	const sets, maxWays = 4, 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stack := MustNewLRUStack(sets, maxWays)
		caches := make([]*Cache, maxWays+1)
		for w := 1; w <= maxWays; w++ {
			caches[w] = MustNew(sets*w*config.BlockBytes, w)
		}
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(sets*maxWays*3)) * config.BlockBytes
			pos := stack.Access(addr)
			for w := 1; w <= maxWays; w++ {
				hit := caches[w].Access(addr)
				wantHit := pos != 0 && pos <= w
				if hit != wantHit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestLRUStackGeometryErrors(t *testing.T) {
	if _, err := NewLRUStack(3, 8); err == nil {
		t.Error("non-power-of-two sets must fail")
	}
	if _, err := NewLRUStack(4, 0); err == nil {
		t.Error("zero ways must fail")
	}
	if _, err := NewLRUStack(0, 8); err == nil {
		t.Error("zero sets must fail")
	}
}

func TestLRUStackReset(t *testing.T) {
	s := MustNewLRUStack(4, 4)
	s.Access(0)
	if s.Access(0) != 1 {
		t.Fatal("expected MRU hit before reset")
	}
	s.Reset()
	if s.Access(0) != 0 {
		t.Fatal("reset must clear the stack")
	}
}

func TestLRUStackWays(t *testing.T) {
	if MustNewLRUStack(4, 7).Ways() != 7 {
		t.Fatal("Ways accessor wrong")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy()
	r := h.Access(0)
	if r.Level != 3 {
		t.Fatalf("cold access should reach the LLC, got level %d", r.Level)
	}
	if r.LLCPos != 0 {
		t.Fatalf("cold access has no recency position, got %d", r.LLCPos)
	}
	r = h.Access(0)
	if r.Level != 1 {
		t.Fatalf("immediate re-access should hit L1, got level %d", r.Level)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy()
	// Touch enough distinct blocks to evict block 0 from L1 but not L2.
	h.Access(0)
	l1Blocks := uint64(config.L1Bytes / config.BlockBytes)
	for b := uint64(1); b <= l1Blocks; b++ {
		h.Access(b * config.BlockBytes)
	}
	r := h.Access(0)
	if r.Level != 2 {
		t.Fatalf("expected L2 hit after L1 eviction, got level %d", r.Level)
	}
}

func TestHierarchyLLCPositionGrows(t *testing.T) {
	h := NewHierarchy()
	sets := config.L3BytesPerCore / config.BlockBytes / config.L3WaysPerCore
	// Access block 0, then n distinct conflicting blocks (same LLC set),
	// then block 0 again: its position is n+1.
	stride := uint64(sets * config.BlockBytes)
	h.Access(0)
	// Nine conflicting blocks evict block 0 from the 4-way L1 and 8-way
	// L2 (the stride aliases in all three caches), leaving it at LLC
	// recency position 10.
	for i := uint64(1); i <= 9; i++ {
		h.Access(i * stride)
	}
	r := h.Access(0)
	if r.Level != 3 {
		t.Fatalf("expected LLC access, got level %d", r.Level)
	}
	if r.LLCPos != 10 {
		t.Fatalf("LLC recency position = %d, want 10", r.LLCPos)
	}
}
