package db

import (
	"fmt"

	"qosrm/internal/bench"
	"qosrm/internal/config"
)

// Measurement holds the phase-weighted statistics the Section IV-C
// classification rules are applied to.
type Measurement struct {
	// MPKI at 4, 8 and 12 ways, on the baseline core and VF setting.
	MPKI4, MPKI8, MPKI12 float64
	// MLP on the S, M and L cores, at the baseline allocation and VF.
	MLPS, MLPM, MLPL float64
}

// Category applies the paper's thresholds to the measurement.
func (m Measurement) Category() bench.Category {
	return bench.Classify(m.MPKI4, m.MPKI8, m.MPKI12, m.MLPS, m.MLPM, m.MLPL)
}

// Measure computes the classification statistics of a benchmark from the
// database, weighting phases by their SimPoint-style weights.
func (d *DB) Measure(b *bench.Benchmark) (Measurement, error) {
	var m Measurement
	for p, ph := range b.Phases {
		w := ph.Weight
		base := config.Baseline()
		for _, pt := range []struct {
			ways int
			dst  *float64
		}{{4, &m.MPKI4}, {8, &m.MPKI8}, {12, &m.MPKI12}} {
			set := base
			set.Ways = pt.ways
			s, err := d.Stats(b.Name, p, set)
			if err != nil {
				return Measurement{}, fmt.Errorf("db: measure %s: %w", b.Name, err)
			}
			*pt.dst += w * s.LLCMisses / s.Instructions * 1000
		}
		for _, pt := range []struct {
			core config.CoreSize
			dst  *float64
		}{{config.SizeS, &m.MLPS}, {config.SizeM, &m.MLPM}, {config.SizeL, &m.MLPL}} {
			set := base
			set.Core = pt.core
			s, err := d.Stats(b.Name, p, set)
			if err != nil {
				return Measurement{}, fmt.Errorf("db: measure %s: %w", b.Name, err)
			}
			*pt.dst += w * s.MLP
		}
	}
	return m, nil
}

// Classify returns the measured category of a benchmark.
func (d *DB) Classify(b *bench.Benchmark) (bench.Category, Measurement, error) {
	m, err := d.Measure(b)
	if err != nil {
		return 0, Measurement{}, err
	}
	return m.Category(), m, nil
}
