package power

import (
	"math"
	"testing"
	"testing/quick"

	"qosrm/internal/config"
)

func TestDynEnergyVoltageSquared(t *testing.T) {
	// Dynamic energy scales with V² (the quadratic DVFS cost the paper's
	// argument rests on).
	e1 := DynEnergyJ(config.SizeM, 1.0, 1000)
	e2 := DynEnergyJ(config.SizeM, 1.25, 1000)
	want := e1 * 1.25 * 1.25
	if math.Abs(e2-want) > 1e-12 {
		t.Fatalf("V² scaling broken: %g vs %g", e2, want)
	}
}

func TestDynEnergyLinearInInstructions(t *testing.T) {
	f := func(n uint16) bool {
		e := DynEnergyJ(config.SizeM, 1.0, int64(n))
		per := EPIDynJ(config.SizeM, 1.0)
		return math.Abs(e-per*float64(n)) < 1e-18*float64(n)+1e-24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEPIOrderedByCoreSize(t *testing.T) {
	s := EPIDynJ(config.SizeS, 1)
	m := EPIDynJ(config.SizeM, 1)
	l := EPIDynJ(config.SizeL, 1)
	if !(s < m && m < l) {
		t.Fatalf("dynamic EPI not ordered: %g %g %g", s, m, l)
	}
	// Sub-linear growth: L costs less than 2× M per instruction, the
	// property that makes core upsizing cheaper than a VF increase.
	if l >= 2*m {
		t.Fatalf("L-core EPI %g not sub-linear versus M %g", l, m)
	}
}

func TestStaticPowerOrdered(t *testing.T) {
	s := StaticPowerW(config.SizeS, config.FBaseGHz)
	m := StaticPowerW(config.SizeM, config.FBaseGHz)
	l := StaticPowerW(config.SizeL, config.FBaseGHz)
	if !(s < m && m < l) {
		t.Fatalf("static power not ordered: %g %g %g", s, m, l)
	}
}

func TestStaticPowerScalesWithVoltage(t *testing.T) {
	lo := StaticPowerW(config.SizeM, config.FMinGHz)
	hi := StaticPowerW(config.SizeM, config.FMaxGHz)
	if lo >= hi {
		t.Fatal("static power must grow with frequency (voltage)")
	}
	ratio := hi / lo
	want := config.Voltage(config.FMaxGHz) / config.Voltage(config.FMinGHz)
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("static power ratio %g, want voltage ratio %g", ratio, want)
	}
}

func TestMemEnergy(t *testing.T) {
	if MemEnergyJ(0) != 0 {
		t.Fatal("zero accesses cost nothing")
	}
	if got := MemEnergyJ(1000); math.Abs(got-1000*EMemAccessJ) > 1e-15 {
		t.Fatalf("MemEnergyJ(1000) = %g", got)
	}
}

func TestUncorePowerScalesWithCores(t *testing.T) {
	if UncorePowerW(4) != 2*UncorePowerW(2) {
		t.Fatal("uncore power must be linear in core count")
	}
	if UncorePowerW(1) <= 0 {
		t.Fatal("uncore power must be positive")
	}
}

func TestCoreEnergyComposition(t *testing.T) {
	const n, tNs = int64(1_000_000), 1e6
	got := CoreEnergyJ(config.SizeM, config.BaseFreqIdx, n, tNs)
	v := config.Voltage(config.FBaseGHz)
	want := DynEnergyJ(config.SizeM, v, n) + StaticPowerW(config.SizeM, config.FBaseGHz)*tNs*1e-9
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CoreEnergyJ = %g, want %g", got, want)
	}
}

func TestCoreEnergyMonotonicInFrequencyAtFixedTime(t *testing.T) {
	// For the same work and time, a higher VF point always costs more —
	// the quadratic DVFS penalty.
	prev := 0.0
	for fi := 0; fi < config.NumFreqs; fi++ {
		e := CoreEnergyJ(config.SizeM, fi, 1_000_000, 1e6)
		if e <= prev {
			t.Fatalf("energy not increasing with VF at index %d", fi)
		}
		prev = e
	}
}
