package experiments

import (
	"fmt"
	"io"
	"math"

	"qosrm/internal/bench"
	"qosrm/internal/cache"
	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// The co-simulator replays per-application database records and assumes
// that, under way partitioning, one application's LLC behaviour at
// allocation w is independent of its neighbours — the assumption that
// justifies the paper's per-application Sniper database. This experiment
// validates it directly: it interleaves two applications' access streams
// through the real shared, way-partitioned LLC and compares each
// application's observed miss rate against the single-application LRU
// profile at the same allocation.

// ValidateRow is one application of one partition point.
type ValidateRow struct {
	App        string
	Ways       int
	SharedMPKA float64 // misses per 1000 accesses in the shared, partitioned LLC
	SoloMPKA   float64 // same from the single-application profile
	RelError   float64
}

// ValidateReplay runs the partition-isolation validation for a pair of
// applications across a sweep of partitions.
func (c *Context) ValidateReplay(app1, app2 string, accesses int) ([]ValidateRow, error) {
	if accesses <= 0 {
		accesses = 20000
	}
	b1, err := bench.ByName(app1)
	if err != nil {
		return nil, err
	}
	b2, err := bench.ByName(app2)
	if err != nil {
		return nil, err
	}

	// Collect each application's LLC access stream (post-private-cache)
	// by walking its trace through a private hierarchy.
	streams := make([][]uint64, 2)
	for i, b := range []*bench.Benchmark{b1, b2} {
		s, err := llcStream(b.Phases[0].Params, accesses)
		if err != nil {
			return nil, err
		}
		streams[i] = s
	}

	var rows []ValidateRow
	for _, split := range [][2]int{{4, 12}, {8, 8}, {12, 4}} {
		llc, err := cache.NewPartitionedLLC(2)
		if err != nil {
			return nil, err
		}
		if err := llc.SetAllocation(split[:]); err != nil {
			return nil, err
		}
		// Interleave the two streams round-robin through the shared LLC.
		// Offsetting the second stream's addresses keeps the address
		// spaces disjoint, as separate processes would be.
		const offset = 1 << 40
		n := min(len(streams[0]), len(streams[1]))
		for i := 0; i < n; i++ {
			llc.Access(0, streams[0][i])
			llc.Access(1, streams[1][i]+offset)
		}
		for core, b := range []*bench.Benchmark{b1, b2} {
			solo, err := soloMissRate(streams[core], split[core])
			if err != nil {
				return nil, err
			}
			shared := float64(llc.Misses(core)) / float64(llc.Accesses(core)) * 1000
			row := ValidateRow{
				App:        b.Name,
				Ways:       split[core],
				SharedMPKA: shared,
				SoloMPKA:   solo,
			}
			if solo > 0 {
				row.RelError = math.Abs(shared-solo) / solo
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// llcStream extracts the first n LLC (post-L2) accesses of a stream.
func llcStream(p trace.Params, n int) ([]uint64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := trace.NewGenerator(p)
	h := cache.NewHierarchy()
	out := make([]uint64, 0, n)
	// Bound the instruction budget so low-MPKI streams terminate.
	for steps := 0; len(out) < n && steps < n*4096; steps++ {
		in := g.Next()
		if in.Kind != trace.KindLoad && in.Kind != trace.KindStore {
			continue
		}
		if r := h.Access(in.Addr); r.Level == 3 {
			out = append(out, in.Addr)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: stream produced no LLC accesses")
	}
	return out, nil
}

// soloMissRate measures misses per 1000 accesses of a stream in a
// private w-way LLC slice of the Table I per-core geometry, but
// interleaved at the shared cadence (every other slot idle), so the
// comparison isolates partition interference only.
func soloMissRate(stream []uint64, ways int) (float64, error) {
	sets := config.L3BytesPerCore / config.BlockBytes / config.L3WaysPerCore
	c, err := cache.New(sets*ways*config.BlockBytes, ways)
	if err != nil {
		return 0, err
	}
	misses := 0
	for _, addr := range stream {
		if !c.Access(addr) {
			misses++
		}
	}
	return float64(misses) / float64(len(stream)) * 1000, nil
}

// RenderValidate prints the comparison.
func RenderValidate(w io.Writer, rows []ValidateRow) {
	fmt.Fprintln(w, "VALIDATION: per-application replay vs real shared partitioned LLC")
	fmt.Fprintf(w, "%-12s %5s %14s %14s %9s\n", "app", "ways", "shared (MPKA)", "solo (MPKA)", "rel err")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %5d %14.1f %14.1f %8.1f%%\n",
			r.App, r.Ways, r.SharedMPKA, r.SoloMPKA, r.RelError*100)
	}
	fmt.Fprintln(w, "Small errors confirm way partitioning isolates applications, which is")
	fmt.Fprintln(w, "what justifies the paper's per-application simulation database.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
