package workload

import (
	"math"
	"reflect"
	"testing"

	"qosrm/internal/bench"
)

func TestScenarioCellsTileAllMixes(t *testing.T) {
	// The four scenarios must cover every unordered category pair
	// exactly once (the 10 cells of the Figure 1 upper triangle).
	seen := map[[2]bench.Category]int{}
	norm := func(a, b bench.Category) [2]bench.Category {
		if a > b {
			a, b = b, a
		}
		return [2]bench.Category{a, b}
	}
	for _, s := range Scenarios {
		for _, c := range s.Cells() {
			seen[norm(c.App1, c.App2)]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("scenarios cover %d distinct mixes, want 10", len(seen))
	}
	for mix, n := range seen {
		if n != 1 {
			t.Errorf("mix %v covered %d times", mix, n)
		}
	}
}

func TestScenarioWeightsMatchPaper(t *testing.T) {
	// Figure 1 / Section V-A: 47%, 22.1%, 22.1%, 8.8%.
	want := map[Scenario]float64{
		Scenario1: 0.470,
		Scenario2: 0.221,
		Scenario3: 0.221,
		Scenario4: 0.088,
	}
	total := 0.0
	for s, w := range want {
		got := s.Weight()
		if math.Abs(got-w) > 0.005 {
			t.Errorf("%s weight %.3f, want %.3f", s, got, w)
		}
		total += s.Weight()
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("scenario weights sum to %.4f", total)
	}
}

func TestMixProbabilityExamples(t *testing.T) {
	// Figure 1 cell values: CS-PS diagonal 3.4%, CI-PI diagonal 8.8%,
	// CI-PI×CS-PS 5.5% (doubled off-diagonal).
	cases := []struct {
		a, b bench.Category
		want float64
	}{
		{bench.CSPS, bench.CSPS, 25.0 / 729},
		{bench.CIPI, bench.CIPI, 64.0 / 729},
		{bench.CIPI, bench.CSPS, 2 * 40.0 / 729},
		{bench.CSPI, bench.CIPS, 2 * 49.0 / 729},
	}
	for _, c := range cases {
		if got := MixProbability(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P(%s,%s) = %.4f, want %.4f", c.a, c.b, got, c.want)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Scenario1, 3, 1, 1); err == nil {
		t.Error("odd core count must fail")
	}
	if _, err := Generate(Scenario1, 0, 1, 1); err == nil {
		t.Error("zero cores must fail")
	}
	if _, err := Generate(Scenario1, 4, 0, 1); err == nil {
		t.Error("zero count must fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Scenario1, 4, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(Scenario1, 4, 6, 42)
	if !reflect.DeepEqual(names(a), names(b)) {
		t.Fatal("same seed must generate identical workloads")
	}
	c, _ := Generate(Scenario1, 4, 6, 43)
	if reflect.DeepEqual(names(a), names(c)) {
		t.Fatal("different seeds should differ")
	}
}

func names(ws []Workload) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		for _, a := range w.Apps {
			out[i] = append(out[i], a.Name)
		}
	}
	return out
}

func TestGenerateRespectsScenarioCells(t *testing.T) {
	for _, s := range Scenarios {
		ws, err := Generate(s, 4, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			if len(w.Apps) != 4 {
				t.Fatalf("%s: %d apps", w.Name, len(w.Apps))
			}
			// Each half must come from one category of one of the
			// scenario's cells.
			firstCat := w.Apps[0].Category
			secondCat := w.Apps[2].Category
			ok := false
			for _, cell := range s.Cells() {
				if cell.App1 == firstCat && cell.App2 == secondCat {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s: halves (%s, %s) not a %s cell", w.Name, firstCat, secondCat, s)
			}
			for _, a := range w.Apps[:2] {
				if a.Category != firstCat {
					t.Errorf("%s: first half mixes categories", w.Name)
				}
			}
			for _, a := range w.Apps[2:] {
				if a.Category != secondCat {
					t.Errorf("%s: second half mixes categories", w.Name)
				}
			}
		}
	}
}

func TestGenerateCoverage(t *testing.T) {
	// Section IV-C: generation continues until every application has
	// been selected at least once. With round-robin pools, six 8-core
	// workloads per scenario cover each scenario's pools.
	used := map[string]bool{}
	for _, s := range Scenarios {
		ws, err := Generate(s, 8, 6, 20)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			for _, a := range w.Apps {
				used[a.Name] = true
			}
		}
	}
	for _, b := range bench.Suite() {
		if !used[b.Name] {
			t.Errorf("application %s never selected across all workloads", b.Name)
		}
	}
}

func TestTwoCoreExamples(t *testing.T) {
	ex := TwoCoreExamples()
	if len(ex) != 4 {
		t.Fatalf("%d examples, want 4", len(ex))
	}
	for i, w := range ex {
		if w.Scenario != Scenarios[i] {
			t.Errorf("example %d scenario %s, want %s", i, w.Scenario, Scenarios[i])
		}
		if len(w.Apps) != 2 {
			t.Errorf("example %s has %d apps", w.Name, len(w.Apps))
		}
	}
	// The S1 example must pair a recipient from CS-PS per the scenario.
	if ex[0].Apps[1].Category != bench.CSPS {
		t.Error("S1 example's second application must be CS-PS")
	}
	if ex[3].Apps[0].Category != bench.CIPI || ex[3].Apps[1].Category != bench.CIPI {
		t.Error("S4 example must be CI-PI × CI-PI")
	}
}

func TestScenarioString(t *testing.T) {
	if Scenario1.String() != "S1" || Scenario4.String() != "S4" {
		t.Error("scenario names wrong")
	}
}

func TestMixProbabilitiesSumToOne(t *testing.T) {
	// Property: the 10 unordered category mixes partition the space of
	// random two-application draws, so their probabilities sum to 1.
	total := 0.0
	for i, a := range bench.Categories {
		for _, b := range bench.Categories[i:] {
			total += MixProbability(a, b)
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("mix probabilities sum to %.12f, want 1", total)
	}
	// And the scenario weights — sums of disjoint cell masses — must
	// total ≈100%.
	w := 0.0
	for _, s := range Scenarios {
		w += s.Weight()
	}
	if math.Abs(w-1) > 1e-12 {
		t.Errorf("scenario weights sum to %.12f, want 1", w)
	}
}

func TestGeneratePoolCoverageProperty(t *testing.T) {
	// Property (Section IV-C): across a generated workload set, every
	// application of every pool a scenario draws from appears at least
	// once — the round-robin pools guarantee it once enough picks have
	// been dealt, for any seed.
	for seed := int64(1); seed <= 8; seed++ {
		for _, s := range Scenarios {
			ws, err := Generate(s, 8, 12, seed)
			if err != nil {
				t.Fatal(err)
			}
			used := map[string]bool{}
			for _, w := range ws {
				for _, a := range w.Apps {
					used[a.Name] = true
				}
			}
			pools := map[bench.Category]bool{}
			for _, c := range s.Cells() {
				pools[c.App1] = true
				pools[c.App2] = true
			}
			for cat, members := range bench.ByCategory() {
				if !pools[cat] {
					continue
				}
				for _, b := range members {
					if !used[b.Name] {
						t.Errorf("seed %d %s: pool member %s never selected", seed, s, b.Name)
					}
				}
			}
		}
	}
}

func TestGenerateChurnValidation(t *testing.T) {
	if _, err := GenerateChurn(Scenario1, 3, 2, 1); err == nil {
		t.Error("odd core count must fail")
	}
	if _, err := GenerateChurn(Scenario1, 4, 0, 1); err == nil {
		t.Error("zero depth must fail")
	}
}

func TestGenerateChurnDeterministic(t *testing.T) {
	a, err := GenerateChurn(Scenario1, 4, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateChurn(Scenario1, 4, 3, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must generate identical schedules")
	}
	c, _ := GenerateChurn(Scenario1, 4, 3, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateChurnShape(t *testing.T) {
	const cores, depth = 4, 5
	for _, s := range Scenarios {
		qs, err := GenerateChurn(s, cores, depth, 11)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) != cores {
			t.Fatalf("%s: %d queues, want %d", s, len(qs), cores)
		}
		cells := s.Cells()
		alphaPool := map[float64]bool{}
		for _, a := range churnAlphas {
			alphaPool[a] = true
		}
		for c, q := range qs {
			if len(q) != depth {
				t.Fatalf("%s core %d: %d entries, want %d", s, c, len(q), depth)
			}
			for k, e := range q {
				// Wave k draws from cell k (cycling): first half of the
				// cores from App1's pool, second half from App2's.
				cell := cells[k%len(cells)]
				want := cell.App1
				if c >= cores/2 {
					want = cell.App2
				}
				if e.App.Category != want {
					t.Errorf("%s core %d wave %d: app %s of %s, want %s",
						s, c, k, e.App.Name, e.App.Category, want)
				}
				if !alphaPool[e.Alpha] {
					t.Errorf("alpha %v outside the churn pool", e.Alpha)
				}
				if e.WorkFrac < 0.2 || e.WorkFrac >= 0.5 {
					t.Errorf("work fraction %v outside [0.2, 0.5)", e.WorkFrac)
				}
				lo := float64(k) / depth
				hi := (float64(k) + 0.5) / depth
				if k == 0 {
					lo, hi = 0, 0
				}
				if e.ArrivalFrac < lo || e.ArrivalFrac > hi {
					t.Errorf("wave %d arrival %v outside [%v, %v]", k, e.ArrivalFrac, lo, hi)
				}
			}
		}
	}
}
