package db

import (
	"testing"

	"qosrm/internal/bench"
)

// TestFullSuiteClassificationMatchesTableII is the repository's central
// calibration guarantee: measured with the production trace length, all
// 27 applications land in their paper-assigned Table II categories.
// It is the slowest test in the repository (~2 s) and runs the full
// detailed-simulation sweep.
func TestFullSuiteClassificationMatchesTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite calibration check skipped in -short mode")
	}
	d, err := Build(bench.Suite(), Options{TraceLen: 65536, Warmup: 16384})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bench.Suite() {
		cat, m, err := d.Classify(b)
		if err != nil {
			t.Fatal(err)
		}
		if cat != b.Category {
			t.Errorf("%s: classified %s, want %s (MPKI %.2f/%.2f/%.2f MLP %.2f/%.2f/%.2f)",
				b.Name, cat, b.Category, m.MPKI4, m.MPKI8, m.MPKI12, m.MLPS, m.MLPM, m.MLPL)
		}
	}
}
