package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qosrm/internal/cluster"
	"qosrm/internal/dbstore"
	"qosrm/internal/faultinject"
	"qosrm/internal/scenario"
)

// TestForwardTrailMultiHopRing: in a ring where every node knows only
// its successor (a → b → c → a), a submit at a saturated a hops through
// a saturated b and lands on c — the trail carries both visited nodes,
// so the deeper origin comes back to the caller. With c saturated too,
// the trail stops the batch after one visit per node: no loop, an
// honest 503 at the entry point.
func TestForwardTrailMultiHopRing(t *testing.T) {
	lnA, urlA := reserveNode(t)
	lnB, urlB := reserveNode(t)
	lnC, urlC := reserveNode(t)
	mk := func(id string, depth int, peer string) *Server {
		t.Helper()
		srv, err := New(sharedDB(t), Options{
			Workers: 1, QueueDepth: depth, NodeID: id,
			Peers: []string{peer}, GossipInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	// Gossip is off so each node's rotation stays exactly its ring
	// successor — the multi-hop path is forced, not load-ranked away.
	srvA := mk("ring-a", 2, urlB)
	srvB := mk("ring-b", 2, urlC)
	srvC := mk("ring-c", 10, urlA)
	serveNode(t, srvA, lnA)
	serveNode(t, srvB, lnB)
	serveNode(t, srvC, lnC)
	fillQueue(srvA, 2)
	fillQueue(srvB, 2)

	spec := testSpec("ring-hop2")
	resp, raw, st := submitJob(t, urlA, "", []scenario.Spec{spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("two-hop submit: %d %s", resp.StatusCode, raw)
	}
	if st.Origin != urlC {
		t.Fatalf("origin %q, want the second-hop node %q", st.Origin, urlC)
	}
	done := waitJobDone(t, srvC, st.ID)
	want, err := scenario.RunCtx(context.Background(), sharedDB(t), &spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone || !reflect.DeepEqual(done.Reports[0], want) {
		t.Fatal("two-hop forwarded report differs from a direct run")
	}
	if a, b := srvA.metrics.jobsForwarded.Load(), srvB.metrics.jobsForwarded.Load(); a != 1 || b != 1 {
		t.Fatalf("jobs_forwarded a=%d b=%d, want 1 and 1 (one hop each)", a, b)
	}
	if b, c := srvB.metrics.forwardReceived.Load(), srvC.metrics.forwardReceived.Load(); b != 0 || c != 1 {
		t.Fatalf("forward_received b=%d c=%d, want 0 and 1 (only the admitting node receives)", b, c)
	}

	// Saturate c as well: a → b → c, then c's only peer (a) is already
	// on the trail, so the ring terminates with every node visited
	// exactly once.
	fillQueue(srvC, 10)
	resp2, raw2, _ := submitJob(t, urlA, "", []scenario.Spec{testSpec("ring-503")})
	if resp2.StatusCode != http.StatusServiceUnavailable || !strings.Contains(raw2, `"reason":"queue_full"`) {
		t.Fatalf("saturated ring: %d %s, want 503 queue_full", resp2.StatusCode, raw2)
	}
	for _, n := range []struct {
		name string
		srv  *Server
	}{{"a", srvA}, {"b", srvB}, {"c", srvC}} {
		if got := n.srv.metrics.requests[routeJobs].Load(); got != 2 {
			t.Fatalf("node %s saw %d submits across both rounds, want 2 (trail must stop revisits)", n.name, got)
		}
		if got := n.srv.metrics.forwardFailed.Load(); got != 1 {
			t.Fatalf("node %s forward_failures %d, want 1 from the saturated round", n.name, got)
		}
	}
}

// TestGossipDiscoversExpelsAndReadmits is the membership lifecycle over
// real HTTP: b and c seed only a, yet discover each other through a's
// gossip; a killed node is expelled from every rotation within the
// suspect window; the same identity rebooting at the same address
// refutes its death rumor and is readmitted — no other node restarts.
func TestGossipDiscoversExpelsAndReadmits(t *testing.T) {
	lnA, urlA := reserveNode(t)
	lnB, urlB := reserveNode(t)
	lnC, urlC := reserveNode(t)
	opts := func(id, url string, seeds ...string) Options {
		return Options{
			Workers: 1, NodeID: id, Advertise: url, Peers: seeds,
			GossipInterval: 25 * time.Millisecond, SuspectTimeout: 150 * time.Millisecond,
		}
	}
	srvA, err := New(sharedDB(t), opts("gsp-a", urlA))
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := New(sharedDB(t), opts("gsp-b", urlB, urlA))
	if err != nil {
		t.Fatal(err)
	}
	srvC, err := New(sharedDB(t), opts("gsp-c", urlC, urlA))
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvA, lnA)
	serveNode(t, srvB, lnB)
	hsC := &http.Server{Handler: srvC.Handler()}
	go hsC.Serve(lnC)
	var killCOnce sync.Once
	killC := func() { killCOnce.Do(func() { hsC.Close(); srvC.Close() }) }
	t.Cleanup(killC)

	waitFor := func(desc string, d time.Duration, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	want := []string{"gsp-a", "gsp-b", "gsp-c"}
	inRotation := func(srv *Server, addr string) bool {
		for _, m := range srv.cluster.Rotation() {
			if m.Addr == addr {
				return true
			}
		}
		return false
	}
	waitFor("transitive discovery", 5*time.Second, func() bool {
		return reflect.DeepEqual(srvA.cluster.Live(), want) &&
			reflect.DeepEqual(srvB.cluster.Live(), want) &&
			reflect.DeepEqual(srvC.cluster.Live(), want)
	})
	// b and c never seeded each other, yet each ended in the other's
	// forwarding rotation — membership travelled through a.
	if !inRotation(srvB, urlC) || !inRotation(srvC, urlB) {
		t.Fatal("transitively discovered members missing from rotations")
	}

	// Abrupt death: connections cut, nothing drained.
	killC()
	waitFor("expulsion of the dead node", 5*time.Second, func() bool {
		_, _, da := srvA.cluster.Counts()
		_, _, db := srvB.cluster.Counts()
		return da >= 1 && db >= 1 && !inRotation(srvA, urlC) && !inRotation(srvB, urlC)
	})

	// Reboot at the same address with the same identity. Survivors keep
	// probing the dead address, so the rejoin is noticed and the death
	// rumor refuted without anyone else restarting.
	var lnC2 net.Listener
	waitFor("listener reuse", 2*time.Second, func() bool {
		ln, lerr := net.Listen("tcp", lnC.Addr().String())
		if lerr != nil {
			return false
		}
		lnC2 = ln
		return true
	})
	srvC2, err := New(sharedDB(t), opts("gsp-c", urlC, urlA))
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvC2, lnC2)
	waitFor("readmission after reboot", 5*time.Second, func() bool {
		return reflect.DeepEqual(srvA.cluster.Live(), want) &&
			reflect.DeepEqual(srvB.cluster.Live(), want) &&
			reflect.DeepEqual(srvC2.cluster.Live(), want)
	})
	if !inRotation(srvA, urlC) || !inRotation(srvB, urlC) {
		t.Fatal("rejoined node missing from rotations")
	}
}

// TestForwardedKeysExpireWithJobTTL: the forwarded-key references a node
// keeps for idempotent replay are swept by the same TTL GC as local
// jobs — a long-lived forwarding node does not leak a ref per key.
func TestForwardedKeysExpireWithJobTTL(t *testing.T) {
	lnB, _ := reserveNode(t)
	srvB, err := New(sharedDB(t), Options{Workers: 1, GossipInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvB, lnB)
	urlB := "http://" + lnB.Addr().String()

	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	lnA, urlA := reserveNode(t)
	srvA, err := New(sharedDB(t), Options{
		Workers: 1, QueueDepth: 2, JobTTL: time.Hour,
		Peers: []string{urlB}, GossipInterval: -1, clock: clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvA, lnA)
	fillQueue(srvA, 2)

	const key = "fwd-ttl-key"
	resp, raw, st := submitJob(t, urlA, key, []scenario.Spec{testSpec("fwd-ttl")})
	if resp.StatusCode != http.StatusAccepted || st.Origin != urlB {
		t.Fatalf("forwarded submit: %d %s", resp.StatusCode, raw)
	}
	waitJobDone(t, srvB, st.ID)

	// Within the TTL a GC pass keeps the ref and the key still resolves.
	srvA.gcFinishedJobs(clock.now())
	if got, ok := srvA.forwardedByKey(context.Background(), key); !ok || got.ID != st.ID {
		t.Fatalf("fresh forwarded key did not resolve (ok=%v)", ok)
	}

	// Past the TTL the ref is gone, on the same clock the job GC uses.
	clock.advance(time.Hour + time.Minute)
	srvA.gcFinishedJobs(clock.now())
	srvA.mu.Lock()
	_, still := srvA.forwardedKeys[key]
	srvA.mu.Unlock()
	if still {
		t.Fatal("forwarded key survived the job-TTL sweep")
	}
	if _, ok := srvA.forwardedByKey(context.Background(), key); ok {
		t.Fatal("expired forwarded key still resolves")
	}
}

// TestPeerProbeSingleFlight: concurrent rankers share one health probe
// per peer per TTL instead of stacking probes — a submit storm must not
// multiply into a healthz storm on the peers.
func TestPeerProbeSingleFlight(t *testing.T) {
	srvB, tsB := newTestServer(t, Options{})
	lnA, _ := reserveNode(t)
	srvA, err := New(sharedDB(t), Options{Workers: 1, Peers: []string{tsB.URL}, GossipInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvA, lnA)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srvA.forwarder.load(context.Background(), tsB.URL)
		}()
	}
	wg.Wait()
	if got := srvB.metrics.requests[routeHealth].Load(); got != 1 {
		t.Fatalf("8 concurrent rankers cost %d health polls, want 1 (single-flight)", got)
	}
	// The probe resolved the peer's node identity out of band: the seed
	// address is a real member before any gossip round ran.
	rot := srvA.cluster.Rotation()
	if len(rot) != 1 || rot[0].ID != srvB.opts.NodeID {
		t.Fatalf("health probe did not resolve the seed's identity: %+v", rot)
	}
}

// TestPeerProbeStalledPeerDoesNotBlockOthers pins the fix for the probe
// serialization bug: the forwarder must not hold its lock across the
// network call, so one stalled peer never delays probes of healthy
// ones, and rank probes its candidates concurrently.
func TestPeerProbeStalledPeerDoesNotBlockOthers(t *testing.T) {
	old := probeTimeout
	probeTimeout = 100 * time.Millisecond
	t.Cleanup(func() { probeTimeout = old })

	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	t.Cleanup(stalled.Close)
	_, tsB := newTestServer(t, Options{})
	lnA, _ := reserveNode(t)
	srvA, err := New(sharedDB(t), Options{
		Workers: 1, Peers: []string{stalled.URL, tsB.URL}, GossipInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvA, lnA)

	// Park a probe on the stalled peer...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srvA.forwarder.load(ctx, stalled.URL)
	}()
	t.Cleanup(wg.Wait)
	time.Sleep(20 * time.Millisecond)

	// ...and probe the healthy one: it must answer immediately.
	start := time.Now()
	if _, err := srvA.forwarder.load(context.Background(), tsB.URL); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("healthy-peer probe took %s behind a stalled peer", d)
	}

	// rank sees both candidates; the stalled one costs probeTimeout, in
	// parallel with (not ahead of) the healthy one.
	start = time.Now()
	peers := srvA.forwarder.rank(context.Background(), map[string]bool{})
	if len(peers) != 1 || peers[0].base != tsB.URL {
		t.Fatalf("rank = %+v, want only the healthy peer", peers)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("rank took %s with one stalled peer, want ~probeTimeout", d)
	}
}

// TestSnapshotJoinFetchVerifyPersist: a joining node with no local
// database fetches the snapshot from a seed, verifies it end to end
// with the dbstore loader, persists it for the next boot, and serves
// the identical build. Bad seeds — unreachable, truncated stream,
// failpoint-broken — are skipped or surfaced, never trusted.
func TestSnapshotJoinFetchVerifyPersist(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	srvA, tsA := newTestServer(t, Options{})
	path := filepath.Join(t.TempDir(), "join.qosdb")
	ctx := context.Background()

	// An unreachable seed is skipped; the live one serves.
	d, seed, err := FetchSnapshot(ctx, path, []string{"http://127.0.0.1:1", tsA.URL})
	if err != nil {
		t.Fatal(err)
	}
	if seed != tsA.URL {
		t.Fatalf("served by %q, want %q", seed, tsA.URL)
	}
	if got := srvA.metrics.snapshotsServed.Load(); got != 1 {
		t.Fatalf("snapshots_served_total %d, want 1", got)
	}

	// The fetched database is the seed's build, and the node booted on
	// it would gossip the identical params hash.
	srvJ, err := New(d, Options{Workers: 1, GossipInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srvJ.Close()
	if srvJ.paramsHash != srvA.paramsHash {
		t.Fatalf("fetched build hash %s, seed serves %s", srvJ.paramsHash, srvA.paramsHash)
	}

	// The persisted copy boots the next process warm via a plain load.
	d2, _, err := dbstore.Load(path)
	if err != nil {
		t.Fatalf("persisted snapshot does not load: %v", err)
	}
	if got := fmt.Sprintf("%016x", dbstore.ParamsHash(d2)); got != srvA.paramsHash {
		t.Fatalf("persisted build hash %s, want %s", got, srvA.paramsHash)
	}

	// A seed streaming truncated bytes fails CRC verification and the
	// fetch falls through to the next seed.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(raw[:len(raw)-8])
	}))
	t.Cleanup(trunc.Close)
	if _, seed, err = FetchSnapshot(ctx, "", []string{trunc.URL, tsA.URL}); err != nil || seed != tsA.URL {
		t.Fatalf("truncated seed not skipped: seed %q err %v", seed, err)
	}

	// The serve-side failpoint turns the endpoint into a 500 — the chaos
	// hook CI arms — and the fetch reports it instead of trusting bytes.
	faultinject.Enable(fpSnapshot, "error")
	if _, _, err := FetchSnapshot(ctx, "", []string{tsA.URL}); err == nil {
		t.Fatal("fetch succeeded against a broken snapshot endpoint")
	}
	faultinject.Enable(fpSnapshot, "off")

	// The fetch-side failpoint fails one attempt; the next seed serves.
	faultinject.Enable(fpFetch, "error*1")
	if _, _, err := FetchSnapshot(ctx, "", []string{tsA.URL, tsA.URL}); err != nil {
		t.Fatalf("fetch did not fall through the failpointed seed: %v", err)
	}
}

// TestClusterExchangeRefusesParamsMismatch: a node serving a different
// database build is refused at the gossip layer with 409
// cluster_mismatch and never enters the membership; a matching node is
// admitted and answered with this node's view.
func TestClusterExchangeRefusesParamsMismatch(t *testing.T) {
	srvA, tsA := newTestServer(t, Options{})
	bad := cluster.Exchange{From: cluster.Member{
		ID: "imposter", Addr: "http://127.0.0.1:1", Incarnation: 1,
		State: cluster.StateAlive, ParamsHash: strings.Repeat("0", 16),
	}}
	code, body := postJSON(t, tsA.URL+"/v1/cluster", &bad, nil)
	if code != http.StatusConflict || !strings.Contains(body, ReasonClusterMismatch) {
		t.Fatalf("mismatched exchange: %d %s, want 409 %s", code, body, ReasonClusterMismatch)
	}
	if a, s, dd := srvA.cluster.Counts(); a+s+dd != 0 {
		t.Fatal("mismatched node entered the membership")
	}

	good := cluster.Exchange{From: cluster.Member{
		ID: "kin", Addr: "http://127.0.0.1:2", Incarnation: 1,
		State: cluster.StateAlive, ParamsHash: srvA.paramsHash,
	}}
	var view cluster.Exchange
	if code, body := postJSON(t, tsA.URL+"/v1/cluster", &good, &view); code != http.StatusOK {
		t.Fatalf("matching exchange refused: %d %s", code, body)
	}
	if view.From.ID != srvA.cluster.ID() {
		t.Fatalf("exchange answered by %q, want this node's view", view.From.ID)
	}
	if a, _, _ := srvA.cluster.Counts(); a != 1 {
		t.Fatal("matching node not admitted alive")
	}
}

// partitionCtrl is the switchboard the chaos test cuts links on.
// Cluster-facing requests from a named node to a blocked host fail at
// the transport — exactly what a network partition looks like to the
// gossip and forwarding paths — while the harness's own client traffic
// uses the default transport and still reaches every node.
type partitionCtrl struct {
	mu      sync.Mutex
	blocked map[string]bool // "node->host:port"
}

func (c *partitionCtrl) cut(node, host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.blocked == nil {
		c.blocked = make(map[string]bool)
	}
	c.blocked[node+"->"+host] = true
}

func (c *partitionCtrl) heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocked = make(map[string]bool)
}

func (c *partitionCtrl) isBlocked(node, host string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocked[node+"->"+host]
}

type partitionTransport struct {
	node string
	ctrl *partitionCtrl
}

func (p *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if p.ctrl.isBlocked(p.node, req.URL.Host) {
		return nil, fmt.Errorf("partitioned: %s cannot reach %s", p.node, req.URL.Host)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestClusterChaosThreeNodes is the cluster-level crash drill: three
// journaled gossiping nodes under queue pressure take keyed submissions
// while one is SIGKILL-style killed mid-wave and rebooted from its
// journal, another is partitioned from the rest and healed, and a burst
// of gossip loss rattles the failure detector. Afterwards membership
// reconverges, every accepted job resolves on its origin with a report
// bit-identical to an uninterrupted direct run, and replaying any key
// at its origin returns the same job — zero lost, zero duplicated.
func TestClusterChaosThreeNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-time chaos drill")
	}
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	type node struct {
		name, id, url, addr, jnl string
		hs                       *http.Server
		srv                      *Server
		up                       atomic.Bool
	}
	dir := t.TempDir()
	ctrl := &partitionCtrl{}
	nodes := make([]*node, 3)
	lns := make([]net.Listener, 3)
	for i, name := range []string{"a", "b", "c"} {
		ln, url := reserveNode(t)
		lns[i] = ln
		nodes[i] = &node{
			name: name, id: "chaos-" + name, url: url,
			addr: ln.Addr().String(), jnl: filepath.Join(dir, name+".jnl"),
		}
	}
	byURL := map[string]*node{}
	for _, n := range nodes {
		byURL[n.url] = n
	}
	peersOf := func(i int) (seeds []string) {
		for j, n := range nodes {
			if j != i {
				seeds = append(seeds, n.url)
			}
		}
		return seeds
	}
	boot := func(i int, ln net.Listener) {
		t.Helper()
		n := nodes[i]
		if ln == nil {
			deadline := time.Now().Add(5 * time.Second)
			for {
				var lerr error
				if ln, lerr = net.Listen("tcp", n.addr); lerr == nil {
					break
				} else if time.Now().After(deadline) {
					t.Fatalf("relisten %s: %v", n.addr, lerr)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		srv, err := New(sharedDB(t), Options{
			Workers: 2, QueueDepth: 3, JobTTL: time.Hour,
			JournalPath: n.jnl, NodeID: n.id, Advertise: n.url, Peers: peersOf(i),
			GossipInterval: 25 * time.Millisecond, SuspectTimeout: 200 * time.Millisecond,
			transport: &partitionTransport{node: n.name, ctrl: ctrl},
		})
		if err != nil {
			t.Fatal(err)
		}
		n.srv = srv
		n.hs = &http.Server{Handler: srv.Handler()}
		n.up.Store(true)
		go n.hs.Serve(ln)
	}
	kill := func(i int) {
		n := nodes[i]
		if !n.up.CompareAndSwap(true, false) {
			return
		}
		n.hs.Close()
		n.srv.Close()
	}
	t.Cleanup(func() {
		for i := range nodes {
			kill(i)
		}
	})
	for i := range nodes {
		boot(i, lns[i])
	}

	waitFor := func(desc string, d time.Duration, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(15 * time.Millisecond)
		}
	}
	wantLive := []string{"chaos-a", "chaos-b", "chaos-c"}
	converged := func() bool {
		for _, n := range nodes {
			if n.up.Load() && !reflect.DeepEqual(n.srv.cluster.Live(), wantLive) {
				return false
			}
		}
		return true
	}
	waitFor("initial convergence", 10*time.Second, converged)

	// Real queue pressure so waves overflow and forward: every scenario
	// run stalls a beat on the worker failpoint.
	faultinject.Enable("server.worker", "stall:20ms")

	type handle struct{ key, spec, origin, id string }
	var (
		hmu     sync.Mutex
		handles []handle
	)
	trySubmit := func(base, key string, specs []scenario.Spec) (int, JobStatus, error) {
		data, err := json.Marshal(JobRequest{Specs: specs})
		if err != nil {
			return 0, JobStatus{}, err
		}
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(data))
		if err != nil {
			return 0, JobStatus{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, JobStatus{}, err
		}
		defer resp.Body.Close()
		var st JobStatus
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				return 0, JobStatus{}, err
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode, st, nil
	}
	submit := func(key, specName string, prefer int) {
		specs := []scenario.Spec{testSpec(specName)}
		deadline := time.Now().Add(15 * time.Second)
		for attempt := 0; ; attempt++ {
			n := nodes[(prefer+attempt)%len(nodes)]
			if n.up.Load() {
				if code, st, err := trySubmit(n.url, key, specs); err == nil && code == http.StatusAccepted {
					origin := st.Origin
					if origin == "" {
						origin = n.url
					}
					hmu.Lock()
					handles = append(handles, handle{key: key, spec: specName, origin: origin, id: st.ID})
					hmu.Unlock()
					return
				}
			}
			if time.Now().After(deadline) {
				t.Errorf("submit %s found no taker", key)
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	wave := func(tag string, count, prefer int) {
		for k := 0; k < count; k++ {
			submit(fmt.Sprintf("%s-%d", tag, k), fmt.Sprintf("chaos-%s-%d", tag, k), prefer+k)
		}
	}

	wave("w1", 4, 0)

	// SIGKILL-style: node b vanishes mid-wave — connections cut, queue
	// not drained — and the survivors expel it within the suspect window.
	doneCh := make(chan struct{})
	go func() { defer close(doneCh); wave("w2", 4, 0) }()
	time.Sleep(30 * time.Millisecond)
	kill(1)
	<-doneCh
	waitFor("expulsion of killed node", 5*time.Second, func() bool {
		_, _, da := nodes[0].srv.cluster.Counts()
		_, _, dc := nodes[2].srv.cluster.Counts()
		return da >= 1 && dc >= 1
	})
	wave("w3", 3, 2)

	// b reboots from its journal under the same identity: the rejoin
	// refutes its own death rumor; nothing else restarts.
	boot(1, nil)
	waitFor("readmission of rebooted node", 10*time.Second, converged)

	// Partition c from a and b, cluster traffic only.
	ctrl.cut("c", nodes[0].addr)
	ctrl.cut("c", nodes[1].addr)
	ctrl.cut("a", nodes[2].addr)
	ctrl.cut("b", nodes[2].addr)
	waitFor("partition detected on both sides", 5*time.Second, func() bool {
		_, _, da := nodes[0].srv.cluster.Counts()
		_, _, dc := nodes[2].srv.cluster.Counts()
		return da >= 1 && dc >= 2
	})
	wave("w4", 3, 0)
	ctrl.heal()

	// A burst of dropped gossip on every node: the detector wobbles and
	// the probes that follow re-ack everyone.
	faultinject.Enable(fpGossip, "error*30")
	time.Sleep(150 * time.Millisecond)
	faultinject.Enable(fpGossip, "off")

	waitFor("final convergence", 10*time.Second, converged)
	faultinject.Enable("server.worker", "off")

	// Zero lost: every accepted handle resolves on its origin with a
	// report bit-identical to an uninterrupted direct run.
	refs := map[string]*scenario.Report{}
	for _, h := range handles {
		if _, ok := refs[h.spec]; ok {
			continue
		}
		spec := testSpec(h.spec)
		want, err := scenario.RunCtx(context.Background(), sharedDB(t), &spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[h.spec] = want
	}
	for _, h := range handles {
		origin := byURL[h.origin]
		if origin == nil {
			t.Fatalf("job %s reports origin %q, not a cluster node", h.key, h.origin)
		}
		st := waitJobDone(t, origin.srv, h.id)
		if st.State != JobDone || len(st.Reports) != 1 || !reflect.DeepEqual(st.Reports[0], refs[h.spec]) {
			t.Fatalf("job %s on %s: state %s, report diverges from direct run", h.key, h.origin, st.State)
		}
	}
	// Zero duplicated: replaying any key at its origin returns the same
	// job, not a second admission.
	for _, h := range handles {
		code, st, err := trySubmit(h.origin, h.key, []scenario.Spec{testSpec(h.spec)})
		if err != nil || code != http.StatusAccepted || st.ID != h.id {
			t.Fatalf("key %s replay at origin: code %d id %q err %v, want %s", h.key, code, st.ID, err, h.id)
		}
	}
}
