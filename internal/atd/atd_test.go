package atd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qosrm/internal/cache"
	"qosrm/internal/config"
)

func TestNewSampleShift(t *testing.T) {
	if _, err := New(0); err != nil {
		t.Fatalf("full sampling must work: %v", err)
	}
	if _, err := New(2); err != nil {
		t.Fatalf("1/4 sampling must work: %v", err)
	}
	if _, err := New(30); err == nil {
		t.Fatal("sampling away every set must fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic")
		}
	}()
	MustNew(30)
}

// TestMissCurveMatchesLRUStack: with full sampling and an access stream
// in a fixed order, the ATD's miss estimate for allocation w must equal
// the exact count from an LRU stack (inclusion property).
func TestMissCurveMatchesLRUStack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustNew(0)
		sets := config.L3BytesPerCore / config.BlockBytes / config.L3WaysPerCore
		ref := cache.MustNewLRUStack(sets, config.MaxWays)
		misses := make([]int64, config.MaxWays+1)
		for i := 0; i < 4000; i++ {
			addr := uint64(rng.Intn(2048)) * config.BlockBytes
			a.Access(addr, int64(i), true)
			pos := ref.Access(addr)
			for w := config.MinWays; w <= config.MaxWays; w++ {
				if pos == 0 || pos > w {
					misses[w]++
				}
			}
		}
		for w := config.MinWays; w <= config.MaxWays; w++ {
			if a.Misses(w) != misses[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestMissCurveMonotonicInWays(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustNew(0)
		for i := 0; i < 3000; i++ {
			a.Access(uint64(rng.Intn(4096))*config.BlockBytes, int64(i), rng.Intn(2) == 0)
		}
		prev := a.Misses(config.MinWays)
		for w := config.MinWays + 1; w <= config.MaxWays; w++ {
			m := a.Misses(w)
			if m > prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestLMMonotonicInCoreSize: a larger window can only merge more misses
// into overlap groups, so LM(S) ≥ LM(M) ≥ LM(L) for any stream.
func TestLMMonotonicInCoreSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustNew(0)
		idx := int64(0)
		for i := 0; i < 2000; i++ {
			idx += int64(1 + rng.Intn(40))
			a.Access(uint64(rng.Intn(4096))*config.BlockBytes, idx, true)
		}
		for w := config.MinWays; w <= config.MaxWays; w++ {
			s := a.LeadingMisses(config.SizeS, w)
			m := a.LeadingMisses(config.SizeM, w)
			l := a.LeadingMisses(config.SizeL, w)
			if s < m || m < l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestLMBoundedByMisses: leading misses can never exceed total misses,
// and MLP is therefore ≥ 1.
func TestLMBoundedByMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := MustNew(0)
	idx := int64(0)
	for i := 0; i < 5000; i++ {
		idx += int64(1 + rng.Intn(25))
		a.Access(uint64(rng.Intn(8192))*config.BlockBytes, idx, true)
	}
	for _, c := range config.Sizes {
		for w := config.MinWays; w <= config.MaxWays; w++ {
			lm := a.LeadingMisses(c, w)
			if lm > a.Misses(w) {
				t.Fatalf("LM(%s,%d)=%d exceeds misses %d", c, w, lm, a.Misses(w))
			}
			if a.MLP(c, w) < 1 {
				t.Fatalf("MLP(%s,%d)=%.3f < 1", c, w, a.MLP(c, w))
			}
		}
	}
}

// TestFig4Example reproduces the paper's worked example (Figure 4).
func TestFig4Example(t *testing.T) {
	a := MustNew(0)
	// Four loads, all missing; arrival order LD1, LD3, LD2, LD4 with
	// instruction indices 5, 33, 20, 90.
	addrs := []uint64{0, 1 << 20, 2 << 20, 3 << 20}
	idxs := []int64{5, 33, 20, 90}
	for i := range addrs {
		a.Access(addrs[i], idxs[i], true)
	}
	if got := a.LeadingMisses(config.SizeS, config.BaseWays); got != 3 {
		t.Errorf("S-core LM = %d, want 3 (LD2 dependence detected, LD4 outside ROB 64)", got)
	}
	if got := a.LeadingMisses(config.SizeM, config.BaseWays); got != 2 {
		t.Errorf("M-core LM = %d, want 2 (LD4 overlaps within ROB 128)", got)
	}
}

func TestStoresDoNotDriveLMCounters(t *testing.T) {
	a := MustNew(0)
	for i := 0; i < 100; i++ {
		a.Access(uint64(i)<<20, int64(i*100), false) // stores only
	}
	if a.Misses(config.BaseWays) == 0 {
		t.Fatal("stores must update the miss profile")
	}
	for _, c := range config.Sizes {
		if a.LeadingMisses(c, config.BaseWays) != 0 {
			t.Fatal("stores must not be counted as leading misses")
		}
	}
}

func TestResetCountersKeepsTags(t *testing.T) {
	a := MustNew(0)
	a.Access(0, 1, true)
	a.ResetCounters()
	if a.Misses(config.MaxWays) != 0 || a.Accesses() != 0 {
		t.Fatal("counters must be cleared")
	}
	// The tag is still resident: re-access hits at position 1 (a miss
	// count of zero for every allocation).
	a.Access(0, 2, true)
	if a.Misses(config.MinWays) != 0 {
		t.Fatal("tag state must survive a counter reset")
	}
}

func TestSamplingScalesEstimates(t *testing.T) {
	// With 1/2 sampling, estimates are scaled ×2; totals should be in
	// the same ballpark as full profiling for a uniform stream.
	rng := rand.New(rand.NewSource(3))
	full := MustNew(0)
	half := MustNew(1)
	for i := 0; i < 40_000; i++ {
		addr := uint64(rng.Intn(4096)) * config.BlockBytes
		full.Access(addr, int64(i), true)
		half.Access(addr, int64(i), true)
	}
	for _, w := range []int{config.MinWays, config.BaseWays, config.MaxWays} {
		f, h := float64(full.Misses(w)), float64(half.Misses(w))
		if h < f*0.8 || h > f*1.2 {
			t.Errorf("w=%d: sampled estimate %v too far from exact %v", w, h, f)
		}
	}
}

func TestChainWithoutInterleavingLooksOverlapped(t *testing.T) {
	// A pure in-order chain with small spacing provides no out-of-order
	// signal: within one ROB span it is counted as a single leading
	// miss. This is the documented limitation of the Figure 4 heuristic.
	a := MustNew(0)
	idx := int64(0)
	for i := 0; i < 16; i++ { // spans 16×8 = 128 instructions
		a.Access(uint64(i)<<20, idx, true)
		idx += 8
	}
	if got := a.LeadingMisses(config.SizeL, config.BaseWays); got != 1 {
		t.Errorf("L-core LM over one in-order chain span = %d, want 1", got)
	}
	// The S core (ROB 64) must break the chain into ≥ 2 leading misses.
	if got := a.LeadingMisses(config.SizeS, config.BaseWays); got < 2 {
		t.Errorf("S-core LM = %d, want ≥ 2 (window smaller than span)", got)
	}
}

func TestOutOfOrderArrivalDetectsDependence(t *testing.T) {
	// An access with a smaller index-distance than the previous
	// overlapping access arrived out of order → counted as a new LM.
	a := MustNew(0)
	a.Access(0<<20, 10, true) // LM
	a.Access(1<<20, 40, true) // OV (dist 30)
	a.Access(2<<20, 25, true) // dist 15 < 30 → dependence → LM
	if got := a.LeadingMisses(config.SizeL, config.BaseWays); got != 2 {
		t.Errorf("LM = %d, want 2 after out-of-order arrival", got)
	}
}

func TestLMMatrixMatchesAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := MustNew(0)
	idx := int64(0)
	for i := 0; i < 2000; i++ {
		idx += int64(1 + rng.Intn(30))
		a.Access(uint64(rng.Intn(2048))*config.BlockBytes, idx, true)
	}
	m := a.LMMatrix()
	for ci, c := range config.Sizes {
		for wi := 0; wi < NumTrackedWays; wi++ {
			if m[ci][wi] != a.LeadingMisses(c, config.MinWays+wi) {
				t.Fatalf("matrix mismatch at %s w%d", c, config.MinWays+wi)
			}
		}
	}
	curve := a.MissCurve()
	for wi := range curve {
		if curve[wi] != a.Misses(config.MinWays+wi) {
			t.Fatalf("miss curve mismatch at w%d", config.MinWays+wi)
		}
	}
}

func TestMissesClampsWays(t *testing.T) {
	a := MustNew(0)
	a.Access(0, 1, true)
	if a.Misses(-5) != a.Misses(0) {
		t.Error("negative ways should clamp")
	}
	if a.Misses(100) != a.Misses(config.MaxWays) {
		t.Error("oversize ways should clamp")
	}
	if a.LeadingMisses(config.SizeM, 100) != a.LeadingMisses(config.SizeM, config.MaxWays) {
		t.Error("LM ways should clamp")
	}
}
