package rm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qosrm/internal/config"
	"qosrm/internal/perfmodel"
)

// fakePredictor is a synthetic predictor with analytic behaviour:
// time improves with frequency, ways and core size; energy follows a
// V²f dynamic cost plus a memory term that shrinks with ways.
type fakePredictor struct {
	coreNs   float64 // at baseline f, M core
	memNs    float64 // at baseline ways
	memSlope float64
}

func (p *fakePredictor) TimePI(s config.Setting) float64 {
	width := float64(config.Core(s.Core).IssueWidth)
	core := p.coreNs * (4 / width) * (config.FBaseGHz / s.FGHz())
	mem := p.memNs - p.memSlope*float64(s.Ways-config.BaseWays)
	if mem < 0.05*p.memNs {
		mem = 0.05 * p.memNs
	}
	return core + mem
}

func (p *fakePredictor) EnergyPI(s config.Setting) float64 {
	v := config.Voltage(s.FGHz())
	dyn := []float64{0.48, 0.6, 0.78}[s.Core] * v * v
	static := []float64{0.19, 0.25, 0.36}[s.Core] * v * p.TimePI(s)
	mem := (p.memNs - p.memSlope*float64(s.Ways-config.BaseWays)) * 0.1
	if mem < 0 {
		mem = 0
	}
	return dyn + static + mem
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{Idle: "Idle", RM1: "RM1", RM2: "RM2", RM3: "RM3"}
	for k, s := range names {
		if k.String() != s {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestLocalizeBaselineAlwaysFeasible(t *testing.T) {
	p := &fakePredictor{coreNs: 0.4, memNs: 0.6, memSlope: 0.05}
	for _, k := range Kinds {
		cv := Localize(p, k, Options{})
		wi := config.BaseWays - config.MinWays
		if math.IsInf(cv.Energy[wi], 1) {
			t.Errorf("%s: baseline allocation infeasible", k)
		}
		if !cv.Feasible() {
			t.Errorf("%s: curve completely infeasible", k)
		}
	}
}

func TestLocalizeRM1RespectsFixedSetting(t *testing.T) {
	p := &fakePredictor{coreNs: 0.4, memNs: 0.6, memSlope: 0.05}
	cv := Localize(p, RM1, Options{})
	for wi, e := range cv.Energy {
		if math.IsInf(e, 1) {
			continue
		}
		pick := cv.Pick[wi]
		if pick.Core != config.SizeM || pick.Freq != config.BaseFreqIdx {
			t.Fatalf("RM1 changed core/VF at w=%d: %v", config.MinWays+wi, pick)
		}
		if pick.Ways != config.MinWays+wi {
			t.Fatalf("pick ways mismatch at index %d", wi)
		}
	}
}

func TestLocalizeRM2UsesOnlyMCore(t *testing.T) {
	p := &fakePredictor{coreNs: 0.4, memNs: 0.6, memSlope: 0.05}
	cv := Localize(p, RM2, Options{})
	for wi, e := range cv.Energy {
		if math.IsInf(e, 1) {
			continue
		}
		if cv.Pick[wi].Core != config.SizeM {
			t.Fatal("RM2 must not resize the core")
		}
	}
}

func TestLocalizePicksMinimumFeasibleFrequency(t *testing.T) {
	// The paper's rule: f*(w) is the minimum frequency meeting QoS.
	p := &fakePredictor{coreNs: 0.4, memNs: 0.6, memSlope: 0.05}
	budget := p.TimePI(config.Baseline())
	cv := Localize(p, RM2, Options{})
	for wi, e := range cv.Energy {
		if math.IsInf(e, 1) {
			continue
		}
		pick := cv.Pick[wi]
		if pick.Freq > 0 {
			lower := pick
			lower.Freq--
			if p.TimePI(lower) <= budget {
				t.Fatalf("w=%d: a lower frequency %d was feasible", pick.Ways, lower.Freq)
			}
		}
	}
}

func TestLocalizeRM3FeasibleBelowBaselineWays(t *testing.T) {
	// With a strong memory slope, the M core cannot give up ways, but
	// the L core's headroom should open donor allocations.
	p := &fakePredictor{coreNs: 0.5, memNs: 0.5, memSlope: 0.06}
	rm2 := Localize(p, RM2, Options{})
	rm3 := Localize(p, RM3, Options{})
	feasible := func(cv Curve) int {
		n := 0
		for _, e := range cv.Energy {
			if !math.IsInf(e, 1) {
				n++
			}
		}
		return n
	}
	if feasible(rm3) < feasible(rm2) {
		t.Fatal("RM3's search space contains RM2's; it cannot be less feasible")
	}
	for wi := range rm3.Energy {
		if rm3.Energy[wi] > rm2.Energy[wi]+1e-12 {
			t.Fatalf("RM3 energy above RM2 at w=%d", config.MinWays+wi)
		}
	}
}

func TestLocalizeAlphaRelaxation(t *testing.T) {
	p := &fakePredictor{coreNs: 0.5, memNs: 0.5, memSlope: 0.06}
	strict := Localize(p, RM2, Options{Alpha: 1})
	relaxed := Localize(p, RM2, Options{Alpha: 1.5})
	strictN, relaxedN := 0, 0
	for wi := range strict.Energy {
		if !math.IsInf(strict.Energy[wi], 1) {
			strictN++
		}
		if !math.IsInf(relaxed.Energy[wi], 1) {
			relaxedN++
		}
	}
	if relaxedN < strictN {
		t.Fatal("relaxing α must not reduce feasibility")
	}
	if relaxedN == strictN {
		t.Skip("α had no effect for this predictor")
	}
}

func TestGlobalOptimizeConservesWays(t *testing.T) {
	p := &fakePredictor{coreNs: 0.4, memNs: 0.6, memSlope: 0.05}
	for _, n := range []int{2, 3, 4, 8} {
		curves := make([]*Curve, n)
		for i := range curves {
			cv := Localize(p, RM3, Options{})
			curves[i] = &cv
		}
		total := config.TotalWays(n)
		settings, ok := GlobalOptimize(curves, total)
		if !ok {
			t.Fatalf("n=%d: no feasible distribution", n)
		}
		sum := 0
		for _, s := range settings {
			if s.Ways < config.MinWays || s.Ways > config.MaxWays {
				t.Fatalf("n=%d: allocation %d out of range", n, s.Ways)
			}
			sum += s.Ways
		}
		if sum != total {
			t.Fatalf("n=%d: allocations sum to %d, want %d", n, sum, total)
		}
	}
}

// TestGlobalOptimizeMatchesBruteForce verifies optimality of the
// pairwise reduction against exhaustive enumeration on random curves.
func TestGlobalOptimizeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 3
		curves := make([]*Curve, n)
		for i := range curves {
			cv := &Curve{}
			for wi := range cv.Energy {
				if rng.Float64() < 0.2 {
					cv.Energy[wi] = math.Inf(1)
					continue
				}
				cv.Energy[wi] = rng.Float64()
				cv.Pick[wi] = config.Setting{
					Core: config.Sizes[rng.Intn(3)],
					Freq: rng.Intn(config.NumFreqs),
					Ways: config.MinWays + wi,
				}
			}
			// Baseline always feasible, as Localize guarantees.
			cv.Energy[config.BaseWays-config.MinWays] = rng.Float64()
			cv.Pick[config.BaseWays-config.MinWays] = config.Baseline()
			curves[i] = cv
		}
		total := config.TotalWays(n)
		settings, ok := GlobalOptimize(curves, total)
		if !ok {
			return false
		}
		got := 0.0
		for i, s := range settings {
			got += curves[i].Energy[s.Ways-config.MinWays]
		}
		// Brute force.
		best := math.Inf(1)
		for w0 := config.MinWays; w0 <= config.MaxWays; w0++ {
			for w1 := config.MinWays; w1 <= config.MaxWays; w1++ {
				w2 := total - w0 - w1
				if w2 < config.MinWays || w2 > config.MaxWays {
					continue
				}
				e := curves[0].Energy[w0-config.MinWays] +
					curves[1].Energy[w1-config.MinWays] +
					curves[2].Energy[w2-config.MinWays]
				if e < best {
					best = e
				}
			}
		}
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGlobalOptimizeInfeasible(t *testing.T) {
	// Two curves feasible only at w=8 cannot meet a total of 17.
	pin := func() *Curve {
		cv := &Curve{}
		for i := range cv.Energy {
			cv.Energy[i] = math.Inf(1)
		}
		cv.Energy[config.BaseWays-config.MinWays] = 1
		cv.Pick[config.BaseWays-config.MinWays] = config.Baseline()
		return cv
	}
	if _, ok := GlobalOptimize([]*Curve{pin(), pin()}, 17); ok {
		t.Fatal("expected infeasibility")
	}
	if settings, ok := GlobalOptimize([]*Curve{pin(), pin()}, 16); !ok ||
		settings[0].Ways != 8 || settings[1].Ways != 8 {
		t.Fatal("pinned curves must split 8/8")
	}
}

func TestGlobalOptimizeEmptyAndBounds(t *testing.T) {
	if _, ok := GlobalOptimize(nil, 16); ok {
		t.Fatal("no cores must be infeasible")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unsatisfiable way total must panic")
		}
	}()
	cv := Localize(&fakePredictor{coreNs: 0.4, memNs: 0.6, memSlope: 0.05}, RM3, Options{})
	GlobalOptimize([]*Curve{&cv}, 40)
}

func TestGlobalOptimizePrefersCheaperDistribution(t *testing.T) {
	// One core strongly prefers many ways, the other is flat: the
	// optimum must give the hungry core more than baseline.
	hungry := &fakePredictor{coreNs: 0.3, memNs: 0.8, memSlope: 0.08}
	flat := &fakePredictor{coreNs: 0.5, memNs: 0.0, memSlope: 0}
	c1 := Localize(hungry, RM3, Options{})
	c2 := Localize(flat, RM3, Options{})
	settings, ok := GlobalOptimize([]*Curve{&c1, &c2}, 16)
	if !ok {
		t.Fatal("expected feasible distribution")
	}
	if settings[0].Ways <= config.BaseWays {
		t.Fatalf("hungry core got %d ways, want > %d", settings[0].Ways, config.BaseWays)
	}
}

func TestModelPredictorImplementsPredictor(t *testing.T) {
	var _ Predictor = (*ModelPredictor)(nil)
	// Sanity: a zero-value IntervalStats predicts finite times.
	mp := &ModelPredictor{Model: perfmodel.Model2}
	mp.Stats.Setting = config.Baseline()
	mp.Stats.MLP = 1
	if math.IsNaN(mp.TimePI(config.Baseline())) {
		t.Fatal("NaN prediction")
	}
	if math.IsNaN(mp.EnergyPI(config.Baseline())) {
		t.Fatal("NaN energy")
	}
}
