package db

import (
	"context"
	"errors"
	"testing"
	"time"

	"qosrm/internal/bench"
)

// TestBuildContextCancelled pins the build's cancellation contract: a
// cancelled context yields no database and the context's error, and the
// workers drain their queue without simulating anything (the build
// returns in far less time than the sweep itself would take).
func TestBuildContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	d, err := BuildContext(ctx, bench.Suite(), Options{TraceLen: 16384, Warmup: 4096})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d != nil {
		t.Fatal("cancelled build returned a database")
	}
	// A full-suite build at this trace length takes seconds; draining
	// the job queue must not.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled build took %v, not prompt", elapsed)
	}
}

// TestBuildContextMidBuild cancels while workers are simulating and
// checks the build aborts early instead of completing the sweep.
func TestBuildContextMidBuild(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	d, err := BuildContext(ctx, bench.Suite(), Options{TraceLen: 65536, Warmup: 16384, Workers: 2})
	if err == nil {
		// The machine may genuinely finish the suite in 10 ms one day;
		// then the result must at least be complete.
		if !d.Covers(bench.Suite()) {
			t.Fatal("uncancelled build returned an incomplete database")
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d != nil {
		t.Fatal("cancelled build returned a database")
	}
}

// TestBuildBackgroundUnaffected asserts Build still succeeds end to end
// through the context-threaded path.
func TestBuildBackgroundUnaffected(t *testing.T) {
	mcf, err := bench.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildContext(context.Background(), []*bench.Benchmark{mcf}, Options{TraceLen: 2048, Warmup: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Covers([]*bench.Benchmark{mcf}) {
		t.Fatal("build missing phases")
	}
}
