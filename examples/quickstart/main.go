// Quickstart: build the simulation database, run a two-core workload
// under the paper's proposed manager (RM3, coordinated LLC partitioning
// + per-core DVFS + core adaptation) and report the energy saved versus
// the fixed baseline configuration.
package main

import (
	"fmt"
	"log"

	"qosrm"
)

func main() {
	log.SetFlags(0)

	// Open builds the per-phase configuration database by running the
	// detailed core/cache simulations (the paper's Sniper+McPAT stage).
	// Restricting it to the applications we need keeps this example
	// fast; omit Benchmarks to build the full 27-application suite.
	sys, err := qosrm.Open(qosrm.Options{
		Benchmarks: []*qosrm.Benchmark{
			qosrm.MustBenchmark("povray"), // compute bound: a cache donor
			qosrm.MustBenchmark("mcf"),    // cache sensitive + parallelism sensitive
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	apps := []*qosrm.Benchmark{
		qosrm.MustBenchmark("povray"),
		qosrm.MustBenchmark("mcf"),
	}

	// Co-simulate under RM3 with the proposed online model (Model3) and
	// all run-time overheads, then compare with the baseline-keeping
	// idle manager.
	saving, res, err := sys.Savings(apps, qosrm.SimConfig{
		RM:    qosrm.RM3,
		Model: qosrm.Model3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: povray + mcf (2 cores)\n")
	fmt.Printf("energy saving vs baseline: %.2f%%\n", saving*100)
	fmt.Printf("total energy: %.3f J over %.1f ms (%d RM invocations)\n",
		res.EnergyJ, res.TimeNs/1e6, res.RMCalled)
	for i, a := range res.Apps {
		fmt.Printf("  core%d %-8s: %.3f J, %d/%d intervals violated QoS\n",
			i, a.Bench, a.EnergyJ, a.Violations, a.Intervals)
	}
}
