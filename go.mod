module qosrm

go 1.24.0
