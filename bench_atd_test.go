package qosrm

import (
	"math/rand"
	"testing"

	"qosrm/internal/atd"
	"qosrm/internal/config"
	"qosrm/internal/cpu"
	"qosrm/internal/trace"
)

func benchmarkATD(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	idxs := make([]int64, len(addrs))
	pos := int64(0)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(8192)) * config.BlockBytes
		pos += int64(1 + rng.Intn(30))
		idxs[i] = pos
	}
	a := atd.MustNew(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j := i % len(addrs)
		a.Access(addrs[j], idxs[j], true)
	}
}

// BenchmarkDetailedTimingRun measures one detailed core timing walk (the
// inner loop of the database build).
func BenchmarkDetailedTimingRun(b *testing.B) {
	mcf := MustBenchmark("mcf")
	insts := trace.Generate(mcf.Phases[0].Params, 16384)
	ann := cpu.Annotate(insts)
	rc := cpu.RunConfig{Core: config.SizeM, Ways: config.BaseWays, FreqGHz: config.FBaseGHz}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cpu.Run(ann, rc)
	}
}
