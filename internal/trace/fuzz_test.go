package trace

import (
	"reflect"
	"testing"

	"qosrm/internal/config"
)

// FuzzParamsValidate fuzzes the untrusted-parameter gate: Validate must
// never panic, and any parameter set it accepts must generate without
// panicking and deterministically — the same Params (including Seed)
// always yields the same instruction sequence, which everything from the
// database sweep's shared phase preparation to the replay dedup relies
// on.
func FuzzParamsValidate(f *testing.F) {
	add := func(p Params) {
		var r Region
		if len(p.Regions) > 0 {
			r = p.Regions[0]
		}
		f.Add(p.Seed, p.LoadFrac, p.StoreFrac, p.BranchFrac, p.MulFrac,
			p.BranchMissRate, p.DepProb, p.DepMean, p.BurstProb,
			p.ChaseFrac, p.StoreMainFrac, p.BurstLen, p.BurstSpread,
			r.Bytes, r.Weight, r.Sequential, r.WindowBytes, r.DriftEvery)
	}
	// A well-formed cache-sensitive stream, a streaming one, and the
	// hazards Validate exists to catch.
	add(Params{
		Seed: 1, LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.15,
		MulFrac: 0.2, BranchMissRate: 0.02, DepProb: 0.5, DepMean: 6,
		BurstProb: 0.1, ChaseFrac: 0.3, StoreMainFrac: 0.2,
		BurstLen: 8, BurstSpread: 4,
		Regions: []Region{{Bytes: 1 << 20, Weight: 1, WindowBytes: 1 << 14, DriftEvery: 64}},
	})
	add(Params{
		Seed: 7, LoadFrac: 0.4,
		Regions: []Region{{Bytes: 1 << 28, Weight: 1, Sequential: true}},
	})
	add(Params{LoadFrac: -0.5, Regions: []Region{{Bytes: 4096, Weight: 1}}})
	add(Params{LoadFrac: 0.2, Regions: []Region{{Bytes: 1 << 63, Weight: 1}}})

	f.Fuzz(func(t *testing.T, seed int64,
		loadFrac, storeFrac, branchFrac, mulFrac, missRate, depProb,
		depMean, burstProb, chaseFrac, storeMainFrac float64,
		burstLen, burstSpread int,
		rBytes uint64, rWeight float64, rSeq bool, rWindow uint64, rDrift int) {
		p := Params{
			Seed:           seed,
			LoadFrac:       loadFrac,
			StoreFrac:      storeFrac,
			BranchFrac:     branchFrac,
			MulFrac:        mulFrac,
			BranchMissRate: missRate,
			DepProb:        depProb,
			DepMean:        depMean,
			BurstProb:      burstProb,
			ChaseFrac:      chaseFrac,
			StoreMainFrac:  storeMainFrac,
			BurstLen:       burstLen,
			BurstSpread:    burstSpread,
			Regions: []Region{
				{Bytes: rBytes, Weight: rWeight, Sequential: rSeq, WindowBytes: rWindow, DriftEvery: rDrift},
				// A fixed second region so two-region mixtures (which
				// have a distinct main region) are always exercised.
				{Bytes: 1 << 20, Weight: 0.5},
			},
		}
		if err := p.Validate(); err != nil {
			return // rejected is fine; panicking is not
		}
		const n = 512
		a := Generate(p, n)
		b := Generate(p, n)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("accepted parameters generated non-deterministically")
		}
		for i, in := range a {
			if in.Dep1 < 0 || int64(in.Dep1) > int64(i) {
				t.Fatalf("instruction %d dependence %d out of range", i, in.Dep1)
			}
			if (in.Kind == KindLoad || in.Kind == KindStore) && in.Addr%config.BlockBytes != 0 {
				t.Fatalf("instruction %d: address %d not block aligned", i, in.Addr)
			}
			if in.Mispredict && in.Kind != KindBranch {
				t.Fatalf("instruction %d: non-branch mispredicts", i)
			}
		}
	})
}
