package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"qosrm/internal/rm"
)

// TestRunCtxCancelled pins the static engine's cancellation contract: a
// cancelled context aborts the run with the context's error and no
// result, and a nil context changes nothing.
func TestRunCtxCancelled(t *testing.T) {
	d := sharedDB(t)
	workload := apps(t, "mcf", "povray")
	cfg := Config{RM: rm.RM3}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, d, workload, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}

	if _, err := RunCtx(nil, d, workload, cfg); err != nil {
		t.Fatalf("nil-context run failed: %v", err)
	}
}

// TestRunDynamicCtxCancelled does the same for the dynamic engine, and
// additionally checks that a mid-run cancellation lands promptly rather
// than only at the end of the simulation.
func TestRunDynamicCtxCancelled(t *testing.T) {
	d := sharedDB(t)
	dyn := Dynamic{Queues: []Queue{
		{Jobs: []Job{{App: apps(t, "mcf")[0]}}},
		{Jobs: []Job{{App: apps(t, "povray")[0]}}},
	}}
	cfg := Config{RM: rm.RM3}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunDynamicCtx(ctx, d, dyn, cfg, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}

	// Mid-run: cancel from the trace hook at the first interval
	// boundary; the loop's next cancellation check must abort the run.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cfg2 := cfg
	cfg2.Trace = func(Event) { cancel2() }
	start := time.Now()
	if _, err := RunDynamicCtx(ctx2, d, dyn, cfg2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("mid-run cancel took %v, not prompt", elapsed)
	}
}
