package db

import (
	"testing"

	"qosrm/internal/atd"
	"qosrm/internal/bench"
	"qosrm/internal/config"
)

// preparedPhase builds one phase's preparation for replay-tree tests.
func preparedPhase(t *testing.T, benchName string) *phasePrep {
	t.Helper()
	b, err := bench.ByName(benchName)
	if err != nil {
		t.Fatal(err)
	}
	prep := &phasePrep{}
	if err := prep.prepare(b.Phases[0].Params, Options{TraceLen: 4096, Warmup: 1024}); err != nil {
		t.Fatal(err)
	}
	if len(prep.events) < 16 {
		t.Fatalf("phase has only %d LLC events; test needs more", len(prep.events))
	}
	return prep
}

// refReplay feeds the delivery order into a clone of the warm state the
// straightforward way — the semantics the tree must reproduce exactly.
func refReplay(prep *phasePrep, perm []int32) *atd.ATD {
	a := prep.warm.Clone()
	for _, r := range perm {
		e := prep.events[r]
		a.Access(e.Addr, e.InstIdx, e.IsLoad)
	}
	return a
}

func identityPerm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// TestReplayTreeMatchesDirectReplay drives the prefix-sharing tree
// through inserts that exercise every structural case — fresh leaf,
// long shared prefix (edge split near the end), early divergence
// (split near the root), exact duplicate — and checks each returned
// ATD against a direct warm-clone replay, bit for bit.
func TestReplayTreeMatchesDirectReplay(t *testing.T) {
	prep := preparedPhase(t, "mcf")
	n := len(prep.events)

	swapped := func(i, j int) []int32 {
		p := identityPerm(n)
		p[i], p[j] = p[j], p[i]
		return p
	}
	perms := [][]int32{
		identityPerm(n),     // first leaf below the root
		swapped(n-2, n-1),   // splits the leaf's edge at its tail
		swapped(0, 1),       // diverges at the first event
		swapped(n/2, n/2+1), // splits mid-edge
		identityPerm(n),     // exact duplicate of the first insert
	}
	for i, perm := range perms {
		got := prep.replay(perm)
		want := refReplay(prep, perm)
		if got.MissCurve() != want.MissCurve() {
			t.Fatalf("perm %d: miss curves diverge", i)
		}
		if got.LMMatrix() != want.LMMatrix() {
			t.Fatalf("perm %d: LM matrices diverge", i)
		}
		if got.Accesses() != want.Accesses() {
			t.Fatalf("perm %d: access counts diverge", i)
		}
	}

	// Exact duplicates share one instance — the dedup the seed had,
	// preserved by the tree.
	if prep.replay(identityPerm(n)) != prep.replay(identityPerm(n)) {
		t.Fatal("duplicate sequences did not share one replayed ATD")
	}
	// The empty sequence is the warm state itself.
	if prep.replay(nil) != prep.warm {
		t.Fatal("empty delivery sequence must return the warm ATD")
	}
}

// TestBuildMatchesReferenceHeavyOverlap extends the sweep equivalence
// contract to a workload whose runs have heavily overlapping delivery
// sequences (bwaves-class phases dedup at ~65%, the replay tree's best
// case) alongside a cache-sensitive one — the COW/prefix-sharing paths
// must stay bit-identical to the seed build there too.
func TestBuildMatchesReferenceHeavyOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("reference build is slow")
	}
	names := []string{"bwaves", "xalancbmk"}
	benches := make([]*bench.Benchmark, len(names))
	for i, n := range names {
		b, err := bench.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		benches[i] = b
	}
	opts := Options{TraceLen: 8192, Warmup: 2048}
	fast, err := Build(benches, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(benches, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		fp, rp := fast.Phases[b.Name], ref.Phases[b.Name]
		if len(fp) != len(rp) {
			t.Fatalf("%s: phase count %d vs %d", b.Name, len(fp), len(rp))
		}
		for p := range fp {
			if fp[p].Runs != rp[p].Runs {
				for ci := range fp[p].Runs {
					for k := range fp[p].Runs[ci] {
						for wi := range fp[p].Runs[ci][k] {
							if fp[p].Runs[ci][k][wi] != rp[p].Runs[ci][k][wi] {
								t.Fatalf("%s phase %d c=%d k=%d w=%d: records diverge",
									b.Name, p, ci, k, config.MinWays+wi)
							}
						}
					}
				}
			}
		}
	}
}
