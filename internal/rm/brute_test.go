package rm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qosrm/internal/config"
)

// randomCurves builds n random energy curves with guaranteed-feasible
// baselines, as Localize produces.
func randomCurves(rng *rand.Rand, n int) []*Curve {
	curves := make([]*Curve, n)
	for i := range curves {
		cv := &Curve{}
		for wi := range cv.Energy {
			if rng.Float64() < 0.25 {
				cv.Energy[wi] = math.Inf(1)
				continue
			}
			cv.Energy[wi] = rng.Float64()
			cv.Pick[wi] = config.Setting{
				Core: config.Sizes[rng.Intn(3)],
				Freq: rng.Intn(config.NumFreqs),
				Ways: config.MinWays + wi,
			}
		}
		wi := config.BaseWays - config.MinWays
		cv.Energy[wi] = rng.Float64()
		cv.Pick[wi] = config.Baseline()
		curves[i] = cv
	}
	return curves
}

// TestBruteForceAgreesWithReduction is the central equivalence property:
// the paper's polynomial reduction and exhaustive enumeration find
// distributions of identical total energy.
func TestBruteForceAgreesWithReduction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range []int{2, 3, 4} {
			curves := randomCurves(rng, n)
			total := config.TotalWays(n)
			fast, okF := GlobalOptimize(curves, total)
			slow, okS := BruteForceGlobalOptimize(curves, total)
			if okF != okS {
				return false
			}
			if !okF {
				continue
			}
			if math.Abs(TotalEnergy(curves, fast)-TotalEnergy(curves, slow)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceConservesWays(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	curves := randomCurves(rng, 4)
	settings, ok := BruteForceGlobalOptimize(curves, config.TotalWays(4))
	if !ok {
		t.Fatal("expected feasible distribution")
	}
	sum := 0
	for _, s := range settings {
		sum += s.Ways
	}
	if sum != config.TotalWays(4) {
		t.Fatalf("allocations sum to %d", sum)
	}
}

func TestBruteForceInfeasible(t *testing.T) {
	pin := &Curve{}
	for i := range pin.Energy {
		pin.Energy[i] = math.Inf(1)
	}
	pin.Energy[0] = 1 // only MinWays feasible
	pin.Pick[0] = config.Setting{Core: config.SizeM, Freq: 4, Ways: config.MinWays}
	// Two cores pinned to 2 ways cannot absorb 16.
	if _, ok := BruteForceGlobalOptimize([]*Curve{pin, pin}, 16); ok {
		t.Fatal("expected infeasibility")
	}
	if _, ok := BruteForceGlobalOptimize(nil, 16); ok {
		t.Fatal("empty input must be infeasible")
	}
}

func TestTotalEnergyInfValues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	curves := randomCurves(rng, 2)
	bad := []config.Setting{{Core: config.SizeM, Freq: 4, Ways: 99}, config.Baseline()}
	if !math.IsInf(TotalEnergy(curves, bad), 1) {
		t.Fatal("out-of-range ways must yield +Inf")
	}
}

// BenchmarkGlobalOptimize and BenchmarkBruteForce document the paper's
// complexity argument at 8 cores.
func BenchmarkGlobalOptimize8(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	curves := randomCurves(rng, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := GlobalOptimize(curves, config.TotalWays(8)); !ok {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkBruteForce4(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	curves := randomCurves(rng, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := BruteForceGlobalOptimize(curves, config.TotalWays(4)); !ok {
			b.Fatal("infeasible")
		}
	}
}

func TestGreedyNeverBeatsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		curves := randomCurves(rng, 4)
		total := config.TotalWays(4)
		opt, okO := GlobalOptimize(curves, total)
		greedy, okG := GreedyGlobalOptimize(curves, total)
		if !okO {
			return true // both may be infeasible
		}
		if !okG {
			return true // greedy may fail where optimal succeeds
		}
		// Conservation and bound.
		sum := 0
		for _, s := range greedy {
			sum += s.Ways
		}
		if sum != total {
			return false
		}
		return TotalEnergy(curves, greedy) >= TotalEnergy(curves, opt)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyOptimalOnConvexCurves(t *testing.T) {
	// On convex (diminishing-returns) curves the greedy heuristic is
	// provably optimal; verify against the reduction.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		curves := make([]*Curve, 3)
		for i := range curves {
			cv := &Curve{}
			e := 2 + rng.Float64()
			gain := 0.3 + rng.Float64()*0.2
			for wi := range cv.Energy {
				cv.Energy[wi] = e
				cv.Pick[wi] = config.Setting{Core: config.SizeM, Freq: 4, Ways: config.MinWays + wi}
				e -= gain
				gain *= 0.7 + rng.Float64()*0.2 // shrinking marginal gains
			}
			curves[i] = cv
		}
		total := config.TotalWays(3)
		opt, _ := GlobalOptimize(curves, total)
		greedy, ok := GreedyGlobalOptimize(curves, total)
		if !ok {
			t.Fatal("greedy failed on convex curves")
		}
		if d := TotalEnergy(curves, greedy) - TotalEnergy(curves, opt); d > 1e-9 {
			t.Fatalf("greedy suboptimal on convex curves by %g", d)
		}
	}
}

func TestGreedyEmptyInput(t *testing.T) {
	if _, ok := GreedyGlobalOptimize(nil, 16); ok {
		t.Fatal("empty input must fail")
	}
}
