// Cluster load test: two qosrmd nodes in one process, overflow
// forwarding between them, and the open-loop load harness measuring
// what that buys. Node A gets a deliberately tiny job queue and node B
// as its peer; the same saturating arrival rate is fired at A twice —
// once standalone, once with forwarding enabled — and the reject rates
// are compared: every submit the standalone node sheds with 503
// queue_full that the cluster instead lands on B is capacity the peer
// list kept. A worker stall failpoint pins job service time so the
// saturation is deterministic on any machine.
//
// A single forwarded submit is then followed end to end: the 202 from
// A carries B's job handle ("origin"), and Client.At(origin) polls the
// job where it actually lives.
//
// The example finishes with a cold join: a third node that owns no
// database at all fetches A's snapshot over GET /v1/snapshot (verified
// — magic, version, CRC, params hash — before a byte is trusted),
// persists it, boots warm, and is discovered by the others through
// gossip, at which point it takes a job like any member.
//
// Against separately deployed daemons, the equivalent is:
//
//	qosrmd -snapshot a.qosdb -addr :8423 -queue 8 -peers http://b:8424
//	qosrmd -snapshot b.qosdb -addr :8424
//	loadgen -url http://a:8423 -rps 400 -duration 5s
//	qosrmd -snapshot c.qosdb -addr :8425 -join http://a:8423 -advertise http://c:8425
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"qosrm"
	"qosrm/internal/faultinject"
	"qosrm/internal/loadgen"
)

func main() {
	log.SetFlags(0)

	apps := []string{"mcf", "povray"}
	benches := make([]*qosrm.Benchmark, len(apps))
	for i, n := range apps {
		benches[i] = qosrm.MustBenchmark(n)
	}
	sys, err := qosrm.Open(qosrm.Options{TraceLen: 8192, Warmup: 2048, Benchmarks: benches})
	if err != nil {
		log.Fatal(err)
	}

	// Pin every worker with a stall failpoint so each job holds its queue
	// slot for 50ms regardless of how fast this machine simulates. The
	// saturation the harness measures is then deterministic: one worker
	// drains 20 jobs/s against a 400/s arrival rate on any hardware.
	if err := faultinject.Enable("server.worker", "stall:50ms"); err != nil {
		log.Fatal(err)
	}

	// Node B: a plain node with the same tiny capacity as A, so the
	// comparison isolates forwarding rather than adding a bigger box.
	nodeOpts := qosrm.ServerOptions{Workers: 1, QueueDepth: 8}
	urlB, closeB := serve(sys, nodeOpts)
	defer closeB()

	spec := func(name string) qosrm.ScenarioSpec {
		const work = 4 * 100_000_000 * 2048
		return qosrm.ScenarioSpec{
			Name: name,
			RM:   "RM3",
			Cores: []qosrm.ScenarioCore{
				{Jobs: []qosrm.ScenarioJob{{App: "mcf", Work: work}}},
				{Jobs: []qosrm.ScenarioJob{{App: "povray", Work: work}}},
			},
		}
	}
	attack := func(url string) *loadgen.Result {
		c := qosrm.NewClient(url)
		c.MaxRetries = -1 // rejections are the measurement — surface them
		return loadgen.Run(context.Background(), loadgen.Config{
			RPS:      400,
			Duration: 2 * time.Second,
			Attack:   loadgen.SubmitAttack(c, spec),
		})
	}

	// Round 1: node A standalone, saturated.
	urlA1, closeA1 := serve(sys, nodeOpts)
	solo := attack(urlA1)
	closeA1()
	fmt.Printf("standalone node: %d sent, %d admitted, %d rejected (%.0f%%), p99 %.1fms\n",
		solo.Sent, solo.OK, solo.Rejected, 100*solo.RejectRate, solo.P99Ms)

	// Round 2: the same node shape with B as its peer.
	clusterOpts := nodeOpts
	clusterOpts.Peers = []string{urlB}
	urlA2, closeA2 := serve(sys, clusterOpts)
	defer closeA2()
	cluster := attack(urlA2)
	fmt.Printf("two-node cluster: %d sent, %d admitted (%d forwarded to the peer), %d rejected (%.0f%%), p99 %.1fms\n",
		cluster.Sent, cluster.OK, cluster.Forwarded, cluster.Rejected, 100*cluster.RejectRate, cluster.P99Ms)
	if cluster.RejectRate < solo.RejectRate {
		fmt.Printf("forwarding absorbed %.0f%% of the load the standalone node shed\n",
			100*(solo.RejectRate-cluster.RejectRate)/solo.RejectRate)
	}

	// One forwarded submit, end to end: fill A's queue by submitting a
	// burst, then follow an overflow job to its origin.
	ctx := context.Background()
	c := qosrm.NewClient(urlA2)
	c.MaxRetries = -1
	for i := 0; ; i++ {
		job, err := c.SubmitSweep(ctx, []qosrm.ScenarioSpec{spec(fmt.Sprintf("follow-%d", i))})
		if err != nil {
			var se *qosrm.ServiceError
			if errors.As(err, &se) && se.Reason == "queue_full" {
				// The whole cluster is momentarily saturated from the
				// attack backlog; wait for a slot to drain.
				time.Sleep(50 * time.Millisecond)
				continue
			}
			log.Fatal(err)
		}
		if job.Origin == "" {
			continue // admitted locally; keep filling until one overflows
		}
		fmt.Printf("job %s overflowed to %s; polling it there\n", job.ID, job.Origin)
		done, err := c.At(job.Origin).WaitJob(ctx, job.ID, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("forwarded job finished on the peer: state %s, %d report(s), saving %.1f%%\n",
			done.State, len(done.Reports), 100*done.Reports[0].Saving)
		break
	}

	// Round 3: a brand-new node joins with no local database. It fetches
	// A's snapshot over the wire, persists it for its next boot, and
	// boots warm — no local build, no file copied out of band.
	dir, err := os.MkdirTemp("", "qosrm-join-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	d, seed, err := qosrm.FetchClusterSnapshot(ctx, filepath.Join(dir, "c.qosdb"), []string{urlA2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joining node fetched a verified %d-benchmark snapshot from %s\n",
		len(d.Benchmarks()), seed)

	lnC, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	urlC := "http://" + lnC.Addr().String()
	joinOpts := nodeOpts
	joinOpts.Join = []string{urlA2}
	joinOpts.Advertise = urlC
	joinOpts.GossipInterval = 100 * time.Millisecond
	srvC, err := qosrm.FromDB(d).NewServer(joinOpts)
	if err != nil {
		log.Fatal(err)
	}
	hsC := &http.Server{Handler: srvC.Handler()}
	go hsC.Serve(lnC)
	defer func() {
		hsC.Close()
		srvC.Close()
	}()

	// Gossip spreads the membership both ways: the joiner discovers B
	// through A, and within a couple of rounds both peers appear in its
	// forwarding rotation.
	cC := qosrm.NewClient(urlC)
	deadline := time.Now().Add(15 * time.Second)
	for {
		h, err := cC.Health(ctx)
		if err == nil && h.Peers >= 2 {
			fmt.Printf("joined node is %s with %d peers in its rotation\n", h.Status, h.Peers)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("joined node never discovered its peers")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The joined node serves the identical database build, so it takes
	// jobs like any member.
	job, err := cC.SubmitSweep(ctx, []qosrm.ScenarioSpec{spec("joined-node")})
	if err != nil {
		log.Fatal(err)
	}
	done, err := cC.WaitJob(ctx, job.ID, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined node completed a job: state %s, saving %.1f%%\n",
		done.State, 100*done.Reports[0].Saving)
}

// serve mounts a qosrmd server for sys on a loopback listener and
// returns its base URL plus a teardown.
func serve(sys *qosrm.System, opts qosrm.ServerOptions) (string, func()) {
	srv, err := sys.NewServer(opts)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		hs.Close()
		srv.Close()
	}
}
