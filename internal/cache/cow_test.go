package cache

import (
	"math/rand"
	"testing"
)

// cowAddr maps a small index to a block address spread over sets.
func cowAddr(rng *rand.Rand, blocks int) uint64 {
	return uint64(rng.Intn(blocks)) * 64
}

// TestCOWMatchesLRUStack drives a COW fork and a full clone with the
// same random stream: every access must report the same recency
// position — the bit-identity contract behind COW replays.
func TestCOWMatchesLRUStack(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		base := MustNewLRUStack(16, 16)
		for i := 0; i < 1000; i++ {
			base.Access(cowAddr(rng, 512))
		}
		clone := base.Clone()
		fork := base.ForkCOW()
		for i := 0; i < 4000; i++ {
			addr := cowAddr(rng, 512)
			pc, pf := clone.Access(addr), fork.Access(addr)
			if pc != pf {
				t.Fatalf("seed %d access %d: clone pos %d, fork pos %d", seed, i, pc, pf)
			}
		}
		if m := fork.MaterializedSets(); m < 1 || m > fork.Sets() {
			t.Fatalf("materialized sets %d outside [1,%d]", m, fork.Sets())
		}
	}
}

// TestCOWForkThenDivergeLeavesParentUntouched is the COW store's
// property test: feed a parent fork a prefix, fork a child, drive the
// child down a divergent suffix, and verify the parent's effective tag
// state still equals an independent replica that only saw the prefix —
// for many random prefixes and suffixes.
func TestCOWForkThenDivergeLeavesParentUntouched(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := MustNewLRUStack(16, 16)
		for i := 0; i < 500; i++ {
			base.Access(cowAddr(rng, 256))
		}
		control := base.Clone() // replica of the parent's history
		parent := base.ForkCOW()
		for i := 0; i < 700; i++ {
			addr := cowAddr(rng, 256)
			parent.Access(addr)
			control.Access(addr)
		}

		child := parent.Fork()
		for i := 0; i < 700; i++ {
			child.Access(cowAddr(rng, 256)) // divergent suffix
		}

		// The frozen parent must still resolve exactly like the control:
		// probe through a fresh fork (the parent itself is immutable).
		probe := parent.Fork()
		ctl := control.Clone()
		for i := 0; i < 2000; i++ {
			addr := cowAddr(rng, 256)
			pp, pc := probe.Access(addr), ctl.Access(addr)
			if pp != pc {
				t.Fatalf("seed %d probe %d: parent snapshot drifted (pos %d vs %d)", seed, i, pp, pc)
			}
		}
	}
}

// TestCOWFrozenAccessPanics pins the safety contract: a fork with
// descendants is immutable and must refuse further accesses.
func TestCOWFrozenAccessPanics(t *testing.T) {
	base := MustNewLRUStack(16, 16)
	f := base.ForkCOW()
	f.Fork() // freezes f
	defer func() {
		if recover() == nil {
			t.Fatal("Access on a frozen COW fork did not panic")
		}
	}()
	f.Access(0)
}

// TestCOWCloneIsIndependent checks that cloning an unfrozen fork yields
// an independently mutable copy.
func TestCOWCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := MustNewLRUStack(16, 16)
	for i := 0; i < 300; i++ {
		base.Access(cowAddr(rng, 128))
	}
	a := base.ForkCOW()
	for i := 0; i < 300; i++ {
		a.Access(cowAddr(rng, 128))
	}
	b := a.Clone()
	refA := a.Clone()
	for i := 0; i < 500; i++ {
		b.Access(cowAddr(rng, 128))
	}
	// a (via a fresh clone) must behave like refA despite b's accesses.
	for i := 0; i < 1000; i++ {
		addr := cowAddr(rng, 128)
		p1, p2 := a.Access(addr), refA.Access(addr)
		if p1 != p2 {
			t.Fatalf("probe %d: clone accesses leaked into source (pos %d vs %d)", i, p1, p2)
		}
	}
}
