package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWeightedAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a Weighted
		var xs, ws []float64
		for i := 0; i < 50; i++ {
			x, w := rng.Float64()*10, rng.Float64()+0.01
			xs, ws = append(xs, x), append(ws, w)
			a.Add(x, w)
		}
		var sw, swx float64
		for i := range xs {
			sw += ws[i]
			swx += ws[i] * xs[i]
		}
		mean := swx / sw
		var v float64
		for i := range xs {
			v += ws[i] * (xs[i] - mean) * (xs[i] - mean)
		}
		std := math.Sqrt(v / sw)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Std()-std) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWeightedEmpty(t *testing.T) {
	var a Weighted
	if a.Mean() != 0 || a.Std() != 0 || a.Weight() != 0 {
		t.Fatal("empty accumulator must be zero")
	}
}

func TestWeightedSingle(t *testing.T) {
	var a Weighted
	a.Add(5, 2)
	if a.Mean() != 5 || a.Std() != 0 {
		t.Fatalf("single point: mean %.3f std %.3f", a.Mean(), a.Std())
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(10, 1.0)
	h.Add(0.05, 1)  // bin 0
	h.Add(0.15, 2)  // bin 1
	h.Add(0.999, 3) // bin 9
	h.Add(1.5, 4)   // overflow
	h.Add(-0.1, 5)  // clamps to bin 0
	if h.Bins[0] != 6 || h.Bins[1] != 2 || h.Bins[9] != 3 || h.Over != 4 {
		t.Fatalf("bins %v over %v", h.Bins, h.Over)
	}
	if h.Total() != 15 {
		t.Fatalf("total %v", h.Total())
	}
	if h.MaxBin() != 6 {
		t.Fatalf("max bin %v", h.MaxBin())
	}
}

func TestHistogramNormalized(t *testing.T) {
	h := NewHistogram(4, 1)
	h.Add(0.1, 2)
	h.Add(0.6, 4)
	n := h.Normalized(4)
	if n[0] != 0.5 || n[2] != 1 {
		t.Fatalf("normalized %v", n)
	}
	if z := h.Normalized(0); z[0] != 0 {
		t.Fatal("zero max must normalise to zeros")
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestBinLabel(t *testing.T) {
	h := NewHistogram(10, 0.5)
	if got := h.BinLabel(0); got != "0–5%" {
		t.Fatalf("label %q", got)
	}
	if got := h.BinLabel(9); got != "45–50%" {
		t.Fatalf("label %q", got)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Fatalf("Bar(0.5) = %q", got)
	}
	if got := Bar(-1, 5); got != "....." {
		t.Fatalf("Bar(-1) = %q", got)
	}
	if got := Bar(2, 5); got != "#####" {
		t.Fatalf("Bar(2) = %q", got)
	}
	if len(Bar(0.33, 12)) != 12 {
		t.Fatal("bar width wrong")
	}
	if strings.ContainsAny(Bar(0.5, 8), " ") {
		t.Fatal("bar must not contain spaces")
	}
}
