package experiments

import (
	"fmt"
	"io"

	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/stats"
	"qosrm/internal/workload"
)

// Fig9Row is one workload of the modelling-error study: RM3's savings
// under each online model and under a perfect model.
type Fig9Row struct {
	Name     string
	Cores    int
	Scenario workload.Scenario
	Apps     string
	// Savings indexed by Model1, Model2, Model3, Perfect.
	Savings [4]float64
}

// Fig9Labels names the four bars.
var Fig9Labels = [4]string{"Model1", "Model2", "Model3", "Perfect"}

// Fig9Result aggregates the study.
type Fig9Result struct {
	Rows []Fig9Row
	// Avg is the plain average saving per model.
	Avg [4]float64
	// GapToPerfect is the average shortfall of each online model versus
	// the perfect-model saving on the same workload.
	GapToPerfect [3]float64
}

// Fig9 reruns the Figure 6 workloads under the proposed RM3, swapping
// the performance/energy model between Model1, Model2, Model3 and the
// perfect oracle (with phase prediction), all with overheads enabled as
// in the paper's Figure 9.
func (c *Context) Fig9() (*Fig9Result, error) {
	return c.fig9Sizes([]int{4, 8})
}

// Fig9Sizes bounds the study to the given core counts.
func (c *Context) Fig9Sizes(sizes []int) (*Fig9Result, error) {
	return c.fig9Sizes(sizes)
}

func (c *Context) fig9Sizes(sizes []int) (*Fig9Result, error) {
	models := []perfmodel.Kind{perfmodel.Model1, perfmodel.Model2, perfmodel.Model3}
	var rows []Fig9Row
	var wls []workload.Workload
	for _, cores := range sizes {
		for _, s := range workload.Scenarios {
			ws, err := workload.Generate(s, cores, c.PerScenario, c.Seed)
			if err != nil {
				return nil, err
			}
			for _, wl := range ws {
				rows = append(rows, Fig9Row{Name: wl.Name, Cores: cores, Scenario: s, Apps: appNames(wl.Apps)})
				wls = append(wls, wl)
			}
		}
	}
	// outs must be fully allocated before job pointers into it are taken.
	outs := make([][4]runOut, len(wls))
	var jobs []runJob
	for oi, wl := range wls {
		for m, mk := range models {
			jobs = append(jobs, runJob{
				apps: wl.Apps,
				cfg:  c.simConfig(rm.RM3, mk, false, false),
				out:  &outs[oi][m],
			})
		}
		jobs = append(jobs, runJob{
			apps: wl.Apps,
			cfg:  c.simConfig(rm.RM3, perfmodel.Model3, true, false),
			out:  &outs[oi][3],
		})
	}
	if err := c.runAll(jobs); err != nil {
		return nil, err
	}
	res := &Fig9Result{Rows: rows}
	for i := range rows {
		for m := 0; m < 4; m++ {
			rows[i].Savings[m] = outs[i][m].Saving
			res.Avg[m] += rows[i].Savings[m] / float64(len(rows))
		}
		for m := 0; m < 3; m++ {
			res.GapToPerfect[m] += (rows[i].Savings[3] - rows[i].Savings[m]) / float64(len(rows))
		}
	}
	return res, nil
}

// RenderFig9 prints the comparison.
func RenderFig9(w io.Writer, r *Fig9Result) {
	fmt.Fprintln(w, "FIGURE 9: RM3 energy savings under different performance models")
	lastScenario := workload.Scenario(0)
	for _, row := range r.Rows {
		if row.Scenario != lastScenario {
			fmt.Fprintf(w, "-- Scenario %s --\n", row.Scenario)
			lastScenario = row.Scenario
		}
		fmt.Fprintf(w, "%-14s [%s]\n", row.Name, row.Apps)
		for m, lbl := range Fig9Labels {
			fmt.Fprintf(w, "   %-7s %6.2f%% |%s|\n", lbl, row.Savings[m]*100,
				stats.Bar(row.Savings[m]/0.30, 36))
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Averages: Model1 %.2f%%  Model2 %.2f%%  Model3 %.2f%%  Perfect %.2f%%\n",
		r.Avg[0]*100, r.Avg[1]*100, r.Avg[2]*100, r.Avg[3]*100)
	fmt.Fprintf(w, "Average shortfall vs perfect: Model1 %.2f%%  Model2 %.2f%%  Model3 %.2f%%\n",
		r.GapToPerfect[0]*100, r.GapToPerfect[1]*100, r.GapToPerfect[2]*100)
	fmt.Fprintln(w, "(paper: Model3's savings are the closest to the perfect-model results)")
}
