// Package client is the retrying qosrmd API client. It is used from
// two places: the public qosrm package re-exports it (DialService), and
// a qosrmd node in cluster mode uses the same client to forward
// overflow jobs to its peers — the retry, backoff and idempotency
// machinery is identical in both roles, so it lives once, here.
package client

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"qosrm/internal/api"
	"qosrm/internal/cluster"
	"qosrm/internal/scenario"
)

// ServiceError is a non-2xx response from the service, carrying the
// machine-readable rejection reason when the server classified it (e.g.
// "batch_too_large", "queue_full", "rate_limited") so callers can route
// on Reason instead of matching message strings.
type ServiceError struct {
	StatusCode int
	Reason     string
	Message    string
	// RetryAfter is the server-advertised backoff (0 when the response
	// carried no Retry-After header).
	RetryAfter time.Duration
}

func (e *ServiceError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("%s (HTTP %d)", e.Message, e.StatusCode)
	}
	return fmt.Sprintf("HTTP %d", e.StatusCode)
}

// Temporary reports whether the rejection is worth retrying: rate
// limiting, a bad gateway in front of the daemon, an overloaded or
// draining instance.
func (e *ServiceError) Temporary() bool {
	switch e.StatusCode {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// ReasonResponseTooLarge is the client-side rejection reason of a
// response body exceeding the decode bound: the exchange succeeded at
// the HTTP layer but the payload cannot be represented faithfully, so
// the client refuses it instead of decoding a silent truncation.
const ReasonResponseTooLarge = "response_too_large"

// maxResponseBytes bounds how much of a response body the client reads.
// A body larger than this — an absurdly oversized sweep report — is
// rejected with a ReasonResponseTooLarge ServiceError rather than
// silently truncated into a JSON decode error. Variable so tests can
// shrink it.
var maxResponseBytes int64 = 64 << 20

// Client is a qosrmd API client; Dial returns a connected one.
// Requests that fail transiently — connection refused or reset, 429,
// 502/503/504 — are retried with exponential backoff and jitter,
// honouring the server's Retry-After. Every request the client issues
// is safe to retry: GETs trivially, the synchronous POSTs because they
// are pure computations, and SubmitSweep because it attaches an
// Idempotency-Key the server deduplicates on.
type Client struct {
	base string
	// HTTPClient may be replaced before first use; Dial installs a
	// default with a 30 s overall timeout.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try (default 3;
	// negative disables retrying).
	MaxRetries int
}

// Client retry tuning: the first retry waits about retryBaseDelay,
// doubling per attempt up to retryMaxDelay, each delay jittered to
// [delay/2, delay) so synchronized clients spread out.
const (
	retryBaseDelay = 100 * time.Millisecond
	retryMaxDelay  = 5 * time.Second
)

// New returns a client for the qosrmd instance at baseURL without
// probing it; Dial is New plus a health check.
func New(baseURL string) *Client {
	return &Client{
		base:       strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
	}
}

// Dial connects to a running qosrmd instance at baseURL (e.g.
// "http://127.0.0.1:8423") and verifies it is healthy before returning.
func Dial(baseURL string) (*Client, error) {
	c := New(baseURL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Health(ctx); err != nil {
		return nil, fmt.Errorf("qosrm: dial %s: %w", baseURL, err)
	}
	return c, nil
}

// Base returns the base URL this client talks to.
func (c *Client) Base() string { return c.base }

// At returns a client for another node of the same cluster — the
// JobStatus.Origin of a forwarded submit — sharing this client's HTTP
// transport and retry budget. The origin node is where a forwarded job
// must be polled.
func (c *Client) At(baseURL string) *Client {
	return &Client{
		base:       strings.TrimRight(baseURL, "/"),
		HTTPClient: c.HTTPClient,
		MaxRetries: c.MaxRetries,
	}
}

// Health fetches the service's health report.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Savings evaluates an application mix on the service: the configured
// manager against its idle twin, exactly System.Savings but on the
// server's shared warm database.
func (c *Client) Savings(ctx context.Context, req *api.SavingsRequest) (*api.SavingsResponse, error) {
	var out api.SavingsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/savings", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RunScenario executes one declarative scenario synchronously on the
// service. The report is bit-identical to System.RunScenario on the
// same spec (equivalence-tested).
func (c *Client) RunScenario(ctx context.Context, spec *scenario.Spec) (*scenario.Report, error) {
	var out scenario.Report
	if err := c.do(ctx, http.MethodPost, "/v1/scenarios", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitSweep queues a batch of scenarios as an asynchronous job and
// returns its initial status (carrying the job ID to poll). The submit
// carries a fresh random Idempotency-Key, so the client's own retries
// (and any caller-level retry of a failed SubmitSweep call that reuses
// the returned job) cannot enqueue the sweep twice.
func (c *Client) SubmitSweep(ctx context.Context, specs []scenario.Spec) (*api.JobStatus, error) {
	return c.SubmitSweepKey(ctx, specs, NewIdempotencyKey())
}

// SubmitSweepKey is SubmitSweep under a caller-chosen idempotency key:
// submitting the same key again — from this process or a restarted one,
// against the same or a restarted server (when it journals) — returns
// the existing job instead of queuing a duplicate.
func (c *Client) SubmitSweepKey(ctx context.Context, specs []scenario.Spec, key string) (*api.JobStatus, error) {
	return c.submit(ctx, specs, key, nil)
}

// ForwardSweep is the cluster-internal submit a qosrmd node uses to
// push an overflow batch to a peer: the caller's idempotency key is
// propagated verbatim (so the dedupe contract holds across nodes) and
// the visited-node trail travels in the X-Qosrm-Forward-Trail header,
// letting the receiving node skip every node the batch has already
// been through and refuse to forward past its own hop budget.
func (c *Client) ForwardSweep(ctx context.Context, specs []scenario.Spec, key string, trail []string) (*api.JobStatus, error) {
	return c.submit(ctx, specs, key, trail)
}

func (c *Client) submit(ctx context.Context, specs []scenario.Spec, key string, trail []string) (*api.JobStatus, error) {
	var out api.JobStatus
	req := api.JobRequest{Specs: specs}
	hdr := http.Header{}
	if key != "" {
		hdr.Set(api.IdempotencyKeyHeader, key)
	}
	if len(trail) > 0 {
		hdr.Set(api.ForwardTrailHeader, strings.Join(trail, ","))
	}
	if err := c.doHeaders(ctx, http.MethodPost, "/v1/jobs", hdr, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// NewIdempotencyKey draws a 128-bit random key.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal platform breakage;
		// an empty key degrades to a non-idempotent submit.
		return ""
	}
	return "qosrm-" + hex.EncodeToString(b[:])
}

// ClusterView fetches a node's membership view (GET /v1/cluster): its
// self entry plus every member it tracks. This is the pull-only half of
// the anti-entropy protocol, usable by any observer.
func (c *Client) ClusterView(ctx context.Context) (*cluster.Exchange, error) {
	var out cluster.Exchange
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ExchangeCluster runs one push-pull anti-entropy exchange (POST
// /v1/cluster): the receiver merges ex and answers with its own view
// for the caller to merge back. This is the gossip transport a qosrmd
// node drives every gossip interval.
func (c *Client) ExchangeCluster(ctx context.Context, ex *cluster.Exchange) (*cluster.Exchange, error) {
	var out cluster.Exchange
	if err := c.do(ctx, http.MethodPost, "/v1/cluster", ex, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// maxSnapshotBytes bounds a fetched database snapshot — matching the
// dbstore reader's own payload bound, far above any real suite.
const maxSnapshotBytes = 1 << 31

// Snapshot fetches a node's database snapshot bytes (GET /v1/snapshot),
// the dbstore binary format verbatim. The caller must verify them with
// the dbstore loader before trusting a byte — server.FetchSnapshot is
// the join flow that does.
func (c *Client) Snapshot(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("qosrm: GET /v1/snapshot: %w", err)
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("qosrm: GET /v1/snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		se := &ServiceError{StatusCode: resp.StatusCode}
		var e api.ErrorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil {
			se.Message, se.Reason = e.Error, e.Reason
		}
		return nil, fmt.Errorf("qosrm: GET /v1/snapshot: %w", se)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes))
	if err != nil {
		return nil, fmt.Errorf("qosrm: GET /v1/snapshot: %w", err)
	}
	return data, nil
}

// EventStream is a live job event stream returned by JobEvents: call
// Next until a terminal frame (Type "done", "failed" or "expired") or
// an error, then Close. Closing early is always safe and is how a
// consumer walks away from a stream mid-job.
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Next returns the next frame. io.EOF means the server ended the stream
// without a terminal frame (shutdown, or the connection dropped).
func (s *EventStream) Next() (*api.JobEvent, error) {
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		ev := &api.JobEvent{}
		if err := json.Unmarshal(line, ev); err != nil {
			return nil, fmt.Errorf("qosrm: job events: decode frame: %w", err)
		}
		return ev, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, fmt.Errorf("qosrm: job events: %w", err)
	}
	return nil, io.EOF
}

// Close releases the stream's connection.
func (s *EventStream) Close() error { return s.body.Close() }

// JobEvents opens the live interval-event stream of a job (GET
// /v1/jobs/{id}/events, NDJSON framing). The stream replays the job's
// buffered event tail, then follows live events until the job finishes;
// a consumer slower than the engine loses oldest events and sees the
// frames' dropped counter grow. The request deliberately bypasses the
// retry loop and the HTTPClient's overall timeout (a stream lives as
// long as the job runs): cancellation is ctx's alone.
func (c *Client) JobEvents(ctx context.Context, id string) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, fmt.Errorf("qosrm: GET /v1/jobs/%s/events: %w", id, err)
	}
	if rid := api.RequestID(ctx); rid != "" {
		req.Header.Set(api.RequestIDHeader, rid)
	}
	// Share the transport (connection pool), not the client-level
	// Timeout, which would kill the stream mid-job.
	httpc := &http.Client{Transport: c.HTTPClient.Transport}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("qosrm: GET /v1/jobs/%s/events: %w", id, err)
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		se := &ServiceError{StatusCode: resp.StatusCode}
		var e api.ErrorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil {
			se.Message, se.Reason = e.Error, e.Reason
		}
		return nil, fmt.Errorf("qosrm: GET /v1/jobs/%s/events: %w", id, se)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &EventStream{body: resp.Body, sc: sc}, nil
}

// Job fetches the current status of an asynchronous job.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	var out api.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it finishes (done or failed) or ctx
// expires. Polling backs off: the first check comes quickly (short jobs
// return fast), then the interval doubles with jitter up to poll, which
// caps the cadence. poll ≤ 0 defaults to 250 ms.
//
// A poll answered with 404 is terminal, not retried: the job's TTL
// expired between polls (or the id never existed), and no amount of
// waiting brings it back.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*api.JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	delay := 10 * time.Millisecond
	if delay > poll {
		delay = poll
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State == api.JobDone || j.State == api.JobFailed {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(jitter(delay)):
		}
		if delay *= 2; delay > poll {
			delay = poll
		}
	}
}

// jitter spreads a delay uniformly over [d/2, d) so many waiters do not
// poll in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(mrand.Int63n(int64(d/2)))
}

// do runs one JSON exchange with the retry loop around it.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doHeaders(ctx, method, path, nil, in, out)
}

// doHeaders marshals the body once and retries the round trip on
// transient failures: network errors the context did not cause, and
// ServiceError.Temporary() statuses. Backoff doubles per attempt with
// jitter; a server-advertised Retry-After longer than the computed
// delay wins.
func (c *Client) doHeaders(ctx context.Context, method, path string, hdr http.Header, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return fmt.Errorf("qosrm: %s %s: %w", method, path, err)
		}
	}
	retries := c.MaxRetries
	switch {
	case retries == 0:
		retries = 3
	case retries < 0:
		retries = 0
	}
	delay := retryBaseDelay
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, hdr, data, in != nil, out)
		if err == nil {
			return nil
		}
		if attempt >= retries || ctx.Err() != nil || !transient(err) {
			return err
		}
		wait := jitter(delay)
		var se *ServiceError
		if asServiceError(err, &se) && se.RetryAfter > wait {
			wait = se.RetryAfter
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
		if delay *= 2; delay > retryMaxDelay {
			delay = retryMaxDelay
		}
	}
}

// doOnce is one JSON round trip, decoding the service's error envelope
// on non-2xx statuses into a *ServiceError.
func (c *Client) doOnce(ctx context.Context, method, path string, hdr http.Header, data []byte, hasBody bool, out any) error {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("qosrm: %s %s: %w", method, path, err)
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the request id when the context carries one: a qosrmd
	// node forwarding a job passes its request context here, so the
	// ingress-minted X-Qosrm-Request-Id travels verbatim to the peer.
	if id := api.RequestID(ctx); id != "" {
		req.Header.Set(api.RequestIDHeader, id)
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("qosrm: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	// Read one byte past the bound so an exactly-truncated body is
	// distinguishable from one that merely fills it.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return fmt.Errorf("qosrm: %s %s: %w", method, path, err)
	}
	if int64(len(raw)) > maxResponseBytes {
		se := &ServiceError{
			StatusCode: resp.StatusCode,
			Reason:     ReasonResponseTooLarge,
			Message:    fmt.Sprintf("response exceeds %d bytes", maxResponseBytes),
		}
		return fmt.Errorf("qosrm: %s %s: %w", method, path, se)
	}
	if resp.StatusCode >= 300 {
		se := &ServiceError{StatusCode: resp.StatusCode}
		var e api.ErrorResponse
		if json.Unmarshal(raw, &e) == nil {
			se.Message, se.Reason = e.Error, e.Reason
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		return fmt.Errorf("qosrm: %s %s: %w", method, path, se)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("qosrm: %s %s: decode response: %w", method, path, err)
	}
	return nil
}

// transient reports whether an exchange failure is worth retrying: a
// Temporary service rejection, or a transport-level error (connection
// refused/reset, broken pipe) that was not the caller's own context
// firing.
func transient(err error) bool {
	var se *ServiceError
	if asServiceError(err, &se) {
		return se.Temporary()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Remaining failures wrap a transport error from http.Client.Do —
	// the dial, write or read failed.
	var ue *url.Error
	return errors.As(err, &ue)
}

// asServiceError unwraps a *ServiceError if err carries one.
func asServiceError(err error, se **ServiceError) bool {
	return errors.As(err, se)
}
