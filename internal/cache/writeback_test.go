package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qosrm/internal/config"
)

// refWBCache is a straightforward write-back LRU cache used as the
// correctness reference for the single-pass writeback profiler.
type refWBCache struct {
	sets, ways int
	tags       [][]uint64
	valid      [][]bool
	dirty      [][]bool
	writebacks int64
}

func newRefWBCache(sets, ways int) *refWBCache {
	c := &refWBCache{sets: sets, ways: ways}
	for s := 0; s < sets; s++ {
		c.tags = append(c.tags, make([]uint64, ways))
		c.valid = append(c.valid, make([]bool, ways))
		c.dirty = append(c.dirty, make([]bool, ways))
	}
	return c
}

func (c *refWBCache) access(addr uint64, write bool) {
	tag := addr &^ uint64(config.BlockBytes-1)
	set := int((addr >> 6) & uint64(c.sets-1))
	row, val, dirty := c.tags[set], c.valid[set], c.dirty[set]
	for i := 0; i < c.ways; i++ {
		if val[i] && row[i] == tag {
			d := dirty[i] || write
			copy(row[1:], row[:i])
			copy(val[1:], val[:i])
			copy(dirty[1:], dirty[:i])
			row[0], val[0], dirty[0] = tag, true, d
			return
		}
	}
	if val[c.ways-1] && dirty[c.ways-1] {
		c.writebacks++
	}
	copy(row[1:], row[:c.ways-1])
	copy(val[1:], val[:c.ways-1])
	copy(dirty[1:], dirty[:c.ways-1])
	row[0], val[0], dirty[0] = tag, true, write
}

func (c *refWBCache) residualDirty() int64 {
	n := int64(0)
	for s := range c.dirty {
		for w := range c.dirty[s] {
			if c.valid[s][w] && c.dirty[s][w] {
				n++
			}
		}
	}
	return n
}

// TestWritebackProfilerMatchesReference: for every allocation w, the
// single-pass profiler's writeback count (access masks + residual dirty)
// equals a dedicated w-way write-back cache's count (writebacks so far +
// its residual dirty lines).
func TestWritebackProfilerMatchesReference(t *testing.T) {
	const sets = 4
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stack := MustNewLRUStack(sets, config.MaxWays)
		refs := make([]*refWBCache, config.MaxWays+1)
		for w := 1; w <= config.MaxWays; w++ {
			refs[w] = newRefWBCache(sets, w)
		}
		var wbCount [config.MaxWays + 1]int64
		for i := 0; i < 4000; i++ {
			addr := uint64(rng.Intn(sets*config.MaxWays*3)) * config.BlockBytes
			write := rng.Intn(3) == 0
			_, wb := stack.AccessRW(addr, write)
			for w := 1; w <= config.MaxWays; w++ {
				if wb&(1<<(w-1)) != 0 {
					wbCount[w]++
				}
				refs[w].access(addr, write)
			}
		}
		resid := stack.ResidualDirty()
		for w := 1; w <= config.MaxWays; w++ {
			got := wbCount[w] + resid[w-1]
			want := refs[w].writebacks + refs[w].residualDirty()
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestAccessRWPositionsMatchAccess(t *testing.T) {
	// AccessRW must report the same recency positions as Access for the
	// same stream.
	rng := rand.New(rand.NewSource(3))
	a := MustNewLRUStack(4, 8)
	b := MustNewLRUStack(4, 8)
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.Intn(256)) * config.BlockBytes
		p1 := a.Access(addr)
		p2, _ := b.AccessRW(addr, rng.Intn(2) == 0)
		if p1 != p2 {
			t.Fatalf("position mismatch at %d: %d vs %d", i, p1, p2)
		}
	}
}

func TestWritebackCleanStreamsProduceNone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := MustNewLRUStack(4, config.MaxWays)
	for i := 0; i < 3000; i++ {
		_, wb := s.AccessRW(uint64(rng.Intn(4096))*config.BlockBytes, false)
		if wb != 0 {
			t.Fatal("read-only stream produced a writeback")
		}
	}
	if s.ResidualDirty() != [config.MaxWays]int64{} {
		t.Fatal("read-only stream left dirty blocks")
	}
}

func TestWritebackMonotonicInWays(t *testing.T) {
	// Larger caches evict less, so total writebacks (including residual
	// dirty lines that will flush eventually) weakly decrease with w...
	// only when every dirty block is eventually counted. Verified via
	// the reference model.
	rng := rand.New(rand.NewSource(5))
	refs := make([]*refWBCache, config.MaxWays+1)
	for w := 1; w <= config.MaxWays; w++ {
		refs[w] = newRefWBCache(4, w)
	}
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(300)) * config.BlockBytes
		write := rng.Intn(3) == 0
		for w := 1; w <= config.MaxWays; w++ {
			refs[w].access(addr, write)
		}
	}
	prev := int64(1 << 62)
	for w := 1; w <= config.MaxWays; w++ {
		if refs[w].writebacks > prev {
			t.Fatalf("eager writebacks grew with ways at w=%d", w)
		}
		prev = refs[w].writebacks
	}
}

func TestHierarchyAccessRWPropagatesWriteback(t *testing.T) {
	h := NewHierarchy()
	sets := config.L3BytesPerCore / config.BlockBytes / config.L3WaysPerCore
	stride := uint64(sets * config.BlockBytes)
	// Dirty a block, then stream conflicting blocks until it is evicted
	// from every allocation.
	h.AccessRW(0, true)
	var seen uint32
	for i := uint64(1); i < 64; i++ {
		r := h.AccessRW(i*stride, false)
		seen |= r.Writebacks
	}
	if seen&(1<<0) == 0 {
		t.Fatal("1-way allocation never wrote the dirty block back")
	}
	if seen&(1<<(config.MaxWays-1)) == 0 {
		t.Fatal("16-way allocation never wrote the dirty block back")
	}
}
