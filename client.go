package qosrm

import (
	"context"

	"qosrm/internal/api"
	"qosrm/internal/client"
	"qosrm/internal/server"
)

// Serving-layer types, re-exported so clients and embedders need only
// this package. The implementations live in internal/server (the
// daemon), internal/api (the wire types) and internal/client (the
// retrying client — the same code a cluster node uses to forward
// overflow jobs to a peer).
type (
	// ServerOptions configures an embedded qosrmd API server.
	ServerOptions = server.Options
	// Server is the qosrmd API server; see System.NewServer.
	Server = server.Server
	// ServiceHealth is the GET /healthz response.
	ServiceHealth = server.Health
	// ServiceJob is the status of one asynchronous sweep job. Origin is
	// non-empty when a cluster node forwarded the submit to a peer: the
	// job lives there, and Client.At(job.Origin) polls it.
	ServiceJob = server.JobStatus
	// SavingsRequest is the POST /v1/savings body.
	SavingsRequest = server.SavingsRequest
	// SavingsResponse is the POST /v1/savings response.
	SavingsResponse = server.SavingsResponse
	// Client is a qosrmd API client; see DialService. Transient
	// failures (connection refused/reset, 429, 502/503/504) are retried
	// with exponential backoff and jitter, honouring Retry-After.
	Client = client.Client
	// ServiceError is a non-2xx response from the service, carrying the
	// machine-readable rejection reason ("queue_full", "rate_limited",
	// "batch_too_large", ...) so callers can route on Reason instead of
	// matching message strings.
	ServiceError = client.ServiceError
	// ServiceJobEvent is one frame of a job's live event stream
	// (GET /v1/jobs/{id}/events): an "interval" frame per interval
	// boundary of the simulation, then a terminal "done" / "failed" /
	// "expired" frame. Dropped counts events the bounded per-job ring
	// overwrote before this consumer read them.
	ServiceJobEvent = api.JobEvent
	// JobEventStream iterates a live job event stream; see
	// Client.JobEvents. Next returns frames until the terminal one, then
	// io.EOF; Close releases the connection early.
	JobEventStream = client.EventStream
)

// NewServer starts the qosrmd API server — the same serving layer
// cmd/qosrmd runs — over this system's database: savings evaluations,
// synchronous scenario runs and an asynchronous sweep-job queue backed
// by a bounded worker pool. With ServerOptions.JournalPath set, the job
// queue is crash-safe: New replays the journal, so the error return
// covers an unopenable or version-incompatible journal file. With
// ServerOptions.Peers or Join naming gossip seeds (and Advertise set so
// peers can reach this node), the node runs in cluster mode: it
// discovers the rest of the cluster by anti-entropy gossip, expels dead
// members within seconds via a SWIM-lite failure detector, and forwards
// overflow jobs to the least-loaded live member instead of answering
// 503. The caller owns the lifecycle: mount Handler() on a listener and
// Close() the server on shutdown.
func (s *System) NewServer(opts ServerOptions) (*Server, error) {
	return server.New(s.db, opts)
}

// FetchClusterSnapshot bootstraps a joining node that has no local
// database: it fetches the dbstore snapshot from the first reachable
// seed (GET /v1/snapshot), verifies it end to end — magic, version,
// checksum, params hash against this binary's compiled-in suite —
// persists it to path (atomic; "" skips persisting) and returns the
// loaded database, ready for FromDB(...).NewServer, along with the seed
// that served it. A version or suite mismatch refuses the join: every
// node of a cluster must serve the same database build.
func FetchClusterSnapshot(ctx context.Context, path string, seeds []string) (*DB, string, error) {
	return server.FetchSnapshot(ctx, path, seeds)
}

// DialService connects to a running qosrmd instance at baseURL (e.g.
// "http://127.0.0.1:8423") and verifies it is healthy before returning.
func DialService(baseURL string) (*Client, error) {
	return client.Dial(baseURL)
}

// NewClient returns a client for the qosrmd instance at baseURL without
// probing it; DialService is NewClient plus a health check.
func NewClient(baseURL string) *Client {
	return client.New(baseURL)
}
