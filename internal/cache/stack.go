package cache

import (
	"fmt"
	"math/bits"

	"qosrm/internal/config"
)

// LRUStack simulates the tag state of a set-associative LRU cache and
// reports, for each access, the recency (stack) position it hit in. For
// an LRU cache the inclusion property holds: an access at position p hits
// in every allocation of at least p ways, so one pass yields the miss
// count for every possible way allocation simultaneously. This is the
// principle behind the Auxiliary Tag Directory (Section III-C).
type LRUStack struct {
	setShift  uint
	setMask   uint64
	ways      int
	tags      []uint64
	valid     []bool
	blockMask uint64

	// dirty carries one bit per tracked allocation for writeback
	// profiling (see writeback.go); allocated on first AccessRW.
	dirty []uint32
}

// NewLRUStack builds a stack simulator with the given number of sets
// (a power of two) and maximum tracked ways.
func NewLRUStack(sets, ways int) (*LRUStack, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: LRU stack set count %d is not a power of two", sets)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("cache: LRU stack needs positive ways, got %d", ways)
	}
	return &LRUStack{
		setShift:  uint(bits.TrailingZeros(uint(config.BlockBytes))),
		setMask:   uint64(sets - 1),
		ways:      ways,
		tags:      make([]uint64, sets*ways),
		valid:     make([]bool, sets*ways),
		blockMask: ^uint64(config.BlockBytes - 1),
	}, nil
}

// MustNewLRUStack is NewLRUStack for known-good geometry.
func MustNewLRUStack(sets, ways int) *LRUStack {
	s, err := NewLRUStack(sets, ways)
	if err != nil {
		panic(err)
	}
	return s
}

// Ways returns the deepest recency position tracked.
func (s *LRUStack) Ways() int { return s.ways }

// Access touches addr and returns its 1-based recency position before
// the access, or 0 if the tag was not resident in any tracked position
// (a miss for every allocation).
func (s *LRUStack) Access(addr uint64) int {
	tag := addr & s.blockMask
	base := int((addr>>s.setShift)&s.setMask) * s.ways
	row := s.tags[base : base+s.ways]
	val := s.valid[base : base+s.ways]
	pos := 0
	for i := 0; i < s.ways; i++ {
		// Tag first: it almost always differs, sparing the validity load.
		if row[i] == tag && val[i] {
			pos = i + 1
			copy(row[1:], row[:i])
			copy(val[1:], val[:i])
			row[0], val[0] = tag, true
			return pos
		}
	}
	copy(row[1:], row[:s.ways-1])
	copy(val[1:], val[:s.ways-1])
	row[0], val[0] = tag, true
	return 0
}

// Clone returns a deep copy of the stack: tag, validity and dirty state
// are duplicated so the copy can be accessed independently. It is the
// snapshot primitive behind warm-once/run-many database sweeps.
func (s *LRUStack) Clone() *LRUStack {
	c := &LRUStack{
		setShift:  s.setShift,
		setMask:   s.setMask,
		ways:      s.ways,
		tags:      append([]uint64(nil), s.tags...),
		valid:     append([]bool(nil), s.valid...),
		blockMask: s.blockMask,
	}
	if s.dirty != nil {
		c.dirty = append([]uint32(nil), s.dirty...)
	}
	return c
}

// AccessReference is the seed implementation of Access, retained
// verbatim as the equivalence and benchmark baseline for the database
// sweep's reference path.
func (s *LRUStack) AccessReference(addr uint64) int {
	tag := addr & s.blockMask
	base := int((addr>>s.setShift)&s.setMask) * s.ways
	row := s.tags[base : base+s.ways]
	val := s.valid[base : base+s.ways]
	pos := 0
	for i := 0; i < s.ways; i++ {
		if val[i] && row[i] == tag {
			pos = i + 1
			copy(row[1:], row[:i])
			copy(val[1:], val[:i])
			row[0], val[0] = tag, true
			return pos
		}
	}
	copy(row[1:], row[:s.ways-1])
	copy(val[1:], val[:s.ways-1])
	row[0], val[0] = tag, true
	return 0
}

// Reset clears the stack contents and dirty state.
func (s *LRUStack) Reset() {
	for i := range s.valid {
		s.valid[i] = false
	}
	for i := range s.dirty {
		s.dirty[i] = 0
	}
}

// Hierarchy is the private memory hierarchy of one core plus an LRU
// profile of its LLC slice. Instruction fetch is assumed to hit in L1-I
// (SPEC-class workloads have negligible L1-I MPKI), so only data accesses
// are simulated.
type Hierarchy struct {
	L1D *Cache
	L2  *Cache
	// LLC profiles recency positions over the maximum per-core
	// allocation (16 ways); position p means the access hits for every
	// allocation w ≥ p.
	LLC *LRUStack
}

// NewHierarchy builds a Table I private hierarchy. The LLC profile uses
// the per-core slice geometry: 16 ways deep over the baseline number of
// sets, so positions map directly to way allocations.
func NewHierarchy() *Hierarchy {
	sets := config.L3BytesPerCore / config.BlockBytes / config.L3WaysPerCore
	return &Hierarchy{
		L1D: MustNew(config.L1Bytes, config.L1Ways),
		L2:  MustNew(config.L2Bytes, config.L2Ways),
		LLC: MustNewLRUStack(sets, config.MaxWays),
	}
}

// AccessResult describes where a data access was satisfied.
type AccessResult struct {
	// Level is 1 or 2 for private-cache hits, 3 when the access reached
	// the shared LLC.
	Level int
	// LLCPos is the LLC recency position (1-based) when Level == 3;
	// 0 means the line was absent from all 16 tracked ways.
	LLCPos int
	// Writebacks has bit w-1 set when a w-way LLC wrote this block back
	// to DRAM since its previous touch (write-back eviction).
	Writebacks uint32
}

// Access sends a data access through the hierarchy.
func (h *Hierarchy) Access(addr uint64) AccessResult {
	return h.AccessRW(addr, false)
}

// AccessRW is Access with store semantics: writes reaching the LLC dirty
// the line, and the result reports which allocations wrote the block
// back to DRAM since its previous touch.
func (h *Hierarchy) AccessRW(addr uint64, write bool) AccessResult {
	if h.L1D.Access(addr) {
		return AccessResult{Level: 1}
	}
	if h.L2.Access(addr) {
		return AccessResult{Level: 2}
	}
	pos, wb := h.LLC.AccessRW(addr, write)
	return AccessResult{Level: 3, LLCPos: pos, Writebacks: wb}
}
