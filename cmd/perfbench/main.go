// Command perfbench runs the repository's performance benchmark suite
// (internal/perfbench) and writes the results as a JSON report, so the
// performance trajectory of the hot paths — database sweep, RM
// invocation, record lookup, co-simulation — is recorded alongside the
// code. Commit the output as BENCH_<n>.json when a PR changes a hot
// path.
//
// With -baseline it additionally acts as a regression gate: the fresh
// results are diffed against the committed baseline report and the run
// fails when a watched hot path (DatabaseBuild, RMInvocation,
// CoSimulation) regressed by more than -gate (default 25%). A failing
// comparison is re-measured up to -gate-retries times and judged on the
// best observed run, so co-tenant noise on shared CI runners does not
// fail the gate spuriously.
//
// Usage:
//
//	go run ./cmd/perfbench [-short] [-o BENCH_1.json] [-baseline BENCH_2.json] [-gate 0.25] [-load]
//
// With -load, the report additionally embeds an open-loop load-test
// comparison (internal/loadgen): the same saturating arrival rate fired
// at one standalone node and at a two-node cluster, recording reject
// rate, admitted throughput and p50/p99 submit latency for each. The
// gate ignores these entries; the committed trajectory tracks them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"qosrm/internal/perfbench"
)

func main() {
	// All gating and I/O happens in run so its defers — most
	// importantly StopCPUProfile — complete before os.Exit; exiting
	// from inside run would truncate the -cpuprofile output exactly
	// when the gate fails, the case CI most wants the profile for.
	os.Exit(run())
}

func run() int {
	short := flag.Bool("short", false, "shrink workloads for CI (subset suite)")
	out := flag.String("o", "BENCH.json", "output JSON path")
	baseline := flag.String("baseline", "", "committed report to gate regressions against")
	gate := flag.Float64("gate", 0.25, "max allowed ns/op regression vs -baseline (fraction)")
	retries := flag.Int("gate-retries", 1, "re-measurements before a gate failure is final")
	load := flag.Bool("load", false, "also run the open-loop load comparison (single node vs two-node cluster) and embed it in the report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the suite run to this path (CI uploads it so perf work starts from a committed profile)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	start := time.Now()
	rep, err := perfbench.Run(*short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		return 1
	}
	if *load {
		if rep.Load, err = perfbench.RunLoad(*short); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			return 1
		}
	}

	if err := writeReport(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		return 1
	}

	for _, r := range rep.Results {
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op  (n=%d)\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.N)
	}
	fmt.Println()
	fmt.Print(rep.Summary())
	fmt.Printf("wrote %s in %s\n", *out, time.Since(start).Round(time.Millisecond))

	if w := rep.ScalingWarning(); w != "" {
		// GitHub Actions surfaces ::warning:: lines as run annotations;
		// locally it is just a loud duplicate of the summary's warning.
		fmt.Printf("::warning title=perfbench parallel scaling::%s\n", w)
	}

	if *baseline != "" {
		base, err := perfbench.LoadReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			return 1
		}
		names := perfbench.GateNames(rep, base)
		if len(names) < len(perfbench.GateBenchmarks) {
			fmt.Printf("gate: baseline %s and this run differ in short mode; gating %v only\n", *baseline, names)
		}
		best := rep
		for try := 0; ; try++ {
			err := perfbench.Gate(best, base, names, *gate)
			if err == nil {
				fmt.Printf("gate vs %s passed (limit +%.0f%%)\n", *baseline, 100**gate)
				break
			}
			if try >= *retries {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			// Shared runners are noisy and a co-tenant can only slow a
			// measurement down: re-measure and gate on the best of the
			// observed runs before declaring a regression.
			fmt.Printf("gate attempt %d failed (%v); re-measuring\n", try+1, err)
			again, err := perfbench.Run(*short)
			if err != nil {
				fmt.Fprintln(os.Stderr, "perfbench:", err)
				return 1
			}
			best = perfbench.BestOf(best, again)
		}
		if best != rep {
			// The gate passed on re-measured numbers: keep the written
			// artifact consistent with what the gate accepted.
			if err := writeReport(*out, best); err != nil {
				fmt.Fprintln(os.Stderr, "perfbench:", err)
				return 1
			}
		}
	}
	return 0
}

// writeReport serialises a report to path.
func writeReport(path string, rep *perfbench.Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
