// Package trace generates deterministic synthetic instruction streams.
//
// The paper drives its simulators with SimPoint-selected regions of SPEC
// CPU2006 executions. SPEC binaries and traces are proprietary, so this
// reproduction replaces them with parameterised synthetic streams: each
// benchmark phase is a Params value whose knobs control exactly the
// properties the paper's resource managers care about —
//
//   - instruction-level parallelism, via register dependence distances
//     and the fraction of long-latency arithmetic;
//   - memory-level parallelism, via bursts of independent loads, the
//     spacing between loads, and pointer-chase (load-to-load dependent)
//     fractions;
//   - cache sensitivity, via a mixture of address regions with different
//     footprints and access patterns;
//   - branch behaviour, via branch density and misprediction rate.
//
// Streams are reproducible: the same Params (including Seed) always
// yields the same instruction sequence.
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"qosrm/internal/config"
)

// Kind classifies an instruction for the timing model.
type Kind uint8

// Instruction kinds. KindALU completes in one cycle, KindMul in four;
// loads and stores access the memory hierarchy; branches may flush the
// front end when mispredicted.
const (
	KindALU Kind = iota
	KindMul
	KindLoad
	KindStore
	KindBranch
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindMul:
		return "mul"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MulLatencyCycles is the execution latency of KindMul instructions.
const MulLatencyCycles = 4

// Inst is one dynamic instruction of a synthetic stream.
//
// Dep1 and Dep2 are backward distances (in dynamic instructions) to the
// producers of this instruction's source operands; zero means "no
// dependence". Addr is the byte address touched by loads and stores.
type Inst struct {
	Kind       Kind
	Mispredict bool  // meaningful for KindBranch only
	Dep1       int32 // backward distance to first producer, 0 = none
	Dep2       int32 // backward distance to second producer, 0 = none
	Addr       uint64
}

// Region describes one address region of a synthetic footprint.
type Region struct {
	// Bytes is the region footprint. Regions smaller than the private L2
	// make their accesses invisible to the LLC; regions of a few MB make
	// the application cache sensitive around the baseline 2 MB
	// allocation; regions much larger than the maximum allocation make
	// it a streaming, cache-insensitive consumer.
	Bytes uint64
	// Weight is the relative probability that a memory access falls in
	// this region. Weights need not sum to one.
	Weight float64
	// Sequential selects a striding cursor through the region instead of
	// uniform random block selection. Sequential regions produce spatial
	// locality (L1 hits) and, for large footprints, pure streaming.
	Sequential bool
	// WindowBytes, when non-zero, restricts random accesses to a working
	// window of this size that slides through the region (the classic
	// working-set model). A cache allocation larger than the window
	// captures nearly all accesses; smaller allocations capture a
	// proportional share, producing the linear miss-vs-ways utility
	// curves of cache-sensitive applications.
	WindowBytes uint64
	// DriftEvery is the number of region accesses between one-block
	// advances of the working window; the drift adds a floor of
	// compulsory misses. Zero keeps the window static.
	DriftEvery int
}

// Params fully determines a synthetic instruction stream.
type Params struct {
	Seed int64

	// Instruction mix. Fractions must be non-negative and sum to < 1;
	// the remainder is split between single-cycle ALU and 4-cycle MUL
	// operations according to MulFrac (a fraction of the remainder).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	MulFrac    float64

	// BranchMissRate is the probability that a branch is mispredicted.
	BranchMissRate float64

	// DepProb is the probability that a non-load instruction depends on
	// an earlier instruction; DepMean is the mean backward distance of
	// such dependences (geometric). Short distances serialise execution
	// (low ILP); long distances leave the stream issue-width bound.
	DepProb float64
	DepMean float64

	// BurstProb is the probability that a due load starts a burst into
	// the main region (the last region of the mixture) instead of being
	// a single mixture load. Together with LoadFrac it controls how much
	// traffic reaches the LLC, and therefore the MPKI.
	BurstProb float64

	// BurstLen is the number of consecutive independent main-region
	// loads emitted when a burst starts; bursts model the
	// independent-miss clusters that create MLP. BurstSpread spreads the
	// loads of a burst over the instruction stream: a load is emitted
	// every BurstSpread instructions while a burst is active. Large
	// spreads make MLP sensitive to ROB size (a small window cannot
	// cover the whole burst), which is what makes an application
	// parallelism sensitive.
	BurstLen    int
	BurstSpread int

	// ChaseFrac is the fraction of main-region loads that depend on the
	// previous main-region load (pointer chasing); chased loads
	// serialise misses and cap MLP near one regardless of window size.
	ChaseFrac float64

	// StoreMainFrac is the fraction of stores addressed to the main
	// region (window-aware); these dirty LLC lines and create write-back
	// traffic to DRAM. The remaining stores follow the region mixture.
	StoreMainFrac float64

	// Regions is the address footprint mixture; it must be non-empty.
	Regions []Region
}

// MaxRegionBytes bounds one region's footprint (1 TiB). The bound keeps
// block arithmetic far from integer overflow for any Validate-accepted
// parameter set (found by FuzzParamsValidate: a region of 2⁶³ bytes
// drives the block sampler's int64 conversion negative).
const MaxRegionBytes = 1 << 40

// MaxRegions bounds the footprint mixture size.
const MaxRegions = 256

// Validate reports the first problem with p, or nil.
func (p Params) Validate() error {
	for _, f := range [...]float64{
		p.LoadFrac, p.StoreFrac, p.BranchFrac, p.MulFrac,
		p.BranchMissRate, p.DepProb, p.DepMean, p.BurstProb,
		p.ChaseFrac, p.StoreMainFrac,
	} {
		// NaNs would slide through every range check below (all
		// comparisons are false), so reject non-finite values first.
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return errors.New("trace: non-finite parameter")
		}
	}
	if p.LoadFrac < 0 || p.StoreFrac < 0 || p.BranchFrac < 0 || p.MulFrac < 0 {
		return errors.New("trace: negative instruction-mix fraction")
	}
	if s := p.LoadFrac + p.StoreFrac + p.BranchFrac; s >= 1 {
		return fmt.Errorf("trace: load+store+branch fractions sum to %.3f, want < 1", s)
	}
	if p.DepMean < 0 {
		return fmt.Errorf("trace: negative dependence distance %.3f", p.DepMean)
	}
	if p.BranchMissRate < 0 || p.BranchMissRate > 1 {
		return fmt.Errorf("trace: branch miss rate %.3f outside [0,1]", p.BranchMissRate)
	}
	if p.DepProb < 0 || p.DepProb > 1 {
		return fmt.Errorf("trace: dep probability %.3f outside [0,1]", p.DepProb)
	}
	if p.ChaseFrac < 0 || p.ChaseFrac > 1 {
		return fmt.Errorf("trace: chase fraction %.3f outside [0,1]", p.ChaseFrac)
	}
	if p.BurstProb < 0 || p.BurstProb > 1 {
		return fmt.Errorf("trace: burst probability %.3f outside [0,1]", p.BurstProb)
	}
	if p.StoreMainFrac < 0 || p.StoreMainFrac > 1 {
		return fmt.Errorf("trace: store main fraction %.3f outside [0,1]", p.StoreMainFrac)
	}
	if len(p.Regions) == 0 {
		return errors.New("trace: at least one address region required")
	}
	if len(p.Regions) > MaxRegions {
		return fmt.Errorf("trace: %d regions, want at most %d", len(p.Regions), MaxRegions)
	}
	total := 0.0
	for i, r := range p.Regions {
		if r.Bytes < config.BlockBytes {
			return fmt.Errorf("trace: region %d smaller than one cache block", i)
		}
		if r.Bytes > MaxRegionBytes {
			return fmt.Errorf("trace: region %d larger than %d bytes", i, uint64(MaxRegionBytes))
		}
		if r.Weight < 0 || math.IsNaN(r.Weight) || math.IsInf(r.Weight, 0) {
			return fmt.Errorf("trace: region %d weight not a finite non-negative number", i)
		}
		if r.WindowBytes > r.Bytes {
			return fmt.Errorf("trace: region %d window larger than region", i)
		}
		if r.DriftEvery < 0 {
			return fmt.Errorf("trace: region %d has negative drift", i)
		}
		total += r.Weight
	}
	if total <= 0 || math.IsInf(total, 0) {
		return errors.New("trace: region weights sum to zero or overflow")
	}
	return nil
}

// Generator produces the instruction stream described by a Params.
// It is not safe for concurrent use; create one per goroutine.
type Generator struct {
	p         Params
	rng       *rand.Rand
	bases     []uint64 // region base addresses
	cursors   []uint64 // per-region sequential cursors (block units)
	winStart  []uint64 // per-region working-window start (block units)
	accesses  []int64  // per-region access counts (drives window drift)
	cumWeight []float64
	burstLeft int   // loads remaining in the current burst
	sinceLoad int   // instructions since the last load of an active burst
	lastMain  int64 // index of the most recent main-region load, -1 if none
	emitted   int64
}

// NewGenerator returns a generator for p. It panics if p is invalid; use
// Params.Validate to check untrusted parameters first.
func NewGenerator(p Params) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		p:        p,
		rng:      rand.New(rand.NewSource(p.Seed)),
		lastMain: -1,
	}
	// Lay regions out back to back, aligned to blocks, with a guard gap
	// so distinct regions never share a cache block.
	var next uint64
	total := 0.0
	for _, r := range p.Regions {
		g.bases = append(g.bases, next)
		g.cursors = append(g.cursors, 0)
		g.winStart = append(g.winStart, 0)
		g.accesses = append(g.accesses, 0)
		blocks := (r.Bytes + config.BlockBytes - 1) / config.BlockBytes
		next += (blocks + 1) * config.BlockBytes
		total += r.Weight
		g.cumWeight = append(g.cumWeight, total)
	}
	for i := range g.cumWeight {
		g.cumWeight[i] /= total
	}
	return g
}

// Params returns the parameters the generator was built with.
func (g *Generator) Params() Params { return g.p }

// pickRegion samples a region index according to the weight mixture.
func (g *Generator) pickRegion() int {
	x := g.rng.Float64()
	for i, c := range g.cumWeight {
		if x <= c {
			return i
		}
	}
	return len(g.cumWeight) - 1
}

// address produces the next byte address within region ri.
func (g *Generator) address(ri int) uint64 {
	r := g.p.Regions[ri]
	blocks := r.Bytes / config.BlockBytes
	if blocks == 0 {
		blocks = 1
	}
	var block uint64
	switch {
	case r.Sequential:
		block = g.cursors[ri] % blocks
		g.cursors[ri]++
	case r.WindowBytes > 0:
		// Working-set model: uniform within a window that slides one
		// block every DriftEvery accesses.
		g.accesses[ri]++
		if r.DriftEvery > 0 && g.accesses[ri]%int64(r.DriftEvery) == 0 {
			g.winStart[ri]++
		}
		wblocks := r.WindowBytes / config.BlockBytes
		if wblocks < 1 {
			wblocks = 1
		}
		block = (g.winStart[ri] + uint64(g.rng.Int63n(int64(wblocks)))) % blocks
	default:
		block = uint64(g.rng.Int63n(int64(blocks)))
	}
	return g.bases[ri] + block*config.BlockBytes
}

// mainRegion is the index of the large (LLC-visible) region: the last
// region of the mixture. Streams with a single region have no distinct
// main region and return -1.
func (g *Generator) mainRegion() int {
	if len(g.p.Regions) < 2 {
		return -1
	}
	return len(g.p.Regions) - 1
}

// dep samples a backward dependence distance for the instruction at
// stream index idx, bounded so it never points before the stream start.
func (g *Generator) dep(idx int64) int32 {
	if g.p.DepProb <= 0 || g.rng.Float64() >= g.p.DepProb || idx == 0 {
		return 0
	}
	mean := g.p.DepMean
	if mean < 1 {
		mean = 1
	}
	// Geometric with the requested mean, clamped to the stream prefix.
	d := int64(1)
	p := 1 / mean
	for g.rng.Float64() > p && d < 4*int64(mean) {
		d++
	}
	if d > idx {
		d = idx
	}
	return int32(d)
}

// Next returns the next instruction of the stream. The stream is
// unbounded; callers decide how many instructions a phase contains.
func (g *Generator) Next() Inst {
	idx := g.emitted
	g.emitted++

	main := g.mainRegion()

	// An active burst emits one main-region load every BurstSpread
	// instructions until it drains.
	if g.burstLeft > 0 {
		g.sinceLoad++
		spread := g.p.BurstSpread
		if spread < 1 {
			spread = 1
		}
		if g.sinceLoad >= spread {
			g.sinceLoad = 0
			g.burstLeft--
			return g.mainLoad(idx, main)
		}
	} else if g.rng.Float64() < g.p.LoadFrac {
		if main >= 0 && g.rng.Float64() < g.p.BurstProb {
			// Start a burst into the main region.
			burst := g.p.BurstLen
			if burst < 1 {
				burst = 1
			}
			g.burstLeft = burst - 1
			g.sinceLoad = 0
			return g.mainLoad(idx, main)
		}
		// Single load drawn from the full region mixture.
		ri := g.pickRegion()
		if ri == main {
			return g.mainLoad(idx, ri)
		}
		return Inst{Kind: KindLoad, Addr: g.address(ri), Dep1: g.dep(idx)}
	}

	x := g.rng.Float64()
	rest := 1 - g.p.LoadFrac
	switch {
	case x < g.p.StoreFrac/rest:
		ri := g.pickRegion()
		if main >= 0 && g.rng.Float64() < g.p.StoreMainFrac {
			ri = main
		}
		return Inst{Kind: KindStore, Addr: g.address(ri), Dep1: g.dep(idx)}
	case x < (g.p.StoreFrac+g.p.BranchFrac)/rest:
		return Inst{
			Kind:       KindBranch,
			Mispredict: g.rng.Float64() < g.p.BranchMissRate,
			Dep1:       g.dep(idx),
		}
	default:
		k := KindALU
		if g.rng.Float64() < g.p.MulFrac {
			k = KindMul
		}
		return Inst{Kind: k, Dep1: g.dep(idx), Dep2: g.dep(idx)}
	}
}

// mainLoad emits a load to the main region, applying pointer chasing.
func (g *Generator) mainLoad(idx int64, ri int) Inst {
	if ri < 0 {
		ri = 0
	}
	in := Inst{Kind: KindLoad, Addr: g.address(ri)}
	if g.lastMain >= 0 && g.rng.Float64() < g.p.ChaseFrac {
		// Pointer chase: this load consumes the previous main load's value.
		in.Dep1 = int32(idx - g.lastMain)
	}
	g.lastMain = idx
	return in
}

// Generate materialises the first n instructions of the stream for p.
func Generate(p Params, n int) []Inst {
	g := NewGenerator(p)
	out := make([]Inst, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
