package qosrm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"qosrm/internal/server"
)

// Serving-layer types, re-exported so clients and embedders need only
// this package.
type (
	// ServerOptions configures an embedded qosrmd API server.
	ServerOptions = server.Options
	// Server is the qosrmd API server; see System.NewServer.
	Server = server.Server
	// ServiceHealth is the GET /healthz response.
	ServiceHealth = server.Health
	// ServiceJob is the status of one asynchronous sweep job.
	ServiceJob = server.JobStatus
	// SavingsRequest is the POST /v1/savings body.
	SavingsRequest = server.SavingsRequest
	// SavingsResponse is the POST /v1/savings response.
	SavingsResponse = server.SavingsResponse
)

// NewServer starts the qosrmd API server — the same serving layer
// cmd/qosrmd runs — over this system's database: savings evaluations,
// synchronous scenario runs and an asynchronous sweep-job queue backed
// by a bounded worker pool. The caller owns the lifecycle: mount
// Handler() on a listener and Close() the server on shutdown.
func (s *System) NewServer(opts ServerOptions) *Server {
	return server.New(s.db, opts)
}

// Client is a qosrmd API client; DialService returns a connected one.
type Client struct {
	base string
	// HTTPClient may be replaced before first use; DialService installs
	// a default with a 30 s overall timeout.
	HTTPClient *http.Client
}

// DialService connects to a running qosrmd instance at baseURL (e.g.
// "http://127.0.0.1:8423") and verifies it is healthy before returning.
func DialService(baseURL string) (*Client, error) {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Health(ctx); err != nil {
		return nil, fmt.Errorf("qosrm: dial %s: %w", baseURL, err)
	}
	return c, nil
}

// Health fetches the service's health report.
func (c *Client) Health(ctx context.Context) (*ServiceHealth, error) {
	var h ServiceHealth
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Savings evaluates an application mix on the service: the configured
// manager against its idle twin, exactly System.Savings but on the
// server's shared warm database.
func (c *Client) Savings(ctx context.Context, req *SavingsRequest) (*SavingsResponse, error) {
	var out SavingsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/savings", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RunScenario executes one declarative scenario synchronously on the
// service. The report is bit-identical to System.RunScenario on the
// same spec (equivalence-tested).
func (c *Client) RunScenario(ctx context.Context, spec *ScenarioSpec) (*ScenarioReport, error) {
	var out ScenarioReport
	if err := c.do(ctx, http.MethodPost, "/v1/scenarios", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitSweep queues a batch of scenarios as an asynchronous job and
// returns its initial status (carrying the job ID to poll).
func (c *Client) SubmitSweep(ctx context.Context, specs []ScenarioSpec) (*ServiceJob, error) {
	var out ServiceJob
	req := struct {
		Specs []ScenarioSpec `json:"specs"`
	}{specs}
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches the current status of an asynchronous job.
func (c *Client) Job(ctx context.Context, id string) (*ServiceJob, error) {
	var out ServiceJob
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it finishes (done or failed) or ctx
// expires. poll ≤ 0 defaults to 50 ms.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*ServiceJob, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State == server.JobDone || j.State == server.JobFailed {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// do runs one JSON round trip, decoding the service's error envelope on
// non-2xx statuses.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("qosrm: %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("qosrm: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("qosrm: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("qosrm: %s %s: %w", method, path, err)
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("qosrm: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("qosrm: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("qosrm: %s %s: decode response: %w", method, path, err)
	}
	return nil
}
