// Command qosrmd is the QoS-RM serving daemon: it loads a prebuilt
// database snapshot (or builds the database on first start) and serves
// the HTTP/JSON API — savings evaluations, synchronous scenario runs,
// asynchronous sweep jobs, health and metrics — so any number of clients
// share one warm database instead of rebuilding it per process.
//
// Usage:
//
//	qosrmd -snapshot suite.qosdb [-addr :8423]
//	qosrmd -snapshot suite.qosdb -build [-tracelen 65536] [-warmup 16384]
//	qosrmd -snapshot suite.qosdb -journal jobs.jnl [-rate 100] [-burst 200]
//	qosrmd -snapshot suite.qosdb -peers http://b:8423,http://c:8423
//
// With -peers, the daemon runs in cluster mode: a sweep submission that
// would be rejected with queue_full is forwarded to the least-loaded
// live peer (ranked by each peer's /healthz queue occupancy) with the
// caller's Idempotency-Key propagated verbatim; the response carries
// the peer's job handle with "origin" set to the peer's base URL, and
// the peer's journal owns the job. The X-Qosrm-Forwarded hop counter
// (bounded by -forward-hops) keeps a fully saturated cluster from
// looping a job between nodes: it degrades to an honest 503.
//
// With -journal, submitted sweep jobs are journaled to disk before they
// are acknowledged: a daemon killed mid-sweep re-enqueues the unfinished
// scenarios on the next boot and serves already-computed reports from
// the log. With -rate, each client host gets a token bucket; limited
// requests receive 429 with a Retry-After header.
//
// With -build, a missing or stale snapshot is rebuilt from the compiled
// suite and saved back to -snapshot, so the first boot pays the sweep
// once and every later boot is a fast load. Without -build, a bad
// snapshot is a startup error (the deployment intended an offline dbgen
// feed).
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, inflight
// requests get a shutdown grace period, and the job worker pool is
// cancelled through the lifecycle context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/dbstore"
	"qosrm/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qosrmd: ")
	addr := flag.String("addr", ":8423", "listen address")
	snapshot := flag.String("snapshot", "suite.qosdb", "database snapshot path (see cmd/dbgen)")
	build := flag.Bool("build", false, "build the database (and save the snapshot) when the snapshot is missing or stale")
	traceLen := flag.Int("tracelen", 65536, "instructions per phase for -build")
	warmup := flag.Int("warmup", 16384, "warm-up instructions per phase for -build")
	buildWorkers := flag.Int("build-workers", 0, "parallel builders for -build (0 = GOMAXPROCS)")
	pool := flag.Int("pool", 0, "job worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "max queued scenarios across all jobs")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period")
	jobTTL := flag.Duration("job-ttl", time.Hour, "how long finished jobs stay queryable before GC (negative keeps them forever)")
	journal := flag.String("journal", "", "job journal path; when set, submitted jobs survive crashes and restarts (empty disables)")
	rate := flag.Float64("rate", 0, "per-client request rate limit in requests/second (0 disables)")
	burst := flag.Int("burst", 0, "rate-limit burst size (0 = one second of -rate)")
	retries := flag.Int("job-retries", 0, "retries per failed scenario before its error is recorded (0 = default 2, negative disables)")
	peers := flag.String("peers", "", "comma-separated base URLs of cluster peers (e.g. http://a:8423,http://b:8423); queue-full submits are forwarded to the least-loaded live peer (empty runs standalone)")
	forwardHops := flag.Int("forward-hops", 0, "max peer-forwarding hops before a saturated cluster answers 503 (0 = default 1, negative disables forwarding)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, err := openDB(ctx, *snapshot, *build, *traceLen, *warmup, *buildWorkers)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(d, server.Options{
		Workers:      *pool,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		JobTTL:       *jobTTL,
		JournalPath:  *journal,
		JobRetries:   *retries,
		RatePerSec:   *rate,
		RateBurst:    *burst,
		Peers:        splitPeers(*peers),
		ForwardHops:  *forwardHops,
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("serving %d benchmarks on %s", len(d.Benchmarks()), *addr)

	select {
	case err := <-errCh:
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (grace %s)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
}

// splitPeers parses the -peers list, dropping empty entries so a
// trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// openDB resolves the database the daemon serves: the snapshot when it
// loads cleanly, else a fresh build (saved back) when -build allows it.
func openDB(ctx context.Context, path string, build bool, traceLen, warmup, workers int) (*db.DB, error) {
	start := time.Now()
	d, h, err := dbstore.Load(path)
	if err == nil {
		log.Printf("loaded %s: %d benchmarks / %d phases, %d bytes, %s",
			path, h.Benchmarks, h.Phases, h.Bytes, time.Since(start).Round(time.Millisecond))
		return d, nil
	}
	if !build {
		return nil, fmt.Errorf("%w (run dbgen, or pass -build)", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		log.Printf("snapshot unusable (%v); rebuilding", err)
	}
	d, err = db.BuildContext(ctx, bench.Suite(), db.Options{
		TraceLen: traceLen,
		Warmup:   warmup,
		Workers:  workers,
	})
	if err != nil {
		return nil, err
	}
	if err := dbstore.Save(path, d); err != nil {
		return nil, err
	}
	log.Printf("built and saved %s in %s", path, time.Since(start).Round(time.Millisecond))
	return d, nil
}
