// Package perfbench is the repository's performance measurement layer:
// a fixed suite of benchmarks over the hot paths of the reproduction —
// the detailed-simulation database sweep, the per-interval resource-
// manager invocation (Localize + GlobalOptimize), the database record
// lookup, and a whole co-simulation — each measured both through its
// optimized implementation and through the retained seed reference.
//
// The suite is executed by cmd/perfbench, which serialises the results
// as a BENCH_<n>.json file committed to the repository so the
// performance trajectory is tracked across PRs. Because the optimized
// and reference paths are asserted bit-identical by the equivalence
// tests, the ratios reported here measure pure implementation speed,
// not behavioural drift.
package perfbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/dbstore"
	"qosrm/internal/loadgen"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/scenario"
	"qosrm/internal/server"
	"qosrm/internal/sim"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// WallMs is the wall-clock the entry took to measure end to end
	// (all of testing.Benchmark's calibration runs, not just the final
	// one) — it makes a committed report auditable: an entry whose
	// ns/op claims X but whose wall-clock could not have covered N×X
	// was measured wrong.
	WallMs float64 `json:"wall_ms,omitempty"`
}

// Report is the serialised form of one suite execution.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs records the scheduler width the suite actually ran
	// with. NumCPU alone cannot distinguish "flat parallel curve
	// because the code doesn't scale" from "flat because the runtime
	// was pinned to one P" — a committed report must say which.
	GoMaxProcs int      `json:"gomaxprocs"`
	Short      bool     `json:"short"`
	Results    []Result `json:"results"`
	// Load holds the open-loop load-test topology comparison from
	// RunLoad (cmd/perfbench -load). The regression gate ignores it —
	// reject rates and tail latencies on shared runners are too noisy
	// to gate on — but the committed trajectory records them.
	Load []*loadgen.Result `json:"load,omitempty"`
}

// Ratio returns NsPerOp(a)/NsPerOp(b), or 0 when either is missing.
func (r *Report) Ratio(a, b string) float64 {
	ra, rb := r.find(a), r.find(b)
	if ra == nil || rb == nil || rb.NsPerOp == 0 {
		return 0
	}
	return ra.NsPerOp / rb.NsPerOp
}

func (r *Report) find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// buildWorkload returns the database-build workload: the full synthetic
// suite, or a four-application cross-category subset in short mode.
func buildWorkload(short bool) ([]*bench.Benchmark, db.Options, error) {
	opts := db.Options{TraceLen: 8192, Warmup: 2048}
	if short {
		names := []string{"mcf", "povray", "bwaves", "xalancbmk"}
		out := make([]*bench.Benchmark, len(names))
		for i, n := range names {
			b, err := bench.ByName(n)
			if err != nil {
				return nil, opts, err
			}
			out[i] = b
		}
		return out, opts, nil
	}
	return bench.Suite(), opts, nil
}

// Run executes the suite and collects a report. Short mode shrinks the
// database workloads so CI finishes in seconds.
func Run(short bool) (*Report, error) {
	rep := &Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Short:      short,
	}

	benches, opts, err := buildWorkload(short)
	if err != nil {
		return nil, err
	}

	// Shared fixture for the lookup/RM benchmarks: one small database.
	mcf, err := bench.ByName("mcf")
	if err != nil {
		return nil, err
	}
	povray, err := bench.ByName("povray")
	if err != nil {
		return nil, err
	}
	fixture, err := db.Build([]*bench.Benchmark{mcf, povray}, opts)
	if err != nil {
		return nil, err
	}
	base, err := fixture.Stats("mcf", 0, config.Baseline())
	if err != nil {
		return nil, err
	}
	pred := &rm.ModelPredictor{
		Stats: perfmodel.FromDB(base, config.Baseline()),
		Model: perfmodel.Model3,
	}
	const cores = 8
	refCurves := make([]*rm.Curve, cores)
	for i := range refCurves {
		cv := rm.Localize(pred, rm.RM3, rm.Options{})
		refCurves[i] = &cv
	}

	add := func(name string, f func(b *testing.B)) {
		start := time.Now()
		r := testing.Benchmark(f)
		rep.Results = append(rep.Results, Result{
			Name:        name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			WallMs:      float64(time.Since(start).Microseconds()) / 1000,
		})
	}

	// The database sweep, optimized vs seed, on the same workload.
	add("DatabaseBuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Build(benches, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("DatabaseBuildReference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.BuildReference(benches, opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Parallel scaling of the sharded sweep: the same build at fixed
	// worker counts plus the machine width, so the committed reports
	// record the scaling curve rather than 1-core numbers only.
	seenW := map[int]bool{}
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		if seenW[w] {
			continue
		}
		seenW[w] = true
		workers := w
		add(fmt.Sprintf("DatabaseBuildParallel/W%d", workers), func(b *testing.B) {
			o := opts
			o.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Build(benches, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Snapshot cold start vs the equivalent build: the same workload as
	// DatabaseBuild, loaded from a prebuilt dbstore snapshot — the
	// qosrmd boot path. The ratio to DatabaseBuild is the cold-start
	// speedup the serving layer's snapshot store buys (the ISSUE 4
	// acceptance bar is ≥10×).
	snapDir, err := os.MkdirTemp("", "qosrm-perfbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(snapDir)
	snapPath := filepath.Join(snapDir, "suite.qosdb")
	snapDB, err := db.Build(benches, opts)
	if err != nil {
		return nil, err
	}
	if err := dbstore.Save(snapPath, snapDB); err != nil {
		return nil, err
	}
	add("DatabaseSnapshotSave", func(b *testing.B) {
		out := filepath.Join(snapDir, "save.qosdb")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := dbstore.Save(out, snapDB); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("DatabaseSnapshotLoad", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := dbstore.Load(snapPath); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One phase's full configuration sweep (a single cache-sensitive
	// application), isolating the per-phase cost from suite effects. The
	// workspace persists across iterations, so this entry tracks the
	// steady-state sweep cost a database-rebuilding caller sees — the
	// scratch matrices are paid for once, not per op.
	add("PhaseSweep", func(b *testing.B) {
		var ws db.Workspace
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ws.Build([]*bench.Benchmark{mcf}, opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Database record lookups across the full grid: the dense cache vs
	// the seed's per-call interpolation.
	lookup := func(b *testing.B, stats func(string, int, config.Setting) (*db.Stats, error)) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set := config.Setting{
				Core: config.CoreSize(i % config.NumSizes),
				Freq: i % config.NumFreqs,
				Ways: config.MinWays + i%db.NumWays,
			}
			if _, err := stats("mcf", 0, set); err != nil {
				b.Fatal(err)
			}
		}
	}
	add("DBStats", func(b *testing.B) { lookup(b, fixture.Stats) })
	add("DBStatsReference", func(b *testing.B) { lookup(b, fixture.StatsReference) })

	// One local optimisation (the paper's per-core curve computation).
	add("Localize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rm.Localize(pred, rm.RM3, rm.Options{})
		}
	})

	// The per-interval RM invocation path of the co-simulator: one
	// core's curve refresh plus the global redistribution across eight
	// cores. The optimized path hits the curve cache and reuses the
	// reduction workspace; the reference recomputes and reallocates, as
	// the seed simulator did at every interval boundary.
	add("RMInvocation", func(b *testing.B) {
		var cache rm.CurveCache
		var ws rm.Workspace
		out := make([]config.Setting, cores)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cv := cache.Get(base, func() rm.Curve { return rm.Localize(pred, rm.RM3, rm.Options{}) })
			refCurves[0] = cv
			if !ws.Optimize(refCurves, config.TotalWays(cores), out) {
				b.Fatal("infeasible")
			}
		}
	})
	add("RMInvocationReference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cv := rm.Localize(pred, rm.RM3, rm.Options{})
			refCurves[0] = &cv
			if _, ok := rm.GlobalOptimizeReference(refCurves, config.TotalWays(cores)); !ok {
				b.Fatal("infeasible")
			}
		}
	})

	// A whole two-core co-simulation, exercising the integrated path
	// (curve cache, workspace reduction, dense stats lookups).
	add("CoSimulation", func(b *testing.B) {
		apps := []*bench.Benchmark{mcf, povray}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(fixture, apps, sim.Config{RM: rm.RM3, Model: perfmodel.Model3}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The same workload through the dynamic engine (a static
	// single-job-per-core queue): the ratio to CoSimulation is the
	// churn machinery's overhead on the common path, with the results
	// asserted bit-identical by TestDynamicMatchesStaticRun.
	add("DynamicStaticRun", func(b *testing.B) {
		dyn := sim.Dynamic{Queues: []sim.Queue{
			{Jobs: []sim.Job{{App: mcf}}},
			{Jobs: []sim.Job{{App: povray}}},
		}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunDynamic(fixture, dyn, sim.Config{RM: rm.RM3, Model: perfmodel.Model3}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// A scenario batch: several churn scenarios — arrivals, departures,
	// per-app alphas, a QoS step — swept in parallel over the shared
	// fixture database, the cmd/scenarios hot path. Runs on the unified
	// engine (as every entry above does since the PR 5 unification).
	add("ScenarioBatch", func(b *testing.B) {
		specs := scenarioBatch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scenario.Sweep(fixture, specs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	// A policy-comparison sweep: one churn scenario cloned across every
	// registered allocation policy (model3 / greedy / brute) and swept
	// over the shared database — the policy shoot-out path of
	// cmd/scenarios -policies and examples/policy-shootout.
	add("PolicySweep", func(b *testing.B) {
		specs, err := scenario.PolicySweep(scenarioBatch()[:1], rm.PolicyNames())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scenario.Sweep(fixture, specs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One scenario through the HTTP serving layer: POST /v1/scenarios
	// against an in-process qosrmd server over the fixture database —
	// the full request path (decode, validate, simulate, encode). The
	// delta to a bare scenario run is the serving overhead per request.
	srv, err := server.New(fixture, server.Options{Workers: 2})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	specJSON, err := json.Marshal(scenarioBatch()[0])
	if err != nil {
		ts.Close()
		srv.Close()
		return nil, err
	}
	add("ServerScenarioRequest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(specJSON))
			if err != nil {
				b.Fatal(err)
			}
			var rep scenario.Report
			if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
				resp.Body.Close()
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || rep.Name == "" {
				b.Fatalf("status %d, report %+v", resp.StatusCode, rep)
			}
		}
	})
	ts.Close()
	srv.Close()

	return rep, nil
}

// scenarioBatch is the fixed churn batch ScenarioBatch sweeps: four
// two-core scenarios over the fixture applications, exercising
// departures, delayed arrivals, heterogeneous alphas and QoS steps.
func scenarioBatch() []scenario.Spec {
	const work = 4 * 100_000_000 * 2048
	base := scenario.Spec{
		Cores: []scenario.CoreSpec{
			{Jobs: []scenario.JobSpec{
				{App: "mcf", Work: work, DepartNs: 2e8},
				{App: "povray", Work: work, Alpha: 1.2},
			}},
			{Jobs: []scenario.JobSpec{
				{App: "povray", Work: work},
				{App: "mcf", Work: work, ArrivalNs: 3e8},
			}},
		},
		Steps: []scenario.StepSpec{{AtNs: 2.5e8, Alpha: 1.1}},
	}
	specs := make([]scenario.Spec, 4)
	for i := range specs {
		specs[i] = base
		specs[i].Name = fmt.Sprintf("bench-%d", i)
	}
	specs[1].RM = "RM2"
	specs[2].Perfect = true
	specs[3].RM = "RM1"
	return specs
}

// GateBenchmarks are the hot-path entries the CI regression gate
// watches.
var GateBenchmarks = []string{"DatabaseBuild", "RMInvocation", "CoSimulation", "ScenarioBatch"}

// GateNames returns the subset of GateBenchmarks that is meaningfully
// comparable between the two reports. DatabaseBuild's workload depends
// on the report's Short mode (the short suite is a small subset), so
// comparing a short run against a full baseline would make its gate
// vacuously green; the RM-invocation, co-simulation and scenario-batch
// fixtures are identical in both modes.
func GateNames(fresh, baseline *Report) []string {
	if fresh.Short == baseline.Short {
		return GateBenchmarks
	}
	return []string{"RMInvocation", "CoSimulation", "ScenarioBatch"}
}

// Gate compares a fresh report against a committed baseline and returns
// an error when any watched benchmark regressed by more than maxRegress
// (a fraction: 0.25 fails on >25% higher ns/op). Entries missing from
// either report fail the gate — a silently dropped benchmark must not
// read as a pass. Machine differences make cross-host comparisons
// approximate; the gate is deliberately loose and only catches gross
// regressions.
func Gate(fresh, baseline *Report, names []string, maxRegress float64) error {
	var errs []string
	for _, name := range names {
		f, b := fresh.find(name), baseline.find(name)
		switch {
		case b == nil:
			errs = append(errs, fmt.Sprintf("%s: missing from baseline", name))
		case f == nil:
			errs = append(errs, fmt.Sprintf("%s: missing from fresh run", name))
		case b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*(1+maxRegress):
			errs = append(errs, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.0f%%, limit +%.0f%%)",
				name, f.NsPerOp, b.NsPerOp, 100*(f.NsPerOp/b.NsPerOp-1), 100*maxRegress))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("perfbench gate: %s", strings.Join(errs, "; "))
	}
	return nil
}

// BestOf merges measurement runs into a noise-robust report: for every
// benchmark name appearing in the first report, the result with the
// lowest ns/op across all reports is kept. Minimum-of-runs is the
// standard estimator for regression gating on shared machines — a
// co-tenant can only inflate a measurement, never deflate it.
func BestOf(reports ...*Report) *Report {
	if len(reports) == 0 {
		return nil
	}
	out := *reports[0]
	out.Results = append([]Result(nil), reports[0].Results...)
	for i := range out.Results {
		for _, r := range reports[1:] {
			if cand := r.find(out.Results[i].Name); cand != nil && cand.NsPerOp < out.Results[i].NsPerOp {
				out.Results[i] = *cand
			}
		}
	}
	return &out
}

// Summary renders the headline comparisons of a report.
func (r *Report) Summary() string {
	s := ""
	for _, pair := range [][2]string{
		{"DatabaseBuildReference", "DatabaseBuild"},
		{"DBStatsReference", "DBStats"},
		{"RMInvocationReference", "RMInvocation"},
	} {
		ratio := r.Ratio(pair[0], pair[1])
		if ratio == 0 {
			continue
		}
		s += fmt.Sprintf("%s/%s: %.2fx\n", pair[0], pair[1], ratio)
	}
	if a, b := r.find("RMInvocationReference"), r.find("RMInvocation"); a != nil && b != nil {
		s += fmt.Sprintf("RMInvocation allocs/op: %d -> %d\n", a.AllocsPerOp, b.AllocsPerOp)
	}
	if ratio := r.Ratio("DynamicStaticRun", "CoSimulation"); ratio != 0 {
		s += fmt.Sprintf("dynamic-engine overhead on static runs: %.2fx\n", ratio)
	}
	if ratio := r.Ratio("DatabaseBuild", "DatabaseSnapshotLoad"); ratio != 0 {
		s += fmt.Sprintf("snapshot cold start vs build: %.1fx faster\n", ratio)
	}
	if first, last, ratio := r.parallelScaling(); ratio != 0 {
		s += fmt.Sprintf("build parallel scaling %s -> %s: %.2fx\n",
			strings.TrimPrefix(first, "DatabaseBuildParallel/"),
			strings.TrimPrefix(last, "DatabaseBuildParallel/"), ratio)
	}
	if w := r.ScalingWarning(); w != "" {
		s += "WARNING: " + w + "\n"
	}
	for _, l := range r.Load {
		s += fmt.Sprintf("load %s @ %.0f req/s: %.1f%% rejected, %.0f admitted/s, p50 %.1fms p99 %.1fms (%d forwarded)\n",
			l.Name, l.TargetRPS, 100*l.RejectRate, l.AchievedRPS, l.P50Ms, l.P99Ms, l.Forwarded)
	}
	return s
}

// parallelScaling resolves the W1→Wmax speedup recorded in the report:
// the names of the narrowest and widest DatabaseBuildParallel entries
// and first's ns/op divided by last's (>1 means the wide build is
// faster). Zero ratio when the report has fewer than two width entries.
func (r *Report) parallelScaling() (first, last string, ratio float64) {
	for _, res := range r.Results {
		if strings.HasPrefix(res.Name, "DatabaseBuildParallel/") {
			if first == "" {
				first = res.Name
			}
			last = res.Name
		}
	}
	if first == "" || last == first {
		return "", "", 0
	}
	return first, last, r.Ratio(first, last)
}

// ScalingWarning reports a flat parallel-build curve measured on a
// machine wide enough to show one: non-empty when the report ran with
// more than one scheduler P and the widest worker count is less than
// 1.2× faster than one worker. A flat curve on a multi-core box means
// the sharded build is serialising somewhere and must not slip into a
// committed BENCH file unremarked; on a single-P run the curve cannot
// slope and the warning stays silent.
func (r *Report) ScalingWarning() string {
	if r.GoMaxProcs <= 1 {
		return ""
	}
	first, last, ratio := r.parallelScaling()
	if ratio == 0 || ratio >= 1.2 {
		return ""
	}
	return fmt.Sprintf("parallel build speedup %s -> %s is %.2fx on a %d-P machine (< 1.2x): the sharded build is not scaling",
		strings.TrimPrefix(first, "DatabaseBuildParallel/"),
		strings.TrimPrefix(last, "DatabaseBuildParallel/"), ratio, r.GoMaxProcs)
}

// LoadReport reads a committed BENCH_<n>.json report.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	return &r, nil
}
