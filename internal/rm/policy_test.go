package rm

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"qosrm/internal/config"
)

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	if len(names) < 3 {
		t.Fatalf("want ≥ 3 named policies, have %v", names)
	}
	for _, name := range names {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	def, err := NewPolicy("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != PolicyModel3 {
		t.Errorf("default policy is %q, want %q", def.Name(), PolicyModel3)
	}
	if _, err := NewPolicy("ultron"); err == nil {
		t.Error("unknown policy name must fail")
	}
}

// TestPoliciesMatchDirectCalls pins the policy adapters to the direct
// optimizer calls they wrap: same feasibility verdict, same settings —
// the policy layer is pure indirection, no behavioural drift.
func TestPoliciesMatchDirectCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(3)
		curves := randomCurves(rng, n)
		total := config.TotalWays(n)
		out := make([]config.Setting, n)

		direct := map[string]func() ([]config.Setting, bool){
			PolicyModel3: func() ([]config.Setting, bool) { return GlobalOptimizeReference(curves, total) },
			PolicyGreedy: func() ([]config.Setting, bool) { return GreedyGlobalOptimize(curves, total) },
			PolicyBrute:  func() ([]config.Setting, bool) { return BruteForceGlobalOptimize(curves, total) },
		}
		for name, ref := range direct {
			p, err := NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := ref()
			gotOK := p.Allocate(curves, total, out)
			if gotOK != wantOK {
				t.Fatalf("trial %d %s: feasibility %v, direct call %v", trial, name, gotOK, wantOK)
			}
			if !gotOK {
				continue
			}
			if !reflect.DeepEqual(out[:n], want) {
				t.Fatalf("trial %d %s: settings %v, direct call %v", trial, name, out[:n], want)
			}
		}
	}
}

// TestPolicyInstancesReusable pins that a policy instance gives the same
// answer across repeated invocations on different inputs — the engine
// workspace holds one instance for a whole run.
func TestPolicyInstancesReusable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			n := 2 + trial%3
			curves := randomCurves(rng, n)
			total := config.TotalWays(n)
			a := make([]config.Setting, n)
			b := make([]config.Setting, n)
			okA := p.Allocate(curves, total, a)
			okB := p.Allocate(curves, total, b)
			if okA != okB || (okA && !reflect.DeepEqual(a, b)) {
				t.Fatalf("%s trial %d: instance not idempotent", name, trial)
			}
		}
	}
}

// TestPolicyEnergyOrdering: brute is exhaustive, model3 provably
// optimal — both must reach the same minimum; greedy may only lose.
func TestPolicyEnergyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	model3, _ := NewPolicy(PolicyModel3)
	greedy, _ := NewPolicy(PolicyGreedy)
	brute, _ := NewPolicy(PolicyBrute)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		curves := randomCurves(rng, n)
		total := config.TotalWays(n)
		eOpt := PolicyEnergy(model3, curves, total)
		eBrute := PolicyEnergy(brute, curves, total)
		eGreedy := PolicyEnergy(greedy, curves, total)
		if math.IsInf(eOpt, 1) != math.IsInf(eBrute, 1) {
			t.Fatalf("trial %d: optimal/brute feasibility disagree", trial)
		}
		if !math.IsInf(eOpt, 1) && math.Abs(eOpt-eBrute) > 1e-9 {
			t.Fatalf("trial %d: model3 energy %.12f != brute %.12f", trial, eOpt, eBrute)
		}
		if eGreedy < eOpt-1e-9 {
			t.Fatalf("trial %d: greedy energy %.12f below the optimum %.12f", trial, eGreedy, eOpt)
		}
	}
}
