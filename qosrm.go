// Package qosrm is a full reproduction of "Coordinated Management of
// Processor Configuration and Cache Partitioning to Optimize Energy
// under QoS Constraints" (Nejat, Manivannan, Pericàs, Stenström —
// IPDPS 2020, arXiv:1911.05114).
//
// The package exposes the complete stack the paper builds and evaluates:
//
//   - a synthetic SPEC CPU2006-like benchmark suite with SimPoint-style
//     phases (Suite, BenchmarkByName);
//   - a detailed out-of-order core + partitioned-cache simulation
//     substrate that produces the per-phase configuration database
//     (Open / Options);
//   - the proposed ATD leading-miss extension and the three online
//     performance models (Model1/Model2/Model3);
//   - the three resource managers (RM1: LLC partitioning, RM2: +DVFS,
//     RM3: +core adaptation) with the paper's local/global optimisation;
//   - the interval-driven multicore co-simulator (System.Run) and one
//     driver per paper table/figure (System.Experiments).
//
// Quick start:
//
//	sys, err := qosrm.Open(qosrm.Options{})
//	if err != nil { ... }
//	apps := []*qosrm.Benchmark{qosrm.MustBenchmark("povray"), qosrm.MustBenchmark("mcf")}
//	saving, res, err := sys.Savings(apps, qosrm.SimConfig{RM: qosrm.RM3})
//
// # Performance architecture
//
// The two hot paths — the detailed-simulation database sweep and the
// per-interval RM invocation — share or memoize everything that does not
// depend on the quantity being varied. Every optimized path is paired
// with a retained seed implementation (the *Reference functions) and
// equivalence tests assert the outputs are bit-identical, so these are
// pure speedups with no numerical drift in figure or table outputs.
//
// Database sweep (db.Build): per phase, the trace is generated and its
// cache hierarchy behaviour annotated once, and each instruction's
// kernel class and latency are precomputed, both setting-independent.
// All forty-five (frequency corner, way allocation) lanes of a core
// size are walked in one corner-batched cpu.RunCorners pass over
// structure-of-arrays per-lane state: frequency enters the timing
// recurrence only through per-lane constants (ns per cycle, dispatch
// step, L3 latency, branch penalty), so batching the three corners
// into one walk pays the per-instruction fixed costs — class dispatch,
// dependence-row resolution, ring indexing — once instead of three
// times, and hides the latency of each lane's serial float dependence
// chain across the others. The walk partitions lanes into dynamically
// refined groups: lanes can only diverge where an LLC access's
// miss/hit boundary falls strictly inside their way interval, and that
// boundary position is corner-invariant, so one scan splits every
// straddling group and one representative chain serves each
// still-indistinguishable group — compute-bound phases walk a handful
// of chains instead of forty-five. Per-allocation LLC/DRAM counters
// are computed in a single histogram pass shared by all runs.
//
// ATD observations come from a per-phase prefix-sharing replay tree:
// all runs of a phase observe the same LLC event set (only delivery
// order varies with the setting), so a run is its delivery permutation,
// recovered from the walk's issue-time matrix by an adaptive argsort —
// issue columns arrive nearly sorted (the dispatch cursor is close to
// monotone), so a budgeted insertion repair handles the common case in
// about one pass and a column that blows its inversion budget falls
// back to an LSD radix sort over the float bit patterns, which skips
// the byte positions a column's shared exponent range leaves constant.
// Identical permutations share one replayed ATD, and a run whose
// permutation shares a prefix with earlier runs forks a copy-on-write
// snapshot at the divergence point — tag state lives in flat
// structure-of-arrays rows shared between the warm state and all
// descendants (cache.COWStack), and a fork copies only the sets it
// actually touches — then replays only its divergent suffix. The tree's
// lock covers only trie shape; the multi-millisecond ATD feeds run
// against pending nodes other workers can block on, so workers sharing
// a phase never serialise on each other's replays. Phases whose
// measured window never reaches the LLC collapse to one timing walk
// per (core, frequency corner). Work is sharded at (phase, core size)
// granularity across Options.Workers goroutines — largest core first,
// so the slowest walk is never the straggler — and a db.Workspace
// retains the per-worker sweep scratches across builds; the
// DatabaseBuildParallel perfbench entries record the scaling curve and
// Report.ScalingWarning flags a flat curve on multi-core machines.
//
// RM invocation path (sim.Run): local optimisation curves are memoized
// per run in an rm.CurveCache — the RM kind, model and alpha are fixed
// for a run, and a model-predicted curve depends only on the measured
// interval's database record (benchmark, phase, setting), an oracle
// curve only on (benchmark, phase) — so rm.Localize runs once per
// distinct record a core visits instead of at every interval boundary.
// The global pairwise curve reduction reuses an rm.Workspace (the
// reduction tree as a preallocated arena) and writes settings into a
// reused slice, making the per-interval path allocation-free. Database
// lookups (db.Stats) index into a per-phase dense grid of records,
// materialised once per phase — corner records copied, off-corner
// records interpolated — and shared read-only thereafter.
//
// Cache invalidation is structural rather than temporal: every cache
// key pins the full set of inputs its value depends on (phase
// preparation per (benchmark, phase, trace length, warmup); replay
// dedup per delivery sequence; curve memo per predictor input record;
// dense grid per phase), and all cached values are immutable once
// published, so nothing is ever invalidated in place.
//
// The scenario sweep reuses a sim.RunWorkspace per worker — per-core
// state, the allocation policy's arena and the curve memoization
// (re-scoped automatically when a run changes database, manager, model,
// policy or oracle mode) survive across a spec and its idle twin.
//
// # Engine & policy architecture
//
// One event-driven engine executes every workload shape (internal/sim,
// engine.go). The paper's static evaluation — one application pinned per
// core, run to a fixed instruction target — is the degenerate schedule
// of one zero-arrival run-to-completion job per core; System.Run builds
// exactly that schedule and routes it through the same loop that drives
// multiprogrammed churn, per-app QoS relaxation, mid-run QoS steps,
// queue priorities and way donation. The pre-unification static and
// dynamic loops are retained verbatim as references and cross-seed
// property tests pin the unified engine bit-identical to both on their
// shared feature set — the retained-reference pattern used by every
// optimized pair in this package.
//
// The allocation decision — per-core energy curves in, per-core
// (core size, frequency, ways) settings out — sits behind the rm.Policy
// interface. Three named policies ship: "model3" (the paper's optimal
// pairwise curve reduction, the default), "greedy" (the marginal-utility
// heuristic) and "brute" (exhaustive enumeration, the optimality
// reference for small systems). A policy is selected per run
// (SimConfig.Policy), per scenario (ScenarioSpec.Policy, the "policy"
// JSON field), per HTTP request (the savings/scenario/job bodies), or
// system-wide (Options.Policy); System.Policies lists the registry and
// PolicySweep expands a scenario batch along the policy axis for
// shoot-out comparisons. New optimizers — priority-aware allocation,
// the integer-programming-game equilibrium solvers of the related-work
// list — drop in as additional policies without touching the engine.
//
// Two scheduling extensions ride on the unified engine: drained cores
// can donate their pinned LLC ways back to the optimisation
// (SimConfig.DonateIdleWays / the "donate_idle_ways" spec field), and
// queue priorities with preemption (Job.Priority / the per-job
// "priority" spec field) let urgent arrivals suspend background work,
// which later resumes with its progress intact. Both default off,
// preserving the paper's semantics bit for bit.
//
// The perfbench suite (internal/perfbench, cmd/perfbench) measures both
// sides of each pair and records the trajectory in committed
// BENCH_<n>.json files; CI runs it in short mode on every push and
// gates merges on >25% ns/op regressions of the watched hot paths
// against the committed baseline (perfbench.Gate).
//
// # Scenario engine
//
// The paper evaluates its managers on static workloads only: one
// application pinned per core, one global QoS target, run to completion.
// The scenario engine generalises that to dynamic, declarative
// scenarios. sim.RunDynamic drives per-core application queues — jobs
// arrive, execute a bounded instruction budget, finish or depart early,
// and the next queued job takes over the core, at which point the RM
// immediately re-optimises the whole system — with per-application QoS
// relaxation (heterogeneous alpha instead of the single global knob) and
// mid-run QoS-target step changes. A core between jobs idles at its last
// setting with its LLC ways pinned; an arriving job inherits the core's
// setting until its first interval produces statistics.
//
// # Serving architecture
//
// Every consumer above links the library and owns a database in
// process. The serving layer turns that into a shared long-running
// service. Two pieces compose it:
//
// internal/dbstore is the persistent snapshot store: a versioned binary
// format (magic, format version, params hash, checksum, then the
// per-phase simulated corner records) that round-trips a built database
// bit-identically — only the simulated corners are stored, and the
// dense interpolated grid is re-materialised deterministically after a
// load, so a loaded database is indistinguishable from a freshly built
// one. Cold start becomes a file read: the DatabaseSnapshotLoad
// perfbench entry measures the load at well over an order of magnitude
// faster than the equivalent db.Build. Snapshots are integrity-checked
// in layers (magic/version, CRC-64 checksum, structural bounds, params
// hash against the compiled-in suite definition), fuzz-tested to reject
// corrupt input cleanly, and written atomically. Options.SnapshotPath
// plugs the store into Open, System.Snapshot saves one, and cmd/dbgen
// emits (-o) and verifies (-load -verify) them offline.
//
// internal/server + cmd/qosrmd is the HTTP/JSON service over one warm
// database: POST /v1/savings (application mix → energy saving and
// per-app results), POST /v1/scenarios (one declarative scenario,
// synchronous, bit-identical to System.RunScenario — equivalence-
// tested), POST /v1/jobs + GET /v1/jobs/{id} (asynchronous sweep jobs
// over a bounded worker pool, each worker reusing one sim.RunWorkspace
// across every scenario it executes), plus /healthz and a
// Prometheus-style /metrics. Request bodies are size-bounded and
// validated with the same scenario.Validate the library uses;
// cancellation is threaded through the engines (sim.RunCtx,
// sim.RunDynamicCtx, scenario.SweepContext, db.BuildContext), so client
// disconnects and daemon shutdown abandon in-flight simulations
// promptly. System.NewServer embeds the same server in any process, and
// DialService returns the matching client.
//
// Cluster topology: qosrmd nodes are peers, not replicas — each owns
// its own database snapshot, queue and journal. There is no leader and
// no shared state; membership is dynamic. The seed addresses a node
// boots with (qosrmd -peers / -join, ServerOptions.Peers / Join) only
// bootstrap a gossip protocol (internal/cluster): every gossip interval
// a node push-pulls its full member list — stable node ID, advertised
// address, incarnation, liveness state, database params hash — with
// every address it tracks over POST /v1/cluster, so nodes discover the
// rest of the cluster transitively and two nodes that never seeded each
// other still forward to one another. A SWIM-lite failure detector
// drives liveness: a member whose exchange fails goes alive → suspect,
// a further miss after the suspect window confirms it dead, and dead
// peers leave every forwarding rotation within seconds while remaining
// probed so a rejoin or a healed partition is noticed. Refutation is
// incarnation-based, exactly SWIM's: a node that learns it is rumored
// dead bumps its incarnation past the claim and re-asserts itself, so
// a crashed node rebooting under the same -node-id readmits itself with
// no restarts anywhere else. A joining node with no usable snapshot on
// disk fetches one from a live member (GET /v1/snapshot), verifies it
// end to end with the dbstore loader — magic, version, CRC, params hash
// against its own binary — persists it, and boots warm; a params-hash
// mismatch refuses the join, and gossip refuses mismatched nodes with
// 409 cluster_mismatch, so a cluster never mixes database builds.
// internal/loadgen and cmd/loadgen provide the matching open-loop load
// harness (fixed arrival rate, vegeta-style), and the committed BENCH
// reports embed a single-node vs two-node comparison at the same
// saturating load.
//
// # Observability architecture
//
// The serving layer is observable on three axes — live event streams,
// latency distributions, request tracing — all built on internal/obs,
// a dependency-free leaf shared by the server and the load generator.
//
// Event streaming: GET /v1/jobs/{id}/events tails a running sweep
// job's interval-boundary trace live — the same sim.Event feed a
// SimConfig.Trace callback sees in process, one frame per interval
// boundary (time, core, benchmark, phase, and the chosen frequency /
// way allocation), framed as NDJSON by default or SSE when Accept
// names text/event-stream, ending with a terminal "done" / "failed" /
// "expired" frame. The feed decouples through a bounded per-job ring
// buffer (ServerOptions.EventBuffer, qosrmd -event-buffer) that
// overwrites oldest on overrun: the engine's publish path never
// blocks and never allocates — the per-spec event shell and the
// ring slots' backing arrays are reused, pinned by an allocs/op test
// — so a stalled, slow or absent subscriber costs the simulation
// nothing, and every frame carries a cumulative "dropped" count plus
// a sequence number so a consumer knows exactly what it missed.
// Client.JobEvents returns the matching iterator (the stream escapes
// the client's per-request timeout; cancel its context to stop), and
// examples/service-client tails a live sweep with it.
//
// Latency histograms: /metrics exposes Prometheus-native histograms —
// per-route HTTP request duration, job queue wait, job execution,
// forward RTT, gossip exchange and peer probe — built on a lock-free
// fixed-layout histogram (obs.Histogram: power-of-two nanosecond
// buckets from ~1µs to ~69s, three atomic adds per observation, safe
// for concurrent writers without labels-map machinery). The load
// generator records client-side latency into the same bucket layout,
// so its p50/p90/p99 compare bucket-for-bucket with the server-side
// view of the same run, and JobStatus carries the per-job
// submitted→started→finished timeline. obs.LintExposition validates
// the whole exposition format — every family typed, counters ending
// _total, no duplicate series, histogram buckets cumulative with a
// +Inf terminator — a test scrapes the live server through it, and
// cmd/metricslint pipes any scrape through the same linter in CI.
//
// Request tracing: every request gets an X-Qosrm-Request-Id (minted
// at ingress when absent, echoed in the response, propagated verbatim
// across cluster forwards), and a structured slog access log
// (ServerOptions.Logger; qosrmd -log-level / -log-format) records
// route, method, status, duration, request id, node id and job id per
// request — off by default (slog.DiscardHandler), and the hot paths
// guard on Logger.Enabled so disabled logging costs nothing. qosrmd
// -pprof mounts net/http/pprof under /debug/pprof/ for on-demand
// CPU/heap profiles, bypassing the route metrics so profiling traffic
// never skews the histograms.
//
// # Reliability architecture
//
// The serving layer is crash-safe end to end; three mechanisms compose
// it.
//
// Journal (internal/jobstore): an append-only, CRC-framed job journal
// reusing the dbstore envelope idiom — a magic/version header, then
// [length, CRC-64, JSON payload] frames, fsynced per append, rotated
// by atomic rename on compaction. Four event types record a job's
// lifecycle: submit (specs + idempotency key), start, finish (report
// or error), expire. The submit event is appended and fsynced before
// the 202 acknowledgement, so every acknowledged job is recoverable; a
// failed append refuses the submission (500, reason "journal_error")
// rather than promise durability it cannot deliver. On boot the server
// replays the journal: finished scenarios serve their reports straight
// from the log, acknowledged-but-unfinished ones re-enqueue — and
// because the engine is deterministic, the re-run reproduces the
// report bit for bit, so a SIGKILL mid-sweep loses nothing. Loading
// truncates a torn final record (the shape a crash mid-append leaves)
// and stops at the first corrupt frame, keeping the valid prefix;
// FuzzJournalLoad pins that recovery is clean and idempotent. TTL
// expiry journals an expire event and compacts the log down to the
// live jobs.
//
// Failpoints (internal/faultinject): a registry of named injection
// points (jobstore.append, jobstore.compact, server.worker,
// cluster.gossip, server.snapshot, cluster.fetch) armed by tests or
// the QOSRM_FAILPOINTS environment variable with specs like "error*2",
// "stall:10ms", "panic", each optionally counted or probabilistic.
// Worker execution converts injected (and real) panics into scenario
// errors, retries transient failures a bounded number of times
// (ServerOptions.JobRetries), and the chaos test drives dozens of
// random kill/restart cycles against one journal asserting no job is
// ever lost or duplicated. The cluster chaos drill raises that to
// three gossiping journaled nodes — a SIGKILL-style kill mid-wave with
// a journal reboot, a network partition and heal, a burst of dropped
// gossip — asserting membership reconverges and every accepted job
// still resolves exactly once with reports bit-identical to an
// uninterrupted run.
//
// Hardened edge: POST /v1/jobs honours an Idempotency-Key header —
// keys persist in the journal, so a retried submit returns the
// existing job even across a server restart. Rejections carry a
// machine-readable "reason" ("batch_too_large" permanent vs
// "queue_full"/"shutting_down" transient vs "rate_limited"), 503s and
// 429s advertise Retry-After, per-client token-bucket rate limiting is
// available via ServerOptions.RatePerSec, and /healthz degrades to
// "degraded" when the queue nears capacity. The client (DialService)
// retries transient failures — connection refused/reset, 429, 502/503/
// 504 — with exponential backoff and jitter, honours Retry-After,
// attaches a fresh idempotency key to every SubmitSweep, and WaitJob
// polls with jittered backoff instead of a fixed interval. The journal
// and edge counters (qosrmd_journal_replays_total,
// qosrmd_requests_shed_total, qosrmd_scenarios_retried_total, worker
// panics, idempotent replays, compactions) surface at /metrics.
//
// Peer forwarding: a cluster-mode node that would reject a sweep
// submission with queue_full instead offers it to the least-loaded
// live member of its gossip rotation — candidates are ranked by the
// Queued/QueueDepth occupancy their /healthz reports (probed
// concurrently, single-flighted and briefly cached, so a stalled peer
// never blocks ranking the others and a submit storm does not become a
// healthz storm), suspect members rank after alive ones, dead members
// never appear — and answers the caller with the member's job handle,
// the admitting node's base URL recorded in the status's "origin"
// field. The semantics are deliberately narrow. Ownership: the job
// belongs entirely to the origin node — it is journaled there before
// the 202, polled there (Client.At(origin)), and recovered from that
// node's journal after a crash; the forwarding node keeps only a
// key→origin memo that expires with the job TTL. Idempotency: the
// caller's Idempotency-Key travels verbatim with the forward, so a
// retried submit resolves to the same job through either node — the
// forwarder answers from its memo (refreshing the status from the
// origin when reachable), the origin from its own persisted key map.
// Loops: the X-Qosrm-Forward-Trail header names every node a forward
// has visited; each hop appends its node ID, ranking excludes trail
// members, and a node only forwards while the trail is shorter than
// its ForwardHops budget (default 3) — so multi-hop forwarding
// terminates in any topology without revisiting a node, and a fully
// saturated cluster answers an honest queue_full 503 instead of
// bouncing the batch between nodes. Forwarding clients do not retry
// internally — trying the next peer, then failing over to the 503, is
// the retry policy. The forwarding and membership counters surface at
// /metrics (qosrmd_jobs_forwarded_total,
// qosrmd_jobs_forward_received_total, qosrmd_jobs_forward_failed_total,
// qosrmd_cluster_peers, qosrmd_cluster_members_{alive,suspect,dead},
// qosrmd_cluster_exchanges_total, qosrmd_cluster_probe_failures_total,
// qosrmd_cluster_refutations_total, qosrmd_snapshots_served_total).
//
// internal/scenario layers a JSON-loadable specification on top
// (ScenarioSpec): application queues by name, arrival/departure times,
// per-job alphas and QoS steps, plus the manager/model configuration to
// run under. System.RunScenario executes one spec together with an
// idle-manager twin so the report carries the paper's energy-saving
// metric; System.SweepScenarios batches many specs in parallel over the
// shared database. GenerateChurnWorkloads extends the Section IV-C
// generator to emit multiprogrammed churn schedules from the four
// Figure 1 scenario categories, and cmd/scenarios is the batch CLI over
// scenario files. A static single-job-per-core scenario reproduces
// System.Run bit for bit (equivalence-tested, like every optimized pair
// above).
package qosrm

import (
	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/dbstore"
	"qosrm/internal/experiments"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/scenario"
	"qosrm/internal/sim"
	"qosrm/internal/trace"
	"qosrm/internal/workload"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while giving external importers usable names.
type (
	// Benchmark is one application of the synthetic suite.
	Benchmark = bench.Benchmark
	// Phase is one SimPoint-like program phase of a Benchmark.
	Phase = bench.Phase
	// Category is the CS/CI × PS/PI taxonomy cell of an application.
	Category = bench.Category
	// TraceParams parameterises a synthetic instruction stream.
	TraceParams = trace.Params
	// Region is one address region of a synthetic footprint.
	Region = trace.Region
	// Setting is one per-core configuration point (core size, DVFS
	// index, LLC ways).
	Setting = config.Setting
	// CoreSize selects the S/M/L adaptive core configuration.
	CoreSize = config.CoreSize
	// RMKind selects a resource manager (Idle, RM1, RM2, RM3).
	RMKind = rm.Kind
	// ModelKind selects an online performance model (Model1..Model3).
	ModelKind = perfmodel.Kind
	// SimConfig configures one co-simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of one co-simulation run.
	SimResult = sim.Result
	// SimEvent is one interval-boundary event (Figure 5).
	SimEvent = sim.Event
	// Workload is a generated application mix.
	Workload = workload.Workload
	// Scenario is one of the four Figure 1 workload scenarios.
	Scenario = workload.Scenario
	// Experiments bundles the paper's table/figure drivers.
	Experiments = experiments.Context
	// DB is the per-(application, phase, setting) simulation database.
	DB = db.DB

	// Dynamic describes a multiprogrammed-churn workload: per-core job
	// queues plus a QoS step schedule.
	Dynamic = sim.Dynamic
	// DynJob is one queued application of a dynamic run.
	DynJob = sim.Job
	// DynQueue is one core's job queue.
	DynQueue = sim.Queue
	// QoSStep is one mid-run QoS-target change.
	QoSStep = sim.QoSStep
	// DynamicResult is the outcome of one dynamic co-simulation.
	DynamicResult = sim.DynamicResult
	// JobResult is the outcome of one queued job.
	JobResult = sim.JobResult
	// ScenarioSpec is the JSON-loadable declarative scenario.
	ScenarioSpec = scenario.Spec
	// ScenarioCore is one core's queue in a scenario spec.
	ScenarioCore = scenario.CoreSpec
	// ScenarioJob is one queued application in a scenario spec.
	ScenarioJob = scenario.JobSpec
	// ScenarioStep is one mid-run QoS change in a scenario spec.
	ScenarioStep = scenario.StepSpec
	// ScenarioReport is the outcome of one scenario run.
	ScenarioReport = scenario.Report
	// ChurnEntry is one queued application of a generated churn
	// schedule.
	ChurnEntry = workload.ChurnEntry
	// ChurnOptions tunes churn generation (arrival process, rate).
	ChurnOptions = workload.ChurnOptions
	// ArrivalProcess selects a churn arrival process.
	ArrivalProcess = workload.ArrivalProcess
	// AllocationPolicy is the pluggable global allocation decision of
	// the resource manager; see Policies for the named registry.
	AllocationPolicy = rm.Policy
)

// Re-exported enumerations.
const (
	SizeS = config.SizeS
	SizeM = config.SizeM
	SizeL = config.SizeL

	Idle = rm.Idle
	RM1  = rm.RM1
	RM2  = rm.RM2
	RM3  = rm.RM3

	Model1 = perfmodel.Model1
	Model2 = perfmodel.Model2
	Model3 = perfmodel.Model3

	CSPS = bench.CSPS
	CSPI = bench.CSPI
	CIPS = bench.CIPS
	CIPI = bench.CIPI

	Scenario1 = workload.Scenario1
	Scenario2 = workload.Scenario2
	Scenario3 = workload.Scenario3
	Scenario4 = workload.Scenario4

	ArrivalStaggered = workload.ArrivalStaggered
	ArrivalPoisson   = workload.ArrivalPoisson
	ArrivalDiurnal   = workload.ArrivalDiurnal

	// The named allocation policies (see Policies).
	PolicyModel3 = rm.PolicyModel3
	PolicyGreedy = rm.PolicyGreedy
	PolicyBrute  = rm.PolicyBrute
)

// Policies lists the registered allocation policies, default first.
func Policies() []string { return rm.PolicyNames() }

// Policies lists the allocation policies a system's runs can select
// (the package registry; default first).
func (s *System) Policies() []string { return rm.PolicyNames() }

// NewPolicy instantiates a named allocation policy for direct use of
// the rm layer; the co-simulator normally selects one by name through
// SimConfig.Policy instead.
func NewPolicy(name string) (AllocationPolicy, error) { return rm.NewPolicy(name) }

// PolicySweep expands scenario specs along the allocation-policy axis
// (empty policies defaults to the full registry), names suffixed
// "+<policy>" — the input for a policy shoot-out on identical
// workloads.
func PolicySweep(specs []ScenarioSpec, policies []string) ([]ScenarioSpec, error) {
	return scenario.PolicySweep(specs, policies)
}

// Baseline returns the fixed reference setting: M core, 2 GHz, 8 ways.
func Baseline() Setting { return config.Baseline() }

// Suite returns the 27-application synthetic benchmark suite.
func Suite() []*Benchmark { return bench.Suite() }

// BenchmarkByName looks an application up by its SPEC-style name.
func BenchmarkByName(name string) (*Benchmark, error) { return bench.ByName(name) }

// MustBenchmark is BenchmarkByName panicking on unknown names; it is
// meant for examples and tests with literal names.
func MustBenchmark(name string) *Benchmark {
	b, err := bench.ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// GenerateWorkloads produces count n-core scenario workloads
// deterministically from seed (Section IV-C).
func GenerateWorkloads(s Scenario, cores, count int, seed int64) ([]Workload, error) {
	return workload.Generate(s, cores, count, seed)
}

// GenerateChurnWorkloads produces an n-core multiprogrammed churn
// schedule for the scenario — depth waves of applications per core with
// staggered arrivals, bounded work and per-app QoS relaxations —
// deterministically from seed. ChurnScenario turns the result into a
// runnable spec.
func GenerateChurnWorkloads(s Scenario, cores, depth int, seed int64) ([][]ChurnEntry, error) {
	return workload.GenerateChurn(s, cores, depth, seed)
}

// GenerateChurnWorkloadsOpts is GenerateChurnWorkloads with a
// selectable arrival process (staggered waves, Poisson, diurnal) and
// rate, for trace-like load instead of the wave schedule.
func GenerateChurnWorkloadsOpts(s Scenario, cores, depth int, seed int64, opt ChurnOptions) ([][]ChurnEntry, error) {
	return workload.GenerateChurnOpts(s, cores, depth, seed, opt)
}

// ParseArrivalProcess resolves an arrival-process name ("staggered",
// "poisson", "diurnal"; empty defaults to staggered).
func ParseArrivalProcess(name string) (ArrivalProcess, error) {
	return workload.ParseArrivalProcess(name)
}

// ChurnScenario converts a generated churn schedule into a runnable
// scenario spec whose arrivals span horizonNs.
func ChurnScenario(name string, churn [][]ChurnEntry, horizonNs float64) ScenarioSpec {
	return scenario.FromChurn(name, churn, horizonNs)
}

// LoadScenarios parses a scenario file: one spec object or an array.
func LoadScenarios(path string) ([]ScenarioSpec, error) {
	return scenario.LoadFile(path)
}

// Options configures Open.
type Options struct {
	// DBPath caches the simulation database; empty disables caching.
	DBPath string
	// SnapshotPath caches the database in the versioned binary snapshot
	// format (internal/dbstore) — the same files cmd/dbgen emits and
	// cmd/qosrmd boots from. A valid snapshot covering the requested
	// benchmarks at the requested trace length is loaded (bit-identical
	// to a fresh build); otherwise the database is built and the
	// snapshot written back. Takes precedence over DBPath.
	SnapshotPath string
	// TraceLen is the measured instruction count per phase (default
	// 65536); Warmup the cache warm-up prefix (default 16384).
	TraceLen int
	Warmup   int
	// Workers bounds build parallelism (default GOMAXPROCS).
	Workers int
	// Benchmarks restricts the database to a subset of the suite
	// (default: the full suite).
	Benchmarks []*Benchmark
	// Policy is the system-wide default allocation policy ("model3",
	// "greedy" or "brute"; see Policies). It applies whenever a run's
	// SimConfig or a scenario spec does not name a policy itself; empty
	// keeps the paper's optimal reduction ("model3").
	Policy string
}

// System is the top-level handle: a built simulation database plus the
// co-simulator and experiment drivers over it.
type System struct {
	db *db.DB
	// policy is the Options.Policy default threaded into every run that
	// does not select its own.
	policy string
}

// Open builds (or loads from Options.DBPath) the simulation database by
// running the detailed core/cache simulations over every benchmark
// phase and every core size, frequency corner and way allocation.
func Open(o Options) (*System, error) {
	if _, err := scenario.ParsePolicy(o.Policy); err != nil {
		return nil, err
	}
	benches := o.Benchmarks
	if len(benches) == 0 {
		benches = bench.Suite()
	}
	opts := db.Options{
		TraceLen: o.TraceLen,
		Warmup:   o.Warmup,
		Workers:  o.Workers,
	}
	if o.SnapshotPath != "" {
		filled := opts.WithDefaults()
		if d, _, err := dbstore.Load(o.SnapshotPath); err == nil &&
			d.TraceLen == filled.TraceLen && d.Warmup == filled.Warmup &&
			d.Covers(benches) {
			return &System{db: d, policy: o.Policy}, nil
		}
		d, err := db.Build(benches, opts)
		if err != nil {
			return nil, err
		}
		if err := dbstore.Save(o.SnapshotPath, d); err != nil {
			return nil, err
		}
		return &System{db: d, policy: o.Policy}, nil
	}
	d, err := db.LoadOrBuild(o.DBPath, benches, opts)
	if err != nil {
		return nil, err
	}
	return &System{db: d, policy: o.Policy}, nil
}

// FromDB wraps an already-built database.
func FromDB(d *DB) *System { return &System{db: d} }

// Snapshot writes the system's database to path in the versioned binary
// snapshot format, ready for cmd/qosrmd cold starts (or a later Open
// with Options.SnapshotPath). The write is atomic: a crash mid-save
// never leaves a truncated snapshot behind.
func (s *System) Snapshot(path string) error { return dbstore.Save(path, s.db) }

// DB exposes the underlying database.
func (s *System) DB() *DB { return s.db }

// withPolicy threads the system-wide default policy into a run whose
// configuration does not select one.
func (s *System) withPolicy(cfg SimConfig) SimConfig {
	if cfg.Policy == "" {
		cfg.Policy = s.policy
	}
	return cfg
}

// withSpecPolicy does the same for a scenario spec (on a copy; the
// caller's spec is never mutated).
func (s *System) withSpecPolicy(spec *ScenarioSpec) *ScenarioSpec {
	if spec.Policy != "" || s.policy == "" {
		return spec
	}
	clone := *spec
	clone.Policy = s.policy
	return &clone
}

// Run co-simulates one application per core under cfg.
func (s *System) Run(apps []*Benchmark, cfg SimConfig) (*SimResult, error) {
	return sim.Run(s.db, apps, s.withPolicy(cfg))
}

// RunDynamic co-simulates a multiprogrammed-churn workload under cfg:
// per-core job queues with arrivals and departures, per-app QoS
// relaxation, queue priorities and mid-run QoS steps.
func (s *System) RunDynamic(dyn Dynamic, cfg SimConfig) (*DynamicResult, error) {
	return sim.RunDynamic(s.db, dyn, s.withPolicy(cfg))
}

// RunScenario executes one declarative scenario together with its
// idle-manager twin and reports the energy saving, QoS outcome and
// per-job results.
func (s *System) RunScenario(spec *ScenarioSpec) (*ScenarioReport, error) {
	return scenario.Run(s.db, s.withSpecPolicy(spec))
}

// SweepScenarios runs a batch of scenarios in parallel over the shared
// database, bounded by workers (≤ 0 runs one worker per scenario).
// Reports come back in spec order; failures are joined and the
// remaining scenarios still run.
func (s *System) SweepScenarios(specs []ScenarioSpec, workers int) ([]*ScenarioReport, error) {
	if s.policy != "" {
		withDefault := make([]ScenarioSpec, len(specs))
		for i := range specs {
			withDefault[i] = *s.withSpecPolicy(&specs[i])
		}
		specs = withDefault
	}
	return scenario.Sweep(s.db, specs, workers)
}

// Savings runs cfg and the baseline-keeping idle manager on the same
// workload and returns the fractional energy saving along with the
// managed run's result.
func (s *System) Savings(apps []*Benchmark, cfg SimConfig) (float64, *SimResult, error) {
	cfg = s.withPolicy(cfg)
	idleCfg := cfg
	idleCfg.RM = Idle
	idle, err := sim.Run(s.db, apps, idleCfg)
	if err != nil {
		return 0, nil, err
	}
	r, err := sim.Run(s.db, apps, cfg)
	if err != nil {
		return 0, nil, err
	}
	return 1 - r.EnergyJ/idle.EnergyJ, r, nil
}

// Classify measures an application's CS/CI × PS/PI category with the
// Section IV-C rules.
func (s *System) Classify(b *Benchmark) (Category, error) {
	cat, _, err := s.db.Classify(b)
	return cat, err
}

// Experiments returns the paper's table/figure drivers bound to this
// system's database.
func (s *System) Experiments() *Experiments {
	return experiments.NewContext(s.db)
}
