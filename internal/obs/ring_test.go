package obs

import (
	"testing"
	"time"
)

func ev(i int) *Event {
	return &Event{Spec: 0, Name: "s", Interval: int64(i), Allocations: []int{i, i + 1}}
}

func TestRingInOrderDelivery(t *testing.T) {
	r := NewRing(64)
	for i := range 10 {
		r.Publish(ev(i))
	}
	r.Close(Terminal{Kind: TerminalDone})
	var c Cursor
	buf := make([]Event, 4)
	var got []Event
	for {
		n, term, _ := r.Read(&c, buf)
		for i := range n {
			// Deep-copy out: buf slots are reused across Read calls.
			e := buf[i]
			e.Allocations = append([]int(nil), e.Allocations...)
			got = append(got, e)
		}
		if term != nil {
			if term.Kind != TerminalDone {
				t.Fatalf("terminal = %q, want done", term.Kind)
			}
			break
		}
	}
	if len(got) != 10 {
		t.Fatalf("got %d events, want 10", len(got))
	}
	for i, e := range got {
		if e.Interval != int64(i) || e.Allocations[0] != i {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
	if c.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", c.Dropped)
	}
}

func TestRingOverwriteChargesDropped(t *testing.T) {
	r := NewRing(4)
	for i := range 10 {
		r.Publish(ev(i))
	}
	var c Cursor
	buf := make([]Event, 16)
	n, _, _ := r.Read(&c, buf)
	if n != 4 {
		t.Fatalf("read %d events, want the 4 newest", n)
	}
	if c.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", c.Dropped)
	}
	for i := range n {
		if want := int64(6 + i); buf[i].Interval != want {
			t.Fatalf("event %d = interval %d, want %d", i, buf[i].Interval, want)
		}
	}
}

func TestRingPublishNeverBlocksAndNeverAllocs(t *testing.T) {
	r := NewRing(8)
	// A subscriber that never reads must not affect Publish. Warm the
	// ring past capacity so slot Allocations backings exist, then pin
	// zero allocations per publish.
	e := ev(0)
	for range 16 {
		r.Publish(e)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Publish(e)
	})
	if allocs != 0 {
		t.Fatalf("Publish allocates %v per run with full ring, want 0", allocs)
	}
}

func TestRingWaitWakesOnPublish(t *testing.T) {
	r := NewRing(8)
	var c Cursor
	buf := make([]Event, 4)
	n, term, wait := r.Read(&c, buf)
	if n != 0 || term != nil || wait == nil {
		t.Fatalf("empty read: n=%d term=%v wait=%v", n, term, wait)
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-wait:
		case <-time.After(5 * time.Second):
			t.Error("wait channel never closed")
		}
		close(done)
	}()
	r.Publish(ev(1))
	<-done
	if n, _, _ := r.Read(&c, buf); n != 1 {
		t.Fatalf("post-wake read n=%d, want 1", n)
	}
}

func TestRingWaitWakesOnClose(t *testing.T) {
	r := NewRing(8)
	var c Cursor
	_, _, wait := r.Read(&c, make([]Event, 1))
	go r.Close(Terminal{Kind: TerminalFailed, Err: "boom"})
	select {
	case <-wait:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake waiter")
	}
	_, term, _ := r.Read(&c, make([]Event, 1))
	if term == nil || term.Kind != TerminalFailed || term.Err != "boom" {
		t.Fatalf("terminal = %+v, want failed/boom", term)
	}
}

func TestRingCloseFirstWriterWins(t *testing.T) {
	r := NewRing(4)
	r.Close(Terminal{Kind: TerminalDone})
	r.Close(Terminal{Kind: TerminalExpired}) // GC arriving late: no-op
	var c Cursor
	_, term, _ := r.Read(&c, make([]Event, 1))
	if term.Kind != TerminalDone {
		t.Fatalf("terminal = %q, want done (first writer wins)", term.Kind)
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// Publishing after close is a no-op.
	r.Publish(ev(9))
	var c2 Cursor
	n, _, _ := r.Read(&c2, make([]Event, 4))
	if n != 0 {
		t.Fatalf("read %d events published after close, want 0", n)
	}
}

func TestRingDeepCopies(t *testing.T) {
	r := NewRing(4)
	src := ev(1)
	r.Publish(src)
	src.Allocations[0] = 99 // caller mutates after publish
	var c Cursor
	buf := make([]Event, 1)
	r.Read(&c, buf)
	if buf[0].Allocations[0] != 1 {
		t.Fatalf("ring aliased the publisher's slice: got %d", buf[0].Allocations[0])
	}
	// And the reader's copy is independent of the ring slot.
	buf[0].Allocations[0] = 77
	var c2 Cursor
	buf2 := make([]Event, 1)
	r.Read(&c2, buf2)
	if buf2[0].Allocations[0] != 1 {
		t.Fatalf("reader aliased the ring slot: got %d", buf2[0].Allocations[0])
	}
}

func TestRingTwoSubscribersIndependent(t *testing.T) {
	r := NewRing(16)
	for i := range 5 {
		r.Publish(ev(i))
	}
	var a, b Cursor
	bufA := make([]Event, 16)
	if n, _, _ := r.Read(&a, bufA); n != 5 {
		t.Fatalf("subscriber A read %d, want 5", n)
	}
	for i := range 3 {
		r.Publish(ev(5 + i))
	}
	bufB := make([]Event, 16)
	if n, _, _ := r.Read(&b, bufB); n != 8 {
		t.Fatalf("late subscriber B read %d, want all 8 buffered", n)
	}
	if n, _, _ := r.Read(&a, bufA); n != 3 {
		t.Fatalf("subscriber A incremental read %d, want 3", n)
	}
}
