// Command dbgen builds the simulation database — the equivalent of the
// paper's Sniper+McPAT sweeps over all core configurations, VF corners
// and LLC allocations for every benchmark phase — and persists it for
// the other tools: as a gob cache (-out) for in-process Open calls, or
// as a versioned binary snapshot (-o) that feeds qosrmd cold starts.
//
// Usage:
//
//	dbgen [-o suite.qosdb] [-out qosrm-db.gz] [-tracelen 65536] [-warmup 16384] [-workers N]
//	dbgen -load suite.qosdb -verify
//	dbgen -load suite.qosdb -o converted.qosdb
//
// -load skips the build and reads an existing snapshot instead; with
// -verify it checks the snapshot end to end — magic, format version,
// checksum, params hash against this binary's suite definition, and
// coverage of the full suite — and exits non-zero on any failure.
// Combining -load with -o or -out rewrites the database in the other
// format. Ctrl-C cancels an in-flight build promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/dbstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbgen: ")
	out := flag.String("out", "", "gob database output path (legacy cache format)")
	snap := flag.String("o", "", "snapshot output path (qosrmd cold-start format)")
	load := flag.String("load", "", "read this snapshot instead of building")
	verify := flag.Bool("verify", false, "with -load: verify integrity, params hash and suite coverage")
	traceLen := flag.Int("tracelen", 65536, "instructions measured per phase")
	warmup := flag.Int("warmup", 16384, "cache warm-up instructions per phase")
	workers := flag.Int("workers", 0, "parallel builders (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		d     *db.DB
		err   error
		start = time.Now()
	)
	switch {
	case *load != "":
		var h *dbstore.Header
		d, h, err = dbstore.Load(*load)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: format v%d, %d benchmarks / %d phases, tracelen %d, %d bytes, params %#x\n",
			*load, h.Version, h.Benchmarks, h.Phases, h.TraceLen, h.Bytes, h.ParamsHash)
		if *verify {
			// Load already proved magic/version/checksum/params hash;
			// coverage of the compiled-in suite is the remaining serving
			// precondition.
			if !d.Covers(bench.Suite()) {
				log.Fatalf("%s does not cover the full %d-benchmark suite", *load, len(bench.Suite()))
			}
			fmt.Printf("verified: checksum ok, params hash matches this binary, full suite covered\n")
		}
	default:
		if *out == "" && *snap == "" {
			*out = "qosrm-db.gz" // the historical default output
		}
		d, err = db.BuildContext(ctx, bench.Suite(), db.Options{
			TraceLen: *traceLen,
			Warmup:   *warmup,
			Workers:  *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		phases := 0
		for _, b := range bench.Suite() {
			phases += len(b.Phases)
		}
		fmt.Printf("built %d benchmarks / %d phases in %v\n",
			len(bench.Suite()), phases, time.Since(start).Round(time.Millisecond))
	}

	if *snap != "" && *snap != *load {
		if err := dbstore.Save(*snap, d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote snapshot %s\n", *snap)
	}
	if *out != "" {
		if err := d.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote gob cache %s\n", *out)
	}
}
