// Package bench defines the reproduction's benchmark suite: 27 synthetic
// applications standing in for the 27 SPEC CPU2006 benchmarks the paper
// uses (Section IV-C; calculix and milc are excluded there, so 27 of 29).
//
// Each application is a set of SimPoint-like phases — a trace.Params
// value plus a weight — and a deterministic phase sequence mapping
// execution intervals to phases. Application names follow the SPEC
// originals and each is calibrated so that the paper's two-attribute
// classification (cache sensitivity, parallelism sensitivity; Section
// IV-C) reproduces Table II exactly: 5 CS-PS, 7 CS-PI, 7 CI-PS and
// 8 CI-PI applications.
package bench

import (
	"fmt"
	"hash/fnv"

	"qosrm/internal/trace"
)

// Category is one cell of the paper's 2×2 application taxonomy.
type Category int

// The four categories of Section II.
const (
	CSPS Category = iota // cache sensitive, parallelism sensitive
	CSPI                 // cache sensitive, parallelism insensitive
	CIPS                 // cache insensitive, parallelism sensitive
	CIPI                 // cache insensitive, parallelism insensitive
)

// NumCategories is the number of taxonomy cells.
const NumCategories = 4

// Categories lists all categories in display order.
var Categories = [NumCategories]Category{CSPS, CSPI, CIPS, CIPI}

// String returns the paper's abbreviation, e.g. "CS-PS".
func (c Category) String() string {
	switch c {
	case CSPS:
		return "CS-PS"
	case CSPI:
		return "CS-PI"
	case CIPS:
		return "CI-PS"
	case CIPI:
		return "CI-PI"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// CacheSensitive reports whether the category is CS.
func (c Category) CacheSensitive() bool { return c == CSPS || c == CSPI }

// ParallelismSensitive reports whether the category is PS.
func (c Category) ParallelismSensitive() bool { return c == CSPS || c == CIPS }

// Classification thresholds of Section IV-C.
const (
	// MPKIVarThreshold: an application is cache sensitive if its MPKI
	// varies by more than 20% when the LLC allocation changes by ±50%
	// around the 8-way baseline...
	MPKIVarThreshold = 0.20
	// ...while its baseline MPKI is at least 0.2.
	MPKIMin = 0.2
	// MLPVarThreshold: parallelism sensitive if MLP varies from the S to
	// the L core by more than 30% of the M-core MLP...
	MLPVarThreshold = 0.30
	// ...while the L-core MLP is at least 2.
	MLPMin = 2.0
)

// Classify applies the Section IV-C rules to measured statistics:
// MPKI at 4, 8 and 12 ways (baseline core and VF) and MLP on the three
// core sizes (baseline allocation and VF).
func Classify(mpki4, mpki8, mpki12, mlpS, mlpM, mlpL float64) Category {
	cs := false
	if mpki8 >= MPKIMin {
		up := abs(mpki4 - mpki8)
		down := abs(mpki8 - mpki12)
		v := up
		if down > v {
			v = down
		}
		cs = v > MPKIVarThreshold*mpki8
	}
	ps := mlpL >= MLPMin && abs(mlpL-mlpS) > MLPVarThreshold*mlpM
	switch {
	case cs && ps:
		return CSPS
	case cs:
		return CSPI
	case ps:
		return CIPS
	default:
		return CIPI
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Phase is one SimPoint-like program phase: a synthetic stream plus the
// fraction of the application's execution it represents.
type Phase struct {
	Weight float64
	Params trace.Params
}

// Benchmark is one application of the suite.
type Benchmark struct {
	Name string
	// Category is the intended Table II category; the classification
	// tests verify that measurement reproduces it.
	Category Category
	Phases   []Phase
	// Sequence maps interval number to phase index, repeating; its
	// composition matches the phase weights.
	Sequence []int
	// TotalInstr is the application's dynamic instruction count at paper
	// scale (the longest application runs 4146 B instructions).
	TotalInstr int64
}

// PhaseAt returns the phase index executed during the given interval.
func (b *Benchmark) PhaseAt(interval int64) int {
	if len(b.Sequence) == 0 {
		return 0
	}
	return b.Sequence[int(interval%int64(len(b.Sequence)))]
}

// Validate checks internal consistency.
func (b *Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("bench: unnamed benchmark")
	}
	if len(b.Phases) == 0 {
		return fmt.Errorf("bench %s: no phases", b.Name)
	}
	total := 0.0
	for i, p := range b.Phases {
		if p.Weight <= 0 {
			return fmt.Errorf("bench %s: phase %d weight %.3f not positive", b.Name, i, p.Weight)
		}
		if err := p.Params.Validate(); err != nil {
			return fmt.Errorf("bench %s phase %d: %w", b.Name, i, err)
		}
		total += p.Weight
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("bench %s: phase weights sum to %.3f, want 1", b.Name, total)
	}
	for i, s := range b.Sequence {
		if s < 0 || s >= len(b.Phases) {
			return fmt.Errorf("bench %s: sequence[%d]=%d out of range", b.Name, i, s)
		}
	}
	if b.TotalInstr <= 0 {
		return fmt.Errorf("bench %s: non-positive instruction count", b.Name)
	}
	return nil
}

// seed derives a deterministic per-phase seed from the benchmark name.
func seed(name string, phase int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", name, phase)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// ByName returns the named benchmark from the suite, or an error.
func ByName(name string) (*Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Names returns the suite's benchmark names in suite order.
func Names() []string {
	s := Suite()
	out := make([]string, len(s))
	for i, b := range s {
		out[i] = b.Name
	}
	return out
}

// ByCategory groups the suite by intended category.
func ByCategory() map[Category][]*Benchmark {
	m := make(map[Category][]*Benchmark, NumCategories)
	for _, b := range Suite() {
		m[b.Category] = append(m[b.Category], b)
	}
	return m
}
