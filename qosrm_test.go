package qosrm

import (
	"path/filepath"
	"sync"
	"testing"
)

var (
	once   sync.Once
	shared *System
	sysErr error
)

// sharedSystem builds a reduced-tracelen system over a subset of the
// suite for the facade tests.
func sharedSystem(t *testing.T) *System {
	t.Helper()
	once.Do(func() {
		shared, sysErr = Open(Options{
			TraceLen: 16384,
			Warmup:   4096,
			Benchmarks: []*Benchmark{
				MustBenchmark("mcf"),
				MustBenchmark("povray"),
				MustBenchmark("libquantum"),
				MustBenchmark("omnetpp"),
			},
		})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return shared
}

func TestSuiteAccessors(t *testing.T) {
	if len(Suite()) != 27 {
		t.Fatalf("suite size %d", len(Suite()))
	}
	if _, err := BenchmarkByName("mcf"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestMustBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBenchmark must panic on unknown names")
		}
	}()
	MustBenchmark("nope")
}

func TestBaselineReexport(t *testing.T) {
	b := Baseline()
	if b.Core != SizeM || b.Ways != 8 {
		t.Fatalf("baseline %v", b)
	}
}

func TestGenerateWorkloads(t *testing.T) {
	ws, err := GenerateWorkloads(Scenario1, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || len(ws[0].Apps) != 4 {
		t.Fatal("workload shape wrong")
	}
}

func TestSavingsAndRun(t *testing.T) {
	sys := sharedSystem(t)
	apps := []*Benchmark{MustBenchmark("libquantum"), MustBenchmark("omnetpp")}
	saving, res, err := sys.Savings(apps, SimConfig{RM: RM3, Perfect: true, DisableOverheads: true})
	if err != nil {
		t.Fatal(err)
	}
	if saving <= 0 {
		t.Fatalf("expected positive savings, got %.3f", saving)
	}
	if res.RMCalled == 0 {
		t.Fatal("manager never ran")
	}
	r, err := sys.Run(apps, SimConfig{RM: Idle})
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyJ <= 0 {
		t.Fatal("idle run broken")
	}
}

func TestClassify(t *testing.T) {
	sys := sharedSystem(t)
	cat, err := sys.Classify(MustBenchmark("povray"))
	if err != nil {
		t.Fatal(err)
	}
	if cat != CIPI {
		t.Errorf("povray classified %s", cat)
	}
}

func TestExperimentsBinding(t *testing.T) {
	sys := sharedSystem(t)
	ctx := sys.Experiments()
	if ctx.DB != sys.DB() {
		t.Fatal("experiments not bound to the system database")
	}
	cells := ctx.Fig1()
	if len(cells) != 10 {
		t.Fatal("fig1 broken via facade")
	}
}

func TestScenarioFacade(t *testing.T) {
	sys := sharedSystem(t)
	const work = 4 * 100_000_000 * 2048
	spec := ScenarioSpec{
		Name: "facade",
		Cores: []ScenarioCore{
			{Jobs: []ScenarioJob{
				{App: "mcf", Work: work},
				{App: "povray", Work: work, Alpha: 1.2},
			}},
			{Jobs: []ScenarioJob{{App: "libquantum", Work: 2 * work}}},
		},
	}
	rep, err := sys.RunScenario(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 3 || rep.RM != "RM3" {
		t.Fatalf("bad report: %+v", rep)
	}
	reps, err := sys.SweepScenarios([]ScenarioSpec{spec, spec}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].EnergyJ != reps[1].EnergyJ {
		t.Fatal("sweep of identical specs must agree")
	}
}

func TestChurnWorkloadFacade(t *testing.T) {
	churn, err := GenerateChurnWorkloads(Scenario3, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := ChurnScenario("churn", churn, 1e9)
	if len(spec.Cores) != 4 {
		t.Fatalf("%d cores", len(spec.Cores))
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenCachesDatabase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.gz")
	opts := Options{
		DBPath:     path,
		TraceLen:   4096,
		Warmup:     1024,
		Benchmarks: []*Benchmark{MustBenchmark("povray")},
	}
	s1, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(opts) // loads from cache
	if err != nil {
		t.Fatal(err)
	}
	if s1.DB().TraceLen != s2.DB().TraceLen {
		t.Fatal("cache round trip broken")
	}
}
