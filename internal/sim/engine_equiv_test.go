package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
)

// The cross-seed property tests of the engine unification: the one
// event-driven engine behind Run/RunDynamic must reproduce the retained
// seed loops (reference.go) bit for bit on every workload the old
// engines could express — static mixes, multiprogrammed churn with
// arrivals/departures, heterogeneous per-app alphas and mid-run QoS
// steps — across seeds and manager configurations. This is the same
// contract pattern as db.BuildReference / GlobalOptimizeReference, one
// level up.

// testApps are the applications of the shared test database.
var testAppNames = []string{"mcf", "povray", "bwaves", "xalancbmk", "libquantum", "omnetpp"}

func equivConfigs() []Config {
	return []Config{
		{RM: rm.RM3, Model: perfmodel.Model3},
		{RM: rm.RM2, Model: perfmodel.Model1},
		{RM: rm.RM3, Perfect: true},
		{RM: rm.RM3, Model: perfmodel.Model3, Alpha: 1.2},
		{RM: rm.RM3, Model: perfmodel.Model3, GreedyGlobal: true},
		{RM: rm.RM1, Model: perfmodel.Model2, DisableOverheads: true},
		{RM: rm.Idle},
	}
}

func TestEngineMatchesStaticReferenceAcrossSeeds(t *testing.T) {
	d := sharedDB(t)
	cfgs := equivConfigs()
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		names := make([]string, n)
		for i := range names {
			names[i] = testAppNames[rng.Intn(len(testAppNames))]
		}
		cfg := cfgs[int(seed)%len(cfgs)]
		w := apps(t, names...)

		want, err := runStaticReference(d, w, cfg)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		got, err := Run(d, w, cfg)
		if err != nil {
			t.Fatalf("seed %d: unified: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d (%v, cfg %+v): unified engine diverges from the seed static loop:\n got %+v\nwant %+v",
				seed, names, cfg, got, want)
		}
	}
}

// randomDynamic builds a seeded random churn description over the test
// database: 2-4 cores, 1-3 queued jobs each with staggered arrivals,
// bounded work, occasional forced departures and heterogeneous per-app
// alphas, plus 0-2 mid-run QoS steps.
func randomDynamic(t *testing.T, rng *rand.Rand) Dynamic {
	t.Helper()
	const fullWork = 100_000_000 * 2048 // one interval of paper-scale work at Scale 2048
	alphas := []float64{0, 0, 1.1, 1.3}
	n := 2 + rng.Intn(3)
	dyn := Dynamic{Queues: make([]Queue, n)}
	for c := 0; c < n; c++ {
		depth := 1 + rng.Intn(3)
		jobs := make([]Job, depth)
		arrival := 0.0
		for j := range jobs {
			jobs[j] = Job{
				App:       apps(t, testAppNames[rng.Intn(len(testAppNames))])[0],
				Alpha:     alphas[rng.Intn(len(alphas))],
				ArrivalNs: arrival,
				Work:      float64(2+rng.Intn(6)) * fullWork,
			}
			if rng.Float64() < 0.25 {
				jobs[j].DepartNs = arrival + 2.5e8*(1+rng.Float64())
			}
			arrival += 4e8 * rng.Float64()
		}
		dyn.Queues[c] = Queue{Jobs: jobs}
	}
	for s := rng.Intn(3); s > 0; s-- {
		core := -1
		if rng.Float64() < 0.5 {
			core = rng.Intn(n)
		}
		dyn.Steps = append(dyn.Steps, QoSStep{
			AtNs:  2e9 * rng.Float64(),
			Core:  core,
			Alpha: 1 + 0.4*rng.Float64(),
		})
	}
	return dyn
}

func TestEngineMatchesDynamicReferenceAcrossSeeds(t *testing.T) {
	d := sharedDB(t)
	cfgs := equivConfigs()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		dyn := randomDynamic(t, rng)
		cfg := cfgs[int(seed)%len(cfgs)]

		want, err := runDynamicReference(d, dyn, cfg)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		got, err := RunDynamic(d, dyn, cfg)
		if err != nil {
			t.Fatalf("seed %d: unified: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d (cfg %+v): unified engine diverges from the seed dynamic loop:\n got %+v\nwant %+v",
				seed, cfg, got, want)
		}
	}
}

// TestPolicyNameMatchesLegacyFlags pins the Config.Policy plumbing to
// the optimizer selections the seed engines hard-wired: the "model3"
// policy (and the empty default) reproduces the workspace reduction
// path, and Policy "greedy" reproduces the legacy GreedyGlobal flag,
// bit for bit, through both entry points.
func TestPolicyNameMatchesLegacyFlags(t *testing.T) {
	d := sharedDB(t)
	w := apps(t, "mcf", "xalancbmk")
	dyn := randomDynamic(t, rand.New(rand.NewSource(7)))

	for _, tc := range []struct {
		name   string
		policy string
		legacy Config
	}{
		{"model3-default", rm.PolicyModel3, Config{RM: rm.RM3, Model: perfmodel.Model3}},
		{"greedy-flag", rm.PolicyGreedy, Config{RM: rm.RM3, Model: perfmodel.Model3, GreedyGlobal: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			named := tc.legacy
			named.GreedyGlobal = false
			named.Policy = tc.policy

			wantS, err := Run(d, w, tc.legacy)
			if err != nil {
				t.Fatal(err)
			}
			gotS, err := Run(d, w, named)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotS, wantS) {
				t.Errorf("static: policy %q diverges from the legacy flags", tc.policy)
			}

			wantD, err := RunDynamic(d, dyn, tc.legacy)
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := RunDynamic(d, dyn, named)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotD, wantD) {
				t.Errorf("dynamic: policy %q diverges from the legacy flags", tc.policy)
			}
		})
	}
}
