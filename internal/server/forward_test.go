package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"qosrm/internal/scenario"
)

// reserveNode reserves a loopback listener so its URL can appear in a
// peer list before the node behind it exists — the only way two nodes
// can name each other in Options.Peers.
func reserveNode(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, "http://" + ln.Addr().String()
}

// serveNode mounts a server on a reserved listener and tears both down
// with the test.
func serveNode(t *testing.T, srv *Server, ln net.Listener) {
	t.Helper()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
}

// fillQueue forces a server's queue occupancy (white box), making
// queue-full admission deterministic without racing real workers.
func fillQueue(srv *Server, n int) {
	srv.mu.Lock()
	srv.queued = n
	srv.mu.Unlock()
}

// submitJob posts a sweep to base, with an Idempotency-Key when key is
// non-empty, returning the response, raw body, and the decoded status
// (zero-valued on a rejection).
func submitJob(t *testing.T, base, key string, specs []scenario.Spec) (*http.Response, string, JobStatus) {
	t.Helper()
	data, err := json.Marshal(JobRequest{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	var st JobStatus
	json.Unmarshal([]byte(raw), &st)
	return resp, raw, st
}

// TestClusterForwardsOverflowToLeastLoadedPeer: a node whose queue is
// full hands the batch to the least-loaded live peer — not the first
// listed one — and answers with the peer's job handle, Origin naming
// the node that owns the job. The forwarded job completes on the peer
// with a report bit-identical to a direct run.
func TestClusterForwardsOverflowToLeastLoadedPeer(t *testing.T) {
	lnB, urlB := reserveNode(t)
	lnC, urlC := reserveNode(t)
	srvB, err := New(sharedDB(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srvC, err := New(sharedDB(t), Options{Workers: 1, QueueDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvB, lnB)
	serveNode(t, srvC, lnC)
	// C is nearly full, B is idle; C listed first so selection must be
	// by load ranking, not list order.
	fillQueue(srvC, 9)

	lnA, _ := reserveNode(t)
	srvA, err := New(sharedDB(t), Options{Workers: 1, QueueDepth: 2, Peers: []string{urlC, urlB}})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvA, lnA)
	fillQueue(srvA, 2)

	spec := testSpec("cluster-fwd")
	resp, raw, st := submitJob(t, "http://"+lnA.Addr().String(), "", []scenario.Spec{spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded submit: %d %s", resp.StatusCode, raw)
	}
	if st.Origin != urlB {
		t.Fatalf("origin %q, want least-loaded peer %q", st.Origin, urlB)
	}
	// The job lives on B alone: the origin node's journal/queue owns it.
	if srvA.jobByID(st.ID) != nil || srvC.jobByID(st.ID) != nil {
		t.Fatal("forwarded job exists on a node other than its origin")
	}
	done := waitJobDone(t, srvB, st.ID)
	if done.State != JobDone || len(done.Reports) != 1 {
		t.Fatalf("forwarded job did not complete on origin: %+v", done)
	}
	want, err := scenario.RunCtx(context.Background(), sharedDB(t), &spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(done.Reports[0], want) {
		t.Fatal("forwarded report differs from a direct run")
	}

	if got := srvA.metrics.jobsForwarded.Load(); got != 1 {
		t.Fatalf("jobs_forwarded_total %d, want 1", got)
	}
	if got := srvB.metrics.forwardReceived.Load(); got != 1 {
		t.Fatalf("jobs_forward_received_total %d, want 1", got)
	}

	// The cluster surfaces in /healthz and /metrics.
	var h Health
	if code := getJSON(t, "http://"+lnA.Addr().String()+"/healthz", &h); code != http.StatusOK || h.Peers != 2 {
		t.Fatalf("healthz peers %d (code %d), want 2", h.Peers, code)
	}
	mresp, err := http.Get("http://" + lnA.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, mresp)
	for _, line := range []string{"qosrmd_cluster_peers 2", "qosrmd_jobs_forwarded_total 1"} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics missing %q:\n%s", line, body)
		}
	}
}

// TestClusterHopLimitDegradesTo503: when every node is saturated, the
// forward trail stops the batch from looping between peers — the second
// node sees the first on the trail, finds no other candidate, and the
// first answers an honest queue_full 503.
func TestClusterHopLimitDegradesTo503(t *testing.T) {
	lnA, urlA := reserveNode(t)
	lnB, urlB := reserveNode(t)
	srvA, err := New(sharedDB(t), Options{Workers: 1, QueueDepth: 2, Peers: []string{urlB}})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := New(sharedDB(t), Options{Workers: 1, QueueDepth: 2, Peers: []string{urlA}})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvA, lnA)
	serveNode(t, srvB, lnB)
	fillQueue(srvA, 2)
	fillQueue(srvB, 2)

	resp, raw, _ := submitJob(t, urlA, "", []scenario.Spec{testSpec("cluster-loop")})
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(raw, `"reason":"queue_full"`) {
		t.Fatalf("saturated cluster: %d %s, want 503 queue_full", resp.StatusCode, raw)
	}
	if got := srvA.metrics.forwardFailed.Load(); got != 1 {
		t.Fatalf("jobs_forward_failed_total %d, want 1", got)
	}
	// B's only peer was already on the trail, so it completed no forward
	// of its own.
	if got := srvB.metrics.jobsForwarded.Load(); got != 0 {
		t.Fatalf("trail-excluded node forwarded anyway (%d)", got)
	}
}

// TestClusterIdempotencyKeyThroughEitherNode: a key whose submit was
// forwarded resolves to the same job when retried — through the node
// that forwarded it (which remembers the origin) and through the origin
// itself (which deduplicated on the verbatim key).
func TestClusterIdempotencyKeyThroughEitherNode(t *testing.T) {
	lnB, urlB := reserveNode(t)
	srvB, err := New(sharedDB(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvB, lnB)

	lnA, urlA := reserveNode(t)
	srvA, err := New(sharedDB(t), Options{Workers: 1, QueueDepth: 2, Peers: []string{urlB}})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvA, lnA)
	fillQueue(srvA, 2)

	const key = "cluster-idem-key"
	specs := []scenario.Spec{testSpec("cluster-idem")}
	r1, raw, st1 := submitJob(t, urlA, key, specs)
	if r1.StatusCode != http.StatusAccepted || st1.Origin != urlB {
		t.Fatalf("forwarded submit: %d %s", r1.StatusCode, raw)
	}
	if r1.Header.Get("Idempotency-Replayed") != "" {
		t.Fatal("fresh forwarded submit marked as replayed")
	}
	waitJobDone(t, srvB, st1.ID)

	// Retry through the forwarding node: same job, marked replayed,
	// origin preserved so the caller knows where to poll.
	r2, _, st2 := submitJob(t, urlA, key, specs)
	if r2.StatusCode != http.StatusAccepted || st2.ID != st1.ID || st2.Origin != urlB {
		t.Fatalf("retry via forwarder: %d id %s origin %s, want %s at %s",
			r2.StatusCode, st2.ID, st2.Origin, st1.ID, urlB)
	}
	if r2.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("retry via forwarder not marked as replayed")
	}

	// Retry directly at the origin: the key travelled verbatim, so the
	// origin's own dedupe map resolves it to the same job.
	r3, _, st3 := submitJob(t, urlB, key, specs)
	if r3.StatusCode != http.StatusAccepted || st3.ID != st1.ID {
		t.Fatalf("retry via origin: %d id %s, want %s", r3.StatusCode, st3.ID, st1.ID)
	}
	if r3.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("retry via origin not marked as replayed")
	}
}

// TestClusterForwardedJobSurvivesPeerRestart: a forwarded job is owned
// by the origin node's journal — after the origin crashes and reboots
// from its journal, the job is still queryable under the same ID with
// bit-identical reports.
func TestClusterForwardedJobSurvivesPeerRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.jnl")
	lnB, urlB := reserveNode(t)
	srvB, err := New(sharedDB(t), Options{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	hsB := &http.Server{Handler: srvB.Handler()}
	go hsB.Serve(lnB)

	lnA, urlA := reserveNode(t)
	srvA, err := New(sharedDB(t), Options{Workers: 1, QueueDepth: 2, Peers: []string{urlB}})
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srvA, lnA)
	fillQueue(srvA, 2)

	resp, raw, st := submitJob(t, urlA, "restart-key", []scenario.Spec{testSpec("cluster-crash")})
	if resp.StatusCode != http.StatusAccepted || st.Origin != urlB {
		t.Fatalf("forwarded submit: %d %s", resp.StatusCode, raw)
	}
	done := waitJobDone(t, srvB, st.ID)

	// The origin goes down and reboots from its journal.
	hsB.Close()
	srvB.Close()
	srvB2, err := New(sharedDB(t), Options{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB2.Close()
	j := srvB2.jobByID(st.ID)
	if j == nil {
		t.Fatalf("forwarded job %s lost across origin restart", st.ID)
	}
	st2 := j.status()
	if st2.State != JobDone || !reflect.DeepEqual(st2.Reports, done.Reports) {
		t.Fatalf("replayed forwarded job diverges: %+v", st2)
	}
}
