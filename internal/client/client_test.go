package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestOversizedResponseRejected: a response body past the decode bound
// surfaces as a typed response_too_large ServiceError, never as the
// opaque JSON decode error a silent truncation would produce.
func TestOversizedResponseRejected(t *testing.T) {
	old := maxResponseBytes
	maxResponseBytes = 1 << 10
	t.Cleanup(func() { maxResponseBytes = old })

	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","pad":"`))
		w.Write([]byte(strings.Repeat("x", 4<<10)))
		w.Write([]byte(`"}`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.HTTPClient = ts.Client()
	c.MaxRetries = -1
	_, err := c.Health(context.Background())
	var se *ServiceError
	if !errors.As(err, &se) {
		t.Fatalf("oversized body error not a ServiceError: %v", err)
	}
	if se.Reason != ReasonResponseTooLarge {
		t.Fatalf("reason %q, want %q", se.Reason, ReasonResponseTooLarge)
	}
	if se.StatusCode != http.StatusOK {
		t.Fatalf("status %d recorded, want 200 (the HTTP exchange succeeded)", se.StatusCode)
	}

	// A body that exactly fills the bound is fine: the limit is a bound,
	// not an off-by-one trap.
	exact := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := `{"status":"ok","benchmarks":1`
		body += strings.Repeat(" ", int(maxResponseBytes)-len(body)-1) + "}"
		io.WriteString(w, body)
	}))
	defer exact.Close()
	ce := New(exact.URL)
	ce.HTTPClient = exact.Client()
	if h, err := ce.Health(context.Background()); err != nil || h.Status != "ok" {
		t.Fatalf("exactly-bounded body rejected: %v", err)
	}
}

// TestWaitJobExpiredIsTerminal: a job whose TTL expired between polls
// answers 404 — WaitJob must surface that as a terminal error after a
// single request, not spin retrying a job that will never come back.
func TestWaitJobExpiredIsTerminal(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":"unknown job \"gone\""}`)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.HTTPClient = ts.Client()
	_, err := c.WaitJob(context.Background(), "gone", 0)
	var se *ServiceError
	if !errors.As(err, &se) || se.StatusCode != http.StatusNotFound {
		t.Fatalf("expired job error: %v, want a 404 ServiceError", err)
	}
	if se.Temporary() {
		t.Fatal("404 classified as temporary")
	}
	if calls != 1 {
		t.Fatalf("terminal 404 polled %d times, want 1", calls)
	}
}
