// Package perfmodel implements the online analytical performance models
// the resource managers use to predict the execution time of the next
// interval for any candidate setting (Section III-C, Eq. 1–3).
//
// Three models are compared in the paper:
//
//   - Model1 multiplies the total number of LLC misses by the memory
//     latency — no MLP awareness at all.
//   - Model2 (the prior-art framework [8]) divides the miss count by the
//     average MLP measured over the past interval, assuming MLP constant
//     across all candidate settings.
//   - Model3 (the paper's proposal) uses the ATD extension's per-(core
//     size, way allocation) leading-miss estimates.
//
// All three share the Eq. 1 core-time structure: compute time scales with
// dispatch width and frequency, branch/cache time with frequency only,
// and memory time is frequency-invariant.
package perfmodel

import (
	"fmt"

	"qosrm/internal/config"
	"qosrm/internal/db"
)

// Kind selects a performance model.
type Kind int

// The three online models of Section V-B.
const (
	Model1 Kind = iota + 1 // total misses × latency
	Model2                 // constant measured MLP (prior art [8])
	Model3                 // ATD leading-miss estimates (proposed)
)

// String returns the paper's model name.
func (k Kind) String() string {
	switch k {
	case Model1:
		return "Model1"
	case Model2:
		return "Model2"
	case Model3:
		return "Model3"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NumWays mirrors the database way-allocation range.
const NumWays = db.NumWays

// IntervalStats is everything the RM reads at an interval boundary: the
// hardware performance counters and ATD observations of the interval that
// just finished, normalised per instruction. It is the model's only input
// — ground truth never leaks into predictions.
type IntervalStats struct {
	// Setting is the configuration the interval ran at.
	Setting config.Setting

	// CPI-stack components in ns per instruction at Setting:
	// T0 (compute), T1 (branch + cache) and Tmem (memory stall).
	T0, T1, Tmem float64

	// MLP is the average memory-level parallelism measured over the
	// interval (used by Model2 for every candidate setting).
	MLP float64

	// MissPI[w-MinWays] is the ATD-estimated LLC misses per instruction
	// at allocation w.
	MissPI [NumWays]float64

	// LMPI[c][w-MinWays] is the ATD extension's leading misses per
	// instruction for core size c at allocation w.
	LMPI [config.NumSizes][NumWays]float64

	// MemAccPI is the measured memory accesses per instruction at the
	// current allocation (MA of Eq. 5).
	MemAccPI float64
}

// FromDB converts a database record (the co-simulator's stand-in for the
// hardware counters) into interval statistics.
func FromDB(s *db.Stats, set config.Setting) IntervalStats {
	n := s.Instructions
	st := IntervalStats{
		Setting:  set,
		T0:       s.BaseNs / n,
		T1:       (s.BranchNs + s.CacheNs) / n,
		Tmem:     s.MemNs / n,
		MLP:      s.MLP,
		MemAccPI: s.LLCMisses / n,
	}
	for w := 0; w < NumWays; w++ {
		st.MissPI[w] = s.ATDMissCurve[w] / n
		for c := 0; c < config.NumSizes; c++ {
			st.LMPI[c][w] = s.ATDLM[c][w] / n
		}
	}
	return st
}

// missAt returns the ATD miss estimate per instruction at allocation w.
func (st *IntervalStats) missAt(w int) float64 {
	return st.MissPI[clampWays(w)-config.MinWays]
}

// lmAt returns the leading-miss estimate per instruction at (c, w).
func (st *IntervalStats) lmAt(c config.CoreSize, w int) float64 {
	return st.LMPI[c][clampWays(w)-config.MinWays]
}

// MemTime returns the model's memory stall estimate T_mem(c, w) in ns
// per instruction (Eq. 2 with the model-specific leading-miss count).
func (st *IntervalStats) MemTime(k Kind, target config.Setting) float64 {
	switch k {
	case Model1:
		return st.missAt(target.Ways) * config.ModelMemLatencyNs
	case Model2:
		mlp := st.MLP
		if mlp < 1 {
			mlp = 1
		}
		return st.missAt(target.Ways) / mlp * config.ModelMemLatencyNs
	case Model3:
		return st.lmAt(target.Core, target.Ways) * config.ModelMemLatencyNs
	default:
		panic(fmt.Sprintf("perfmodel: unknown model %d", int(k)))
	}
}

// TimePI predicts the next interval's execution time in ns per
// instruction at the target setting (Eq. 1): compute time scales with the
// dispatch-width ratio and the frequency ratio, branch/cache time with
// frequency only, and memory time is model- and (c, w)- but not
// frequency-dependent.
func (st *IntervalStats) TimePI(k Kind, target config.Setting) float64 {
	di := float64(config.Core(st.Setting.Core).IssueWidth)
	dt := float64(config.Core(target.Core).IssueWidth)
	fRatio := st.Setting.FGHz() / target.FGHz()
	return (st.T0*(di/dt)+st.T1)*fRatio + st.MemTime(k, target)
}

// QoS evaluates Eq. 3: whether the predicted time at target is within
// α × the predicted time at the baseline setting, both predicted with
// the same model.
func (st *IntervalStats) QoS(k Kind, target config.Setting, alpha float64) bool {
	return st.TimePI(k, target) <= st.TimePI(k, config.Baseline())*alpha
}

func clampWays(w int) int {
	if w < config.MinWays {
		return config.MinWays
	}
	if w > config.MaxWays {
		return config.MaxWays
	}
	return w
}
