package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintExposition parses a full Prometheus text-exposition scrape and
// returns every violation found, so the /metrics handler can be kept
// honest by a test instead of by review. It enforces:
//
//   - every line is a comment, blank, or a well-formed sample
//     `name{labels} value`
//   - metric and label names match the Prometheus grammar
//   - no duplicate series (same name + same label set twice)
//   - every series belongs to a family declared by a `# TYPE` line
//     (histogram families own their _bucket/_sum/_count suffixes)
//   - counter family names end in `_total`
//   - each histogram label set has ascending, cumulative `le` buckets
//     ending at `+Inf`, with _count equal to the +Inf bucket
//
// A nil return means the scrape is clean.
func LintExposition(r io.Reader) []error {
	var errs []error
	addf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	types := map[string]string{} // family name -> type
	// series key (name + canonical labels) -> seen
	seen := map[string]bool{}
	// histogram family -> label-set-sans-le -> buckets/sum/count
	type histSet struct {
		les    []float64
		counts []uint64
		sum    *float64
		count  *uint64
	}
	hists := map[string]map[string]*histSet{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					addf("line %d: malformed TYPE comment: %q", lineNo, line)
					continue
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					addf("line %d: TYPE declares invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf("line %d: unknown metric type %q", lineNo, typ)
				}
				if prev, ok := types[name]; ok && prev != typ {
					addf("line %d: family %q re-declared as %s (was %s)", lineNo, name, typ, prev)
				}
				types[name] = typ
				if typ == "counter" && !strings.HasSuffix(name, "_total") {
					addf("line %d: counter %q does not end in _total", lineNo, name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", lineNo, err)
			continue
		}
		if !validMetricName(name) {
			addf("line %d: invalid metric name %q", lineNo, name)
		}
		for _, l := range labels {
			if !validLabelName(l.key) {
				addf("line %d: invalid label name %q", lineNo, l.key)
			}
		}
		key := name + "{" + canonLabels(labels) + "}"
		if seen[key] {
			addf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true

		family, suffix := familyOf(name, types)
		if family == "" {
			addf("line %d: series %q has no # TYPE declaration", lineNo, name)
			continue
		}
		if types[family] == "histogram" {
			hs := hists[family]
			if hs == nil {
				hs = map[string]*histSet{}
				hists[family] = hs
			}
			rest, le, hasLE := splitLE(labels)
			set := hs[rest]
			if set == nil {
				set = &histSet{}
				hs[rest] = set
			}
			switch suffix {
			case "_bucket":
				if !hasLE {
					addf("line %d: histogram bucket %q missing le label", lineNo, name)
					continue
				}
				f, err := parseLE(le)
				if err != nil {
					addf("line %d: bad le value %q: %v", lineNo, le, err)
					continue
				}
				set.les = append(set.les, f)
				set.counts = append(set.counts, uint64(value))
			case "_sum":
				v := value
				set.sum = &v
			case "_count":
				c := uint64(value)
				set.count = &c
			default:
				addf("line %d: series %q under histogram family %q has no histogram suffix", lineNo, name, family)
			}
		}
	}
	if err := sc.Err(); err != nil {
		addf("scan: %v", err)
	}

	// Cross-line histogram shape checks.
	for family, sets := range hists {
		for rest, set := range sets {
			at := family
			if rest != "" {
				at = family + "{" + rest + "}"
			}
			if len(set.les) == 0 {
				addf("histogram %s: no _bucket series", at)
				continue
			}
			for i := 1; i < len(set.les); i++ {
				if !(set.les[i] > set.les[i-1]) {
					addf("histogram %s: le values not ascending", at)
					break
				}
				if set.counts[i] < set.counts[i-1] {
					addf("histogram %s: buckets not cumulative", at)
					break
				}
			}
			last := set.les[len(set.les)-1]
			if !isInf(last) {
				addf("histogram %s: last bucket le=%v, want +Inf", at, last)
			}
			if set.count == nil {
				addf("histogram %s: missing _count", at)
			} else if isInf(last) && *set.count != set.counts[len(set.counts)-1] {
				addf("histogram %s: _count %d != +Inf bucket %d", at, *set.count, set.counts[len(set.counts)-1])
			}
			if set.sum == nil {
				addf("histogram %s: missing _sum", at)
			}
		}
	}
	return errs
}

type label struct{ key, val string }

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (name string, labels []label, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample: %q", line)
	}
	name = rest[:i]
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed labels: %q", line)
			}
			k := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value: %q", line)
			}
			// Find the closing quote, honoring escapes.
			j := 1
			for j < len(rest) {
				if rest[j] == '\\' {
					j += 2
					continue
				}
				if rest[j] == '"' {
					break
				}
				j++
			}
			if j >= len(rest) {
				return "", nil, 0, fmt.Errorf("unterminated label value: %q", line)
			}
			v, uerr := strconv.Unquote(rest[:j+1])
			if uerr != nil {
				return "", nil, 0, fmt.Errorf("bad label value in %q: %v", line, uerr)
			}
			labels = append(labels, label{k, v})
			rest = rest[j+1:]
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample value: %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

func canonLabels(labels []label) string {
	ls := make([]string, len(labels))
	for i, l := range labels {
		ls[i] = l.key + "=" + strconv.Quote(l.val)
	}
	sort.Strings(ls)
	return strings.Join(ls, ",")
}

// splitLE removes the le label, returning the canonical remainder.
func splitLE(labels []label) (rest string, le string, ok bool) {
	var others []label
	for _, l := range labels {
		if l.key == "le" {
			le, ok = l.val, true
			continue
		}
		others = append(others, l)
	}
	return canonLabels(others), le, ok
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isInf(f float64) bool { return math.IsInf(f, 1) }

// familyOf resolves a sample name to its declared family: an exact TYPE
// match, or a histogram/summary family owning the suffixed series.
func familyOf(name string, types map[string]string) (family, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, sfx)
		if !ok {
			continue
		}
		if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
			return base, sfx
		}
	}
	return "", ""
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
