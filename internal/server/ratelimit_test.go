package server

import (
	"fmt"
	"testing"
	"time"
)

// TestRateLimiterCapIsHard: maxClients is a hard bound, not advisory.
// With every bucket mid-refill (a frozen clock means prune can never
// free one), hammering the limiter with far more distinct clients than
// the cap must evict stale buckets instead of growing the map.
func TestRateLimiterCapIsHard(t *testing.T) {
	now := time.Now()
	l := newRateLimiter(1, 1, func() time.Time { return now })

	for i := 0; i < 2*maxClients; i++ {
		// Nudge the clock forward a hair per client: not enough to
		// refill any bucket (prune stays empty-handed), but enough to
		// make "stalest" well-defined.
		now = now.Add(time.Microsecond)
		if !l.allow(fmt.Sprintf("client-%d", i)) {
			t.Fatalf("fresh client %d denied its first request", i)
		}
		if n := len(l.buckets); n > maxClients {
			t.Fatalf("bucket map grew to %d after %d clients (cap %d)", n, i+1, maxClients)
		}
	}
	if n := len(l.buckets); n != maxClients {
		t.Fatalf("bucket map at %d after hammering, want exactly %d", n, maxClients)
	}
	// The survivors are the most recent clients: the stalest half was
	// evicted, so an early client is gone and a late one remains.
	if _, ok := l.buckets["client-0"]; ok {
		t.Fatal("stalest bucket survived eviction")
	}
	if _, ok := l.buckets[fmt.Sprintf("client-%d", 2*maxClients-1)]; !ok {
		t.Fatal("freshest bucket missing")
	}

	// Once buckets refill, the ordinary prune path takes over again: a
	// new client empties the idle map instead of evicting live state.
	now = now.Add(time.Hour)
	if !l.allow("after-idle") {
		t.Fatal("client denied after refill")
	}
	if n := len(l.buckets); n != 1 {
		t.Fatalf("idle buckets not pruned: %d remain", n)
	}
}
