package scenario

import (
	"context"
	"errors"
	"testing"
)

// TestSweepContextCancelled pins the sweep's cancellation contract:
// once the context is cancelled, unprocessed scenarios are abandoned
// and every failure carries the context's error.
func TestSweepContextCancelled(t *testing.T) {
	d := sharedDB(t)
	specs := []Spec{testSpec("c1"), testSpec("c2"), testSpec("c3"), testSpec("c4")}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := SweepContext(ctx, d, specs, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for i, r := range reports {
		if r != nil {
			t.Fatalf("cancelled sweep produced report %d", i)
		}
	}
}

// TestRunCtxCancelled checks the single-scenario path: a cancelled
// context aborts the run's simulations with the context's error.
func TestRunCtxCancelled(t *testing.T) {
	d := sharedDB(t)
	spec := testSpec("cancel")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := RunCtx(ctx, d, &spec, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if r != nil {
		t.Fatal("cancelled run returned a report")
	}
}
