// Package faultinject is the failpoint registry the reliability tests
// drive: named points in production code (journal writes, worker-pool
// execution, compaction) call Eval, which is a single atomic load when
// nothing is armed and an injected fault — an error, a stall, a panic
// or a process exit — when a test or the QOSRM_FAILPOINTS environment
// variable arms the point.
//
// A failpoint is armed with a spec string:
//
//	error            always return ErrInjected
//	error:0.25       return ErrInjected with probability 0.25
//	error*3          return ErrInjected for the next 3 evaluations
//	stall:10ms       sleep 10ms, then proceed
//	stall:10ms*2     sleep on the next 2 evaluations
//	panic            panic (production callers recover and convert to
//	                 an error; the chaos tests exercise that recovery)
//	exit:7           os.Exit(7) — a hard crash point for subprocess
//	                 crash tests
//	off              disarm
//
// Probability and count compose ("error:0.5*4" fires at most 4 times,
// each with probability 0.5). The environment form arms points at
// process start: QOSRM_FAILPOINTS="jobstore.append=error:0.1;server.worker=stall:5ms".
//
// The registry is process-global and safe for concurrent use; the
// armed-count fast path keeps an unarmed Eval call out of every
// profile. Production code must never depend on a failpoint being
// armed — the package exists so tests can prove the code around a
// failure is correct, not to implement behaviour.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error every armed "error" failpoint returns
// (wrapped with the point's name); tests assert on it with errors.Is
// and retry layers may classify it as transient.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind is what an armed failpoint does when it fires.
type Kind int

const (
	// Off means the point is disarmed.
	Off Kind = iota
	// Error returns ErrInjected from Eval.
	Error
	// Stall sleeps for the configured delay, then proceeds normally.
	Stall
	// Panic panics with the point's name.
	Panic
	// Exit terminates the process with the configured code.
	Exit
)

// point is one armed failpoint.
type point struct {
	kind      Kind
	delay     time.Duration
	code      int
	prob      float64 // fire probability per eligible evaluation; 0 means 1
	remaining int64   // remaining firings; <0 means unlimited
}

var (
	// armed counts currently-armed points: the Eval fast path.
	armed atomic.Int32

	mu     sync.Mutex
	points = map[string]*point{}
	hits   = map[string]*atomic.Int64{}
	rng    = rand.New(rand.NewSource(1))
)

func init() {
	if spec := os.Getenv("QOSRM_FAILPOINTS"); spec != "" {
		if err := EnableAll(spec); err != nil {
			// A malformed env spec must fail loudly: silently running
			// without the intended faults would make a chaos run look
			// like a pass.
			panic(fmt.Sprintf("faultinject: QOSRM_FAILPOINTS: %v", err))
		}
	}
}

// Enable arms the named failpoint with spec (see the package comment
// for the grammar). "off" (or an empty spec) disarms it.
func Enable(name, spec string) error {
	p, err := parse(spec)
	if err != nil {
		return fmt.Errorf("faultinject: %s: %w", name, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		armed.Add(-1)
		delete(points, name)
	}
	if p != nil {
		points[name] = p
		armed.Add(1)
	}
	return nil
}

// EnableAll arms a semicolon-separated list of name=spec pairs — the
// QOSRM_FAILPOINTS environment grammar.
func EnableAll(specs string) error {
	for _, part := range strings.Split(specs, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("faultinject: %q is not name=spec", part)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// Disable disarms the named failpoint.
func Disable(name string) { Enable(name, "off") }

// Reset disarms every failpoint and zeroes the hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
	hits = map[string]*atomic.Int64{}
}

// Hits reports how many times the named failpoint has fired since it
// was last Reset.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if h, ok := hits[name]; ok {
		return h.Load()
	}
	return 0
}

// parse compiles one spec string; a nil point means disarmed.
func parse(spec string) (*point, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	p := &point{remaining: -1}
	if base, count, ok := strings.Cut(spec, "*"); ok {
		n, err := strconv.ParseInt(count, 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", count)
		}
		p.remaining = n
		spec = base
	}
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "error":
		p.kind = Error
		if arg != "" {
			prob, err := strconv.ParseFloat(arg, 64)
			if err != nil || prob <= 0 || prob > 1 {
				return nil, fmt.Errorf("bad probability %q", arg)
			}
			p.prob = prob
		}
	case "stall":
		p.kind = Stall
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad stall duration %q", arg)
		}
		p.delay = d
	case "panic":
		p.kind = Panic
	case "exit":
		p.kind = Exit
		if arg != "" {
			code, err := strconv.Atoi(arg)
			if err != nil || code < 0 || code > 255 {
				return nil, fmt.Errorf("bad exit code %q", arg)
			}
			p.code = code
		} else {
			p.code = 1
		}
	default:
		return nil, fmt.Errorf("unknown failpoint kind %q", kind)
	}
	return p, nil
}

// Eval evaluates the named failpoint. Disarmed (the overwhelmingly
// common case) it is one atomic load and returns nil. Armed, it fires
// according to the point's kind: Error returns a wrapped ErrInjected,
// Stall sleeps and returns nil, Panic panics, Exit terminates the
// process.
func Eval(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	if p.prob > 0 && rng.Float64() >= p.prob {
		mu.Unlock()
		return nil
	}
	if p.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
	}
	h, ok := hits[name]
	if !ok {
		h = &atomic.Int64{}
		hits[name] = h
	}
	h.Add(1)
	kind, delay, code := p.kind, p.delay, p.code
	mu.Unlock()

	switch kind {
	case Stall:
		time.Sleep(delay)
		return nil
	case Panic:
		panic("faultinject: " + name)
	case Exit:
		os.Exit(code)
	}
	return fmt.Errorf("%w at %s", ErrInjected, name)
}
