package sim

import (
	"reflect"
	"testing"
	"time"

	"qosrm/internal/config"
	"qosrm/internal/rm"
)

// Tests for the capabilities the unified engine adds beyond the seed
// loops: named allocation policies, drained-core way donation, and
// queue priorities with preemption.

func TestUnknownPolicyRejected(t *testing.T) {
	d := sharedDB(t)
	if _, err := Run(d, apps(t, "mcf"), Config{RM: rm.RM3, Policy: "skynet"}); err == nil {
		t.Fatal("unknown policy must fail the run")
	}
	if _, err := RunDynamic(d, StaticWorkload(apps(t, "mcf")), Config{RM: rm.RM3, Policy: "skynet"}); err == nil {
		t.Fatal("unknown policy must fail the dynamic run")
	}
}

// TestEveryPolicyRunsConserved: all registered policies drive a full
// co-simulation, conserve the LLC associativity at every event, and
// stay deterministic.
func TestEveryPolicyRunsConserved(t *testing.T) {
	d := sharedDB(t)
	w := apps(t, "mcf", "xalancbmk")
	for _, name := range rm.PolicyNames() {
		bad := 0
		cfg := Config{RM: rm.RM3, Policy: name, Trace: func(e Event) {
			sum := 0
			for _, ways := range e.Allocations {
				sum += ways
			}
			if sum != config.TotalWays(2) {
				bad++
			}
		}}
		r, err := Run(d, w, cfg)
		if err != nil {
			t.Fatalf("policy %s: %v", name, err)
		}
		if bad > 0 {
			t.Errorf("policy %s: %d events with non-conserved ways", name, bad)
		}
		if r.RMCalled == 0 || r.EnergyJ <= 0 {
			t.Errorf("policy %s: degenerate run %+v", name, r)
		}
		cfg.Trace = nil
		again, err := Run(d, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, again) {
			t.Errorf("policy %s: run not deterministic", name)
		}
	}
}

// donationWorkload: core 0 drains quickly, core 1 keeps a
// cache-sensitive application running long after.
func donationWorkload(t *testing.T) Dynamic {
	t.Helper()
	const intervalWork = 100_000_000 * 2048
	return Dynamic{Queues: []Queue{
		{Jobs: []Job{{App: apps(t, "povray")[0], Work: 2 * intervalWork}}},
		{Jobs: []Job{{App: apps(t, "xalancbmk")[0], Work: 12 * intervalWork}}},
	}}
}

func TestDonateIdleWaysFreesDrainedCores(t *testing.T) {
	d := sharedDB(t)
	base := Config{RM: rm.RM3, Perfect: true}

	maxWays := func(cfg Config) (int, *DynamicResult) {
		most := 0
		cfg.Trace = func(e Event) {
			if e.Core == 1 && e.Allocations[1] > most {
				most = e.Allocations[1]
			}
			sum := 0
			for _, w := range e.Allocations {
				sum += w
			}
			if sum != config.TotalWays(2) {
				t.Errorf("ways not conserved: %v", e.Allocations)
			}
		}
		r, err := RunDynamic(d, donationWorkload(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return most, r
	}

	pinnedCfg := base
	donated := base
	donated.DonateIdleWays = true
	pinnedMax, pinnedRes := maxWays(pinnedCfg)
	donatedMax, donatedRes := maxWays(donated)

	// With donation, the drained core's ways become available: the
	// surviving cache-sensitive core must end up with at least as many
	// ways as under the pinned rule, and strictly exceed the pinned
	// engine's hard ceiling (total minus the drained core's held
	// minimum cannot be beaten while the drained core pins ≥ MinWays at
	// its final setting).
	if donatedMax < pinnedMax {
		t.Errorf("donation shrank the survivor's ways: %d vs pinned %d", donatedMax, pinnedMax)
	}
	if donatedMax <= pinnedMax && donatedMax < config.TotalWays(2)-config.MinWays {
		t.Errorf("donation never freed ways: max %d (pinned %d)", donatedMax, pinnedMax)
	}
	// The drain triggers an extra re-optimisation.
	if donatedRes.RMCalled <= pinnedRes.RMCalled {
		t.Errorf("drain re-optimisation missing: %d calls vs pinned %d",
			donatedRes.RMCalled, pinnedRes.RMCalled)
	}
	// More cache for the survivor must not cost application energy under
	// the oracle (uncore scales with wall clock and may differ).
	var donatedApp, pinnedApp float64
	for _, j := range donatedRes.Jobs {
		donatedApp += j.EnergyJ
	}
	for _, j := range pinnedRes.Jobs {
		pinnedApp += j.EnergyJ
	}
	if donatedApp > pinnedApp*1.001 {
		t.Errorf("donation raised app energy: %.6f vs %.6f", donatedApp, pinnedApp)
	}
}

func TestDonateIdleWaysDefaultOffIsBitIdentical(t *testing.T) {
	d := sharedDB(t)
	cfg := Config{RM: rm.RM3}
	want, err := runDynamicReference(d, donationWorkload(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDynamic(d, donationWorkload(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("donation default (off) drifted from the seed engine")
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	d := sharedDB(t)
	const work = 2 * 100_000_000 * 2048
	dyn := Dynamic{Queues: []Queue{{Jobs: []Job{
		{App: apps(t, "povray")[0], Work: work},           // slot 0, default priority
		{App: apps(t, "mcf")[0], Work: work, Priority: 5}, // slot 1, urgent
	}}}}
	r, err := RunDynamic(d, dyn, Config{RM: rm.RM3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 2 {
		t.Fatalf("%d jobs, want 2", len(r.Jobs))
	}
	if r.Jobs[0].Slot != 1 || r.Jobs[0].Bench != "mcf" {
		t.Errorf("high-priority job did not run first: %+v", r.Jobs[0])
	}
	if r.Jobs[1].StartNs != r.Jobs[0].FinishNs {
		t.Errorf("low-priority job start %v, want the high-priority finish %v",
			r.Jobs[1].StartNs, r.Jobs[0].FinishNs)
	}
}

func TestPreemptionSuspendsAndResumes(t *testing.T) {
	d := sharedDB(t)
	const intervalWork = 100_000_000 * 2048
	const arrive = 1e8
	dyn := Dynamic{Queues: []Queue{
		{Jobs: []Job{
			{App: apps(t, "povray")[0], Work: 20 * intervalWork},                             // long background job
			{App: apps(t, "mcf")[0], Work: 2 * intervalWork, ArrivalNs: arrive, Priority: 3}, // urgent mid-run arrival
		}},
		{Jobs: []Job{{App: apps(t, "xalancbmk")[0], Work: 10 * intervalWork}}},
	}}
	bad := 0
	cfg := Config{RM: rm.RM3, Trace: func(e Event) {
		sum := 0
		for _, w := range e.Allocations {
			sum += w
		}
		if sum != config.TotalWays(2) {
			bad++
		}
	}}
	r, err := RunDynamic(d, dyn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Errorf("%d events with non-conserved ways", bad)
	}
	if len(r.Jobs) != 3 {
		t.Fatalf("%d jobs, want 3", len(r.Jobs))
	}
	var urgent, background *JobResult
	for i := range r.Jobs {
		switch {
		case r.Jobs[i].Core == 0 && r.Jobs[i].Slot == 1:
			urgent = &r.Jobs[i]
		case r.Jobs[i].Core == 0 && r.Jobs[i].Slot == 0:
			background = &r.Jobs[i]
		}
	}
	if urgent == nil || background == nil {
		t.Fatalf("missing job results: %+v", r.Jobs)
	}
	if urgent.StartNs != arrive {
		t.Errorf("urgent job started %v, want its arrival %v", urgent.StartNs, arrive)
	}
	if urgent.Preemptions != 0 {
		t.Errorf("urgent job preempted %d times, want 0", urgent.Preemptions)
	}
	if background.Preemptions != 1 {
		t.Errorf("background job preempted %d times, want 1", background.Preemptions)
	}
	if background.StartNs != 0 {
		t.Errorf("background start %v, want 0 (first start, not the resume)", background.StartNs)
	}
	if background.FinishNs <= urgent.FinishNs {
		t.Errorf("preempted job finished %v, before the preemptor's %v",
			background.FinishNs, urgent.FinishNs)
	}
	if background.Departed || urgent.Departed {
		t.Error("preemption must not be recorded as departure")
	}
	// The preempted job still completed all of its work: its executed
	// intervals plus the cut partial interval cover the target.
	if background.Intervals == 0 {
		t.Error("preempted job ran no complete intervals")
	}

	// Determinism.
	cfg.Trace = nil
	again, err := RunDynamic(d, dyn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Jobs, again.Jobs) || r.EnergyJ != again.EnergyJ {
		t.Error("preempting run not deterministic")
	}
}

// TestFractionalWorkResidueTerminates is the regression test for the
// event loop's Zeno trap: a fractional Work target can leave a
// sub-instruction residue too small for the simulation clock to advance
// at large simulated times (now + rem·TPI rounds back to now), which
// spun the seed loops forever on Poisson-generated schedules. The
// clock-resolution finish guard must end such jobs instead.
func TestFractionalWorkResidueTerminates(t *testing.T) {
	d := sharedDB(t)
	// Two whole intervals plus a 3e-6-instruction residue, starting at
	// 3e10 ns where the float64 clock's ulp (≈3.8e-6 ns) swallows the
	// residue's execution time.
	const work = (2*100_000_000 + 3e-6) * 2048
	dyn := Dynamic{Queues: []Queue{{Jobs: []Job{
		{App: apps(t, "povray")[0], Work: work, ArrivalNs: 3e10},
	}}}}

	for _, cfg := range []Config{{RM: rm.Idle}, {RM: rm.RM3}} {
		done := make(chan *DynamicResult, 1)
		fail := make(chan error, 1)
		go func() {
			r, err := RunDynamic(d, dyn, cfg)
			if err != nil {
				fail <- err
				return
			}
			done <- r
		}()
		select {
		case err := <-fail:
			t.Fatal(err)
		case r := <-done:
			if len(r.Jobs) != 1 || r.Jobs[0].Departed {
				t.Fatalf("RM %v: unexpected outcome %+v", cfg.RM, r.Jobs)
			}
			if r.Jobs[0].Intervals == 0 {
				t.Errorf("RM %v: job retired no intervals", cfg.RM)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("RM %v: engine did not terminate (Zeno trap)", cfg.RM)
		}
	}

	// The frozen reference shares the guard, keeping the equivalence
	// property well-defined on every input.
	got, err := RunDynamic(d, dyn, Config{RM: rm.RM3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runDynamicReference(d, dyn, Config{RM: rm.RM3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("engine and reference disagree on the residue workload")
	}
}

// TestZeroPriorityQueueUsesLegacyOrder pins the gate: a queue whose
// priorities are all zero must execute in strict queue order even when
// arrivals are out of order — exactly the seed engine's contract.
func TestZeroPriorityQueueUsesLegacyOrder(t *testing.T) {
	d := sharedDB(t)
	const work = 2 * 100_000_000 * 2048
	dyn := Dynamic{Queues: []Queue{{Jobs: []Job{
		{App: apps(t, "povray")[0], Work: work, ArrivalNs: 5e8},
		{App: apps(t, "mcf")[0], Work: work, ArrivalNs: 0},
	}}}}
	want, err := runDynamicReference(d, dyn, Config{RM: rm.RM3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDynamic(d, dyn, Config{RM: rm.RM3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("zero-priority queue drifted from strict order")
	}
	if got.Jobs[0].Slot != 0 {
		t.Errorf("strict order violated: first completion is slot %d", got.Jobs[0].Slot)
	}
}
