package rm

import (
	"math"
	"math/rand"
	"testing"

	"qosrm/internal/config"
)

// TestWorkspaceMatchesReference checks the allocation-free workspace
// reduction against the seed implementation setting-by-setting (not
// just by total energy): iteration order and tie-breaking are
// replicated, so the chosen (core, frequency, ways) triples must be
// identical. One workspace is reused across calls and core counts to
// exercise buffer reuse.
func TestWorkspaceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ws Workspace
	out := make([]config.Setting, 8)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		curves := randomCurves(rng, n)
		total := config.TotalWays(n)
		ref, okRef := GlobalOptimizeReference(curves, total)
		ok := ws.Optimize(curves, total, out[:n])
		if ok != okRef {
			t.Fatalf("trial %d (n=%d): feasibility %v vs reference %v", trial, n, ok, okRef)
		}
		if !ok {
			continue
		}
		for i := range ref {
			if out[i] != ref[i] {
				t.Fatalf("trial %d (n=%d) core %d: workspace %v, reference %v",
					trial, n, i, out[i], ref[i])
			}
		}
	}
}

// TestGlobalOptimizeMatchesReference pins the package-level entry point
// (fresh workspace per call) to the seed implementation too.
func TestGlobalOptimizeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		curves := randomCurves(rng, n)
		total := config.TotalWays(n)
		fast, okF := GlobalOptimize(curves, total)
		ref, okR := GlobalOptimizeReference(curves, total)
		if okF != okR {
			t.Fatalf("trial %d: feasibility diverges", trial)
		}
		for i := range ref {
			if fast[i] != ref[i] {
				t.Fatalf("trial %d core %d: %v vs %v", trial, i, fast[i], ref[i])
			}
		}
	}
}

// TestWorkspaceInfeasible mirrors the reference's infeasibility
// behaviour.
func TestWorkspaceInfeasible(t *testing.T) {
	pin := &Curve{}
	for i := range pin.Energy {
		pin.Energy[i] = math.Inf(1)
	}
	pin.Energy[0] = 1 // only MinWays feasible
	pin.Pick[0] = config.Setting{Core: config.SizeM, Freq: 4, Ways: config.MinWays}
	var ws Workspace
	out := make([]config.Setting, 2)
	if ws.Optimize([]*Curve{pin, pin}, 16, out) {
		t.Fatal("two cores pinned to 2 ways cannot absorb 16")
	}
	if ws.Optimize(nil, 16, nil) {
		t.Fatal("empty input must be infeasible")
	}
}

// TestCurveCacheMemoizes checks the memoization contract: one compute
// per key, shared pointer on hits.
func TestCurveCacheMemoizes(t *testing.T) {
	var cc CurveCache
	calls := 0
	compute := func() Curve {
		calls++
		cv := Curve{}
		cv.Energy[0] = float64(calls)
		return cv
	}
	a := cc.Get("k1", compute)
	b := cc.Get("k1", compute)
	if calls != 1 || a != b {
		t.Fatalf("want one compute and a shared curve, got %d computes", calls)
	}
	c := cc.Get("k2", compute)
	if calls != 2 || c == a {
		t.Fatal("distinct keys must compute distinct curves")
	}
	if cc.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", cc.Len())
	}
}

// BenchmarkGlobalOptimizeWorkspace8 measures the allocation-free path
// against BenchmarkGlobalOptimize8 (the fresh-allocation entry point).
func BenchmarkGlobalOptimizeWorkspace8(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	curves := randomCurves(rng, 8)
	var ws Workspace
	out := make([]config.Setting, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ws.Optimize(curves, config.TotalWays(8), out) {
			b.Fatal("infeasible")
		}
	}
}
