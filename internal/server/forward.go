package server

import (
	"context"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"qosrm/internal/api"
	"qosrm/internal/client"
	"qosrm/internal/cluster"
	"qosrm/internal/scenario"
)

// Cluster forwarding: a node whose queue is full hands the batch to the
// least-loaded live member of its gossip rotation instead of shedding
// it. The member admits the job exactly as a direct submit would —
// journaled before the 202, deduplicated by the caller's
// Idempotency-Key, which travels verbatim — and this node answers the
// caller with the member's job handle, the admitting node recorded in
// JobStatus.Origin. The job's crash-safety story belongs entirely to
// the origin node's journal; the forwarding node never half-owns it.
//
// Loop safety is trail-based: the X-Qosrm-Forward-Trail header names
// every node the batch has visited, each hop appends itself, and rank
// excludes trail members — so a forward chain of up to ForwardHops hops
// terminates in any topology without revisiting a node. The trail is
// node IDs, not addresses; for seeds gossip has not resolved yet, the
// /healthz probe's Node field supplies the ID, so the exclusion holds
// from the very first forward.

// peerHealthTTL is how long one /healthz poll of a peer stays fresh:
// long enough that a saturating submit storm does not multiply into a
// healthz storm on the peers, short enough that load ranking tracks a
// draining queue.
const peerHealthTTL = 200 * time.Millisecond

// probeTimeout bounds one concurrent health probe inside rank: a dead
// peer costs at most this slice of the forward budget, and the live
// peers' probes run alongside it rather than behind it. Variable so
// tests can shrink it.
var probeTimeout = time.Second

// peerHealth is the single-flight cached health of one peer address.
type peerHealth struct {
	polled   time.Time
	h        *api.Health
	err      error
	inflight chan struct{} // non-nil while one refresh is on the wire
}

// forwarder owns the cluster-facing HTTP machinery: one cached client
// per peer address — shared by health probes, gossip exchanges,
// forwards and origin polls, so connections are reused and the failure
// detector's view applies everywhere — plus the single-flight health
// cache rank reads.
type forwarder struct {
	s     *Server
	httpc *http.Client

	mu      sync.Mutex
	clients map[string]*client.Client
	health  map[string]*peerHealth
}

func newForwarder(s *Server) *forwarder {
	httpc := &http.Client{Timeout: 30 * time.Second}
	if s.opts.transport != nil {
		httpc.Transport = s.opts.transport
	}
	return &forwarder{
		s:       s,
		httpc:   httpc,
		clients: make(map[string]*client.Client),
		health:  make(map[string]*peerHealth),
	}
}

// client returns the cached client for base. Cluster-internal clients
// do not retry: the cluster-level fallback — try the next peer, then
// answer 503 — is the retry policy, and stacking per-peer backoff under
// it would stall the submit path.
func (f *forwarder) client(base string) *client.Client {
	base = strings.TrimRight(base, "/")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.clients[base]
	if !ok {
		c = client.New(base)
		c.MaxRetries = -1
		c.HTTPClient = f.httpc
		f.clients[base] = c
	}
	return c
}

// sweep drops cached clients and health entries for addresses no longer
// tracked by the membership, so a long-lived node does not accumulate
// state for every peer that ever existed. Called from the GC loop.
func (f *forwarder) sweep() {
	keep := make(map[string]bool)
	for _, t := range f.s.cluster.ProbeTargets() {
		keep[t] = true
	}
	for _, m := range f.s.cluster.Rotation() {
		keep[strings.TrimRight(m.Addr, "/")] = true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for base := range f.clients {
		if !keep[base] {
			delete(f.clients, base)
		}
	}
	for base, e := range f.health {
		if !keep[base] && e.inflight == nil {
			delete(f.health, base)
		}
	}
}

// load returns base's health, polling at most once per peerHealthTTL
// across all concurrent callers. The poll runs with no lock held and is
// single-flighted: one stalled peer never blocks submits ranking the
// others, concurrent rankers share one probe instead of stacking
// probes, and a dead peer costs one timed-out probe per TTL, not one
// per rejected submit. A successful poll also resolves the peer's node
// ID into the membership (seed addresses become real members before the
// first gossip round completes).
func (f *forwarder) load(ctx context.Context, base string) (*api.Health, error) {
	base = strings.TrimRight(base, "/")
	f.mu.Lock()
	e, ok := f.health[base]
	if !ok {
		e = &peerHealth{}
		f.health[base] = e
	}
	for {
		if f.s.now().Sub(e.polled) < peerHealthTTL && (e.h != nil || e.err != nil) {
			h, err := e.h, e.err
			f.mu.Unlock()
			return h, err
		}
		if e.inflight == nil {
			break
		}
		// Another caller's probe is on the wire: wait for it rather
		// than stacking a second probe on the same peer.
		done := e.inflight
		f.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		f.mu.Lock()
	}
	done := make(chan struct{})
	e.inflight = done
	f.mu.Unlock()

	t0 := time.Now()
	h, err := f.client(base).Health(ctx)
	f.s.metrics.peerProbe.Observe(time.Since(t0))
	if err == nil && h != nil && h.Node != "" {
		f.s.cluster.Resolve(base, h.Node)
	}
	f.mu.Lock()
	e.h, e.err, e.polled = h, err, f.s.now()
	e.inflight = nil
	f.mu.Unlock()
	close(done)
	return h, err
}

// rankedPeer is one forward candidate after ranking.
type rankedPeer struct {
	base    string
	load    float64
	suspect bool
}

// rank returns the forwardable peers ordered by queue occupancy, least
// loaded first, suspect members after all alive ones. Candidates come
// from the gossip rotation, so dead peers are gone before a probe is
// ever spent on them; the remaining probes run concurrently, each
// bounded by probeTimeout. Members whose node ID appears in exclude
// (the forward trail plus this node) are dropped — the loop protection
// — as are peers whose probe failed. Peers reporting a full queue stay
// ranked last rather than dropped: their view is up to peerHealthTTL
// stale, and the forward attempt itself is the authoritative admission
// check.
func (f *forwarder) rank(ctx context.Context, exclude map[string]bool) []rankedPeer {
	members := f.s.cluster.Rotation()
	type slot struct {
		rankedPeer
		ok bool
	}
	slots := make([]slot, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if exclude[m.ID] && m.ID != "" {
			continue
		}
		wg.Add(1)
		go func(i int, m cluster.Member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, probeTimeout)
			defer cancel()
			h, err := f.load(pctx, m.Addr)
			if err != nil || h == nil {
				return
			}
			// The probe may resolve an identity gossip has not
			// delivered yet: apply the trail (and self) exclusion to it.
			if h.Node != "" && (exclude[h.Node] || h.Node == f.s.cluster.ID()) {
				return
			}
			occ := 1.0
			if h.QueueDepth > 0 {
				occ = float64(h.Queued) / float64(h.QueueDepth)
			}
			slots[i] = slot{rankedPeer{
				base:    strings.TrimRight(m.Addr, "/"),
				load:    occ,
				suspect: m.State == cluster.StateSuspect,
			}, true}
		}(i, m)
	}
	wg.Wait()
	var live []rankedPeer
	for _, r := range slots {
		if r.ok {
			live = append(live, r.rankedPeer)
		}
	}
	sort.SliceStable(live, func(a, b int) bool {
		if live[a].suspect != live[b].suspect {
			return !live[a].suspect
		}
		return live[a].load < live[b].load
	})
	return live
}

// forwardedRef remembers a batch this node forwarded under an
// idempotency key: origin node, job id, and the acceptance-time status
// snapshot served if the origin is briefly unreachable. Entries age out
// with the job TTL, like the local key map.
type forwardedRef struct {
	origin string
	id     string
	at     time.Time
	status JobStatus
}

// tryForward pushes an overflow batch to the least-loaded live peer not
// yet on its trail. It returns (status, true) on success — Origin
// filled in, the key remembered for dedupe — and (nil, false) when no
// peer could take the batch, in which case the caller answers the
// honest queue_full 503.
func (s *Server) tryForward(ctx context.Context, specs []scenario.Spec, key string, trail []string) (*JobStatus, bool) {
	if s.opts.ForwardHops <= 0 || len(trail) >= s.opts.ForwardHops {
		return nil, false
	}
	if len(s.cluster.Rotation()) == 0 {
		return nil, false // standalone
	}
	ctx, cancel := context.WithTimeout(ctx, s.opts.ForwardTimeout)
	defer cancel()
	next := append(append(make([]string, 0, len(trail)+1), trail...), s.cluster.ID())
	exclude := make(map[string]bool, len(next))
	for _, id := range next {
		exclude[id] = true
	}
	for _, p := range s.forwarder.rank(ctx, exclude) {
		t0 := time.Now()
		st, err := s.forwarder.client(p.base).ForwardSweep(ctx, specs, key, next)
		s.metrics.forwardRTT.Observe(time.Since(t0))
		if err != nil {
			continue
		}
		// A multi-hop forward already carries the deeper origin; a
		// direct admission on the peer is stamped with the peer itself.
		if st.Origin == "" {
			st.Origin = p.base
		}
		s.metrics.jobsForwarded.Add(1)
		if key != "" {
			s.mu.Lock()
			s.forwardedKeys[key] = &forwardedRef{origin: st.Origin, id: st.ID, at: s.now(), status: *st}
			s.mu.Unlock()
		}
		return st, true
	}
	s.metrics.forwardFailed.Add(1)
	return nil, false
}

// forwardedByKey resolves a previously-forwarded idempotency key to the
// job's current status on its origin node; ok is false when the key was
// never forwarded. When the origin is unreachable the acceptance-time
// snapshot is served instead — the handle (id + origin) is what the
// caller needs to keep polling, and it is immutable.
func (s *Server) forwardedByKey(ctx context.Context, key string) (*JobStatus, bool) {
	if key == "" {
		return nil, false
	}
	s.mu.Lock()
	ref := s.forwardedKeys[key]
	s.mu.Unlock()
	if ref == nil {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, s.opts.ForwardTimeout)
	defer cancel()
	if st, err := s.forwarder.client(ref.origin).Job(ctx, ref.id); err == nil {
		st.Origin = ref.origin
		return st, true
	}
	st := ref.status
	return &st, true
}
