// Package energymodel implements the online energy model of Section
// III-D (Eq. 4–5): the energy the RM expects the next interval to consume
// at a candidate setting, built from the sampled core power, the
// predicted execution time and the ATD miss-difference estimate.
//
// Like the performance model it only consumes observable quantities —
// per-size offline power tables (static power, dynamic energy scaling)
// and the past interval's counters — never the simulator's ground truth.
package energymodel

import (
	"qosrm/internal/config"
	"qosrm/internal/perfmodel"
	"qosrm/internal/power"
)

// EnergyPI predicts the energy per instruction (joules) of running the
// next interval at target, using performance model k for the execution
// time term.
//
// Eq. 4's dynamic term P*_CoreDyn(c) · V(f)²/V*² · T reduces, for an
// activity-based dynamic power, to a per-instruction dynamic energy
// epi(c)·(V(f)/V₀)² — the sampled dynamic power scaled by voltage, freed
// of the time factor. The static term is the offline table entry for
// (c, f) times the predicted time. The memory term is Eq. 5: the measured
// access count plus the ATD miss difference between the target and the
// current allocation.
func EnergyPI(st *perfmodel.IntervalStats, k perfmodel.Kind, target config.Setting) float64 {
	fGHz := target.FGHz()
	v := config.Voltage(fGHz)
	dyn := power.EPIDynJ(target.Core, v)
	tNs := st.TimePI(k, target)
	static := power.StaticPowerW(target.Core, fGHz) * tNs * 1e-9
	return dyn + static + MemEnergyPI(st, target.Ways)
}

// MemEnergyPI is Eq. 5 per instruction: (MA + DM(w)) × e_mem, where DM
// is the ATD-estimated difference in misses between the target and the
// current allocation. The estimate may be negative (target allocation
// larger than current); the total is floored at zero since negative
// memory energy is meaningless.
func MemEnergyPI(st *perfmodel.IntervalStats, targetWays int) float64 {
	cur := st.MissPI[clamp(st.Setting.Ways)-config.MinWays]
	tgt := st.MissPI[clamp(targetWays)-config.MinWays]
	acc := st.MemAccPI + (tgt - cur)
	if acc < 0 {
		acc = 0
	}
	return acc * power.EMemAccessJ
}

func clamp(w int) int {
	if w < config.MinWays {
		return config.MinWays
	}
	if w > config.MaxWays {
		return config.MaxWays
	}
	return w
}
