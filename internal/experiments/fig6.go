package experiments

import (
	"fmt"
	"io"

	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/stats"
	"qosrm/internal/workload"
)

// Fig6Row is one workload bar group of Figure 6.
type Fig6Row struct {
	Name     string
	Cores    int
	Scenario workload.Scenario
	Apps     string
	// Savings and sim-level violation rates per manager (RM1, RM2, RM3),
	// with the online Model3 and all overheads, as in the paper's main
	// evaluation.
	Savings    [3]float64
	Violations [3]float64
}

// Fig6Result aggregates the main energy-savings evaluation.
type Fig6Result struct {
	Rows []Fig6Row
	// ScenarioAvg[scenario][rm] averages savings over the scenario's
	// workloads (both core counts).
	ScenarioAvg map[workload.Scenario][3]float64
	// WeightedAvg applies the Figure 1 scenario probabilities
	// (47/22.1/22.1/8.8%), as the paper's average does.
	WeightedAvg [3]float64
	// PlainAvg is the unweighted mean.
	PlainAvg [3]float64
	// Max is the best saving observed per manager.
	Max [3]float64
}

// Fig6 runs the main evaluation: PerScenario workloads per scenario for
// 4- and 8-core systems, each under RM1, RM2 and RM3 with the proposed
// Model3 and all overheads enabled.
func (c *Context) Fig6() (*Fig6Result, error) {
	return c.fig6Workloads([]int{4, 8})
}

// Fig6Sizes is Fig6 restricted to the given core counts (used by
// benchmarks and tests to bound run time).
func (c *Context) Fig6Sizes(sizes []int) (*Fig6Result, error) {
	return c.fig6Workloads(sizes)
}

func (c *Context) fig6Workloads(sizes []int) (*Fig6Result, error) {
	var rows []Fig6Row
	var wls []workload.Workload
	for _, cores := range sizes {
		for _, s := range workload.Scenarios {
			ws, err := workload.Generate(s, cores, c.PerScenario, c.Seed)
			if err != nil {
				return nil, err
			}
			for _, wl := range ws {
				rows = append(rows, Fig6Row{
					Name: wl.Name, Cores: cores, Scenario: s, Apps: appNames(wl.Apps),
				})
				wls = append(wls, wl)
			}
		}
	}
	// outs must be fully allocated before job pointers into it are taken.
	outs := make([][3]runOut, len(wls))
	var jobs []runJob
	for oi, wl := range wls {
		for k := range rm.Kinds {
			jobs = append(jobs, runJob{
				apps: wl.Apps,
				cfg:  c.simConfig(rm.Kinds[k], perfmodel.Model3, false, false),
				out:  &outs[oi][k],
			})
		}
	}
	if err := c.runAll(jobs); err != nil {
		return nil, err
	}
	res := &Fig6Result{Rows: rows, ScenarioAvg: make(map[workload.Scenario][3]float64)}
	counts := make(map[workload.Scenario]int)
	for i := range rows {
		for k := range rm.Kinds {
			rows[i].Savings[k] = outs[i][k].Saving
			rows[i].Violations[k] = outs[i][k].Violation
			if rows[i].Savings[k] > res.Max[k] {
				res.Max[k] = rows[i].Savings[k]
			}
		}
		agg := res.ScenarioAvg[rows[i].Scenario]
		for k := range agg {
			agg[k] += rows[i].Savings[k]
		}
		res.ScenarioAvg[rows[i].Scenario] = agg
		counts[rows[i].Scenario]++
	}
	weights := scenarioWeights()
	for s, agg := range res.ScenarioAvg {
		n := float64(counts[s])
		for k := range agg {
			agg[k] /= n
		}
		res.ScenarioAvg[s] = agg
		for k := range agg {
			res.WeightedAvg[k] += weights[s] * agg[k]
			res.PlainAvg[k] += agg[k] / float64(len(res.ScenarioAvg))
		}
	}
	return res, nil
}

// RenderFig6 prints the per-workload bars and the averages.
func RenderFig6(w io.Writer, r *Fig6Result) {
	fmt.Fprintln(w, "FIGURE 6: energy savings with RM1/RM2/RM3 (Model3, overheads on)")
	lastScenario := workload.Scenario(0)
	for _, row := range r.Rows {
		if row.Scenario != lastScenario {
			fmt.Fprintf(w, "-- Scenario %s --\n", row.Scenario)
			lastScenario = row.Scenario
		}
		fmt.Fprintf(w, "%-14s [%s]\n", row.Name, row.Apps)
		for k, kind := range rm.Kinds {
			fmt.Fprintf(w, "   %-4s %6.2f%% |%s| viol %.3f\n",
				kind, row.Savings[k]*100, stats.Bar(row.Savings[k]/0.30, 36), row.Violations[k])
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Scenario averages:")
	for _, s := range workload.Scenarios {
		a := r.ScenarioAvg[s]
		fmt.Fprintf(w, "  %s: RM1 %6.2f%%  RM2 %6.2f%%  RM3 %6.2f%%\n",
			s, a[0]*100, a[1]*100, a[2]*100)
	}
	fmt.Fprintf(w, "Weighted average (Fig. 1 scenario probabilities): RM1 %.2f%%  RM2 %.2f%%  RM3 %.2f%%\n",
		r.WeightedAvg[0]*100, r.WeightedAvg[1]*100, r.WeightedAvg[2]*100)
	fmt.Fprintf(w, "Plain average: RM1 %.2f%%  RM2 %.2f%%  RM3 %.2f%%\n",
		r.PlainAvg[0]*100, r.PlainAvg[1]*100, r.PlainAvg[2]*100)
	fmt.Fprintf(w, "Maximum: RM1 %.2f%%  RM2 %.2f%%  RM3 %.2f%%  (paper: RM3 up to ~18%%, ~10%% weighted avg)\n",
		r.Max[0]*100, r.Max[1]*100, r.Max[2]*100)
}
