package server

import (
	"encoding/json"
	"net/http"
	"strings"

	"qosrm/internal/api"
	"qosrm/internal/obs"
)

// eventBatch is how many ring events one Read drains before flushing —
// large enough to amortise flushes under a fast producer, small enough
// that a live dashboard sees frames promptly.
const eventBatch = 32

// handleJobEvents streams a job's interval-boundary events. The default
// framing is NDJSON (one api.JobEvent per line); an Accept header
// naming text/event-stream switches to SSE ("data: <json>\n\n" frames).
// The stream replays the buffered tail of the job's ring — for a small
// sweep that is every event — then follows live publishes until a
// terminal frame ("done", "failed" or "expired") ends it, the client
// disconnects, or the server shuts down. A subscriber slower than the
// engine loses the oldest events, never slows the simulation: the
// frames' cumulative dropped field says exactly how many.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setLogJob(r.Context(), id)
	j := s.jobByID(id)
	if j == nil {
		s.fail(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var cur obs.Cursor
	buf := make([]obs.Event, eventBatch)
	var frame api.JobEvent
	for {
		n, term, wait := j.events.Read(&cur, buf)
		for i := range n {
			e := &buf[i]
			frame = api.JobEvent{
				Type:        api.JobEventInterval,
				Seq:         cur.Seq() - uint64(n-i),
				Dropped:     cur.Dropped,
				Spec:        e.Spec,
				Name:        e.Name,
				TimeNs:      e.TimeNs,
				Core:        e.Core,
				Bench:       e.Bench,
				Interval:    e.Interval,
				Phase:       e.Phase,
				Freq:        e.Freq,
				Ways:        e.Ways,
				Allocations: e.Allocations,
			}
			if !writeFrame(w, sse, &frame) {
				return
			}
		}
		if n > 0 {
			fl.Flush()
			continue
		}
		if term != nil {
			frame = api.JobEvent{Type: term.Kind, Seq: cur.Seq(), Dropped: cur.Dropped, Error: term.Err}
			writeFrame(w, sse, &frame)
			fl.Flush()
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			// Client went away mid-stream; nothing more to send. (The
			// sync handlers' 499 path needs a status — here one was
			// already written, so the stream just ends.)
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// writeFrame writes one stream frame in the negotiated framing,
// reporting false once the connection is gone.
func writeFrame(w http.ResponseWriter, sse bool, fr *api.JobEvent) bool {
	b, err := json.Marshal(fr)
	if err != nil {
		return false
	}
	if sse {
		if _, err := w.Write([]byte("data: ")); err != nil {
			return false
		}
	}
	if _, err := w.Write(b); err != nil {
		return false
	}
	suffix := "\n"
	if sse {
		suffix = "\n\n"
	}
	_, err = w.Write([]byte(suffix))
	return err == nil
}
