// The allocation-policy layer: the co-simulator's global allocation
// decision — per-core energy curves in, per-core (core size, frequency,
// ways) settings out — behind one interface, so the engine is policy-
// agnostic and new optimizers (priority-aware schemes, game-theoretic
// equilibrium solvers) drop in without touching the event loop.
//
// Three named policies ship with the reproduction:
//
//   - "model3": the paper's optimal pairwise curve reduction
//     (GlobalOptimize / Workspace.Optimize) — the default everywhere;
//   - "greedy": the marginal-utility heuristic (GreedyGlobalOptimize),
//     cheaper but optimal only for convex curves;
//   - "brute": exhaustive enumeration (BruteForceGlobalOptimize), the
//     exponential correctness reference for small core counts.
package rm

import (
	"fmt"
	"math"
	"strings"

	"qosrm/internal/config"
)

// Policy is one pluggable global allocation decision. Allocate
// distributes totalWays across the cores' energy curves and writes the
// chosen setting per core into out (len(out) ≥ len(curves)); it returns
// false when no feasible distribution exists, in which case out is
// unspecified and the caller keeps the previous settings.
//
// A Policy instance may carry reusable scratch state (the model3 policy
// holds the reduction-tree arena); instances are not safe for concurrent
// use — create one per engine workspace via NewPolicy.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Allocate picks the way distribution and per-core settings.
	Allocate(curves []*Curve, totalWays int, out []config.Setting) bool
}

// The named policies of the registry.
const (
	PolicyModel3 = "model3"
	PolicyGreedy = "greedy"
	PolicyBrute  = "brute"
)

// PolicyNames lists the registered allocation policies, default first.
func PolicyNames() []string {
	return []string{PolicyModel3, PolicyGreedy, PolicyBrute}
}

// NewPolicy returns a fresh instance of the named policy; the empty name
// selects the default ("model3", the paper's optimal reduction).
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", PolicyModel3:
		return &optimalPolicy{}, nil
	case PolicyGreedy:
		return &greedyPolicy{}, nil
	case PolicyBrute:
		return &brutePolicy{}, nil
	}
	return nil, fmt.Errorf("rm: unknown allocation policy %q (have %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// optimalPolicy is the paper's optimal pairwise curve reduction behind
// the Policy interface, reusing one Workspace arena across invocations —
// the same allocation-free path the co-simulator ran before the policy
// layer existed (bit-identical, pinned by TestPoliciesMatchDirectCalls).
type optimalPolicy struct {
	ws Workspace
}

func (p *optimalPolicy) Name() string { return PolicyModel3 }

func (p *optimalPolicy) Allocate(curves []*Curve, totalWays int, out []config.Setting) bool {
	return p.ws.Optimize(curves, totalWays, out)
}

// greedyPolicy is the marginal-utility heuristic behind the Policy
// interface, reusing its per-core allocation buffer across invocations.
type greedyPolicy struct {
	alloc []int
}

func (p *greedyPolicy) Name() string { return PolicyGreedy }

func (p *greedyPolicy) Allocate(curves []*Curve, totalWays int, out []config.Setting) bool {
	n := len(curves)
	if n == 0 {
		return false
	}
	if cap(p.alloc) < n {
		p.alloc = make([]int, n)
	}
	return greedyAllocate(curves, totalWays, p.alloc[:n], out)
}

// brutePolicy is the exhaustive enumeration behind the Policy interface.
// It is exponential in the core count and exists as the optimality
// reference of policy-comparison sweeps; keep core counts small.
type brutePolicy struct{}

func (p *brutePolicy) Name() string { return PolicyBrute }

func (p *brutePolicy) Allocate(curves []*Curve, totalWays int, out []config.Setting) bool {
	settings, ok := BruteForceGlobalOptimize(curves, totalWays)
	if !ok {
		return false
	}
	copy(out, settings)
	return true
}

// PolicyEnergy evaluates a policy's decision quality on one curve set:
// the total predicted energy of its allocation, +Inf when infeasible.
// Policy-comparison reports use it to quantify the optimality gap the
// cheaper heuristics leave against "brute".
func PolicyEnergy(p Policy, curves []*Curve, totalWays int) float64 {
	out := make([]config.Setting, len(curves))
	if !p.Allocate(curves, totalWays, out) {
		return math.Inf(1)
	}
	return TotalEnergy(curves, out)
}
