package perfbench

import "testing"

// TestLoadComparisonClusterShedsLess pins the property the committed
// BENCH reports rely on: at the same saturating open-loop load, the
// two-node cluster rejects strictly less than the standalone node,
// because the overflow lands on the peer instead of being shed.
func TestLoadComparisonClusterShedsLess(t *testing.T) {
	if testing.Short() {
		t.Skip("load comparison attacks in real time")
	}
	load, err := RunLoad(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(load) != 2 {
		t.Fatalf("topologies measured: %d, want 2", len(load))
	}
	single, cluster := load[0], load[1]
	if single.Rejected == 0 {
		t.Fatalf("single node not saturated (nothing rejected): %+v", single)
	}
	if cluster.Forwarded == 0 {
		t.Fatalf("cluster absorbed no overflow via forwarding: %+v", cluster)
	}
	if cluster.RejectRate >= single.RejectRate {
		t.Fatalf("cluster reject rate %.3f not below single-node %.3f",
			cluster.RejectRate, single.RejectRate)
	}
}
