package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"qosrm/internal/rm"
)

func TestValidateSpecsRejectsDuplicateNames(t *testing.T) {
	specs := []Spec{testSpec("a"), testSpec("b")}
	if err := ValidateSpecs(specs); err != nil {
		t.Fatalf("distinct names rejected: %v", err)
	}
	specs[1].Name = "a"
	err := ValidateSpecs(specs)
	if err == nil || !strings.Contains(err.Error(), `"a"`) {
		t.Fatalf("duplicate names not rejected: %v", err)
	}
}

func TestValidateRejectsShadowingSteps(t *testing.T) {
	core0, core1 := 0, 1
	base := testSpec("steps")
	cases := []struct {
		name  string
		steps []StepSpec
		ok    bool
	}{
		{"same-core-same-time", []StepSpec{
			{AtNs: 1e8, Core: &core0, Alpha: 1.1},
			{AtNs: 1e8, Core: &core0, Alpha: 1.2},
		}, false},
		{"global-shadows-targeted", []StepSpec{
			{AtNs: 1e8, Alpha: 1.1},
			{AtNs: 1e8, Core: &core1, Alpha: 1.2},
		}, false},
		{"two-globals", []StepSpec{
			{AtNs: 1e8, Alpha: 1.1},
			{AtNs: 1e8, Alpha: 1.2},
		}, false},
		{"distinct-cores-same-time", []StepSpec{
			{AtNs: 1e8, Core: &core0, Alpha: 1.1},
			{AtNs: 1e8, Core: &core1, Alpha: 1.2},
		}, true},
		{"same-core-distinct-times", []StepSpec{
			{AtNs: 1e8, Core: &core0, Alpha: 1.1},
			{AtNs: 2e8, Core: &core0, Alpha: 1.2},
		}, true},
	}
	for _, tc := range cases {
		s := base
		s.Steps = tc.steps
		err := s.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: valid steps rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: shadowing steps accepted", tc.name)
		}
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	mut := []func(*Spec){
		func(s *Spec) { s.Alpha = math.NaN() },
		func(s *Spec) { s.Cores[0].Jobs[0].Work = math.Inf(1) },
		func(s *Spec) { s.Cores[0].Jobs[0].ArrivalNs = math.NaN() },
		func(s *Spec) { s.Cores[0].Jobs[1].DepartNs = math.Inf(1) },
		func(s *Spec) { s.Steps[0].AtNs = math.Inf(1) },
		func(s *Spec) { s.Steps[0].Alpha = math.NaN() },
	}
	for i, m := range mut {
		s := testSpec("nf")
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: non-finite value accepted", i)
		}
	}
}

func TestValidatePolicyNames(t *testing.T) {
	s := testSpec("pol")
	for _, p := range rm.PolicyNames() {
		s.Policy = p
		if err := s.Validate(); err != nil {
			t.Errorf("policy %q rejected: %v", p, err)
		}
	}
	s.Policy = "alpha-beta"
	if err := s.Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicySweepExpands(t *testing.T) {
	specs, err := PolicySweep([]Spec{testSpec("x"), testSpec("y")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * len(rm.PolicyNames())
	if len(specs) != want {
		t.Fatalf("%d specs, want %d", len(specs), want)
	}
	if err := ValidateSpecs(specs); err != nil {
		t.Fatalf("sweep output invalid: %v", err)
	}
	if specs[0].Name != "x+model3" || specs[0].Policy != rm.PolicyModel3 {
		t.Errorf("first clone mislabelled: %+v", specs[0].Name)
	}
	if _, err := PolicySweep([]Spec{testSpec("x")}, []string{"nope"}); err == nil {
		t.Error("unknown policy accepted by sweep")
	}
}

// TestPolicySpecsRunEndToEnd: a policy-comparison sweep over one
// workload runs through the scenario engine, every report labelled with
// its policy, and the cheap heuristics produce valid (if possibly
// worse) savings.
func TestPolicySpecsRunEndToEnd(t *testing.T) {
	d := sharedDB(t)
	specs, err := PolicySweep([]Spec{testSpec("shootout")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Sweep(d, specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]*Report{}
	for _, r := range reports {
		byPolicy[r.Policy] = r
	}
	for _, p := range rm.PolicyNames() {
		r := byPolicy[p]
		if r == nil {
			t.Fatalf("no report for policy %q", p)
		}
		if r.EnergyJ <= 0 || r.RMCalled == 0 {
			t.Errorf("policy %q: degenerate report %+v", p, r)
		}
	}
	// Identical idle twins: the baseline energy must agree across the
	// sweep (policies only change the managed run).
	if a, b := byPolicy[rm.PolicyModel3].IdleEnergyJ, byPolicy[rm.PolicyGreedy].IdleEnergyJ; a != b {
		t.Errorf("idle twins diverge across policies: %v vs %v", a, b)
	}
}

// TestSpecRoundTripNewFields pins the on-disk format of the PR 5
// additions: policy, donate_idle_ways and per-job priority survive a
// marshal/parse cycle.
func TestSpecRoundTripNewFields(t *testing.T) {
	s := testSpec("rt-new")
	s.Policy = rm.PolicyGreedy
	s.DonateIdleWays = true
	s.Cores[0].Jobs[0].Priority = -2
	s.Cores[1].Jobs[1].Priority = 7
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Policy != s.Policy || !back[0].DonateIdleWays ||
		back[0].Cores[0].Jobs[0].Priority != -2 || back[0].Cores[1].Jobs[1].Priority != 7 {
		t.Errorf("round trip dropped new fields: %+v", back[0])
	}
	dyn, cfg, err := back[0].Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != rm.PolicyGreedy || !cfg.DonateIdleWays {
		t.Errorf("compile dropped policy/donation: %+v", cfg)
	}
	if dyn.Queues[0].Jobs[0].Priority != -2 {
		t.Errorf("compile dropped priority: %+v", dyn.Queues[0].Jobs[0])
	}
}
