// Package scenario is the declarative layer over the dynamic
// co-simulator: a JSON-loadable scenario specification — per-core
// application queues with arrivals, departures and per-app QoS
// relaxations, plus mid-run QoS-target step changes — and a batch runner
// that sweeps many scenarios in parallel over one shared database.
//
// The spec generalises the paper's evaluation beyond its static
// one-application-per-core mixes: any core count, any queue depth, any
// churn pattern expressible as arrival/departure times. A Spec compiles
// to a sim.Dynamic; Run executes it together with an idle-manager twin
// so every report carries the energy saving the paper's figures are
// built from.
package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/sim"
	"qosrm/internal/workload"
)

// JobSpec is one queued application of a core's schedule.
type JobSpec struct {
	// App names a suite application (e.g. "mcf").
	App string `json:"app"`
	// Alpha is the per-app QoS relaxation; 0 inherits the core's base
	// relaxation (the spec's Alpha, or the latest QoS step's value).
	Alpha float64 `json:"alpha,omitempty"`
	// ArrivalNs is the earliest start time; the job also waits for its
	// queue predecessors.
	ArrivalNs float64 `json:"arrival_ns,omitempty"`
	// Work is the instruction budget at paper scale; 0 means the
	// default target (the suite's longest application).
	Work float64 `json:"work,omitempty"`
	// DepartNs forces the job off the core at this time; 0 disables.
	DepartNs float64 `json:"depart_ns,omitempty"`
	// Priority orders jobs within the queue (higher first; an arriving
	// strictly-higher-priority job preempts the running one). All-zero
	// priorities keep strict queue order.
	Priority int `json:"priority,omitempty"`
}

// CoreSpec is one core's job queue.
type CoreSpec struct {
	Jobs []JobSpec `json:"jobs"`
}

// StepSpec is one mid-run QoS-target change.
type StepSpec struct {
	AtNs float64 `json:"at_ns"`
	// Core targets one core; omitted (null) applies to every core.
	Core  *int    `json:"core,omitempty"`
	Alpha float64 `json:"alpha"`
}

// Spec is one complete scenario: the workload shape plus the manager
// configuration to simulate it under.
type Spec struct {
	Name string `json:"name"`
	// RM selects the manager: "Idle", "RM1", "RM2" or "RM3" (default).
	RM string `json:"rm,omitempty"`
	// Model selects the online performance model: "Model1".."Model3"
	// (default "Model3"); ignored when Perfect is set.
	Model   string `json:"model,omitempty"`
	Perfect bool   `json:"perfect,omitempty"`
	// Policy selects the global allocation policy: "model3" (default,
	// the paper's optimal reduction), "greedy" or "brute".
	Policy string `json:"policy,omitempty"`
	// DonateIdleWays lets drained cores donate their LLC ways back to
	// the optimisation instead of pinning them at the final setting.
	DonateIdleWays bool `json:"donate_idle_ways,omitempty"`
	// Alpha is the base QoS relaxation (default 1, as in the paper).
	Alpha float64 `json:"alpha,omitempty"`
	// Scale divides all instruction counts (default 2048; 1 is paper
	// scale). Interval is the RM granularity in instructions.
	Scale            int64 `json:"scale,omitempty"`
	Interval         int64 `json:"interval,omitempty"`
	DisableOverheads bool  `json:"disable_overheads,omitempty"`

	Cores []CoreSpec `json:"cores"`
	Steps []StepSpec `json:"qos_steps,omitempty"`
}

// ParseRM resolves a manager name ("Idle", "RM1".."RM3"; empty defaults
// to RM3).
func ParseRM(s string) (rm.Kind, error) {
	switch s {
	case "":
		return rm.RM3, nil
	case "Idle":
		return rm.Idle, nil
	case "RM1":
		return rm.RM1, nil
	case "RM2":
		return rm.RM2, nil
	case "RM3":
		return rm.RM3, nil
	}
	return 0, fmt.Errorf("scenario: unknown resource manager %q", s)
}

// ParseModel resolves a performance-model name ("Model1".."Model3";
// empty defaults to Model3).
func ParseModel(s string) (perfmodel.Kind, error) {
	switch s {
	case "", "Model3":
		return perfmodel.Model3, nil
	case "Model1":
		return perfmodel.Model1, nil
	case "Model2":
		return perfmodel.Model2, nil
	}
	return 0, fmt.Errorf("scenario: unknown performance model %q", s)
}

// ParsePolicy resolves an allocation-policy name to its canonical form
// (empty defaults to "model3", the paper's optimal reduction; see
// rm.PolicyNames for the registry).
func ParsePolicy(s string) (string, error) {
	if s == "" {
		return rm.PolicyModel3, nil
	}
	if _, err := rm.NewPolicy(s); err != nil {
		return "", fmt.Errorf("scenario: %w", err)
	}
	return s, nil
}

// Validate reports the first structural problem with the spec: unknown
// application, manager, model or policy names, empty systems, non-finite
// numeric fields, out-of-range step targets, or QoS steps that would
// silently shadow each other (two steps at the same instant whose core
// targets overlap — the later-listed one would win by engine tie-break,
// which is never what the spec author meant). Database coverage is
// checked by the run itself.
func (s *Spec) Validate() error {
	if _, err := ParseRM(s.RM); err != nil {
		return err
	}
	if _, err := ParseModel(s.Model); err != nil {
		return err
	}
	if _, err := ParsePolicy(s.Policy); err != nil {
		return err
	}
	if len(s.Cores) == 0 {
		return fmt.Errorf("scenario %s: no cores", s.Name)
	}
	jobs := 0
	for ci, c := range s.Cores {
		for ji, j := range c.Jobs {
			if _, err := bench.ByName(j.App); err != nil {
				return fmt.Errorf("scenario %s core %d job %d: %w", s.Name, ci, ji, err)
			}
			if !finite(j.Alpha) || !finite(j.ArrivalNs) || !finite(j.Work) || !finite(j.DepartNs) {
				return fmt.Errorf("scenario %s core %d job %d: non-finite parameter", s.Name, ci, ji)
			}
			if j.Alpha < 0 || j.ArrivalNs < 0 || j.Work < 0 || j.DepartNs < 0 {
				return fmt.Errorf("scenario %s core %d job %d: negative parameter", s.Name, ci, ji)
			}
			jobs++
		}
	}
	if jobs == 0 {
		return fmt.Errorf("scenario %s: no jobs", s.Name)
	}
	for i, st := range s.Steps {
		if !finite(st.AtNs) || !finite(st.Alpha) {
			return fmt.Errorf("scenario %s step %d: non-finite value", s.Name, i)
		}
		if st.Alpha <= 0 {
			return fmt.Errorf("scenario %s step %d: alpha %.3f not positive", s.Name, i, st.Alpha)
		}
		if st.AtNs < 0 {
			return fmt.Errorf("scenario %s step %d: negative time", s.Name, i)
		}
		if st.Core != nil && (*st.Core < 0 || *st.Core >= len(s.Cores)) {
			return fmt.Errorf("scenario %s step %d: core %d of %d", s.Name, i, *st.Core, len(s.Cores))
		}
		for k := 0; k < i; k++ {
			prev := s.Steps[k]
			if prev.AtNs == st.AtNs && stepsOverlap(prev.Core, st.Core) {
				return fmt.Errorf("scenario %s: steps %d and %d both fire at %g ns for the same core — one would silently shadow the other",
					s.Name, k, i, st.AtNs)
			}
		}
	}
	if !finite(s.Alpha) {
		return fmt.Errorf("scenario %s: non-finite alpha", s.Name)
	}
	if s.Alpha < 0 || s.Scale < 0 || s.Interval < 0 {
		return fmt.Errorf("scenario %s: negative configuration value", s.Name)
	}
	return nil
}

// finite rejects the NaN/±Inf values encoding/json happily produces
// from "1e999"-style literals.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// stepsOverlap reports whether two step core targets touch a common
// core (nil targets every core).
func stepsOverlap(a, b *int) bool {
	if a == nil || b == nil {
		return true
	}
	return *a == *b
}

// ValidateSpecs validates a batch: every spec individually, plus
// cross-spec rules — duplicate scenario names are rejected because
// sweep reports are keyed by name and a duplicate would silently shadow
// its twin in any downstream aggregation.
func ValidateSpecs(specs []Spec) error {
	seen := make(map[string]int, len(specs))
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return err
		}
		if prev, dup := seen[specs[i].Name]; dup {
			return fmt.Errorf("scenario: specs %d and %d share the name %q", prev, i, specs[i].Name)
		}
		seen[specs[i].Name] = i
	}
	return nil
}

// Compile resolves the spec into the dynamic workload description and
// the simulator configuration that executes it.
func (s *Spec) Compile() (sim.Dynamic, sim.Config, error) {
	if err := s.Validate(); err != nil {
		return sim.Dynamic{}, sim.Config{}, err
	}
	kind, _ := ParseRM(s.RM)
	model, _ := ParseModel(s.Model)
	policy, _ := ParsePolicy(s.Policy)
	cfg := sim.Config{
		RM:               kind,
		Model:            model,
		Perfect:          s.Perfect,
		Alpha:            s.Alpha,
		Scale:            s.Scale,
		Interval:         s.Interval,
		DisableOverheads: s.DisableOverheads,
		Policy:           policy,
		DonateIdleWays:   s.DonateIdleWays,
	}
	dyn := sim.Dynamic{Queues: make([]sim.Queue, len(s.Cores))}
	for ci, c := range s.Cores {
		q := sim.Queue{Jobs: make([]sim.Job, len(c.Jobs))}
		for ji, j := range c.Jobs {
			app, err := bench.ByName(j.App)
			if err != nil {
				return sim.Dynamic{}, sim.Config{}, err
			}
			q.Jobs[ji] = sim.Job{
				App:       app,
				Alpha:     j.Alpha,
				ArrivalNs: j.ArrivalNs,
				Work:      j.Work,
				DepartNs:  j.DepartNs,
				Priority:  j.Priority,
			}
		}
		dyn.Queues[ci] = q
	}
	for _, st := range s.Steps {
		core := -1
		if st.Core != nil {
			core = *st.Core
		}
		dyn.Steps = append(dyn.Steps, sim.QoSStep{AtNs: st.AtNs, Core: core, Alpha: st.Alpha})
	}
	return dyn, cfg, nil
}

// Benchmarks returns the distinct applications the spec schedules, in
// first-use order — the minimal database a run needs.
func (s *Spec) Benchmarks() []*bench.Benchmark {
	return Benchmarks([]Spec{*s})
}

// Benchmarks returns the distinct applications a batch of specs
// schedules, in first-use order.
func Benchmarks(specs []Spec) []*bench.Benchmark {
	seen := map[string]bool{}
	var out []*bench.Benchmark
	for _, s := range specs {
		for _, c := range s.Cores {
			for _, j := range c.Jobs {
				if seen[j.App] {
					continue
				}
				seen[j.App] = true
				if b, err := bench.ByName(j.App); err == nil {
					out = append(out, b)
				}
			}
		}
	}
	return out
}

// Load parses one scenario file: either a single spec object or an
// array of specs.
func Load(r io.Reader) ([]Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, errors.New("scenario: empty input")
	}
	if trimmed[0] == '[' {
		var specs []Spec
		if err := json.Unmarshal(data, &specs); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		return specs, nil
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return []Spec{s}, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Report is the outcome of one scenario run: the managed result, the
// idle-manager twin it is normalised against, and the headline metrics
// derived from the pair.
type Report struct {
	Name string `json:"name"`
	RM   string `json:"rm"`
	// Policy is the allocation policy the managed run decided with.
	Policy string `json:"policy"`
	// Saving is the fractional energy saving of the managed run over
	// the idle (baseline-keeping) manager on the identical schedule.
	Saving      float64 `json:"saving"`
	EnergyJ     float64 `json:"energy_j"`
	IdleEnergyJ float64 `json:"idle_energy_j"`
	TimeNs      float64 `json:"time_ns"`
	RMCalled    int64   `json:"rm_called"`
	// ViolationRate measures against the strict baseline time;
	// BudgetViolationRate against each job's own α-relaxed target.
	ViolationRate       float64 `json:"violation_rate"`
	BudgetViolationRate float64 `json:"budget_violation_rate"`
	// Jobs is the managed run's per-job outcome.
	Jobs []sim.JobResult `json:"jobs"`
}

// Run executes the spec against the database: the configured manager
// plus the idle twin that anchors the energy saving.
func Run(d *db.DB, s *Spec) (*Report, error) {
	return RunWS(d, s, nil)
}

// RunWS is Run reusing a dynamic-engine workspace across calls (nil for
// a one-shot run): the idle twin and the managed run share its buffers,
// and a sweep worker passes the same workspace for every spec so curve
// memos and per-core state survive across the batch.
func RunWS(d *db.DB, s *Spec, ws *sim.RunWorkspace) (*Report, error) {
	return RunCtx(nil, d, s, ws)
}

// RunCtx is RunWS honouring ctx: both the idle twin and the managed run
// poll for cancellation, so a serving layer can abandon a request's
// in-flight simulations when the client goes away. A nil ctx disables
// the checks.
func RunCtx(ctx context.Context, d *db.DB, s *Spec, ws *sim.RunWorkspace) (*Report, error) {
	return RunTraced(ctx, d, s, ws, nil)
}

// RunTraced is RunCtx with an interval-event trace attached to the
// *reported* run — the managed simulation, or the idle run itself when
// the spec's RM is Idle (that run is then the report). The idle twin of
// a managed spec is never traced: its events are bookkeeping, not the
// allocation decisions a subscriber asked to watch. trace receives each
// sim.Event synchronously on the simulating goroutine; Event.Allocations
// is only valid during the call (see sim.Event). A nil trace is exactly
// RunCtx.
func RunTraced(ctx context.Context, d *db.DB, s *Spec, ws *sim.RunWorkspace, trace func(sim.Event)) (*Report, error) {
	dyn, cfg, err := s.Compile()
	if err != nil {
		return nil, err
	}
	kind, _ := ParseRM(s.RM)
	idleCfg := cfg
	idleCfg.RM = rm.Idle
	idleCfg.Trace = nil
	if kind == rm.Idle {
		idleCfg.Trace = trace
	}
	idle, err := sim.RunDynamicCtx(ctx, d, dyn, idleCfg, ws)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	// An idle-manager spec IS its own twin; don't simulate it twice.
	r := idle
	if kind != rm.Idle {
		cfg.Trace = trace
		r, err = sim.RunDynamicCtx(ctx, d, dyn, cfg, ws)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	policy, _ := ParsePolicy(s.Policy)
	return &Report{
		Name:                s.Name,
		RM:                  kind.String(),
		Policy:              policy,
		Saving:              1 - r.EnergyJ/idle.EnergyJ,
		EnergyJ:             r.EnergyJ,
		IdleEnergyJ:         idle.EnergyJ,
		TimeNs:              r.TimeNs,
		RMCalled:            r.RMCalled,
		ViolationRate:       r.ViolationRate(),
		BudgetViolationRate: r.BudgetViolationRate(),
		Jobs:                r.Jobs,
	}, nil
}

// Sweep runs a batch of scenarios in parallel over the shared database,
// bounded by workers (≤ 0 means one worker per scenario). Reports come
// back in spec order; failures are collected and joined, and the
// remaining scenarios still run.
func Sweep(d *db.DB, specs []Spec, workers int) ([]*Report, error) {
	return SweepContext(nil, d, specs, workers)
}

// SweepContext is Sweep honouring ctx: workers stop picking up new
// scenarios once ctx is cancelled and in-flight runs abandon at their
// next event-loop check, so the whole batch returns promptly with ctx's
// error recorded for every unfinished spec. A nil ctx disables the
// checks.
func SweepContext(ctx context.Context, d *db.DB, specs []Spec, workers int) ([]*Report, error) {
	if len(specs) == 0 {
		return nil, errors.New("scenario: empty sweep")
	}
	if workers <= 0 || workers > len(specs) {
		workers = len(specs)
	}
	reports := make([]*Report, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	ch := make(chan int, len(specs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One dynamic-engine workspace per worker: buffers and curve
			// memos are reused across the worker's share of the batch.
			var ws sim.RunWorkspace
			for i := range ch {
				if ctx != nil && ctx.Err() != nil {
					errs[i] = fmt.Errorf("scenario %s: %w", specs[i].Name, ctx.Err())
					continue
				}
				reports[i], errs[i] = RunCtx(ctx, d, &specs[i], &ws)
			}
		}()
	}
	for i := range specs {
		ch <- i
	}
	close(ch)
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return reports, err
	}
	return reports, nil
}

// PolicySweep expands specs along the allocation-policy axis: every
// spec is cloned once per named policy (empty policies defaults to the
// full registry), names suffixed "+<policy>" so reports stay uniquely
// keyed — the input for a policy shoot-out over identical workloads.
func PolicySweep(specs []Spec, policies []string) ([]Spec, error) {
	if len(policies) == 0 {
		policies = rm.PolicyNames()
	}
	for _, p := range policies {
		if _, err := ParsePolicy(p); err != nil {
			return nil, err
		}
	}
	out := make([]Spec, 0, len(specs)*len(policies))
	for _, s := range specs {
		for _, p := range policies {
			clone := s
			canon, _ := ParsePolicy(p)
			clone.Policy = canon
			clone.Name = s.Name + "+" + canon
			out = append(out, clone)
		}
	}
	return out, nil
}

// FromChurn converts a generated churn schedule (workload.GenerateChurn)
// into a runnable spec: arrival fractions scale to horizonNs and work
// fractions to the default instruction target. The remaining Spec fields
// keep their defaults (RM3, Model3, paper alpha) and can be adjusted on
// the returned value.
func FromChurn(name string, churn [][]workload.ChurnEntry, horizonNs float64) Spec {
	s := Spec{Name: name, Cores: make([]CoreSpec, len(churn))}
	for ci, q := range churn {
		jobs := make([]JobSpec, len(q))
		for ji, e := range q {
			jobs[ji] = JobSpec{
				App:       e.App.Name,
				Alpha:     e.Alpha,
				ArrivalNs: e.ArrivalFrac * horizonNs,
				Work:      e.WorkFrac * float64(config.LongestAppInstrPaper),
			}
		}
		s.Cores[ci] = CoreSpec{Jobs: jobs}
	}
	// Entries with the paper's strict alpha stay implicit so QoS steps
	// can still retarget them.
	for ci := range s.Cores {
		for ji := range s.Cores[ci].Jobs {
			if s.Cores[ci].Jobs[ji].Alpha == 1.0 {
				s.Cores[ci].Jobs[ji].Alpha = 0
			}
		}
	}
	sortJobsByArrival(&s)
	return s
}

// sortJobsByArrival keeps each queue in arrival order, which is how the
// engine consumes it.
func sortJobsByArrival(s *Spec) {
	for ci := range s.Cores {
		jobs := s.Cores[ci].Jobs
		sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].ArrivalNs < jobs[j].ArrivalNs })
	}
}
