// Command rmsim co-simulates one workload under a resource manager and
// reports energy, savings versus the baseline-keeping idle manager, and
// per-application QoS statistics.
//
// Usage:
//
//	rmsim -apps mcf,povray [-rm RM3] [-model 3] [-perfect] [-scale 2048]
//	      [-interval 100000000] [-db qosrm-db.gz] [-trace]
//	rmsim -scenario 1 -cores 4 [-seed 20] ...   # generated workload
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/sim"
	workloadpkg "qosrm/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rmsim: ")
	apps := flag.String("apps", "povray,mcf", "comma-separated application list (one per core)")
	scenario := flag.Int("scenario", 0, "generate the workload from scenario 1-4 instead of -apps")
	cores := flag.Int("cores", 4, "core count for -scenario workloads")
	wseed := flag.Int64("seed", 20, "workload generation seed for -scenario")
	kindStr := flag.String("rm", "RM3", "resource manager: Idle, RM1, RM2 or RM3")
	model := flag.Int("model", 3, "performance model (1, 2 or 3)")
	perfect := flag.Bool("perfect", false, "use the perfect oracle instead of an online model")
	scale := flag.Int64("scale", 2048, "instruction-count scale divisor (1 = paper scale)")
	interval := flag.Int64("interval", 0, "RM interval in instructions (0 = paper's 100M)")
	dbPath := flag.String("db", "qosrm-db.gz", "database cache path (built if missing)")
	traceEvents := flag.Bool("trace", false, "print interval-boundary events")
	flag.Parse()

	var kind rm.Kind
	switch strings.ToUpper(*kindStr) {
	case "IDLE":
		kind = rm.Idle
	case "RM1":
		kind = rm.RM1
	case "RM2":
		kind = rm.RM2
	case "RM3":
		kind = rm.RM3
	default:
		log.Fatalf("unknown resource manager %q", *kindStr)
	}
	if *model < 1 || *model > 3 {
		log.Fatalf("model must be 1, 2 or 3, got %d", *model)
	}

	var apps2 []*bench.Benchmark
	var label string
	if *scenario != 0 {
		if *scenario < 1 || *scenario > 4 {
			log.Fatalf("scenario must be 1-4, got %d", *scenario)
		}
		wls, err := workloadpkg.Generate(workloadpkg.Scenario(*scenario), *cores, 1, *wseed)
		if err != nil {
			log.Fatal(err)
		}
		apps2 = wls[0].Apps
		names := make([]string, len(apps2))
		for i, a := range apps2 {
			names[i] = a.Name
		}
		label = strings.Join(names, ",")
	} else {
		for _, name := range strings.Split(*apps, ",") {
			b, err := bench.ByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			apps2 = append(apps2, b)
		}
		label = *apps
	}
	workload := apps2

	d, err := db.LoadOrBuild(*dbPath, bench.Suite(), db.Options{})
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.Config{
		RM:       kind,
		Model:    perfmodel.Kind(*model),
		Perfect:  *perfect,
		Scale:    *scale,
		Interval: *interval,
	}
	if *traceEvents {
		cfg.Trace = func(e sim.Event) {
			fmt.Printf("t=%.3fms core%d %-10s interval %d phase %d at %s\n",
				e.TimeNs/1e6, e.Core, e.Bench, e.Interval, e.Phase, e.Setting)
		}
	}

	idleCfg := cfg
	idleCfg.RM = rm.Idle
	idleCfg.Trace = nil
	idle, err := sim.Run(d, workload, idleCfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(d, workload, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%d cores)\n", label, len(workload))
	fmt.Printf("manager:  %s", kind)
	if *perfect {
		fmt.Printf(" (perfect model)")
	} else if kind != rm.Idle {
		fmt.Printf(" (Model%d)", *model)
	}
	fmt.Println()
	fmt.Printf("baseline energy: %.4f J   time: %.2f ms\n", idle.EnergyJ, idle.TimeNs/1e6)
	fmt.Printf("managed energy:  %.4f J   time: %.2f ms   RM invocations: %d\n",
		res.EnergyJ, res.TimeNs/1e6, res.RMCalled)
	fmt.Printf("energy saving:   %.2f%%\n", (1-res.EnergyJ/idle.EnergyJ)*100)
	fmt.Printf("uncore energy:   %.4f J\n", res.UncoreJ)
	fmt.Println("per-application:")
	for i, a := range res.Apps {
		fmt.Printf("  core%d %-12s energy %.4f J  finish %.2f ms  intervals %d  violations %d (EV %.2f%%, max %.2f%%)\n",
			i, a.Bench, a.EnergyJ, a.FinishNs/1e6, a.Intervals, a.Violations,
			avg(a.ViolationSum, a.Violations)*100, a.MaxViolation*100)
	}
}

func avg(sum float64, n int64) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
