package jobstore

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"qosrm/internal/faultinject"
	"qosrm/internal/scenario"
)

// testEvents is a small realistic lifecycle: one submitted job, one
// scenario started and finished.
func testEvents() []Event {
	specs := []scenario.Spec{{
		Name: "jnl-a",
		RM:   "RM3",
		Cores: []scenario.CoreSpec{
			{Jobs: []scenario.JobSpec{{App: "mcf", Work: 1e12}}},
		},
	}}
	return []Event{
		{Type: EventSubmit, Job: "j1", Key: "k-1", Specs: specs},
		{Type: EventStart, Job: "j1", Index: 0},
		{Type: EventFinish, Job: "j1", Index: 0, Report: &scenario.Report{Name: "jnl-a", RM: "RM3", Saving: 0.25}},
	}
}

func openT(t *testing.T, path string) (*Journal, *LoadInfo) {
	t.Helper()
	j, info, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, info
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	j, info := openT(t, path)
	if len(info.Events) != 0 || info.TruncatedBytes != 0 {
		t.Fatalf("fresh journal loaded %+v", info)
	}
	want := testEvents()
	for _, ev := range want {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if j.Records() != len(want) {
		t.Fatalf("records %d, want %d", j.Records(), len(want))
	}
	j.Close()

	_, info2 := openT(t, path)
	if info2.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", info2.TruncatedBytes)
	}
	if !reflect.DeepEqual(info2.Events, want) {
		t.Fatalf("replayed events differ:\n got %+v\nwant %+v", info2.Events, want)
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial frame; the
// next Open must replay everything before it, cut the tail, and leave
// the journal appendable.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	j, _ := openT(t, path)
	want := testEvents()
	for _, ev := range want {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate the torn write: a frame header claiming a payload the
	// crash never wrote.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [frameSize + 3]byte
	binary.LittleEndian.PutUint32(torn[0:4], 500)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, info := openT(t, path)
	if info.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("truncated %d bytes, want %d", info.TruncatedBytes, len(torn))
	}
	if !reflect.DeepEqual(info.Events, want) {
		t.Fatalf("torn tail lost valid records:\n got %+v\nwant %+v", info.Events, want)
	}
	// The journal keeps working after the cut.
	extra := Event{Type: EventExpire, Job: "j1"}
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, info3 := openT(t, path)
	if len(info3.Events) != len(want)+1 || info3.TruncatedBytes != 0 {
		t.Fatalf("post-truncation append did not persist cleanly: %d events, %d truncated",
			len(info3.Events), info3.TruncatedBytes)
	}
}

// TestCorruptRecordStopsReplay: a bit flip mid-journal invalidates that
// record's checksum; replay keeps the prefix and drops the rest.
func TestCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	j, _ := openT(t, path)
	want := testEvents()
	offsets := []int64{headerSize}
	for _, ev := range want {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, j.Size())
	}
	j.Close()

	// Flip one payload byte of the second record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[1]+frameSize] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, info := openT(t, path)
	if !reflect.DeepEqual(info.Events, want[:1]) {
		t.Fatalf("corrupt record did not stop replay at the prefix: got %d events", len(info.Events))
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("corruption not reported as truncation")
	}
}

func TestHeaderErrors(t *testing.T) {
	dir := t.TempDir()

	badMagic := filepath.Join(dir, "magic.jnl")
	if err := os.WriteFile(badMagic, []byte("NOTAJOURNALHEADER"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(badMagic); err == nil {
		t.Fatal("bad magic accepted")
	}

	// A version-bumped but otherwise valid header must fail with
	// ErrVersion so the daemon can distinguish "rotate the format" from
	// "disk corruption".
	bumped := filepath.Join(dir, "version.jnl")
	j, _, err := Open(bumped)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(bumped)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:12], Version+9)
	if err := os.WriteFile(bumped, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(bumped); !errors.Is(err, ErrVersion) {
		t.Fatalf("version bump: %v, want ErrVersion", err)
	}
}

// TestAppendFailpointRollsBack: an injected torn write fails the append
// but leaves the journal at the previous record boundary — later
// appends land cleanly after it.
func TestAppendFailpointRollsBack(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	j, _ := openT(t, path)
	want := testEvents()
	if err := j.Append(want[0]); err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Enable("jobstore.append", "error*1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(want[1]); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed append returned %v", err)
	}
	// The failed append rolled back: the next one must succeed and the
	// reopened journal must hold exactly the two durable records.
	if err := j.Append(want[2]); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	j.Close()
	_, info := openT(t, path)
	if info.TruncatedBytes != 0 {
		t.Fatalf("rollback left %d torn bytes on disk", info.TruncatedBytes)
	}
	if !reflect.DeepEqual(info.Events, []Event{want[0], want[2]}) {
		t.Fatalf("unexpected replay after rollback: %+v", info.Events)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	j, _ := openT(t, path)
	evs := testEvents()
	for _, ev := range evs {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	grown := j.Size()

	// Compact to just the submit record (the live set once start/finish
	// are superseded), then keep appending.
	live := []Event{evs[0]}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 1 {
		t.Fatalf("records after compact %d, want 1", j.Records())
	}
	if j.Size() >= grown {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", grown, j.Size())
	}
	if err := j.Append(evs[1]); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	j.Close()

	_, info := openT(t, path)
	if !reflect.DeepEqual(info.Events, []Event{evs[0], evs[1]}) {
		t.Fatalf("post-compact replay: %+v", info.Events)
	}
}

// TestCompactFailpointKeepsJournal: a failed rotation must leave the
// previous journal byte-for-byte intact.
func TestCompactFailpointKeepsJournal(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	j, _ := openT(t, path)
	evs := testEvents()
	for _, ev := range evs {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Enable("jobstore.compact", "error*1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact([]Event{evs[0]}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed compact returned %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("failed compaction modified the journal")
	}
	// And the journal still appends.
	if err := j.Append(Event{Type: EventExpire, Job: "j1"}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(Event{Type: EventExpire, Job: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}
