// Frozen pre-unification engines, retained as equivalence baselines.
//
// Before PR 5 the package held two divergent event loops: the static
// co-simulator (one application pinned per core, sim.go) and the dynamic
// churn engine (per-core job queues, dynamic.go), each with the resource
// manager's optimizer calls welded in. The unified engine replaced both;
// these verbatim copies of the seed loops remain so the cross-seed
// property tests (engine_equiv_test.go) can pin, bit for bit, that the
// unified engine reproduces the outputs of both originals — the same
// retained-reference pattern as db.BuildReference and
// rm.GlobalOptimizeReference. They share only the passive per-core
// interval machinery (advance, finishInterval, startInterval,
// applySetting, chargeRMOverhead, refreshCurve), which the refactor did
// not touch; the event loops, RM invocation wiring and optimizer call
// sites are frozen here.
//
// Nothing outside the tests calls into this file.
package sim

import (
	"fmt"
	"math"
	"sort"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/power"
	"qosrm/internal/rm"

	"qosrm/internal/db"
)

// refState is the seed engines' per-run working set: the curve memo,
// the global reduction workspace and the assembly slices, exactly as
// runState looked before the policy layer replaced the direct
// Workspace.Optimize / GreedyGlobalOptimize call sites.
type refState struct {
	cache      rm.CurveCache
	ws         rm.Workspace
	curves     []*rm.Curve
	settings   []config.Setting
	pinnedBase *rm.Curve
}

// runStaticReference is the seed static co-simulator: the pre-refactor
// sim.Run event loop, verbatim.
func runStaticReference(d *db.DB, apps []*bench.Benchmark, cfg Config) (*Result, error) {
	cfg.fill()
	n := len(apps)
	if n == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	target := float64(config.LongestAppInstrPaper) / float64(cfg.Scale)
	interval := float64(cfg.Interval)

	cores := make([]*core, n)
	for i, a := range apps {
		if d.NumPhases(a.Name) == 0 {
			return nil, fmt.Errorf("sim: database has no data for %q", a.Name)
		}
		c := &core{
			app:     a,
			setting: config.Baseline(),
			alpha:   cfg.Alpha,
			target:  target,
			runLen:  float64(a.TotalInstr) / float64(cfg.Scale),
			phase:   a.PhaseAt(0),
			res:     AppResult{Bench: a.Name},
		}
		if c.runLen < interval {
			c.runLen = interval // an application runs at least one interval
		}
		var err error
		c.stats, err = d.Stats(a.Name, c.phase, c.setting)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		cores[i] = c
	}

	totalWays := config.TotalWays(n)
	res := &Result{}
	st := &refState{
		curves:     make([]*rm.Curve, n),
		settings:   make([]config.Setting, n),
		pinnedBase: pinnedBaseline(),
	}
	now := 0.0

	for {
		// Next event: the earliest per-core interval or target boundary.
		best := -1
		bestT := math.Inf(1)
		for i, c := range cores {
			if c.fin {
				continue
			}
			remInterval := interval - c.intervalDone
			remTarget := c.target - c.executed
			rem := remInterval
			if remTarget < rem {
				rem = remTarget
			}
			t := now + c.stallNs + rem*c.stats.TPI()
			if t < bestT {
				bestT, best = t, i
			}
		}
		if best < 0 {
			break // all cores reached their targets
		}

		// Advance every running core to bestT, charging energy.
		dt := bestT - now
		for _, c := range cores {
			if c.fin {
				continue
			}
			d := dt
			if c.stallNs > 0 {
				// Overhead time passes without retiring instructions.
				s := c.stallNs
				if s > d {
					s = d
				}
				c.stallNs -= s
				d -= s
			}
			c.advance(d / c.stats.TPI())
		}
		now = bestT

		c := cores[best]
		if c.executed >= c.target-1e-6 {
			c.fin = true
			c.res.FinishNs = now
			c.pinned = pinnedCurve(c.setting)
			continue
		}

		// Interval boundary (Figure 5): record QoS, roll the phase, and
		// invoke the RM.
		if cfg.Trace != nil {
			alloc := make([]int, len(cores))
			for i, o := range cores {
				alloc[i] = o.setting.Ways
			}
			cfg.Trace(Event{
				TimeNs:      now,
				Core:        best,
				Bench:       c.app.Name,
				Interval:    c.intervalIdx,
				Phase:       c.phase,
				Setting:     c.setting,
				Allocations: alloc,
			})
		}
		if err := c.finishInterval(d, cfg, now); err != nil {
			return nil, err
		}
		if cfg.RM != rm.Idle {
			res.RMCalled++
			if err := invokeRMStaticRef(d, cfg, cores, best, totalWays, st); err != nil {
				return nil, err
			}
		}
		if err := c.startInterval(d, now); err != nil {
			return nil, err
		}
	}

	res.TimeNs = now
	res.UncoreJ = power.UncorePowerW(n) * now * 1e-9
	res.EnergyJ = res.UncoreJ
	res.Apps = make([]AppResult, n)
	for i, c := range cores {
		res.Apps[i] = c.res
		res.EnergyJ += c.res.EnergyJ
	}
	return res, nil
}

// invokeRMStaticRef is the seed static engine's manager invocation, with
// the optimizer call sites (workspace reduction or greedy heuristic)
// welded in as they were before the policy layer.
func invokeRMStaticRef(d *db.DB, cfg Config, cores []*core, inv, totalWays int, st *refState) error {
	c := cores[inv]
	c.refreshCurve(d, &cfg, &st.cache)

	curves := st.curves
	for i, o := range cores {
		switch {
		case o.fin:
			curves[i] = o.pinned
		case o.hasCurve:
			curves[i] = o.curve
		default:
			curves[i] = st.pinnedBase
		}
	}
	var settings []config.Setting
	var ok bool
	if cfg.GreedyGlobal {
		settings, ok = rm.GreedyGlobalOptimize(curves, totalWays)
	} else {
		settings = st.settings
		ok = st.ws.Optimize(curves, totalWays, settings)
	}
	if !ok {
		return nil
	}

	for i, o := range cores {
		if o.fin {
			continue
		}
		if err := o.applySetting(d, &cfg, settings[i]); err != nil {
			return err
		}
	}
	c.chargeRMOverhead(&cfg, len(cores))
	return nil
}

// runDynamicReference is the seed dynamic churn engine: the pre-
// unification RunDynamic event loop, verbatim (one-shot state; the
// workspace reuse it optionally supported was results-identical).
func runDynamicReference(d *db.DB, dyn Dynamic, cfg Config) (*DynamicResult, error) {
	cfg.fill()
	if err := dyn.Validate(d); err != nil {
		return nil, err
	}
	n := len(dyn.Queues)
	interval := float64(cfg.Interval)

	steps := append([]QoSStep(nil), dyn.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].AtNs < steps[j].AtNs })

	cores := make([]*dynCore, n)
	for i, q := range dyn.Queues {
		c := &dynCore{jobs: q.Jobs, slot: -1, baseAlpha: cfg.Alpha}
		c.setting = config.Baseline()
		c.alpha = cfg.Alpha
		cores[i] = c
	}

	totalWays := config.TotalWays(n)
	res := &DynamicResult{}
	st := &refState{
		curves:     make([]*rm.Curve, n),
		settings:   make([]config.Setting, n),
		pinnedBase: pinnedBaseline(),
	}
	now := 0.0
	stepIdx := 0

	for {
		busy := false
		for _, c := range cores {
			if c.active() || c.next < len(c.jobs) {
				busy = true
				break
			}
		}
		if !busy {
			break
		}

		kind := evNone
		best := -1
		bestT := math.Inf(1)
		if stepIdx < len(steps) {
			kind, bestT = evStep, steps[stepIdx].AtNs
		}
		for i, c := range cores {
			if !c.active() {
				if c.next < len(c.jobs) {
					t := c.jobs[c.next].ArrivalNs
					if t < now {
						t = now // overdue arrivals start immediately
					}
					if t < bestT {
						kind, best, bestT = evArrive, i, t
					}
				}
				continue
			}
			remInterval := interval - c.intervalDone
			remTarget := c.target - c.executed
			rem := remInterval
			if remTarget < rem {
				rem = remTarget
			}
			t := now + c.stallNs + rem*c.stats.TPI()
			if c.depart > 0 && c.depart < t {
				if c.depart < bestT {
					kind, best, bestT = evDepart, i, c.depart
				}
				continue
			}
			if t < bestT {
				kind, best, bestT = evBoundary, i, t
			}
		}
		if kind == evNone {
			break
		}
		if bestT < now {
			bestT = now
		}

		dt := bestT - now
		for _, c := range cores {
			if !c.active() {
				continue
			}
			d := dt
			if c.stallNs > 0 {
				s := c.stallNs
				if s > d {
					s = d
				}
				c.stallNs -= s
				d -= s
			}
			c.advance(d / c.stats.TPI())
		}
		now = bestT

		switch kind {
		case evStep:
			s := steps[stepIdx]
			stepIdx++
			for i, c := range cores {
				if s.Core == -1 || s.Core == i {
					c.baseAlpha = s.Alpha
					if !c.explicitAlpha {
						c.alpha = s.Alpha
					}
				}
			}

		case evArrive:
			if err := startNextRef(cores[best], d, &cfg, now, interval); err != nil {
				return nil, err
			}

		case evDepart:
			if err := transitionRef(d, &cfg, cores, best, totalWays, st, res, now, interval, true); err != nil {
				return nil, err
			}

		case evBoundary:
			c := cores[best]
			// One deliberate deviation from the seed loop: the
			// clock-resolution finish guard (see the unified engine's
			// evBoundary). The seed would spin forever on a sub-ULP
			// work residue — a hang, not a result — so no terminating
			// run's output is changed by sharing the guard here, and the
			// equivalence property tests stay well-defined on every
			// input.
			if rem := c.target - c.executed; rem <= 1e-6 || now+c.stallNs+rem*c.stats.TPI() <= now {
				if err := transitionRef(d, &cfg, cores, best, totalWays, st, res, now, interval, false); err != nil {
					return nil, err
				}
				continue
			}
			if cfg.Trace != nil {
				alloc := make([]int, n)
				for i, o := range cores {
					alloc[i] = o.setting.Ways
				}
				cfg.Trace(Event{
					TimeNs:      now,
					Core:        best,
					Bench:       c.app.Name,
					Interval:    c.intervalIdx,
					Phase:       c.phase,
					Setting:     c.setting,
					Allocations: alloc,
				})
			}
			if err := c.finishInterval(d, cfg, now); err != nil {
				return nil, err
			}
			if cfg.RM != rm.Idle {
				res.RMCalled++
				if err := invokeRMDynamicRef(d, &cfg, cores, best, totalWays, st, true); err != nil {
					return nil, err
				}
			}
			if err := c.startInterval(d, now); err != nil {
				return nil, err
			}
		}
	}

	res.TimeNs = now
	res.UncoreJ = power.UncorePowerW(n) * now * 1e-9
	res.EnergyJ = res.UncoreJ
	for i := 0; i < n; i++ {
		for j := range res.Jobs {
			if res.Jobs[j].Core == i {
				res.EnergyJ += res.Jobs[j].EnergyJ
			}
		}
	}
	return res, nil
}

// transitionRef is the seed engine's job transition.
func transitionRef(d *db.DB, cfg *Config, cores []*dynCore, inv, totalWays int, st *refState, res *DynamicResult, now, interval float64, departed bool) error {
	c := cores[inv]
	c.res.FinishNs = now
	res.Jobs = append(res.Jobs, JobResult{
		Core:      inv,
		Slot:      c.slot,
		AppResult: c.res,
		StartNs:   c.startNs,
		Alpha:     c.alpha,
		Departed:  departed,
	})
	c.slot = -1
	c.app = nil
	c.stats = nil
	c.depart = 0
	c.explicitAlpha = false
	c.hasCurve = false
	c.curve = nil
	if c.next >= len(c.jobs) {
		return nil
	}
	if c.jobs[c.next].ArrivalNs <= now {
		if err := startNextRef(c, d, cfg, now, interval); err != nil {
			return err
		}
	}
	if cfg.RM != rm.Idle {
		res.RMCalled++
		if err := invokeRMDynamicRef(d, cfg, cores, inv, totalWays, st, false); err != nil {
			return err
		}
	}
	return nil
}

// startNextRef is the seed engine's strict-queue-order job start.
func startNextRef(c *dynCore, d *db.DB, cfg *Config, now, interval float64) error {
	j := c.jobs[c.next]
	c.slot = c.next
	c.next++
	c.startNs = now
	c.app = j.App
	c.alpha = c.baseAlpha
	c.explicitAlpha = j.Alpha > 0
	if c.explicitAlpha {
		c.alpha = j.Alpha
	}
	work := j.Work
	if work <= 0 {
		work = float64(config.LongestAppInstrPaper)
	}
	c.target = work / float64(cfg.Scale)
	c.executed = 0
	c.runExec = 0
	c.runLen = float64(j.App.TotalInstr) / float64(cfg.Scale)
	if c.runLen < interval {
		c.runLen = interval
	}
	c.intervalIdx = 0
	c.phase = j.App.PhaseAt(0)
	c.depart = j.DepartNs
	c.res = AppResult{Bench: j.App.Name}
	c.fin = false
	c.hasCurve = false
	c.curve = nil
	return c.startInterval(d, now)
}

// invokeRMDynamicRef is the seed dynamic engine's manager invocation,
// optimizer call sites welded in.
func invokeRMDynamicRef(d *db.DB, cfg *Config, cores []*dynCore, inv, totalWays int, st *refState, refresh bool) error {
	c := cores[inv]
	if refresh {
		c.refreshCurve(d, cfg, &st.cache)
	}

	curves := st.curves
	for i, o := range cores {
		if o.active() && o.hasCurve {
			curves[i] = o.curve
		} else {
			curves[i] = o.pinnedSelf()
		}
	}
	var settings []config.Setting
	var ok bool
	if cfg.GreedyGlobal {
		settings, ok = rm.GreedyGlobalOptimize(curves, totalWays)
	} else {
		settings = st.settings
		ok = st.ws.Optimize(curves, totalWays, settings)
	}
	if !ok {
		return nil
	}

	for i, o := range cores {
		if !o.active() {
			o.setting.Ways = settings[i].Ways
			continue
		}
		if err := o.applySetting(d, cfg, settings[i]); err != nil {
			return err
		}
	}
	if c.active() {
		c.chargeRMOverhead(cfg, len(cores))
	}
	return nil
}
