// Package db builds and serves the simulation database of the paper's
// methodology (Section IV-A): for every benchmark phase, detailed
// micro-architecture simulations are performed "over all possible core
// configurations, VF settings, and LLC allocations" and their results are
// collected for the interval-driven RM co-simulator to replay.
//
// The detailed simulations come from internal/cpu (the Sniper stand-in).
// Each phase is simulated at every core size and way allocation and at
// three frequency corners; other frequencies are served by interpolating
// core cycles (frequency-invariant to first order) and memory-stall time
// (smooth in frequency via DRAM queueing) between corners, which mirrors
// the frequency structure of the paper's own performance model (Eq. 1).
//
// Each run also records what the core's ATD — warmed alongside the main
// hierarchy and observing the run's LLC access stream in issue order —
// would have reported: the miss-vs-ways curve and the proposed
// leading-miss estimate matrix. The resource managers consume exactly
// those observations, never ground truth.
package db

import (
	"fmt"
	"runtime"
	"sync"

	"qosrm/internal/atd"
	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/cpu"
	"qosrm/internal/power"
	"qosrm/internal/trace"
)

// NumWays is the number of tracked way allocations (2..16).
const NumWays = config.MaxWays - config.MinWays + 1

// fCorners are the DVFS grid indices simulated in detail.
var fCorners = [3]int{0, config.BaseFreqIdx, config.NumFreqs - 1}

// Stats is the database record of one (phase, core, frequency, ways)
// point: ground-truth timing/energy inputs plus the ATD observations an
// RM running at this setting would see. Counter fields are float64 so
// frequency interpolation can blend corners.
type Stats struct {
	Instructions float64
	TimeNs       float64
	BaseNs       float64 // T0: dispatch + dependence time
	BranchNs     float64 // branch refill stalls
	CacheNs      float64 // exposed private-miss/LLC-hit stalls
	MemNs        float64 // exposed DRAM stalls (T_mem ground truth)

	L1Misses      float64
	LLCAccesses   float64
	LLCHits       float64
	LLCMisses     float64 // memory accesses MA of Eq. 5
	DRAMLoads     float64
	Writebacks    float64 // dirty LLC lines written back to DRAM
	LeadingMisses float64 // ground truth
	Mispredicts   float64
	MLP           float64

	// ATDMissCurve[w-MinWays] is the ATD miss estimate for allocation w.
	ATDMissCurve [NumWays]float64
	// ATDLM[c][w-MinWays] is the proposed extension's leading-miss
	// estimate for core size c at allocation w.
	ATDLM [config.NumSizes][NumWays]float64
}

// TPI returns the ground-truth time per instruction in nanoseconds.
func (s *Stats) TPI() float64 { return s.TimeNs / s.Instructions }

// CoreNs returns the frequency-scalable part of the execution time.
func (s *Stats) CoreNs() float64 { return s.BaseNs + s.BranchNs + s.CacheNs }

// ActualEnergyJ returns the ground-truth core+DRAM energy of executing
// n instructions of this phase at setting set (uncore energy is charged
// separately by the co-simulator, per Section IV-D1).
func (s *Stats) ActualEnergyJ(set config.Setting, n float64) float64 {
	scale := n / s.Instructions
	t := s.TimeNs * scale
	core := power.CoreEnergyJ(set.Core, set.Freq, int64(n+0.5), t)
	mem := power.MemEnergyJ(int64((s.LLCMisses+s.Writebacks)*scale + 0.5))
	return core + mem
}

// phaseData holds the simulated corners of one phase.
type phaseData struct {
	// Runs[c][k][w-MinWays] with k indexing fCorners.
	Runs [config.NumSizes][3][NumWays]Stats
}

// DB is the simulation database for a set of benchmarks.
type DB struct {
	TraceLen int
	Warmup   int
	// Phases maps benchmark name to its per-phase data.
	Phases map[string][]*phaseData
}

// Options configures database construction.
type Options struct {
	TraceLen int // instructions measured per phase (default 65536)
	Warmup   int // cache warm-up prefix (default 16384)
	Workers  int // parallel phase builders (default GOMAXPROCS)
}

func (o *Options) fill() {
	if o.TraceLen <= 0 {
		o.TraceLen = 65536
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	} else if o.Warmup == 0 {
		o.Warmup = 16384
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Build runs the detailed simulations for every phase of every benchmark
// in benches, in parallel across phases.
func Build(benches []*bench.Benchmark, opts Options) (*DB, error) {
	opts.fill()
	d := &DB{
		TraceLen: opts.TraceLen,
		Warmup:   opts.Warmup,
		Phases:   make(map[string][]*phaseData, len(benches)),
	}
	type job struct {
		b     *bench.Benchmark
		phase int
	}
	var jobs []job
	for _, b := range benches {
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("db: %w", err)
		}
		d.Phases[b.Name] = make([]*phaseData, len(b.Phases))
		for p := range b.Phases {
			jobs = append(jobs, job{b, p})
		}
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	ch := make(chan job)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				pd, err := buildPhase(j.b.Phases[j.phase].Params, opts)
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("db: %s phase %d: %w", j.b.Name, j.phase, err))
				} else {
					d.Phases[j.b.Name][j.phase] = pd
				}
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return d, nil
}

// buildPhase simulates one phase over the full configuration space.
func buildPhase(p trace.Params, opts Options) (*phaseData, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	insts := trace.Generate(p, opts.Warmup+opts.TraceLen)
	full := cpu.Annotate(insts)
	tail := full.Tail(opts.Warmup)

	pd := &phaseData{}
	for ci, c := range config.Sizes {
		for k, fi := range fCorners {
			for wi := 0; wi < NumWays; wi++ {
				w := config.MinWays + wi
				a := atd.MustNew(0)
				full.WarmATD(a, opts.Warmup)
				r := cpu.Run(tail, cpu.RunConfig{
					Core:    c,
					Ways:    w,
					FreqGHz: config.FreqGHz(fi),
					ATD:     a,
				})
				st := &pd.Runs[ci][k][wi]
				*st = Stats{
					Instructions:  float64(r.Instructions),
					TimeNs:        r.TimeNs,
					BaseNs:        r.BaseNs,
					BranchNs:      r.BranchNs,
					CacheNs:       r.CacheNs,
					MemNs:         r.MemNs,
					L1Misses:      float64(r.L1Misses),
					LLCAccesses:   float64(r.LLCAccesses),
					LLCHits:       float64(r.LLCHits),
					LLCMisses:     float64(r.LLCMisses),
					DRAMLoads:     float64(r.DRAMLoads),
					Writebacks:    float64(r.Writebacks),
					LeadingMisses: float64(r.LeadingMisses),
					Mispredicts:   float64(r.Mispredicts),
					MLP:           r.MLP,
				}
				for wj := 0; wj < NumWays; wj++ {
					st.ATDMissCurve[wj] = float64(a.Misses(config.MinWays + wj))
					for cj := range config.Sizes {
						st.ATDLM[cj][wj] = float64(a.LeadingMisses(config.Sizes[cj], config.MinWays+wj))
					}
				}
			}
		}
	}
	return pd, nil
}

// Stats returns the (interpolated) record for a benchmark phase at an
// arbitrary grid setting. It returns an error for unknown benchmarks,
// phase indices or off-grid settings.
func (d *DB) Stats(benchName string, phase int, set config.Setting) (*Stats, error) {
	if !set.Valid() {
		return nil, fmt.Errorf("db: invalid setting %v", set)
	}
	phases, ok := d.Phases[benchName]
	if !ok {
		return nil, fmt.Errorf("db: unknown benchmark %q", benchName)
	}
	if phase < 0 || phase >= len(phases) {
		return nil, fmt.Errorf("db: %s has no phase %d", benchName, phase)
	}
	pd := phases[phase]
	if pd == nil {
		return nil, fmt.Errorf("db: %s phase %d not built", benchName, phase)
	}
	wi := set.Ways - config.MinWays
	row := &pd.Runs[set.Core]

	// Exact corner?
	for k, fi := range fCorners {
		if fi == set.Freq {
			s := row[k][wi]
			return &s, nil
		}
	}
	// Interpolate between the two surrounding corners.
	lo, hi := 0, 1
	if set.Freq > fCorners[1] {
		lo, hi = 1, 2
	}
	fl, fh := config.FreqGHz(fCorners[lo]), config.FreqGHz(fCorners[hi])
	f := set.FGHz()
	t := (f - fl) / (fh - fl)
	s := interpolate(&row[lo][wi], &row[hi][wi], fl, fh, f, t)
	return s, nil
}

// interpolate blends two frequency corners: cycle-domain linear for the
// frequency-scalable components, time-domain linear for memory stall,
// linear for counters.
func interpolate(a, b *Stats, fa, fb, f, t float64) *Stats {
	lerp := func(x, y float64) float64 { return x + (y-x)*t }
	cyc := func(xa, xb float64) float64 {
		// Convert corner times to cycles, blend, convert back.
		return lerp(xa*fa, xb*fb) / f
	}
	out := &Stats{
		Instructions:  a.Instructions,
		BaseNs:        cyc(a.BaseNs, b.BaseNs),
		BranchNs:      cyc(a.BranchNs, b.BranchNs),
		CacheNs:       cyc(a.CacheNs, b.CacheNs),
		MemNs:         lerp(a.MemNs, b.MemNs),
		L1Misses:      lerp(a.L1Misses, b.L1Misses),
		LLCAccesses:   lerp(a.LLCAccesses, b.LLCAccesses),
		LLCHits:       lerp(a.LLCHits, b.LLCHits),
		LLCMisses:     lerp(a.LLCMisses, b.LLCMisses),
		DRAMLoads:     lerp(a.DRAMLoads, b.DRAMLoads),
		Writebacks:    lerp(a.Writebacks, b.Writebacks),
		LeadingMisses: lerp(a.LeadingMisses, b.LeadingMisses),
		Mispredicts:   lerp(a.Mispredicts, b.Mispredicts),
	}
	out.TimeNs = out.BaseNs + out.BranchNs + out.CacheNs + out.MemNs
	if out.LeadingMisses > 0 {
		out.MLP = out.DRAMLoads / out.LeadingMisses
		if out.MLP < 1 {
			out.MLP = 1
		}
	} else {
		out.MLP = 1
	}
	for w := range out.ATDMissCurve {
		out.ATDMissCurve[w] = lerp(a.ATDMissCurve[w], b.ATDMissCurve[w])
		for c := range out.ATDLM {
			out.ATDLM[c][w] = lerp(a.ATDLM[c][w], b.ATDLM[c][w])
		}
	}
	return out
}

// Benchmarks returns the names present in the database.
func (d *DB) Benchmarks() []string {
	out := make([]string, 0, len(d.Phases))
	for name := range d.Phases {
		out = append(out, name)
	}
	return out
}

// NumPhases returns the phase count of a benchmark (0 if unknown).
func (d *DB) NumPhases(benchName string) int { return len(d.Phases[benchName]) }
