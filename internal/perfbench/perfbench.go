// Package perfbench is the repository's performance measurement layer:
// a fixed suite of benchmarks over the hot paths of the reproduction —
// the detailed-simulation database sweep, the per-interval resource-
// manager invocation (Localize + GlobalOptimize), the database record
// lookup, and a whole co-simulation — each measured both through its
// optimized implementation and through the retained seed reference.
//
// The suite is executed by cmd/perfbench, which serialises the results
// as a BENCH_<n>.json file committed to the repository so the
// performance trajectory is tracked across PRs. Because the optimized
// and reference paths are asserted bit-identical by the equivalence
// tests, the ratios reported here measure pure implementation speed,
// not behavioural drift.
package perfbench

import (
	"fmt"
	"runtime"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/scenario"
	"qosrm/internal/sim"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the serialised form of one suite execution.
type Report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Short     bool     `json:"short"`
	Results   []Result `json:"results"`
}

// Ratio returns NsPerOp(a)/NsPerOp(b), or 0 when either is missing.
func (r *Report) Ratio(a, b string) float64 {
	ra, rb := r.find(a), r.find(b)
	if ra == nil || rb == nil || rb.NsPerOp == 0 {
		return 0
	}
	return ra.NsPerOp / rb.NsPerOp
}

func (r *Report) find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// buildWorkload returns the database-build workload: the full synthetic
// suite, or a four-application cross-category subset in short mode.
func buildWorkload(short bool) ([]*bench.Benchmark, db.Options, error) {
	opts := db.Options{TraceLen: 8192, Warmup: 2048}
	if short {
		names := []string{"mcf", "povray", "bwaves", "xalancbmk"}
		out := make([]*bench.Benchmark, len(names))
		for i, n := range names {
			b, err := bench.ByName(n)
			if err != nil {
				return nil, opts, err
			}
			out[i] = b
		}
		return out, opts, nil
	}
	return bench.Suite(), opts, nil
}

// Run executes the suite and collects a report. Short mode shrinks the
// database workloads so CI finishes in seconds.
func Run(short bool) (*Report, error) {
	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Short:     short,
	}

	benches, opts, err := buildWorkload(short)
	if err != nil {
		return nil, err
	}

	// Shared fixture for the lookup/RM benchmarks: one small database.
	mcf, err := bench.ByName("mcf")
	if err != nil {
		return nil, err
	}
	povray, err := bench.ByName("povray")
	if err != nil {
		return nil, err
	}
	fixture, err := db.Build([]*bench.Benchmark{mcf, povray}, opts)
	if err != nil {
		return nil, err
	}
	base, err := fixture.Stats("mcf", 0, config.Baseline())
	if err != nil {
		return nil, err
	}
	pred := &rm.ModelPredictor{
		Stats: perfmodel.FromDB(base, config.Baseline()),
		Model: perfmodel.Model3,
	}
	const cores = 8
	refCurves := make([]*rm.Curve, cores)
	for i := range refCurves {
		cv := rm.Localize(pred, rm.RM3, rm.Options{})
		refCurves[i] = &cv
	}

	add := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		rep.Results = append(rep.Results, Result{
			Name:        name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	// The database sweep, optimized vs seed, on the same workload.
	add("DatabaseBuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Build(benches, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("DatabaseBuildReference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.BuildReference(benches, opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One phase's full configuration sweep (a single cache-sensitive
	// application), isolating the per-phase cost from suite effects.
	add("PhaseSweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Build([]*bench.Benchmark{mcf}, opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Database record lookups across the full grid: the dense cache vs
	// the seed's per-call interpolation.
	lookup := func(b *testing.B, stats func(string, int, config.Setting) (*db.Stats, error)) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set := config.Setting{
				Core: config.CoreSize(i % config.NumSizes),
				Freq: i % config.NumFreqs,
				Ways: config.MinWays + i%db.NumWays,
			}
			if _, err := stats("mcf", 0, set); err != nil {
				b.Fatal(err)
			}
		}
	}
	add("DBStats", func(b *testing.B) { lookup(b, fixture.Stats) })
	add("DBStatsReference", func(b *testing.B) { lookup(b, fixture.StatsReference) })

	// One local optimisation (the paper's per-core curve computation).
	add("Localize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rm.Localize(pred, rm.RM3, rm.Options{})
		}
	})

	// The per-interval RM invocation path of the co-simulator: one
	// core's curve refresh plus the global redistribution across eight
	// cores. The optimized path hits the curve cache and reuses the
	// reduction workspace; the reference recomputes and reallocates, as
	// the seed simulator did at every interval boundary.
	add("RMInvocation", func(b *testing.B) {
		var cache rm.CurveCache
		var ws rm.Workspace
		out := make([]config.Setting, cores)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cv := cache.Get(base, func() rm.Curve { return rm.Localize(pred, rm.RM3, rm.Options{}) })
			refCurves[0] = cv
			if !ws.Optimize(refCurves, config.TotalWays(cores), out) {
				b.Fatal("infeasible")
			}
		}
	})
	add("RMInvocationReference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cv := rm.Localize(pred, rm.RM3, rm.Options{})
			refCurves[0] = &cv
			if _, ok := rm.GlobalOptimizeReference(refCurves, config.TotalWays(cores)); !ok {
				b.Fatal("infeasible")
			}
		}
	})

	// A whole two-core co-simulation, exercising the integrated path
	// (curve cache, workspace reduction, dense stats lookups).
	add("CoSimulation", func(b *testing.B) {
		apps := []*bench.Benchmark{mcf, povray}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(fixture, apps, sim.Config{RM: rm.RM3, Model: perfmodel.Model3}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The same workload through the dynamic engine (a static
	// single-job-per-core queue): the ratio to CoSimulation is the
	// churn machinery's overhead on the common path, with the results
	// asserted bit-identical by TestDynamicMatchesStaticRun.
	add("DynamicStaticRun", func(b *testing.B) {
		dyn := sim.Dynamic{Queues: []sim.Queue{
			{Jobs: []sim.Job{{App: mcf}}},
			{Jobs: []sim.Job{{App: povray}}},
		}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunDynamic(fixture, dyn, sim.Config{RM: rm.RM3, Model: perfmodel.Model3}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// A scenario batch: several churn scenarios — arrivals, departures,
	// per-app alphas, a QoS step — swept in parallel over the shared
	// fixture database, the cmd/scenarios hot path.
	add("ScenarioBatch", func(b *testing.B) {
		specs := scenarioBatch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scenario.Sweep(fixture, specs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	return rep, nil
}

// scenarioBatch is the fixed churn batch ScenarioBatch sweeps: four
// two-core scenarios over the fixture applications, exercising
// departures, delayed arrivals, heterogeneous alphas and QoS steps.
func scenarioBatch() []scenario.Spec {
	const work = 4 * 100_000_000 * 2048
	base := scenario.Spec{
		Cores: []scenario.CoreSpec{
			{Jobs: []scenario.JobSpec{
				{App: "mcf", Work: work, DepartNs: 2e8},
				{App: "povray", Work: work, Alpha: 1.2},
			}},
			{Jobs: []scenario.JobSpec{
				{App: "povray", Work: work},
				{App: "mcf", Work: work, ArrivalNs: 3e8},
			}},
		},
		Steps: []scenario.StepSpec{{AtNs: 2.5e8, Alpha: 1.1}},
	}
	specs := make([]scenario.Spec, 4)
	for i := range specs {
		specs[i] = base
		specs[i].Name = fmt.Sprintf("bench-%d", i)
	}
	specs[1].RM = "RM2"
	specs[2].Perfect = true
	specs[3].RM = "RM1"
	return specs
}

// Summary renders the headline comparisons of a report.
func (r *Report) Summary() string {
	s := ""
	for _, pair := range [][2]string{
		{"DatabaseBuildReference", "DatabaseBuild"},
		{"DBStatsReference", "DBStats"},
		{"RMInvocationReference", "RMInvocation"},
	} {
		ratio := r.Ratio(pair[0], pair[1])
		if ratio == 0 {
			continue
		}
		s += fmt.Sprintf("%s/%s: %.2fx\n", pair[0], pair[1], ratio)
	}
	if a, b := r.find("RMInvocationReference"), r.find("RMInvocation"); a != nil && b != nil {
		s += fmt.Sprintf("RMInvocation allocs/op: %d -> %d\n", a.AllocsPerOp, b.AllocsPerOp)
	}
	if ratio := r.Ratio("DynamicStaticRun", "CoSimulation"); ratio != 0 {
		s += fmt.Sprintf("dynamic-engine overhead on static runs: %.2fx\n", ratio)
	}
	return s
}
