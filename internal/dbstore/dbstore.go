// Package dbstore is the persistent snapshot store for the built
// configuration database: a versioned binary format that round-trips a
// db.DB bit-identically, so a service cold start is a fast file load
// instead of a full detailed-simulation rebuild.
//
// A snapshot is a fixed header followed by a dense payload:
//
//	header (40 bytes)
//	  magic       [8]byte  "QOSRMSNP"
//	  version     uint32   format version (Version)
//	  reserved    uint32   zero
//	  params hash uint64   FNV-1a over the build parameters and the
//	                       suite definition the database was built from
//	  payload len uint64
//	  checksum    uint64   CRC-64/ECMA of the payload bytes
//	payload
//	  trace len   uint32
//	  warmup      uint32
//	  benchmarks  uint32
//	  per benchmark, sorted by name (the format is canonical — one
//	  database has exactly one serialisation):
//	    name      uint16 length + bytes
//	    phases    uint32
//	    per phase: the simulated corner block, little-endian float64s
//	    in field order (db.CornerRuns)
//
// Only the simulated corners are stored. The dense interpolated grid is
// a deterministic function of them and is re-materialised lazily after a
// load, which is what makes a loaded database bit-identical to a freshly
// built one (asserted by the round-trip tests) without serialising
// derived state.
//
// Integrity is layered: magic and version reject foreign or stale
// formats, the checksum rejects truncation and corruption, structural
// bounds reject malformed counts, and the params hash rejects a
// snapshot whose suite definition or build parameters no longer match
// the binary reading it (the suite is code, so a code change invalidates
// old snapshots). Any Stats schema change must bump Version.
package dbstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
)

// Version is the current snapshot format version. Bump on any change to
// the header, the payload layout, or the db.Stats field set.
const Version = 1

// magic identifies a qosrm database snapshot.
var magic = [8]byte{'Q', 'O', 'S', 'R', 'M', 'S', 'N', 'P'}

const (
	headerSize = 40

	// statsScalars is the number of scalar float64 fields serialised per
	// db.Stats record, in fixed field order (see putStats/getStats).
	statsScalars = 15
	statsFloats  = statsScalars + db.NumWays + config.NumSizes*db.NumWays
	phaseBytes   = config.NumSizes * db.NumCorners * db.NumWays * statsFloats * 8

	// maxPayload bounds the payload a reader will accept; the full suite
	// is a few megabytes, so this is generous headroom, not a limit
	// anyone should meet.
	maxPayload = 1 << 31

	// preallocPayload bounds the payload length a reader will allocate
	// up front on the header's say-so. Below it, the payload buffer is
	// exactly sized before reading (the full suite is ~6 MB; the
	// append-growth copies of a growing read used to cost several times
	// the payload in allocations); above it, the reader falls back to
	// growth proportional to the actual input, so a forged length field
	// cannot force a huge allocation.
	preallocPayload = 64 << 20

	// maxBenches and maxPhases bound the structural counts a reader will
	// accept before allocating for them.
	maxBenches = 1 << 12
	maxPhases  = 1 << 16
	maxName    = 255
)

// crcTable is the CRC-64/ECMA table shared by writers and readers.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Header is the decoded snapshot envelope, returned by Load/Read so
// tools can report what they verified.
type Header struct {
	Version    int
	ParamsHash uint64
	TraceLen   int
	Warmup     int
	Benchmarks int
	Phases     int
	Bytes      int64 // total snapshot size: header + payload
}

// ErrVersion is wrapped by load failures caused by a format version
// mismatch — the one error a caller may want to special-case (rebuild
// instead of report corruption).
var ErrVersion = errors.New("dbstore: snapshot format version mismatch")

// ErrStale is wrapped by load failures caused by a params-hash mismatch:
// the snapshot is internally consistent but was built from a different
// suite definition or with different build parameters than the binary
// reading it.
var ErrStale = errors.New("dbstore: snapshot built from different parameters")

// ParamsHash fingerprints everything the database's contents depend on:
// the build parameters (trace length, warmup) and, for every benchmark
// present, its name, phase count and — when the benchmark is part of the
// compiled-in suite — the full synthetic trace parameters of each phase.
// Two binaries whose suite definitions differ therefore disagree on the
// hash, and a snapshot saved by one is rejected by the other instead of
// silently serving stale records.
func ParamsHash(d *db.DB) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "qosrm/dbstore v%d trace=%d warmup=%d", Version, d.TraceLen, d.Warmup)
	for _, name := range sortedNames(d) {
		phases := len(d.Phases[name])
		fmt.Fprintf(h, "|%s/%d", name, phases)
		if b, err := bench.ByName(name); err == nil && len(b.Phases) == phases {
			for _, p := range b.Phases {
				fmt.Fprintf(h, ":%g%+v", p.Weight, p.Params)
			}
		}
	}
	return h.Sum64()
}

// sortedNames returns the database's benchmark names in canonical
// (sorted) order.
func sortedNames(d *db.DB) []string {
	names := d.Benchmarks()
	sort.Strings(names)
	return names
}

// Save writes the database to path as a snapshot. The write goes to a
// temporary sibling first and renames into place, so a crash mid-write
// never leaves a truncated snapshot behind for the next cold start.
func Save(path string, d *db.DB) error {
	if err := AtomicWrite(path, func(f *os.File) error { return Write(f, d) }); err != nil {
		return fmt.Errorf("dbstore: save: %w", err)
	}
	return nil
}

// AtomicWrite is the crash-safe file-replacement envelope every
// persistent artefact in this codebase uses (snapshots here, the job
// journal's compaction in internal/jobstore): write runs against a
// temporary sibling of path, which is fsynced, closed and renamed into
// place, followed by a best-effort directory sync so the rename itself
// is durable. A crash at any point leaves either the old file or the
// complete new one — never a truncated hybrid.
func AtomicWrite(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Sync before the rename: without it, a power loss can persist the
	// rename but not the data, leaving an empty or partial file at path
	// — exactly the truncation the temp-and-rename dance exists to rule
	// out.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Checksum is the CRC-64/ECMA all persistent formats in this codebase
// frame their payloads with (the snapshot payload here, every journal
// record in internal/jobstore).
func Checksum(p []byte) uint64 { return crc64.Checksum(p, crcTable) }

// Write serialises the database to w in snapshot format.
func Write(w io.Writer, d *db.DB) error {
	payload, err := encodePayload(d)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[0:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], 0)
	binary.LittleEndian.PutUint64(hdr[16:24], ParamsHash(d))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hdr[32:40], crc64.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dbstore: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("dbstore: write payload: %w", err)
	}
	return nil
}

// encodePayload renders the canonical payload bytes.
func encodePayload(d *db.DB) ([]byte, error) {
	names := sortedNames(d)
	size := 4 + 4 + 4
	for _, name := range names {
		if len(name) == 0 || len(name) > maxName {
			return nil, fmt.Errorf("dbstore: benchmark name %q not serialisable", name)
		}
		size += 2 + len(name) + 4 + len(d.Phases[name])*phaseBytes
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.TraceLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Warmup))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		phases := len(d.Phases[name])
		buf = binary.LittleEndian.AppendUint32(buf, uint32(phases))
		for p := 0; p < phases; p++ {
			runs, err := d.Corners(name, p)
			if err != nil {
				return nil, fmt.Errorf("dbstore: %w", err)
			}
			for ci := range runs {
				for k := range runs[ci] {
					for wi := range runs[ci][k] {
						buf = putStats(buf, &runs[ci][k][wi])
					}
				}
			}
		}
	}
	return buf, nil
}

// putStats appends one record's floats in the fixed field order.
func putStats(buf []byte, s *db.Stats) []byte {
	f := func(v float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	f(s.Instructions)
	f(s.TimeNs)
	f(s.BaseNs)
	f(s.BranchNs)
	f(s.CacheNs)
	f(s.MemNs)
	f(s.L1Misses)
	f(s.LLCAccesses)
	f(s.LLCHits)
	f(s.LLCMisses)
	f(s.DRAMLoads)
	f(s.Writebacks)
	f(s.LeadingMisses)
	f(s.Mispredicts)
	f(s.MLP)
	for wi := range s.ATDMissCurve {
		f(s.ATDMissCurve[wi])
	}
	for ci := range s.ATDLM {
		for wi := range s.ATDLM[ci] {
			f(s.ATDLM[ci][wi])
		}
	}
	return buf
}

// Load reads and fully verifies a snapshot file.
func Load(path string) (*db.DB, *Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dbstore: load: %w", err)
	}
	defer f.Close()
	d, h, err := Read(f)
	if err != nil {
		return nil, nil, fmt.Errorf("dbstore: load %s: %w", path, err)
	}
	return d, h, nil
}

// Read decodes a snapshot from r, verifying — in order — magic, format
// version, payload length, checksum, structural bounds and finally the
// params hash against this binary's suite definition. Every failure is a
// clean error; malformed input never panics or silently loads.
func Read(r io.Reader) (*db.DB, *Header, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("dbstore: header: %w", noEOF(err))
	}
	if [8]byte(hdr[0:8]) != magic {
		return nil, nil, errors.New("dbstore: not a qosrm snapshot (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, nil, fmt.Errorf("%w: file v%d, binary v%d (rebuild with dbgen)", ErrVersion, v, Version)
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[24:32])
	if payloadLen > maxPayload {
		return nil, nil, fmt.Errorf("dbstore: payload length %d exceeds limit", payloadLen)
	}
	// The extra byte past payloadLen distinguishes an exact-length
	// payload from one with trailing data, in both read paths below.
	var payload []byte
	if payloadLen < preallocPayload {
		buf := make([]byte, payloadLen+1)
		n, err := io.ReadFull(r, buf)
		if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
			return nil, nil, fmt.Errorf("dbstore: payload: %w", err)
		}
		payload = buf[:n]
	} else {
		var err error
		payload, err = io.ReadAll(io.LimitReader(r, int64(payloadLen)+1))
		if err != nil {
			return nil, nil, fmt.Errorf("dbstore: payload: %w", err)
		}
	}
	if uint64(len(payload)) < payloadLen {
		return nil, nil, fmt.Errorf("dbstore: truncated payload: %d of %d bytes", len(payload), payloadLen)
	}
	if uint64(len(payload)) > payloadLen {
		return nil, nil, errors.New("dbstore: trailing data after payload")
	}
	if sum := crc64.Checksum(payload, crcTable); sum != binary.LittleEndian.Uint64(hdr[32:40]) {
		return nil, nil, errors.New("dbstore: checksum mismatch (corrupt snapshot)")
	}
	d, h, err := decodePayload(payload)
	if err != nil {
		return nil, nil, err
	}
	h.Version = Version
	h.ParamsHash = binary.LittleEndian.Uint64(hdr[16:24])
	h.Bytes = int64(headerSize + len(payload))
	if got := ParamsHash(d); got != h.ParamsHash {
		return nil, nil, fmt.Errorf("%w: file hash %#x, suite hash %#x (rebuild with dbgen)",
			ErrStale, h.ParamsHash, got)
	}
	return d, h, nil
}

// decodePayload parses the checksummed payload into a database.
func decodePayload(payload []byte) (*db.DB, *Header, error) {
	c := cursor{b: payload}
	traceLen := int(c.u32())
	warmup := int(c.u32())
	nb := int(c.u32())
	if c.err != nil {
		return nil, nil, c.err
	}
	if traceLen <= 0 || warmup < 0 {
		return nil, nil, fmt.Errorf("dbstore: invalid build parameters trace=%d warmup=%d", traceLen, warmup)
	}
	if nb <= 0 || nb > maxBenches {
		return nil, nil, fmt.Errorf("dbstore: benchmark count %d out of range", nb)
	}
	d := db.New(traceLen, warmup)
	h := &Header{TraceLen: traceLen, Warmup: warmup, Benchmarks: nb}
	prev := ""
	for i := 0; i < nb; i++ {
		name := c.str()
		np := int(c.u32())
		if c.err != nil {
			return nil, nil, c.err
		}
		if i > 0 && name <= prev {
			return nil, nil, fmt.Errorf("dbstore: benchmark %q out of canonical order", name)
		}
		prev = name
		if np <= 0 || np > maxPhases {
			return nil, nil, fmt.Errorf("dbstore: %s: phase count %d out of range", name, np)
		}
		if c.remaining() < np*phaseBytes {
			return nil, nil, fmt.Errorf("dbstore: %s: truncated phase data", name)
		}
		// The phase count is validated against the remaining payload
		// above, so batch-allocating all of the benchmark's phases here
		// cannot be baited into a large allocation by a forged count.
		for _, runs := range d.AddPhases(name, np) {
			for ci := range runs {
				for k := range runs[ci] {
					for wi := range runs[ci][k] {
						c.stats(&runs[ci][k][wi])
					}
				}
			}
		}
		h.Phases += np
	}
	if c.err != nil {
		return nil, nil, c.err
	}
	if c.remaining() != 0 {
		return nil, nil, fmt.Errorf("dbstore: %d unexpected trailing payload bytes", c.remaining())
	}
	return d, h, nil
}

// cursor is a bounds-checked little-endian reader over the payload. The
// first out-of-bounds read latches err and turns every subsequent read
// into a zero-value no-op, so decode loops stay simple.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if c.remaining() < n {
		c.err = fmt.Errorf("dbstore: truncated payload at offset %d", c.off)
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) f64() float64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (c *cursor) str() string {
	n := int(c.u16())
	if c.err != nil {
		return ""
	}
	if n == 0 || n > maxName {
		c.err = fmt.Errorf("dbstore: name length %d out of range", n)
		return ""
	}
	return string(c.take(n))
}

// stats fills one record in the same field order putStats wrote it.
func (c *cursor) stats(s *db.Stats) {
	s.Instructions = c.f64()
	s.TimeNs = c.f64()
	s.BaseNs = c.f64()
	s.BranchNs = c.f64()
	s.CacheNs = c.f64()
	s.MemNs = c.f64()
	s.L1Misses = c.f64()
	s.LLCAccesses = c.f64()
	s.LLCHits = c.f64()
	s.LLCMisses = c.f64()
	s.DRAMLoads = c.f64()
	s.Writebacks = c.f64()
	s.LeadingMisses = c.f64()
	s.Mispredicts = c.f64()
	s.MLP = c.f64()
	for wi := range s.ATDMissCurve {
		s.ATDMissCurve[wi] = c.f64()
	}
	for ci := range s.ATDLM {
		for wi := range s.ATDLM[ci] {
			s.ATDLM[ci][wi] = c.f64()
		}
	}
}

// noEOF maps a bare EOF on a required read to ErrUnexpectedEOF so the
// caller's message says "truncated" rather than "EOF".
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
