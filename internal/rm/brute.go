package rm

import (
	"math"

	"qosrm/internal/config"
	"qosrm/internal/perfmodel"
)

// BruteForceGlobalOptimize enumerates every way distribution and returns
// the energy-optimal one. It exists as a correctness reference for
// GlobalOptimize and to demonstrate the complexity gap the paper's
// recursive reduction closes: enumeration is O(15ⁿ) in the core count,
// the pairwise reduction O(n·A²) (Section III-A: "polynomial time
// complexity with respect to the number of cores").
//
// It is exponential; callers should keep n small (tests use n ≤ 4).
func BruteForceGlobalOptimize(curves []*Curve, totalWays int) ([]config.Setting, bool) {
	n := len(curves)
	if n == 0 {
		return nil, false
	}
	best := math.Inf(1)
	alloc := make([]int, n)
	bestAlloc := make([]int, n)
	found := false

	var walk func(core, remaining int, energy float64)
	walk = func(core, remaining int, energy float64) {
		if energy >= best {
			return // prune: energies are non-negative
		}
		if core == n-1 {
			// The last core takes whatever remains.
			if remaining < config.MinWays || remaining > config.MaxWays {
				return
			}
			e := curves[core].Energy[remaining-config.MinWays]
			if math.IsInf(e, 1) || energy+e >= best {
				return
			}
			alloc[core] = remaining
			best = energy + e
			copy(bestAlloc, alloc)
			found = true
			return
		}
		// Remaining cores bound the feasible range for this one.
		rest := n - core - 1
		lo := remaining - rest*config.MaxWays
		if lo < config.MinWays {
			lo = config.MinWays
		}
		hi := remaining - rest*config.MinWays
		if hi > config.MaxWays {
			hi = config.MaxWays
		}
		for w := lo; w <= hi; w++ {
			e := curves[core].Energy[w-config.MinWays]
			if math.IsInf(e, 1) {
				continue
			}
			alloc[core] = w
			walk(core+1, remaining-w, energy+e)
		}
	}
	walk(0, totalWays, 0)
	if !found {
		return nil, false
	}
	out := make([]config.Setting, n)
	for i, w := range bestAlloc {
		out[i] = curves[i].Pick[w-config.MinWays]
	}
	return out, true
}

// TotalEnergy sums the curve energies of a way distribution; it returns
// +Inf if any allocation is infeasible. Used to compare optimiser
// outputs.
func TotalEnergy(curves []*Curve, settings []config.Setting) float64 {
	total := 0.0
	for i, s := range settings {
		wi := s.Ways - config.MinWays
		if wi < 0 || wi >= perfmodel.NumWays {
			return math.Inf(1)
		}
		total += curves[i].Energy[wi]
	}
	return total
}
