package qosrm

// One testing.B benchmark per paper table/figure. Each measures the cost
// of regenerating that artefact from a built database (the database
// build itself is measured by BenchmarkDatabaseBuild).
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"io"
	"sync"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/experiments"
)

var (
	benchOnce sync.Once
	benchDB   *db.DB
	benchErr  error
)

// benchContext builds one reduced-tracelen full-suite database shared by
// all benchmarks.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchDB, benchErr = db.Build(bench.Suite(), db.Options{TraceLen: 16384, Warmup: 4096})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	ctx := experiments.NewContext(benchDB)
	ctx.PerScenario = 2
	return ctx
}

// BenchmarkDatabaseBuild measures the detailed-simulation sweep for one
// benchmark's phases over the full configuration space (the paper's
// Sniper+McPAT stage, per application). Compare against
// BenchmarkDatabaseBuildReference, the retained seed sweep; the
// internal/perfbench suite tracks both (plus the full-suite build) in
// the committed BENCH_*.json trajectory.
func BenchmarkDatabaseBuild(b *testing.B) {
	mcf := MustBenchmark("mcf")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Build([]*bench.Benchmark{mcf}, db.Options{TraceLen: 8192, Warmup: 2048, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatabaseBuildReference is the seed database sweep on the
// same workload: fresh ATD warmup and one timing walk per grid point.
func BenchmarkDatabaseBuildReference(b *testing.B) {
	mcf := MustBenchmark("mcf")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.BuildReference([]*bench.Benchmark{mcf}, db.Options{TraceLen: 8192, Warmup: 2048, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RenderTableI(io.Discard)
	}
}

func BenchmarkTableII(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cells := ctx.Fig1(); len(cells) != 10 {
			b.Fatal("bad fig1")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig4(); r.LM[0] != 3 {
			b.Fatal("bad fig4")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Fig5(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 measures the main evaluation sweep (4-core workloads,
// three managers each, with overheads).
func BenchmarkFig6(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Fig6Sizes([]int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 measures the exhaustive QoS-violation sweep (all phases
// × all current settings × all target settings × three models); Fig. 8
// shares this computation.
func BenchmarkFig7(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) { BenchmarkFig7(b) }

func BenchmarkFig9(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Fig9Sizes([]int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoSimulation measures one two-core RM3 co-simulation — the
// unit of work behind Figures 2, 6 and 9.
func BenchmarkCoSimulation(b *testing.B) {
	ctx := benchContext(b)
	sys := FromDB(ctx.DB)
	apps := []*Benchmark{MustBenchmark("libquantum"), MustBenchmark("omnetpp")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(apps, SimConfig{RM: RM3, Model: Model3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalOptimization measures one local optimisation (the
// per-interval work of a single core's RM invocation).
func BenchmarkLocalOptimization(b *testing.B) {
	benchmarkRMWork(b)
}
