package server

import "qosrm/internal/api"

// The wire types live in internal/api — the shared leaf of the server,
// the retrying client and the cluster-forwarding path between nodes.
// The aliases keep this package's surface (and its tests) unchanged.
type (
	SavingsRequest  = api.SavingsRequest
	SavingsResponse = api.SavingsResponse
	JobRequest      = api.JobRequest
	JobStatus       = api.JobStatus
	Health          = api.Health
)

// Job states, in lifecycle order.
const (
	JobQueued  = api.JobQueued
	JobRunning = api.JobRunning
	JobDone    = api.JobDone
	JobFailed  = api.JobFailed
)

// Health states.
const (
	HealthOK       = api.HealthOK
	HealthDegraded = api.HealthDegraded
)

// Machine-readable rejection reasons (see internal/api).
const (
	ReasonBatchTooLarge = api.ReasonBatchTooLarge
	ReasonQueueFull     = api.ReasonQueueFull
	ReasonShuttingDown  = api.ReasonShuttingDown
	ReasonRateLimited   = api.ReasonRateLimited
	ReasonJournal       = api.ReasonJournal

	ReasonClusterMismatch = api.ReasonClusterMismatch
)

// errorResponse is the JSON envelope of every non-2xx response.
type errorResponse = api.ErrorResponse
