// Package obs is the observability substrate of the serving layer:
// lock-free latency histograms rendered in Prometheus histogram
// exposition, a bounded event ring buffer that decouples the simulation
// engine from stream consumers, and a linter for the text exposition
// format that keeps /metrics honest as series accumulate.
//
// The package is a leaf — stdlib only — so every layer (sim workers,
// HTTP handlers, the cluster forwarder, the load generator) can record
// into it without import cycles.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: fixed log2 buckets over nanoseconds. Bucket
// i covers durations up to histMinNs<<i, so the upper bounds run
// 1.024 µs, 2.048 µs, … ~140.7 s; everything above the last bound lands
// in the overflow (+Inf) bucket. Power-of-two nanosecond bounds make
// the bucket index one bits.Len64, the le values exact binary floats,
// and the layout identical everywhere it is used — server-side request
// and job histograms and the load generator's client-side view bucket
// identically, so their distributions compare directly.
const (
	histMinShift = 10 // smallest bound: 1<<10 ns = 1.024 µs
	histBuckets  = 27 // finite bounds: 1<<10 .. 1<<36 ns (~68.7 s)
)

// Histogram is a lock-free fixed-log2-bucket duration histogram. All
// methods are safe for concurrent use; Observe is three atomic adds and
// never allocates, so it can sit on hot paths. The zero value is ready.
// A Histogram must not be copied after first use.
type Histogram struct {
	// counts[i] is the number of observations in bucket i (NOT
	// cumulative; rendering accumulates). counts[histBuckets] is the
	// overflow (+Inf-only) bucket.
	counts [histBuckets + 1]atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	v := uint64(d)
	if v <= 1<<histMinShift {
		return 0
	}
	idx := bits.Len64(v-1) - histMinShift
	if idx >= histBuckets {
		return histBuckets
	}
	return idx
}

// bucketBound returns bucket i's upper bound (the overflow bucket has
// none and must be rendered as +Inf).
func bucketBound(i int) time.Duration {
	return time.Duration(1) << (histMinShift + i)
}

// Observe records one duration. Negative durations (possible under a
// test's fake clock) count into the first bucket.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Quantile estimates the q-quantile (0..1) of the observed durations by
// linear interpolation within the containing bucket — the resolution is
// the log2 bucket width, which is what percentile reporting over a
// latency distribution needs. Returns 0 with no observations; the
// overflow bucket reports its lower bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [histBuckets + 1]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= histBuckets {
				return bucketBound(histBuckets - 1)
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			frac := (target - cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return bucketBound(histBuckets - 1)
}

// WriteProm renders the histogram as one Prometheus histogram label
// set: cumulative name_bucket{le="..."} series ending at le="+Inf",
// then name_sum (seconds) and name_count. labels, when non-empty (e.g.
// `path="/v1/jobs"`), is merged into every series' label set. The
// `# TYPE name histogram` header is the caller's to write — it belongs
// to the family, not to one label set.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i := 0; i <= histBuckets; i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < histBuckets {
			le = strconv.FormatFloat(bucketBound(i).Seconds(), 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, h.Sum().Seconds())
	// _count repeats the +Inf bucket's accumulated value rather than
	// re-loading the count atomic: a concurrent Observe between the two
	// loads must not break the count == bucket{le="+Inf"} invariant the
	// exposition lint enforces.
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
}
