// The dynamic workload description: per-core application queues — jobs
// arrive, execute a bounded amount of work, finish or depart early, and
// the next queued job takes over the core — with per-application QoS
// relaxation, optional queue priorities (a strictly higher-priority
// arrival preempts the running job, which resumes later with its
// progress intact) and mid-run QoS-target step changes. The unified
// event-driven engine executing these descriptions lives in engine.go;
// a static one-job-per-core queue reproduces the paper's static
// evaluation (sim.Run) bit for bit.
package sim

import (
	"context"
	"fmt"

	"qosrm/internal/bench"
	"qosrm/internal/db"
)

// Job is one queued application of a dynamic run.
type Job struct {
	// App is the application to execute; it must be present in the
	// database the run reads from.
	App *bench.Benchmark
	// Alpha is the per-application QoS relaxation. Zero inherits the
	// core's base relaxation (Config.Alpha, or the latest QoS step's
	// value); an explicit value applies to this job only.
	Alpha float64
	// ArrivalNs is the earliest time the job may start. A job also waits
	// for its predecessors in the queue to finish or depart.
	ArrivalNs float64
	// Work is the instruction count to execute, at paper scale (the
	// engine divides by Config.Scale). Zero means the static engine's
	// default target, the suite's longest application.
	Work float64
	// DepartNs forces the job off the core at this time even if its work
	// is unfinished (a user abandoning a request, a migration, a kill).
	// Zero means the job runs to completion.
	DepartNs float64
	// Priority orders jobs within their queue: when the core frees, the
	// highest-priority arrived job runs first (ties keep queue order),
	// and an arriving job with strictly higher priority than the running
	// one preempts it — the preempted job resumes later with its
	// executed work intact. While every priority in a queue is zero the
	// queue executes in strict order, exactly the pre-priority engine.
	// Negative priorities mark background work.
	Priority int
}

// Queue is one core's job queue, executed in order.
type Queue struct {
	Jobs []Job
}

// QoSStep is one mid-run change of a core's QoS relaxation: at AtNs the
// targeted core's alpha becomes Alpha, taking effect at its subsequent
// RM invocations.
type QoSStep struct {
	AtNs  float64
	Core  int // target core; -1 applies to every core
	Alpha float64
}

// Dynamic is the workload description of one dynamic run: a queue per
// core plus an optional QoS step schedule.
type Dynamic struct {
	Queues []Queue
	Steps  []QoSStep
}

// Validate reports the first problem with the description against the
// database the run would read from.
func (dyn *Dynamic) Validate(d *db.DB) error {
	if len(dyn.Queues) == 0 {
		return fmt.Errorf("sim: dynamic run needs at least one core")
	}
	jobs := 0
	for ci, q := range dyn.Queues {
		for ji, j := range q.Jobs {
			if j.App == nil {
				return fmt.Errorf("sim: core %d job %d has no application", ci, ji)
			}
			if d.NumPhases(j.App.Name) == 0 {
				return fmt.Errorf("sim: database has no data for %q (core %d job %d)", j.App.Name, ci, ji)
			}
			if j.Alpha < 0 || j.ArrivalNs < 0 || j.Work < 0 || j.DepartNs < 0 {
				return fmt.Errorf("sim: core %d job %d has a negative parameter", ci, ji)
			}
			jobs++
		}
	}
	if jobs == 0 {
		return fmt.Errorf("sim: dynamic run has no jobs")
	}
	for i, s := range dyn.Steps {
		if s.Alpha <= 0 {
			return fmt.Errorf("sim: QoS step %d alpha %.3f not positive", i, s.Alpha)
		}
		if s.Core < -1 || s.Core >= len(dyn.Queues) {
			return fmt.Errorf("sim: QoS step %d targets core %d of %d", i, s.Core, len(dyn.Queues))
		}
		if s.AtNs < 0 {
			return fmt.Errorf("sim: QoS step %d at negative time", i)
		}
	}
	return nil
}

// JobResult is the outcome of one queued job.
type JobResult struct {
	Core int
	Slot int // index within the core's queue
	AppResult
	// StartNs is when the job began executing (≥ its arrival time).
	StartNs float64
	// Alpha is the QoS relaxation in effect when the job ended.
	Alpha float64
	// Departed marks jobs forced off the core before completing their
	// work; FinishNs is then the departure time.
	Departed bool
	// Preemptions counts how often the job was suspended by a
	// higher-priority arrival before finishing.
	Preemptions int
}

// DynamicResult is the outcome of one dynamic co-simulation.
type DynamicResult struct {
	// Jobs holds one result per executed job, in completion order.
	Jobs     []JobResult
	UncoreJ  float64
	TimeNs   float64
	EnergyJ  float64 // total: Σ jobs + uncore
	RMCalled int64
}

// ViolationRate returns the fraction of intervals that violated QoS
// (measured against the strict baseline), across all jobs.
func (r *DynamicResult) ViolationRate() float64 {
	var v, n int64
	for _, j := range r.Jobs {
		v += j.Violations
		n += j.Intervals
	}
	if n == 0 {
		return 0
	}
	return float64(v) / float64(n)
}

// BudgetViolationRate returns the fraction of intervals that exceeded
// their job's α-relaxed target — the per-app QoS contract a
// heterogeneous-alpha scenario actually promises.
func (r *DynamicResult) BudgetViolationRate() float64 {
	var v, n int64
	for _, j := range r.Jobs {
		v += j.BudgetViolations
		n += j.Intervals
	}
	if n == 0 {
		return 0
	}
	return float64(v) / float64(n)
}

// RunDynamic co-simulates a dynamic workload under cfg, reading all
// per-interval behaviour from d. Cores with no running job idle at their
// last setting — their LLC ways stay physically allocated and are pinned
// in the global optimisation (unless Config.DonateIdleWays frees a
// drained core's ways), and they draw no core energy (uncore power is
// charged for the whole chip as usual). An arriving job inherits the
// core's current setting until its first interval completes and the RM
// reallocates; a finishing or departing job triggers an immediate global
// re-optimisation when its core's queue continues.
func RunDynamic(d *db.DB, dyn Dynamic, cfg Config) (*DynamicResult, error) {
	return RunDynamicWS(d, dyn, cfg, nil)
}

// RunDynamicWS is RunDynamic reusing a workspace across calls; ws may
// be nil for a one-shot run. Results are identical to RunDynamic's —
// the workspace only recycles buffers and memoized curves whose keys
// pin all of their inputs.
func RunDynamicWS(d *db.DB, dyn Dynamic, cfg Config, ws *RunWorkspace) (*DynamicResult, error) {
	return RunDynamicCtx(nil, d, dyn, cfg, ws)
}

// RunDynamicCtx is RunDynamicWS honouring ctx: the event loop polls for
// cancellation between events, so a server can abandon an in-flight
// co-simulation as soon as its client disconnects or the service shuts
// down. A nil ctx disables the checks. A cancelled run returns ctx's
// error and no result; cancellation never changes the result of a run
// that completes.
func RunDynamicCtx(ctx context.Context, d *db.DB, dyn Dynamic, cfg Config, ws *RunWorkspace) (*DynamicResult, error) {
	return runEngine(ctx, d, dyn, cfg, ws)
}
