// Command qosrmd is the QoS-RM serving daemon: it loads a prebuilt
// database snapshot (or builds the database on first start) and serves
// the HTTP/JSON API — savings evaluations, synchronous scenario runs,
// asynchronous sweep jobs, health and metrics — so any number of clients
// share one warm database instead of rebuilding it per process.
//
// Usage:
//
//	qosrmd -snapshot suite.qosdb [-addr :8423]
//	qosrmd -snapshot suite.qosdb -build [-tracelen 65536] [-warmup 16384]
//	qosrmd -snapshot suite.qosdb -journal jobs.jnl [-rate 100] [-burst 200]
//	qosrmd -snapshot suite.qosdb -peers http://b:8423,http://c:8423
//	qosrmd -snapshot node-c.qosdb -join http://a:8423 -advertise http://c:8425
//
// With -join or -peers, the daemon runs in cluster mode. Both flags
// seed the gossip membership: the node exchanges member lists with the
// addresses it knows every -gossip interval, discovers the rest of the
// cluster from them, and a SWIM-lite failure detector (alive → suspect
// on a missed probe → dead after a confirmation round -suspect later)
// keeps the forwarding rotation live — dead peers leave it within
// seconds, rejoining ones re-enter without any restarts. A sweep
// submission that would be rejected with queue_full is forwarded to the
// least-loaded live member (ranked by /healthz queue occupancy) with
// the caller's Idempotency-Key propagated verbatim; the response
// carries the member's job handle with "origin" set, and the member's
// journal owns the job. The X-Qosrm-Forward-Trail header names every
// node a forward has visited (bounded by -forward-hops), so multi-hop
// forwarding terminates in any topology and a fully saturated cluster
// degrades to an honest 503.
//
// A joining node that has no usable snapshot on disk fetches one from a
// seed: GET /v1/snapshot streams the dbstore bytes, which are fully
// verified (magic, version, CRC, params hash against this binary's
// suite) before a byte is trusted, persisted to -snapshot, and served
// warm. A params-hash mismatch refuses the join — a node built from a
// different suite must not serve this cluster's jobs.
//
// With -journal, submitted sweep jobs are journaled to disk before they
// are acknowledged: a daemon killed mid-sweep re-enqueues the unfinished
// scenarios on the next boot and serves already-computed reports from
// the log. With -rate, each client host gets a token bucket; limited
// requests receive 429 with a Retry-After header.
//
// With -build, a missing or stale snapshot is rebuilt from the compiled
// suite and saved back to -snapshot, so the first boot pays the sweep
// once and every later boot is a fast load. Without -build, a bad
// snapshot is a startup error (the deployment intended an offline dbgen
// feed).
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, inflight
// requests get a shutdown grace period, and the job worker pool is
// cancelled through the lifecycle context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/dbstore"
	"qosrm/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qosrmd: ")
	addr := flag.String("addr", ":8423", "listen address")
	snapshot := flag.String("snapshot", "suite.qosdb", "database snapshot path (see cmd/dbgen)")
	build := flag.Bool("build", false, "build the database (and save the snapshot) when the snapshot is missing or stale")
	traceLen := flag.Int("tracelen", 65536, "instructions per phase for -build")
	warmup := flag.Int("warmup", 16384, "warm-up instructions per phase for -build")
	buildWorkers := flag.Int("build-workers", 0, "parallel builders for -build (0 = GOMAXPROCS)")
	pool := flag.Int("pool", 0, "job worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "max queued scenarios across all jobs")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period")
	jobTTL := flag.Duration("job-ttl", time.Hour, "how long finished jobs stay queryable before GC (negative keeps them forever)")
	journal := flag.String("journal", "", "job journal path; when set, submitted jobs survive crashes and restarts (empty disables)")
	rate := flag.Float64("rate", 0, "per-client request rate limit in requests/second (0 disables)")
	burst := flag.Int("burst", 0, "rate-limit burst size (0 = one second of -rate)")
	retries := flag.Int("job-retries", 0, "retries per failed scenario before its error is recorded (0 = default 2, negative disables)")
	peers := flag.String("peers", "", "comma-separated base URLs of cluster seed peers (e.g. http://a:8423,http://b:8423); gossip discovers the rest (empty with no -join runs standalone)")
	join := flag.String("join", "", "comma-separated seed URLs of an existing cluster to join; with no usable -snapshot on disk, the database snapshot is fetched and verified from a seed")
	nodeID := flag.String("node-id", "", "stable cluster node identity (default: random per boot; fix it so restarts are recognised as rejoins)")
	advertise := flag.String("advertise", "", "base URL peers reach this node at (default derived from -addr; required to enter peers' forwarding rotations)")
	gossip := flag.Duration("gossip", 0, "anti-entropy gossip interval (0 = default 1s, negative disables)")
	suspectT := flag.Duration("suspect", 0, "failure-detector confirmation window before a suspect peer is declared dead (0 = default 3s)")
	forwardHops := flag.Int("forward-hops", 0, "max peer-forwarding hops before a saturated cluster answers 503 (0 = default 3, negative disables forwarding)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "access/server log level: debug, info, warn, error, off")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	eventBuf := flag.Int("event-buffer", 0, "per-job interval-event ring capacity for /v1/jobs/{id}/events (0 = default 256)")
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	seeds := append(splitPeers(*peers), splitPeers(*join)...)
	d, err := openDB(ctx, *snapshot, *build, *traceLen, *warmup, *buildWorkers, splitPeers(*join))
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(d, server.Options{
		Workers:        *pool,
		QueueDepth:     *queue,
		MaxBodyBytes:   *maxBody,
		JobTTL:         *jobTTL,
		JournalPath:    *journal,
		JobRetries:     *retries,
		RatePerSec:     *rate,
		RateBurst:      *burst,
		Peers:          seeds,
		NodeID:         *nodeID,
		Advertise:      advertiseURL(*advertise, *addr),
		GossipInterval: *gossip,
		SuspectTimeout: *suspectT,
		ForwardHops:    *forwardHops,
		Logger:         logger,
		EnablePprof:    *pprofOn,
		EventBuffer:    *eventBuf,
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("serving %d benchmarks on %s", len(d.Benchmarks()), *addr)

	select {
	case err := <-errCh:
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (grace %s)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
}

// newLogger builds the daemon's structured logger from the -log-level
// and -log-format flags. Level "off" discards everything (the embedded
// server's default); the access log itself is emitted at info.
func newLogger(level, format string) (*slog.Logger, error) {
	if level == "off" {
		return slog.New(slog.DiscardHandler), nil
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("qosrmd: bad -log-level %q: %v", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("qosrmd: bad -log-format %q (want text or json)", format)
	}
}

// splitPeers parses the -peers list, dropping empty entries so a
// trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// advertiseURL resolves the base URL peers reach this node at: the
// explicit -advertise when given, else one derived from -addr (a bare
// ":8423" becomes "http://127.0.0.1:8423" — right for local clusters,
// wrong across hosts, which is what -advertise is for).
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return strings.TrimRight(advertise, "/")
	}
	if addr == "" {
		return ""
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// openDB resolves the database the daemon serves: the snapshot when it
// loads cleanly, else one fetched and verified from a -join seed (the
// snapshot-serve join path — persisted back so the next boot is a local
// load), else a fresh build (saved back) when -build allows it.
func openDB(ctx context.Context, path string, build bool, traceLen, warmup, workers int, join []string) (*db.DB, error) {
	start := time.Now()
	d, h, err := dbstore.Load(path)
	if err == nil {
		log.Printf("loaded %s: %d benchmarks / %d phases, %d bytes, %s",
			path, h.Benchmarks, h.Phases, h.Bytes, time.Since(start).Round(time.Millisecond))
		return d, nil
	}
	if len(join) > 0 {
		d, seed, ferr := server.FetchSnapshot(ctx, path, join)
		if ferr == nil {
			log.Printf("fetched snapshot from %s and saved %s in %s",
				seed, path, time.Since(start).Round(time.Millisecond))
			return d, nil
		}
		if errors.Is(ferr, dbstore.ErrStale) || errors.Is(ferr, dbstore.ErrVersion) {
			// The cluster serves a different database build than this
			// binary: joining it is wrong, and so would be building a
			// local database that disagrees with it.
			return nil, fmt.Errorf("join refused: %w", ferr)
		}
		log.Printf("snapshot fetch failed (%v)", ferr)
		if !build {
			return nil, fmt.Errorf("no usable snapshot (%v) and fetch failed: %w", err, ferr)
		}
	}
	if !build {
		return nil, fmt.Errorf("%w (run dbgen, pass -join to fetch from a cluster, or pass -build)", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		log.Printf("snapshot unusable (%v); rebuilding", err)
	}
	d, err = db.BuildContext(ctx, bench.Suite(), db.Options{
		TraceLen: traceLen,
		Warmup:   warmup,
		Workers:  workers,
	})
	if err != nil {
		return nil, err
	}
	if err := dbstore.Save(path, d); err != nil {
		return nil, err
	}
	log.Printf("built and saved %s in %s", path, time.Since(start).Round(time.Millisecond))
	return d, nil
}
