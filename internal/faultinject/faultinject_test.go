package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedEvalIsNil(t *testing.T) {
	Reset()
	if err := Eval("nosuch.point"); err != nil {
		t.Fatalf("disarmed eval returned %v", err)
	}
}

func TestErrorKind(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p.err", "error"); err != nil {
		t.Fatal(err)
	}
	err := Eval("p.err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed error point returned %v", err)
	}
	if Hits("p.err") != 1 {
		t.Fatalf("hits %d, want 1", Hits("p.err"))
	}
	// Other points stay disarmed.
	if err := Eval("p.other"); err != nil {
		t.Fatalf("unarmed sibling returned %v", err)
	}
}

func TestCountedArming(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p.count", "error*2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Eval("p.count"); !errors.Is(err, ErrInjected) {
			t.Fatalf("eval %d: %v", i, err)
		}
	}
	if err := Eval("p.count"); err != nil {
		t.Fatalf("exhausted point still fires: %v", err)
	}
	if Hits("p.count") != 2 {
		t.Fatalf("hits %d, want 2", Hits("p.count"))
	}
}

func TestStallKind(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p.stall", "stall:20ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Eval("p.stall"); err != nil {
		t.Fatalf("stall returned %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("stall slept only %v", d)
	}
}

func TestPanicKind(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p.panic", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic point did not panic")
		}
	}()
	Eval("p.panic")
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p.prob", "error:0.5"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 1000; i++ {
		if Eval("p.prob") != nil {
			fired++
		}
	}
	if fired < 300 || fired > 700 {
		t.Fatalf("p=0.5 fired %d/1000", fired)
	}
}

func TestEnableAllGrammar(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := EnableAll("a=error; b=stall:1ms*3 ;; c=off"); err != nil {
		t.Fatal(err)
	}
	if err := Eval("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a: %v", err)
	}
	if err := Eval("b"); err != nil {
		t.Fatalf("b: %v", err)
	}
	if err := Eval("c"); err != nil {
		t.Fatalf("c: %v", err)
	}
}

func TestBadSpecsRejected(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	for _, spec := range []string{
		"quantum", "error:2", "error:-1", "error*0", "error*x",
		"stall:banana", "exit:999",
	} {
		if err := Enable("p.bad", spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if err := EnableAll("not-a-pair"); err == nil {
		t.Error("pairless EnableAll accepted")
	}
	// A failed Enable must not leave the point half-armed.
	if err := Eval("p.bad"); err != nil {
		t.Fatalf("rejected spec armed the point: %v", err)
	}
}

func TestRearmReplacesPrevious(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p.re", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("p.re", "off"); err != nil {
		t.Fatal(err)
	}
	if err := Eval("p.re"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count %d after disarm", armed.Load())
	}
}

// TestConcurrentEval drives one armed counted point from many
// goroutines: the count must be exact (no double-fires, no misses)
// and the race detector must stay quiet.
func TestConcurrentEval(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p.conc", "error*100"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var fired atomic64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Eval("p.conc") != nil {
					fired.add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := fired.load(); got != 100 {
		t.Fatalf("fired %d, want exactly 100", got)
	}
	if Hits("p.conc") != 100 {
		t.Fatalf("hits %d, want 100", Hits("p.conc"))
	}
}

// atomic64 avoids importing sync/atomic under a name that shadows the
// package's own use.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
