// Package atd implements the Auxiliary Tag Directory used for online
// cache-miss profiling (Qureshi & Patt's UCP mechanism) together with the
// paper's proposed extension: per-(core size, way allocation) leading-miss
// counters that estimate memory-level parallelism across the whole
// configuration space from a single observed access stream (Section III-C
// and Figure 4).
//
// The ATD emulates the LLC tag directory: every LLC access is looked up
// in an LRU stack and its recency position recorded. By LRU inclusion,
// an access at position p hits for every allocation of at least p ways,
// so a histogram of positions yields the miss count for every possible
// allocation in one pass.
//
// The extension adds, for every core size c and allocation w, a miss
// counter that counts only the leading misses of overlapping groups.
// Each access carries an instruction index over a fixed 1024-entry
// window (10 bits, four times the largest ROB). A predicted miss is
// counted as overlapping (not leading) if it is within ROB(c) of the
// last leading miss and shows no out-of-order-arrival evidence of a data
// dependence; otherwise it starts a new leading miss.
package atd

import (
	"fmt"

	"qosrm/internal/cache"
	"qosrm/internal/config"
)

// DefaultIndexBits is the paper's instruction-index width: 10 bits
// cover a window of four times the largest ROB (Section III-C). The
// paper flags the sensitivity of the RM to this width as future work;
// New uses the default and NewWithIndexBits exposes the knob for that
// study (see experiments.AblationIndexBits).
const DefaultIndexBits = 10

func init() {
	if 1<<DefaultIndexBits != config.IndexWindow {
		panic("atd: index width inconsistent with config.IndexWindow")
	}
}

// lmState is one extension miss counter: the running leading-miss count
// plus the two registers of Figure 4 ("Last LM Indx", "Last OV Dist.").
type lmState struct {
	count     int64
	lastLM    int32 // masked instruction index of the last leading miss, -1 = none
	lastOVDst int32 // distance of the last overlapping miss to lastLM, -1 = none
}

// numWays is the number of tracked allocations per core size (2..16).
const numWays = config.MaxWays - config.MinWays + 1

// ATD is an auxiliary tag directory for one core's view of the LLC,
// with the leading-miss extension.
type ATD struct {
	stack *cache.LRUStack
	// cow replaces stack on forked ATDs (see Fork): a copy-on-write view
	// of the parent's tag state that materialises only the sets this
	// descendant touches.
	cow         *cache.COWStack
	sampleShift uint
	sampleMask  uint64
	setShift    uint
	indexMask   int32 // instruction-index window mask (2^bits − 1)
	robs        [config.NumSizes]int32

	accesses int64 // sampled LLC accesses observed
	hitHist  [config.MaxWays + 1]int64
	cold     int64

	// lm[w-MinWays][c] is the extension counter for allocation w and
	// core size c: 15 × 3 = 45 counters (the paper budgets 48). The
	// layout is way-major so the hot update — a prefix of allocations,
	// all three core sizes each — walks memory densely.
	lm [numWays][config.NumSizes]lmState
}

// New returns an ATD sampling one in 2^sampleShift LLC sets with the
// paper's 10-bit instruction index. Shift 0 observes every set (exact
// profiling); the paper's hardware would use a larger shift to bound
// area.
func New(sampleShift uint) (*ATD, error) {
	return NewWithIndexBits(sampleShift, DefaultIndexBits)
}

// NewWithIndexBits is New with a configurable instruction-index width.
// Narrower indices wrap more often, so distances between a miss and the
// last leading miss alias modulo 2^bits and the overlap heuristic loses
// accuracy — the trade-off the paper leaves for future work.
func NewWithIndexBits(sampleShift uint, indexBits int) (*ATD, error) {
	if indexBits < 1 || indexBits > 30 {
		return nil, fmt.Errorf("atd: index width %d bits outside [1,30]", indexBits)
	}
	sets := config.L3BytesPerCore / config.BlockBytes / config.L3WaysPerCore
	sampled := sets >> sampleShift
	if sampled < 1 {
		return nil, fmt.Errorf("atd: sample shift %d leaves no sets (of %d)", sampleShift, sets)
	}
	a := &ATD{
		stack:       cache.MustNewLRUStack(sampled, config.MaxWays),
		sampleShift: sampleShift,
		sampleMask:  uint64(1<<sampleShift) - 1,
		setShift:    6, // log2(block bytes)
		indexMask:   int32(1<<indexBits - 1),
	}
	for ci, c := range config.Sizes {
		a.robs[ci] = int32(config.Core(c).ROB)
	}
	a.resetLMRegisters()
	return a, nil
}

// MustNew is New panicking on error, for known-good shifts.
func MustNew(sampleShift uint) *ATD {
	a, err := New(sampleShift)
	if err != nil {
		panic(err)
	}
	return a
}

// Clone returns a deep copy of the ATD: tag state, histograms and all
// leading-miss counters. The database sweep warms one ATD per phase and
// clones it for every (core size, frequency, ways) run, since warmup is
// setting-independent.
func (a *ATD) Clone() *ATD {
	c := *a
	if a.cow != nil {
		c.cow = a.cow.Clone()
	} else {
		c.stack = a.stack.Clone()
	}
	return &c
}

// Fork returns a copy-on-write descendant of the ATD: counters and
// leading-miss registers are copied by value, and the tag state is a
// COW view that shares every set with a until the fork touches it. The
// parent is frozen by the fork — it must not observe further accesses
// (reading its estimates stays safe) — which is exactly the shape of a
// prefix-sharing replay tree: interior snapshots are immutable, only
// leaves advance. Fork is cheap (one small row-index table) compared to
// Clone's full tag copy.
func (a *ATD) Fork() *ATD {
	c := *a
	if a.cow != nil {
		c.cow = a.cow.Fork()
	} else {
		c.cow = a.stack.ForkCOW()
		c.stack = nil
	}
	return &c
}

// MaterializedSets returns how many tag sets this fork has privately
// copied, or -1 when the ATD is not a fork. It is the COW store's work
// measure, exposed for tests and diagnostics.
func (a *ATD) MaterializedSets() int {
	if a.cow == nil {
		return -1
	}
	return a.cow.MaterializedSets()
}

func (a *ATD) resetLMRegisters() {
	for w := range a.lm {
		for c := range a.lm[w] {
			a.lm[w][c].lastLM = -1
			a.lm[w][c].lastOVDst = -1
		}
	}
}

// sampled reports whether addr falls in a sampled set.
func (a *ATD) sampled(addr uint64) bool {
	return (addr>>a.setShift)&a.sampleMask == 0
}

// Access observes one LLC access (a memory request that missed the
// private L2) with its 10-bit instruction index. Both loads and stores
// update the recency profile, but only loads drive the leading-miss
// counters (store misses are absorbed by the write buffer and do not
// stall the core). Only accesses to sampled sets update state.
func (a *ATD) Access(addr uint64, instIdx int64, isLoad bool) {
	if !a.sampled(addr) {
		return
	}
	a.accesses++
	// Shift the sampled bits out so the stack sees a dense set index.
	dense := (addr >> a.setShift >> a.sampleShift << a.setShift) | (addr & (1<<a.setShift - 1))
	var pos int
	if a.cow != nil {
		pos = a.cow.Access(dense)
	} else {
		pos = a.stack.Access(dense)
	}
	if pos == 0 {
		a.cold++
	} else {
		a.hitHist[pos]++
	}
	if !isLoad {
		return
	}
	// An access at recency position pos misses exactly for allocations
	// w < pos (and for every allocation when absent): the counters to
	// update form the prefix wi < pos-MinWays of each bank, so the hit
	// entries are skipped wholesale instead of tested one by one.
	limit := numWays
	if pos != 0 {
		limit = pos - config.MinWays // pos ≤ MaxWays keeps this < numWays
		if limit <= 0 {
			return
		}
	}
	idx := int32(instIdx) & a.indexMask
	mask := a.indexMask
	r0, r1, r2 := a.robs[0], a.robs[1], a.robs[2]
	lm := a.lm[:limit]
	for j := range lm {
		b := &lm[j]
		b[0].observeMiss(idx, r0, mask)
		b[1].observeMiss(idx, r1, mask)
		b[2].observeMiss(idx, r2, mask)
	}
}

// observeMiss applies the Figure 4 heuristic to one predicted miss. A
// miss leads when any of these hold, otherwise it overlaps the last
// leading miss:
//
//   - no leading miss has been seen yet (lastLM < 0);
//   - it is outside the reorder window of the last leading miss
//     (dist >= rob), so the core cannot overlap them;
//   - it arrived out of order relative to the last overlapping access
//     (lastOVDst >= 0 && dist < lastOVDst), which the paper's heuristic
//     attributes to a serialising data dependence on the previous
//     leading miss.
//
// This is the hottest loop of the database sweep (45 counters per
// observed miss), so the state transition is computed branchlessly: the
// conditions become sign bits and the update a select mask. The
// transitions are exactly the imperative ones above.
func (s *lmState) observeMiss(idx, rob, indexMask int32) {
	dist := (idx - s.lastLM) & indexMask
	lead := uint32(rob-1-dist)>>31 | // dist >= rob
		uint32(s.lastLM)>>31 | // first miss
		(uint32(dist-s.lastOVDst)>>31)&^(uint32(s.lastOVDst)>>31) // dist < lastOVDst >= 0
	m := -int32(lead) // all ones when leading
	s.count += int64(lead)
	s.lastLM = (idx & m) | (s.lastLM &^ m)
	s.lastOVDst = m | (dist &^ m) // -1 when leading, else dist
}

// AccessReference is the seed implementation of Access, retained
// verbatim (together with observeMissReference and the stack's
// AccessReference) so the database sweep's reference path measures the
// seed's per-access cost, not one sped up by later optimisations. Tests
// assert Access and AccessReference leave identical state.
func (a *ATD) AccessReference(addr uint64, instIdx int64, isLoad bool) {
	if !a.sampled(addr) {
		return
	}
	a.accesses++
	dense := (addr >> a.setShift >> a.sampleShift << a.setShift) | (addr & (1<<a.setShift - 1))
	pos := a.stack.AccessReference(dense)
	if pos == 0 {
		a.cold++
	} else {
		a.hitHist[pos]++
	}
	if !isLoad {
		return
	}
	idx := int32(instIdx) & a.indexMask
	for ci, c := range config.Sizes {
		rob := int32(config.Core(c).ROB)
		for wi := 0; wi < numWays; wi++ {
			w := config.MinWays + wi
			if pos != 0 && pos <= w {
				continue // predicted hit at allocation w: not a miss at all
			}
			a.lm[wi][ci].observeMissReference(idx, rob, a.indexMask)
		}
	}
}

// observeMissReference is the seed implementation of observeMiss.
func (s *lmState) observeMissReference(idx, rob, indexMask int32) {
	if s.lastLM < 0 {
		// First leading miss.
		s.count++
		s.lastLM = idx
		s.lastOVDst = -1
		return
	}
	dist := (idx - s.lastLM) & indexMask
	switch {
	case dist >= rob:
		// Outside the reorder window of the last leading miss: the core
		// cannot overlap them, so a new leading miss begins.
		s.count++
		s.lastLM = idx
		s.lastOVDst = -1
	case s.lastOVDst >= 0 && dist < s.lastOVDst:
		// Arrived out of order relative to the last overlapping access:
		// the paper's heuristic attributes this to a data dependence on
		// the previous leading miss, which serialises it.
		s.count++
		s.lastLM = idx
		s.lastOVDst = -1
	default:
		// Overlaps the last leading miss.
		s.lastOVDst = dist
	}
}

// scale is the set-sampling expansion factor.
func (a *ATD) scale() int64 { return 1 << a.sampleShift }

// Accesses returns the estimated total LLC accesses (sampled count
// scaled by the sampling factor).
func (a *ATD) Accesses() int64 { return a.accesses * a.scale() }

// Misses returns the estimated number of LLC misses if this core were
// allocated w ways: hits at recency positions deeper than w plus cold
// misses (Section III-C).
func (a *ATD) Misses(w int) int64 {
	if w < 0 {
		w = 0
	}
	if w > config.MaxWays {
		w = config.MaxWays
	}
	n := a.cold
	for p := w + 1; p <= config.MaxWays; p++ {
		n += a.hitHist[p]
	}
	return n * a.scale()
}

// LeadingMisses returns the extension's estimate of the number of
// leading (non-overlapped) misses for core size c and allocation w.
func (a *ATD) LeadingMisses(c config.CoreSize, w int) int64 {
	wi := clampWays(w) - config.MinWays
	return a.lm[wi][c].count * a.scale()
}

// MLP returns the estimated memory-level parallelism at (c, w): total
// misses divided by leading misses, at least 1.
func (a *ATD) MLP(c config.CoreSize, w int) float64 {
	lm := a.LeadingMisses(c, w)
	if lm == 0 {
		return 1
	}
	m := float64(a.Misses(w)) / float64(lm)
	if m < 1 {
		return 1
	}
	return m
}

// MissCurve returns Misses(w) for every allocation MinWays..MaxWays,
// indexed by w-MinWays.
func (a *ATD) MissCurve() [numWays]int64 {
	var out [numWays]int64
	for wi := 0; wi < numWays; wi++ {
		out[wi] = a.Misses(config.MinWays + wi)
	}
	return out
}

// LMMatrix returns the full leading-miss estimate matrix, indexed by
// [core size][w-MinWays]. This is what the RM's performance model reads
// at the end of each interval.
func (a *ATD) LMMatrix() [config.NumSizes][numWays]int64 {
	var out [config.NumSizes][numWays]int64
	for c := range out {
		for w := range out[c] {
			out[c][w] = a.lm[w][c].count * a.scale()
		}
	}
	return out
}

// ResetCounters clears histograms and leading-miss counters while
// keeping tag state warm; the RM does this at every interval boundary.
func (a *ATD) ResetCounters() {
	a.accesses, a.cold = 0, 0
	for i := range a.hitHist {
		a.hitHist[i] = 0
	}
	for w := range a.lm {
		for c := range a.lm[w] {
			a.lm[w][c].count = 0
		}
	}
	a.resetLMRegisters()
}

func clampWays(w int) int {
	if w < config.MinWays {
		return config.MinWays
	}
	if w > config.MaxWays {
		return config.MaxWays
	}
	return w
}

// NumTrackedWays is the number of allocations each counter bank tracks.
const NumTrackedWays = numWays
