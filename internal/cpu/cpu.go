// Package cpu is the detailed core timing model of the reproduction — the
// stand-in for Sniper's "ROB" mechanistic core model (Section IV-A).
//
// It executes a synthetic instruction stream on one of the three adaptive
// core configurations (Table I) at a given frequency and LLC allocation,
// and produces:
//
//   - total execution time and a retirement-based CPI-stack decomposition
//     into base/branch/cache/memory components (the T0, T_BP, T_Cache and
//     T_mem terms of Eq. 1);
//   - cache statistics at every level;
//   - the true number of leading misses (misses whose DRAM service does
//     not overlap an earlier miss), i.e. the quantity the paper's ATD
//     extension tries to estimate;
//   - optionally, a feed of the LLC access stream, in issue order and
//     annotated with instruction indices, into an atd.ATD.
//
// The model is a greedy O(1)-per-instruction out-of-order timing walk:
// dispatch is limited by the issue width, the ROB, the reservation
// stations, the load/store queue and branch-refill bubbles; instruction
// completion respects register dependences and cache/DRAM latencies; DRAM
// obeys the Table I per-core bandwidth queue.
package cpu

import (
	"sort"

	"qosrm/internal/atd"
	"qosrm/internal/cache"
	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// Annotated is an instruction stream with its memory hierarchy behaviour
// precomputed. The private caches and the LLC recency profile do not
// depend on core size, frequency or way allocation, so one hierarchy pass
// serves every timing run of a phase.
type Annotated struct {
	Insts []trace.Inst
	// Level[i] is 0 for non-memory instructions, else 1, 2 (private hit
	// level) or 3 (reached the LLC).
	Level []uint8
	// LLCPos[i] is the LLC recency position (1..16) for Level==3
	// accesses, or 0 when absent from all tracked ways.
	LLCPos []uint8
	// WBMask[i] has bit w-1 set when a w-way LLC wrote a block back to
	// DRAM as a consequence of access i (write-back eviction).
	WBMask []uint32

	L1Misses int64 // accesses that missed L1-D
	L2Misses int64 // accesses that missed L2 (== LLC accesses)
}

// Annotate runs the stream through a fresh Table I private hierarchy and
// records, per memory instruction, where it would be satisfied.
func Annotate(insts []trace.Inst) *Annotated {
	h := cache.NewHierarchy()
	a := &Annotated{
		Insts:  insts,
		Level:  make([]uint8, len(insts)),
		LLCPos: make([]uint8, len(insts)),
		WBMask: make([]uint32, len(insts)),
	}
	for i, in := range insts {
		if in.Kind != trace.KindLoad && in.Kind != trace.KindStore {
			continue
		}
		r := h.AccessRW(in.Addr, in.Kind == trace.KindStore)
		a.Level[i] = uint8(r.Level)
		if r.Level >= 2 {
			a.L1Misses++
		}
		if r.Level == 3 {
			a.L2Misses++
			a.LLCPos[i] = uint8(r.LLCPos)
			a.WBMask[i] = r.Writebacks
		}
	}
	return a
}

// Tail returns a view of the annotated stream starting at instruction
// from, with the aggregate miss counters recomputed for the suffix. It is
// used to discard a cache-warmup prefix from measurement while keeping
// its effect on cache state.
func (a *Annotated) Tail(from int) *Annotated {
	if from <= 0 {
		return a
	}
	if from > len(a.Insts) {
		from = len(a.Insts)
	}
	t := &Annotated{
		Insts:  a.Insts[from:],
		Level:  a.Level[from:],
		LLCPos: a.LLCPos[from:],
		WBMask: a.WBMask[from:],
	}
	for i := range t.Insts {
		switch t.Level[i] {
		case 2:
			t.L1Misses++
		case 3:
			t.L1Misses++
			t.L2Misses++
		}
	}
	return t
}

// WarmATD replays the LLC accesses of the first n instructions (in
// program order) into the ATD so its tag state matches the warmed main
// hierarchy, then clears the profiling counters. Called before a timing
// run that will feed the same ATD.
func (a *Annotated) WarmATD(d *atd.ATD, n int) {
	if n > len(a.Insts) {
		n = len(a.Insts)
	}
	for i := 0; i < n; i++ {
		if a.Level[i] == 3 {
			d.Access(a.Insts[i].Addr, int64(i), a.Insts[i].Kind == trace.KindLoad)
		}
	}
	d.ResetCounters()
}

// RunConfig selects the hardware configuration of one timing run.
type RunConfig struct {
	Core    config.CoreSize
	Ways    int     // LLC allocation for this core
	FreqGHz float64 // core clock
	// ATD, when non-nil, observes the LLC access stream of this run in
	// issue order, as the hardware ATD would.
	ATD *atd.ATD
}

// Result is the outcome of one timing run.
type Result struct {
	Instructions int64
	TimeNs       float64

	// Retirement-frontier CPI-stack decomposition, in nanoseconds.
	// TimeNs == BaseNs + BranchNs + CacheNs + MemNs (up to rounding).
	BaseNs   float64 // dispatch bandwidth + dependence stalls (T0)
	BranchNs float64 // branch misprediction refill (part of T1)
	CacheNs  float64 // exposed private-miss/LLC-hit latency (part of T1)
	MemNs    float64 // exposed DRAM latency (T_mem)

	L1Misses    int64
	LLCAccesses int64 // L2 misses
	LLCHits     int64 // LLC accesses satisfied at the given allocation
	LLCMisses   int64 // LLC accesses that went to DRAM
	DRAMLoads   int64
	Mispredicts int64

	// LeadingMisses counts DRAM load misses whose service interval did
	// not overlap a previous miss — the ground truth the ATD extension
	// estimates. MLP is DRAMLoads/LeadingMisses (≥ 1).
	LeadingMisses int64
	MLP           float64

	// Writebacks counts dirty lines the LLC wrote back to DRAM at this
	// allocation; they consume DRAM bandwidth and energy but do not
	// stall the pipeline.
	Writebacks int64
}

// llcEvent buffers one LLC access for in-issue-order ATD feeding.
type llcEvent struct {
	issueNs float64
	instIdx int64
	addr    uint64
	isLoad  bool
}

// Run executes the annotated stream under rc and returns timing and
// statistics. It is deterministic and safe for concurrent use with
// distinct rc.ATD values.
func Run(a *Annotated, rc RunConfig) Result {
	cp := config.Core(rc.Core)
	perCycle := 1.0 / rc.FreqGHz // ns per cycle

	n := len(a.Insts)
	res := Result{Instructions: int64(n)}

	// Ring buffers over the reorder window.
	robSize := cp.ROB
	done := make([]float64, robSize)  // completion time (ns) by i % robSize
	start := make([]float64, robSize) // execution start time by i % robSize
	memRing := make([]float64, cp.LSQ)
	memCount := 0

	var (
		dispatch      float64 // front-end time cursor (ns)
		frontEndReady float64
		frontier      float64 // in-order retirement frontier (ns)
		lastDRAMStart float64 // per-core bandwidth queue cursor
		lastMissEnd   float64 // end of the latest DRAM service, for LM
	)
	dispatchStep := perCycle / float64(cp.IssueWidth)

	var events []llcEvent
	if rc.ATD != nil {
		events = make([]llcEvent, 0, a.L2Misses)
	}

	for i, in := range a.Insts {
		ri := i % robSize

		// --- Dispatch constraints ---
		// done[ri] still holds the completion time of instruction
		// i-robSize: the ROB-full constraint.
		d := dispatch + dispatchStep
		if v := done[ri]; v > d {
			d = v
		}
		branchBound := false
		if frontEndReady > d {
			d = frontEndReady
			branchBound = true
		}
		// Reservation stations: instruction i-RS must have begun
		// execution before i can occupy a station.
		if cp.RS < robSize && i >= cp.RS {
			if v := start[(i-cp.RS)%robSize]; v > d {
				d = v
				branchBound = false
			}
		}
		isMem := in.Kind == trace.KindLoad || in.Kind == trace.KindStore
		if isMem {
			// Load/store queue: the (memCount-LSQ)-th memory op must
			// have completed.
			if v := memRing[memCount%cp.LSQ]; v > d {
				d = v
				branchBound = false
			}
		}
		dispatch = d

		// --- Operand readiness ---
		ready := d + perCycle // register read / rename stage
		if dep := int(in.Dep1); dep > 0 && dep <= robSize && dep <= i {
			if v := done[(i-dep)%robSize]; v > ready {
				ready = v
			}
		}
		if dep := int(in.Dep2); dep > 0 && dep <= robSize && dep <= i {
			if v := done[(i-dep)%robSize]; v > ready {
				ready = v
			}
		}
		st := ready
		start[ri] = st

		// --- Execution ---
		var fin float64
		stallClass := classBase
		switch in.Kind {
		case trace.KindALU:
			fin = st + perCycle
		case trace.KindMul:
			fin = st + trace.MulLatencyCycles*perCycle
		case trace.KindBranch:
			fin = st + perCycle
			if in.Mispredict {
				res.Mispredicts++
				if r := fin + config.BranchPenaltyCycles*perCycle; r > frontEndReady {
					frontEndReady = r
				}
			}
		case trace.KindStore:
			// Stores retire into the write buffer; the cache-state
			// effects were captured during annotation. Store misses
			// still consume DRAM bandwidth.
			fin = st + perCycle
			if a.Level[i] == 3 {
				res.LLCAccesses++
				pos := int(a.LLCPos[i])
				if rc.ATD != nil {
					events = append(events, llcEvent{st, int64(i), in.Addr, false})
				}
				if a.WBMask[i]&(1<<(rc.Ways-1)) != 0 {
					// Dirty-line writeback: costs DRAM energy, but the
					// controller drains writes opportunistically behind
					// reads (write buffering), so read latency is not
					// delayed.
					res.Writebacks++
				}
				if pos == 0 || pos > rc.Ways {
					res.LLCMisses++
					reqNs := st + config.L3LatencyCycles*perCycle
					sStart := reqNs
					if lastDRAMStart+config.DRAMServiceNs > sStart {
						sStart = lastDRAMStart + config.DRAMServiceNs
					}
					lastDRAMStart = sStart
				} else {
					res.LLCHits++
				}
			}
		case trace.KindLoad:
			switch a.Level[i] {
			case 1:
				fin = st + config.L1LatencyCycles*perCycle
			case 2:
				fin = st + config.L2LatencyCycles*perCycle
				stallClass = classCache
			default: // 3: reached the LLC
				res.LLCAccesses++
				pos := int(a.LLCPos[i])
				if rc.ATD != nil {
					events = append(events, llcEvent{st, int64(i), in.Addr, true})
				}
				if a.WBMask[i]&(1<<(rc.Ways-1)) != 0 {
					// Dirty-victim writeback: energy only; drained behind
					// reads by the controller's write buffering.
					res.Writebacks++
				}
				if pos != 0 && pos <= rc.Ways {
					res.LLCHits++
					fin = st + config.L3LatencyCycles*perCycle
					stallClass = classCache
				} else {
					res.LLCMisses++
					res.DRAMLoads++
					reqNs := st + config.L3LatencyCycles*perCycle
					sStart := reqNs
					if lastDRAMStart+config.DRAMServiceNs > sStart {
						sStart = lastDRAMStart + config.DRAMServiceNs
					}
					lastDRAMStart = sStart
					fin = sStart + config.DRAMLatencyNs
					stallClass = classMem
					// Leading-loads ground truth: a miss is leading when
					// it is not issued within the DRAM latency window of
					// a previous miss ([12], [13]). Queueing delay
					// lengthens completion but not the overlap window,
					// so bandwidth saturation does not collapse the
					// leading count to zero.
					if reqNs >= lastMissEnd {
						res.LeadingMisses++
					}
					if end := reqNs + config.DRAMLatencyNs; end > lastMissEnd {
						lastMissEnd = end
					}
				}
			}
		}
		done[ri] = fin
		if isMem {
			memRing[memCount%cp.LSQ] = fin
			memCount++
		}

		// --- Retirement frontier and stall attribution ---
		frontier += dispatchStep
		res.BaseNs += dispatchStep
		if fin > frontier {
			stall := fin - frontier
			frontier = fin
			if stallClass == classBase && branchBound {
				stallClass = classBranch
			}
			switch stallClass {
			case classMem:
				res.MemNs += stall
			case classCache:
				res.CacheNs += stall
			case classBranch:
				res.BranchNs += stall
			default:
				res.BaseNs += stall
			}
		}
	}

	res.TimeNs = frontier
	res.L1Misses = a.L1Misses
	if res.LeadingMisses > 0 {
		res.MLP = float64(res.DRAMLoads) / float64(res.LeadingMisses)
	} else {
		res.MLP = 1
	}

	if rc.ATD != nil {
		// Deliver the LLC stream in issue order, as the hardware would
		// observe it. Stable sort keeps program order among accesses
		// issued in the same instant.
		sort.SliceStable(events, func(x, y int) bool {
			return events[x].issueNs < events[y].issueNs
		})
		for _, e := range events {
			rc.ATD.Access(e.addr, e.instIdx, e.isLoad)
		}
	}
	return res
}

// Stall classes for the retirement-frontier attribution.
const (
	classBase = iota
	classBranch
	classCache
	classMem
)
