package cache

import (
	"fmt"
	"math/bits"

	"qosrm/internal/config"
)

// PartitionedLLC is the shared last-level cache with way partitioning
// (Table I: 2 MB and 8 ways per core, per-core allocations between 2 and
// 16 ways). Partitioning is enforced at replacement time, as with Intel
// CAT and the UCP scheme the paper builds on: a core may hit in any way,
// but on a miss it may only grow its footprint in a set while it holds
// fewer blocks there than its allocation, and otherwise replaces its own
// LRU block.
type PartitionedLLC struct {
	setShift  uint
	setMask   uint64
	ways      int
	cores     int
	alloc     []int // ways allocated per core
	blockMask uint64

	// Per set, MRU-ordered entries.
	tags  []uint64
	owner []int8 // owning core, -1 = invalid
	// occupancy[set*cores+core] counts blocks core holds in set.
	occupancy []int16

	accesses []int64
	misses   []int64
}

// NewPartitionedLLC builds the shared LLC of an n-core system with the
// Table I geometry and an even initial allocation.
func NewPartitionedLLC(n int) (*PartitionedLLC, error) {
	if n < 1 {
		return nil, fmt.Errorf("cache: LLC needs at least one core, got %d", n)
	}
	ways := config.TotalWays(n)
	size := config.L3BytesPerCore * n
	blocks := size / config.BlockBytes
	sets := blocks / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: LLC set count %d is not a power of two", sets)
	}
	p := &PartitionedLLC{
		setShift:  uint(bits.TrailingZeros(uint(config.BlockBytes))),
		setMask:   uint64(sets - 1),
		ways:      ways,
		cores:     n,
		alloc:     make([]int, n),
		blockMask: ^uint64(config.BlockBytes - 1),
		tags:      make([]uint64, sets*ways),
		owner:     make([]int8, sets*ways),
		occupancy: make([]int16, sets*n),
		accesses:  make([]int64, n),
		misses:    make([]int64, n),
	}
	for i := range p.owner {
		p.owner[i] = -1
	}
	for c := 0; c < n; c++ {
		p.alloc[c] = config.BaseWays
	}
	return p, nil
}

// SetAllocation installs a new way partition. Allocations must each lie
// in [MinWays, MaxWays] and sum to the LLC associativity. Resident blocks
// are not flushed; occupancies converge to the new partition through
// replacement, as on real hardware.
func (p *PartitionedLLC) SetAllocation(ways []int) error {
	if len(ways) != p.cores {
		return fmt.Errorf("cache: allocation for %d cores, LLC has %d", len(ways), p.cores)
	}
	sum := 0
	for c, w := range ways {
		if w < config.MinWays || w > config.MaxWays {
			return fmt.Errorf("cache: core %d allocation %d outside [%d,%d]",
				c, w, config.MinWays, config.MaxWays)
		}
		sum += w
	}
	if sum != p.ways {
		return fmt.Errorf("cache: allocations sum to %d, LLC has %d ways", sum, p.ways)
	}
	copy(p.alloc, ways)
	return nil
}

// Allocation returns the current per-core way allocation.
func (p *PartitionedLLC) Allocation() []int {
	out := make([]int, p.cores)
	copy(out, p.alloc)
	return out
}

// Access performs a lookup by core and reports whether it hit. On a miss
// the block is filled subject to the partition.
func (p *PartitionedLLC) Access(core int, addr uint64) bool {
	p.accesses[core]++
	tag := addr & p.blockMask
	set := int((addr >> p.setShift) & p.setMask)
	base := set * p.ways
	row := p.tags[base : base+p.ways]
	own := p.owner[base : base+p.ways]
	for i := 0; i < p.ways; i++ {
		if own[i] >= 0 && row[i] == tag {
			// A hit may be to a block another core brought in; promote it
			// without changing ownership.
			o := own[i]
			copy(row[1:], row[:i])
			copy(own[1:], own[:i])
			row[0], own[0] = tag, o
			return true
		}
	}
	p.misses[core]++
	p.fill(core, set, tag)
	return false
}

// fill inserts tag for core into set, choosing a replacement victim that
// respects the way partition.
func (p *PartitionedLLC) fill(core, set int, tag uint64) {
	base := set * p.ways
	row := p.tags[base : base+p.ways]
	own := p.owner[base : base+p.ways]
	occ := p.occupancy[set*p.cores : (set+1)*p.cores]

	victim := -1
	if int(occ[core]) < p.alloc[core] {
		// Under allocation: take an invalid way, else steal the LRU
		// block of the most over-allocated core.
		for i := p.ways - 1; i >= 0; i-- {
			if own[i] < 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			worst, worstOver := -1, 0
			for i := p.ways - 1; i >= 0; i-- {
				o := int(own[i])
				if over := int(occ[o]) - p.alloc[o]; over > worstOver {
					worst, worstOver = i, over
				}
			}
			if worst < 0 {
				// Nobody is over-allocated (allocation just shrank
				// elsewhere): fall back to the core's own LRU block, or
				// the global LRU if the core holds nothing here.
				worst = p.ownLRU(own, core)
				if worst < 0 {
					worst = p.ways - 1
				}
			}
			victim = worst
		}
	} else {
		victim = p.ownLRU(own, core)
		if victim < 0 {
			victim = p.ways - 1
		}
	}

	if old := own[victim]; old >= 0 {
		occ[old]--
	}
	copy(row[1:victim+1], row[:victim])
	copy(own[1:victim+1], own[:victim])
	row[0], own[0] = tag, int8(core)
	occ[core]++
}

// ownLRU returns the least recently used way owned by core, or -1.
func (p *PartitionedLLC) ownLRU(own []int8, core int) int {
	for i := p.ways - 1; i >= 0; i-- {
		if int(own[i]) == core {
			return i
		}
	}
	return -1
}

// Accesses returns the lookup count of a core.
func (p *PartitionedLLC) Accesses(core int) int64 { return p.accesses[core] }

// Misses returns the miss count of a core.
func (p *PartitionedLLC) Misses(core int) int64 { return p.misses[core] }

// Cores returns the number of cores sharing the LLC.
func (p *PartitionedLLC) Cores() int { return p.cores }

// Ways returns the LLC associativity.
func (p *PartitionedLLC) Ways() int { return p.ways }
