package experiments

import (
	"fmt"
	"io"
	"math"

	"qosrm/internal/atd"
	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/cpu"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
	"qosrm/internal/trace"
	"qosrm/internal/workload"
)

// The ablation studies quantify design choices the paper either fixes
// (10-bit instruction index, full ATD sampling, α = 1, 100 M-instruction
// intervals) or explicitly defers to future work (the index-width and
// counter-resolution sensitivity of Section III-E).

// IndexBitsPoint is one row of the instruction-index-width ablation.
type IndexBitsPoint struct {
	Bits int
	// LMError is the mean relative error of the ATD leading-miss
	// estimate versus the detailed simulation's ground truth, averaged
	// over core sizes, a way-allocation sample and the probe
	// applications.
	LMError float64
}

// AblationIndexBits measures how the accuracy of the proposed extension
// degrades as the instruction index narrows (the paper's future-work
// question). One representative application per category is probed.
func (c *Context) AblationIndexBits(bits []int) ([]IndexBitsPoint, error) {
	if len(bits) == 0 {
		bits = []int{5, 6, 7, 8, 9, 10}
	}
	probes, err := probeApps()
	if err != nil {
		return nil, err
	}
	out := make([]IndexBitsPoint, 0, len(bits))
	for _, b := range bits {
		var errSum float64
		var n int
		for _, pb := range probes {
			e, m, err := lmEstimateError(pb, b, 0)
			if err != nil {
				return nil, err
			}
			errSum += e
			n += m
		}
		if n == 0 {
			return nil, fmt.Errorf("experiments: index-bits ablation measured nothing")
		}
		out = append(out, IndexBitsPoint{Bits: b, LMError: errSum / float64(n)})
	}
	return out, nil
}

// SamplingPoint is one row of the ATD set-sampling ablation.
type SamplingPoint struct {
	Shift int // 1-in-2^Shift sets observed
	// MissCurveError is the mean relative error of the estimated miss
	// curve versus full profiling, over allocations and probes.
	MissCurveError float64
	// LMError is as in IndexBitsPoint.
	LMError float64
}

// AblationSampling measures estimate quality versus ATD area (set
// sampling), the standard UCP trade-off.
func (c *Context) AblationSampling(shifts []int) ([]SamplingPoint, error) {
	if len(shifts) == 0 {
		shifts = []int{0, 1, 2, 3}
	}
	probes, err := probeApps()
	if err != nil {
		return nil, err
	}
	out := make([]SamplingPoint, 0, len(shifts))
	for _, s := range shifts {
		var lmSum, curveSum float64
		var lmN, curveN int
		for _, pb := range probes {
			le, lm, err := lmEstimateError(pb, atd.DefaultIndexBits, uint(s))
			if err != nil {
				return nil, err
			}
			ce, cn, err := missCurveError(pb, uint(s))
			if err != nil {
				return nil, err
			}
			lmSum += le
			lmN += lm
			curveSum += ce
			curveN += cn
		}
		p := SamplingPoint{Shift: s}
		if lmN > 0 {
			p.LMError = lmSum / float64(lmN)
		}
		if curveN > 0 {
			p.MissCurveError = curveSum / float64(curveN)
		}
		out = append(out, p)
	}
	return out, nil
}

// AlphaPoint is one row of the QoS-relaxation ablation.
type AlphaPoint struct {
	Alpha     float64
	Saving    float64 // RM3/Model3 weighted-average saving
	Violation float64 // mean per-interval violation rate
}

// AblationAlpha sweeps the QoS relaxation parameter α of Eq. 3 on a
// reduced Figure 6 workload set: savings grow with slack, at the price
// of guaranteed-by-construction slowdowns.
func (c *Context) AblationAlpha(alphas []float64) ([]AlphaPoint, error) {
	if len(alphas) == 0 {
		alphas = []float64{1.0, 1.05, 1.1, 1.2}
	}
	wls, err := ablationWorkloads(c)
	if err != nil {
		return nil, err
	}
	out := make([]AlphaPoint, 0, len(alphas))
	for _, a := range alphas {
		var save, viol float64
		for _, wl := range wls {
			cfg := c.simConfig(rm.RM3, perfmodel.Model3, false, false)
			cfg.Alpha = a
			s, r, err := c.savings(wl.Apps, cfg)
			if err != nil {
				return nil, err
			}
			save += s / float64(len(wls))
			viol += r.ViolationRate() / float64(len(wls))
		}
		out = append(out, AlphaPoint{Alpha: a, Saving: save, Violation: viol})
	}
	return out, nil
}

// GlobalOptPoint compares the paper's optimal pairwise reduction with
// the greedy marginal-utility heuristic on the same workloads.
type GlobalOptPoint struct {
	Strategy string
	Saving   float64
}

// AblationGlobalOpt quantifies how much energy the optimal reduction
// buys over the classic greedy way-partitioning heuristic.
func (c *Context) AblationGlobalOpt() ([]GlobalOptPoint, error) {
	wls, err := ablationWorkloads(c)
	if err != nil {
		return nil, err
	}
	out := []GlobalOptPoint{{Strategy: "optimal (paper)"}, {Strategy: "greedy"}}
	for _, wl := range wls {
		for i, greedy := range []bool{false, true} {
			cfg := c.simConfig(rm.RM3, perfmodel.Model3, false, false)
			cfg.GreedyGlobal = greedy
			s, _, err := c.savings(wl.Apps, cfg)
			if err != nil {
				return nil, err
			}
			out[i].Saving += s / float64(len(wls))
		}
	}
	return out, nil
}

// IntervalPoint is one row of the interval-length ablation.
type IntervalPoint struct {
	Interval int64
	Saving   float64
	RMCalls  int64
}

// AblationInterval sweeps the RM invocation granularity: shorter
// intervals track phases more closely but multiply the Section III-E
// overheads.
func (c *Context) AblationInterval(intervals []int64) ([]IntervalPoint, error) {
	if len(intervals) == 0 {
		intervals = []int64{25_000_000, 50_000_000, 100_000_000, 200_000_000}
	}
	wls, err := ablationWorkloads(c)
	if err != nil {
		return nil, err
	}
	out := make([]IntervalPoint, 0, len(intervals))
	for _, iv := range intervals {
		var save float64
		var calls int64
		for _, wl := range wls {
			cfg := c.simConfig(rm.RM3, perfmodel.Model3, false, false)
			cfg.Interval = iv
			s, r, err := c.savings(wl.Apps, cfg)
			if err != nil {
				return nil, err
			}
			save += s / float64(len(wls))
			calls += r.RMCalled
		}
		out = append(out, IntervalPoint{Interval: iv, Saving: save, RMCalls: calls})
	}
	return out, nil
}

// ablationWorkloads returns a small fixed 4-core workload set spanning
// the scenarios.
func ablationWorkloads(c *Context) ([]workload.Workload, error) {
	var out []workload.Workload
	for _, s := range workload.Scenarios {
		wls, err := workload.Generate(s, 4, 1, c.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, wls...)
	}
	return out, nil
}

// probeApps picks one representative application per category.
func probeApps() ([]*bench.Benchmark, error) {
	var out []*bench.Benchmark
	for _, name := range []string{"mcf", "xalancbmk", "bwaves", "astar"} {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// ablationTraceLen bounds the detailed re-simulation cost of the
// hardware ablations.
const ablationTraceLen = 16384

// lmEstimateError runs one application's first phase at the baseline
// setting with a custom ATD and compares the extension's leading-miss
// estimates against detailed-simulation ground truth over all core
// sizes and a spread of allocations. It returns the summed relative
// error and the number of points.
func lmEstimateError(b *bench.Benchmark, indexBits int, shift uint) (float64, int, error) {
	p := b.Phases[0].Params
	insts := trace.Generate(p, ablationTraceLen*2)
	full := cpu.Annotate(insts)
	tail := full.Tail(ablationTraceLen)

	d, err := atd.NewWithIndexBits(shift, indexBits)
	if err != nil {
		return 0, 0, err
	}
	full.WarmATD(d, ablationTraceLen)
	cpu.Run(tail, cpu.RunConfig{
		Core: config.SizeM, Ways: config.BaseWays, FreqGHz: config.FBaseGHz, ATD: d,
	})

	var errSum float64
	var n int
	for _, cs := range config.Sizes {
		for _, w := range []int{2, 5, 8, 12, 16} {
			truth := cpu.Run(tail, cpu.RunConfig{
				Core: cs, Ways: w, FreqGHz: config.FBaseGHz,
			})
			if truth.LeadingMisses == 0 {
				continue
			}
			est := float64(d.LeadingMisses(cs, w))
			errSum += math.Abs(est-float64(truth.LeadingMisses)) / float64(truth.LeadingMisses)
			n++
		}
	}
	return errSum, n, nil
}

// missCurveError compares a sampled ATD's miss curve against a
// full-profiling ATD over the same run.
func missCurveError(b *bench.Benchmark, shift uint) (float64, int, error) {
	p := b.Phases[0].Params
	insts := trace.Generate(p, ablationTraceLen*2)
	full := cpu.Annotate(insts)
	tail := full.Tail(ablationTraceLen)

	exact := atd.MustNew(0)
	sampled, err := atd.New(shift)
	if err != nil {
		return 0, 0, err
	}
	full.WarmATD(exact, ablationTraceLen)
	full.WarmATD(sampled, ablationTraceLen)
	rc := cpu.RunConfig{Core: config.SizeM, Ways: config.BaseWays, FreqGHz: config.FBaseGHz, ATD: exact}
	cpu.Run(tail, rc)
	rc.ATD = sampled
	cpu.Run(tail, rc)

	var errSum float64
	var n int
	for w := config.MinWays; w <= config.MaxWays; w++ {
		truth := float64(exact.Misses(w))
		if truth == 0 {
			continue
		}
		errSum += math.Abs(float64(sampled.Misses(w))-truth) / truth
		n++
	}
	return errSum, n, nil
}

// RenderAblation prints all four studies.
func RenderAblation(w io.Writer, bits []IndexBitsPoint, sampling []SamplingPoint,
	alphas []AlphaPoint, intervals []IntervalPoint) {
	fmt.Fprintln(w, "ABLATION: instruction-index width (paper Section III-E future work)")
	for _, p := range bits {
		fmt.Fprintf(w, "  %2d bits: mean LM estimate error %6.1f%%\n", p.Bits, p.LMError*100)
	}
	fmt.Fprintln(w, "ABLATION: ATD set sampling")
	for _, p := range sampling {
		fmt.Fprintf(w, "  1/%-2d sets: miss-curve error %5.1f%%, LM error %6.1f%%\n",
			1<<p.Shift, p.MissCurveError*100, p.LMError*100)
	}
	fmt.Fprintln(w, "ABLATION: QoS relaxation α (Eq. 3)")
	for _, p := range alphas {
		fmt.Fprintf(w, "  α=%.2f: saving %6.2f%%, violation rate %.3f\n",
			p.Alpha, p.Saving*100, p.Violation)
	}
	fmt.Fprintln(w, "ABLATION: RM interval length")
	for _, p := range intervals {
		fmt.Fprintf(w, "  %4dM instructions: saving %6.2f%% (%d RM invocations)\n",
			p.Interval/1_000_000, p.Saving*100, p.RMCalls)
	}
}

// RenderGlobalOptAblation prints the optimiser-strategy comparison.
func RenderGlobalOptAblation(w io.Writer, points []GlobalOptPoint) {
	fmt.Fprintln(w, "ABLATION: global optimisation strategy")
	for _, p := range points {
		fmt.Fprintf(w, "  %-16s saving %6.2f%%\n", p.Strategy, p.Saving*100)
	}
}
