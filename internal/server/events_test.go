package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"

	"qosrm/internal/api"
	"qosrm/internal/faultinject"
	"qosrm/internal/obs"
	"qosrm/internal/scenario"
	"qosrm/internal/sim"
)

// traceEvents runs spec in-process with a capturing trace and returns
// the exact interval-event sequence the engine emits. The engine is
// deterministic, so this is the ground truth a streamed job must match.
func traceEvents(t *testing.T, spec scenario.Spec) []sim.Event {
	t.Helper()
	var ws sim.RunWorkspace
	var events []sim.Event
	_, err := scenario.RunTraced(context.Background(), sharedDB(t), &spec, &ws, func(e sim.Event) {
		e.Allocations = append([]int(nil), e.Allocations...)
		events = append(events, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("spec produced no interval events; the stream tests need a non-trivial scenario")
	}
	return events
}

// readStream consumes a job's event stream until its terminal frame and
// returns every frame in order.
func readStream(t *testing.T, url string) []api.JobEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type %q, want application/x-ndjson", ct)
	}
	var frames []api.JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		var fr api.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, fr)
		if fr.Type != api.JobEventInterval {
			return frames
		}
	}
	t.Fatalf("stream ended without a terminal frame (%d frames, scan err %v)", len(frames), sc.Err())
	return nil
}

// TestJobEventsFastConsumer is the fidelity half of the streaming
// contract: with a ring large enough for the whole sweep, a subscriber
// receives every interval event of the job, in order, with sequential
// seq numbers, zero drops, and field-for-field equal to what an
// in-process traced run of the same spec emits — then a clean "done"
// terminal frame.
func TestJobEventsFastConsumer(t *testing.T) {
	spec := testSpec("events-fast")
	want := traceEvents(t, spec)
	_, ts := newTestServer(t, Options{Workers: 1, EventBuffer: len(want) + 8})

	var st JobStatus
	code, raw := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Specs: []scenario.Spec{spec}}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}
	frames := readStream(t, ts.URL+"/v1/jobs/"+st.ID+"/events")

	last := frames[len(frames)-1]
	if last.Type != api.JobEventDone || last.Error != "" {
		t.Fatalf("terminal frame %+v, want done", last)
	}
	intervals := frames[:len(frames)-1]
	if len(intervals) != len(want) {
		t.Fatalf("streamed %d interval events, in-process trace has %d", len(intervals), len(want))
	}
	for i, fr := range intervals {
		w := want[i]
		if fr.Dropped != 0 {
			t.Fatalf("frame %d: dropped %d with an oversized ring", i, fr.Dropped)
		}
		if fr.Seq != uint64(i) {
			t.Fatalf("frame %d: seq %d, want %d", i, fr.Seq, i)
		}
		if fr.Spec != 0 || fr.Name != spec.Name {
			t.Fatalf("frame %d tagged (%d, %q), want (0, %q)", i, fr.Spec, fr.Name, spec.Name)
		}
		if fr.TimeNs != w.TimeNs || fr.Core != w.Core || fr.Bench != w.Bench ||
			fr.Interval != w.Interval || fr.Phase != w.Phase ||
			fr.Freq != w.Setting.Freq || fr.Ways != w.Setting.Ways ||
			!reflect.DeepEqual(fr.Allocations, w.Allocations) {
			t.Fatalf("frame %d differs from in-process trace:\n got %+v\nwant %+v", i, fr, w)
		}
	}
	if last.Seq != uint64(len(want)) {
		t.Fatalf("terminal seq %d, want %d", last.Seq, len(want))
	}
}

// TestJobEventsSSE pins the negotiated framing: an Accept header naming
// text/event-stream switches the same frames to "data: <json>\n\n".
func TestJobEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id := submitAndWait(t, ts.URL, "events-sse")

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type %q", ct)
	}
	var intervals int
	var terminal *api.JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("SSE line without data prefix: %q", line)
		}
		var fr api.JobEvent
		if err := json.Unmarshal([]byte(data), &fr); err != nil {
			t.Fatalf("bad SSE frame %q: %v", data, err)
		}
		if fr.Type == api.JobEventInterval {
			intervals++
			continue
		}
		terminal = &fr
		break
	}
	if terminal == nil || terminal.Type != api.JobEventDone {
		t.Fatalf("no done terminal over SSE (got %+v after %d intervals)", terminal, intervals)
	}
	if intervals == 0 {
		t.Fatal("no interval frames over SSE")
	}
}

// TestJobEventsLateSubscriberSeesDropped is the overrun half of the
// streaming contract: the job ran to completion against a 2-slot ring
// with nobody reading — the engine is never blocked by subscribers,
// stalled or absent — and a subscriber arriving afterwards gets exactly
// the 2 surviving events with the overwritten count in dropped.
func TestJobEventsLateSubscriberSeesDropped(t *testing.T) {
	spec := testSpec("events-dropped")
	want := traceEvents(t, spec)
	if len(want) <= 2 {
		t.Fatalf("spec emits %d events, need > 2 to overrun the ring", len(want))
	}
	_, ts := newTestServer(t, Options{Workers: 1, EventBuffer: 2})
	id := submitAndWait(t, ts.URL, spec.Name)

	frames := readStream(t, ts.URL+"/v1/jobs/"+id+"/events")
	if len(frames) != 3 {
		t.Fatalf("late subscriber got %d frames, want 2 intervals + terminal", len(frames))
	}
	lost := uint64(len(want) - 2)
	for i, fr := range frames[:2] {
		if fr.Dropped != lost || fr.Seq != lost+uint64(i) {
			t.Fatalf("frame %d: seq %d dropped %d, want seq %d dropped %d",
				i, fr.Seq, fr.Dropped, lost+uint64(i), lost)
		}
	}
	if term := frames[2]; term.Type != api.JobEventDone || term.Dropped != lost {
		t.Fatalf("terminal %+v, want done with dropped %d", term, lost)
	}
}

// TestJobEventsStalledConsumer holds a live stream open without reading
// a byte while the job runs. The publisher must never block on it: the
// job completes within the usual deadline, and the stream still ends
// with a terminal frame once the consumer finally drains it.
func TestJobEventsStalledConsumer(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, EventBuffer: 2})

	var st JobStatus
	code, raw := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Specs: []scenario.Spec{testSpec("events-stall")}}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Stall: no reads from resp.Body while the job runs to completion.
	deadline := time.Now().Add(2 * time.Minute)
	for st.State != JobDone && st.State != JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s with a stalled subscriber", st.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &st); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
	}
	if st.State != JobDone {
		t.Fatalf("job failed under a stalled subscriber: %+v", st)
	}

	// Drain: the stream must still terminate cleanly.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var last api.JobEvent
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		if last.Type != api.JobEventInterval {
			break
		}
	}
	if last.Type != api.JobEventDone {
		t.Fatalf("stalled stream ended with %+v, want done terminal", last)
	}
}

// TestJobEventsTerminalFailed: a job whose scenario errors (retries
// disabled) closes its stream with a "failed" terminal carrying the
// error text.
func TestJobEventsTerminalFailed(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Enable("server.worker", "error*1"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1, JobRetries: -1})

	var st JobStatus
	code, raw := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Specs: []scenario.Spec{testSpec("events-fail")}}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}
	frames := readStream(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	last := frames[len(frames)-1]
	if last.Type != api.JobEventFailed || last.Error == "" {
		t.Fatalf("terminal %+v, want failed with error text", last)
	}
}

// TestJobEventsExpiredJob: once the TTL GC collects a finished job, its
// event stream 404s like every other job endpoint.
func TestJobEventsExpiredJob(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	srv, ts := newTestServer(t, Options{Workers: 1, JobTTL: time.Hour, clock: clock.now})
	id := submitAndWait(t, ts.URL, "events-ttl")

	clock.advance(2 * time.Hour)
	if n := srv.gcFinishedJobs(clock.now()); n != 1 {
		t.Fatalf("expired %d jobs, want 1", n)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired job stream status %d, want 404", resp.StatusCode)
	}
}

// TestJobEventsClientDisconnect: cancelling the request mid-stream ends
// the handler. The job here never finishes (it is fabricated and never
// queued), so only the client's departure can end the stream — if the
// handler leaked, the test server's Cleanup would hang on outstanding
// requests and the test would time out.
func TestJobEventsClientDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})
	j := srv.newJob("stuck", "", []scenario.Spec{testSpec("events-stuck")}, time.Unix(1_700_000_000, 0))
	srv.mu.Lock()
	srv.jobs[j.id] = j
	srv.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/stuck/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	cancel()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("read survived a cancelled request")
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/nosuch/events", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job stream status %d, want 404", code)
	}
}

// TestTracePathZeroAlloc pins the no-subscriber hot path: after the
// ring's slots have been written once, forwarding an engine event into
// the ring — the per-interval work a traced job adds — allocates
// nothing. The server here has the default discard logger, matching the
// acceptance condition that tracing with default logging is free of
// per-event garbage.
func TestTracePathZeroAlloc(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1, EventBuffer: 4})
	j := srv.newJob("pin", "", []scenario.Spec{testSpec("events-pin")}, time.Unix(1_700_000_000, 0))

	ev := sim.Event{TimeNs: 1e6, Core: 1, Bench: "mcf", Interval: 3, Phase: 2, Allocations: []int{12, 8}}
	for i := 0; i < 8; i++ {
		j.traces[0](ev) // warm every ring slot's Allocations backing
	}
	if allocs := testing.AllocsPerRun(200, func() { j.traces[0](ev) }); allocs != 0 {
		t.Fatalf("trace publish path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestRequestIDEchoAndMint: the server echoes a caller-provided
// X-Qosrm-Request-Id verbatim and mints a 16-hex one when absent.
func TestRequestIDEchoAndMint(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.RequestIDHeader, "req-abc123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.RequestIDHeader); got != "req-abc123" {
		t.Fatalf("echoed request id %q, want req-abc123", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.RequestIDHeader); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Fatalf("minted request id %q, want 16 hex chars", got)
	}
}

// TestJobStatusTimeline: a finished job's status carries the full
// submitted→started→finished timeline in order.
func TestJobStatusTimeline(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	var st JobStatus
	code, raw := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Specs: []scenario.Spec{testSpec("timeline")}}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}
	if st.SubmittedAt.IsZero() {
		t.Fatal("202 response missing submitted_at")
	}
	deadline := time.Now().Add(2 * time.Minute)
	for st.State != JobDone && st.State != JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &st); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
	}
	if st.SubmittedAt.IsZero() || st.StartedAt.IsZero() || st.FinishedAt.IsZero() {
		t.Fatalf("incomplete timeline: %+v", st)
	}
	if st.StartedAt.Before(st.SubmittedAt) || st.FinishedAt.Before(st.StartedAt) {
		t.Fatalf("timeline out of order: submitted %v started %v finished %v",
			st.SubmittedAt, st.StartedAt, st.FinishedAt)
	}
}

// TestMetricsExpositionLint scrapes /metrics after exercising the
// synchronous, job, stream and error paths, and runs the scrape through
// the exposition linter: every family typed, counters ending _total, no
// duplicate series, histograms cumulative — plus at least the four
// histogram families the acceptance criteria name.
func TestMetricsExpositionLint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code, raw := postJSON(t, ts.URL+"/v1/savings", SavingsRequest{Apps: []string{"mcf"}, RM: "RM1"}, nil); code != http.StatusOK {
		t.Fatalf("savings status %d: %s", code, raw)
	}
	id := submitAndWait(t, ts.URL, "metrics-lint")
	readStream(t, ts.URL+"/v1/jobs/"+id+"/events")
	getJSON(t, ts.URL+"/v1/jobs/nosuch", nil) // a 404 so error paths are in the scrape too

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	for _, err := range obs.LintExposition(bytes.NewReader(body)) {
		t.Errorf("exposition lint: %v", err)
	}
	if n := len(regexp.MustCompile(`(?m)^# TYPE \S+ histogram$`).FindAll(body, -1)); n < 4 {
		t.Errorf("%d histogram families exposed, want >= 4:\n%s", n, body)
	}
	text := string(body)
	if !strings.Contains(text, "qosrmd_jobs_forward_failed_total") {
		t.Error("renamed forward-failure counter missing from /metrics")
	}
	if strings.Contains(text, "qosrmd_job_forward_failures_total") {
		t.Error("old qosrmd_job_forward_failures_total name still exposed")
	}
}
