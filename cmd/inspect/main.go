// Command inspect dumps one application's view of the configuration
// space: the database's ground-truth behaviour, the ATD observations,
// and the local optimisation's energy curve E*(w) with the chosen
// c*(w)/f*(w) settings under each resource manager — the quantities the
// paper's Figure 3 pipeline passes between its stages.
//
// Usage:
//
//	inspect -app mcf [-phase 0] [-model 3] [-db qosrm-db.gz]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inspect: ")
	app := flag.String("app", "mcf", "application to inspect")
	phase := flag.Int("phase", 0, "phase index")
	model := flag.Int("model", 3, "performance model for the RM curves (1-3)")
	dbPath := flag.String("db", "qosrm-db.gz", "database cache path (built if missing)")
	flag.Parse()

	b, err := bench.ByName(*app)
	if err != nil {
		log.Fatal(err)
	}
	if *phase < 0 || *phase >= len(b.Phases) {
		log.Fatalf("%s has phases 0..%d", b.Name, len(b.Phases)-1)
	}
	if *model < 1 || *model > 3 {
		log.Fatalf("model must be 1-3")
	}
	d, err := db.LoadOrBuild(*dbPath, bench.Suite(), db.Options{})
	if err != nil {
		log.Fatal(err)
	}

	cat, m, err := d.Classify(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s phase %d/%d (weight %.2f) — category %s (intended %s)\n",
		b.Name, *phase, len(b.Phases), b.Phases[*phase].Weight, cat, b.Category)
	fmt.Printf("MPKI at 4/8/12 ways: %.2f / %.2f / %.2f   MLP on S/M/L: %.2f / %.2f / %.2f\n\n",
		m.MPKI4, m.MPKI8, m.MPKI12, m.MLPS, m.MLPM, m.MLPL)

	base := config.Baseline()
	st, err := d.Stats(b.Name, *phase, base)
	if err != nil {
		log.Fatal(err)
	}
	n := st.Instructions
	fmt.Printf("baseline (%s): TPI %.3f ns (base %.3f, branch %.3f, cache %.3f, mem %.3f)\n",
		base, st.TPI(), st.BaseNs/n, st.BranchNs/n, st.CacheNs/n, st.MemNs/n)
	fmt.Printf("LLC: %.1f accesses/kinstr, %.1f misses/kinstr, %.1f writebacks/kinstr, MLP %.2f\n\n",
		st.LLCAccesses/n*1000, st.LLCMisses/n*1000, st.Writebacks/n*1000, st.MLP)

	fmt.Println("ground truth across ways (M core, 2 GHz):")
	fmt.Printf("  %4s %10s %10s %10s %10s\n", "w", "TPI (ns)", "MPKI", "WB/ki", "EPI (nJ)")
	for w := config.MinWays; w <= config.MaxWays; w++ {
		s, err := d.Stats(b.Name, *phase, config.Setting{Core: config.SizeM, Freq: config.BaseFreqIdx, Ways: w})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d %10.3f %10.2f %10.2f %10.3f\n",
			w, s.TPI(), s.LLCMisses/s.Instructions*1000, s.Writebacks/s.Instructions*1000,
			s.ActualEnergyJ(config.Setting{Core: config.SizeM, Freq: config.BaseFreqIdx, Ways: w}, 1)*1e9)
	}

	fmt.Printf("\nlocal optimisation curves (Model%d, statistics from the baseline interval):\n", *model)
	pred := &rm.ModelPredictor{
		Stats: perfmodel.FromDB(st, base),
		Model: perfmodel.Kind(*model),
	}
	for _, kind := range rm.Kinds {
		cv := rm.Localize(pred, kind, rm.Options{})
		fmt.Printf("  %s: ", kind)
		for wi, e := range cv.Energy {
			w := config.MinWays + wi
			if w%2 != 0 {
				continue
			}
			if math.IsInf(e, 1) {
				fmt.Printf("w%-2d:   --      ", w)
			} else {
				fmt.Printf("w%-2d:%5.2fnJ %s/%.2f  ", w, e*1e9, cv.Pick[wi].Core, cv.Pick[wi].FGHz())
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(-- = allocation infeasible under the QoS constraint; the pick shows c*(w)/f*(w))")
}
