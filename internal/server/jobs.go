package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"qosrm/internal/faultinject"
	"qosrm/internal/jobstore"
	"qosrm/internal/obs"
	"qosrm/internal/scenario"
	"qosrm/internal/sim"
)

// job is one asynchronous sweep: a batch of specs fanned out as
// per-scenario work items over the server's worker pool.
type job struct {
	id string
	// key is the Idempotency-Key the job was submitted under ("" when
	// none); immutable after creation.
	key   string
	specs []scenario.Spec

	// events buffers the job's interval-boundary trace for streaming
	// subscribers (GET /v1/jobs/{id}/events); traces holds one
	// pre-built sim trace callback per spec, constructed once at job
	// creation so the worker's hot path closes over nothing new.
	events *obs.Ring
	traces []func(sim.Event)
	// submittedAt is when this node admitted the job; immutable.
	submittedAt time.Time

	mu      sync.Mutex
	started int
	done    int
	reports []*scenario.Report
	errs    []error
	// startedAt is when a worker first picked up any of the job's
	// scenarios; finishedAt the completion instant of the last one. The
	// TTL GC collects the job once finishedAt has aged past
	// Options.JobTTL.
	startedAt  time.Time
	finishedAt time.Time
}

// newJob builds a job with its event ring and per-spec trace callbacks.
// Each callback forwards one sim.Event into the ring tagged with its
// spec; the obs.Event shell is reused per spec (specs run on at most one
// worker at a time) and Publish deep-copies, so the steady-state trace
// path allocates nothing.
func (s *Server) newJob(id, key string, specs []scenario.Spec, submittedAt time.Time) *job {
	j := &job{
		id:          id,
		key:         key,
		specs:       specs,
		reports:     make([]*scenario.Report, len(specs)),
		errs:        make([]error, len(specs)),
		events:      obs.NewRing(s.opts.EventBuffer),
		traces:      make([]func(sim.Event), len(specs)),
		submittedAt: submittedAt,
	}
	for i := range specs {
		shell := &obs.Event{Spec: i, Name: specs[i].Name}
		j.traces[i] = func(e sim.Event) {
			shell.TimeNs = e.TimeNs
			shell.Core = e.Core
			shell.Bench = e.Bench
			shell.Interval = e.Interval
			shell.Phase = e.Phase
			shell.Freq = e.Setting.Freq
			shell.Ways = e.Setting.Ways
			// Aliasing the engine's reused buffer is fine: Publish
			// deep-copies before returning.
			shell.Allocations = e.Allocations
			j.events.Publish(shell)
		}
	}
	return j
}

// joinErrs joins the non-nil error texts ("" when none). The caller
// must hold j.mu or otherwise have exclusive access to the slice.
func joinErrs(errs []error) string {
	var msgs []string
	for _, err := range errs {
		if err != nil {
			msgs = append(msgs, err.Error())
		}
	}
	return strings.Join(msgs, "; ")
}

// workItem is one scenario of one job, the unit the worker pool
// consumes. attempts counts how often a worker has already tried (and
// failed) this scenario, bounding retries at Options.JobRetries.
type workItem struct {
	j        *job
	idx      int
	attempts int
}

// status snapshots the job for the API.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID: j.id, Key: j.key, Total: len(j.specs), Done: j.done,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
	}
	switch {
	case j.done == len(j.specs):
		st.State = JobDone
		if msg := joinErrs(j.errs); msg != "" {
			st.State = JobFailed
			st.Error = msg
		}
		st.Reports = append([]*scenario.Report(nil), j.reports...)
	case j.started > 0:
		st.State = JobRunning
	default:
		st.State = JobQueued
	}
	return st
}

// complete records one scenario's outcome at time now and reports
// whether this completion finished the whole job (exactly one
// completion does, which keeps the finished-jobs metric race-free and
// stamps finishedAt exactly once).
func (j *job) complete(idx int, rep *scenario.Report, err error, now time.Time) bool {
	j.mu.Lock()
	j.reports[idx] = rep
	j.errs[idx] = err
	j.done++
	finished := j.done == len(j.specs)
	if finished {
		j.finishedAt = now
	}
	var term *obs.Terminal
	if finished && j.events != nil {
		term = &obs.Terminal{Kind: obs.TerminalDone}
		if msg := joinErrs(j.errs); msg != "" {
			term.Kind = obs.TerminalFailed
			term.Err = msg
		}
	}
	j.mu.Unlock()
	// Close outside j.mu: the ring has its own lock and wakes stream
	// handlers that immediately call j.status() (which takes j.mu).
	if term != nil {
		j.events.Close(*term)
	}
	return finished
}

// finishedTime returns when the job finished; ok is false while it is
// still queued or running.
func (j *job) finishedTime() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishedAt, j.done == len(j.specs)
}

// begin marks one scenario as picked up by a worker at time now; the
// first pickup stamps the job's startedAt. It returns how long the
// scenario waited in the queue.
func (j *job) begin(now time.Time) time.Duration {
	j.mu.Lock()
	j.started++
	if j.startedAt.IsZero() {
		j.startedAt = now
	}
	j.mu.Unlock()
	return now.Sub(j.submittedAt)
}

// journalEvents renders the job's current state as the minimal event
// sequence that replays back to it: one submit plus a finish per
// completed scenario. Compaction rewrites the journal from these.
func (j *job) journalEvents() []jobstore.Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	evs := []jobstore.Event{{Type: jobstore.EventSubmit, Job: j.id, Key: j.key, Specs: j.specs}}
	for i := range j.specs {
		if j.reports[i] == nil && j.errs[i] == nil {
			continue
		}
		ev := jobstore.Event{Type: jobstore.EventFinish, Job: j.id, Index: i, Report: j.reports[i]}
		if j.errs[i] != nil {
			ev.Error = j.errs[i].Error()
		}
		evs = append(evs, ev)
	}
	return evs
}

// Submission rejection sentinels; handleJobSubmit maps them to the
// machine-readable Reason* envelope fields.
var (
	// errQueueFull: the batch does not fit the bounded queue right now.
	errQueueFull = errors.New("job queue full")
	// errClosed: the server is draining.
	errClosed = errors.New("server shutting down")
	// errJournal: the submission could not be made durable.
	errJournal = errors.New("job journal write failed")
)

// submit registers a new job and enqueues its scenarios. Queue capacity
// for the whole batch is reserved atomically up front, so a job is
// either fully queued or rejected — never half-admitted. A non-empty
// idempotency key that matches an existing job short-circuits to that
// job with replayed=true. With a journal, the submit event is appended
// (and fsynced) before the job becomes visible: every acknowledged job
// is recoverable.
func (s *Server) submit(specs []scenario.Spec, key string) (j *job, replayed bool, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, errClosed
	}
	if key != "" {
		if prev := s.jobs[s.keys[key]]; prev != nil {
			s.mu.Unlock()
			return prev, true, nil
		}
	}
	if s.queued+len(specs) > s.opts.QueueDepth {
		queued := s.queued
		s.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %d queued of %d, %d requested",
			errQueueFull, queued, s.opts.QueueDepth, len(specs))
	}
	s.jobSeq++
	j = s.newJob(fmt.Sprintf("j%d", s.jobSeq), key, specs, s.now())
	if s.journal != nil {
		ev := jobstore.Event{Type: jobstore.EventSubmit, Job: j.id, Key: key, Specs: specs}
		if aerr := s.journal.Append(ev); aerr != nil {
			// Not admitted: the id sequence keeps its gap, nothing was
			// registered, and the caller gets a non-retryable 500.
			s.mu.Unlock()
			s.metrics.journalErrors.Add(1)
			return nil, false, fmt.Errorf("%w: %v", errJournal, aerr)
		}
	}
	s.queued += len(specs)
	s.jobs[j.id] = j
	if key != "" {
		s.keys[key] = j.id
	}
	s.mu.Unlock()

	// The channel holds at least QueueDepth items, and the reservation
	// above guarantees the free slots: these sends never block.
	for i := range specs {
		s.queue <- workItem{j: j, idx: i}
	}
	s.metrics.jobsSubmitted.Add(1)
	s.metrics.specsQueued.Add(int64(len(specs)))
	return j, false, nil
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// runScenario executes one scenario, converting a worker panic into an
// ordinary scenario error so one poisoned spec cannot take down the
// pool (the goroutine, its workspace, and every queued scenario behind
// it). The "server.worker" failpoint injects errors, stalls or panics
// here for the chaos tests.
func (s *Server) runScenario(spec *scenario.Spec, ws *sim.RunWorkspace, trace func(sim.Event)) (rep *scenario.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.workerPanics.Add(1)
			rep, err = nil, fmt.Errorf("worker panic: %v", r)
		}
	}()
	if err := faultinject.Eval("server.worker"); err != nil {
		return nil, err
	}
	return scenario.RunTraced(s.ctx, s.db, spec, ws, trace)
}

// worker is one pool goroutine: it owns a dynamic-engine workspace that
// survives across all scenarios it executes (the same per-worker reuse
// as scenario.Sweep) and runs items until the server closes. Runs are
// bound to the server's lifecycle context, so Close aborts in-flight
// simulations promptly.
//
// Failure handling: a scenario that errors is retried up to
// Options.JobRetries times by re-enqueueing its work item (the queue
// slot it occupied is provably free, so the send cannot block); only
// the final failure is recorded. A scenario cancelled by shutdown is
// dropped without recording anything — with a journal it has no finish
// event, so the next boot re-enqueues it.
func (s *Server) worker() {
	defer s.wg.Done()
	var ws sim.RunWorkspace
	for {
		select {
		case <-s.ctx.Done():
			return
		case it := <-s.queue:
			if it.attempts == 0 {
				// Only the first pickup starts the scenario; a retried
				// item re-entering the queue is the same unit of work,
				// so counting it again would let job.started exceed
				// len(specs) and overstate progress in the job status.
				s.metrics.jobQueueWait.Observe(it.j.begin(s.now()))
			}
			if s.journal != nil && it.attempts == 0 {
				ev := jobstore.Event{Type: jobstore.EventStart, Job: it.j.id, Index: it.idx}
				if err := s.journal.Append(ev); err != nil {
					s.metrics.journalErrors.Add(1)
				}
			}
			var trace func(sim.Event)
			if it.j.traces != nil {
				trace = it.j.traces[it.idx]
			}
			t0 := s.now()
			rep, err := s.runScenario(&it.j.specs[it.idx], &ws, trace)
			s.metrics.jobExec.Observe(s.now().Sub(t0))
			if err != nil {
				if s.ctx.Err() != nil && errors.Is(err, context.Canceled) {
					// Shutdown raced the run: leave the scenario
					// unfinished (and unjournaled) so replay re-runs it.
					return
				}
				if it.attempts < s.opts.JobRetries {
					it.attempts++
					s.metrics.specsRetried.Add(1)
					select {
					case s.queue <- it:
					case <-s.ctx.Done():
						return
					}
					continue
				}
			}
			if s.journal != nil {
				ev := jobstore.Event{Type: jobstore.EventFinish, Job: it.j.id, Index: it.idx, Report: rep}
				if err != nil {
					ev.Error = err.Error()
				}
				if aerr := s.journal.Append(ev); aerr != nil {
					s.metrics.journalErrors.Add(1)
				}
			}
			finished := it.j.complete(it.idx, rep, err, s.now())
			if err != nil {
				s.metrics.specsFailed.Add(1)
			}
			s.metrics.specsRun.Add(1)
			if rep != nil {
				s.metrics.countPolicy(rep.Policy)
			}
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
			if finished {
				s.metrics.jobsFinished.Add(1)
			}
		}
	}
}
