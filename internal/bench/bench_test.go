package bench

import (
	"testing"

	"qosrm/internal/trace"
)

func TestSuiteComposition(t *testing.T) {
	s := Suite()
	if len(s) != 27 {
		t.Fatalf("suite has %d applications, want 27 (Section IV-C)", len(s))
	}
	counts := map[Category]int{}
	names := map[string]bool{}
	for _, b := range s {
		counts[b.Category]++
		if names[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		names[b.Name] = true
	}
	// Table II: 5 CS-PS, 7 CS-PI, 7 CI-PS, 8 CI-PI.
	want := map[Category]int{CSPS: 5, CSPI: 7, CIPS: 7, CIPI: 8}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("%s has %d applications, want %d", cat, counts[cat], n)
		}
	}
}

func TestTableIIMembership(t *testing.T) {
	// Spot-check the paper's Table II assignments.
	want := map[string]Category{
		"mcf": CSPS, "sphinx3": CSPS,
		"gcc": CSPI, "xalancbmk": CSPI,
		"bwaves": CIPS, "libquantum": CIPS,
		"lbm": CIPI, "povray": CIPI, "astar": CIPI,
	}
	for name, cat := range want {
		b, err := ByName(name)
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if b.Category != cat {
			t.Errorf("%s intended category %s, want %s", name, b.Category, cat)
		}
	}
}

func TestSuiteValidates(t *testing.T) {
	for _, b := range Suite() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestPhaseWeightsMatchSequence(t *testing.T) {
	// The SimPoint-style weights must equal the composition of the
	// deterministic phase sequence (they drive Fig. 7's weighting).
	for _, b := range Suite() {
		counts := make([]int, len(b.Phases))
		for _, p := range b.Sequence {
			counts[p]++
		}
		for i, ph := range b.Phases {
			got := float64(counts[i]) / float64(len(b.Sequence))
			if diff := got - ph.Weight; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s phase %d: sequence share %.3f, weight %.3f", b.Name, i, got, ph.Weight)
			}
		}
	}
}

func TestPhaseAtWraps(t *testing.T) {
	b, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(b.Sequence))
	for i := int64(0); i < 3*n; i++ {
		if b.PhaseAt(i) != b.Sequence[i%n] {
			t.Fatalf("PhaseAt(%d) does not wrap", i)
		}
	}
	empty := &Benchmark{Name: "x", Phases: []Phase{{Weight: 1}}, TotalInstr: 1}
	if empty.PhaseAt(5) != 0 {
		t.Error("empty sequence should pin phase 0")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mcf"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestNamesMatchesSuite(t *testing.T) {
	names := Names()
	s := Suite()
	if len(names) != len(s) {
		t.Fatal("Names length mismatch")
	}
	for i := range names {
		if names[i] != s[i].Name {
			t.Fatal("Names order mismatch")
		}
	}
}

func TestByCategoryPartitions(t *testing.T) {
	m := ByCategory()
	total := 0
	for _, bs := range m {
		total += len(bs)
	}
	if total != len(Suite()) {
		t.Fatalf("ByCategory covers %d of %d", total, len(Suite()))
	}
}

func TestSeedsDiffer(t *testing.T) {
	// Every phase of every benchmark must have a distinct seed so the
	// streams are not accidentally identical.
	seen := map[int64]string{}
	for _, b := range Suite() {
		for i, p := range b.Phases {
			if prev, dup := seen[p.Params.Seed]; dup {
				t.Errorf("%s phase %d shares a seed with %s", b.Name, i, prev)
			}
			seen[p.Params.Seed] = b.Name
		}
	}
}

func TestLongestApplication(t *testing.T) {
	// Section IV-D: the longest application runs 4146 B instructions.
	var longest int64
	for _, b := range Suite() {
		if b.TotalInstr > longest {
			longest = b.TotalInstr
		}
	}
	if longest != 4_146_000_000_000 {
		t.Fatalf("longest application runs %d instructions, want 4146 B", longest)
	}
}

func TestClassifyRules(t *testing.T) {
	// Threshold edge cases of Section IV-C.
	cases := []struct {
		name                          string
		mpki4, mpki8, mpki12, s, m, l float64
		want                          Category
	}{
		{"clear CS-PS", 20, 10, 5, 1.5, 3, 5, CSPS},
		{"clear CS-PI", 20, 10, 5, 1.1, 1.2, 1.3, CSPI},
		{"clear CI-PS", 10, 10, 10, 1.5, 3, 5, CIPS},
		{"clear CI-PI", 10, 10, 10, 1.1, 1.2, 1.3, CIPI},
		{"MPKI below floor", 0.3, 0.1, 0.05, 1.1, 1.2, 1.3, CIPI},
		{"MLP below floor", 10, 10, 10, 1.0, 1.5, 1.9, CIPI},
		{"variation below 20%", 11, 10, 9.5, 1.1, 1.2, 1.3, CIPI},
		{"variation just above 20%", 12.1, 10, 10, 1.1, 1.2, 1.3, CSPI},
		{"MLP variation below 30%", 10, 10, 10, 2.8, 3.0, 3.6, CIPI},
		{"MLP variation above 30%", 10, 10, 10, 2.0, 3.0, 3.5, CIPS},
	}
	for _, c := range cases {
		if got := Classify(c.mpki4, c.mpki8, c.mpki12, c.s, c.m, c.l); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestCategoryPredicates(t *testing.T) {
	if !CSPS.CacheSensitive() || !CSPS.ParallelismSensitive() {
		t.Error("CSPS predicates wrong")
	}
	if !CSPI.CacheSensitive() || CSPI.ParallelismSensitive() {
		t.Error("CSPI predicates wrong")
	}
	if CIPS.CacheSensitive() || !CIPS.ParallelismSensitive() {
		t.Error("CIPS predicates wrong")
	}
	if CIPI.CacheSensitive() || CIPI.ParallelismSensitive() {
		t.Error("CIPI predicates wrong")
	}
	if CSPS.String() != "CS-PS" || CIPI.String() != "CI-PI" {
		t.Error("category names wrong")
	}
}

func TestValidateCatchesBadBenchmarks(t *testing.T) {
	good := Suite()[0]
	bad := []*Benchmark{
		{Name: "", Phases: good.Phases, TotalInstr: 1},
		{Name: "x", Phases: nil, TotalInstr: 1},
		{Name: "x", Phases: []Phase{{Weight: 0, Params: good.Phases[0].Params}}, TotalInstr: 1},
		{Name: "x", Phases: []Phase{{Weight: 0.5, Params: good.Phases[0].Params}}, TotalInstr: 1},
		{Name: "x", Phases: []Phase{{Weight: 1, Params: trace.Params{}}}, TotalInstr: 1},
		{Name: "x", Phases: []Phase{{Weight: 1, Params: good.Phases[0].Params}}, Sequence: []int{3}, TotalInstr: 1},
		{Name: "x", Phases: []Phase{{Weight: 1, Params: good.Phases[0].Params}}, TotalInstr: 0},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
