// The unified event-driven engine. One loop executes every workload
// shape the package offers — the paper's static mixes (a degenerate
// one-job-per-core schedule, see StaticWorkload), multiprogrammed churn
// with arrivals and departures, per-app QoS relaxation, mid-run QoS
// steps, queue priorities with preemption, and idle-way donation — and
// delegates every allocation decision to the run's rm.Policy. The
// pre-unification static and dynamic loops are retained verbatim in
// reference.go and the cross-seed property tests pin this engine
// bit-identical to both on their shared feature set.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/power"
	"qosrm/internal/rm"
)

// dynCore is the engine's per-core state: the shared interval machinery
// plus the queue position, the priority scheduler's bookkeeping and
// memoized self-pinned/donor curves.
type dynCore struct {
	core
	jobs    []Job
	next    int // strict-order queues: index of the next job to start
	slot    int // index of the running job; -1 while idle
	startNs float64
	depart  float64 // running job's departure time (0 = none)
	// baseAlpha is the relaxation jobs without an explicit Alpha inherit:
	// Config.Alpha until a QoS step overwrites it. explicitAlpha marks a
	// running job that carries its own Alpha, which QoS steps respect.
	baseAlpha     float64
	explicitAlpha bool

	// prioritized marks a queue with any non-zero Job.Priority: it runs
	// under the priority scheduler (done/susp below) instead of the
	// strict next cursor, whose behaviour it reproduces exactly when all
	// priorities tie.
	prioritized bool
	done        []bool      // job finished or departed
	susp        []suspState // saved progress of preempted jobs

	// pinnedCv caches pinnedCurve(setting) for the core's current
	// setting; idle cores and cores whose running job has not produced
	// statistics yet enter the global optimisation pinned there. donorCv
	// likewise caches the drained core's zero-energy donor curve.
	pinnedCv *rm.Curve
	pinnedAt config.Setting
	donorCv  *rm.Curve
	donorAt  config.Setting
}

// suspState is a preempted job's saved progress: everything start()
// restores so the job resumes where it stopped. The partial interval cut
// by the preemption keeps its energy and executed work but produces no
// QoS sample (the same rule as a mid-interval departure).
type suspState struct {
	suspended   bool
	executed    float64
	runExec     float64
	target      float64
	runLen      float64
	intervalIdx int64
	startNs     float64
	res         AppResult
	preemptions int
}

// pinnedSelf returns the curve that represents this core as immovable at
// its current setting.
func (c *dynCore) pinnedSelf() *rm.Curve {
	if c.pinnedCv == nil || c.pinnedAt != c.setting {
		c.pinnedCv = pinnedCurve(c.setting)
		c.pinnedAt = c.setting
	}
	return c.pinnedCv
}

// donorSelf returns the drained core's donor curve: any way count at
// zero energy, core size and frequency held at the final setting.
func (c *dynCore) donorSelf() *rm.Curve {
	if c.donorCv == nil || c.donorAt != c.setting {
		c.donorCv = donorCurve(c.setting)
		c.donorAt = c.setting
	}
	return c.donorCv
}

// active reports whether a job is currently executing on the core.
func (c *dynCore) active() bool { return c.slot >= 0 }

// pending reports whether any queued job has yet to finish or depart.
func (c *dynCore) pending() bool {
	if c.prioritized {
		for i := range c.jobs {
			if !c.done[i] && i != c.slot {
				return true
			}
		}
		return false
	}
	return c.next < len(c.jobs)
}

// drained reports a core whose queue is exhausted — the unified
// generalisation of the static engine's finished core.
func (c *dynCore) drained() bool { return !c.active() && !c.pending() }

// startable reports whether a pending job could start right now: the
// strict cursor's job has arrived, or (priority queues) any fresh job
// has arrived or a suspended one is waiting to resume.
func (c *dynCore) startable(now float64) bool {
	if c.prioritized {
		return c.pickJob(now) >= 0
	}
	return c.next < len(c.jobs) && c.jobs[c.next].ArrivalNs <= now
}

// pickJob selects the job a free prioritized core runs next at time now:
// the highest-priority available candidate (suspended jobs are always
// available; fresh ones once arrived), ties keeping queue order. -1 when
// nothing is available yet.
func (c *dynCore) pickJob(now float64) int {
	best := -1
	for i := range c.jobs {
		if c.done[i] || i == c.slot {
			continue
		}
		if !c.susp[i].suspended && c.jobs[i].ArrivalNs > now {
			continue
		}
		if best < 0 || c.jobs[i].Priority > c.jobs[best].Priority {
			best = i
		}
	}
	return best
}

// nextEventAt returns the earliest time the idle core could start a job
// (+Inf when the queue is drained).
func (c *dynCore) nextEventAt(now float64) float64 {
	if !c.prioritized {
		if c.next >= len(c.jobs) {
			return math.Inf(1)
		}
		if t := c.jobs[c.next].ArrivalNs; t > now {
			return t
		}
		return now // overdue arrivals start immediately
	}
	t := math.Inf(1)
	for i := range c.jobs {
		if c.done[i] || i == c.slot {
			continue
		}
		at := now
		if !c.susp[i].suspended && c.jobs[i].ArrivalNs > now {
			at = c.jobs[i].ArrivalNs
		}
		if at < t {
			t = at
		}
	}
	return t
}

// preemptAt returns the earliest arrival of a fresh job whose priority
// strictly exceeds the running job's — the core's next preemption point
// (ok=false when none is scheduled).
func (c *dynCore) preemptAt(now float64) (float64, bool) {
	run := c.jobs[c.slot].Priority
	t := math.Inf(1)
	for i := range c.jobs {
		if c.done[i] || i == c.slot || c.susp[i].suspended || c.jobs[i].Priority <= run {
			continue
		}
		at := c.jobs[i].ArrivalNs
		if at < now {
			at = now
		}
		if at < t {
			t = at
		}
	}
	return t, !math.IsInf(t, 1)
}

// clearRunning detaches the finished/departed/suspended job from the
// core; the core idles at its current setting.
func (c *dynCore) clearRunning() {
	c.slot = -1
	c.app = nil
	c.stats = nil
	c.depart = 0
	c.explicitAlpha = false
	c.hasCurve = false
	c.curve = nil
}

// suspend parks the running job so a higher-priority arrival can take
// the core; start() later restores the saved progress. Energy and
// executed instructions of the cut interval are already accounted; like
// a mid-interval departure it contributes no QoS sample.
func (c *dynCore) suspend() {
	s := &c.susp[c.slot]
	s.suspended = true
	s.executed = c.executed
	s.runExec = c.runExec
	s.target = c.target
	s.runLen = c.runLen
	s.intervalIdx = c.intervalIdx
	s.startNs = c.startNs
	s.res = c.res
	s.preemptions++
	c.clearRunning()
}

// startNext begins the core's next job at the core's current setting:
// the strict cursor's job, or the priority scheduler's pick (resuming a
// suspended job's saved progress). The caller guarantees startable(now).
// A job whose departure time already passed departs again immediately
// (as a zero-work departure event) on the next loop turn.
func (c *dynCore) startNext(d *db.DB, cfg *Config, now, interval float64) error {
	idx := c.next
	if c.prioritized {
		idx = c.pickJob(now)
	} else {
		c.next++
	}
	j := c.jobs[idx]
	c.slot = idx
	c.alpha = c.baseAlpha
	c.explicitAlpha = j.Alpha > 0
	if c.explicitAlpha {
		c.alpha = j.Alpha
	}
	c.app = j.App
	c.depart = j.DepartNs
	c.fin = false
	c.hasCurve = false
	c.curve = nil
	if c.prioritized && c.susp[idx].suspended {
		// Resume where the preemption cut the job off.
		s := &c.susp[idx]
		s.suspended = false
		c.startNs = s.startNs
		c.executed = s.executed
		c.runExec = s.runExec
		c.target = s.target
		c.runLen = s.runLen
		c.intervalIdx = s.intervalIdx
		c.res = s.res
	} else {
		c.startNs = now
		work := j.Work
		if work <= 0 {
			work = float64(config.LongestAppInstrPaper)
		}
		c.target = work / float64(cfg.Scale)
		c.executed = 0
		c.runExec = 0
		c.runLen = float64(j.App.TotalInstr) / float64(cfg.Scale)
		if c.runLen < interval {
			c.runLen = interval // an application runs at least one interval
		}
		c.intervalIdx = 0
		c.res = AppResult{Bench: j.App.Name}
	}
	c.phase = j.App.PhaseAt(c.intervalIdx)
	return c.startInterval(d, now)
}

// event kinds of the engine's main loop. Simultaneous events resolve by
// scan order: QoS steps apply before anything else at the same instant,
// then cores in index order; within one core a departure or preemption
// fires only when strictly earlier than the core's interval or target
// boundary (and a departure beats a preemption on an exact tie), so a
// job completing its work at the same instant wins.
const (
	evNone = iota
	evStep
	evDepart
	evBoundary
	evArrive
	evPreempt
)

// runState is the per-run working set of the RM invocation path, reused
// across interval boundaries so the hot path stays allocation-free: the
// curve cache memoizes Localize per measured (phase, setting) record,
// the policy instance carries the allocation optimizer's scratch state
// (the model3 reduction arena), and the slices are assembled in place on
// every invocation.
type runState struct {
	cache    rm.CurveCache
	policy   rm.Policy
	curves   []*rm.Curve
	settings []config.Setting
}

// RunWorkspace is the reusable working set of co-simulations: the
// per-core state, the sorted step schedule, the allocation policy's
// buffers and the Localize memoization, all retained across runs so a
// scenario sweep executes each spec (and its idle twin) without
// rebuilding them. The curve cache is scoped to one (database, manager,
// model, oracle) combination and resets itself when a run arrives with
// a different one; the policy instance is swapped when a run selects a
// different policy; everything else is config-independent. The zero
// value is ready. Not safe for concurrent use — use one workspace per
// sweep worker.
type RunWorkspace struct {
	steps []QoSStep
	cores []dynCore
	ptrs  []*dynCore
	st    runState
	// traceAlloc backs Event.Allocations for Config.Trace callbacks; it
	// is reused every interval, which is why traced events are only
	// valid during the callback (see Event.Allocations).
	traceAlloc []int

	// Scope of the memoized curves in st.cache.
	db      *db.DB
	rm      rm.Kind
	model   perfmodel.Kind
	perfect bool
	scoped  bool
}

// scope prepares the workspace's run state for a run against (d, cfg):
// buffers are resized for n cores, the policy instance is (re)built for
// the run's effective policy name, and the curve cache is dropped unless
// the run reads the same database with the same manager, model and
// oracle mode that filled it (alpha is part of every cache key, and the
// policy only consumes curves, so neither needs cache scoping).
// Idle-manager runs never invoke the RM, so they neither read nor
// re-scope the cache — a spec's idle twin leaves the managed
// configuration's memo intact.
func (w *RunWorkspace) scope(d *db.DB, cfg *Config, n int) (*runState, error) {
	if cfg.RM != rm.Idle &&
		(!w.scoped || w.db != d || w.rm != cfg.RM || w.model != cfg.Model || w.perfect != cfg.Perfect) {
		w.st.cache.Reset()
		w.db, w.rm, w.model, w.perfect = d, cfg.RM, cfg.Model, cfg.Perfect
		w.scoped = true
	}
	if name := cfg.policyName(); w.st.policy == nil || w.st.policy.Name() != name {
		p, err := rm.NewPolicy(name)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		w.st.policy = p
	}
	if cap(w.st.curves) < n {
		w.st.curves = make([]*rm.Curve, n)
		w.st.settings = make([]config.Setting, n)
	}
	w.st.curves = w.st.curves[:n]
	w.st.settings = w.st.settings[:n]
	return &w.st, nil
}

// reset prepares the core for a new run over queue q, retaining the
// memoized pinned/donor curves (they depend only on settings) and the
// priority scheduler's slices.
func (c *dynCore) reset(q Queue, cfg *Config) {
	*c = dynCore{jobs: q.Jobs, slot: -1, baseAlpha: cfg.Alpha,
		pinnedCv: c.pinnedCv, pinnedAt: c.pinnedAt,
		donorCv: c.donorCv, donorAt: c.donorAt,
		done: c.done, susp: c.susp}
	c.setting = config.Baseline()
	c.alpha = cfg.Alpha
	for i := range q.Jobs {
		if q.Jobs[i].Priority != 0 {
			c.prioritized = true
			break
		}
	}
	if c.prioritized {
		n := len(q.Jobs)
		if cap(c.done) < n {
			c.done = make([]bool, n)
			c.susp = make([]suspState, n)
		} else {
			c.done = c.done[:n]
			c.susp = c.susp[:n]
			clear(c.done)
			clear(c.susp)
		}
	}
}

// runEngine is the unified co-simulation loop; every public entry point
// (Run, RunDynamic, their Ctx/WS variants) routes through it.
func runEngine(ctx context.Context, d *db.DB, dyn Dynamic, cfg Config, ws *RunWorkspace) (*DynamicResult, error) {
	cfg.fill()
	if err := dyn.Validate(d); err != nil {
		return nil, err
	}
	n := len(dyn.Queues)
	interval := float64(cfg.Interval)
	if ws == nil {
		ws = &RunWorkspace{}
	}

	// Steps apply in time order; sort a reused copy so specs may list
	// them in any order (ties keep spec order).
	steps := append(ws.steps[:0], dyn.Steps...)
	ws.steps = steps
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].AtNs < steps[j].AtNs })

	if cap(ws.cores) < n {
		ws.cores = make([]dynCore, n)
		ws.ptrs = make([]*dynCore, n)
	}
	ws.cores = ws.cores[:n]
	cores := ws.ptrs[:n]
	for i, q := range dyn.Queues {
		c := &ws.cores[i]
		c.reset(q, &cfg)
		cores[i] = c
	}

	totalWays := config.TotalWays(n)
	res := &DynamicResult{}
	st, err := ws.scope(d, &cfg, n)
	if err != nil {
		return nil, err
	}
	now := 0.0
	stepIdx := 0

	for {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		// Once every queue is drained, remaining QoS steps have nothing
		// left to retarget: end the run instead of letting no-op step
		// events stretch the wall clock (and with it the uncore energy).
		busy := false
		for _, c := range cores {
			if c.active() || c.pending() {
				busy = true
				break
			}
		}
		if !busy {
			break
		}

		// Next event: the earliest QoS step, departure, preemption,
		// interval/target boundary or arrival across the system.
		// Candidates are scanned in a fixed order with strict
		// comparisons, so simultaneous events resolve deterministically:
		// the earlier-scanned candidate wins a tie — the step schedule
		// first, then cores in index order (within one core, a departure
		// or preemption fires only when strictly earlier than the core's
		// own boundary, and a departure beats a preemption on a tie).
		kind := evNone
		best := -1
		bestT := math.Inf(1)
		if stepIdx < len(steps) {
			kind, bestT = evStep, steps[stepIdx].AtNs
		}
		for i, c := range cores {
			if !c.active() {
				if t := c.nextEventAt(now); t < bestT {
					kind, best, bestT = evArrive, i, t
				}
				continue
			}
			remInterval := interval - c.intervalDone
			remTarget := c.target - c.executed
			rem := remInterval
			if remTarget < rem {
				rem = remTarget
			}
			kindC := evBoundary
			tC := now + c.stallNs + rem*c.stats.TPI()
			if c.depart > 0 && c.depart < tC {
				kindC, tC = evDepart, c.depart
			}
			if c.prioritized {
				if tp, ok := c.preemptAt(now); ok && tp < tC {
					kindC, tC = evPreempt, tp
				}
			}
			if tC < bestT {
				kind, best, bestT = kindC, i, tC
			}
		}
		if kind == evNone {
			break // nothing left but exhausted step/queue state
		}
		if bestT < now {
			bestT = now
		}

		// Advance every running core to bestT, charging energy.
		dt := bestT - now
		for _, c := range cores {
			if !c.active() {
				continue
			}
			d := dt
			if c.stallNs > 0 {
				// Overhead time passes without retiring instructions.
				s := c.stallNs
				if s > d {
					s = d
				}
				c.stallNs -= s
				d -= s
			}
			c.advance(d / c.stats.TPI())
		}
		now = bestT

		switch kind {
		case evStep:
			s := steps[stepIdx]
			stepIdx++
			// A step retargets the core's base relaxation and the running
			// job, unless that job carries its own explicit per-app
			// relaxation — an explicit alpha is a per-job contract.
			for i, c := range cores {
				if s.Core == -1 || s.Core == i {
					c.baseAlpha = s.Alpha
					if !c.explicitAlpha {
						c.alpha = s.Alpha
					}
				}
			}

		case evArrive:
			if err := cores[best].startNext(d, &cfg, now, interval); err != nil {
				return nil, err
			}

		case evPreempt:
			// A strictly higher-priority job arrived: park the running
			// job, start the scheduler's pick, and re-optimise — the
			// preempting application has produced no statistics yet, so
			// the core enters pinned, exactly like churn.
			c := cores[best]
			c.suspend()
			if err := c.startNext(d, &cfg, now, interval); err != nil {
				return nil, err
			}
			if cfg.RM != rm.Idle {
				res.RMCalled++
				if err := invokeRM(d, &cfg, cores, best, totalWays, st, false); err != nil {
					return nil, err
				}
			}

		case evDepart:
			if err := transition(d, &cfg, cores, best, totalWays, st, res, now, interval, true); err != nil {
				return nil, err
			}

		case evBoundary:
			c := cores[best]
			// A job finishes when it reaches its target — or when the
			// residual work is too small for the simulation clock to
			// advance (now + rem·TPI rounds back to now). Fractional
			// Work targets can leave a sub-ULP instruction residue at
			// large simulated times; without the clock-resolution guard
			// this boundary would replay forever without retiring
			// anything (the seed engines shared the trap — no
			// terminating run is affected, see reference.go).
			if rem := c.target - c.executed; rem <= 1e-6 || now+c.stallNs+rem*c.stats.TPI() <= now {
				if err := transition(d, &cfg, cores, best, totalWays, st, res, now, interval, false); err != nil {
					return nil, err
				}
				continue
			}
			// Interval boundary (Figure 5): record QoS, roll the phase,
			// and invoke the RM.
			if cfg.Trace != nil {
				// Reuse the workspace's snapshot buffer across events: the
				// callback only sees Allocations for the duration of the
				// call, and a traced run must not allocate per interval.
				if cap(ws.traceAlloc) < n {
					ws.traceAlloc = make([]int, n)
				}
				alloc := ws.traceAlloc[:n]
				for i, o := range cores {
					alloc[i] = o.setting.Ways
				}
				cfg.Trace(Event{
					TimeNs:      now,
					Core:        best,
					Bench:       c.app.Name,
					Interval:    c.intervalIdx,
					Phase:       c.phase,
					Setting:     c.setting,
					Allocations: alloc,
				})
			}
			if err := c.finishInterval(d, cfg, now); err != nil {
				return nil, err
			}
			if cfg.RM != rm.Idle {
				res.RMCalled++
				if err := invokeRM(d, &cfg, cores, best, totalWays, st, true); err != nil {
					return nil, err
				}
			}
			if err := c.startInterval(d, now); err != nil {
				return nil, err
			}
		}
	}

	res.TimeNs = now
	res.UncoreJ = power.UncorePowerW(n) * now * 1e-9
	res.EnergyJ = res.UncoreJ
	// Jobs are recorded in completion order; total in core order so the
	// summation sequence — and with it the floating-point result —
	// matches the seed static engine's per-core accumulation exactly.
	for i := 0; i < n; i++ {
		for j := range res.Jobs {
			if res.Jobs[j].Core == i {
				res.EnergyJ += res.Jobs[j].EnergyJ
			}
		}
	}
	return res, nil
}

// transition ends core inv's running job (departed tells why), triggers
// the churn re-optimisation when the queue continues (or, with way
// donation, when it drains), and starts the next job if one is
// available.
func transition(d *db.DB, cfg *Config, cores []*dynCore, inv, totalWays int, st *runState, res *DynamicResult, now, interval float64, departed bool) error {
	c := cores[inv]
	c.res.FinishNs = now
	jr := JobResult{
		Core:      inv,
		Slot:      c.slot,
		AppResult: c.res,
		StartNs:   c.startNs,
		Alpha:     c.alpha,
		Departed:  departed,
	}
	if c.prioritized {
		c.done[c.slot] = true
		jr.Preemptions = c.susp[c.slot].preemptions
	}
	res.Jobs = append(res.Jobs, jr)
	c.clearRunning()
	if !c.pending() {
		// Queue drained: the core idles forever at its final setting —
		// the static engine's finished-core behaviour. With way donation
		// the drain itself re-optimises, so the freed ways redistribute
		// to the still-running cores immediately.
		if cfg.DonateIdleWays && cfg.RM != rm.Idle {
			res.RMCalled++
			return invokeRM(d, cfg, cores, inv, totalWays, st, false)
		}
		return nil
	}

	// The next job starts now if one is available; otherwise the core
	// idles until the arrival event fires.
	if c.startable(now) {
		if err := c.startNext(d, cfg, now, interval); err != nil {
			return err
		}
	}

	// Churn re-optimisation (the "RM re-optimises when an application
	// finishes or departs" rule): the transitioning core enters pinned
	// at its current setting — the incoming application has produced no
	// statistics and the partition is physical — and every other core's
	// latest curve is re-reduced so the rest of the system can shift its
	// allocations in response to the churn.
	if cfg.RM != rm.Idle {
		res.RMCalled++
		if err := invokeRM(d, cfg, cores, inv, totalWays, st, false); err != nil {
			return err
		}
	}
	return nil
}

// invokeRM is the engine's manager invocation. With refresh set (the
// interval-boundary path) the invoking core rebuilds its curve from the
// interval that just completed; churn, preemption and drain boundaries
// pass refresh=false and the transitioning core enters pinned instead,
// since its incoming application has not produced statistics yet. Idle
// cores are pinned at their current setting, so their physically held
// ways are never redistributed — except drained cores under
// Config.DonateIdleWays, which enter with the zero-energy donor curve
// and give their ways back. The allocation decision itself is the run's
// policy.
func invokeRM(d *db.DB, cfg *Config, cores []*dynCore, inv, totalWays int, st *runState, refresh bool) error {
	c := cores[inv]
	if refresh {
		c.refreshCurve(d, cfg, &st.cache)
	}

	curves := st.curves
	for i, o := range cores {
		switch {
		case o.active() && o.hasCurve:
			curves[i] = o.curve
		case cfg.DonateIdleWays && o.drained():
			curves[i] = o.donorSelf()
		default:
			curves[i] = o.pinnedSelf()
		}
	}
	if !st.policy.Allocate(curves, totalWays, st.settings) {
		return nil
	}

	// Apply, charging transition overheads. Idle cores only track their
	// way allocation (unchanged while pinned; possibly shrunk when
	// donating).
	for i, o := range cores {
		if !o.active() {
			o.setting.Ways = st.settings[i].Ways
			continue
		}
		if err := o.applySetting(d, cfg, st.settings[i]); err != nil {
			return err
		}
	}

	// RM execution overhead runs on the invoking core when it is busy;
	// a churn invocation on an emptied core has no application to bill.
	if c.active() {
		c.chargeRMOverhead(cfg, len(cores))
	}
	return nil
}
