// Package cpu is the detailed core timing model of the reproduction — the
// stand-in for Sniper's "ROB" mechanistic core model (Section IV-A).
//
// It executes a synthetic instruction stream on one of the three adaptive
// core configurations (Table I) at a given frequency and LLC allocation,
// and produces:
//
//   - total execution time and a retirement-based CPI-stack decomposition
//     into base/branch/cache/memory components (the T0, T_BP, T_Cache and
//     T_mem terms of Eq. 1);
//   - cache statistics at every level;
//   - the true number of leading misses (misses whose DRAM service does
//     not overlap an earlier miss), i.e. the quantity the paper's ATD
//     extension tries to estimate;
//   - optionally, a feed of the LLC access stream, in issue order and
//     annotated with instruction indices, into an atd.ATD.
//
// The model is a greedy O(1)-per-instruction out-of-order timing walk:
// dispatch is limited by the issue width, the ROB, the reservation
// stations, the load/store queue and branch-refill bubbles; instruction
// completion respects register dependences and cache/DRAM latencies; DRAM
// obeys the Table I per-core bandwidth queue.
package cpu

import (
	"math/bits"
	"sort"
	"sync"

	"qosrm/internal/atd"
	"qosrm/internal/cache"
	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// Annotated is an instruction stream with its memory hierarchy behaviour
// precomputed. The private caches and the LLC recency profile do not
// depend on core size, frequency or way allocation, so one hierarchy pass
// serves every timing run of a phase.
type Annotated struct {
	Insts []trace.Inst
	// Level[i] is 0 for non-memory instructions, else 1, 2 (private hit
	// level) or 3 (reached the LLC).
	Level []uint8
	// LLCPos[i] is the LLC recency position (1..16) for Level==3
	// accesses, or 0 when absent from all tracked ways.
	LLCPos []uint8
	// WBMask[i] has bit w-1 set when a w-way LLC wrote a block back to
	// DRAM as a consequence of access i (write-back eviction).
	WBMask []uint32

	L1Misses int64 // accesses that missed L1-D
	L2Misses int64 // accesses that missed L2 (== LLC accesses)

	// mu guards profiles and llcEvents, the lazily computed
	// setting-independent views shared by every timing run over this
	// stream.
	mu       sync.Mutex
	profiles [config.MaxWays + 1]*waysStats
	// llcEvents is the stream's LLC access list in program order (see
	// LLCEvents); classes and latCyc are the sweep walk's precomputed
	// per-instruction kernel classes and latencies (see sweepMeta).
	llcEvents []LLCEvent
	classes   []uint8
	latCyc    []uint8
}

// waysStats are the cache-simulation counters of one way allocation.
// They are frequency- and core-size-independent — the hierarchy
// behaviour was fixed at annotation time and only the pos-vs-ways
// comparison depends on the setting — so one count per allocation is
// shared across every (core size, frequency corner) timing run instead
// of being re-derived inside each walk.
type waysStats struct {
	llcAccesses int64
	llcHits     int64
	llcMisses   int64
	dramLoads   int64
	writebacks  int64
	mispredicts int64
}

// waysProfile returns the counter set for allocation w, computing all
// allocations' counters in a single pass over the stream on first use:
// the recency-position histogram gives hits and misses for every w at
// once (LRU inclusion), and the writeback masks carry one bit per
// allocation. Safe for concurrent use.
func (a *Annotated) waysProfile(w int) *waysStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p := a.profiles[w]; p != nil {
		return p
	}
	var (
		mispredicts int64
		accesses    int64
		loads       int64
		hitHist     [config.MaxWays + 1]int64 // hits by recency position
		loadHist    [config.MaxWays + 1]int64
		wbCount     [config.MaxWays + 1]int64 // writebacks by allocation
	)
	for i, in := range a.Insts {
		switch in.Kind {
		case trace.KindBranch:
			if in.Mispredict {
				mispredicts++
			}
		case trace.KindLoad, trace.KindStore:
			if a.Level[i] != 3 {
				continue
			}
			accesses++
			pos := int(a.LLCPos[i])
			isLoad := in.Kind == trace.KindLoad
			if isLoad {
				loads++
				loadHist[pos]++
			}
			hitHist[pos]++
			for m := a.WBMask[i]; m != 0; m &= m - 1 {
				wbCount[bits.TrailingZeros32(m)+1]++
			}
		}
	}
	var hits, loadHits int64
	for ww := 1; ww <= config.MaxWays; ww++ {
		hits += hitHist[ww]
		loadHits += loadHist[ww]
		a.profiles[ww] = &waysStats{
			llcAccesses: accesses,
			llcHits:     hits,
			llcMisses:   accesses - hits,
			dramLoads:   loads - loadHits,
			writebacks:  wbCount[ww],
			mispredicts: mispredicts,
		}
	}
	return a.profiles[w]
}

// Annotate runs the stream through a fresh Table I private hierarchy and
// records, per memory instruction, where it would be satisfied.
func Annotate(insts []trace.Inst) *Annotated {
	h := cache.NewHierarchy()
	a := &Annotated{
		Insts:  insts,
		Level:  make([]uint8, len(insts)),
		LLCPos: make([]uint8, len(insts)),
		WBMask: make([]uint32, len(insts)),
	}
	for i, in := range insts {
		if in.Kind != trace.KindLoad && in.Kind != trace.KindStore {
			continue
		}
		r := h.AccessRW(in.Addr, in.Kind == trace.KindStore)
		a.Level[i] = uint8(r.Level)
		if r.Level >= 2 {
			a.L1Misses++
		}
		if r.Level == 3 {
			a.L2Misses++
			a.LLCPos[i] = uint8(r.LLCPos)
			a.WBMask[i] = r.Writebacks
		}
	}
	return a
}

// Tail returns a view of the annotated stream starting at instruction
// from, with the aggregate miss counters recomputed for the suffix. It is
// used to discard a cache-warmup prefix from measurement while keeping
// its effect on cache state.
func (a *Annotated) Tail(from int) *Annotated {
	if from <= 0 {
		return a
	}
	if from > len(a.Insts) {
		from = len(a.Insts)
	}
	t := &Annotated{
		Insts:  a.Insts[from:],
		Level:  a.Level[from:],
		LLCPos: a.LLCPos[from:],
		WBMask: a.WBMask[from:],
	}
	for i := range t.Insts {
		switch t.Level[i] {
		case 2:
			t.L1Misses++
		case 3:
			t.L1Misses++
			t.L2Misses++
		}
	}
	return t
}

// WarmATD replays the LLC accesses of the first n instructions (in
// program order) into the ATD so its tag state matches the warmed main
// hierarchy, then clears the profiling counters. Called before a timing
// run that will feed the same ATD.
func (a *Annotated) WarmATD(d *atd.ATD, n int) {
	if n > len(a.Insts) {
		n = len(a.Insts)
	}
	for i := 0; i < n; i++ {
		if a.Level[i] == 3 {
			d.Access(a.Insts[i].Addr, int64(i), a.Insts[i].Kind == trace.KindLoad)
		}
	}
	d.ResetCounters()
}

// RunConfig selects the hardware configuration of one timing run.
type RunConfig struct {
	Core    config.CoreSize
	Ways    int     // LLC allocation for this core
	FreqGHz float64 // core clock
	// ATD, when non-nil, observes the LLC access stream of this run in
	// issue order, as the hardware ATD would.
	ATD *atd.ATD
}

// Result is the outcome of one timing run.
type Result struct {
	Instructions int64
	TimeNs       float64

	// Retirement-frontier CPI-stack decomposition, in nanoseconds.
	// TimeNs == BaseNs + BranchNs + CacheNs + MemNs (up to rounding).
	BaseNs   float64 // dispatch bandwidth + dependence stalls (T0)
	BranchNs float64 // branch misprediction refill (part of T1)
	CacheNs  float64 // exposed private-miss/LLC-hit latency (part of T1)
	MemNs    float64 // exposed DRAM latency (T_mem)

	L1Misses    int64
	LLCAccesses int64 // L2 misses
	LLCHits     int64 // LLC accesses satisfied at the given allocation
	LLCMisses   int64 // LLC accesses that went to DRAM
	DRAMLoads   int64
	Mispredicts int64

	// LeadingMisses counts DRAM load misses whose service interval did
	// not overlap a previous miss — the ground truth the ATD extension
	// estimates. MLP is DRAMLoads/LeadingMisses (≥ 1).
	LeadingMisses int64
	MLP           float64

	// Writebacks counts dirty lines the LLC wrote back to DRAM at this
	// allocation; they consume DRAM bandwidth and energy but do not
	// stall the pipeline.
	Writebacks int64
}

// LLCEvent is one LLC access of a timing run, buffered for
// in-issue-order ATD feeding. Two runs of the same annotated stream
// always produce the same event set — only the issue times, and with
// them the delivery order, depend on the setting — so a sorted event
// stream is fully described by its InstIdx sequence. The database sweep
// exploits that: runs whose sequences match share one fed ATD.
type LLCEvent struct {
	IssueNs float64
	InstIdx int64
	Addr    uint64
	IsLoad  bool
}

// Run executes the annotated stream under rc and returns timing and
// statistics. It is deterministic and safe for concurrent use with
// distinct rc.ATD values.
//
// This is the optimized walk: it produces results bit-identical to
// RunReference (enforced by TestRunMatchesReference) while avoiding the
// reference's per-instruction integer divisions — ring indices are
// maintained by wraparound arithmetic over power-of-two-padded buffers —
// and reading the frequency-independent cache counters from the shared
// per-allocation profile instead of re-counting them in every walk.
func Run(a *Annotated, rc RunConfig) Result {
	cp := config.Core(rc.Core)
	perCycle := 1.0 / rc.FreqGHz // ns per cycle

	n := len(a.Insts)
	res := Result{Instructions: int64(n)}

	// Ring buffers over the reorder window, padded to powers of two so
	// the masked indexing below stays in bounds without checks. Only
	// slots < robSize (resp. < LSQ) are ever touched, so the semantics
	// match the reference's exactly-sized rings.
	robSize := cp.ROB
	ringLen := 1
	for ringLen < robSize {
		ringLen <<= 1
	}
	ringMask := ringLen - 1
	done := make([]float64, ringLen)  // completion time (ns) by i % robSize
	start := make([]float64, ringLen) // execution start time by i % robSize
	lsq := cp.LSQ
	memLen := 1
	for memLen < lsq {
		memLen <<= 1
	}
	memMask := memLen - 1
	memRing := make([]float64, memLen)
	mi := 0 // memCount % LSQ, maintained by wraparound

	var (
		dispatch      float64 // front-end time cursor (ns)
		frontEndReady float64
		frontier      float64 // in-order retirement frontier (ns)
		lastDRAMStart float64 // per-core bandwidth queue cursor
		lastMissEnd   float64 // end of the latest DRAM service, for LM
	)
	dispatchStep := perCycle / float64(cp.IssueWidth)

	var events []LLCEvent
	if rc.ATD != nil {
		events = make([]LLCEvent, 0, a.L2Misses)
	}

	rs := cp.RS
	hasRS := rs < robSize
	ways := rc.Ways
	ri := 0 // i % robSize, maintained by wraparound

	for i, in := range a.Insts {
		// --- Dispatch constraints ---
		// The reference resolves each constraint with a data-dependent
		// branch; on real phase traces those branches are essentially
		// random, so this path folds them into branchless float maxes.
		// Every operand is finite and non-negative (absent constraints
		// contribute 0), for which max() is value-identical to the
		// reference's compare-and-assign.
		//
		// done[ri] still holds the completion time of instruction
		// i-robSize: the ROB-full constraint.
		d1 := max(dispatch+dispatchStep, done[ri&ringMask])
		var rsV, memV float64
		// Reservation stations: instruction i-RS must have begun
		// execution before i can occupy a station.
		if hasRS && i >= rs {
			j := ri - rs
			if j < 0 {
				j += robSize
			}
			rsV = start[j&ringMask]
		}
		isMem := in.Kind == trace.KindLoad || in.Kind == trace.KindStore
		if isMem {
			// Load/store queue: the (memCount-LSQ)-th memory op must
			// have completed.
			memV = memRing[mi&memMask]
		}
		d := max(d1, frontEndReady, rsV, memV)
		// The dispatch stall is attributed to the branch refill exactly
		// when the front end dominated the other constraints — the same
		// condition the reference tracks imperatively.
		branchBound := frontEndReady > d1 && rsV <= frontEndReady && memV <= frontEndReady
		dispatch = d

		// --- Operand readiness ---
		ready := d + perCycle // register read / rename stage
		var dv1, dv2 float64
		if dep := int(in.Dep1); dep > 0 && dep <= robSize && dep <= i {
			j := ri - dep
			if j < 0 {
				j += robSize
			}
			dv1 = done[j&ringMask]
		}
		if dep := int(in.Dep2); dep > 0 && dep <= robSize && dep <= i {
			j := ri - dep
			if j < 0 {
				j += robSize
			}
			dv2 = done[j&ringMask]
		}
		ready = max(ready, dv1, dv2)
		st := ready
		start[ri&ringMask] = st

		// --- Execution ---
		var fin float64
		stallClass := classBase
		switch in.Kind {
		case trace.KindALU:
			fin = st + perCycle
		case trace.KindMul:
			fin = st + trace.MulLatencyCycles*perCycle
		case trace.KindBranch:
			fin = st + perCycle
			if in.Mispredict {
				if r := fin + config.BranchPenaltyCycles*perCycle; r > frontEndReady {
					frontEndReady = r
				}
			}
		case trace.KindStore:
			// Stores retire into the write buffer; the cache-state
			// effects were captured during annotation. Store misses
			// still consume DRAM bandwidth.
			fin = st + perCycle
			if a.Level[i] == 3 {
				pos := int(a.LLCPos[i])
				if rc.ATD != nil {
					events = append(events, LLCEvent{st, int64(i), in.Addr, false})
				}
				if pos == 0 || pos > ways {
					reqNs := st + config.L3LatencyCycles*perCycle
					sStart := reqNs
					if lastDRAMStart+config.DRAMServiceNs > sStart {
						sStart = lastDRAMStart + config.DRAMServiceNs
					}
					lastDRAMStart = sStart
				}
			}
		case trace.KindLoad:
			switch a.Level[i] {
			case 1:
				fin = st + config.L1LatencyCycles*perCycle
			case 2:
				fin = st + config.L2LatencyCycles*perCycle
				stallClass = classCache
			default: // 3: reached the LLC
				pos := int(a.LLCPos[i])
				if rc.ATD != nil {
					events = append(events, LLCEvent{st, int64(i), in.Addr, true})
				}
				if pos != 0 && pos <= ways {
					fin = st + config.L3LatencyCycles*perCycle
					stallClass = classCache
				} else {
					reqNs := st + config.L3LatencyCycles*perCycle
					sStart := reqNs
					if lastDRAMStart+config.DRAMServiceNs > sStart {
						sStart = lastDRAMStart + config.DRAMServiceNs
					}
					lastDRAMStart = sStart
					fin = sStart + config.DRAMLatencyNs
					stallClass = classMem
					// Leading-loads ground truth: a miss is leading when
					// it is not issued within the DRAM latency window of
					// a previous miss ([12], [13]). Queueing delay
					// lengthens completion but not the overlap window,
					// so bandwidth saturation does not collapse the
					// leading count to zero.
					if reqNs >= lastMissEnd {
						res.LeadingMisses++
					}
					if end := reqNs + config.DRAMLatencyNs; end > lastMissEnd {
						lastMissEnd = end
					}
				}
			}
		}
		done[ri&ringMask] = fin
		if isMem {
			memRing[mi&memMask] = fin
			mi++
			if mi == lsq {
				mi = 0
			}
		}
		ri++
		if ri == robSize {
			ri = 0
		}

		// --- Retirement frontier and stall attribution ---
		frontier += dispatchStep
		res.BaseNs += dispatchStep
		if fin > frontier {
			stall := fin - frontier
			frontier = fin
			if stallClass == classBase && branchBound {
				stallClass = classBranch
			}
			switch stallClass {
			case classMem:
				res.MemNs += stall
			case classCache:
				res.CacheNs += stall
			case classBranch:
				res.BranchNs += stall
			default:
				res.BaseNs += stall
			}
		}
	}

	res.TimeNs = frontier
	res.L1Misses = a.L1Misses
	pr := a.waysProfile(ways)
	res.LLCAccesses = pr.llcAccesses
	res.LLCHits = pr.llcHits
	res.LLCMisses = pr.llcMisses
	res.DRAMLoads = pr.dramLoads
	res.Writebacks = pr.writebacks
	res.Mispredicts = pr.mispredicts
	if res.LeadingMisses > 0 {
		res.MLP = float64(res.DRAMLoads) / float64(res.LeadingMisses)
	} else {
		res.MLP = 1
	}

	if rc.ATD != nil {
		// Deliver the LLC stream in issue order, as the hardware would
		// observe it. The sort is stable, so program order is kept among
		// accesses issued in the same instant — the same contract as the
		// reference's sort.SliceStable, without its closure overhead.
		sortEventsStable(events)
		for _, e := range events {
			rc.ATD.Access(e.Addr, e.InstIdx, e.IsLoad)
		}
	}
	return res
}

// sortEventsStable stably sorts events by issue time. Equal issue times
// keep program order, so the result is the unique stable permutation —
// identical to what sort.SliceStable produces.
func sortEventsStable(e []LLCEvent) {
	var buf []LLCEvent
	sortEventsStableBuf(e, &buf)
}

// sortEventsStableBuf is sortEventsStable with a caller-owned merge
// buffer (grown as needed) so repeated sorts do not reallocate. Issue
// order mostly follows program order, so the stream decomposes into long
// non-descending runs; collect them (extending short ones by insertion
// sort) and merge neighbour pairs ping-pong between the two buffers
// until one run remains.
func sortEventsStableBuf(e []LLCEvent, bufp *[]LLCEvent) {
	const minRun = 32
	n := len(e)
	if n < 2 {
		return
	}
	type run struct{ lo, hi int }
	var runsA, runsB []run
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && e[hi].IssueNs >= e[hi-1].IssueNs {
			hi++
		}
		if hi-lo < minRun {
			hi = lo + minRun
			if hi > n {
				hi = n
			}
			insertionSortEvents(e[lo:hi])
		}
		runsA = append(runsA, run{lo, hi})
		lo = hi
	}
	if len(runsA) == 1 {
		return
	}
	if cap(*bufp) < n {
		*bufp = make([]LLCEvent, n)
	}
	src, dst := e, (*bufp)[:n]
	runs := runsA
	for len(runs) > 1 {
		merged := runsB[:0]
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				r := runs[i]
				copy(dst[r.lo:r.hi], src[r.lo:r.hi])
				merged = append(merged, r)
				break
			}
			l, r := runs[i], runs[i+1]
			mergeEvents(dst[l.lo:r.hi], src[l.lo:l.hi], src[l.hi:r.hi])
			merged = append(merged, run{l.lo, r.hi})
		}
		runsB = runs
		runs = merged
		src, dst = dst, src
	}
	if &src[0] != &e[0] {
		copy(e, src)
	}
}

func insertionSortEvents(e []LLCEvent) {
	for i := 1; i < len(e); i++ {
		for j := i; j > 0 && e[j].IssueNs < e[j-1].IssueNs; j-- {
			e[j], e[j-1] = e[j-1], e[j]
		}
	}
}

// mergeEvents merges two sorted runs into out, taking from the left run
// on ties to preserve stability.
func mergeEvents(out, l, r []LLCEvent) {
	i, j := 0, 0
	for k := range out {
		switch {
		case i < len(l) && (j >= len(r) || l[i].IssueNs <= r[j].IssueNs):
			out[k] = l[i]
			i++
		default:
			out[k] = r[j]
			j++
		}
	}
}

// RunReference is the seed implementation of Run, retained verbatim as
// the equivalence baseline: cpu tests assert Run's results match it
// bit for bit, and the perfbench suite measures the optimized sweep
// against it. New timing-model behaviour must land in both.
func RunReference(a *Annotated, rc RunConfig) Result {
	cp := config.Core(rc.Core)
	perCycle := 1.0 / rc.FreqGHz // ns per cycle

	n := len(a.Insts)
	res := Result{Instructions: int64(n)}

	// Ring buffers over the reorder window.
	robSize := cp.ROB
	done := make([]float64, robSize)  // completion time (ns) by i % robSize
	start := make([]float64, robSize) // execution start time by i % robSize
	memRing := make([]float64, cp.LSQ)
	memCount := 0

	var (
		dispatch      float64 // front-end time cursor (ns)
		frontEndReady float64
		frontier      float64 // in-order retirement frontier (ns)
		lastDRAMStart float64 // per-core bandwidth queue cursor
		lastMissEnd   float64 // end of the latest DRAM service, for LM
	)
	dispatchStep := perCycle / float64(cp.IssueWidth)

	var events []LLCEvent
	if rc.ATD != nil {
		events = make([]LLCEvent, 0, a.L2Misses)
	}

	for i, in := range a.Insts {
		ri := i % robSize

		// --- Dispatch constraints ---
		// done[ri] still holds the completion time of instruction
		// i-robSize: the ROB-full constraint.
		d := dispatch + dispatchStep
		if v := done[ri]; v > d {
			d = v
		}
		branchBound := false
		if frontEndReady > d {
			d = frontEndReady
			branchBound = true
		}
		// Reservation stations: instruction i-RS must have begun
		// execution before i can occupy a station.
		if cp.RS < robSize && i >= cp.RS {
			if v := start[(i-cp.RS)%robSize]; v > d {
				d = v
				branchBound = false
			}
		}
		isMem := in.Kind == trace.KindLoad || in.Kind == trace.KindStore
		if isMem {
			// Load/store queue: the (memCount-LSQ)-th memory op must
			// have completed.
			if v := memRing[memCount%cp.LSQ]; v > d {
				d = v
				branchBound = false
			}
		}
		dispatch = d

		// --- Operand readiness ---
		ready := d + perCycle // register read / rename stage
		if dep := int(in.Dep1); dep > 0 && dep <= robSize && dep <= i {
			if v := done[(i-dep)%robSize]; v > ready {
				ready = v
			}
		}
		if dep := int(in.Dep2); dep > 0 && dep <= robSize && dep <= i {
			if v := done[(i-dep)%robSize]; v > ready {
				ready = v
			}
		}
		st := ready
		start[ri] = st

		// --- Execution ---
		var fin float64
		stallClass := classBase
		switch in.Kind {
		case trace.KindALU:
			fin = st + perCycle
		case trace.KindMul:
			fin = st + trace.MulLatencyCycles*perCycle
		case trace.KindBranch:
			fin = st + perCycle
			if in.Mispredict {
				res.Mispredicts++
				if r := fin + config.BranchPenaltyCycles*perCycle; r > frontEndReady {
					frontEndReady = r
				}
			}
		case trace.KindStore:
			// Stores retire into the write buffer; the cache-state
			// effects were captured during annotation. Store misses
			// still consume DRAM bandwidth.
			fin = st + perCycle
			if a.Level[i] == 3 {
				res.LLCAccesses++
				pos := int(a.LLCPos[i])
				if rc.ATD != nil {
					events = append(events, LLCEvent{st, int64(i), in.Addr, false})
				}
				if a.WBMask[i]&(1<<(rc.Ways-1)) != 0 {
					// Dirty-line writeback: costs DRAM energy, but the
					// controller drains writes opportunistically behind
					// reads (write buffering), so read latency is not
					// delayed.
					res.Writebacks++
				}
				if pos == 0 || pos > rc.Ways {
					res.LLCMisses++
					reqNs := st + config.L3LatencyCycles*perCycle
					sStart := reqNs
					if lastDRAMStart+config.DRAMServiceNs > sStart {
						sStart = lastDRAMStart + config.DRAMServiceNs
					}
					lastDRAMStart = sStart
				} else {
					res.LLCHits++
				}
			}
		case trace.KindLoad:
			switch a.Level[i] {
			case 1:
				fin = st + config.L1LatencyCycles*perCycle
			case 2:
				fin = st + config.L2LatencyCycles*perCycle
				stallClass = classCache
			default: // 3: reached the LLC
				res.LLCAccesses++
				pos := int(a.LLCPos[i])
				if rc.ATD != nil {
					events = append(events, LLCEvent{st, int64(i), in.Addr, true})
				}
				if a.WBMask[i]&(1<<(rc.Ways-1)) != 0 {
					// Dirty-victim writeback: energy only; drained behind
					// reads by the controller's write buffering.
					res.Writebacks++
				}
				if pos != 0 && pos <= rc.Ways {
					res.LLCHits++
					fin = st + config.L3LatencyCycles*perCycle
					stallClass = classCache
				} else {
					res.LLCMisses++
					res.DRAMLoads++
					reqNs := st + config.L3LatencyCycles*perCycle
					sStart := reqNs
					if lastDRAMStart+config.DRAMServiceNs > sStart {
						sStart = lastDRAMStart + config.DRAMServiceNs
					}
					lastDRAMStart = sStart
					fin = sStart + config.DRAMLatencyNs
					stallClass = classMem
					// Leading-loads ground truth: a miss is leading when
					// it is not issued within the DRAM latency window of
					// a previous miss ([12], [13]). Queueing delay
					// lengthens completion but not the overlap window,
					// so bandwidth saturation does not collapse the
					// leading count to zero.
					if reqNs >= lastMissEnd {
						res.LeadingMisses++
					}
					if end := reqNs + config.DRAMLatencyNs; end > lastMissEnd {
						lastMissEnd = end
					}
				}
			}
		}
		done[ri] = fin
		if isMem {
			memRing[memCount%cp.LSQ] = fin
			memCount++
		}

		// --- Retirement frontier and stall attribution ---
		frontier += dispatchStep
		res.BaseNs += dispatchStep
		if fin > frontier {
			stall := fin - frontier
			frontier = fin
			if stallClass == classBase && branchBound {
				stallClass = classBranch
			}
			switch stallClass {
			case classMem:
				res.MemNs += stall
			case classCache:
				res.CacheNs += stall
			case classBranch:
				res.BranchNs += stall
			default:
				res.BaseNs += stall
			}
		}
	}

	res.TimeNs = frontier
	res.L1Misses = a.L1Misses
	if res.LeadingMisses > 0 {
		res.MLP = float64(res.DRAMLoads) / float64(res.LeadingMisses)
	} else {
		res.MLP = 1
	}

	if rc.ATD != nil {
		// Deliver the LLC stream in issue order, as the hardware would
		// observe it. Stable sort keeps program order among accesses
		// issued in the same instant.
		sort.SliceStable(events, func(x, y int) bool {
			return events[x].IssueNs < events[y].IssueNs
		})
		for _, e := range events {
			rc.ATD.AccessReference(e.Addr, e.InstIdx, e.IsLoad)
		}
	}
	return res
}

// WarmATDReference is the seed warmup replay, feeding through the
// reference ATD access path; used by the reference database sweep.
func (a *Annotated) WarmATDReference(d *atd.ATD, n int) {
	if n > len(a.Insts) {
		n = len(a.Insts)
	}
	for i := 0; i < n; i++ {
		if a.Level[i] == 3 {
			d.AccessReference(a.Insts[i].Addr, int64(i), a.Insts[i].Kind == trace.KindLoad)
		}
	}
	d.ResetCounters()
}

// Stall classes for the retirement-frontier attribution.
const (
	classBase = iota
	classBranch
	classCache
	classMem
)
