package jobstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzJournalLoad mirrors dbstore's FuzzSnapshotLoad for the journal
// decoder: whatever bytes are on disk, Open must either fail cleanly
// (header damage) or replay a valid prefix — never panic, and never
// leave the file in a state a second Open disagrees with.
func FuzzJournalLoad(f *testing.F) {
	// Seed corpus: a genuine journal plus the corruption classes the
	// unit tests enumerate — truncations at every structural boundary, a
	// bit flip, a version bump, a torn final record.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.jnl")
	j, _, err := Open(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range testFuzzEvents() {
		if err := j.Append(ev); err != nil {
			f.Fatal(err)
		}
	}
	j.Close()
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add(valid[:headerSize+frameSize/2])
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)/2])
	bumped := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(bumped[8:12], Version+7)
	f.Add(bumped)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	huge := append([]byte(nil), valid[:headerSize+frameSize]...)
	binary.LittleEndian.PutUint32(huge[headerSize:headerSize+4], 1<<30)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte("QOSRMJNL"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jnl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, info, err := Open(path)
		if err != nil {
			if j != nil || info != nil {
				t.Fatal("failed Open returned a partial journal")
			}
			return
		}
		j.Close()
		// Open truncated whatever it rejected, so a second Open must
		// replay exactly the same events with nothing left to cut.
		j2, info2, err := Open(path)
		if err != nil {
			t.Fatalf("journal unreadable after its own recovery: %v", err)
		}
		j2.Close()
		if info2.TruncatedBytes != 0 {
			t.Fatalf("second load still truncated %d bytes", info2.TruncatedBytes)
		}
		if !reflect.DeepEqual(info.Events, info2.Events) {
			t.Fatal("replay is not idempotent across loads")
		}
	})
}

// testFuzzEvents avoids the scenario dependency footprint of
// jobstore_test.testEvents growing the corpus records: small but with
// every field populated somewhere.
func testFuzzEvents() []Event {
	evs := testEvents()
	evs = append(evs, Event{Type: EventFinish, Job: "j1", Index: 1, Error: "boom"})
	evs = append(evs, Event{Type: EventExpire, Job: "j1"})
	return evs
}
