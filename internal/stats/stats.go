// Package stats provides the statistical accumulators the evaluation
// uses: weighted means and standard deviations for QoS-violation
// magnitudes (Figure 7), histograms of violation sizes (Figure 8), and
// energy-savings aggregation with the scenario probability weights of
// Figure 1.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Weighted accumulates a weighted mean and standard deviation.
type Weighted struct {
	sumW   float64
	sumWX  float64
	sumWX2 float64
}

// Add records x with weight w (w must be non-negative).
func (a *Weighted) Add(x, w float64) {
	a.sumW += w
	a.sumWX += w * x
	a.sumWX2 += w * x * x
}

// Weight returns the accumulated weight mass.
func (a *Weighted) Weight() float64 { return a.sumW }

// Mean returns the weighted mean (0 when empty).
func (a *Weighted) Mean() float64 {
	if a.sumW == 0 {
		return 0
	}
	return a.sumWX / a.sumW
}

// Std returns the weighted population standard deviation (0 when empty).
func (a *Weighted) Std() float64 {
	if a.sumW == 0 {
		return 0
	}
	m := a.Mean()
	v := a.sumWX2/a.sumW - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Histogram is a fixed-bin histogram over [0, Max) with an overflow bin.
type Histogram struct {
	Max   float64
	Bins  []float64
	Over  float64
	total float64
}

// NewHistogram creates a histogram with n bins covering [0, max).
func NewHistogram(n int, max float64) *Histogram {
	if n < 1 || max <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram shape n=%d max=%g", n, max))
	}
	return &Histogram{Max: max, Bins: make([]float64, n)}
}

// Add records value x with weight w.
func (h *Histogram) Add(x, w float64) {
	h.total += w
	if x >= h.Max {
		h.Over += w
		return
	}
	if x < 0 {
		x = 0
	}
	i := int(x / h.Max * float64(len(h.Bins)))
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i] += w
}

// Total returns the accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Normalized returns bin masses scaled so the largest equals 1, the
// normalisation Figure 8 uses ("normalized to the maximum number of
// violations across the three models" — callers pass the global max).
func (h *Histogram) Normalized(max float64) []float64 {
	out := make([]float64, len(h.Bins))
	if max <= 0 {
		return out
	}
	for i, b := range h.Bins {
		out[i] = b / max
	}
	return out
}

// MaxBin returns the largest bin mass.
func (h *Histogram) MaxBin() float64 {
	m := 0.0
	for _, b := range h.Bins {
		if b > m {
			m = b
		}
	}
	return m
}

// BinLabel formats the range of bin i as a percentage interval.
func (h *Histogram) BinLabel(i int) string {
	lo := h.Max / float64(len(h.Bins)) * float64(i)
	hi := h.Max / float64(len(h.Bins)) * float64(i+1)
	return fmt.Sprintf("%.0f–%.0f%%", lo*100, hi*100)
}

// Bar renders a width-w ASCII bar for fraction x in [0,1].
func Bar(x float64, w int) string {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	n := int(x*float64(w) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", w-n)
}
