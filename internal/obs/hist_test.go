package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0},
		{0, 0},
		{1, 0},
		{1024, 0}, // exactly the first bound
		{1025, 1}, // just past it
		{2048, 1},
		{2049, 2},
		{1 << 36, histBuckets - 1},
		{1<<36 + 1, histBuckets}, // overflow
		{time.Hour, histBuckets},
	}
	for _, c := range cases {
		d := c.d
		if d < 0 {
			d = 0
		}
		if got := bucketOf(d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramCountSum(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(-time.Second) // clamped to 0
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	if got := h.Sum(); got != 3*time.Millisecond {
		t.Fatalf("Sum = %v, want 3ms", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	// 100 observations in the 512µs–1.048ms bucket.
	for range 100 {
		h.Observe(700 * time.Microsecond)
	}
	q := h.Quantile(0.5)
	lo, hi := 524288*time.Nanosecond, 1048576*time.Nanosecond
	if q < lo || q > hi {
		t.Fatalf("Quantile(0.5) = %v, want within (%v, %v]", q, lo, hi)
	}
	// Overflow observations report the last finite bound.
	var o Histogram
	o.Observe(10 * time.Minute)
	if got, want := o.Quantile(0.99), bucketBound(histBuckets-1); got != want {
		t.Fatalf("overflow Quantile = %v, want %v", got, want)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles out of order: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	// With uniform 0.1ms..100ms data the median is ~50ms; log2 buckets
	// give coarse resolution, so allow the containing bucket's span.
	if p50 < 30*time.Millisecond || p50 > 80*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms within log2 bucket resolution", p50)
	}
}

func TestObserveNoAlloc(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(42 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
}

func TestWritePromLintsClean(t *testing.T) {
	var h, h2 Histogram
	for i := range 50 {
		h.Observe(time.Duration(i) * time.Millisecond)
		h2.Observe(time.Duration(i) * 10 * time.Microsecond)
	}
	h.Observe(time.Hour) // force the overflow bucket into play
	var sb strings.Builder
	sb.WriteString("# TYPE test_latency_seconds histogram\n")
	h.WriteProm(&sb, "test_latency_seconds", `path="/v1/jobs"`)
	h2.WriteProm(&sb, "test_latency_seconds", `path="/v1/savings"`)
	if errs := LintExposition(strings.NewReader(sb.String())); len(errs) > 0 {
		t.Fatalf("lint errors on WriteProm output:\n%v\nexposition:\n%s", errs, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `test_latency_seconds_count{path="/v1/jobs"} 51`) {
		t.Fatalf("missing or wrong _count:\n%s", out)
	}
}

func TestBucketBoundsExactFloats(t *testing.T) {
	// Power-of-two nanosecond bounds must render as exact shortest
	// floats that parse back to the same value, so the le labels are
	// stable across Go versions.
	for i := range histBuckets {
		s := bucketBound(i).Seconds()
		if s <= 0 || math.IsInf(s, 0) {
			t.Fatalf("bucket %d bound %v not positive finite", i, s)
		}
		if i > 0 && bucketBound(i) != 2*bucketBound(i-1) {
			t.Fatalf("bucket %d bound %v not 2x previous", i, bucketBound(i))
		}
	}
}
