// Command classify measures every suite application's cache and
// parallelism sensitivity with the Section IV-C rules and prints the
// Table II classification.
//
// Usage:
//
//	classify [-db qosrm-db.gz] [-tracelen 65536]
package main

import (
	"flag"
	"log"
	"os"

	"qosrm/internal/bench"
	"qosrm/internal/db"
	"qosrm/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("classify: ")
	dbPath := flag.String("db", "qosrm-db.gz", "database cache path (built if missing)")
	traceLen := flag.Int("tracelen", 65536, "instructions measured per phase")
	flag.Parse()

	d, err := db.LoadOrBuild(*dbPath, bench.Suite(), db.Options{TraceLen: *traceLen})
	if err != nil {
		log.Fatal(err)
	}
	ctx := experiments.NewContext(d)
	rows, err := ctx.TableII()
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderTableII(os.Stdout, rows)
}
