package server

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"qosrm/internal/rm"
	"qosrm/internal/scenario"
)

// fakeClock is a mutex-guarded settable clock for the GC tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// submitAndWait submits one small job and polls it to completion.
func submitAndWait(t *testing.T, ts string, name string) string {
	t.Helper()
	var st JobStatus
	code, raw := postJSON(t, ts+"/v1/jobs", JobRequest{Specs: []scenario.Spec{testSpec(name)}}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, raw)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for st.State != JobDone && st.State != JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if code := getJSON(t, ts+"/v1/jobs/"+st.ID, &st); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
	}
	if st.State != JobDone {
		t.Fatalf("job failed: %+v", st)
	}
	return st.ID
}

func TestFinishedJobsExpireAfterTTL(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	srv, ts := newTestServer(t, Options{Workers: 1, JobTTL: time.Hour, clock: clock.now})

	id := submitAndWait(t, ts.URL, "ttl-job")

	// Young finished job: a sweep must keep it.
	if n := srv.gcFinishedJobs(clock.now()); n != 0 {
		t.Fatalf("fresh job expired: %d", n)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, nil); code != http.StatusOK {
		t.Fatalf("fresh job gone: status %d", code)
	}

	// Within TTL: still kept.
	clock.advance(59 * time.Minute)
	if n := srv.gcFinishedJobs(clock.now()); n != 0 {
		t.Fatalf("job expired before its TTL: %d", n)
	}

	// Past TTL: collected, 404s afterwards, metric counts it.
	clock.advance(2 * time.Minute)
	if n := srv.gcFinishedJobs(clock.now()); n != 1 {
		t.Fatalf("expired %d jobs, want 1", n)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, nil); code != http.StatusNotFound {
		t.Fatalf("expired job still served: status %d", code)
	}
	if got := srv.metrics.jobsExpired.Load(); got != 1 {
		t.Fatalf("jobs_expired_total %d, want 1", got)
	}
}

func TestUnfinishedJobsNeverExpire(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	// Fabricate an unfinished job directly (white box): the worker pool
	// never picks it up, so it stays in the queued state forever.
	srv, _ := newTestServer(t, Options{Workers: 1, JobTTL: time.Minute, clock: clock.now})
	j := &job{id: "stuck", specs: make([]scenario.Spec, 1),
		reports: make([]*scenario.Report, 1), errs: make([]error, 1)}
	srv.mu.Lock()
	srv.jobs[j.id] = j
	srv.mu.Unlock()

	clock.advance(24 * time.Hour)
	if n := srv.gcFinishedJobs(clock.now()); n != 0 {
		t.Fatalf("unfinished job expired: %d", n)
	}
	if srv.jobByID("stuck") == nil {
		t.Fatal("unfinished job dropped")
	}
}

func TestNegativeTTLDisablesGC(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	srv, ts := newTestServer(t, Options{Workers: 1, JobTTL: -1, clock: clock.now})
	id := submitAndWait(t, ts.URL, "forever-job")
	clock.advance(1000 * time.Hour)
	if n := srv.gcFinishedJobs(clock.now()); n != 0 {
		t.Fatalf("GC ran with a negative TTL: %d", n)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, nil); code != http.StatusOK {
		t.Fatalf("job dropped despite disabled TTL: status %d", code)
	}
}

func TestDefaultTTLIsAnHour(t *testing.T) {
	o := Options{}
	o.fill()
	if o.JobTTL != time.Hour {
		t.Fatalf("default JobTTL %v, want 1h", o.JobTTL)
	}
}

// TestPolicyPerRequest: the API accepts a policy name on savings and
// scenario requests, labels responses with it, rejects unknown names,
// and counts per-policy runs in /metrics.
func TestPolicyPerRequest(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	var sv SavingsResponse
	code, raw := postJSON(t, ts.URL+"/v1/savings",
		SavingsRequest{Apps: []string{"mcf", "povray"}, RM: "RM3", Policy: "greedy"}, &sv)
	if code != http.StatusOK {
		t.Fatalf("greedy savings status %d: %s", code, raw)
	}
	if sv.Policy != rm.PolicyGreedy {
		t.Fatalf("savings policy label %q", sv.Policy)
	}

	spec := testSpec("policy-req")
	spec.Policy = "brute"
	var rep scenario.Report
	code, raw = postJSON(t, ts.URL+"/v1/scenarios", &spec, &rep)
	if code != http.StatusOK {
		t.Fatalf("brute scenario status %d: %s", code, raw)
	}
	if rep.Policy != rm.PolicyBrute {
		t.Fatalf("scenario policy label %q", rep.Policy)
	}

	code, raw = postJSON(t, ts.URL+"/v1/savings",
		SavingsRequest{Apps: []string{"mcf"}, Policy: "quantum"}, nil)
	if code != http.StatusBadRequest || !strings.Contains(raw, "quantum") {
		t.Fatalf("unknown policy: status %d body %s", code, raw)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`qosrmd_policy_runs_total{policy="greedy"} 1`,
		`qosrmd_policy_runs_total{policy="brute"} 1`,
		`qosrmd_policy_runs_total{policy="model3"} 0`,
		"qosrmd_jobs_expired_total 0",
		"qosrmd_job_ttl_seconds 3600",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobBatchRejectsDuplicateNames pins the batch-level validation at
// the API edge.
func TestJobBatchRejectsDuplicateNames(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, raw := postJSON(t, ts.URL+"/v1/jobs",
		JobRequest{Specs: []scenario.Spec{testSpec("dup"), testSpec("dup")}}, nil)
	if code != http.StatusBadRequest || !strings.Contains(raw, "dup") {
		t.Fatalf("duplicate names: status %d body %s", code, raw)
	}
}
