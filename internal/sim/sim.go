// Package sim is the multi-core RM co-simulator of Section IV-A
// (Figure 5), built around one event-driven engine (engine.go): it
// replays per-phase detailed-simulation results from the database as
// each application advances through its phase trace, invokes the
// resource manager at every per-core interval boundary, applies the
// chosen settings (with DVFS-switch, core-resize and RM instruction
// overheads), and accounts core, memory and uncore energy exactly as the
// paper's evaluation does (Section IV-D).
//
// The engine drives per-core job queues — jobs arrive, execute a bounded
// amount of work, finish or depart early, and the next queued job takes
// over the core — with per-application QoS relaxation, mid-run QoS-target
// steps, optional queue priorities with preemption, and optional
// donation of drained cores' LLC ways. The paper's static evaluation
// (one application pinned per core, Run) is the degenerate schedule of
// one zero-arrival run-to-target job per core; StaticWorkload builds it
// and Run routes through the same engine.
//
// The allocation decision itself — per-core energy curves in, per-core
// settings out — is delegated to a pluggable rm.Policy selected by
// Config.Policy, so optimizer variants (the paper's optimal reduction,
// the greedy heuristic, brute-force enumeration, future game-theoretic
// solvers) are interchangeable without touching the event loop.
package sim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
)

// Config selects the manager and simulation scale for one run.
type Config struct {
	// RM is the manager to simulate; rm.Idle keeps the baseline setting
	// and is the reference for energy savings.
	RM rm.Kind
	// Model is the performance/energy model the manager predicts with;
	// ignored when Perfect is set.
	Model perfmodel.Kind
	// Perfect replaces the online models with an oracle that knows the
	// next interval's phase and its true time/energy at every setting
	// (the "perfect model" of Figures 2 and 9).
	Perfect bool
	// Interval is the RM invocation granularity in instructions
	// (default: the paper's 100 M).
	Interval int64
	// Scale divides all application instruction counts so full workload
	// sweeps finish quickly (default 2048; 1 reproduces paper scale).
	Scale int64
	// Alpha is the QoS relaxation parameter (default 1, as in the paper).
	Alpha float64
	// DisableOverheads drops RM instruction, DVFS-switch and resize
	// costs — used by the idealised Figure 2 study.
	DisableOverheads bool
	// Policy names the global allocation policy the manager decides
	// with: "model3" (the paper's optimal pairwise curve reduction, the
	// default), "greedy" (marginal-utility heuristic) or "brute"
	// (exhaustive enumeration; exponential — small core counts only).
	// See rm.PolicyNames.
	Policy string
	// GreedyGlobal is the legacy spelling of Policy: "greedy", kept for
	// the ablation drivers; it applies only while Policy is empty.
	GreedyGlobal bool
	// DonateIdleWays lets a drained core — its queue exhausted, the
	// unified engine's generalisation of the static engine's finished
	// core — donate its LLC ways back to the global optimisation instead
	// of keeping them pinned at its final setting, and triggers an
	// immediate re-optimisation when a queue drains. Off by default,
	// preserving the paper's finished-core rule bit for bit.
	DonateIdleWays bool
	// Trace, when non-nil, receives one Event per interval boundary —
	// the "global events" of Figure 5.
	Trace func(Event)

	// noCurveCache disables the per-run Localize memoization; it exists
	// only so equivalence tests can compare the cached run against the
	// seed's recompute-every-interval behaviour.
	noCurveCache bool
}

// Event describes one interval boundary of the co-simulation.
type Event struct {
	TimeNs   float64
	Core     int
	Bench    string
	Interval int64 // interval index within the current application run
	Phase    int   // phase of the completed interval
	Setting  config.Setting
	// Allocations is the same-instant snapshot of every core's LLC way
	// allocation; it always sums to the LLC associativity. The slice is
	// only valid for the duration of the Trace callback — the engine
	// reuses its backing array across intervals — so a callback that
	// retains the Event must copy it.
	Allocations []int
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = config.IntervalInstructions
	}
	if c.Scale <= 0 {
		c.Scale = 2048
	}
	if c.Alpha <= 0 {
		c.Alpha = config.QoSAlpha
	}
	if c.Model == 0 {
		c.Model = perfmodel.Model3
	}
}

// policyName resolves the effective allocation policy name.
func (c *Config) policyName() string {
	if c.Policy != "" {
		return c.Policy
	}
	if c.GreedyGlobal {
		return rm.PolicyGreedy
	}
	return rm.PolicyModel3
}

// AppResult is the per-application outcome of a run.
type AppResult struct {
	Bench    string
	EnergyJ  float64 // core + DRAM energy until the instruction target
	FinishNs float64 // when the target was reached
	// Violations / Intervals track per-interval QoS outcomes: an
	// interval violates when its actual time exceeds the baseline
	// setting's time for the same work.
	Intervals  int64
	Violations int64
	// ViolationSum accumulates Eq. 6 magnitudes for violating intervals.
	ViolationSum float64
	MaxViolation float64
	// BudgetViolations counts intervals exceeding the application's own
	// α-relaxed target (α × baseline time, Eq. 3) — the per-app QoS
	// contract. With α = 1 it equals Violations; a relaxed application
	// exceeds the strict baseline by design without breaking its budget.
	BudgetViolations int64
}

// Result is the outcome of one co-simulation.
type Result struct {
	Apps     []AppResult
	UncoreJ  float64
	TimeNs   float64 // end of simulation: all apps reached the target
	EnergyJ  float64 // total: Σ apps + uncore
	RMCalled int64
}

// ViolationRate returns the fraction of intervals that violated QoS.
func (r *Result) ViolationRate() float64 {
	var v, n int64
	for _, a := range r.Apps {
		v += a.Violations
		n += a.Intervals
	}
	if n == 0 {
		return 0
	}
	return float64(v) / float64(n)
}

// BudgetViolationRate returns the fraction of intervals that exceeded
// their application's α-relaxed target.
func (r *Result) BudgetViolationRate() float64 {
	var v, n int64
	for _, a := range r.Apps {
		v += a.BudgetViolations
		n += a.Intervals
	}
	if n == 0 {
		return 0
	}
	return float64(v) / float64(n)
}

// core is the engine's per-core interval state.
type core struct {
	app     *bench.Benchmark
	setting config.Setting
	stats   *db.Stats // at (phase, setting)
	// alpha is the QoS relaxation the core's RM invocations run under.
	// Static runs copy Config.Alpha here once; dynamic runs vary it per
	// application and through mid-run QoS steps.
	alpha float64

	target   float64 // instructions to execute in total (scaled)
	executed float64 // toward target
	runExec  float64 // within the current application run (for restart)
	runLen   float64 // scaled application length

	intervalIdx  int64 // within the current run
	phase        int
	intervalDone float64 // instructions into the current interval
	intervalT0   float64 // wall-clock start of the current interval
	extraNs      float64 // overhead time inside the current interval

	stallNs float64 // pending non-execution time (RM/DVFS overheads)

	curve    *rm.Curve
	hasCurve bool
	pinned   *rm.Curve // set when the core finishes, at its final setting

	res AppResult
	fin bool
}

// oracleKey memoizes perfect-predictor curves: the oracle reads the
// upcoming phase directly, so its curve depends only on (bench, phase).
type oracleKey struct {
	bench string
	phase int
}

// curveKey scopes a memoized curve to the QoS relaxation it was computed
// with. A run no longer has a single alpha — dynamic runs carry per-app
// relaxations and mid-run QoS steps — so the predictor identity (a
// shared *db.Stats record or an oracleKey) alone does not pin down the
// local optimisation's inputs.
type curveKey struct {
	pred  any
	alpha float64
}

// StaticWorkload wraps the paper's static evaluation shape — one
// application pinned per core, running to the default instruction
// target — as the degenerate dynamic schedule the unified engine
// executes: one zero-arrival, run-to-completion job per core.
func StaticWorkload(apps []*bench.Benchmark) Dynamic {
	dyn := Dynamic{Queues: make([]Queue, len(apps))}
	for i, a := range apps {
		dyn.Queues[i] = Queue{Jobs: []Job{{App: a}}}
	}
	return dyn
}

// Run co-simulates the workload apps (one application per core) under
// cfg, reading all per-interval behaviour from d.
func Run(d *db.DB, apps []*bench.Benchmark, cfg Config) (*Result, error) {
	return RunCtx(nil, d, apps, cfg)
}

// RunCtx is Run honouring ctx: the event loop polls for cancellation
// between interval boundaries, so servers can abandon in-flight
// co-simulations promptly. A nil ctx disables the checks; a cancelled
// run returns ctx's error and no result.
//
// The static workload is executed by the unified engine as one
// run-to-target job per core; the result is bit-identical to the seed
// static co-simulator's (pinned by the cross-seed property tests against
// runStaticReference).
func RunCtx(ctx context.Context, d *db.DB, apps []*bench.Benchmark, cfg Config) (*Result, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	dr, err := runEngine(ctx, d, StaticWorkload(apps), cfg, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{
		UncoreJ:  dr.UncoreJ,
		TimeNs:   dr.TimeNs,
		EnergyJ:  dr.EnergyJ,
		RMCalled: dr.RMCalled,
		Apps:     make([]AppResult, len(apps)),
	}
	// Exactly one run-to-completion job per core: fold the per-job
	// outcomes back into the static per-core result shape.
	for i := range dr.Jobs {
		res.Apps[dr.Jobs[i].Core] = dr.Jobs[i].AppResult
	}
	return res, nil
}

// advance executes ni instructions at the current setting/phase.
func (c *core) advance(ni float64) {
	if ni <= 0 {
		return
	}
	c.res.EnergyJ += c.stats.ActualEnergyJ(c.setting, ni)
	c.executed += ni
	c.runExec += ni
	c.intervalDone += ni
}

// finishInterval records the QoS outcome of the interval that just
// completed and advances the application's phase trace. A database
// lookup failure here means the co-simulation is reading settings or
// phases outside the built grid — a bug, not a recoverable state — so
// it is propagated instead of silently skipping QoS accounting.
func (c *core) finishInterval(d *db.DB, cfg Config, now float64) error {
	// QoS bookkeeping: actual wall time vs the baseline setting's time
	// for the same instructions and phase.
	base, err := d.Stats(c.app.Name, c.phase, config.Baseline())
	if err != nil {
		return fmt.Errorf("sim: baseline stats for %s phase %d: %w", c.app.Name, c.phase, err)
	}
	if c.intervalDone > 0 {
		actual := now - c.intervalT0 - c.extraNs
		ref := base.TPI() * c.intervalDone
		c.res.Intervals++
		// Count a violation only beyond a 0.1% tolerance; sub-permille
		// slowdowns are within replay/interpolation noise.
		if actual > ref*1.001 {
			c.res.Violations++
			v := (actual - ref) / ref
			c.res.ViolationSum += v
			if v > c.res.MaxViolation {
				c.res.MaxViolation = v
			}
		}
		if actual > ref*c.alpha*1.001 {
			c.res.BudgetViolations++
		}
	}

	// Next interval; restart the application when it completes.
	c.intervalIdx++
	if c.runExec >= c.runLen-1e-6 {
		c.runExec = 0
		c.intervalIdx = 0
	}
	c.phase = c.app.PhaseAt(c.intervalIdx)
	return nil
}

// startInterval resets interval-local accounting. As in finishInterval,
// an off-grid lookup indicates a bug and is propagated rather than
// leaving the core silently replaying the previous phase's record.
func (c *core) startInterval(d *db.DB, now float64) error {
	c.intervalDone = 0
	// Overheads charged at this boundary (RM execution, DVFS switch) are
	// still pending as stall time; exclude them from the next interval's
	// QoS measurement.
	c.extraNs = c.stallNs
	c.intervalT0 = now
	s, err := d.Stats(c.app.Name, c.phase, c.setting)
	if err != nil {
		return fmt.Errorf("sim: stats for %s phase %d at %v: %w", c.app.Name, c.phase, c.setting, err)
	}
	c.stats = s
	return nil
}

// refreshCurve rebuilds the invoking core's energy curve from the
// interval that just finished (its phase index was advanced already; the
// completed interval's stats are still in c.stats), going through the
// run's curve cache unless the equivalence tests disabled it.
func (c *core) refreshCurve(d *db.DB, cfg *Config, cache *rm.CurveCache) {
	opts := rm.Options{Alpha: c.alpha}
	switch {
	case cfg.Perfect && cfg.noCurveCache:
		cv := rm.Localize(&oracle{d: d, app: c.app.Name, phase: c.phase}, cfg.RM, opts)
		c.curve = &cv
	case cfg.Perfect:
		// The oracle knows the upcoming interval's phase (c.phase was
		// already advanced by finishInterval) and its true behaviour.
		c.curve = cache.Get(curveKey{oracleKey{c.app.Name, c.phase}, c.alpha}, func() rm.Curve {
			return rm.Localize(&oracle{d: d, app: c.app.Name, phase: c.phase}, cfg.RM, opts)
		})
	case cfg.noCurveCache:
		cv := rm.Localize(&rm.ModelPredictor{Stats: perfmodel.FromDB(c.stats, c.setting), Model: cfg.Model}, cfg.RM, opts)
		c.curve = &cv
	default:
		// The online models see only the completed interval's counters:
		// c.stats still holds the record the interval ran under, and —
		// records being shared grid entries — its pointer identifies the
		// (bench, phase, setting) the predictor is built from.
		c.curve = cache.Get(curveKey{c.stats, c.alpha}, func() rm.Curve {
			return rm.Localize(&rm.ModelPredictor{Stats: perfmodel.FromDB(c.stats, c.setting), Model: cfg.Model}, cfg.RM, opts)
		})
	}
	c.hasCurve = true
}

// applySetting switches the core to s, charging DVFS-switch and
// pipeline-drain overheads (Section III-E) and refreshing the stats
// record the core executes under. A no-op when s is the current setting.
func (o *core) applySetting(d *db.DB, cfg *Config, s config.Setting) error {
	if s == o.setting {
		return nil
	}
	if !cfg.DisableOverheads {
		var over float64
		if s.Freq != o.setting.Freq {
			over += config.DVFSSwitchTimeNs
			o.res.EnergyJ += config.DVFSSwitchEnergyJ
		}
		if s.Core != o.setting.Core {
			// Pipeline drain: ~ROB/IPC cycles (Section III-E).
			over += float64(config.Core(o.setting.Core).ROB) * o.stats.TPI() * config.ResizeDrainFactor
		}
		o.stallNs += over
		o.extraNs += over
	}
	o.setting = s
	stats, err := d.Stats(o.app.Name, o.phase, s)
	if err != nil {
		// The optimizer only hands out valid grid settings; failing
		// to read one back is a bug, not a recoverable state.
		return fmt.Errorf("sim: stats for %s phase %d at %v: %w", o.app.Name, o.phase, s, err)
	}
	o.stats = stats
	return nil
}

// chargeRMOverhead bills one RM execution (Section III-E) to the core it
// ran on, as stall time plus the energy of its instructions.
func (c *core) chargeRMOverhead(cfg *Config, n int) {
	if cfg.DisableOverheads {
		return
	}
	kindOverhead := config.RMInstructionOverhead(n)
	if cfg.RM == rm.RM1 || cfg.RM == rm.RM2 {
		kindOverhead = config.PrevRMInstructionOverhead(n)
	}
	t := float64(kindOverhead) * c.stats.TPI()
	c.res.EnergyJ += c.stats.ActualEnergyJ(c.setting, float64(kindOverhead))
	c.stallNs += t
	c.extraNs += t
}

// pinnedBaseline returns the shared pinned curve at the baseline
// setting — the same for every run, so it is built once.
var pinnedBaseline = sync.OnceValue(func() *rm.Curve {
	return pinnedCurve(config.Baseline())
})

// pinnedCurve is feasible only at the given setting's allocation, used
// for cores that have not yet reported statistics and for cores that
// already finished their work.
func pinnedCurve(s config.Setting) *rm.Curve {
	var cv rm.Curve
	for i := range cv.Energy {
		cv.Energy[i] = math.Inf(1)
	}
	wi := s.Ways - config.MinWays
	cv.Energy[wi] = 0
	cv.Pick[wi] = s
	return &cv
}

// donorCurve accepts every allocation at zero energy: a drained core
// donating its ways is indifferent to how many it keeps, so the
// optimisation hands it the minimum the reduction's tie-breaking settles
// on and frees the rest for running cores. Core size and frequency stay
// at the drained core's final operating point.
func donorCurve(s config.Setting) *rm.Curve {
	var cv rm.Curve
	for i := range cv.Energy {
		cv.Pick[i] = config.Setting{Core: s.Core, Freq: s.Freq, Ways: config.MinWays + i}
	}
	return &cv
}

// oracle is the perfect predictor: it reads the next interval's phase
// and ground-truth statistics straight from the database.
type oracle struct {
	d     *db.DB
	app   string
	phase int
}

// TimePI returns the true next-interval time per instruction at target.
func (o *oracle) TimePI(target config.Setting) float64 {
	s, err := o.d.Stats(o.app, o.phase, target)
	if err != nil {
		return math.Inf(1)
	}
	return s.TPI()
}

// EnergyPI returns the true next-interval energy per instruction.
func (o *oracle) EnergyPI(target config.Setting) float64 {
	s, err := o.d.Stats(o.app, o.phase, target)
	if err != nil {
		return math.Inf(1)
	}
	return s.ActualEnergyJ(target, 1)
}
