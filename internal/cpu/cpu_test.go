package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"qosrm/internal/atd"
	"qosrm/internal/config"
	"qosrm/internal/trace"
)

// testParams builds a moderately memory-intensive stream.
func testParams(seed int64) trace.Params {
	return trace.Params{
		Seed:           seed,
		LoadFrac:       0.25,
		StoreFrac:      0.08,
		BranchFrac:     0.1,
		MulFrac:        0.2,
		BranchMissRate: 0.04,
		DepProb:        0.5,
		DepMean:        4,
		BurstProb:      0.08,
		BurstLen:       6,
		BurstSpread:    12,
		ChaseFrac:      0.1,
		Regions: []trace.Region{
			{Bytes: 1 << 10, Weight: 1, Sequential: true},
			{Bytes: 128 << 10, Weight: 0, WindowBytes: 16 << 10, DriftEvery: 16},
		},
	}
}

func annotated(seed int64, n int) *Annotated {
	return Annotate(trace.Generate(testParams(seed), n))
}

func baseRC() RunConfig {
	return RunConfig{Core: config.SizeM, Ways: config.BaseWays, FreqGHz: config.FBaseGHz}
}

func TestRunDeterministic(t *testing.T) {
	a := annotated(1, 20_000)
	r1 := Run(a, baseRC())
	r2 := Run(a, baseRC())
	if r1 != r2 {
		t.Fatal("identical runs must produce identical results")
	}
}

func TestComponentsSumToTotal(t *testing.T) {
	a := annotated(2, 20_000)
	r := Run(a, baseRC())
	sum := r.BaseNs + r.BranchNs + r.CacheNs + r.MemNs
	if math.Abs(sum-r.TimeNs) > 1e-6*r.TimeNs {
		t.Fatalf("components %.3f != total %.3f", sum, r.TimeNs)
	}
	if r.TimeNs <= 0 {
		t.Fatal("time must be positive")
	}
}

func TestTimeDecreasesWithFrequency(t *testing.T) {
	a := annotated(3, 20_000)
	prev := math.Inf(1)
	for fi := 0; fi < config.NumFreqs; fi++ {
		rc := baseRC()
		rc.FreqGHz = config.FreqGHz(fi)
		r := Run(a, rc)
		if r.TimeNs >= prev {
			t.Fatalf("time did not decrease at f=%.2f: %.1f >= %.1f", rc.FreqGHz, r.TimeNs, prev)
		}
		prev = r.TimeNs
	}
}

func TestTimeMonotonicInWays(t *testing.T) {
	a := annotated(4, 30_000)
	prev := math.Inf(1)
	for w := config.MinWays; w <= config.MaxWays; w++ {
		rc := baseRC()
		rc.Ways = w
		r := Run(a, rc)
		if r.TimeNs > prev*(1+1e-9) {
			t.Fatalf("time grew with more ways at w=%d", w)
		}
		prev = r.TimeNs
	}
}

func TestMissesMonotonicInWays(t *testing.T) {
	a := annotated(5, 30_000)
	prev := int64(math.MaxInt64)
	for w := config.MinWays; w <= config.MaxWays; w++ {
		rc := baseRC()
		rc.Ways = w
		r := Run(a, rc)
		if r.LLCMisses > prev {
			t.Fatalf("misses grew with more ways at w=%d", w)
		}
		if r.LLCHits+r.LLCMisses != r.LLCAccesses {
			t.Fatalf("hits+misses != accesses at w=%d", w)
		}
		prev = r.LLCMisses
	}
}

func TestLargerCoreIsNotSlower(t *testing.T) {
	f := func(seed int64) bool {
		a := annotated(seed, 10_000)
		var prev float64 = math.Inf(1)
		for _, c := range config.Sizes {
			rc := baseRC()
			rc.Core = c
			r := Run(a, rc)
			if r.TimeNs > prev*(1+1e-9) {
				return false
			}
			prev = r.TimeNs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestLeadingMissesBounded(t *testing.T) {
	a := annotated(6, 30_000)
	for _, c := range config.Sizes {
		rc := baseRC()
		rc.Core = c
		r := Run(a, rc)
		if r.LeadingMisses > r.DRAMLoads {
			t.Fatalf("%s: LM %d > DRAM loads %d", c, r.LeadingMisses, r.DRAMLoads)
		}
		if r.DRAMLoads > 0 && r.LeadingMisses == 0 {
			t.Fatalf("%s: misses without leading misses", c)
		}
		if r.MLP < 1 {
			t.Fatalf("%s: MLP %.3f < 1", c, r.MLP)
		}
	}
}

func TestMLPGrowsWithWindow(t *testing.T) {
	// Spread bursts need a larger window to overlap.
	p := testParams(7)
	p.BurstProb = 0.1
	p.BurstLen = 8
	p.BurstSpread = 24
	p.ChaseFrac = 0
	a := Annotate(trace.Generate(p, 40_000))
	var mlps []float64
	for _, c := range config.Sizes {
		rc := baseRC()
		rc.Core = c
		mlps = append(mlps, Run(a, rc).MLP)
	}
	if !(mlps[0] < mlps[1] && mlps[1] < mlps[2]) {
		t.Fatalf("MLP not increasing with core size: %v", mlps)
	}
}

func TestChaseSerialisesMisses(t *testing.T) {
	p := testParams(8)
	p.ChaseFrac = 1
	p.BurstLen = 1
	a := Annotate(trace.Generate(p, 40_000))
	rc := baseRC()
	rc.Core = config.SizeL
	r := Run(a, rc)
	if r.MLP > 1.6 {
		t.Fatalf("fully chased stream has MLP %.2f, want ≈ 1", r.MLP)
	}
}

func TestBranchMispredictionCost(t *testing.T) {
	good := testParams(9)
	good.BranchMissRate = 0
	bad := testParams(9)
	bad.BranchMissRate = 0.2
	ra := Run(Annotate(trace.Generate(good, 30_000)), baseRC())
	rb := Run(Annotate(trace.Generate(bad, 30_000)), baseRC())
	if rb.Mispredicts == 0 || ra.Mispredicts != 0 {
		t.Fatalf("mispredict counts: %d and %d", ra.Mispredicts, rb.Mispredicts)
	}
	if rb.BranchNs <= ra.BranchNs {
		t.Fatal("mispredictions must add branch stall time")
	}
}

func TestAnnotateCountsLevels(t *testing.T) {
	insts := trace.Generate(testParams(10), 20_000)
	a := Annotate(insts)
	var l1, l2 int64
	memOps := 0
	for i, in := range insts {
		if in.Kind != trace.KindLoad && in.Kind != trace.KindStore {
			if a.Level[i] != 0 {
				t.Fatal("non-memory instruction has a level")
			}
			continue
		}
		memOps++
		switch a.Level[i] {
		case 1:
		case 2:
			l1++
		case 3:
			l1++
			l2++
		default:
			t.Fatalf("memory op %d has level %d", i, a.Level[i])
		}
	}
	if l1 != a.L1Misses || l2 != a.L2Misses {
		t.Fatalf("aggregate counters %d/%d, recount %d/%d", a.L1Misses, a.L2Misses, l1, l2)
	}
	if memOps == 0 || l2 == 0 {
		t.Fatal("test stream must produce LLC traffic")
	}
}

func TestTailRecountsMisses(t *testing.T) {
	full := annotated(11, 20_000)
	tail := full.Tail(10_000)
	if len(tail.Insts) != 10_000 {
		t.Fatalf("tail length %d", len(tail.Insts))
	}
	var l1, l2 int64
	for i := range tail.Insts {
		switch tail.Level[i] {
		case 2:
			l1++
		case 3:
			l1++
			l2++
		}
	}
	if l1 != tail.L1Misses || l2 != tail.L2Misses {
		t.Fatal("tail counters inconsistent")
	}
	if tail.L2Misses >= full.L2Misses {
		t.Fatal("tail must have fewer LLC accesses than the full stream")
	}
	// Degenerate cases.
	if full.Tail(0) != full {
		t.Error("Tail(0) should be the identity")
	}
	if got := full.Tail(1 << 30); len(got.Insts) != 0 {
		t.Error("oversized Tail should be empty")
	}
}

func TestATDSeesIssueOrder(t *testing.T) {
	// Feeding the ATD during a run must observe exactly the LLC
	// accesses of the annotation, and the miss estimate at the run's
	// allocation must match the run's behaviour closely (same stream,
	// possibly different order).
	a := annotated(12, 30_000)
	d := atd.MustNew(0)
	rc := baseRC()
	rc.ATD = d
	r := Run(a, rc)
	if d.Accesses() != r.LLCAccesses {
		t.Fatalf("ATD observed %d accesses, run made %d", d.Accesses(), r.LLCAccesses)
	}
	est := d.Misses(rc.Ways)
	if est == 0 {
		t.Fatal("expected misses in the estimate")
	}
	ratio := float64(est) / float64(r.LLCMisses)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("ATD miss estimate %d too far from actual %d", est, r.LLCMisses)
	}
}

func TestWarmATDPrimesTags(t *testing.T) {
	insts := trace.Generate(testParams(13), 30_000)
	full := Annotate(insts)
	tail := full.Tail(15_000)

	cold := atd.MustNew(0)
	rcCold := baseRC()
	rcCold.ATD = cold
	Run(tail, rcCold)

	warm := atd.MustNew(0)
	full.WarmATD(warm, 15_000)
	if warm.Accesses() != 0 {
		t.Fatal("WarmATD must reset profiling counters")
	}
	rcWarm := baseRC()
	rcWarm.ATD = warm
	Run(tail, rcWarm)

	// The warmed ATD sees fewer cold misses at the largest allocation.
	if warm.Misses(config.MaxWays) >= cold.Misses(config.MaxWays) {
		t.Fatalf("warmed ATD estimate %d not below cold %d",
			warm.Misses(config.MaxWays), cold.Misses(config.MaxWays))
	}
}

func TestBandwidthQueueSlowsDenseMisses(t *testing.T) {
	// A dense independent miss stream must show DRAM queueing: total
	// memory time beyond misses × latency / MLP is only possible with
	// the bandwidth model engaged. We check that halving the stream
	// density reduces time by less than half (queueing non-linearity).
	dense := testParams(14)
	dense.BurstProb = 0.5
	dense.BurstLen = 16
	dense.BurstSpread = 1
	dense.ChaseFrac = 0
	sparse := dense
	sparse.BurstProb = 0.05
	rd := Run(Annotate(trace.Generate(dense, 20_000)), baseRC())
	rs := Run(Annotate(trace.Generate(sparse, 20_000)), baseRC())
	if rd.LLCMisses <= rs.LLCMisses {
		t.Skip("stream densities did not separate")
	}
	perMissDense := rd.MemNs / float64(rd.DRAMLoads)
	if perMissDense <= 0 {
		t.Fatal("expected DRAM stall time")
	}
}

func TestInstructionsCounted(t *testing.T) {
	a := annotated(15, 12_345)
	r := Run(a, baseRC())
	if r.Instructions != 12_345 {
		t.Fatalf("instructions %d, want 12345", r.Instructions)
	}
}
