package db

import (
	"fmt"

	"qosrm/internal/bench"
	"qosrm/internal/config"
)

// NumCorners is the number of frequency corners simulated in detail per
// (phase, core size); every other frequency is interpolated between
// them.
const NumCorners = len(fCorners)

// CornerRuns is the raw simulated record block of one phase — the
// complete setting-independent state a serializer needs to round-trip a
// built database. The dense interpolated grid is deliberately excluded:
// it is a pure function of these corners and is re-materialised lazily
// after a load, which keeps the snapshot format minimal and means a
// loaded database is bit-identical to a freshly built one by
// construction of the (deterministic) materialisation.
type CornerRuns = [config.NumSizes][NumCorners][NumWays]Stats

// New returns an empty database shell with the given build parameters,
// ready to receive phases via AddPhase — the entry point for snapshot
// loaders.
func New(traceLen, warmup int) *DB {
	return &DB{
		TraceLen: traceLen,
		Warmup:   warmup,
		Phases:   make(map[string][]*phaseData),
	}
}

// AddPhase appends an empty phase to the named benchmark and returns a
// pointer to its corner records for the caller to fill. The returned
// block must be fully populated before the database is read.
func (d *DB) AddPhase(benchName string) *CornerRuns {
	pd := &phaseData{}
	d.Phases[benchName] = append(d.Phases[benchName], pd)
	return &pd.Runs
}

// AddPhases appends n empty phases to the named benchmark and returns
// their corner blocks in order — AddPhase batched for loaders that know
// the phase count up front: one backing allocation and one exactly-sized
// pointer slice per benchmark instead of a heap object and an append
// step per phase.
func (d *DB) AddPhases(benchName string, n int) []*CornerRuns {
	if n == 0 {
		// Match the AddPhase loop: a zero-phase benchmark leaves the
		// map untouched rather than gaining an entry with a nil slice.
		return nil
	}
	block := make([]phaseData, n)
	out := make([]*CornerRuns, n)
	ps := d.Phases[benchName]
	if cap(ps)-len(ps) < n {
		grown := make([]*phaseData, len(ps), len(ps)+n)
		copy(grown, ps)
		ps = grown
	}
	for i := range block {
		ps = append(ps, &block[i])
		out[i] = &block[i].Runs
	}
	d.Phases[benchName] = ps
	return out
}

// Corners returns a read-only view of the simulated corner records of
// one phase — the serializer-side counterpart of AddPhase.
func (d *DB) Corners(benchName string, phase int) (*CornerRuns, error) {
	phases, ok := d.Phases[benchName]
	if !ok {
		return nil, fmt.Errorf("db: unknown benchmark %q", benchName)
	}
	if phase < 0 || phase >= len(phases) {
		return nil, fmt.Errorf("db: %s has no phase %d", benchName, phase)
	}
	pd := phases[phase]
	if pd == nil {
		return nil, fmt.Errorf("db: %s phase %d not built", benchName, phase)
	}
	return &pd.Runs, nil
}

// Covers reports whether the database holds every phase of every given
// benchmark — the coverage check callers run before serving a loaded or
// cached database.
func (d *DB) Covers(benches []*bench.Benchmark) bool {
	for _, b := range benches {
		phases, ok := d.Phases[b.Name]
		if !ok || len(phases) != len(b.Phases) {
			return false
		}
		for _, p := range phases {
			if p == nil {
				return false
			}
		}
	}
	return true
}
