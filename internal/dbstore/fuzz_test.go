package dbstore

import (
	"bytes"
	"encoding/binary"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/db"
)

// FuzzSnapshotLoad drives the snapshot decoder with corrupted inputs:
// whatever the bytes, Read must either succeed on a well-formed snapshot
// or return a clean error — never panic, never over-allocate, and never
// hand back a database that fails its own integrity checks.
func FuzzSnapshotLoad(f *testing.F) {
	// Seed corpus: a genuine snapshot plus the corruption classes the
	// unit tests enumerate, so the fuzzer starts at the format's edges.
	mcf, err := bench.ByName("mcf")
	if err != nil {
		f.Fatal(err)
	}
	d, err := db.Build([]*bench.Benchmark{mcf}, db.Options{TraceLen: 1024, Warmup: 256})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	bumped := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(bumped[8:12], Version+7)
	f.Add(bumped)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	huge := append([]byte(nil), valid[:headerSize]...)
	binary.LittleEndian.PutUint64(huge[24:32], 1<<60)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte("QOSRMSNP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, h, err := Read(bytes.NewReader(data))
		if err != nil {
			if d != nil || h != nil {
				t.Fatal("failed Read returned a partial database")
			}
			return
		}
		// A snapshot the decoder accepts must be coherent: sane header
		// counts and a database whose params hash verifies (Read checked
		// it, so recomputing must agree).
		if h.Benchmarks <= 0 || h.Phases <= 0 || d.TraceLen <= 0 {
			t.Fatalf("accepted snapshot with incoherent header %+v", h)
		}
		if ParamsHash(d) != h.ParamsHash {
			t.Fatal("accepted snapshot whose params hash does not verify")
		}
	})
}
