package db

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"

	"qosrm/internal/bench"
)

// fileVersion guards against stale cached databases after schema changes.
const fileVersion = 4

// fileHeader is the serialised envelope.
type fileHeader struct {
	Version  int
	TraceLen int
	Warmup   int
}

// Save writes the database to path as gzip-compressed gob.
func (d *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(fileHeader{fileVersion, d.TraceLen, d.Warmup}); err != nil {
		return fmt.Errorf("db: save header: %w", err)
	}
	if err := enc.Encode(d.Phases); err != nil {
		return fmt.Errorf("db: save phases: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	return f.Close()
}

// Load reads a database previously written by Save. It fails if the file
// was produced by an incompatible schema version.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	defer zr.Close()
	dec := gob.NewDecoder(zr)
	var h fileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("db: load header: %w", err)
	}
	if h.Version != fileVersion {
		return nil, fmt.Errorf("db: file version %d, want %d (rebuild with dbgen)", h.Version, fileVersion)
	}
	d := &DB{TraceLen: h.TraceLen, Warmup: h.Warmup}
	if err := dec.Decode(&d.Phases); err != nil {
		return nil, fmt.Errorf("db: load phases: %w", err)
	}
	return d, nil
}

// LoadOrBuild loads the database at path when present and schema
// compatible; otherwise it builds one from benches and, when path is
// non-empty, caches it there. A cached database built with a different
// trace length than opts requests is rebuilt.
func LoadOrBuild(path string, benches []*bench.Benchmark, opts Options) (*DB, error) {
	opts.fill()
	if path != "" {
		if d, err := Load(path); err == nil && d.TraceLen == opts.TraceLen && complete(d, benches) {
			return d, nil
		}
	}
	d, err := Build(benches, opts)
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := d.Save(path); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// complete reports whether d covers every phase of every benchmark.
func complete(d *DB, benches []*bench.Benchmark) bool { return d.Covers(benches) }
