// Policy shoot-out: the same multiprogrammed churn workload decided by
// every registered allocation policy — "model3" (the paper's optimal
// pairwise curve reduction), "greedy" (the marginal-utility heuristic)
// and "brute" (exhaustive enumeration) — so the optimality gap the
// cheaper heuristics leave is measured on identical schedules. The
// churn itself is drawn from a Poisson arrival process, the trace-like
// load the PR 5 generator added, and a second pass demonstrates
// idle-way donation on top of the winning policy.
package main

import (
	"fmt"
	"log"

	"qosrm"
)

func main() {
	log.SetFlags(0)

	// A small database keeps the example fast; the scheduled
	// applications are known up front.
	churn, err := qosrm.GenerateChurnWorkloadsOpts(qosrm.Scenario1, 4, 3, 42,
		qosrm.ChurnOptions{Process: qosrm.ArrivalPoisson})
	if err != nil {
		log.Fatal(err)
	}
	spec := qosrm.ChurnScenario("poisson-churn", churn, 2e9)

	var apps []*qosrm.Benchmark
	seen := map[string]bool{}
	for _, core := range spec.Cores {
		for _, j := range core.Jobs {
			if !seen[j.App] {
				seen[j.App] = true
				apps = append(apps, qosrm.MustBenchmark(j.App))
			}
		}
	}
	sys, err := qosrm.Open(qosrm.Options{TraceLen: 16384, Warmup: 4096, Benchmarks: apps})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== Policy shoot-out over %q (%d cores, %d apps) ==\n",
		spec.Name, len(spec.Cores), len(apps))
	specs, err := qosrm.PolicySweep([]qosrm.ScenarioSpec{spec}, sys.Policies())
	if err != nil {
		log.Fatal(err)
	}
	reports, err := sys.SweepScenarios(specs, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("  %-7s saving %6.2f%%  violations %6.3f%%  budget %6.3f%%  rm calls %d\n",
			r.Policy, r.Saving*100, r.ViolationRate*100, r.BudgetViolationRate*100, r.RMCalled)
	}

	fmt.Println()
	fmt.Println("== Idle-way donation on the same workload ==")
	for _, donate := range []bool{false, true} {
		s := spec
		s.Name = fmt.Sprintf("%s donate=%v", spec.Name, donate)
		s.DonateIdleWays = donate
		r, err := sys.RunScenario(&s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  donate=%-5v saving %6.2f%%  rm calls %d\n", donate, r.Saving*100, r.RMCalled)
	}
}
