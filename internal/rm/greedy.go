package rm

import (
	"math"

	"qosrm/internal/config"
)

// GreedyGlobalOptimize is a marginal-utility alternative to the paper's
// optimal pairwise reduction: starting from the minimum allocation per
// core, it repeatedly grants one way to the core whose energy curve
// improves the most. This is the classic greedy partitioning heuristic
// (lookahead-free UCP); it is cheaper — O(A·n) versus O(n·A²) — but only
// optimal when all curves are convex. The ablation quantifies the energy
// it leaves on the table.
//
// It returns false when even the starting minimum allocation is
// infeasible for some core (an infeasible Energy[0] entry with no
// feasible path upward).
func GreedyGlobalOptimize(curves []*Curve, totalWays int) ([]config.Setting, bool) {
	n := len(curves)
	if n == 0 {
		return nil, false
	}
	out := make([]config.Setting, n)
	if !greedyAllocate(curves, totalWays, make([]int, n), out) {
		return nil, false
	}
	return out, true
}

// greedyAllocate is the heuristic's core, writing into caller-provided
// buffers (len(alloc) == len(curves), len(out) ≥ len(curves)) so the
// policy layer can run it allocation-free per invocation.
func greedyAllocate(curves []*Curve, totalWays int, alloc []int, out []config.Setting) bool {
	n := len(curves)
	remaining := totalWays - n*config.MinWays
	if remaining < 0 {
		return false
	}
	for i := range alloc {
		alloc[i] = config.MinWays
	}
	// Grant ways one at a time to the core with the best marginal gain.
	// Infinite-energy positions get -Inf gain unless the step escapes
	// infeasibility, which is always worth taking.
	for ; remaining > 0; remaining-- {
		best, bestGain := -1, math.Inf(-1)
		for i := range curves {
			if alloc[i] >= config.MaxWays {
				continue
			}
			cur := curves[i].Energy[alloc[i]-config.MinWays]
			next := curves[i].Energy[alloc[i]+1-config.MinWays]
			var gain float64
			switch {
			case math.IsInf(cur, 1) && !math.IsInf(next, 1):
				gain = math.Inf(1) // escaping infeasibility dominates
			case math.IsInf(next, 1):
				gain = math.Inf(-1)
			default:
				gain = cur - next
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return false
		}
		alloc[best]++
	}
	for i, w := range alloc {
		if math.IsInf(curves[i].Energy[w-config.MinWays], 1) {
			return false
		}
		out[i] = curves[i].Pick[w-config.MinWays]
	}
	return true
}
