package server

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"qosrm/internal/faultinject"
	"qosrm/internal/jobstore"
	"qosrm/internal/scenario"
)

// readBody drains and closes a response body.
func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// decodeBody decodes a JSON response body (without closing it; the
// caller's defer does).
func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// waitJobDone polls a job (white box) until it completes.
func waitJobDone(t *testing.T, srv *Server, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j := srv.jobByID(id)
		if j == nil {
			t.Fatalf("job %s disappeared", id)
		}
		st := j.status()
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (%d/%d)", id, st.State, st.Done, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalServesFinishedAcrossRestart: a completed job's reports are
// replayed from the journal by the next boot — same ID, same state,
// bit-identical reports, no recomputation (asserted via the run
// counter).
func TestJournalServesFinishedAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	srv, err := New(sharedDB(t), Options{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	specs := []scenario.Spec{testSpec("jnl-a"), testSpec("jnl-b")}
	j, _, err := srv.submit(specs, "jnl-key")
	if err != nil {
		t.Fatal(err)
	}
	want := waitJobDone(t, srv, j.id)
	srv.Close()

	srv2, err := New(sharedDB(t), Options{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	j2 := srv2.jobByID(j.id)
	if j2 == nil {
		t.Fatalf("job %s not replayed", j.id)
	}
	got := j2.status()
	if got.State != JobDone {
		t.Fatalf("replayed job state %s, want done", got.State)
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Fatal("replayed reports differ from the original run")
	}
	if n := srv2.metrics.specsRun.Load(); n != 0 {
		t.Fatalf("restart recomputed %d scenarios for a finished job", n)
	}
	if srv2.metrics.journalReplays.Load() == 0 {
		t.Fatal("journal_replays_total did not count the replay")
	}
}

// TestJournalResumesPendingAcrossRestart: scenarios acknowledged but
// never finished (only a submit event in the journal — the shape a
// SIGKILL mid-sweep leaves) are re-enqueued by the next boot and run to
// the same reports an uninterrupted sweep produces.
func TestJournalResumesPendingAcrossRestart(t *testing.T) {
	d := sharedDB(t)
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	specs := []scenario.Spec{testSpec("resume-a"), testSpec("resume-b")}

	// Fabricate the crash remnant directly: an acked submit, no finishes.
	jnl, _, err := jobstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ev := jobstore.Event{Type: jobstore.EventSubmit, Job: "j7", Key: "resume-key", Specs: specs}
	if err := jnl.Append(ev); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	srv, err := New(d, Options{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	st := waitJobDone(t, srv, "j7")
	if st.State != JobDone || st.Key != "resume-key" {
		t.Fatalf("resumed job ended %+v", st)
	}
	want, err := scenario.Sweep(d, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(st.Reports[i], want[i]) {
			t.Fatalf("resumed report %d differs from uninterrupted sweep", i)
		}
	}
	// New submissions must not collide with the replayed id space.
	j, _, err := srv.submit([]scenario.Spec{testSpec("resume-c")}, "")
	if err != nil {
		t.Fatal(err)
	}
	if j.id == "j7" || jobNumT(t, j.id) <= 7 {
		t.Fatalf("post-replay id %s collides with replayed j7", j.id)
	}
}

func jobNumT(t *testing.T, id string) int64 {
	t.Helper()
	n, ok := jobNum(id)
	if !ok {
		t.Fatalf("malformed job id %q", id)
	}
	return n
}

// TestIdempotencyKeyAcrossRestart: the same Idempotency-Key returns the
// same job before and after a restart, counted as a replay.
func TestIdempotencyKeyAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	srv, err := New(sharedDB(t), Options{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	specs := []scenario.Spec{testSpec("idem")}
	j1, replayed, err := srv.submit(specs, "idem-key")
	if err != nil || replayed {
		t.Fatalf("first submit: %v replayed=%v", err, replayed)
	}
	j2, replayed, err := srv.submit(specs, "idem-key")
	if err != nil || !replayed || j2.id != j1.id {
		t.Fatalf("same-process dedupe failed: %v replayed=%v id=%s want %s", err, replayed, j2.id, j1.id)
	}
	waitJobDone(t, srv, j1.id)
	srv.Close()

	srv2, err := New(sharedDB(t), Options{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	j3, replayed, err := srv2.submit(specs, "idem-key")
	if err != nil || !replayed || j3.id != j1.id {
		t.Fatalf("cross-restart dedupe failed: %v replayed=%v id=%s want %s", err, replayed, j3.id, j1.id)
	}
}

// TestIdempotencyOverHTTP pins the wire contract: the header, the
// replay marker, and the key echoed in the status.
func TestIdempotencyOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	body := `{"specs":[` + specJSON(t, testSpec("http-idem")) + `]}`

	submit := func() (*http.Response, JobStatus) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "wire-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if resp.StatusCode == http.StatusAccepted {
			decodeBody(t, resp, &st)
		}
		return resp, st
	}
	r1, st1 := submit()
	if r1.StatusCode != http.StatusAccepted || st1.Key != "wire-key" {
		t.Fatalf("first submit: %d %+v", r1.StatusCode, st1)
	}
	if r1.Header.Get("Idempotency-Replayed") != "" {
		t.Fatal("fresh submit marked as replayed")
	}
	r2, st2 := submit()
	if r2.StatusCode != http.StatusAccepted || st2.ID != st1.ID {
		t.Fatalf("retried submit: %d id %s, want %s", r2.StatusCode, st2.ID, st1.ID)
	}
	if r2.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("deduplicated submit not marked as replayed")
	}
}

// TestRejectReasons: every rejection class carries its machine-readable
// reason in the envelope, and transient ones a Retry-After.
func TestRejectReasons(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})

	// Permanent: batch larger than the queue can ever hold.
	specs := []scenario.Spec{testSpec("r-a"), testSpec("r-b"), testSpec("r-c")}
	code, raw := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Specs: specs}, nil)
	if code != http.StatusBadRequest || !strings.Contains(raw, `"reason":"batch_too_large"`) {
		t.Fatalf("oversized batch: %d %s", code, raw)
	}

	// Transient: queue occupied right now.
	srv.mu.Lock()
	srv.queued = 2
	srv.mu.Unlock()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"specs":[`+specJSON(t, testSpec("r-d"))+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	raw = readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(raw, `"reason":"queue_full"`) {
		t.Fatalf("full queue: %d %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	srv.mu.Lock()
	srv.queued = 0
	srv.mu.Unlock()

	// Transient: draining.
	srv.mu.Lock()
	srv.closed = true
	srv.mu.Unlock()
	code, raw = postJSON(t, ts.URL+"/v1/jobs",
		JobRequest{Specs: []scenario.Spec{testSpec("r-e")}}, nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(raw, `"reason":"shutting_down"`) {
		t.Fatalf("draining: %d %s", code, raw)
	}
	srv.mu.Lock()
	srv.closed = false
	srv.mu.Unlock()
}

// TestJournalErrorRejectsSubmit: a failed journal append must refuse
// the submission (500, journal_error) rather than acknowledge a job
// that would vanish on restart.
func TestJournalErrorRejectsSubmit(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	srv, ts := newTestServer(t, Options{Workers: 1, JournalPath: path})

	if err := faultinject.Enable("jobstore.append", "error*1"); err != nil {
		t.Fatal(err)
	}
	code, raw := postJSON(t, ts.URL+"/v1/jobs",
		JobRequest{Specs: []scenario.Spec{testSpec("jerr")}}, nil)
	if code != http.StatusInternalServerError || !strings.Contains(raw, `"reason":"journal_error"`) {
		t.Fatalf("journal failure: %d %s", code, raw)
	}
	if srv.metrics.journalErrors.Load() == 0 {
		t.Fatal("journal_errors_total not counted")
	}
	// The rejection must not leak queue capacity or a half-registered job.
	var st JobStatus
	code, raw = postJSON(t, ts.URL+"/v1/jobs",
		JobRequest{Specs: []scenario.Spec{testSpec("jerr-2")}}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit after journal failure: %d %s", code, raw)
	}
	waitJobDone(t, srv, st.ID)
}

// TestRateLimit: a client hammering past its bucket gets 429 with
// Retry-After and the rate_limited reason; /healthz stays unlimited;
// the shed counter appears in /metrics.
func TestRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, RatePerSec: 0.001, RateBurst: 2})

	ok := 0
	var limited *http.Response
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/savings", "application/json",
			strings.NewReader(`{"apps":["mcf"],"rm":"RM1"}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			limited = resp
			break
		}
		readBody(t, resp)
		ok++
	}
	if limited == nil {
		t.Fatalf("no request limited after burst of 2 (%d passed)", ok)
	}
	raw := readBody(t, limited)
	if !strings.Contains(raw, `"reason":"rate_limited"`) {
		t.Fatalf("429 body: %s", raw)
	}
	if limited.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Health is exempt so orchestrators can always probe.
	var h Health
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz limited: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); !strings.Contains(body, "qosrmd_requests_shed_total 1") {
		t.Fatalf("metrics missing shed counter:\n%s", body)
	}
}

// TestHealthDegradedNearCapacity: /healthz flips to degraded at 90%
// queue occupancy and reports the occupancy numbers it derives from.
func TestHealthDegradedNearCapacity(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 10})
	var h Health
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != HealthOK {
		t.Fatalf("idle health %d %+v", code, h)
	}
	if h.QueueDepth != 10 || h.Journal {
		t.Fatalf("health fields %+v", h)
	}
	srv.mu.Lock()
	srv.queued = 9
	srv.mu.Unlock()
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != HealthDegraded {
		t.Fatalf("near-capacity health %d %+v", code, h)
	}
	if h.Queued != 9 {
		t.Fatalf("health queued %d, want 9", h.Queued)
	}
	srv.mu.Lock()
	srv.queued = 0
	srv.mu.Unlock()
}

// TestWorkerRetriesTransientFailure: an injected scenario error is
// retried and the job still completes cleanly; the retry counter moves.
func TestWorkerRetriesTransientFailure(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	srv, _ := newTestServer(t, Options{Workers: 1, JobRetries: 2})
	if err := faultinject.Enable("server.worker", "error*2"); err != nil {
		t.Fatal(err)
	}
	j, _, err := srv.submit([]scenario.Spec{testSpec("retry")}, "")
	if err != nil {
		t.Fatal(err)
	}
	st := waitJobDone(t, srv, j.id)
	if st.State != JobDone || st.Error != "" {
		t.Fatalf("job did not recover from injected errors: %+v", st)
	}
	if got := srv.metrics.specsRetried.Load(); got != 2 {
		t.Fatalf("scenarios_retried_total %d, want 2", got)
	}
	// Retried pickups are the same unit of work: started counts the
	// scenario once, not once per attempt.
	j.mu.Lock()
	started := j.started
	j.mu.Unlock()
	if started != 1 {
		t.Fatalf("job.started %d after 2 retries, want 1", started)
	}
}

// TestWorkerPanicRecovered: a panicking scenario neither kills the pool
// nor the job — it is retried (the panic counter moves) and, if the
// fault persists past the retry budget, recorded as the job's error.
func TestWorkerPanicRecovered(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	srv, _ := newTestServer(t, Options{Workers: 1, JobRetries: 1})
	if err := faultinject.Enable("server.worker", "panic*2"); err != nil {
		t.Fatal(err)
	}
	j, _, err := srv.submit([]scenario.Spec{testSpec("panic")}, "")
	if err != nil {
		t.Fatal(err)
	}
	st := waitJobDone(t, srv, j.id)
	if st.State != JobFailed || !strings.Contains(st.Error, "panic") {
		t.Fatalf("persistent panic not surfaced as job error: %+v", st)
	}
	if got := srv.metrics.workerPanics.Load(); got != 2 {
		t.Fatalf("worker_panics_total %d, want 2", got)
	}
	// The pool survived: the next job runs normally.
	j2, _, err := srv.submit([]scenario.Spec{testSpec("after-panic")}, "")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJobDone(t, srv, j2.id); st.State != JobDone {
		t.Fatalf("pool dead after panic: %+v", st)
	}
}

// TestJournalCompactionOnTTLExpiry drives the GC with a fake clock:
// expiring a finished job journals the expiry and compacts the log, so
// a reboot neither serves nor re-runs the expired job — and a job
// finished after the sweep survives the compaction.
func TestJournalCompactionOnTTLExpiry(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	path := filepath.Join(t.TempDir(), "jobs.jnl")
	srv, _ := newTestServer(t, Options{Workers: 1, JournalPath: path, JobTTL: time.Hour, clock: clock.now})

	j1, _, err := srv.submit([]scenario.Spec{testSpec("gc-old")}, "gc-key")
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, srv, j1.id)
	grown := srv.journal.Size()

	// Age the first job past its TTL, then finish a second one young.
	clock.advance(2 * time.Hour)
	j2, _, err := srv.submit([]scenario.Spec{testSpec("gc-young")}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, srv, j2.id)

	if n := srv.gcFinishedJobs(clock.now()); n != 1 {
		t.Fatalf("expired %d jobs, want 1", n)
	}
	if srv.metrics.journalCompacts.Load() != 1 {
		t.Fatal("expiry did not compact the journal")
	}
	if srv.journal.Size() >= grown {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", grown, srv.journal.Size())
	}
	// The key died with its job: reusing it starts a fresh job.
	j3, replayed, err := srv.submit([]scenario.Spec{testSpec("gc-rekey")}, "gc-key")
	if err != nil || replayed || j3.id == j1.id {
		t.Fatalf("expired key still deduplicates: %v replayed=%v id=%s", err, replayed, j3.id)
	}
	waitJobDone(t, srv, j3.id)
	srv.Close()

	// Reboot: the expired job is gone, the survivors are served.
	srv2, err := New(sharedDB(t), Options{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.jobByID(j1.id) != nil {
		t.Fatalf("expired job %s resurrected by replay", j1.id)
	}
	for _, id := range []string{j2.id, j3.id} {
		j := srv2.jobByID(id)
		if j == nil || j.status().State != JobDone {
			t.Fatalf("job %s lost across compaction + restart", id)
		}
	}
}

// specJSON marshals one spec for hand-built request bodies.
func specJSON(t *testing.T, s scenario.Spec) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
