// Package server is the QoS-RM serving layer: an HTTP/JSON service over
// one warm configuration database, so many processes and clients share a
// single build (or snapshot load) instead of each rebuilding it.
//
// Endpoints:
//
//	POST /v1/savings      application mix + manager config → energy
//	                      saving and per-app results (synchronous)
//	POST /v1/scenarios    one scenario.Spec body → scenario.Report
//	                      (synchronous; bit-identical to the in-process
//	                      System.RunScenario, equivalence-tested)
//	POST /v1/jobs         a batch of specs → job id; the batch is swept
//	                      asynchronously by a bounded worker pool, each
//	                      worker reusing one sim.RunWorkspace across all
//	                      scenarios it executes
//	GET  /v1/jobs/{id}    job progress and, once done, the reports
//	GET  /v1/cluster      this node's membership view (anti-entropy pull)
//	POST /v1/cluster      one push-pull gossip exchange: merge the
//	                      sender's view, answer with this node's
//	GET  /v1/snapshot     the database snapshot bytes (dbstore format) —
//	                      how a fresh node joins without a local .qosdb
//	GET  /healthz         liveness + the database the server holds
//	GET  /metrics         Prometheus-style text counters
//
// Request bodies are size-bounded, specs are validated with the same
// scenario.Validate the library uses, synchronous runs are cancelled
// when the client disconnects, and Close aborts in-flight work through
// the lifecycle context threaded into the simulation engines.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qosrm/internal/api"
	"qosrm/internal/bench"
	"qosrm/internal/cluster"
	"qosrm/internal/db"
	"qosrm/internal/dbstore"
	"qosrm/internal/jobstore"
	"qosrm/internal/obs"
	"qosrm/internal/rm"
	"qosrm/internal/scenario"
	"qosrm/internal/sim"
)

// Options configures a Server.
type Options struct {
	// Workers is the job worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-unfinished scenarios
	// across all jobs (default 256). A submission that does not fit is
	// rejected with 503 rather than queued unboundedly.
	QueueDepth int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxApps bounds the core count of one savings request (default 64).
	MaxApps int
	// JobTTL is how long finished (done or failed) jobs stay queryable
	// before the GC loop drops them; a long-lived daemon must not grow
	// its jobs map forever. Default 1 h; negative retains jobs for the
	// server's lifetime (the pre-TTL behaviour). Unfinished jobs are
	// never collected.
	JobTTL time.Duration
	// JournalPath enables the durable job journal (internal/jobstore):
	// submissions are journaled before they are acknowledged, scenario
	// outcomes as they complete, and New replays the journal — pending
	// scenarios re-enqueue, finished reports are served from the log —
	// so a crashed or redeployed daemon resumes where it stopped.
	// Empty keeps job state purely in memory.
	JournalPath string
	// JobRetries is how many times a failed scenario is retried before
	// its error is recorded (transient faults — an injected failpoint,
	// a panicking worker — should not fail a whole sweep). Default 2;
	// negative disables retries.
	JobRetries int
	// RatePerSec enables per-client token-bucket rate limiting of the
	// /v1 endpoints at this sustained rate; 0 disables limiting.
	// Clients are keyed by remote host. Limited requests get 429 with a
	// Retry-After header.
	RatePerSec float64
	// RateBurst is the token-bucket depth (default: one second's worth
	// of RatePerSec).
	RateBurst int
	// Peers seeds cluster mode: base URLs of other qosrmd nodes (e.g.
	// "http://b:8423"). Seeds bootstrap the gossip membership — once a
	// seed answers, discovery takes over and the live rotation is
	// maintained by the failure detector, so the list need not be
	// complete or stay correct. A submit this node would reject with
	// queue_full is forwarded to the least-loaded live member (ranked
	// by the /healthz Queued/QueueDepth fields) instead; the caller
	// gets the member's job handle with JobStatus.Origin set, and the
	// member's journal owns the job. Empty with no Join runs
	// standalone.
	Peers []string
	// Join lists seed nodes of an existing cluster to fetch membership
	// from — semantically identical to Peers (both are gossip seeds);
	// the split mirrors the qosrmd flags, where -peers is the static
	// PR 7 shape and -join the one-seed entry point.
	Join []string
	// NodeID is this node's stable cluster identity, carried in gossip
	// and in the forwarding trail (default: random per boot). Give a
	// long-lived node a fixed ID so a restart at the same address is
	// recognised as a rejoin rather than a new node.
	NodeID string
	// Advertise is the base URL other cluster nodes reach this node at
	// (e.g. "http://a:8423"). An advertising node introduces itself
	// into the membership it joins; without it the node still probes,
	// forwards and serves, but never enters a peer's rotation.
	Advertise string
	// GossipInterval is the anti-entropy cadence: every interval the
	// node exchanges member lists with each address it tracks (dead
	// ones included, which is how rejoins are noticed). Default 1 s;
	// negative disables the gossip loop entirely.
	GossipInterval time.Duration
	// SuspectTimeout is the failure detector's confirmation window: a
	// member goes suspect on its first missed probe and dead when a
	// further probe fails at least this long after the suspicion
	// (default 3 s). Dead members leave the forwarding rotation.
	SuspectTimeout time.Duration
	// ForwardHops bounds forwarding chains through the cluster: a
	// request whose X-Qosrm-Forward-Trail already names this many nodes
	// is rejected with queue_full instead of forwarded again. The trail
	// also excludes every visited node from the rotation, so forwarding
	// terminates in any topology without revisiting a node. Default 3;
	// negative disables forwarding.
	ForwardHops int
	// ForwardTimeout bounds one forwarding attempt end to end — peer
	// health polls plus the forwarded submit (default 5 s).
	ForwardTimeout time.Duration
	// Logger receives the structured access log (one record per request:
	// route, status, duration, request id, node id, job id) and server
	// lifecycle notes. Nil discards everything — embedded servers and
	// tests stay silent, and the disabled-level check keeps the request
	// path free of logging allocations.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose internals and belong behind an
	// operator's explicit flag.
	EnablePprof bool
	// EventBuffer is the per-job interval-event ring capacity backing
	// GET /v1/jobs/{id}/events (default 256). The ring overwrites its
	// oldest events when a subscriber lags — bounded memory per job, an
	// explicit dropped count on the stream, and the engine never waits.
	EventBuffer int

	// clock overrides the server's time source; nil means time.Now.
	// Unexported: only in-package tests drive the job GC and the
	// failure detector with a fake clock (it must be set before New
	// starts the background loops — replacing the clock on a live
	// server would race with them).
	clock func() time.Time
	// transport overrides the HTTP transport of the cluster-facing
	// clients (gossip exchanges, health probes, forwards, origin
	// polls). Unexported: the chaos tests inject network partitions
	// through it.
	transport http.RoundTripper
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxApps <= 0 {
		o.MaxApps = 64
	}
	if o.JobTTL == 0 {
		o.JobTTL = time.Hour
	}
	switch {
	case o.JobRetries == 0:
		o.JobRetries = 2
	case o.JobRetries < 0:
		o.JobRetries = 0
	}
	switch {
	case o.ForwardHops == 0:
		o.ForwardHops = 3
	case o.ForwardHops < 0:
		o.ForwardHops = 0
	}
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 5 * time.Second
	}
	if o.GossipInterval == 0 {
		o.GossipInterval = time.Second
	}
	if o.NodeID == "" {
		o.NodeID = cluster.NewID()
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 256
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.clock == nil {
		o.clock = time.Now
	}
}

// metrics are the server's monotonic counters, exposed at /metrics.
type metrics struct {
	requests      [routeCount]atomic.Int64
	errors        atomic.Int64
	specsQueued   atomic.Int64
	specsRun      atomic.Int64
	specsFailed   atomic.Int64
	specsRetried  atomic.Int64
	jobsSubmitted atomic.Int64
	jobsFinished  atomic.Int64
	jobsExpired   atomic.Int64
	savingsNs     atomic.Int64
	scenariosNs   atomic.Int64
	// Reliability counters: requests shed at the edge (rate limit +
	// transient 503s), submissions deduplicated by idempotency key,
	// worker panics converted to scenario errors, and the journal's
	// replay/append/compaction activity.
	requestsShed      atomic.Int64
	idempotentReplays atomic.Int64
	workerPanics      atomic.Int64
	journalReplays    atomic.Int64
	journalErrors     atomic.Int64
	journalCompacts   atomic.Int64
	// Cluster counters: batches this node pushed to a peer, batches it
	// admitted on behalf of a peer, and forwarding attempts that found
	// no peer able to take the overflow (the caller then got the
	// honest queue_full 503).
	jobsForwarded   atomic.Int64
	forwardReceived atomic.Int64
	forwardFailed   atomic.Int64
	// Membership counters: successful anti-entropy exchanges, probes
	// the failure detector counted as missed, incarnation bumps this
	// node made to refute a false death rumor about itself, and
	// snapshots streamed to joining nodes.
	clusterExchanges     atomic.Int64
	clusterProbeFailures atomic.Int64
	clusterRefutations   atomic.Int64
	snapshotsServed      atomic.Int64
	// policyRuns counts managed runs per allocation policy, indexed as
	// policyNames — the per-policy serving metric. Sized from the
	// registry at server construction, so new policies get a slot
	// automatically.
	policyRuns []atomic.Int64
	// Latency distributions (lock-free log2-bucket histograms, exposed
	// in Prometheus histogram exposition): HTTP request duration per
	// route, job queue wait (submit → first worker pickup) and execution
	// (one scenario run), forward round-trip, gossip exchange and peer
	// health-probe durations.
	httpDur        [routeCount]obs.Histogram
	jobQueueWait   obs.Histogram
	jobExec        obs.Histogram
	forwardRTT     obs.Histogram
	gossipExchange obs.Histogram
	peerProbe      obs.Histogram
}

// policyNames snapshots the policy registry once; countPolicy and the
// /metrics renderer index policyRuns by this slice.
var policyNames = rm.PolicyNames()

// countPolicy records one managed run under its allocation policy.
func (m *metrics) countPolicy(name string) {
	for i, n := range policyNames {
		if n == name {
			m.policyRuns[i].Add(1)
			return
		}
	}
}

// route indexes the per-endpoint request counters.
type route int

const (
	routeSavings route = iota
	routeScenarios
	routeJobs
	routeJobGet
	routeJobEvents
	routeCluster
	routeSnapshot
	routeHealth
	routeMetrics
	routeCount
)

var routeNames = [routeCount]string{
	"/v1/savings", "/v1/scenarios", "/v1/jobs", "/v1/jobs/{id}",
	"/v1/jobs/{id}/events",
	"/v1/cluster", "/v1/snapshot", "/healthz", "/metrics",
}

// Server serves the QoS-RM API over one built database.
type Server struct {
	db    *db.DB
	opts  Options
	start time.Time
	mux   *http.ServeMux
	// now is the server's clock (Options.clock, default time.Now);
	// tests inject a fake one to drive the job GC deterministically.
	now func() time.Time
	// journal is the durable job log (nil without Options.JournalPath);
	// limiter the per-client token bucket (nil without RatePerSec).
	journal *jobstore.Journal
	limiter *rateLimiter
	// cluster is this node's membership view (always present — a node
	// with no seeds just tracks nobody until one joins it), forwarder
	// the cluster-facing client pool and health cache, paramsHash the
	// hex dbstore fingerprint of the database this node serves.
	cluster    *cluster.Membership
	forwarder  *forwarder
	paramsHash string
	// log is Options.Logger (a discard logger when none was given).
	log *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan workItem

	mu     sync.Mutex
	closed bool
	queued int
	jobSeq int64
	jobs   map[string]*job
	// keys maps idempotency keys to job ids; entries live exactly as
	// long as their job (expiry drops both). forwardedKeys maps keys
	// this node forwarded to a peer onto the peer's job handle, so a
	// retried submit resolves to the same job through either node;
	// entries age out with the job TTL.
	keys          map[string]string
	forwardedKeys map[string]*forwardedRef

	metrics metrics
}

// New starts a server over d: the worker pool is running on return,
// and if Options.JournalPath is set the journal has been replayed —
// unfinished scenarios from the previous process are already queued
// again. Callers own the lifecycle and must Close it.
func New(d *db.DB, opts Options) (*Server, error) {
	opts.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:            d,
		opts:          opts,
		start:         time.Now(),
		now:           opts.clock,
		ctx:           ctx,
		cancel:        cancel,
		jobs:          make(map[string]*job),
		keys:          make(map[string]string),
		forwardedKeys: make(map[string]*forwardedRef),
		log:           opts.Logger,
	}
	s.metrics.policyRuns = make([]atomic.Int64, len(policyNames))
	if opts.RatePerSec > 0 {
		s.limiter = newRateLimiter(opts.RatePerSec, opts.RateBurst, s.now)
	}
	s.paramsHash = fmt.Sprintf("%016x", dbstore.ParamsHash(d))
	s.cluster = cluster.New(cluster.Config{
		ID:             opts.NodeID,
		Addr:           opts.Advertise,
		ParamsHash:     s.paramsHash,
		Seeds:          append(append([]string{}, opts.Peers...), opts.Join...),
		SuspectTimeout: opts.SuspectTimeout,
		Clock:          s.now,
	})
	s.forwarder = newForwarder(s)

	var pending []workItem
	if opts.JournalPath != "" {
		journal, info, err := jobstore.Open(opts.JournalPath)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = journal
		pending = s.replayJournal(info.Events)
	}
	// The queue must hold every replayed pending scenario even when the
	// previous process ran with a deeper queue; new submissions are
	// still admitted against Options.QueueDepth only.
	depth := opts.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	s.queue = make(chan workItem, depth)
	for _, it := range pending {
		s.queue <- it
	}
	s.queued = len(pending)

	s.mux = http.NewServeMux()
	s.handle("POST /v1/savings", routeSavings, true, s.handleSavings)
	s.handle("POST /v1/scenarios", routeScenarios, true, s.handleScenario)
	s.handle("POST /v1/jobs", routeJobs, true, s.handleJobSubmit)
	s.handle("GET /v1/jobs/{id}", routeJobGet, true, s.handleJobGet)
	s.handle("GET /v1/jobs/{id}/events", routeJobEvents, true, s.handleJobEvents)
	// The cluster endpoints skip the per-client limiter: gossip from N
	// peers must not drain a forwarding client's token budget, and a
	// joining node's snapshot fetch is one request, not a rate.
	s.handle("GET /v1/cluster", routeCluster, false, s.handleClusterGet)
	s.handle("POST /v1/cluster", routeCluster, false, s.handleClusterPost)
	s.handle("GET /v1/snapshot", routeSnapshot, false, s.handleSnapshot)
	s.handle("GET /healthz", routeHealth, false, s.handleHealth)
	s.handle("GET /metrics", routeMetrics, false, s.handleMetrics)
	if opts.EnablePprof {
		// Raw pprof handlers: they manage their own content types and
		// durations, and profiling traffic must not skew the route
		// histograms.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if opts.JobTTL > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	if opts.GossipInterval > 0 {
		s.wg.Add(1)
		go s.gossipLoop()
	}
	return s, nil
}

// gcLoop periodically expires finished jobs older than JobTTL. The
// sweep itself is gcFinishedJobs, unit-testable with a fake clock.
func (s *Server) gcLoop() {
	defer s.wg.Done()
	// Sweep a few times per TTL; clamp so tiny TTLs don't spin and huge
	// ones still notice restarts of the config within a minute.
	interval := s.opts.JobTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.gcFinishedJobs(s.now())
			s.forwarder.sweep()
		}
	}
}

// gcFinishedJobs drops jobs that finished more than JobTTL before now
// and reports how many it expired. Unfinished jobs are never touched:
// a job still queued or running stays queryable however old it is.
// With a journal, each expiry is journaled and the journal is then
// compacted to the surviving live set, so the log's size tracks the
// live jobs instead of the server's full history.
func (s *Server) gcFinishedJobs(now time.Time) int {
	ttl := s.opts.JobTTL
	if ttl <= 0 {
		return 0
	}
	expired := 0
	s.mu.Lock()
	// Forwarded-key records age out on the same clock as local jobs;
	// the origin node's own TTL GC owns the job itself.
	for key, ref := range s.forwardedKeys {
		if now.Sub(ref.at) > ttl {
			delete(s.forwardedKeys, key)
		}
	}
	for id, j := range s.jobs {
		if fin, ok := j.finishedTime(); ok && now.Sub(fin) > ttl {
			delete(s.jobs, id)
			if j.key != "" {
				delete(s.keys, j.key)
			}
			// End any event stream still attached. Normally a no-op —
			// completion already closed the ring — but a subscriber that
			// consumed the terminal frame slowly, or a ring replayed
			// unfinished from the journal and then expired, gets an
			// explicit "expired" instead of a silent hang.
			j.events.Close(obs.Terminal{Kind: obs.TerminalExpired})
			expired++
			if s.journal != nil {
				if err := s.journal.Append(jobstore.Event{Type: jobstore.EventExpire, Job: id}); err != nil {
					s.metrics.journalErrors.Add(1)
				}
			}
		}
	}
	s.mu.Unlock()
	if expired > 0 {
		s.metrics.jobsExpired.Add(int64(expired))
		s.compactJournal()
	}
	return expired
}

// compactJournal rewrites the journal to the current live jobs. A
// finish journaled concurrently with the rewrite can be dropped by it;
// that scenario simply re-runs after a restart (deterministically, to
// the identical report), so compaction never needs to block the
// workers.
func (s *Server) compactJournal() {
	if s.journal == nil {
		return
	}
	s.mu.Lock()
	live := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		live = append(live, j)
	}
	s.mu.Unlock()
	var events []jobstore.Event
	for _, j := range live {
		events = append(events, j.journalEvents()...)
	}
	if err := s.journal.Compact(events); err != nil {
		s.metrics.journalErrors.Add(1)
		return
	}
	s.metrics.journalCompacts.Add(1)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops accepting jobs, cancels in-flight simulations through the
// lifecycle context and waits for the worker pool to exit. Scenarios
// still queued are abandoned in memory; with a journal they stay
// pending on disk and the next boot re-enqueues them. Close is
// idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	if s.journal != nil {
		s.journal.Close()
	}
}

// accessInfo is the per-request mutable record handlers enrich before
// the access log line is emitted (currently: the job id a request
// resolved to or created).
type accessInfo struct{ job string }

type accessInfoKey struct{}

// setLogJob records the request's job id for the access log; a no-op
// outside an instrumented request.
func setLogJob(ctx context.Context, id string) {
	if info, _ := ctx.Value(accessInfoKey{}).(*accessInfo); info != nil {
		info.job = id
	}
}

// statusWriter captures the response status for the route histogram and
// access log. It passes Flush through (the event stream needs it) and
// Unwrap keeps http.ResponseController working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// newRequestID is 16 hex chars of process-local randomness: enough to
// tie one request's hops together across the cluster's logs, and not a
// security token.
func newRequestID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// handle registers one pattern with the instrumentation wrapper: the
// per-route request counter and duration histogram, request-id ingress
// (accept the caller's X-Qosrm-Request-Id or mint one; echo it on every
// response and carry it in the context so forwarded requests propagate
// it), the structured access log, and — on limited routes — the
// per-client token bucket when one is configured.
func (s *Server) handle(pattern string, rt route, limited bool, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.metrics.requests[rt].Add(1)
		reqID := r.Header.Get(api.RequestIDHeader)
		if reqID == "" {
			reqID = newRequestID()
		}
		// Echo before the handler runs so every response — error
		// envelopes included — carries the id.
		w.Header().Set(api.RequestIDHeader, reqID)
		info := &accessInfo{}
		ctx := api.WithRequestID(context.WithValue(r.Context(), accessInfoKey{}, info), reqID)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		serve := true
		if limited && s.limiter != nil {
			client := r.RemoteAddr
			if host, _, err := net.SplitHostPort(client); err == nil {
				client = host
			}
			if !s.limiter.allow(client) {
				serve = false
				s.metrics.requestsShed.Add(1)
				sw.Header().Set("Retry-After", strconv.Itoa(int(s.limiter.retryAfter().Seconds())))
				s.failReason(sw, http.StatusTooManyRequests, ReasonRateLimited,
					"client %s exceeds %g requests/s", client, s.opts.RatePerSec)
			}
		}
		if serve {
			h(sw, r)
		}
		dur := time.Since(t0)
		s.metrics.httpDur[rt].Observe(dur)
		if s.log.Enabled(ctx, slog.LevelInfo) {
			s.log.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("route", routeNames[rt]),
				slog.String("method", r.Method),
				slog.Int("status", sw.status),
				slog.Duration("dur", dur),
				slog.String("request_id", reqID),
				slog.String("node", s.opts.NodeID),
				slog.String("job", info.job),
			)
		}
	})
}

// fail writes the JSON error envelope and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.failReason(w, status, "", format, args...)
}

// failReason is fail carrying a machine-readable rejection reason (see
// the Reason* constants). Transient rejections (503) advertise a
// Retry-After so well-behaved clients back off instead of hammering.
func (s *Server) failReason(w http.ResponseWriter, status int, reason, format string, args ...any) {
	s.metrics.errors.Add(1)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...), Reason: reason})
}

// writeJSON writes a 200 response.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	s.writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus writes a JSON response with an explicit status. The
// Content-Type must be set before WriteHeader freezes the headers.
func (s *Server) writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.metrics.errors.Add(1)
	}
}

// readJSON decodes a size-bounded request body, distinguishing
// oversized bodies (413) from malformed ones (400). Unknown fields are
// rejected so misspelled knobs fail loudly instead of silently running
// a default configuration.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.opts.MaxBodyBytes)
		} else {
			s.fail(w, http.StatusBadRequest, "invalid request body: %v", err)
		}
		return false
	}
	if dec.More() {
		s.fail(w, http.StatusBadRequest, "trailing data after request body")
		return false
	}
	return true
}

// handleSavings evaluates one application mix: the configured manager
// against its idle twin, both cancelled if the client disconnects.
func (s *Server) handleSavings(w http.ResponseWriter, r *http.Request) {
	var req SavingsRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Apps) == 0 {
		s.fail(w, http.StatusBadRequest, "no applications")
		return
	}
	if len(req.Apps) > s.opts.MaxApps {
		s.fail(w, http.StatusBadRequest, "%d applications exceed the %d-core limit", len(req.Apps), s.opts.MaxApps)
		return
	}
	apps := make([]*bench.Benchmark, len(req.Apps))
	for i, name := range req.Apps {
		b, err := bench.ByName(name)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		if s.db.NumPhases(name) == 0 {
			s.fail(w, http.StatusBadRequest, "database has no data for %q", name)
			return
		}
		apps[i] = b
	}
	kind, err := scenario.ParseRM(req.RM)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	model, err := scenario.ParseModel(req.Model)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	policy, err := scenario.ParsePolicy(req.Policy)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Alpha < 0 || req.Scale < 0 || req.Interval < 0 {
		s.fail(w, http.StatusBadRequest, "negative configuration value")
		return
	}
	cfg := sim.Config{
		RM:               kind,
		Model:            model,
		Perfect:          req.Perfect,
		Alpha:            req.Alpha,
		Scale:            req.Scale,
		Interval:         req.Interval,
		DisableOverheads: req.DisableOverheads,
		Policy:           policy,
	}
	t0 := time.Now()
	idleCfg := cfg
	idleCfg.RM = rm.Idle
	idle, err := sim.RunCtx(r.Context(), s.db, apps, idleCfg)
	if err != nil {
		s.runError(w, r, err)
		return
	}
	// An idle request is its own twin (the same shortcut scenario.Run
	// takes): saving is zero by construction.
	managed := idle
	if kind != rm.Idle {
		managed, err = sim.RunCtx(r.Context(), s.db, apps, cfg)
		if err != nil {
			s.runError(w, r, err)
			return
		}
	}
	s.metrics.savingsNs.Add(time.Since(t0).Nanoseconds())
	s.metrics.countPolicy(policy)
	s.writeJSON(w, &SavingsResponse{
		Policy:        policy,
		Saving:        1 - managed.EnergyJ/idle.EnergyJ,
		EnergyJ:       managed.EnergyJ,
		IdleEnergyJ:   idle.EnergyJ,
		TimeNs:        managed.TimeNs,
		RMCalled:      managed.RMCalled,
		ViolationRate: managed.ViolationRate(),
		Apps:          managed.Apps,
	})
}

// handleScenario runs one declarative scenario synchronously.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	var spec scenario.Spec
	if !s.readJSON(w, r, &spec) {
		return
	}
	if err := spec.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if name, ok := s.uncovered(&spec); !ok {
		s.fail(w, http.StatusBadRequest, "database has no data for %q", name)
		return
	}
	t0 := time.Now()
	rep, err := scenario.RunCtx(r.Context(), s.db, &spec, nil)
	if err != nil {
		s.runError(w, r, err)
		return
	}
	s.metrics.scenariosNs.Add(time.Since(t0).Nanoseconds())
	s.metrics.countPolicy(rep.Policy)
	s.writeJSON(w, rep)
}

// handleJobSubmit queues an asynchronous sweep. An Idempotency-Key
// header makes the submit safe to retry: a key already seen (in this
// process or replayed from the journal) returns the existing job
// instead of queuing a duplicate — and a key this node forwarded to a
// cluster peer resolves to the peer's job, so the dedupe contract
// holds through either node. When the local queue is full and peers
// are configured, the batch is forwarded to the least-loaded live peer
// instead of rejected.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	key := r.Header.Get(api.IdempotencyKeyHeader)
	if len(key) > 256 {
		s.fail(w, http.StatusBadRequest, "Idempotency-Key exceeds 256 bytes")
		return
	}
	var req JobRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Specs) == 0 {
		s.fail(w, http.StatusBadRequest, "no scenarios")
		return
	}
	if len(req.Specs) > s.opts.QueueDepth {
		// A batch that exceeds the queue's total capacity can never be
		// admitted, no matter how idle the server is: that is a permanent
		// client error, not a transient 503 worth retrying.
		s.failReason(w, http.StatusBadRequest, ReasonBatchTooLarge,
			"batch of %d scenarios exceeds the queue capacity of %d; split the sweep",
			len(req.Specs), s.opts.QueueDepth)
		return
	}
	// Batch-level validation also rejects duplicate scenario names: the
	// job's reports are consumed keyed by name, where a duplicate would
	// silently shadow its twin.
	if err := scenario.ValidateSpecs(req.Specs); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	for i := range req.Specs {
		if name, ok := s.uncovered(&req.Specs[i]); !ok {
			s.fail(w, http.StatusBadRequest, "spec %d: database has no data for %q", i, name)
			return
		}
	}
	if st, ok := s.forwardedByKey(r.Context(), key); ok {
		s.metrics.idempotentReplays.Add(1)
		w.Header().Set(api.IdempotencyReplayedHeader, "true")
		s.writeJSONStatus(w, http.StatusAccepted, st)
		return
	}
	trail := forwardTrail(r)
	j, replayed, err := s.submit(req.Specs, key)
	switch {
	case errors.Is(err, errJournal):
		// The submission could not be made durable, so it was not
		// admitted: acknowledging it would promise crash-safety the
		// journal cannot deliver.
		s.failReason(w, http.StatusInternalServerError, ReasonJournal, "%v", err)
		return
	case errors.Is(err, errClosed):
		s.failReason(w, http.StatusServiceUnavailable, ReasonShuttingDown, "%v", err)
		return
	case err != nil:
		// Queue full: in cluster mode, hand the batch to a peer before
		// giving up. A forward that finds no taker (every peer dead,
		// saturated, or already on the trail) falls through to the
		// honest 503.
		if st, ok := s.tryForward(r.Context(), req.Specs, key, trail); ok {
			s.writeJSONStatus(w, http.StatusAccepted, st)
			return
		}
		s.failReason(w, http.StatusServiceUnavailable, ReasonQueueFull, "%v", err)
		return
	}
	if replayed {
		s.metrics.idempotentReplays.Add(1)
		w.Header().Set(api.IdempotencyReplayedHeader, "true")
	} else if len(trail) > 0 {
		s.metrics.forwardReceived.Add(1)
	}
	setLogJob(r.Context(), j.id)
	s.writeJSONStatus(w, http.StatusAccepted, j.status())
}

// forwardTrail reads the visited-node trail of a forwarded submit (nil
// when the request came straight from a client). The trail's length is
// the hop count; its entries are excluded from any further forward.
func forwardTrail(r *http.Request) []string {
	v := r.Header.Get(api.ForwardTrailHeader)
	if v == "" {
		return nil
	}
	var trail []string
	for _, part := range strings.Split(v, ",") {
		if part = strings.TrimSpace(part); part != "" {
			trail = append(trail, part)
		}
	}
	return trail
}

// handleJobGet reports a job's progress.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setLogJob(r.Context(), id)
	j := s.jobByID(id)
	if j == nil {
		s.fail(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.writeJSON(w, j.status())
}

// handleHealth reports liveness plus what the server is serving. The
// status flips to "degraded" when the scenario queue reaches 90% of
// QueueDepth: submissions are about to bounce with 503s, and a load
// balancer watching /healthz can shift traffic away first.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	phases := 0
	for _, name := range s.db.Benchmarks() {
		phases += s.db.NumPhases(name)
	}
	s.mu.Lock()
	queued := s.queued
	s.mu.Unlock()
	status := HealthOK
	if queued*10 >= s.opts.QueueDepth*9 {
		status = HealthDegraded
	}
	s.writeJSON(w, &Health{
		Status:        status,
		Benchmarks:    len(s.db.Benchmarks()),
		Phases:        phases,
		TraceLen:      s.db.TraceLen,
		Workers:       s.opts.Workers,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Queued:        queued,
		QueueDepth:    s.opts.QueueDepth,
		Journal:       s.journal != nil,
		Node:          s.opts.NodeID,
		ParamsHash:    s.paramsHash,
		Peers:         len(s.cluster.Rotation()),
	})
}

// handleMetrics renders the Prometheus text exposition: every family
// carries a # TYPE line, counters end in _total, and the latency
// histograms render as _bucket/_sum/_count. The output is kept honest
// by obs.LintExposition in the tests and the CI smoke.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := s.queued
	jobs := len(s.jobs)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	gaugeInt := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	gaugeFloat := func(name string, v float64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, v)
	}
	seconds := func(name string, ns int64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %g\n", name, name, float64(ns)/1e9)
	}

	fmt.Fprintf(w, "# TYPE qosrmd_requests_total counter\n")
	for rt := route(0); rt < routeCount; rt++ {
		fmt.Fprintf(w, "qosrmd_requests_total{path=%q} %d\n", routeNames[rt], s.metrics.requests[rt].Load())
	}
	counter("qosrmd_request_errors_total", s.metrics.errors.Load())
	counter("qosrmd_jobs_submitted_total", s.metrics.jobsSubmitted.Load())
	counter("qosrmd_jobs_finished_total", s.metrics.jobsFinished.Load())
	counter("qosrmd_jobs_expired_total", s.metrics.jobsExpired.Load())
	gaugeInt("qosrmd_jobs_tracked", int64(jobs))
	gaugeFloat("qosrmd_job_ttl_seconds", s.opts.JobTTL.Seconds())
	fmt.Fprintf(w, "# TYPE qosrmd_policy_runs_total counter\n")
	for i, name := range policyNames {
		fmt.Fprintf(w, "qosrmd_policy_runs_total{policy=%q} %d\n", name, s.metrics.policyRuns[i].Load())
	}
	counter("qosrmd_scenarios_queued_total", s.metrics.specsQueued.Load())
	counter("qosrmd_scenarios_run_total", s.metrics.specsRun.Load())
	counter("qosrmd_scenarios_failed_total", s.metrics.specsFailed.Load())
	counter("qosrmd_scenarios_retried_total", s.metrics.specsRetried.Load())
	gaugeInt("qosrmd_scenario_queue_depth", int64(queued))
	counter("qosrmd_requests_shed_total", s.metrics.requestsShed.Load())
	alive, suspect, dead := s.cluster.Counts()
	gaugeInt("qosrmd_cluster_peers", int64(len(s.cluster.Rotation())))
	gaugeInt("qosrmd_cluster_members_alive", int64(alive))
	gaugeInt("qosrmd_cluster_members_suspect", int64(suspect))
	gaugeInt("qosrmd_cluster_members_dead", int64(dead))
	gaugeInt("qosrmd_cluster_incarnation", int64(s.cluster.Incarnation()))
	counter("qosrmd_cluster_exchanges_total", s.metrics.clusterExchanges.Load())
	counter("qosrmd_cluster_probe_failures_total", s.metrics.clusterProbeFailures.Load())
	counter("qosrmd_cluster_refutations_total", s.metrics.clusterRefutations.Load())
	counter("qosrmd_snapshots_served_total", s.metrics.snapshotsServed.Load())
	counter("qosrmd_jobs_forwarded_total", s.metrics.jobsForwarded.Load())
	counter("qosrmd_jobs_forward_received_total", s.metrics.forwardReceived.Load())
	counter("qosrmd_jobs_forward_failed_total", s.metrics.forwardFailed.Load())
	counter("qosrmd_idempotent_replays_total", s.metrics.idempotentReplays.Load())
	counter("qosrmd_worker_panics_total", s.metrics.workerPanics.Load())
	journalEnabled := int64(0)
	if s.journal != nil {
		journalEnabled = 1
		gaugeInt("qosrmd_journal_records", int64(s.journal.Records()))
		gaugeInt("qosrmd_journal_size_bytes", s.journal.Size())
	}
	gaugeInt("qosrmd_journal_enabled", journalEnabled)
	counter("qosrmd_journal_replays_total", s.metrics.journalReplays.Load())
	counter("qosrmd_journal_errors_total", s.metrics.journalErrors.Load())
	counter("qosrmd_journal_compactions_total", s.metrics.journalCompacts.Load())
	gaugeInt("qosrmd_workers", int64(s.opts.Workers))
	seconds("qosrmd_savings_busy_seconds_total", s.metrics.savingsNs.Load())
	seconds("qosrmd_scenarios_busy_seconds_total", s.metrics.scenariosNs.Load())
	gaugeFloat("qosrmd_uptime_seconds", time.Since(s.start).Seconds())
	gaugeInt("qosrmd_db_benchmarks", int64(len(s.db.Benchmarks())))
	gaugeInt("qosrmd_db_trace_len", int64(s.db.TraceLen))

	fmt.Fprintf(w, "# TYPE qosrmd_http_request_duration_seconds histogram\n")
	for rt := route(0); rt < routeCount; rt++ {
		s.metrics.httpDur[rt].WriteProm(w, "qosrmd_http_request_duration_seconds",
			fmt.Sprintf("path=%q", routeNames[rt]))
	}
	hist := func(name string, h *obs.Histogram) {
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		h.WriteProm(w, name, "")
	}
	hist("qosrmd_job_queue_wait_seconds", &s.metrics.jobQueueWait)
	hist("qosrmd_job_exec_seconds", &s.metrics.jobExec)
	hist("qosrmd_forward_rtt_seconds", &s.metrics.forwardRTT)
	hist("qosrmd_gossip_exchange_seconds", &s.metrics.gossipExchange)
	hist("qosrmd_peer_probe_seconds", &s.metrics.peerProbe)
}

// uncovered returns the first scheduled application the database has no
// data for, with ok=false; ok=true means the spec is fully covered.
func (s *Server) uncovered(spec *scenario.Spec) (string, bool) {
	for _, b := range spec.Benchmarks() {
		if s.db.NumPhases(b.Name) == 0 {
			return b.Name, false
		}
	}
	return "", true
}

// runError maps a simulation failure: client disconnects surface as 499
// (the de-facto "client closed request" status), anything else is a
// server-side 500 — request validation already rejected everything a
// client could get wrong.
func (s *Server) runError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
		s.fail(w, 499, "request cancelled")
		return
	}
	s.fail(w, http.StatusInternalServerError, "%v", err)
}
