// Scenario sweep: reproduce the paper's motivation study (Figure 2) —
// one representative two-core workload per scenario, simulated with
// perfect models and no overheads under RM1 (LLC partitioning only),
// RM2 (+ per-core DVFS) and RM3 (+ core adaptation) — then extend the
// comparison to generated 4-core workloads (a slice of Figure 6).
package main

import (
	"fmt"
	"log"

	"qosrm"
)

func main() {
	log.SetFlags(0)

	sys, err := qosrm.Open(qosrm.Options{}) // full suite
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Figure 2: two-core scenario study (perfect models) ==")
	ctx := sys.Experiments()
	rows, err := ctx.Fig2()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s (%s): RM1 %6.2f%%  RM2 %6.2f%%  RM3 %6.2f%%\n",
			r.Workload, r.Apps, r.Savings[0]*100, r.Savings[1]*100, r.Savings[2]*100)
	}

	fmt.Println()
	fmt.Println("== Generated 4-core workloads under the online Model3 ==")
	for _, scenario := range []qosrm.Scenario{qosrm.Scenario1, qosrm.Scenario3} {
		workloads, err := qosrm.GenerateWorkloads(scenario, 4, 2, 7)
		if err != nil {
			log.Fatal(err)
		}
		for _, wl := range workloads {
			names := ""
			for i, a := range wl.Apps {
				if i > 0 {
					names += ","
				}
				names += a.Name
			}
			fmt.Printf("%s [%s]\n", wl.Name, names)
			for _, kind := range []qosrm.RMKind{qosrm.RM1, qosrm.RM2, qosrm.RM3} {
				saving, res, err := sys.Savings(wl.Apps, qosrm.SimConfig{RM: kind, Model: qosrm.Model3})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-4s %6.2f%% (violation rate %.3f)\n",
					kind, saving*100, res.ViolationRate())
			}
		}
	}
}
