package dbstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"runtime"
	"path/filepath"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
)

// buildSmall builds a small database for serialisation tests.
func buildSmall(t *testing.T, names []string, traceLen, warmup int) *db.DB {
	t.Helper()
	benches := make([]*bench.Benchmark, len(names))
	for i, n := range names {
		b, err := bench.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		benches[i] = b
	}
	d, err := db.Build(benches, db.Options{TraceLen: traceLen, Warmup: warmup})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// statsEqual compares two records bit for bit (NaN-safe, unlike ==).
func statsEqual(a, b *db.Stats) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if !eq(a.Instructions, b.Instructions) || !eq(a.TimeNs, b.TimeNs) ||
		!eq(a.BaseNs, b.BaseNs) || !eq(a.BranchNs, b.BranchNs) ||
		!eq(a.CacheNs, b.CacheNs) || !eq(a.MemNs, b.MemNs) ||
		!eq(a.L1Misses, b.L1Misses) || !eq(a.LLCAccesses, b.LLCAccesses) ||
		!eq(a.LLCHits, b.LLCHits) || !eq(a.LLCMisses, b.LLCMisses) ||
		!eq(a.DRAMLoads, b.DRAMLoads) || !eq(a.Writebacks, b.Writebacks) ||
		!eq(a.LeadingMisses, b.LeadingMisses) || !eq(a.Mispredicts, b.Mispredicts) ||
		!eq(a.MLP, b.MLP) {
		return false
	}
	for wi := range a.ATDMissCurve {
		if !eq(a.ATDMissCurve[wi], b.ATDMissCurve[wi]) {
			return false
		}
	}
	for ci := range a.ATDLM {
		for wi := range a.ATDLM[ci] {
			if !eq(a.ATDLM[ci][wi], b.ATDLM[ci][wi]) {
				return false
			}
		}
	}
	return true
}

// TestRoundTripBitIdentical is the equivalence property of the snapshot
// store: across suite subsets and trace lengths, a saved-then-loaded
// database matches the freshly built one bit for bit — both the raw
// simulated corners and every record the dense interpolated grid serves.
func TestRoundTripBitIdentical(t *testing.T) {
	cases := []struct {
		names            []string
		traceLen, warmup int
	}{
		{[]string{"mcf"}, 2048, 512},
		{[]string{"mcf", "povray"}, 4096, 1024},
		{[]string{"bwaves", "xalancbmk", "povray"}, 2048, 0},
	}
	for _, tc := range cases {
		d := buildSmall(t, tc.names, tc.traceLen, tc.warmup)
		path := filepath.Join(t.TempDir(), "suite.qosdb")
		if err := Save(path, d); err != nil {
			t.Fatalf("%v: %v", tc.names, err)
		}
		got, h, err := Load(path)
		if err != nil {
			t.Fatalf("%v: %v", tc.names, err)
		}
		if got.TraceLen != d.TraceLen || got.Warmup != d.Warmup {
			t.Fatalf("%v: params %d/%d, want %d/%d", tc.names, got.TraceLen, got.Warmup, d.TraceLen, d.Warmup)
		}
		if h.Benchmarks != len(tc.names) {
			t.Fatalf("%v: header says %d benchmarks", tc.names, h.Benchmarks)
		}
		for _, name := range tc.names {
			if got.NumPhases(name) != d.NumPhases(name) {
				t.Fatalf("%s: %d phases, want %d", name, got.NumPhases(name), d.NumPhases(name))
			}
			for p := 0; p < d.NumPhases(name); p++ {
				want, err := d.Corners(name, p)
				if err != nil {
					t.Fatal(err)
				}
				have, err := got.Corners(name, p)
				if err != nil {
					t.Fatal(err)
				}
				for ci := range want {
					for k := range want[ci] {
						for wi := range want[ci][k] {
							if !statsEqual(&want[ci][k][wi], &have[ci][k][wi]) {
								t.Fatalf("%s phase %d corner [%d][%d][%d] differs after round trip", name, p, ci, k, wi)
							}
						}
					}
				}
				// The dense grid a loaded database serves must also match:
				// every (core, frequency, ways) record, interpolated ones
				// included.
				for ci := 0; ci < config.NumSizes; ci++ {
					for fi := 0; fi < config.NumFreqs; fi++ {
						for w := config.MinWays; w <= config.MaxWays; w++ {
							set := config.Setting{Core: config.CoreSize(ci), Freq: fi, Ways: w}
							want, err := d.Stats(name, p, set)
							if err != nil {
								t.Fatal(err)
							}
							have, err := got.Stats(name, p, set)
							if err != nil {
								t.Fatal(err)
							}
							if !statsEqual(want, have) {
								t.Fatalf("%s phase %d %v: dense record differs after round trip", name, p, set)
							}
						}
					}
				}
			}
		}
	}
}

// TestWriteCanonical asserts the format is canonical: serialising the
// same database twice yields identical bytes.
func TestWriteCanonical(t *testing.T) {
	d := buildSmall(t, []string{"povray", "mcf"}, 2048, 512)
	var a, b bytes.Buffer
	if err := Write(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serialisations of one database differ")
	}
}

// snapshotBytes renders one small snapshot for corruption tests.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	d := buildSmall(t, []string{"mcf"}, 2048, 512)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRejectsCorruption(t *testing.T) {
	valid := snapshotBytes(t)
	if _, _, err := Read(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] ^= 0xff
		if _, _, err := Read(bytes.NewReader(b)); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("version bump", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(b[8:12], Version+1)
		_, _, err := Read(bytes.NewReader(b))
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("want ErrVersion, got %v", err)
		}
	})
	t.Run("payload bit flip", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[len(b)/2] ^= 0x01
		if _, _, err := Read(bytes.NewReader(b)); err == nil {
			t.Fatal("bit-flipped payload accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 1, headerSize - 1, headerSize, len(valid) / 2, len(valid) - 1} {
			if _, _, err := Read(bytes.NewReader(valid[:n])); err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
		}
	})
	t.Run("trailing data", func(t *testing.T) {
		b := append(append([]byte(nil), valid...), 0x00)
		if _, _, err := Read(bytes.NewReader(b)); err == nil {
			t.Fatal("trailing data accepted")
		}
	})
	t.Run("stale params hash", func(t *testing.T) {
		// Rewrite the stored hash and re-seal the envelope: the payload
		// is intact (checksum passes) but claims different parameters —
		// the stale-snapshot case the hash exists to catch.
		b := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(b[16:24], binary.LittleEndian.Uint64(b[16:24])^0xdeadbeef)
		_, _, err := Read(bytes.NewReader(b))
		if !errors.Is(err, ErrStale) {
			t.Fatalf("want ErrStale, got %v", err)
		}
	})
}

// TestReadAllocationsPinned pins the snapshot reader's allocation
// behaviour: the payload buffer is pre-sized from the verified header
// length and the phase blocks are batch-allocated per benchmark, so a
// load allocates a small constant factor over the snapshot size. The
// append-growth regime this replaces allocated ~6x the payload in
// copies alone (BENCH_6: 39.6 MB allocated to load a 6.3 MB snapshot).
func TestReadAllocationsPinned(t *testing.T) {
	d := buildSmall(t, []string{"mcf", "povray"}, 4096, 1024)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	read := func() {
		if _, _, err := Read(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}

	if allocs, max := testing.AllocsPerRun(5, read), 120.0; allocs > max {
		t.Fatalf("Read allocations = %.0f, want <= %.0f", allocs, max)
	}

	// Bytes matter more than counts here: the in-memory corner blocks
	// are the same size as the payload, so a clean decode costs about
	// 2x the snapshot (blocks + payload buffer) plus small change.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	read()
	runtime.ReadMemStats(&after)
	if got, limit := after.TotalAlloc-before.TotalAlloc, uint64(len(data))*5/2; got > limit {
		t.Fatalf("Read allocated %d bytes for a %d-byte snapshot, want <= %d (2.5x)",
			got, len(data), limit)
	}
}
