package obs

import (
	"strings"
	"testing"
)

func lint(s string) []error { return LintExposition(strings.NewReader(s)) }

func wantErr(t *testing.T, errs []error, substr string) {
	t.Helper()
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return
		}
	}
	t.Fatalf("no lint error containing %q in %v", substr, errs)
}

func TestLintCleanExposition(t *testing.T) {
	in := `# HELP up whatever
# TYPE qosrmd_jobs_submitted_total counter
qosrmd_jobs_submitted_total 42
# TYPE qosrmd_jobs_queued gauge
qosrmd_jobs_queued 3
# TYPE qosrmd_http_request_duration_seconds histogram
qosrmd_http_request_duration_seconds_bucket{path="/v1/jobs",le="0.001"} 1
qosrmd_http_request_duration_seconds_bucket{path="/v1/jobs",le="+Inf"} 2
qosrmd_http_request_duration_seconds_sum{path="/v1/jobs"} 0.5
qosrmd_http_request_duration_seconds_count{path="/v1/jobs"} 2
`
	if errs := lint(in); len(errs) > 0 {
		t.Fatalf("clean exposition flagged: %v", errs)
	}
}

func TestLintDuplicateSeries(t *testing.T) {
	in := `# TYPE x_total counter
x_total 1
x_total 2
`
	wantErr(t, lint(in), "duplicate series")
}

func TestLintDuplicateDetectsLabelPermutation(t *testing.T) {
	in := `# TYPE x gauge
x{a="1",b="2"} 1
x{b="2",a="1"} 2
`
	wantErr(t, lint(in), "duplicate series")
}

func TestLintCounterMustEndTotal(t *testing.T) {
	in := `# TYPE x_requests counter
x_requests 1
`
	wantErr(t, lint(in), "does not end in _total")
}

func TestLintUndeclaredSeries(t *testing.T) {
	wantErr(t, lint("mystery_metric 7\n"), "no # TYPE declaration")
}

func TestLintInvalidName(t *testing.T) {
	wantErr(t, lint("2bad_name 1\n"), "invalid metric name")
}

func TestLintHistogramShape(t *testing.T) {
	// Missing +Inf.
	in := `# TYPE h histogram
h_bucket{le="0.1"} 1
h_sum 0.1
h_count 1
`
	wantErr(t, lint(in), "want +Inf")

	// Non-cumulative buckets.
	in = `# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="+Inf"} 3
h_sum 0.1
h_count 3
`
	wantErr(t, lint(in), "not cumulative")

	// _count disagreeing with +Inf.
	in = `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_sum 0.1
h_count 4
`
	wantErr(t, lint(in), "_count 4 != +Inf bucket 3")

	// Missing _sum.
	in = `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_count 3
`
	wantErr(t, lint(in), "missing _sum")
}

func TestLintMalformedSample(t *testing.T) {
	in := `# TYPE x gauge
x{a="unclosed} 1
`
	errs := lint(in)
	if len(errs) == 0 {
		t.Fatal("malformed label not flagged")
	}
}

func TestLintEscapedLabelValues(t *testing.T) {
	in := "# TYPE x gauge\n" +
		`x{msg="say \"hi\", ok"} 1` + "\n"
	if errs := lint(in); len(errs) > 0 {
		t.Fatalf("escaped label value flagged: %v", errs)
	}
}
