// Command dbgen builds the simulation database — the equivalent of the
// paper's Sniper+McPAT sweeps over all core configurations, VF corners
// and LLC allocations for every benchmark phase — and caches it on disk
// for the other tools.
//
// Usage:
//
//	dbgen [-out qosrm-db.gz] [-tracelen 65536] [-warmup 16384] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"qosrm/internal/bench"
	"qosrm/internal/db"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dbgen: ")
	out := flag.String("out", "qosrm-db.gz", "output database path")
	traceLen := flag.Int("tracelen", 65536, "instructions measured per phase")
	warmup := flag.Int("warmup", 16384, "cache warm-up instructions per phase")
	workers := flag.Int("workers", 0, "parallel builders (0 = GOMAXPROCS)")
	flag.Parse()

	start := time.Now()
	d, err := db.Build(bench.Suite(), db.Options{
		TraceLen: *traceLen,
		Warmup:   *warmup,
		Workers:  *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Save(*out); err != nil {
		log.Fatal(err)
	}
	phases := 0
	for _, b := range bench.Suite() {
		phases += len(b.Phases)
	}
	fmt.Printf("built %d benchmarks / %d phases in %v → %s\n",
		len(bench.Suite()), phases, time.Since(start).Round(time.Millisecond), *out)
}
