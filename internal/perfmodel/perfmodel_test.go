package perfmodel

import (
	"math"
	"sync"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
)

var (
	once   sync.Once
	shared *db.DB
	dbErr  error
)

func sharedDB(t *testing.T) *db.DB {
	t.Helper()
	once.Do(func() {
		var benches []*bench.Benchmark
		for _, n := range []string{"mcf", "bwaves", "xalancbmk"} {
			b, err := bench.ByName(n)
			if err != nil {
				dbErr = err
				return
			}
			benches = append(benches, b)
		}
		shared, dbErr = db.Build(benches, db.Options{TraceLen: 16384, Warmup: 4096})
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return shared
}

func intervalStats(t *testing.T, benchName string, set config.Setting) IntervalStats {
	t.Helper()
	s, err := sharedDB(t).Stats(benchName, 0, set)
	if err != nil {
		t.Fatal(err)
	}
	return FromDB(s, set)
}

func TestKindString(t *testing.T) {
	if Model1.String() != "Model1" || Model2.String() != "Model2" || Model3.String() != "Model3" {
		t.Error("model names wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Error("unknown model string wrong")
	}
}

func TestFromDBNormalisesPerInstruction(t *testing.T) {
	set := config.Baseline()
	s, _ := sharedDB(t).Stats("mcf", 0, set)
	st := FromDB(s, set)
	if math.Abs(st.T0-(s.BaseNs/s.Instructions)) > 1e-12 {
		t.Error("T0 normalisation wrong")
	}
	if math.Abs(st.Tmem-(s.MemNs/s.Instructions)) > 1e-12 {
		t.Error("Tmem normalisation wrong")
	}
	if st.MemAccPI <= 0 {
		t.Error("memory accesses per instruction missing")
	}
}

func TestPredictionAtCurrentSettingMatchesComponents(t *testing.T) {
	// Predicting the current setting itself returns T0+T1 plus the
	// model's memory term (frequency and width ratios are 1).
	set := config.Baseline()
	st := intervalStats(t, "mcf", set)
	for _, k := range []Kind{Model1, Model2, Model3} {
		got := st.TimePI(k, set)
		want := st.T0 + st.T1 + st.MemTime(k, set)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: self-prediction %.4f, want %.4f", k, got, want)
		}
	}
}

func TestFrequencyScalingExact(t *testing.T) {
	// Core time scales exactly with f_i/f; the memory term is invariant.
	st := intervalStats(t, "mcf", config.Baseline())
	lo := config.Setting{Core: config.SizeM, Freq: 0, Ways: 8}
	hi := config.Setting{Core: config.SizeM, Freq: config.NumFreqs - 1, Ways: 8}
	for _, k := range []Kind{Model1, Model2, Model3} {
		mem := st.MemTime(k, lo)
		if mem != st.MemTime(k, hi) {
			t.Fatalf("%s: memory term must be frequency invariant", k)
		}
		coreLo := st.TimePI(k, lo) - mem
		coreHi := st.TimePI(k, hi) - mem
		want := coreHi * (hi.FGHz() / lo.FGHz())
		if math.Abs(coreLo-want) > 1e-9 {
			t.Errorf("%s: frequency scaling wrong: %.5f vs %.5f", k, coreLo, want)
		}
	}
}

func TestWidthScalingAffectsOnlyT0(t *testing.T) {
	st := intervalStats(t, "mcf", config.Baseline())
	m := config.Baseline()
	l := config.Setting{Core: config.SizeL, Freq: config.BaseFreqIdx, Ways: 8}
	// Under Model2 the memory term ignores the core size, so the whole
	// difference is T0 halving (width 4 → 8).
	dm := st.TimePI(Model2, m) - st.TimePI(Model2, l)
	if math.Abs(dm-st.T0/2) > 1e-9 {
		t.Errorf("width scaling: ΔT %.5f, want T0/2 = %.5f", dm, st.T0/2)
	}
}

func TestModelOrderingOnMemoryTerm(t *testing.T) {
	// Model1 (no MLP) always predicts at least as much memory time as
	// Model2 (measured MLP ≥ 1); Model3's estimate is bounded by both
	// extremes of its LM counters.
	st := intervalStats(t, "bwaves", config.Baseline())
	for w := config.MinWays; w <= config.MaxWays; w++ {
		tgt := config.Setting{Core: config.SizeM, Freq: config.BaseFreqIdx, Ways: w}
		m1 := st.MemTime(Model1, tgt)
		m2 := st.MemTime(Model2, tgt)
		m3 := st.MemTime(Model3, tgt)
		if m2 > m1+1e-12 {
			t.Fatalf("Model2 memory term above Model1 at w=%d", w)
		}
		if m3 > m1+1e-12 {
			t.Fatalf("Model3 memory term above Model1 at w=%d", w)
		}
	}
}

func TestModel3SeesCoreSizeInMemoryTerm(t *testing.T) {
	// The whole point of the extension: Model3's memory term shrinks on
	// larger cores for a parallelism-sensitive application; Model2's
	// does not change.
	st := intervalStats(t, "bwaves", config.Baseline())
	s := config.Setting{Core: config.SizeS, Freq: config.BaseFreqIdx, Ways: 8}
	l := config.Setting{Core: config.SizeL, Freq: config.BaseFreqIdx, Ways: 8}
	if st.MemTime(Model2, s) != st.MemTime(Model2, l) {
		t.Fatal("Model2 must be blind to core size")
	}
	if st.MemTime(Model3, l) >= st.MemTime(Model3, s) {
		t.Fatal("Model3 must predict more MLP (less stall) on the larger core")
	}
}

func TestQoSAtBaselineAlwaysHolds(t *testing.T) {
	for _, app := range []string{"mcf", "bwaves", "xalancbmk"} {
		st := intervalStats(t, app, config.Baseline())
		for _, k := range []Kind{Model1, Model2, Model3} {
			if !st.QoS(k, config.Baseline(), 1.0) {
				t.Errorf("%s/%s: baseline must satisfy its own QoS", app, k)
			}
		}
	}
}

func TestQoSAlphaRelaxes(t *testing.T) {
	st := intervalStats(t, "mcf", config.Baseline())
	slow := config.Setting{Core: config.SizeM, Freq: 0, Ways: config.MinWays}
	if st.QoS(Model3, slow, 1.0) {
		t.Skip("slow setting unexpectedly within budget")
	}
	if !st.QoS(Model3, slow, 100) {
		t.Error("a huge α must admit any setting")
	}
}

func TestPredictionFromNonBaselineCurrent(t *testing.T) {
	// Statistics collected at a non-baseline setting still predict the
	// baseline within a reasonable factor of its true time.
	cur := config.Setting{Core: config.SizeL, Freq: 7, Ways: 12}
	st := intervalStats(t, "mcf", cur)
	s, _ := sharedDB(t).Stats("mcf", 0, config.Baseline())
	actual := s.TPI()
	pred := st.TimePI(Model3, config.Baseline())
	if pred < actual*0.5 || pred > actual*2 {
		t.Errorf("cross-setting prediction %.3f vs actual %.3f", pred, actual)
	}
}

func TestMemTimePanicsOnUnknownModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown model must panic")
		}
	}()
	st := intervalStats(t, "mcf", config.Baseline())
	st.MemTime(Kind(9), config.Baseline())
}

func TestWaysClamping(t *testing.T) {
	st := intervalStats(t, "mcf", config.Baseline())
	under := config.Setting{Core: config.SizeM, Freq: config.BaseFreqIdx, Ways: config.MinWays}
	if st.missAt(0) != st.missAt(config.MinWays) {
		t.Error("ways must clamp from below")
	}
	if st.missAt(99) != st.missAt(config.MaxWays) {
		t.Error("ways must clamp from above")
	}
	_ = under
}

func TestPredictionsPositiveAndFiniteQuick(t *testing.T) {
	// Property: every model predicts a positive finite time for every
	// grid setting from any current setting's statistics.
	st := intervalStats(t, "mcf", config.Baseline())
	stAlt := intervalStats(t, "bwaves", config.Setting{Core: config.SizeL, Freq: 8, Ways: 3})
	for _, s := range []IntervalStats{st, stAlt} {
		for _, k := range []Kind{Model1, Model2, Model3} {
			for _, c := range config.Sizes {
				for f := 0; f < config.NumFreqs; f++ {
					for w := config.MinWays; w <= config.MaxWays; w++ {
						tgt := config.Setting{Core: c, Freq: f, Ways: w}
						v := s.TimePI(k, tgt)
						if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
							t.Fatalf("%s at %v: prediction %v", k, tgt, v)
						}
					}
				}
			}
		}
	}
}

func TestPredictedTimeMonotonicInFrequency(t *testing.T) {
	// For all models, raising only the frequency never increases the
	// predicted time (core part shrinks, memory part fixed).
	st := intervalStats(t, "xalancbmk", config.Baseline())
	for _, k := range []Kind{Model1, Model2, Model3} {
		prev := math.Inf(1)
		for f := 0; f < config.NumFreqs; f++ {
			v := st.TimePI(k, config.Setting{Core: config.SizeM, Freq: f, Ways: 8})
			if v > prev+1e-12 {
				t.Fatalf("%s: prediction grew with frequency at index %d", k, f)
			}
			prev = v
		}
	}
}

func TestPredictedTimeMonotonicInWays(t *testing.T) {
	// More cache never increases predicted time: the ATD miss curve is
	// monotone and the core part is allocation independent.
	st := intervalStats(t, "mcf", config.Baseline())
	for _, k := range []Kind{Model1, Model2, Model3} {
		prev := math.Inf(1)
		for w := config.MinWays; w <= config.MaxWays; w++ {
			v := st.TimePI(k, config.Setting{Core: config.SizeM, Freq: config.BaseFreqIdx, Ways: w})
			if v > prev+1e-12 {
				t.Fatalf("%s: prediction grew with ways at w=%d", k, w)
			}
			prev = v
		}
	}
}
