package qosrm

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// serviceSpec is a small scenario used by the serving-layer tests.
func serviceSpec(name string) ScenarioSpec {
	const work = 3 * 100_000_000 * 2048
	return ScenarioSpec{
		Name: name,
		RM:   "RM3",
		Cores: []ScenarioCore{
			{Jobs: []ScenarioJob{
				{App: "mcf", Work: work, DepartNs: 2e8},
				{App: "povray", Work: work, Alpha: 1.2},
			}},
			{Jobs: []ScenarioJob{{App: "libquantum", Work: work}}},
		},
	}
}

// TestServiceEndToEnd drives the public serving surface: NewServer on a
// loopback listener, DialService, and the client methods — asserting
// the over-the-wire results are bit-identical to the in-process API.
func TestServiceEndToEnd(t *testing.T) {
	sys := sharedSystem(t)
	srv, err := sys.NewServer(ServerOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	client, err := DialService("http://" + ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Benchmarks != 4 {
		t.Fatalf("unexpected health %+v", h)
	}

	// Savings over the wire vs in process.
	apps := []*Benchmark{MustBenchmark("mcf"), MustBenchmark("povray")}
	wantSaving, wantRes, err := sys.Savings(apps, SimConfig{RM: RM3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Savings(ctx, &SavingsRequest{Apps: []string{"mcf", "povray"}, RM: "RM3"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Saving != wantSaving || got.EnergyJ != wantRes.EnergyJ || got.TimeNs != wantRes.TimeNs {
		t.Fatalf("service savings (%v, %v, %v) != in-process (%v, %v, %v)",
			got.Saving, got.EnergyJ, got.TimeNs, wantSaving, wantRes.EnergyJ, wantRes.TimeNs)
	}
	if !reflect.DeepEqual(got.Apps, wantRes.Apps) {
		t.Fatal("service per-app results differ from in-process run")
	}

	// Scenario over the wire vs in process: bit-identical reports.
	spec := serviceSpec("svc")
	want, err := sys.RunScenario(&spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := client.RunScenario(ctx, &spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, want) {
		t.Fatalf("service scenario report differs from in-process run:\n got %+v\nwant %+v", rep, want)
	}

	// Async sweep job polled to completion.
	specs := []ScenarioSpec{serviceSpec("svc-a"), serviceSpec("svc-b")}
	job, err := client.SubmitSweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	job, err = client.WaitJob(ctx, job.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" || len(job.Reports) != 2 {
		t.Fatalf("job did not complete cleanly: %+v", job)
	}
	wantReports, err := sys.SweepScenarios(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantReports {
		if !reflect.DeepEqual(job.Reports[i], wantReports[i]) {
			t.Fatalf("job report %d differs from in-process sweep", i)
		}
	}

	// Server-side validation surfaces as client errors.
	if _, err := client.Savings(ctx, &SavingsRequest{Apps: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown application accepted")
	}

	// DialService refuses a dead endpoint.
	if _, err := DialService("http://127.0.0.1:1"); err == nil {
		t.Fatal("dial of dead endpoint succeeded")
	}
}

// TestClientRetriesTransientFailures pins the client's retry contract:
// transient statuses (503 with Retry-After) are retried with backoff
// until the server recovers, while permanent rejections (400) surface
// immediately as a typed ServiceError carrying the machine-readable
// reason — one request, no retries.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"queue full","reason":"queue_full"}`)
			return
		}
		io.WriteString(w, `{"status":"ok","benchmarks":1}`)
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.HTTPClient = ts.Client()
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health after transient 503s: %v", err)
	}
	if h.Status != "ok" || calls.Load() != 3 {
		t.Fatalf("status %q after %d calls, want ok after 3", h.Status, calls.Load())
	}

	// Permanent rejection: no retry, typed error with the reason.
	calls.Store(0)
	perm := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		io.WriteString(w, `{"error":"batch of 999 scenarios exceeds the queue capacity","reason":"batch_too_large"}`)
	}))
	defer perm.Close()
	cp := NewClient(perm.URL)
	cp.HTTPClient = perm.Client()
	_, err = cp.Health(context.Background())
	var se *ServiceError
	if !errors.As(err, &se) {
		t.Fatalf("error not a ServiceError: %v", err)
	}
	if se.StatusCode != http.StatusBadRequest || se.Reason != "batch_too_large" || se.Temporary() {
		t.Fatalf("unexpected ServiceError %+v", se)
	}
	if calls.Load() != 1 {
		t.Fatalf("permanent 400 retried: %d calls", calls.Load())
	}

	// Exhausted retries surface the last transient error, not a hang.
	calls.Store(0)
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"draining","reason":"shutting_down"}`)
	}))
	defer always.Close()
	ca := NewClient(always.URL)
	ca.HTTPClient = always.Client()
	ca.MaxRetries = 1
	if _, err := ca.Health(context.Background()); !errors.As(err, &se) || !se.Temporary() {
		t.Fatalf("exhausted retries: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("MaxRetries 1 made %d calls, want 2", calls.Load())
	}
}

// TestOpenSnapshotPath pins the snapshot cold-start path: the first
// Open builds and saves, the second loads, and both systems serve
// bit-identical results.
func TestOpenSnapshotPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.qosdb")
	opts := Options{
		TraceLen:     8192,
		Warmup:       2048,
		Benchmarks:   []*Benchmark{MustBenchmark("mcf"), MustBenchmark("povray")},
		SnapshotPath: path,
	}
	built, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	apps := []*Benchmark{MustBenchmark("mcf"), MustBenchmark("povray")}
	s1, r1, err := built.Savings(apps, SimConfig{RM: RM3})
	if err != nil {
		t.Fatal(err)
	}
	s2, r2, err := loaded.Savings(apps, SimConfig{RM: RM3})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || !reflect.DeepEqual(r1, r2) {
		t.Fatal("snapshot-loaded system diverges from freshly built one")
	}

	// A system can also snapshot itself for a later cold start.
	path2 := filepath.Join(t.TempDir(), "copy.qosdb")
	if err := built.Snapshot(path2); err != nil {
		t.Fatal(err)
	}
	again, err := Open(Options{
		TraceLen:     8192,
		Warmup:       2048,
		Benchmarks:   opts.Benchmarks,
		SnapshotPath: path2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s3, _, err := again.Savings(apps, SimConfig{RM: RM3})
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatal("System.Snapshot round trip diverges")
	}

	// A snapshot built with different warm-up parameters is stale, not
	// servable: requesting another warmup must rebuild, never silently
	// reuse the file.
	stale := opts
	stale.Warmup = 1024
	rebuilt, err := Open(stale)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.DB().Warmup != 1024 {
		t.Fatalf("Open served a stale snapshot: warmup %d, want 1024", rebuilt.DB().Warmup)
	}
}
