package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Report aggregates every experiment's structured result for
// machine-readable export (JSON). Fields are nil when the corresponding
// experiment was not run.
type Report struct {
	// Meta describes how the results were produced.
	Meta ReportMeta `json:"meta"`

	TableII  []TableIIRow `json:"table2,omitempty"`
	Fig1     []Fig1Cell   `json:"fig1,omitempty"`
	Fig2     []Fig2Row    `json:"fig2,omitempty"`
	Fig4     *Fig4Result  `json:"fig4,omitempty"`
	Fig6     *Fig6Result  `json:"fig6,omitempty"`
	Fig7     *Fig7Result  `json:"fig7,omitempty"`
	Fig9     *Fig9Result  `json:"fig9,omitempty"`
	Ablation *AblationSet `json:"ablation,omitempty"`
}

// ReportMeta records the provenance of a report.
type ReportMeta struct {
	Paper       string    `json:"paper"`
	GeneratedAt time.Time `json:"generated_at"`
	TraceLen    int       `json:"trace_len"`
	Warmup      int       `json:"warmup"`
	Scale       int64     `json:"scale"`
	PerScenario int       `json:"per_scenario"`
	Seed        int64     `json:"seed"`
}

// AblationSet bundles the five ablation studies.
type AblationSet struct {
	IndexBits []IndexBitsPoint `json:"index_bits,omitempty"`
	Sampling  []SamplingPoint  `json:"sampling,omitempty"`
	Alpha     []AlphaPoint     `json:"alpha,omitempty"`
	Interval  []IntervalPoint  `json:"interval,omitempty"`
	GlobalOpt []GlobalOptPoint `json:"global_opt,omitempty"`
}

// NewReport initialises a report's metadata from the context.
func (c *Context) NewReport() *Report {
	return &Report{Meta: ReportMeta{
		Paper:       "Nejat et al., IPDPS 2020 (arXiv:1911.05114)",
		GeneratedAt: time.Now().UTC(),
		TraceLen:    c.DB.TraceLen,
		Warmup:      c.DB.Warmup,
		Scale:       c.Scale,
		PerScenario: c.PerScenario,
		Seed:        c.Seed,
	}}
}

// FullReport runs every experiment (including ablations with their
// default sweeps) and returns the aggregate. It is the programmatic
// equivalent of `figures -exp all`.
func (c *Context) FullReport() (*Report, error) {
	r := c.NewReport()
	var err error
	if r.TableII, err = c.TableII(); err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	r.Fig1 = c.Fig1()
	if r.Fig2, err = c.Fig2(); err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	f4 := Fig4()
	r.Fig4 = &f4
	if r.Fig6, err = c.Fig6(); err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	if r.Fig7, err = c.Fig7(); err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	if r.Fig9, err = c.Fig9(); err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	r.Ablation = &AblationSet{}
	if r.Ablation.IndexBits, err = c.AblationIndexBits(nil); err != nil {
		return nil, fmt.Errorf("ablation/index-bits: %w", err)
	}
	if r.Ablation.Sampling, err = c.AblationSampling(nil); err != nil {
		return nil, fmt.Errorf("ablation/sampling: %w", err)
	}
	if r.Ablation.Alpha, err = c.AblationAlpha(nil); err != nil {
		return nil, fmt.Errorf("ablation/alpha: %w", err)
	}
	if r.Ablation.Interval, err = c.AblationInterval(nil); err != nil {
		return nil, fmt.Errorf("ablation/interval: %w", err)
	}
	if r.Ablation.GlobalOpt, err = c.AblationGlobalOpt(); err != nil {
		return nil, fmt.Errorf("ablation/global-opt: %w", err)
	}
	return r, nil
}

// WriteJSON serialises the report with indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("experiments: encode report: %w", err)
	}
	return nil
}
