package rm

import (
	"fmt"
	"math"

	"qosrm/internal/config"
	"qosrm/internal/perfmodel"
)

// GlobalOptimize reduces the per-core energy curves pairwise until a
// single curve remains (Figure 3), then backtracks the way split that
// minimises Σ E_j(w_j) subject to Σ w_j = totalWays and
// MinWays ≤ w_j ≤ MaxWays.
//
// It returns the chosen setting per core (Pick entries of each curve at
// the granted allocation). The boolean is false when no feasible
// distribution exists, which cannot happen while the baseline setting
// itself is feasible for every core.
//
// The reduction is the paper's polynomial-complexity scheme: combining
// two curves of length L costs O(L²) and the recursion performs n-1
// combines for n cores. This entry point allocates a fresh workspace
// per call; the per-interval hot path in the co-simulator reuses one
// Workspace across calls instead (see Workspace.Optimize), which is the
// same computation without the allocations.
func GlobalOptimize(curves []*Curve, totalWays int) ([]config.Setting, bool) {
	if len(curves) == 0 {
		return nil, false
	}
	var ws Workspace
	out := make([]config.Setting, len(curves))
	if !ws.Optimize(curves, totalWays, out) {
		return nil, false
	}
	return out, true
}

// Workspace holds the reduction tree of the global optimisation as a
// reusable arena: node energies, split tables and the tree structure
// are allocated once per core count and overwritten on every call, so
// the per-interval invocations of the co-simulator run allocation-free.
// A Workspace is not safe for concurrent use; its zero value is ready.
type Workspace struct {
	n     int
	nodes []wsNode
}

// wsNode is one aggregate of the reduction tree: a reduced energy curve
// over cores lo..hi-1 plus the split table needed to backtrack.
type wsNode struct {
	lo, hi      int
	minW        int // smallest representable total allocation
	left, right int // child node indices; -1 on leaves
	energy      []float64
	// split[i] is, for total allocation minW+i, the number of ways given
	// to the left child group (inner nodes only).
	split []int
}

// Optimize is GlobalOptimize into a caller-provided result slice (len ≥
// len(curves)), reusing the workspace's reduction tree. The computation
// — combine order, iteration order, tie-breaking — replicates
// GlobalOptimizeReference exactly, so the chosen settings are identical
// to the seed implementation's (enforced by TestWorkspaceMatchesReference).
func (ws *Workspace) Optimize(curves []*Curve, totalWays int, out []config.Setting) bool {
	n := len(curves)
	if n == 0 {
		return false
	}
	if totalWays < n*config.MinWays || totalWays > n*config.MaxWays {
		panic(fmt.Sprintf("rm: %d ways cannot be split across %d cores", totalWays, n))
	}
	ws.ensure(n)

	// Evaluate the tree bottom-up; nodes are stored in post order, so
	// children always precede their parents.
	for i := range ws.nodes {
		nd := &ws.nodes[i]
		if nd.left < 0 {
			copy(nd.energy, curves[nd.lo].Energy[:])
			continue
		}
		combineInto(nd, &ws.nodes[nd.left], &ws.nodes[nd.right])
	}
	root := len(ws.nodes) - 1
	idx := totalWays - ws.nodes[root].minW
	if idx < 0 || idx >= len(ws.nodes[root].energy) || math.IsInf(ws.nodes[root].energy[idx], 1) {
		return false
	}
	ws.assign(root, totalWays, curves, out)
	return true
}

// ensure (re)builds the tree structure for n cores; buffers are reused
// while n is stable.
func (ws *Workspace) ensure(n int) {
	if ws.n == n {
		return
	}
	ws.n = n
	ws.nodes = ws.nodes[:0]
	var build func(lo, hi int) int
	build = func(lo, hi int) int {
		if hi-lo == 1 {
			ws.nodes = append(ws.nodes, wsNode{
				lo: lo, hi: hi,
				minW:   config.MinWays,
				left:   -1,
				right:  -1,
				energy: make([]float64, perfmodel.NumWays),
			})
			return len(ws.nodes) - 1
		}
		mid := (lo + hi) / 2
		l := build(lo, mid)
		r := build(mid, hi)
		length := len(ws.nodes[l].energy) + len(ws.nodes[r].energy) - 1
		ws.nodes = append(ws.nodes, wsNode{
			lo: lo, hi: hi,
			minW:   ws.nodes[l].minW + ws.nodes[r].minW,
			left:   l,
			right:  r,
			energy: make([]float64, length),
			split:  make([]int, length),
		})
		return len(ws.nodes) - 1
	}
	build(0, n)
}

// combineInto merges two group curves: E(W) = min over wl+wr=W of
// El(wl)+Er(wr), with the seed's tie-breaking (strictly-smaller wins, so
// the smallest feasible left allocation is kept on ties).
func combineInto(a, l, r *wsNode) {
	for i := range a.energy {
		a.energy[i] = math.Inf(1)
		a.split[i] = -1
	}
	for li, le := range l.energy {
		if math.IsInf(le, 1) {
			continue
		}
		for ri, re := range r.energy {
			if math.IsInf(re, 1) {
				continue
			}
			i := li + ri
			if e := le + re; e < a.energy[i] {
				a.energy[i] = e
				a.split[i] = l.minW + li
			}
		}
	}
}

// assign walks the reduction tree distributing the granted total.
func (ws *Workspace) assign(node, total int, curves []*Curve, out []config.Setting) {
	nd := &ws.nodes[node]
	if nd.left < 0 {
		out[nd.lo] = curves[nd.lo].Pick[total-config.MinWays]
		return
	}
	leftW := nd.split[total-nd.minW]
	if leftW < 0 {
		panic("rm: backtracking through infeasible aggregate")
	}
	ws.assign(nd.left, leftW, curves, out)
	ws.assign(nd.right, total-leftW, curves, out)
}

// aggregate is the seed's reduction-tree node, kept for
// GlobalOptimizeReference.
type aggregate struct {
	lo, hi int // group covers cores lo..hi-1
	minW   int // smallest representable total allocation
	energy []float64
	// split[i] is, for total allocation minW+i, the number of ways given
	// to the left child group (meaningful only for inner nodes).
	split []int
	left  *aggregate
	right *aggregate
	// leafCurve is set on leaves.
	leafCurve *Curve
}

// GlobalOptimizeReference is the seed implementation of GlobalOptimize,
// retained verbatim as the equivalence baseline: it rebuilds the
// reduction tree with fresh allocations on every call. Tests assert the
// workspace path returns identical settings; perfbench measures the two
// against each other.
func GlobalOptimizeReference(curves []*Curve, totalWays int) ([]config.Setting, bool) {
	n := len(curves)
	if n == 0 {
		return nil, false
	}
	if totalWays < n*config.MinWays || totalWays > n*config.MaxWays {
		panic(fmt.Sprintf("rm: %d ways cannot be split across %d cores", totalWays, n))
	}
	root := reduce(curves, 0, n)
	idx := totalWays - root.minW
	if idx < 0 || idx >= len(root.energy) || math.IsInf(root.energy[idx], 1) {
		return nil, false
	}
	out := make([]config.Setting, n)
	assign(root, totalWays, curves, out)
	return out, true
}

// reduce builds the reduction tree over curves[lo:hi].
func reduce(curves []*Curve, lo, hi int) *aggregate {
	if hi-lo == 1 {
		a := &aggregate{
			lo: lo, hi: hi,
			minW:      config.MinWays,
			energy:    make([]float64, perfmodel.NumWays),
			leafCurve: curves[lo],
		}
		copy(a.energy, curves[lo].Energy[:])
		return a
	}
	mid := (lo + hi) / 2
	l := reduce(curves, lo, mid)
	r := reduce(curves, mid, hi)
	return combine(l, r)
}

// combine merges two group curves: E(W) = min over wl+wr=W of
// El(wl)+Er(wr).
func combine(l, r *aggregate) *aggregate {
	a := &aggregate{
		lo: l.lo, hi: r.hi,
		minW:   l.minW + r.minW,
		left:   l,
		right:  r,
		energy: make([]float64, len(l.energy)+len(r.energy)-1),
		split:  make([]int, len(l.energy)+len(r.energy)-1),
	}
	for i := range a.energy {
		a.energy[i] = math.Inf(1)
		a.split[i] = -1
	}
	for li, le := range l.energy {
		if math.IsInf(le, 1) {
			continue
		}
		for ri, re := range r.energy {
			if math.IsInf(re, 1) {
				continue
			}
			i := li + ri
			if e := le + re; e < a.energy[i] {
				a.energy[i] = e
				a.split[i] = l.minW + li
			}
		}
	}
	return a
}

// assign walks the reduction tree distributing the granted total.
func assign(a *aggregate, total int, curves []*Curve, out []config.Setting) {
	if a.leafCurve != nil {
		out[a.lo] = a.leafCurve.Pick[total-config.MinWays]
		return
	}
	leftW := a.split[total-a.minW]
	if leftW < 0 {
		panic("rm: backtracking through infeasible aggregate")
	}
	assign(a.left, leftW, curves, out)
	assign(a.right, total-leftW, curves, out)
}
