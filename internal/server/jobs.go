package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"qosrm/internal/scenario"
	"qosrm/internal/sim"
)

// job is one asynchronous sweep: a batch of specs fanned out as
// per-scenario work items over the server's worker pool.
type job struct {
	id    string
	specs []scenario.Spec

	mu      sync.Mutex
	started int
	done    int
	reports []*scenario.Report
	errs    []error
	// finishedAt is the completion instant of the last scenario; the
	// TTL GC collects the job once it has aged past Options.JobTTL.
	finishedAt time.Time
}

// workItem is one scenario of one job, the unit the worker pool
// consumes.
type workItem struct {
	j   *job
	idx int
}

// status snapshots the job for the API.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{ID: j.id, Total: len(j.specs), Done: j.done}
	switch {
	case j.done == len(j.specs):
		st.State = JobDone
		var msgs []string
		for _, err := range j.errs {
			if err != nil {
				msgs = append(msgs, err.Error())
			}
		}
		if len(msgs) > 0 {
			st.State = JobFailed
			st.Error = strings.Join(msgs, "; ")
		}
		st.Reports = append([]*scenario.Report(nil), j.reports...)
	case j.started > 0:
		st.State = JobRunning
	default:
		st.State = JobQueued
	}
	return st
}

// complete records one scenario's outcome at time now and reports
// whether this completion finished the whole job (exactly one
// completion does, which keeps the finished-jobs metric race-free and
// stamps finishedAt exactly once).
func (j *job) complete(idx int, rep *scenario.Report, err error, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.reports[idx] = rep
	j.errs[idx] = err
	j.done++
	finished := j.done == len(j.specs)
	if finished {
		j.finishedAt = now
	}
	return finished
}

// finishedTime returns when the job finished; ok is false while it is
// still queued or running.
func (j *job) finishedTime() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishedAt, j.done == len(j.specs)
}

// begin marks one scenario as picked up by a worker.
func (j *job) begin() {
	j.mu.Lock()
	j.started++
	j.mu.Unlock()
}

// errQueueFull is returned when a job submission does not fit in the
// server's bounded queue.
var errQueueFull = errors.New("job queue full")

// submit registers a new job and enqueues its scenarios. Queue capacity
// for the whole batch is reserved atomically up front, so a job is
// either fully queued or rejected — never half-admitted.
func (s *Server) submit(specs []scenario.Spec) (*job, error) {
	j := &job{
		specs:   specs,
		reports: make([]*scenario.Report, len(specs)),
		errs:    make([]error, len(specs)),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("server shutting down")
	}
	if s.queued+len(specs) > s.opts.QueueDepth {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d queued of %d, %d requested",
			errQueueFull, s.queued, s.opts.QueueDepth, len(specs))
	}
	s.queued += len(specs)
	s.jobSeq++
	j.id = fmt.Sprintf("j%d", s.jobSeq)
	s.jobs[j.id] = j
	s.mu.Unlock()

	// The channel's capacity is QueueDepth, and the reservation above
	// guarantees the free slots: these sends never block.
	for i := range specs {
		s.queue <- workItem{j: j, idx: i}
	}
	s.metrics.jobsSubmitted.Add(1)
	s.metrics.specsQueued.Add(int64(len(specs)))
	return j, nil
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// worker is one pool goroutine: it owns a dynamic-engine workspace that
// survives across all scenarios it executes (the same per-worker reuse
// as scenario.Sweep) and runs items until the server closes. Runs are
// bound to the server's lifecycle context, so Close aborts in-flight
// simulations promptly.
func (s *Server) worker() {
	defer s.wg.Done()
	var ws sim.RunWorkspace
	for {
		select {
		case <-s.ctx.Done():
			return
		case it := <-s.queue:
			it.j.begin()
			rep, err := scenario.RunCtx(s.ctx, s.db, &it.j.specs[it.idx], &ws)
			finished := it.j.complete(it.idx, rep, err, s.now())
			if err != nil {
				s.metrics.specsFailed.Add(1)
			}
			s.metrics.specsRun.Add(1)
			if rep != nil {
				s.metrics.countPolicy(rep.Policy)
			}
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
			if finished {
				s.metrics.jobsFinished.Add(1)
			}
		}
	}
}
