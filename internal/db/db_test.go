package db

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/config"
)

var (
	testDBOnce sync.Once
	testDB     *DB
	testDBErr  error
)

// testBenches is a small cross-archetype subset.
func testBenches(t *testing.T) []*bench.Benchmark {
	t.Helper()
	names := []string{"mcf", "povray", "bwaves", "xalancbmk"}
	out := make([]*bench.Benchmark, len(names))
	for i, n := range names {
		b, err := bench.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func sharedDB(t *testing.T) *DB {
	t.Helper()
	testDBOnce.Do(func() {
		testDB, testDBErr = Build(testBenches(t), Options{TraceLen: 16384, Warmup: 4096})
	})
	if testDBErr != nil {
		t.Fatal(testDBErr)
	}
	return testDB
}

func TestBuildCoversAllPhases(t *testing.T) {
	d := sharedDB(t)
	for _, b := range testBenches(t) {
		if d.NumPhases(b.Name) != len(b.Phases) {
			t.Errorf("%s: %d phases in db, want %d", b.Name, d.NumPhases(b.Name), len(b.Phases))
		}
	}
	if len(d.Benchmarks()) != 4 {
		t.Errorf("Benchmarks() = %v", d.Benchmarks())
	}
}

func TestStatsErrors(t *testing.T) {
	d := sharedDB(t)
	if _, err := d.Stats("unknown", 0, config.Baseline()); err == nil {
		t.Error("unknown benchmark must error")
	}
	if _, err := d.Stats("mcf", 99, config.Baseline()); err == nil {
		t.Error("bad phase must error")
	}
	bad := config.Baseline()
	bad.Ways = 99
	if _, err := d.Stats("mcf", 0, bad); err == nil {
		t.Error("invalid setting must error")
	}
}

func TestStatsBasicSanity(t *testing.T) {
	d := sharedDB(t)
	s, err := d.Stats("mcf", 0, config.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if s.Instructions != 16384 {
		t.Errorf("instructions %.0f, want 16384", s.Instructions)
	}
	if s.TimeNs <= 0 || s.TPI() <= 0 {
		t.Error("time must be positive")
	}
	sum := s.BaseNs + s.BranchNs + s.CacheNs + s.MemNs
	if math.Abs(sum-s.TimeNs) > 1e-6*s.TimeNs {
		t.Error("components must sum to total")
	}
	if s.LLCMisses > s.LLCAccesses {
		t.Error("more misses than accesses")
	}
	if s.MLP < 1 {
		t.Error("MLP must be at least 1")
	}
}

func TestInterpolationMatchesCornersExactly(t *testing.T) {
	d := sharedDB(t)
	for _, fi := range []int{0, config.BaseFreqIdx, config.NumFreqs - 1} {
		set := config.Setting{Core: config.SizeM, Freq: fi, Ways: 8}
		a, err := d.Stats("mcf", 0, set)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := d.Stats("mcf", 0, set)
		if *a != *b {
			t.Error("corner lookups must be stable")
		}
	}
}

func TestInterpolatedTimeMonotonicInFrequency(t *testing.T) {
	d := sharedDB(t)
	for _, benchName := range []string{"mcf", "povray", "bwaves"} {
		prev := math.Inf(1)
		for fi := 0; fi < config.NumFreqs; fi++ {
			s, err := d.Stats(benchName, 0, config.Setting{Core: config.SizeM, Freq: fi, Ways: 8})
			if err != nil {
				t.Fatal(err)
			}
			if s.TimeNs >= prev {
				t.Errorf("%s: time not decreasing at f index %d", benchName, fi)
			}
			prev = s.TimeNs
		}
	}
}

func TestInterpolationBetweenCornersIsBounded(t *testing.T) {
	// An interpolated record lies between its corners' values.
	d := sharedDB(t)
	lo, _ := d.Stats("mcf", 0, config.Setting{Core: config.SizeM, Freq: 0, Ways: 8})
	mid, _ := d.Stats("mcf", 0, config.Setting{Core: config.SizeM, Freq: 2, Ways: 8})
	hi, _ := d.Stats("mcf", 0, config.Setting{Core: config.SizeM, Freq: config.BaseFreqIdx, Ways: 8})
	if mid.TimeNs > lo.TimeNs || mid.TimeNs < hi.TimeNs {
		t.Errorf("interpolated time %.2f outside corners [%.2f, %.2f]", mid.TimeNs, hi.TimeNs, lo.TimeNs)
	}
	if mid.MemNs > math.Max(lo.MemNs, hi.MemNs) || mid.MemNs < math.Min(lo.MemNs, hi.MemNs) {
		t.Error("interpolated memory stall outside corners")
	}
}

func TestGroundTruthMissCurveMonotone(t *testing.T) {
	d := sharedDB(t)
	prev := math.Inf(1)
	for w := config.MinWays; w <= config.MaxWays; w++ {
		s, err := d.Stats("mcf", 0, config.Setting{Core: config.SizeM, Freq: config.BaseFreqIdx, Ways: w})
		if err != nil {
			t.Fatal(err)
		}
		if s.LLCMisses > prev*(1+1e-9) {
			t.Errorf("misses grew with ways at w=%d", w)
		}
		prev = s.LLCMisses
	}
}

func TestATDEstimatesPresent(t *testing.T) {
	d := sharedDB(t)
	s, _ := d.Stats("mcf", 0, config.Baseline())
	if s.ATDMissCurve[config.BaseWays-config.MinWays] <= 0 {
		t.Fatal("ATD miss estimate missing")
	}
	for ci := range s.ATDLM {
		for wi := range s.ATDLM[ci] {
			if s.ATDLM[ci][wi] < 0 {
				t.Fatal("negative LM estimate")
			}
			if s.ATDLM[ci][wi] > s.ATDMissCurve[wi]+1 {
				t.Fatalf("LM estimate exceeds miss estimate at c=%d w=%d", ci, wi)
			}
		}
	}
	// A compute-bound application has no LLC traffic at all.
	p, _ := d.Stats("povray", 0, config.Baseline())
	if p.LLCAccesses != 0 {
		t.Errorf("povray has %v LLC accesses, want 0", p.LLCAccesses)
	}
}

func TestActualEnergyScalesLinearly(t *testing.T) {
	d := sharedDB(t)
	s, _ := d.Stats("mcf", 0, config.Baseline())
	e1 := s.ActualEnergyJ(config.Baseline(), 1000)
	e2 := s.ActualEnergyJ(config.Baseline(), 2000)
	if math.Abs(e2-2*e1) > 0.02*e2 {
		t.Errorf("energy not ≈linear in instructions: %g vs 2×%g", e2, e1)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := sharedDB(t)
	path := filepath.Join(t.TempDir(), "db.gz")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.TraceLen != d.TraceLen || l.Warmup != d.Warmup {
		t.Error("header fields lost")
	}
	a, _ := d.Stats("mcf", 1, config.Setting{Core: config.SizeL, Freq: 3, Ways: 11})
	b, err := l.Stats("mcf", 1, config.Setting{Core: config.SizeL, Freq: 3, Ways: 11})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("loaded stats differ from saved")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a database"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage file must fail to load")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file must fail to load")
	}
}

func TestLoadOrBuildCachesAndRebuilds(t *testing.T) {
	benches := testBenches(t)[:1]
	path := filepath.Join(t.TempDir(), "cache.gz")
	d1, err := LoadOrBuild(path, benches, Options{TraceLen: 4096, Warmup: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("database not cached")
	}
	d2, err := LoadOrBuild(path, benches, Options{TraceLen: 4096, Warmup: 1024})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d1.Stats(benches[0].Name, 0, config.Baseline())
	b, _ := d2.Stats(benches[0].Name, 0, config.Baseline())
	if *a != *b {
		t.Error("cached database differs")
	}
	// A different trace length forces a rebuild.
	d3, err := LoadOrBuild(path, benches, Options{TraceLen: 2048, Warmup: 512})
	if err != nil {
		t.Fatal(err)
	}
	if d3.TraceLen != 2048 {
		t.Error("rebuild did not honour the new trace length")
	}
	// A database missing a benchmark is rebuilt too.
	more := testBenches(t)[:2]
	d4, err := LoadOrBuild(path, more, Options{TraceLen: 2048, Warmup: 512})
	if err != nil {
		t.Fatal(err)
	}
	if d4.NumPhases(more[1].Name) == 0 {
		t.Error("rebuild did not cover the added benchmark")
	}
}

func TestBuildValidatesBenchmarks(t *testing.T) {
	bad := &bench.Benchmark{Name: "bad"}
	if _, err := Build([]*bench.Benchmark{bad}, Options{TraceLen: 1024}); err == nil {
		t.Fatal("invalid benchmark must fail the build")
	}
}

func TestMeasureAndClassifyArchetypes(t *testing.T) {
	d := sharedDB(t)
	// The shapes that drive the taxonomy must be visible even at the
	// test trace length: mcf is cache sensitive, bwaves is not; povray
	// has no misses at all.
	mcf, err := d.Measure(mustBench(t, "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if mcf.MPKI4 <= mcf.MPKI12 {
		t.Error("mcf must lose misses with more ways")
	}
	bw, _ := d.Measure(mustBench(t, "bwaves"))
	if bw.MPKI8 <= 0 {
		t.Error("bwaves must have LLC misses")
	}
	if rel := (bw.MPKI4 - bw.MPKI12) / bw.MPKI8; rel > 0.2 {
		t.Errorf("bwaves miss curve too steep for CI: %.3f", rel)
	}
	if bw.MLPL < bw.MLPS {
		t.Error("bwaves MLP must grow with core size")
	}
	pv, _ := d.Measure(mustBench(t, "povray"))
	if cat := pv.Category(); cat != bench.CIPI {
		t.Errorf("povray classified %s, want CI-PI", cat)
	}
}

func mustBench(t *testing.T, name string) *bench.Benchmark {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBuildRaceStress pins the concurrency contract of the
// (phase, core size, corner)-sharded sweep for the race detector: a
// many-worker build — more workers than this machine may have cores —
// immediately hammered by concurrent readers racing the lazy dense-grid
// materialisation. `go test -race` (a CI job) turns any unsynchronised
// access in the shared phase preparation, the ATD replay dedup or the
// dense cache into a failure.
func TestBuildRaceStress(t *testing.T) {
	benches := testBenches(t)[:2]
	d, err := Build(benches, Options{TraceLen: 8192, Warmup: 2048, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(benches, Options{TraceLen: 8192, Warmup: 2048})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				set := config.Setting{
					Core: config.CoreSize((g + i) % config.NumSizes),
					Freq: (g * 3) % config.NumFreqs,
					Ways: config.MinWays + (g+i)%NumWays,
				}
				for _, b := range benches {
					for p := 0; p < d.NumPhases(b.Name); p++ {
						s, err := d.Stats(b.Name, p, set)
						if err != nil {
							t.Error(err)
							return
						}
						// The concurrently materialised record must match
						// the sequential reference build exactly.
						want, err := ref.Stats(b.Name, p, set)
						if err != nil {
							t.Error(err)
							return
						}
						if s.TimeNs != want.TimeNs || s.LLCMisses != want.LLCMisses {
							t.Errorf("%s phase %d %v: racy record differs", b.Name, p, set)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
