package sim

import (
	"math"
	"sync"
	"testing"

	"qosrm/internal/bench"
	"qosrm/internal/config"
	"qosrm/internal/db"
	"qosrm/internal/perfmodel"
	"qosrm/internal/rm"
)

var (
	once   sync.Once
	shared *db.DB
	dbErr  error
)

func sharedDB(t *testing.T) *db.DB {
	t.Helper()
	once.Do(func() {
		var benches []*bench.Benchmark
		for _, n := range []string{"mcf", "povray", "bwaves", "xalancbmk", "libquantum", "omnetpp"} {
			b, err := bench.ByName(n)
			if err != nil {
				dbErr = err
				return
			}
			benches = append(benches, b)
		}
		shared, dbErr = db.Build(benches, db.Options{TraceLen: 16384, Warmup: 4096})
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return shared
}

func apps(t *testing.T, names ...string) []*bench.Benchmark {
	t.Helper()
	out := make([]*bench.Benchmark, len(names))
	for i, n := range names {
		b, err := bench.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func TestRunValidation(t *testing.T) {
	d := sharedDB(t)
	if _, err := Run(d, nil, Config{}); err == nil {
		t.Error("empty workload must fail")
	}
	missing, _ := bench.ByName("gcc") // not in the test database
	if _, err := Run(d, []*bench.Benchmark{missing}, Config{}); err == nil {
		t.Error("application absent from the database must fail")
	}
}

func TestIdleRunBasics(t *testing.T) {
	d := sharedDB(t)
	r, err := Run(d, apps(t, "mcf", "povray"), Config{RM: rm.Idle})
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyJ <= 0 || r.TimeNs <= 0 {
		t.Fatal("energy and time must be positive")
	}
	if r.RMCalled != 0 {
		t.Fatal("idle manager must not be invoked")
	}
	if len(r.Apps) != 2 {
		t.Fatal("per-app results missing")
	}
	if r.ViolationRate() != 0 {
		t.Fatalf("idle run violated QoS: %.3f", r.ViolationRate())
	}
	// Both applications execute the same scaled instruction target; the
	// memory-bound one finishes later.
	if r.Apps[0].FinishNs <= r.Apps[1].FinishNs {
		t.Error("mcf (memory bound) should finish after povray")
	}
	if math.Abs(r.TimeNs-r.Apps[0].FinishNs) > 1e-6 {
		t.Error("simulation ends when the last app reaches its target")
	}
	if r.UncoreJ <= 0 || r.UncoreJ >= r.EnergyJ {
		t.Error("uncore energy must be positive and below total")
	}
}

func TestRunDeterministic(t *testing.T) {
	d := sharedDB(t)
	cfg := Config{RM: rm.RM3, Model: perfmodel.Model3}
	a, err := Run(d, apps(t, "mcf", "povray"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(d, apps(t, "mcf", "povray"), cfg)
	if a.EnergyJ != b.EnergyJ || a.TimeNs != b.TimeNs || a.RMCalled != b.RMCalled {
		t.Fatal("co-simulation must be deterministic")
	}
}

func TestManagedRunSavesEnergy(t *testing.T) {
	d := sharedDB(t)
	w := apps(t, "povray", "mcf")
	idle, err := Run(d, w, Config{RM: rm.Idle})
	if err != nil {
		t.Fatal(err)
	}
	managed, err := Run(d, w, Config{RM: rm.RM3, Perfect: true, DisableOverheads: true})
	if err != nil {
		t.Fatal(err)
	}
	if managed.EnergyJ >= idle.EnergyJ {
		t.Fatalf("perfect RM3 must save energy: %.3f vs %.3f", managed.EnergyJ, idle.EnergyJ)
	}
	if managed.RMCalled == 0 {
		t.Fatal("manager was never invoked")
	}
	if managed.ViolationRate() > 0.01 {
		t.Fatalf("perfect model must not violate QoS: %.3f", managed.ViolationRate())
	}
}

func TestRM3SearchSpaceDominatesRM2(t *testing.T) {
	d := sharedDB(t)
	w := apps(t, "libquantum", "omnetpp")
	var energies []float64
	for _, k := range []rm.Kind{rm.RM1, rm.RM2, rm.RM3} {
		r, err := Run(d, w, Config{RM: k, Perfect: true, DisableOverheads: true})
		if err != nil {
			t.Fatal(err)
		}
		energies = append(energies, r.EnergyJ)
	}
	// With perfect predictions, the nested search spaces must yield
	// monotonically better (or equal) energy: RM3 ≤ RM2 ≤ RM1 within a
	// small tolerance for interval dynamics.
	if energies[2] > energies[1]*1.02 || energies[1] > energies[0]*1.02 {
		t.Fatalf("nested managers out of order: %v", energies)
	}
}

func TestOverheadsCostTimeAndEnergy(t *testing.T) {
	d := sharedDB(t)
	w := apps(t, "povray", "mcf")
	with, err := Run(d, w, Config{RM: rm.RM3, Perfect: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(d, w, Config{RM: rm.RM3, Perfect: true, DisableOverheads: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.TimeNs <= without.TimeNs {
		t.Error("overheads must lengthen the run")
	}
}

func TestScaleShortensRun(t *testing.T) {
	d := sharedDB(t)
	w := apps(t, "povray")
	small, err := Run(d, w, Config{RM: rm.Idle, Scale: 8192})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(d, w, Config{RM: rm.Idle, Scale: 2048})
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.TimeNs / small.TimeNs
	if math.Abs(ratio-4) > 0.2 {
		t.Fatalf("time ratio %.2f, want ≈ 4 for 4× instructions", ratio)
	}
}

func TestSingleCoreWorkload(t *testing.T) {
	d := sharedDB(t)
	r, err := Run(d, apps(t, "mcf"), Config{RM: rm.RM3, Model: perfmodel.Model3})
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyJ <= 0 {
		t.Fatal("single-core run broken")
	}
}

func TestTraceEventsOrderedAndComplete(t *testing.T) {
	d := sharedDB(t)
	var events []Event
	cfg := Config{
		RM: rm.RM3, Model: perfmodel.Model3,
		Trace: func(e Event) { events = append(events, e) },
	}
	r, err := Run(d, apps(t, "mcf", "povray"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(events)) != r.RMCalled {
		t.Fatalf("%d events for %d RM invocations", len(events), r.RMCalled)
	}
	prev := -1.0
	for _, e := range events {
		if e.TimeNs < prev {
			t.Fatal("events must be time ordered")
		}
		prev = e.TimeNs
		if !e.Setting.Valid() {
			t.Fatalf("invalid setting in event: %v", e.Setting)
		}
		if e.Core < 0 || e.Core > 1 {
			t.Fatalf("bad core id %d", e.Core)
		}
	}
}

func TestWaysAlwaysConserved(t *testing.T) {
	// The same-instant allocation snapshot of every event must sum
	// exactly to the LLC associativity — the Σw_j = A constraint of the
	// global optimisation.
	d := sharedDB(t)
	bad := 0
	cfg := Config{
		RM: rm.RM3, Model: perfmodel.Model3,
		Trace: func(e Event) {
			sum := 0
			for _, w := range e.Allocations {
				sum += w
			}
			if sum != config.TotalWays(len(e.Allocations)) {
				bad++
			}
		},
	}
	if _, err := Run(d, apps(t, "mcf", "xalancbmk"), cfg); err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Fatalf("%d events with non-conserved ways", bad)
	}
}

func TestAppsRestartAndKeepPhase(t *testing.T) {
	// omnetpp is the shortest application (688 B instructions): with the
	// default scale it restarts several times before reaching the
	// 4146 B target; interval indices must reset.
	d := sharedDB(t)
	sawReset := false
	var lastInterval int64 = -1
	cfg := Config{
		RM: rm.RM1, Model: perfmodel.Model3,
		Trace: func(e Event) {
			if e.Core == 0 {
				if e.Interval < lastInterval {
					sawReset = true
				}
				lastInterval = e.Interval
			}
		},
	}
	if _, err := Run(d, apps(t, "omnetpp", "mcf"), cfg); err != nil {
		t.Fatal(err)
	}
	if !sawReset {
		t.Fatal("short application never restarted")
	}
}

func TestViolationAccounting(t *testing.T) {
	d := sharedDB(t)
	r, err := Run(d, apps(t, "mcf", "xalancbmk"), Config{RM: rm.RM3, Model: perfmodel.Model1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range r.Apps {
		if a.Violations > a.Intervals {
			t.Fatal("more violations than intervals")
		}
		if a.Violations > 0 && a.ViolationSum <= 0 {
			t.Fatal("violations without magnitude")
		}
		if a.MaxViolation > 0 && a.Violations == 0 {
			t.Fatal("max violation without count")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.fill()
	if c.Interval != config.IntervalInstructions {
		t.Error("default interval wrong")
	}
	if c.Scale != 2048 {
		t.Error("default scale wrong")
	}
	if c.Alpha != config.QoSAlpha {
		t.Error("default alpha wrong")
	}
	if c.Model != perfmodel.Model3 {
		t.Error("default model wrong")
	}
}

func TestPerfectOracleUsesNextPhase(t *testing.T) {
	// The perfect run's violation rate must be at most the online
	// model's on the same (phase-changing) workload.
	d := sharedDB(t)
	w := apps(t, "mcf", "bwaves")
	online, err := Run(d, w, Config{RM: rm.RM3, Model: perfmodel.Model1})
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := Run(d, w, Config{RM: rm.RM3, Perfect: true})
	if err != nil {
		t.Fatal(err)
	}
	if perfect.ViolationRate() > online.ViolationRate()+1e-9 {
		t.Fatalf("oracle violates more than Model1: %.3f vs %.3f",
			perfect.ViolationRate(), online.ViolationRate())
	}
}

func TestEnergyConservation(t *testing.T) {
	// Total energy must equal the sum of per-application energies plus
	// the uncore term.
	d := sharedDB(t)
	r, err := Run(d, apps(t, "mcf", "povray", "bwaves", "xalancbmk"), Config{RM: rm.RM3, Model: perfmodel.Model3})
	if err != nil {
		t.Fatal(err)
	}
	sum := r.UncoreJ
	for _, a := range r.Apps {
		sum += a.EnergyJ
	}
	if math.Abs(sum-r.EnergyJ) > 1e-9*r.EnergyJ {
		t.Fatalf("energy not conserved: parts %.9f vs total %.9f", sum, r.EnergyJ)
	}
}

func TestAlphaRelaxationIncreasesSavings(t *testing.T) {
	d := sharedDB(t)
	w := apps(t, "povray", "mcf")
	strict, err := Run(d, w, Config{RM: rm.RM3, Perfect: true})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Run(d, w, Config{RM: rm.RM3, Perfect: true, Alpha: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.EnergyJ > strict.EnergyJ*1.001 {
		t.Fatalf("α=1.3 energy %.4f above α=1 energy %.4f", relaxed.EnergyJ, strict.EnergyJ)
	}
}

func TestIntervalLengthControlsInvocations(t *testing.T) {
	d := sharedDB(t)
	w := apps(t, "povray", "mcf")
	long, err := Run(d, w, Config{RM: rm.RM2, Model: perfmodel.Model3, Interval: 200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run(d, w, Config{RM: rm.RM2, Model: perfmodel.Model3, Interval: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if short.RMCalled <= long.RMCalled {
		t.Fatalf("shorter intervals must invoke the RM more: %d vs %d", short.RMCalled, long.RMCalled)
	}
}
